(* mklint — determinism & domain-safety lint for the simulator tree.
   See docs/STATIC_ANALYSIS.md for the rule catalogue and workflow.

   Two stages share one report: the syntactic parsetree pass (R1–R6,
   always on) and the typed .cmt pass (R7–R9, on whenever
   _build/default exists — i.e. after any dune build).  --ci and
   --typed refuse to pass without the typed stage rather than
   silently narrowing the gate. *)

let default_baseline = ".mklint-baseline"

let list_rules () =
  print_string
    (String.concat ""
       (List.map
          (fun r ->
            Printf.sprintf "%-3s %s\n    hazard: %s\n" (Mk_lint.Rule.id_to_string r)
              (Mk_lint.Rule.title r) (Mk_lint.Rule.hazard r))
          Mk_lint.Rule.all))

let run root files baseline_path update_baseline ci json sarif rules typed
    syntactic_only =
  if rules then (list_rules (); 0)
  else
    match Mk_lint.Baseline.load (Filename.concat root baseline_path) with
    | Error e ->
        prerr_endline ("mklint: " ^ e);
        2
    | Ok baseline -> (
        let report =
          match files with
          | [] -> Mk_lint.Lint.lint_tree ~root ~baseline ()
          | files -> Mk_lint.Lint.lint_files ~root ~baseline files
        in
        let typed_available = Mk_lint.Typed_lint.available ~root in
        let typed_wanted = not syntactic_only in
        let typed_required = typed || ci in
        if typed_required && syntactic_only then begin
          prerr_endline
            "mklint: --syntactic-only conflicts with --typed/--ci (the gate \
             must run both stages)";
          2
        end
        else if typed_required && not typed_available then begin
          prerr_endline
            "mklint: typed stage needs _build/default — run 'dune build' \
             first (or pass --syntactic-only without --ci)";
          2
        end
        else
          let report =
            if typed_wanted && typed_available then
              Mk_lint.Lint.merge_typed report ~baseline
                (Mk_lint.Typed_lint.lint_tree ~root)
            else report
          in
          if update_baseline then begin
            let entries =
              List.map
                (fun (v : Mk_lint.Rule.violation) ->
                  (v, Mk_lint.Lint.source_line ~root ~file:v.file v.line))
                (Mk_lint.Lint.errors report)
            in
            Out_channel.with_open_bin (Filename.concat root baseline_path)
              (fun oc ->
                Out_channel.output_string oc (Mk_lint.Baseline.render entries));
            Printf.eprintf "mklint: baselined %d findings into %s\n"
              (List.length entries) baseline_path;
            0
          end
          else begin
            if sarif then
              print_endline
                (Mk_engine.Json.to_string_pretty (Mk_lint.Lint.to_sarif report))
            else if json then
              print_endline
                (Mk_engine.Json.to_string_pretty (Mk_lint.Lint.to_json report))
            else print_string (Mk_lint.Lint.render report);
            if ci && Mk_lint.Lint.errors report <> [] then 1 else 0
          end)

open Cmdliner

let root =
  Arg.(
    value
    & opt dir "."
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Project root; scanned paths and the baseline are relative to it.")

let files =
  Arg.(
    value
    & pos_all string []
    & info [] ~docv:"FILE"
        ~doc:
          "Root-relative .ml/.mli files to lint; with none given the whole \
           tree (bench/ bin/ lib/ test/ tools/) is scanned.  The typed stage \
           is filtered to the same files.")

let baseline =
  Arg.(
    value
    & opt string default_baseline
    & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline file (root-relative).")

let update_baseline =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:
          "Rewrite the baseline to tolerate every current active error, \
           keyed by content hash of the flagged line (migrates legacy \
           line-number entries).")

let ci =
  Arg.(
    value & flag
    & info [ "ci" ]
        ~doc:
          "Gate mode: run both stages and exit 1 when any error-severity \
           finding is neither suppressed inline nor baselined; exit 2 when \
           the typed stage cannot run.")

let json =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the machine-readable mklint/1 JSON report.")

let sarif =
  Arg.(
    value & flag
    & info [ "sarif" ]
        ~doc:
          "Emit the report as SARIF 2.1.0 (for diff-annotation tooling); \
           overrides --json.")

let rules =
  Arg.(
    value & flag & info [ "rules" ] ~doc:"List the rule catalogue and exit.")

let typed =
  Arg.(
    value & flag
    & info [ "typed" ]
        ~doc:
          "Require the typed (.cmt) stage: exit 2 if _build/default is \
           missing.  Without this flag the typed stage still runs whenever \
           cmts are present.")

let syntactic_only =
  Arg.(
    value & flag
    & info [ "syntactic-only" ]
        ~doc:
          "Skip the typed stage even when cmts are present (fast pre-commit \
           loop).  Incompatible with --ci/--typed.")

let cmd =
  let doc = "determinism & domain-safety static analysis for the simulator" in
  Cmd.v
    (Cmd.info "mklint" ~doc)
    Term.(
      const run $ root $ files $ baseline $ update_baseline $ ci $ json $ sarif
      $ rules $ typed $ syntactic_only)

let () = exit (Cmd.eval' cmd)
