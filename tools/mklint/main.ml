(* mklint — determinism & domain-safety lint for the simulator tree.
   See docs/STATIC_ANALYSIS.md for the rule catalogue and workflow. *)

let default_baseline = ".mklint-baseline"

let list_rules () =
  print_string
    (String.concat ""
       (List.map
          (fun r ->
            Printf.sprintf "%-3s %s\n    hazard: %s\n" (Mk_lint.Rule.id_to_string r)
              (Mk_lint.Rule.title r) (Mk_lint.Rule.hazard r))
          Mk_lint.Rule.all))

let run root files baseline_path update_baseline ci json rules =
  if rules then (list_rules (); 0)
  else
    match Mk_lint.Baseline.load (Filename.concat root baseline_path) with
    | Error e ->
        prerr_endline ("mklint: " ^ e);
        2
    | Ok baseline ->
        let report =
          match files with
          | [] -> Mk_lint.Lint.lint_tree ~root ~baseline ()
          | files -> Mk_lint.Lint.lint_files ~root ~baseline files
        in
        if update_baseline then begin
          let entries = Mk_lint.Lint.errors report in
          Out_channel.with_open_bin (Filename.concat root baseline_path)
            (fun oc ->
              Out_channel.output_string oc (Mk_lint.Baseline.render entries));
          Printf.eprintf "mklint: baselined %d findings into %s\n"
            (List.length entries) baseline_path;
          0
        end
        else begin
          if json then
            print_endline
              (Mk_engine.Json.to_string_pretty (Mk_lint.Lint.to_json report))
          else print_string (Mk_lint.Lint.render report);
          if ci && Mk_lint.Lint.errors report <> [] then 1 else 0
        end

open Cmdliner

let root =
  Arg.(
    value
    & opt dir "."
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Project root; scanned paths and the baseline are relative to it.")

let files =
  Arg.(
    value
    & pos_all string []
    & info [] ~docv:"FILE"
        ~doc:
          "Root-relative .ml/.mli files to lint; with none given the whole \
           tree (bench/ bin/ lib/ tools/) is scanned.")

let baseline =
  Arg.(
    value
    & opt string default_baseline
    & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline file (root-relative).")

let update_baseline =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:"Rewrite the baseline to tolerate every current active error.")

let ci =
  Arg.(
    value & flag
    & info [ "ci" ]
        ~doc:
          "Gate mode: exit 1 when any error-severity finding is neither \
           suppressed inline nor baselined.")

let json =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the machine-readable mklint/1 JSON report.")

let rules =
  Arg.(
    value & flag & info [ "rules" ] ~doc:"List the rule catalogue and exit.")

let cmd =
  let doc = "determinism & domain-safety static analysis for the simulator" in
  Cmd.v
    (Cmd.info "mklint" ~doc)
    Term.(
      const run $ root $ files $ baseline $ update_baseline $ ci $ json $ rules)

let () = exit (Cmd.eval' cmd)
