(* System-call offloading: the price of Linux compatibility
   (Sections II-B, II-C, IV).

   McKernel forwards non-performance-critical calls to a proxy
   process on the Linux cores; mOS migrates the calling thread there
   and back.  Both cost microseconds — irrelevant for an occasional
   open(), decisive when the Omni-Path control path makes system
   calls on the communication fast path (the LAMMPS effect).

     dune exec examples/syscall_offload.exe *)

open Multikernel

let () =
  Printf.printf "Per-call latency by kernel (simulated):\n\n";
  Printf.printf "%-14s %10s %10s %10s\n" "syscall" "Linux" "McKernel" "mOS";
  let kernels =
    [
      Kernel.Linux_os.create ();
      Kernel.Mckernel.create ();
      Kernel.Mos.create ();
    ]
  in
  List.iter
    (fun sysno ->
      Printf.printf "%-14s" (Syscall.Sysno.to_string sysno);
      List.iter
        (fun os ->
          match Kernel.Os.syscall_time os ~core:10 sysno with
          | Ok t -> Printf.printf " %9s" (Engine.Units.time_to_string t)
          | Error `Enosys -> Printf.printf " %9s" "ENOSYS")
        kernels;
      print_newline ())
    [
      Syscall.Sysno.Gettid; Syscall.Sysno.Brk; Syscall.Sysno.Futex;
      Syscall.Sysno.Sched_yield; Syscall.Sysno.Open; Syscall.Sysno.Read;
      Syscall.Sysno.Ioctl; Syscall.Sysno.Poll; Syscall.Sysno.Sendmsg;
    ];
  Printf.printf
    "\nMemory, threading and scheduling calls are *faster* on the LWKs (lean\n\
     local paths); file and network calls pay the offload transport.\n\n";
  (* The LAMMPS consequence. *)
  let app = Option.get (find_app "lammps") in
  Printf.printf "LAMMPS timesteps/s (every ghost exchange crosses the NIC\ncontrol path):\n\n";
  Printf.printf "%8s %10s %10s %10s\n" "nodes" "McKernel" "mOS" "Linux";
  List.iter
    (fun nodes ->
      let results = compare_at ~app ~nodes () in
      let fom label = (List.assoc label results).Cluster.Driver.fom in
      Printf.printf "%8d %10.1f %10.1f %10.1f\n" nodes (fom "McKernel") (fom "mOS")
        (fom "Linux"))
    [ 16; 256; 2048 ];
  Printf.printf
    "\n'Neither mOS nor McKernel performed better than Linux at scale' here —\n\
     the one workload where offloading sits on the critical path (Section IV).\n"
