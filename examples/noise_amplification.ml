(* How operating-system noise murders collectives at scale
   (Figure 5b / Section III-C).

   A single stolen timeslice on one of 131,072 hardware threads
   delays the whole machine at the next MPI_Allreduce.  This example
   measures the effect in isolation: a compute window followed by an
   allreduce, repeated, under each kernel's noise profile.

     dune exec examples/noise_amplification.exe *)

open Multikernel

let ranks_per_node = 64
let window = 2 * Engine.Units.ms
let iterations = 50

let run_sync_loop profile nodes seed =
  let rng = Engine.Rng.create seed in
  let node_rngs = Array.init nodes (fun i -> Engine.Rng.split rng i) in
  let env =
    {
      Mpi.Collective.fabric = Fabric.Fabric.make ~nodes ();
      syscall_cost = (fun _ -> 0);
      intra_ranks = ranks_per_node;
    }
  in
  let clocks = Array.make nodes 0 in
  for _ = 1 to iterations do
    Array.iteri
      (fun i c ->
        let skew =
          Noise.Injector.max_delay profile node_rngs.(i) ~dur:window
            ~ranks:ranks_per_node
        in
        clocks.(i) <- c + window + skew)
      clocks;
    Mpi.Collective.allreduce env ~clocks ~bytes:8
  done;
  Array.fold_left max 0 clocks / iterations

let () =
  Printf.printf
    "Per-iteration time of [%s compute + 8-byte allreduce], %d ranks/node:\n\n"
    (Engine.Units.time_to_string window)
    ranks_per_node;
  Printf.printf "%8s %14s %14s %14s %10s\n" "nodes" "silent (McK)" "mOS LWK"
    "Linux nohz" "slowdown";
  List.iter
    (fun nodes ->
      let silent = run_sync_loop Noise.Profile.silent nodes 1 in
      let mos = run_sync_loop Noise.Profile.mos_lwk nodes 2 in
      let linux = run_sync_loop Noise.Profile.linux_nohz_full nodes 3 in
      Printf.printf "%8d %14s %14s %14s %9.2fx\n" nodes
        (Engine.Units.time_to_string silent)
        (Engine.Units.time_to_string mos)
        (Engine.Units.time_to_string linux)
        (float_of_int linux /. float_of_int silent))
    [ 1; 16; 128; 512; 2048 ];
  Printf.printf
    "\nThe mean noise on a Linux core is well under 1%% — but a collective\n\
     waits for the *maximum* across every rank, and that max grows with\n\
     scale.  The LWKs' silent cores keep the allreduce at wire speed,\n\
     which is why MiniFE 'ran almost seven times faster on the LWK'\n\
     at 1,024 nodes (Section III-C).\n"
