(* The deep-memory-hierarchy story (Figure 5a / Section IV).

   CCS-QCD is configured with ~22 GB per node against 16 GB of
   MCDRAM.  The LWKs allocate MCDRAM until it runs out and then
   silently spill to DDR4 — a policy Linux cannot express in SNC-4
   mode, so the paper ran its Linux baseline from DDR4 only.
   McKernel's demand-paging fallback additionally shares MCDRAM
   between imbalanced ranks in proportion to their appetite, while
   mOS divides it upfront into equal shares.

     dune exec examples/memory_spill.exe *)

open Multikernel

let () =
  let app = Option.get (find_app "ccs-qcd") in
  Printf.printf "CCS-QCD: %d ranks/node, per-rank footprints: " app.Apps.App.ranks_per_node;
  List.iter
    (fun r ->
      Printf.printf "%s "
        (Engine.Units.size_to_string
           (app.Apps.App.footprint_per_rank ~nodes:16 ~local_rank:r)))
    [ 0; 1; 2; 3 ];
  Printf.printf "\n(node total exceeds the 16 GiB of MCDRAM)\n\n";
  let nodes = 16 in
  Printf.printf "%-10s %14s %14s %12s\n" "kernel" "MCDRAM share" "iteration" "vs Linux";
  let linux_steady = ref 0 in
  List.iter
    (fun scenario ->
      let r = run ~scenario ~app ~nodes () in
      if scenario.Cluster.Scenario.label = "Linux" then
        linux_steady := r.Cluster.Driver.steady_iteration;
      Printf.printf "%-10s %13.1f%% %14s %11.2fx\n" scenario.Cluster.Scenario.label
        (100.0 *. r.Cluster.Driver.mcdram_fraction)
        (Engine.Units.time_to_string r.Cluster.Driver.steady_iteration)
        (if !linux_steady = 0 then 1.0
         else
           float_of_int !linux_steady
           /. float_of_int r.Cluster.Driver.steady_iteration))
    (List.rev scenarios);
  Printf.printf
    "\nBoth LWKs place ~73%% of the working set in MCDRAM and spill the rest;\n\
     Linux in SNC-4 mode runs from DDR4.  McKernel's global first-touch pool\n\
     serves the hungry ranks better than mOS's per-rank division, which is\n\
     the paper's explanation for its extra margin (Section IV).\n"
