(* The Lulesh heap story (Table I / Section IV).

   Lulesh 2.0 allocates and frees ~30 MB of temporaries through brk()
   every timestep — about 12,000 calls per run.  Linux returns the
   memory on every shrink, so each regrowth page-faults and re-zeroes
   it; the LWKs keep the heap mapped, align it to 2 MB, and zero only
   the first 4 KB of each fresh large page.

     dune exec examples/brk_heap.exe *)

open Multikernel

let replay scenario =
  let os = scenario.Cluster.Scenario.make () in
  let node = Kernel.Node.boot ~os ~ranks:1 ~threads_per_rank:2 ~seed:1 in
  let trace = Apps.Lulesh_trace.full_trace ~scale:1.0 in
  let elapsed = Kernel.Node.run_ops node ~rank:0 trace in
  let st = Mem.Address_space.stats (Kernel.Node.address_space node ~rank:0) in
  (elapsed, st)

let () =
  let q, g, s = Apps.Lulesh_trace.count_stats (Apps.Lulesh_trace.full_trace ~scale:1.0) in
  Printf.printf
    "Replaying the profiled Lulesh -s 30 trace: %d queries, %d grows,\n\
     %d shrinks (Section IV reports 7,526 / 3,028 / 1,499).\n\n"
    q g s;
  Printf.printf "%-10s %12s %12s %14s %12s\n" "kernel" "heap peak" "faults"
    "zeroed" "trace time";
  List.iter
    (fun scenario ->
      let elapsed, st = replay scenario in
      Printf.printf "%-10s %12s %12d %14s %12s\n" scenario.Cluster.Scenario.label
        (Engine.Units.size_to_string st.Mem.Address_space.heap_peak)
        st.Mem.Address_space.faults
        (Engine.Units.size_to_string st.Mem.Address_space.zeroed_bytes)
        (Engine.Units.time_to_string elapsed))
    (List.rev scenarios);
  let _, linux_st = replay Cluster.Scenario.linux in
  Printf.printf
    "\nCumulative heap growth: %s (the paper: 22 GB) — Linux re-zeroes\n\
     essentially all of it, 4 KB fault by 4 KB fault, while the LWK heap\n\
     fast path turns the ~12,000 brk calls into pointer arithmetic.\n"
    (Engine.Units.size_to_string linux_st.Mem.Address_space.cumulative_heap_growth)
