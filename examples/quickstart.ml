(* Quickstart: boot the three kernels, run HPCG at a few scales and
   print the comparison the paper's Figure 4 makes.

     dune exec examples/quickstart.exe *)

open Multikernel

let () =
  let app = Option.get (find_app "hpcg") in
  Printf.printf "HPCG (%d ranks x %d threads per node, %s)\n\n"
    app.Apps.App.ranks_per_node app.Apps.App.threads_per_rank app.Apps.App.fom_unit;
  Printf.printf "%8s %12s %12s %12s %10s\n" "nodes" "McKernel" "mOS" "Linux"
    "best/Linux";
  List.iter
    (fun nodes ->
      let results = compare_at ~app ~nodes () in
      let fom label = (List.assoc label results).Cluster.Driver.fom in
      let mck = fom "McKernel" and mos = fom "mOS" and linux = fom "Linux" in
      Printf.printf "%8d %12.4g %12.4g %12.4g %9.2fx\n" nodes mck mos linux
        (Float.max mck mos /. linux))
    [ 1; 16; 128; 1024 ];
  Printf.printf
    "\nThe LWKs win on memory management (large pages, prefaulting) at small\n\
     scale and on OS-noise isolation at large scale.  Try other applications:\n\
     %s\n"
    (String.concat ", " app_names)
