(* File I/O through the multi-kernel: checkpointing.

   Every file operation on an LWK is offloaded — McKernel forwards it
   to the proxy process, shipping write buffers across the IKC
   channel.  For an HPC checkpoint (big sequential writes) the
   per-call offload is amortised by data movement, so the LWK penalty
   stays small even though *every* call crosses kernels; descriptor
   state meanwhile lives in the Linux-side proxy's table.

     dune exec examples/checkpoint.exe *)

open Multikernel

let checkpoint_ops ~chunk ~chunks =
  Kernel.Workload.Open_file "/scratch/ckpt-000"
  :: List.concat_map
       (fun _ -> [ Kernel.Workload.Write_bytes chunk ])
       (List.init chunks (fun i -> i))
  @ [ Kernel.Workload.Close_file ]

let () =
  let mib = 1024 * 1024 in
  Printf.printf
    "Writing a 256 MiB checkpoint per rank (64 x 4 MiB chunks), one rank shown:\n\n";
  Printf.printf "%-10s %12s %14s %12s\n" "kernel" "time" "per-call cost" "descriptors";
  List.iter
    (fun (scenario : Cluster.Scenario.t) ->
      let os = scenario.Cluster.Scenario.make () in
      let node = Kernel.Node.boot ~os ~ranks:1 ~threads_per_rank:1 ~seed:9 in
      let ops = checkpoint_ops ~chunk:(4 * mib) ~chunks:64 in
      let elapsed = Kernel.Node.run_ops node ~rank:0 ops in
      let st = Kernel.Node.rank_state node 0 in
      let acct = st.Kernel.Node.task.Proc.Task.acct in
      let calls = acct.Proc.Task.syscalls_local + acct.Proc.Task.syscalls_offloaded in
      let where =
        if Proc.Process.has_proxy st.Kernel.Node.process then "proxy (Linux side)"
        else "own table"
      in
      Printf.printf "%-10s %12s %14s %12s\n" scenario.Cluster.Scenario.label
        (Engine.Units.time_to_string elapsed)
        (Engine.Units.time_to_string (acct.Proc.Task.kernel_time / max 1 calls))
        where)
    (List.rev scenarios);
  Printf.printf
    "\nThe per-call offload adds microseconds, but a 4 MiB write spends its\n\
     time moving data: 'the full Linux API is available via system call\n\
     offloading' (Section II-B) at a few percent for bulk I/O.  Small-\n\
     message metadata workloads would feel the crossing on every call.\n"
