#!/bin/sh
# Tier-1 verification gate: build, tests, API docs.
#
#   ./ci.sh
#
# The @doc step needs odoc (opam install odoc); it is skipped with a
# notice when odoc is absent so the gate still runs on lean toolchains.
set -e
cd "$(dirname "$0")"

dune build

# Static determinism & domain-safety gate (docs/STATIC_ANALYSIS.md):
# wall-clock reads, ambient Random, order-leaking Hashtbl iteration,
# cross-domain mutable globals and stray stdout in lib/ fail the build
# here, before the (slower) runtime byte-identity checks get a chance
# to miss them.  Non-zero on any error not suppressed inline or
# carried in .mklint-baseline.
dune exec mklint -- --ci

dune runtest

# Robustness gates, run explicitly so a failure is attributable even
# though `dune runtest` covers the same suites: the fault-injection
# subsystem and the crash-safe atomic-write path.
dune exec test/test_fault.exe >/dev/null
dune exec test/test_engine.exe -- test atomic-file >/dev/null

# Any results snapshot on disk must still be valid JSON.
dune exec bench/main.exe -- check-results

# Hot-path gate: a tiny perf suite (DES events/sec, page-table
# pages/sec, suite seq vs -j 2).  Fails when -j 2 stops beating
# sequential — the regression this PR exists to prevent — round-trips
# its JSON through the parser, and fails when the disabled
# observability hooks (sink=Null) cost more than 2%.
dune exec bench/main.exe -- perf --smoke

# Observability gate (docs/OBSERVABILITY.md): the same traced
# 4-node comparison run sequentially and under -j 2 must export
# byte-identical Perfetto traces, and the trace must parse as JSON.
mkdir -p bench/results
dune exec simos -- trace --app minife --nodes 4 --runs 2 --seed 42 \
  --jobs 1 -o bench/results/trace-smoke-seq.json >/dev/null
dune exec simos -- trace --app minife --nodes 4 --runs 2 --seed 42 \
  --jobs 2 -o bench/results/trace-smoke-par.json >/dev/null
cmp bench/results/trace-smoke-seq.json bench/results/trace-smoke-par.json || {
  echo "ci.sh: traced run diverged between sequential and -j 2" >&2
  exit 1
}
dune exec bench/main.exe -- check-json bench/results/trace-smoke-seq.json

if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "ci.sh: odoc not installed; skipping 'dune build @doc' (opam install odoc)"
fi

echo "ci.sh: all checks passed"
