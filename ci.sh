#!/bin/sh
# Tier-1 verification gate: build, tests, API docs.
#
#   ./ci.sh
#
# The @doc step needs odoc (opam install odoc); it is skipped with a
# notice when odoc is absent so the gate still runs on lean toolchains.
set -e
cd "$(dirname "$0")"

dune build

# Static determinism & domain-safety gate (docs/STATIC_ANALYSIS.md):
# wall-clock reads, ambient Random, order-leaking Hashtbl iteration,
# cross-domain mutable globals and stray stdout in lib/ fail the build
# here, before the (slower) runtime byte-identity checks get a chance
# to miss them.  Non-zero on any error not suppressed inline or
# carried in .mklint-baseline.
dune exec mklint -- --ci

# The SARIF export must stay well-formed: emit it for the whole tree
# and round-trip it through the same JSON parser that guards the
# results snapshots.
sarif_tmp=$(mktemp)
dune exec mklint -- --sarif >"$sarif_tmp" || true
dune exec bench/main.exe -- check-json "$sarif_tmp" || {
  echo "ci.sh: mklint --sarif emitted malformed JSON" >&2
  rm -f "$sarif_tmp"
  exit 1
}
rm -f "$sarif_tmp"

dune runtest

# Robustness gates, run explicitly so a failure is attributable even
# though `dune runtest` covers the same suites: the fault-injection
# subsystem and the crash-safe atomic-write path.
dune exec test/test_fault.exe >/dev/null
dune exec test/test_engine.exe -- test atomic-file >/dev/null

# Any results snapshot on disk must still be valid JSON.
dune exec bench/main.exe -- check-results

# Chaos gate (docs/ROBUSTNESS.md): deterministic harness-fault
# injection — a transiently failing cell must recover through
# retries, a permanently failing one must be quarantined without
# touching its siblings, a journaled run killed mid-way (torn trailing
# line included) must resume byte-identical, and a crash mid
# Atomic_file.write must leave the previous complete file behind.
dune exec simos -- chaos --smoke >/dev/null

# Journal round-trip at the CLI boundary: the same sweep recorded to a
# journal and then resumed from it must print byte-identical reports
# (resume replays every cell, recomputing none).
journal_tmp=$(mktemp -d)
trap 'rm -rf "$journal_tmp"' EXIT
dune exec simos -- sweep --app hpcg --runs 2 --seed 42 \
  --journal "$journal_tmp/sweep.jsonl" >"$journal_tmp/fresh.txt" 2>/dev/null
dune exec simos -- sweep --app hpcg --runs 2 --seed 42 \
  --resume "$journal_tmp/sweep.jsonl" >"$journal_tmp/resumed.txt" 2>/dev/null
cmp "$journal_tmp/fresh.txt" "$journal_tmp/resumed.txt" || {
  echo "ci.sh: resumed sweep diverged from the journaled run" >&2
  exit 1
}

# Hot-path gate: a tiny perf suite (DES events/sec, page-table
# pages/sec, suite seq vs -j N).  The speedup gates are conditional on
# the runner's core count (docs/PARALLELISM.md §3): on >= 2 cores -j 2
# must beat sequential, and on >= 4 cores the work-stealing pool must
# clear a 1.25x suite speedup at -j 4; on fewer cores the ratios are
# recorded in the JSON but cannot gate (the pool clamps to zero
# workers there, so the columns measure scheduling noise, not
# parallelism).  Unconditionally: the smoke JSON round-trips through
# the parser, -j output is byte-identical to sequential, and the
# disabled observability hooks (sink=Null) cost no more than 2%.
dune exec bench/main.exe -- perf --smoke

# Sharded-DES gate (docs/SHARDING.md): the event-driven tier run
# serially and sharded over several shard counts must agree byte for
# byte (the conservative-protocol invariant), and on >= 4 cores the
# closed-form fast-forward must clear a 1.25x speedup over serial
# replay on a silent profile; on fewer cores the ratios are recorded
# in scale-smoke.json but cannot gate.  Both smoke benches above also
# append a tagged history entry (<target>-<tag>.json + -latest/-prev
# heads) and scale --smoke refreshes the repo-root BENCH_scale.json,
# so the bench trajectory is non-empty after every CI run.
dune exec bench/main.exe -- scale --smoke

# Perf-history gate (docs/OBSERVABILITY.md §3): first prove the
# regression detector itself fires on a seeded synthetic regression
# and stays quiet on identical documents, then diff the smoke
# trajectory this run just extended — gated ratio metrics (speedups,
# throughputs, overhead percentages) must not cross the threshold in
# the bad direction; wall-clock leaves are report-only.  The first run
# after a fresh clone has no -prev head and passes with a notice.
dune exec bench/main.exe -- diff-selftest >/dev/null
dune exec bench/main.exe -- diff --against latest --smoke

# Observability gate (docs/OBSERVABILITY.md): the same traced
# 4-node comparison run sequentially and under -j 2 must export
# byte-identical Perfetto traces, and the trace must parse as JSON.
mkdir -p bench/results
dune exec simos -- trace --app minife --nodes 4 --runs 2 --seed 42 \
  --jobs 1 -o bench/results/trace-smoke-seq.json >/dev/null
dune exec simos -- trace --app minife --nodes 4 --runs 2 --seed 42 \
  --jobs 2 -o bench/results/trace-smoke-par.json >/dev/null
cmp bench/results/trace-smoke-seq.json bench/results/trace-smoke-par.json || {
  echo "ci.sh: traced run diverged between sequential and -j 2" >&2
  exit 1
}
dune exec bench/main.exe -- check-json bench/results/trace-smoke-seq.json

# Model-checking gate (test/dscheck/): DSCheck exhaustively
# interleaves the lock-free Deque (owner push/pop vs thief steal,
# ring growth) and the SPSC Mailbox at atomic-operation granularity.
# dscheck is a dev-only dependency; lean toolchains without it say so
# loudly instead of silently passing, mirroring the odoc gate below.
if ocamlfind query dscheck >/dev/null 2>&1; then
  dune exec --profile dscheck test/dscheck/dscheck_engine.exe
else
  echo "ci.sh: WARNING: dscheck not installed; model-checking gate NOT run (opam install dscheck)" >&2
fi

# API-doc gate: odoc warnings are fatal (root `dune` env stanza), so
# a broken {!reference} or malformed doc comment fails the build, not
# just a log line.  Lean toolchains without odoc cannot run the gate;
# they say so loudly instead of silently passing.
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "ci.sh: WARNING: odoc not installed; @doc gate NOT run (opam install odoc)" >&2
fi

echo "ci.sh: all checks passed"
