# Convenience aliases around dune; ci.sh remains the authoritative gate.
.PHONY: build test lint lint-json lint-sarif dscheck doc ci trace-smoke chaos-smoke scale-smoke scale history diff

build:
	dune build

test:
	dune runtest

lint:
	dune exec mklint -- --ci

lint-json:
	dune exec mklint -- --json

lint-sarif:
	dune exec mklint -- --sarif

# DSCheck model-checking of the lock-free engine (Deque owner/thief
# interleavings with ring growth, Mailbox SPSC) — see
# test/dscheck/dune.  dscheck is a dev-only dependency: when the
# package is not installed the target skips with a notice rather than
# failing, mirroring the odoc gate in ci.sh.
dscheck:
	@if ocamlfind query dscheck >/dev/null 2>&1; then \
	  dune exec --profile dscheck test/dscheck/dscheck_engine.exe; \
	else \
	  echo "dscheck: package not installed; skipping model-checking" \
	    "(opam install dscheck to enable)"; \
	fi

doc:
	dune build @doc

# The observability determinism gate from ci.sh, standalone: one traced
# comparison twice (sequential, -j 2), byte-compared and JSON-checked.
trace-smoke:
	mkdir -p bench/results
	dune exec simos -- trace --app minife --nodes 4 --runs 2 --seed 42 \
	  --jobs 1 -o bench/results/trace-smoke-seq.json >/dev/null
	dune exec simos -- trace --app minife --nodes 4 --runs 2 --seed 42 \
	  --jobs 2 -o bench/results/trace-smoke-par.json >/dev/null
	cmp bench/results/trace-smoke-seq.json bench/results/trace-smoke-par.json
	dune exec bench/main.exe -- check-json bench/results/trace-smoke-seq.json

# The robustness gate from ci.sh, standalone: deterministic
# harness-fault injection (retry, quarantine, kill-and-resume,
# mid-write crash) — see docs/ROBUSTNESS.md.
chaos-smoke:
	dune exec simos -- chaos --smoke

# The sharded-DES gate from ci.sh, standalone: serial-vs-sharded
# byte-identity plus the fast-forward speedup bar (>= 4 cores) — see
# docs/SHARDING.md.
scale-smoke:
	dune exec bench/main.exe -- scale --smoke

# The full weak-scaling sweep to 131,072 nodes; writes
# bench/results/latest-scale.json and BENCH_scale.json.
scale:
	dune exec bench/main.exe -- scale

# The tagged bench trajectory (perf/scale, smoke included) and the
# regression diff against the previous run — see
# docs/OBSERVABILITY.md §3.
history:
	dune exec bench/main.exe -- history

diff:
	dune exec bench/main.exe -- diff-selftest
	dune exec bench/main.exe -- diff --against latest --smoke

ci:
	./ci.sh
