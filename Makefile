# Convenience aliases around dune; ci.sh remains the authoritative gate.
.PHONY: build test lint lint-json doc ci

build:
	dune build

test:
	dune runtest

lint:
	dune exec mklint -- --ci

lint-json:
	dune exec mklint -- --json

doc:
	dune build @doc

ci:
	./ci.sh
