(* The benchmark harness: one target per table and figure of the
   paper, plus microbenchmarks of the simulator substrates.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe fig4       -- one artifact
     (targets: fig4 fig5a fig5b fig6a fig6b table1 brk ltp opts
               headline micro tools isolation modes csv json
               sensitivity faults)

   The `results` target is the machine-readable pipeline: it runs the
   full suite sequentially and in parallel, checks the two agree byte
   for byte, and writes bench/results/latest.json (plus a tagged file
   when a tag is given):

     dune exec bench/main.exe -- results             -- latest.json only
     dune exec bench/main.exe -- results 20260805    -- + 20260805.json
     dune exec bench/main.exe -- results 20260805 8  -- with 8 jobs

   The `perf` target is the wall-clock record: hot-path
   microbenchmarks (DES events/sec, page-table pages/sec) plus the
   suite timed sequentially and under -j 2/-j 4, written to
   bench/results/latest-perf.json (and perf-<tag>.json).  `perf
   --smoke` is the small CI gate variant: it fails the build when
   -j 2 stops beating sequential.

   Simulated time never reads the wall clock, so result files carry
   no embedded timestamps — the tag (date, commit, …) is the caller's
   to choose, which keeps reruns reproducible.  Wall-clock is only
   used to time the harness itself for the speedup record.

   Absolute numbers are simulated; the claims under test are the
   *shapes*: who wins, by what factor, where the crossovers sit. *)

open Multikernel

let line = String.make 72 '='

let section title = Printf.printf "\n%s\n%s\n%s\n" line title line

let runs = Cluster.Experiment.default_runs

let app_exn name = Option.get (find_app name)

(* ------------------------------------------------------------------ *)
(* FIG4: seven applications, relative median performance vs Linux      *)

let fig4_data : (string, Cluster.Experiment.series list) Hashtbl.t = Hashtbl.create 8

let fig4_series app =
  match Hashtbl.find_opt fig4_data app with
  | Some s -> s
  | None ->
      let a = app_exn app in
      let s =
        Cluster.Experiment.compare_scenarios ~scenarios:Cluster.Scenario.trio ~app:a
          ~runs ()
      in
      Hashtbl.replace fig4_data app s;
      s

let fig4_apps = [ "amg"; "ccs-qcd"; "geofem"; "hpcg"; "lammps"; "milc"; "minife" ]

let baseline_of series =
  List.find
    (fun (s : Cluster.Experiment.series) -> s.Cluster.Experiment.scenario_label = "Linux")
    series

let fig4 () =
  section "FIGURE 4 — mOS and McKernel against the Linux baseline";
  List.iter
    (fun name ->
      let a = app_exn name in
      let series = fig4_series name in
      let baseline = baseline_of series in
      print_string (Cluster.Report.relative_table ~app:a ~baseline series);
      print_newline ())
    fig4_apps

(* ------------------------------------------------------------------ *)
(* FIG5a: CCS-QCD as % of the Linux median                             *)

let fig5a () =
  section "FIGURE 5(a) — CCS-QCD, % of Linux median (Linux runs in DDR4)";
  let a = app_exn "ccs-qcd" in
  let series = fig4_series "ccs-qcd" in
  let baseline = baseline_of series in
  let header = [ "nodes"; "McKernel"; "mOS" ] in
  let counts =
    List.map
      (fun (p : Cluster.Experiment.point) -> p.Cluster.Experiment.nodes)
      baseline.Cluster.Experiment.points
  in
  let rel label =
    let s =
      List.find
        (fun (s : Cluster.Experiment.series) ->
          s.Cluster.Experiment.scenario_label = label)
        series
    in
    Cluster.Experiment.relative_to ~baseline s
  in
  let mck = rel "McKernel" and mos = rel "mOS" in
  let rows =
    List.map
      (fun n ->
        let pct l =
          match List.assoc_opt n l with
          | Some r -> Printf.sprintf "%.1f%%" (100.0 *. r)
          | None -> "-"
        in
        [ string_of_int n; pct mck; pct mos ])
      counts
  in
  print_string (Engine.Table.render ~header rows);
  print_string (Cluster.Report.relative_chart ~app:a ~baseline series);
  Printf.printf
    "Paper: up to 139%% (McKernel) / 128%% (mOS); gains from transparent\n\
     MCDRAM spill that SNC-4 Linux cannot express (Sections III-C, IV).\n"

(* ------------------------------------------------------------------ *)
(* FIG5b: MiniFE absolute Mflops                                       *)

let fig5b () =
  section "FIGURE 5(b) — MiniFE 660x660x660 strong scaling (Mflops)";
  let a = app_exn "minife" in
  let series = fig4_series "minife" in
  print_string (Cluster.Report.fom_table ~app:a series);
  print_string (Cluster.Report.absolute_chart ~app:a series);
  Printf.printf
    "Paper: Linux performance 'dropping precariously' past 512 nodes while\n\
     the LWKs keep scaling — allreduce noise amplification (Section III-C).\n"

(* ------------------------------------------------------------------ *)
(* FIG6a: Lulesh zones/s on cubic node counts                          *)

let fig6a () =
  section "FIGURE 6(a) — Lulesh 2.0 -s 50 (zones/s), cubic node counts";
  let a = app_exn "lulesh" in
  let series =
    Cluster.Experiment.compare_scenarios ~scenarios:Cluster.Scenario.trio ~app:a ~runs ()
  in
  print_string (Cluster.Report.fom_table ~app:a series);
  print_string (Cluster.Report.absolute_chart ~app:a series);
  let baseline = baseline_of series in
  print_string (Cluster.Report.relative_table ~app:a ~baseline series);
  Printf.printf
    "Paper: LWKs lead throughout; the gain 'comes from the overhead of the\n\
     brk() system call' (Section IV).\n"

(* ------------------------------------------------------------------ *)
(* FIG6b: LAMMPS timesteps/s                                           *)

let fig6b () =
  section "FIGURE 6(b) — LAMMPS lj.weak (timesteps/s)";
  let a = app_exn "lammps" in
  let series = fig4_series "lammps" in
  print_string (Cluster.Report.fom_table ~app:a series);
  print_string (Cluster.Report.absolute_chart ~app:a series);
  Printf.printf
    "Paper: 'neither mOS nor McKernel performed better than Linux at scale'\n\
     because Omni-Path control operations are system calls that the LWKs\n\
     offload to the few Linux cores (Section IV).\n"

(* ------------------------------------------------------------------ *)
(* TABLE I: Lulesh in DDR4 with and without brk() optimisations        *)

let table1 () =
  section "TABLE I — Lulesh in DDR4 RAM, heap-management ablation";
  let lulesh = app_exn "lulesh" in
  let ddr_app = { lulesh with Apps.App.name = "Lulesh2.0-ddr" } in
  let scenarios =
    [
      Cluster.Scenario.linux;
      Cluster.Scenario.mos_with
        { Kernel.Os.default_options with Kernel.Os.heap_management = false }
        ~label:"mOS, heap management disabled";
      Cluster.Scenario.mos;
    ]
  in
  (* Force every kernel into DDR4 like the paper: LWKs via a Ddr_only
     default policy, Linux via the app's ddr-only flag. *)
  let ddr_scenario (s : Cluster.Scenario.t) =
    {
      s with
      Cluster.Scenario.make =
        (fun () ->
          let os = s.Cluster.Scenario.make () in
          {
            os with
            Kernel.Os.default_policy = (fun ~home -> Mem.Policy.Ddr_only { home });
          });
    }
  in
  let results =
    List.map
      (fun (s : Cluster.Scenario.t) ->
        let app =
          if s.Cluster.Scenario.label = "Linux" then
            { ddr_app with Apps.App.linux_ddr_only = true }
          else ddr_app
        in
        let r =
          Cluster.Experiment.point ~scenario:(ddr_scenario s) ~app ~nodes:1 ~runs ()
        in
        (s.Cluster.Scenario.label, r.Cluster.Experiment.median_fom))
      scenarios
  in
  let linux_fom = List.assoc "Linux" results in
  let rows =
    List.map
      (fun (label, fom) ->
        [
          label;
          Printf.sprintf "%.0f zones/s" fom;
          Printf.sprintf "%.1f%%" (100.0 *. fom /. linux_fom);
        ])
      results
  in
  print_string (Engine.Table.render ~header:[ "kernel"; "throughput"; "relative" ] rows);
  Printf.printf
    "Paper: Linux 8,959 zones/s = 100.0%%; mOS heap-off 106.6%%;\n\
     mOS regular 121.0%% (Table I).\n"

(* ------------------------------------------------------------------ *)
(* BRK: the Lulesh allocation-trace statistics                         *)

let brk () =
  section "SECTION IV — Lulesh -s 30 brk() trace, replayed through each kernel";
  let trace = Apps.Lulesh_trace.full_trace ~scale:1.0 in
  let q, g, s = Apps.Lulesh_trace.count_stats trace in
  Printf.printf "trace: %d queries, %d grows, %d shrinks (paper: %d / %d / %d)\n\n" q g
    s Apps.Lulesh_trace.expected_queries Apps.Lulesh_trace.expected_grows
    Apps.Lulesh_trace.expected_shrinks;
  let rows =
    List.map
      (fun (scn : Cluster.Scenario.t) ->
        let os = scn.Cluster.Scenario.make () in
        let node = Kernel.Node.boot ~os ~ranks:1 ~threads_per_rank:2 ~seed:1 in
        let elapsed = Kernel.Node.run_ops node ~rank:0 trace in
        let asp = Kernel.Node.address_space node ~rank:0 in
        let st = Mem.Address_space.stats asp in
        [
          scn.Cluster.Scenario.label;
          string_of_int st.Mem.Address_space.brk_queries;
          string_of_int st.Mem.Address_space.brk_grows;
          string_of_int st.Mem.Address_space.brk_shrinks;
          Engine.Units.size_to_string st.Mem.Address_space.heap_peak;
          Engine.Units.size_to_string st.Mem.Address_space.cumulative_heap_growth;
          string_of_int st.Mem.Address_space.faults;
          Engine.Units.time_to_string elapsed;
        ])
      Cluster.Scenario.trio
  in
  print_string
    (Engine.Table.render
       ~header:
         [
           "kernel"; "queries"; "grows"; "shrinks"; "heap peak"; "cumulative";
           "faults"; "trace time";
         ]
       rows);
  Printf.printf
    "Paper: heap peak 87 MB, cumulative growth 22 GB; 'Under Linux this\n\
     results in a lot of page faults' while the LWKs take the fast path.\n"

(* ------------------------------------------------------------------ *)
(* LTP: compatibility counts                                           *)

let ltp () =
  section "SECTION III-D — LTP-like compatibility corpus";
  Printf.printf "corpus: %d tests\n\n" (List.length Compat.Ltp.corpus);
  List.iter
    (fun k ->
      let s = Compat.Ltp.run_all k in
      Printf.printf "%-9s %4d failed / %d  (paper: %s)\n"
        (Compat.Ltp.kernel_to_string k)
        s.Compat.Ltp.failed s.Compat.Ltp.total
        (match k with
        | Compat.Ltp.Linux_k -> "0"
        | Compat.Ltp.Mckernel_k -> "32"
        | Compat.Ltp.Mos_k -> "111");
      List.iter
        (fun (cause, n) -> Printf.printf "    %-24s %d\n" cause n)
        (Compat.Ltp.failures_by_cause s))
    [ Compat.Ltp.Linux_k; Compat.Ltp.Mckernel_k; Compat.Ltp.Mos_k ]

(* ------------------------------------------------------------------ *)
(* OPTS: --mpol-shm-premap and --disable-sched-yield at 16 nodes       *)

let opts () =
  section "SECTION IV — McKernel job-launch options at 16 nodes";
  let optioned =
    Cluster.Scenario.mckernel_with
      {
        Kernel.Os.default_options with
        Kernel.Os.mpol_shm_premap = true;
        disable_sched_yield = true;
      }
      ~label:"McKernel+premap+yield"
  in
  List.iter
    (fun (name, paper) ->
      let a = app_exn name in
      let base =
        Cluster.Experiment.point ~scenario:Cluster.Scenario.mckernel ~app:a ~nodes:16
          ~runs ()
      in
      let opt = Cluster.Experiment.point ~scenario:optioned ~app:a ~nodes:16 ~runs () in
      Printf.printf "%-8s base %.4g -> optioned %.4g : %+.1f%%  (paper: %s)\n"
        a.Apps.App.name base.Cluster.Experiment.median_fom
        opt.Cluster.Experiment.median_fom
        (100.0
        *. ((opt.Cluster.Experiment.median_fom /. base.Cluster.Experiment.median_fom)
           -. 1.0))
        paper)
    [ ("amg", "+9%"); ("minife", "+2%") ]

(* ------------------------------------------------------------------ *)
(* HEADLINE: median and best improvement across Figure 4               *)

let headline () =
  section "HEADLINE — improvement statistics over all Figure-4 points";
  let ratios label =
    List.map
      (fun name ->
        let series = fig4_series name in
        let baseline = baseline_of series in
        let s =
          List.find
            (fun (s : Cluster.Experiment.series) ->
              s.Cluster.Experiment.scenario_label = label)
            series
        in
        Cluster.Experiment.relative_to ~baseline s)
      fig4_apps
  in
  List.iter
    (fun label ->
      let r = ratios label in
      Printf.printf "%-9s median improvement %+.1f%%, best %+.0f%%\n" label
        (100.0 *. (Cluster.Experiment.median_improvement r -. 1.0))
        (100.0 *. (Cluster.Experiment.best_improvement r -. 1.0)))
    [ "McKernel"; "mOS" ];
  Printf.printf
    "Paper: 'a median performance improvement of 9%% with some applications\n\
     as high as 280%%' (Section I).\n"

(* ------------------------------------------------------------------ *)
(* MICRO: substrate microbenchmarks and design-choice ablations        *)

let simulated_micro () =
  Printf.printf "\n-- simulated latencies (model output, ns) --\n";
  (* Ablation 1: proxy vs migration offload. *)
  let topo = Hw.Knl.topology Hw.Knl.Snc4_flat in
  let router = Ikc.Router.make ~topo ~linux_cores:[ 0; 1; 2; 3 ] in
  let proxy = Ikc.Offload.make Ikc.Offload.default_proxy ~router in
  let migration = Ikc.Offload.make Ikc.Offload.default_migration ~router in
  List.iter
    (fun sysno ->
      let local = Syscall.Cost.local sysno in
      let p = Ikc.Offload.cost proxy ~lwk_core:10 ~sysno () in
      let m = Ikc.Offload.cost migration ~lwk_core:10 ~sysno () in
      Printf.printf "  %-12s local %6dns  proxy %6dns  migration %6dns\n"
        (Syscall.Sysno.to_string sysno)
        local p m)
    [ Syscall.Sysno.Getppid; Syscall.Sysno.Open; Syscall.Sysno.Ioctl;
      Syscall.Sysno.Read ];
  (* FTQ: the standard OS-noise instrument, run over each profile. *)
  Printf.printf "\n-- FTQ (1 ms quanta x 2000) per noise profile --\n";
  List.iter
    (fun (p : Noise.Profile.t) ->
      let s =
        Noise.Ftq.run ~profile:p ~quantum:Engine.Units.ms ~quanta:2000 ~seed:5
      in
      Format.printf "  %-20s %a@." p.Noise.Profile.name Noise.Ftq.pp_summary s)
    [
      Noise.Profile.silent; Noise.Profile.mos_lwk; Noise.Profile.linux_nohz_full;
      Noise.Profile.linux_default;
    ];
  (* Ablation 4: noise profiles. *)
  Printf.printf "\n-- noise profiles: mean CPU overhead --\n";
  List.iter
    (fun (p : Noise.Profile.t) ->
      Printf.printf "  %-20s %.4f%%\n" p.Noise.Profile.name
        (100.0 *. Noise.Profile.total_overhead p))
    [
      Noise.Profile.silent; Noise.Profile.mos_lwk; Noise.Profile.linux_nohz_full;
      Noise.Profile.linux_default; Noise.Profile.linux_service_core;
    ];
  (* Ablation 5: boot-time vs late physical-memory grab. *)
  Printf.printf "\n-- largest contiguous block (1G-page availability) --\n";
  List.iter
    (fun (label, os) ->
      Printf.printf "  %-10s MCDRAM %-10s DDR4 %s\n" label
        (Engine.Units.size_to_string
           (Kernel.Os.largest_free_block os ~kind:Hw.Memory_kind.Mcdram))
        (Engine.Units.size_to_string
           (Kernel.Os.largest_free_block os ~kind:Hw.Memory_kind.Ddr4)))
    [
      ("mOS", Kernel.Mos.create ());
      ("McKernel", Kernel.Mckernel.create ());
      ("Linux", Kernel.Linux_os.create ());
    ];
  (* osu_allreduce-style intra-node sweep (event-driven). *)
  Printf.printf "\n-- intra-node allreduce latency, 64 ranks (DES) --\n";
  Printf.printf "  %10s %12s %12s\n" "bytes" "spin" "futex-wake";
  List.iter
    (fun bytes ->
      let spin =
        (Mpi.Intranode.allreduce ~ranks:64 ~bytes ~wait:Mpi.Intranode.Spin ())
          .Mpi.Intranode.completion
      in
      let futex =
        (Mpi.Intranode.allreduce ~ranks:64 ~bytes
           ~wait:(Mpi.Intranode.Futex_wake 4_000) ())
          .Mpi.Intranode.completion
      in
      Printf.printf "  %10d %12s %12s\n" bytes
        (Engine.Units.time_to_string spin)
        (Engine.Units.time_to_string futex))
    [ 8; 256; 4096; 65536; 1048576 ];
  (* Scheduler comparison under oversubscription (DES-driven).
     McKernel's optional time-sharing rotates tasks at a quantum; the
     default cooperative queue runs each to completion. *)
  Printf.printf "\n-- 8 tasks time-sharing one core (DES makespan) --\n";
  let ts =
    {
      Cluster.Scenario.label = "McKernel+ts";
      make =
        (fun () ->
          Kernel.Mckernel.create ~time_sharing:(Some (20 * Engine.Units.ms)) ());
    }
  in
  List.iter
    (fun (scn : Cluster.Scenario.t) ->
      let os = scn.Cluster.Scenario.make () in
      let node = Kernel.Node.boot ~os ~ranks:1 ~threads_per_rank:1 ~seed:7 in
      let makespan =
        Kernel.Node.run_shared_core node ~tasks:8
          ~ops_per_task:[ Kernel.Workload.Compute (10 * Engine.Units.ms) ]
      in
      Printf.printf "  %-12s %s\n" scn.Cluster.Scenario.label
        (Engine.Units.time_to_string makespan))
    (Cluster.Scenario.trio @ [ ts ])

let bechamel_micro () =
  Printf.printf "\n-- wall-clock microbenchmarks of simulator substrates --\n";
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"rng-bits64"
        (let rng = Engine.Rng.create 1 in
         Staged.stage (fun () -> ignore (Engine.Rng.bits64 rng)));
      Test.make ~name:"heap-push-pop"
        (let h = Engine.Heap.create () in
         let i = ref 0 in
         Staged.stage (fun () ->
             incr i;
             Engine.Heap.push h ~key:(!i mod 97) !i;
             ignore (Engine.Heap.pop h)));
      Test.make ~name:"buddy-alloc-free"
        (let b = Mem.Buddy.create ~base:0 ~bytes:(256 * 1024 * 1024) in
         Staged.stage (fun () ->
             match Mem.Buddy.alloc b ~bytes:(2 * 1024 * 1024) with
             | Some addr -> Mem.Buddy.free b ~addr ~bytes:(2 * 1024 * 1024)
             | None -> ()));
      Test.make ~name:"noise-max-delay-64"
        (let rng = Engine.Rng.create 2 in
         Staged.stage (fun () ->
             ignore
               (Noise.Injector.max_delay Noise.Profile.linux_nohz_full rng
                  ~dur:Engine.Units.ms ~ranks:64)));
      Test.make ~name:"allreduce-1024-nodes"
        (let clocks = Array.make 1024 0 in
         let env =
           {
             Mpi.Collective.fabric = Fabric.Fabric.make ~nodes:1024 ();
             syscall_cost = (fun _ -> 0);
             intra_ranks = 64;
           }
         in
         Staged.stage (fun () ->
             Array.fill clocks 0 1024 0;
             Mpi.Collective.allreduce env ~clocks ~bytes:8));
    ]
  in
  let benchmark test =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    (* Sorted: bechamel hands results back in a Hashtbl, and printing
       it in bucket order would let the hash layout pick the line
       order of the report (mklint R3). *)
    List.iter
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.printf "  %-28s %10.1f ns/op\n" name t
        | Some [] | None -> Printf.printf "  %-28s (no estimate)\n" name)
      (Analysis.Sorted.bindings results)
  in
  List.iter
    (fun t -> benchmark (Test.make_grouped ~name:"micro" ~fmt:"%s %s" [ t ]))
    tests

let micro () =
  section "MICROBENCHMARKS & ABLATIONS";
  Printf.printf "\n-- calibration audit: every cost constant in play --\n\n";
  print_string (Cluster.Calibration.table ());
  simulated_micro ();
  bechamel_micro ()

(* ------------------------------------------------------------------ *)
(* TOOLS: /proc, /sys and tools support (Section II-D4)                *)

let tools () =
  section "SECTION II-D4 — pseudo-filesystems and tools support";
  Printf.printf "Pseudo-file serving:\n\n";
  let kernels = [ Kernel.Procfs.Linux; Kernel.Procfs.Mckernel; Kernel.Procfs.Mos ] in
  let kname = function
    | Kernel.Procfs.Linux -> "Linux"
    | Kernel.Procfs.Mckernel -> "McKernel"
    | Kernel.Procfs.Mos -> "mOS"
  in
  let sname = function
    | Kernel.Procfs.Native -> "native"
    | Kernel.Procfs.Reimplemented -> "reimplemented"
    | Kernel.Procfs.Reused -> "reused-from-linux"
    | Kernel.Procfs.Forwarded -> "forwarded(stale)"
    | Kernel.Procfs.Missing -> "missing"
  in
  let rows =
    List.map
      (fun e ->
        Kernel.Procfs.entry_path e
        :: List.map (fun k -> sname (Kernel.Procfs.serve k e)) kernels)
      Kernel.Procfs.entries
  in
  print_string
    (Engine.Table.render ~header:("pseudo-file" :: List.map kname kernels) rows);
  Printf.printf "\nTool support (and where the tool must run):\n\n";
  let rows =
    List.map
      (fun t ->
        Kernel.Procfs.tool_name t
        :: List.map
             (fun k ->
               let where =
                 match Kernel.Procfs.tool_runs_on k t with
                 | `Lwk_core -> " [on LWK core]"
                 | `Linux_core -> ""
               in
               Kernel.Procfs.verdict_to_string (Kernel.Procfs.tool_support k t)
               ^ where)
             kernels)
      Kernel.Procfs.tools
  in
  print_string (Engine.Table.render ~header:("tool" :: List.map kname kernels) rows);
  Printf.printf
    "\nPaper: 'mOS mostly reuses the Linux implementation … in McKernel most\n\
     tools must run on an LWK core, while mOS can leave them on the Linux\n\
     side' (Section II-D4).  Fully-supported tools: Linux %d/%d, mOS %d/%d,\n\
     McKernel %d/%d.\n"
    (Kernel.Procfs.support_score Kernel.Procfs.Linux)
    (List.length Kernel.Procfs.tools)
    (Kernel.Procfs.support_score Kernel.Procfs.Mos)
    (List.length Kernel.Procfs.tools)
    (Kernel.Procfs.support_score Kernel.Procfs.Mckernel)
    (List.length Kernel.Procfs.tools)

(* ------------------------------------------------------------------ *)
(* ISOLATION: co-tenant interference (Section V)                       *)

let isolation () =
  section "ABLATION — performance isolation under a co-located tenant";
  let with_cotenant (s : Cluster.Scenario.t) =
    {
      Cluster.Scenario.label = s.Cluster.Scenario.label ^ "+cotenant";
      make =
        (fun () ->
          let os = s.Cluster.Scenario.make () in
          if Kernel.Os.is_lwk os then os
            (* strong partitioning: the tenant cannot reach LWK cores *)
          else { os with Kernel.Os.app_noise = Noise.Profile.linux_cotenant });
    }
  in
  let a = app_exn "hpcg" in
  let nodes = 64 in
  Printf.printf "HPCG at %d nodes, alone vs sharing the node with a busy tenant:\n\n"
    nodes;
  Printf.printf "%-10s %14s %14s %10s\n" "kernel" "alone" "with tenant" "slowdown";
  List.iter
    (fun s ->
      let alone = Cluster.Experiment.point ~scenario:s ~app:a ~nodes ~runs () in
      let shared =
        Cluster.Experiment.point ~scenario:(with_cotenant s) ~app:a ~nodes ~runs ()
      in
      Printf.printf "%-10s %14.4g %14.4g %9.1f%%\n" s.Cluster.Scenario.label
        alone.Cluster.Experiment.median_fom shared.Cluster.Experiment.median_fom
        (100.0
        *. (1.0
           -. (shared.Cluster.Experiment.median_fom
              /. alone.Cluster.Experiment.median_fom))))
    Cluster.Scenario.trio;
  Printf.printf
    "\nThe LWKs' strong core/memory partitioning keeps the tenant's threads\n\
     off application cores entirely — the isolation property Section V\n\
     highlights from the co-kernel literature.\n"

(* ------------------------------------------------------------------ *)
(* MODES: SNC-4 vs quadrant flat mode (Sections II-D3, III-A/B)        *)

let modes () =
  section "ABLATION — why SNC-4 hurts Linux: CCS-QCD across cluster modes";
  let a = app_exn "ccs-qcd" in
  let nodes = 16 in
  let quadrant_linux =
    {
      Cluster.Scenario.label = "Linux-quadrant";
      make = (fun () -> Kernel.Linux_os.create ~mode:Hw.Knl.Quadrant_flat ());
    }
  in
  let rows =
    List.map
      (fun ((s : Cluster.Scenario.t), app) ->
        let r = Cluster.Experiment.point ~scenario:s ~app ~nodes ~runs () in
        [
          s.Cluster.Scenario.label;
          Printf.sprintf "%.1f%%"
            (100.0 *. r.Cluster.Experiment.median_result.Cluster.Driver.mcdram_fraction);
          Printf.sprintf "%.4g" r.Cluster.Experiment.median_fom;
        ])
      [
        (Cluster.Scenario.mckernel, a);
        (Cluster.Scenario.mos, a);
        (Cluster.Scenario.linux, a);
        (* In quadrant mode a single numactl -p domain covers all of
           MCDRAM, so Linux can spill like the LWKs do. *)
        (quadrant_linux, { a with Apps.App.linux_ddr_only = false });
      ]
  in
  print_string
    (Engine.Table.render ~header:[ "configuration"; "MCDRAM share"; "FOM" ] rows);
  Printf.printf
    "\nIn quadrant mode 'the numactl -p option can be used' and Linux spills\n\
     like the LWKs; 'in SNC-4 mode, four such domains exist, but the current\n\
     Linux implementation allows only one to be listed' (Section III-C) —\n\
     which is why the paper ran SNC-4 Linux CCS-QCD from DDR4.\n"

(* ------------------------------------------------------------------ *)
(* CSV: machine-readable Figure-4 dataset                              *)

let csv () =
  List.iter
    (fun name ->
      let a = app_exn name in
      print_string (Cluster.Report.csv ~app:a (fig4_series name)))
    fig4_apps

let json () =
  let docs =
    List.map
      (fun name ->
        let a = app_exn name in
        Cluster.Report.json ~app:a (fig4_series name))
      fig4_apps
  in
  print_endline (Engine.Json.to_string_pretty (Engine.Json.List docs))

(* ------------------------------------------------------------------ *)
(* SENSITIVITY: how the headline mechanisms respond to their knobs    *)

let sensitivity () =
  section "ABLATION — parameter sensitivity of the two headline mechanisms";
  (* (a) The MiniFE collapse against the heavy-tail noise source. *)
  Printf.printf
    "MiniFE at 1,024 nodes: LWK/Linux ratio vs the daemon-spill source\n\
     (duration of the rare detour that reaches Linux application cores):\n\n";
  let minife = app_exn "minife" in
  let with_spill duration =
    {
      Cluster.Scenario.label = "Linux";
      make =
        (fun () ->
          let os = Kernel.Linux_os.create () in
          let sources =
            Noise.Profile.linux_nohz_full.Noise.Profile.sources
            |> List.filter (fun (s : Noise.Source.t) ->
                   s.Noise.Source.name <> "daemon-spill")
          in
          let sources =
            if duration = 0 then sources
            else
              sources
              @ [
                  Noise.Source.make ~name:"daemon-spill"
                    ~period:(3 * Engine.Units.sec) ~duration ~duration_sigma:0.8 ();
                ]
          in
          {
            os with
            Kernel.Os.app_noise = Noise.Profile.make ~name:"linux-var" sources;
          });
    }
  in
  Printf.printf "  %14s %10s\n" "spill duration" "ratio";
  List.iter
    (fun duration ->
      let linux =
        Cluster.Driver.run ~scenario:(with_spill duration) ~app:minife ~nodes:1024
          ~seed:42 ()
      in
      let mck =
        Cluster.Driver.run ~scenario:Cluster.Scenario.mckernel ~app:minife
          ~nodes:1024 ~seed:42 ()
      in
      Printf.printf "  %14s %9.2fx\n"
        (Engine.Units.time_to_string duration)
        (mck.Cluster.Driver.fom /. linux.Cluster.Driver.fom))
    [ 0; 75 * Engine.Units.us; 150 * Engine.Units.us; 300 * Engine.Units.us ];
  (* (b) The LAMMPS gap against the NIC eager threshold. *)
  Printf.printf
    "\nLAMMPS at 256 nodes: LWK/Linux ratio vs the NIC eager threshold\n\
     (messages above it need control syscalls -> offloaded on LWKs):\n\n";
  let lammps = app_exn "lammps" in
  Printf.printf "  %14s %10s\n" "threshold" "ratio";
  List.iter
    (fun eager_threshold ->
      let f scenario =
        (Cluster.Driver.run ~eager_threshold ~scenario ~app:lammps ~nodes:256
           ~seed:42 ())
          .Cluster.Driver.fom
      in
      Printf.printf "  %14s %9.2fx\n"
        (Engine.Units.size_to_string eager_threshold)
        (f Cluster.Scenario.mckernel /. f Cluster.Scenario.linux))
    [ 4 * 1024; 16 * 1024; 64 * 1024; 1024 * 1024 ];
  Printf.printf
    "\nWith no heavy-tail noise the MiniFE 'collapse' disappears; with an\n\
     eager threshold above the message size the LAMMPS penalty disappears —\n\
     each headline result is carried by exactly the mechanism the paper\n\
     names, and by nothing else.\n"

(* ------------------------------------------------------------------ *)
(* RESULTS: the bench/JSON pipeline — suite trajectory on disk        *)

let results_dir = Filename.concat "bench" "results"

(* Crash-safe: a killed bench run can leave a stale .tmp behind but
   never a torn latest.json. *)
let write_file path contents = Engine.Atomic_file.write path contents

(* ------------------------------------------------------------------ *)
(* HISTORY: tagged perf trajectory + regression diff                  *)

(* Every perf/scale run — smoke included — appends to a tagged
   history under bench/results/: [<target>-<tag>.json] is the
   immutable snapshot, [<target>-latest.json] the moving head, and
   [<target>-prev.json] the head it displaced, so
   [diff --against latest] always has the run before this one to
   compare with.  Wall clock is fine here: tags are provenance, never
   simulation input (the determinism contract lives in lib/). *)
let history_targets = [ "perf"; "perf-smoke"; "scale"; "scale-smoke" ]

(* Tags that can never name a snapshot: "latest"/"prev" are the moving
   heads above, "smoke" would collide with the legacy
   [perf-smoke.json]/[scale-smoke.json] gate files. *)
let reserved_tags = [ "latest"; "prev"; "smoke" ]

let default_tag () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let record_history ~target ~tag doc =
  if List.mem tag reserved_tags || String.contains tag '/' then begin
    Printf.eprintf "history: %S is a reserved tag (reserved: %s)\n" tag
      (String.concat " " reserved_tags);
    exit 1
  end;
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755;
  let path name = Filename.concat results_dir (target ^ "-" ^ name ^ ".json") in
  let latest = path "latest" in
  (* Preserve the displaced head first: a crash between the two writes
     still leaves a consistent (prev, latest) pair on disk. *)
  if Sys.file_exists latest then
    write_file (path "prev") (Engine.Atomic_file.read latest);
  List.iter
    (fun p ->
      write_file p doc;
      Printf.printf "wrote %s\n" p)
    [ path tag; latest ]

(* A file belongs to the longest matching target prefix, so listing
   the [perf] history never swallows [perf-smoke-*] snapshots. *)
let history_owner file =
  List.fold_left
    (fun acc t ->
      if
        String.starts_with ~prefix:(t ^ "-") file
        && match acc with None -> true | Some a -> String.length t > String.length a
      then Some t
      else acc)
    None history_targets

let history_entries target =
  if not (Sys.file_exists results_dir) then []
  else
    Sys.readdir results_dir |> Array.to_list
    |> List.filter_map (fun f ->
           if
             Filename.check_suffix f ".json" && history_owner f = Some target
           then
             let prefix_len = String.length target + 1 in
             let tag =
               String.sub f prefix_len (String.length f - prefix_len - 5)
             in
             if List.mem tag reserved_tags then None else Some tag
           else None)
    |> List.sort compare

(* Flatten a document to dotted-path numeric leaves; list elements get
   positional [i] indices so matching paths compare one-to-one. *)
let rec num_leaves prefix j acc =
  match j with
  | Engine.Json.Int i -> (prefix, float_of_int i) :: acc
  | Engine.Json.Float f -> (prefix, f) :: acc
  | Engine.Json.Bool _ | Engine.Json.String _ | Engine.Json.Null -> acc
  | Engine.Json.Obj fs ->
      List.fold_left
        (fun acc (k, v) ->
          num_leaves (if prefix = "" then k else prefix ^ "." ^ k) v acc)
        acc fs
  | Engine.Json.List xs ->
      snd
        (List.fold_left
           (fun (i, acc) v ->
             (i + 1, num_leaves (Printf.sprintf "%s[%d]" prefix i) v acc))
           (0, acc) xs)

let flatten_doc j = List.rev (num_leaves "" j [])

(* Which way is worse?  Classified from the leaf name: throughputs,
   speedups and utilizations must not fall; overheads and percentage
   costs must not climb.  Raw wall-clock [_seconds]/[_ns] figures are
   report-only — they move with machine load, and gating on them makes
   CI flake on a busy box.  Counts, seeds and simulated figures
   (events, completion times, FOMs) are model output, legitimately
   changed by model PRs, so they are never gated either. *)
type direction = Higher_better | Lower_better | Report_only

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let leaf_name path =
  let last =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  match String.index_opt last '[' with
  | Some i -> String.sub last 0 i
  | None -> last

let diff_direction path =
  let n = leaf_name path in
  if
    contains_sub ~sub:"speedup" n
    || contains_sub ~sub:"improvement" n
    || Filename.check_suffix n "_per_sec"
    || n = "horizon_utilization"
  then Higher_better
  else if Filename.check_suffix n "_pct" || contains_sub ~sub:"overhead" n then
    Lower_better
  else Report_only

type delta = {
  d_path : string;
  d_old : float;
  d_new : float;
  d_rel : float option;  (** percent change; [None] when old is ~0 *)
  d_dir : direction;
  d_regression : bool;
}

(* Pair up numeric leaves by path and flag gated metrics whose change
   crosses [threshold] percent in the bad direction.  Metrics present
   in only one document are structure changes, not regressions — the
   caller reports their count. *)
let compare_docs ~threshold a b =
  let la = flatten_doc a and lb = flatten_doc b in
  let deltas =
    List.filter_map
      (fun (path, nv) ->
        match List.assoc_opt path la with
        | None -> None
        | Some ov ->
            let rel =
              if Float.abs ov > 1e-9 then
                Some ((nv -. ov) /. Float.abs ov *. 100.)
              else None
            in
            let dir =
              match diff_direction path with
              | (Higher_better | Lower_better)
                when Filename.check_suffix (leaf_name path) "_pct"
                     && Float.abs ov < 1.0 ->
                  (* A percentage metric with a sub-point baseline sits
                     at the measurement's noise floor (e.g. a disabled
                     overhead hovering around 0 +/- 1): its *relative*
                     delta explodes on harmless jitter.  The absolute
                     bars (perf --smoke's <= 2% gate) own that regime;
                     the trend diff only gates once the baseline is at
                     least one point. *)
                  Report_only
              | d -> d
            in
            let regression =
              match (rel, dir) with
              | Some r, Higher_better -> r < -.threshold
              | Some r, Lower_better -> r > threshold
              | _ -> false
            in
            Some
              {
                d_path = path;
                d_old = ov;
                d_new = nv;
                d_rel = rel;
                d_dir = dir;
                d_regression = regression;
              })
      lb
  in
  let known l = List.filter (fun (p, _) -> List.mem_assoc p l) in
  let missing = List.length la - List.length (known lb la) in
  let added = List.length lb - List.length (known la lb) in
  (deltas, missing, added)

let print_diff ~threshold ~label_a ~label_b (deltas, missing, added) =
  Printf.printf "bench diff: %s -> %s (threshold %g%%)\n" label_a label_b
    threshold;
  let changed = List.filter (fun d -> d.d_old <> d.d_new) deltas in
  let show d =
    let rel =
      match d.d_rel with
      | Some r -> Printf.sprintf "%+.1f%%" r
      | None -> "(from ~0)"
    in
    let mark =
      if d.d_regression then "  REGRESSION"
      else
        match d.d_dir with
        | Higher_better | Lower_better -> ""
        | Report_only -> "  (report-only)"
    in
    Printf.printf "  %-44s %14.6g -> %-14.6g %10s%s\n" d.d_path d.d_old
      d.d_new rel mark
  in
  List.iter show changed;
  let regressions = List.filter (fun d -> d.d_regression) deltas in
  Printf.printf
    "%d metric(s) compared, %d changed, %d regression(s)%s%s\n"
    (List.length deltas) (List.length changed) (List.length regressions)
    (if missing > 0 then Printf.sprintf ", %d dropped" missing else "")
    (if added > 0 then Printf.sprintf ", %d new" added else "");
  List.length regressions

(* A diff operand resolves in order: literal path, a file under
   bench/results/, a bare snapshot name, or a history target whose
   [-latest] head is meant. *)
let resolve_snapshot r =
  let candidates =
    [
      r;
      Filename.concat results_dir r;
      Filename.concat results_dir (r ^ ".json");
      Filename.concat results_dir (r ^ "-latest.json");
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None ->
      Printf.eprintf "diff: cannot resolve %S (tried: %s)\n" r
        (String.concat ", " candidates);
      exit 1

let read_snapshot path =
  match Engine.Atomic_file.read_json path with
  | j -> j
  | exception Engine.Atomic_file.Corrupt { path; reason } ->
      Printf.eprintf "diff: %s is corrupt: %s\n" path reason;
      exit 1

let diff_files ~threshold pa pb =
  print_diff ~threshold ~label_a:pa ~label_b:pb
    (compare_docs ~threshold (read_snapshot pa) (read_snapshot pb))

let diff_against_latest ~smoke ~threshold =
  let targets =
    if smoke then [ "perf-smoke"; "scale-smoke" ] else [ "perf"; "scale" ]
  in
  let regressions =
    List.fold_left
      (fun acc t ->
        let prev = Filename.concat results_dir (t ^ "-prev.json") in
        let latest = Filename.concat results_dir (t ^ "-latest.json") in
        if Sys.file_exists prev && Sys.file_exists latest then
          acc + diff_files ~threshold prev latest
        else begin
          (* Fresh checkout or first run: one snapshot is no trajectory
             yet, and a gate that fails on it would block every clean
             clone — skip loudly instead. *)
          Printf.printf "%s: no history to diff yet (need two runs)\n" t;
          acc
        end)
      0 targets
  in
  if regressions > 0 then exit 1

let history ?target () =
  let show t =
    match history_entries t with
    | [] -> Printf.printf "%-12s (no tagged snapshots)\n" t
    | entries ->
        List.iter
          (fun tag ->
            let path = Filename.concat results_dir (t ^ "-" ^ tag ^ ".json") in
            let summary =
              match Engine.Atomic_file.read_json path with
              | exception Engine.Atomic_file.Corrupt { reason; _ } ->
                  "corrupt: " ^ reason
              | j ->
                  let leaves = flatten_doc j in
                  let prefer =
                    [ "events_per_sec"; "speedup_j2"; "null_overhead_pct";
                      "suite_seconds"; "speedup" ]
                  in
                  let picks =
                    List.filter_map
                      (fun n ->
                        List.find_opt (fun (p, _) -> leaf_name p = n) leaves
                        |> Option.map (fun (_, v) ->
                               Printf.sprintf "%s=%.4g" n v))
                      prefer
                  in
                  Printf.sprintf "%d metrics%s" (List.length leaves)
                    (match picks with
                    | [] -> ""
                    | _ -> "  " ^ String.concat " " picks)
            in
            Printf.printf "%-12s %-18s %s\n" t tag summary)
          entries
  in
  match target with
  | Some t when not (List.mem t history_targets) ->
      Printf.eprintf "history: unknown target %s (targets: %s)\n" t
        (String.concat " " history_targets);
      exit 1
  | Some t -> show t
  | None -> List.iter show history_targets

(* The regression detector tested against itself: a synthetic baseline
   vs (a) the identical document — zero regressions, exit 0 semantics —
   and (b) a deliberately degraded copy, where exactly the gated
   metrics must fire and the report-only ones must not.  This is the
   CI evidence that [diff --against latest] can actually catch a
   regression, independent of whether the real trajectory has one. *)
let diff_selftest () =
  section "DIFF-SELFTEST — regression detector vs synthetic snapshots";
  let doc ~eps ~j2 ~null ~secs ~events ~fom =
    Engine.Json.Obj
      [
        ("schema", Engine.Json.String "multikernel-perf/1");
        ("events_per_sec", Engine.Json.Float eps);
        ( "suite",
          Engine.Json.Obj
            [
              ("speedup_j2", Engine.Json.Float j2);
              ("suite_seconds", Engine.Json.Float secs);
            ] );
        ("obs", Engine.Json.Obj [ ("null_overhead_pct", Engine.Json.Float null) ]);
        ( "des",
          Engine.Json.Obj
            [ ("events", Engine.Json.Int events); ("fom", Engine.Json.Float fom) ]
        );
      ]
  in
  let base = doc ~eps:2.0e6 ~j2:1.5 ~null:1.0 ~secs:2.0 ~events:123_456 ~fom:5.0 in
  (* Degraded in every dimension; only the gated ones may fire. *)
  let bad = doc ~eps:0.9e6 ~j2:1.0 ~null:3.0 ~secs:9.0 ~events:654_321 ~fom:1.0 in
  let expect name cond =
    if cond then Printf.printf "  ok: %s\n" name
    else begin
      Printf.eprintf "  FAIL: %s\n" name;
      exit 1
    end
  in
  let regressions docs_a docs_b threshold =
    let deltas, _, _ = compare_docs ~threshold docs_a docs_b in
    List.filter (fun d -> d.d_regression) deltas
    |> List.map (fun d -> d.d_path)
    |> List.sort compare
  in
  expect "identical documents show zero regressions"
    (regressions base base 25.0 = []);
  expect "seeded regressions fire on exactly the gated metrics"
    (regressions base bad 25.0
    = [ "events_per_sec"; "obs.null_overhead_pct"; "suite.speedup_j2" ]);
  expect "wall-clock and model-output leaves never gate"
    (List.for_all
       (fun p ->
         not
           (List.mem p
              [ "suite.suite_seconds"; "des.events"; "des.fom" ]))
       (regressions base bad 0.0));
  expect "threshold is honoured"
    (regressions base bad 1000.0 = []);
  (* A percentage metric whose baseline sits below one point is at the
     measurement's noise floor: a -0.1 -> 0.9 wobble is a +1000%
     relative change but means nothing — it must never gate.  (The
     absolute bars in perf --smoke own that regime.) *)
  let noisy_base =
    doc ~eps:2.0e6 ~j2:1.5 ~null:(-0.1) ~secs:2.0 ~events:123_456 ~fom:5.0
  in
  let noisy_now =
    doc ~eps:2.0e6 ~j2:1.5 ~null:0.9 ~secs:2.0 ~events:123_456 ~fom:5.0
  in
  expect "sub-point pct baselines never gate (noise floor)"
    (regressions noisy_base noisy_now 25.0 = []);
  ignore
    (print_diff ~threshold:25.0 ~label_a:"synthetic-base"
       ~label_b:"synthetic-degraded"
       (compare_docs ~threshold:25.0 base bad));
  Printf.printf "diff-selftest: all expectations hold\n"

let results ?tag ?jobs () =
  section "RESULTS — suite trajectory to bench/results/";
  let jobs =
    match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  let seed = 42 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  Printf.printf "sequential suite (%d apps x 3 kernels, %d runs each)...\n%!"
    (List.length Apps.Registry.all) runs;
  let seq, seq_s = timed (fun () -> Cluster.Experiment.suite ~runs ~seed ()) in
  Printf.printf "parallel suite (%d jobs)...\n%!" jobs;
  let pool = Engine.Pool.create ~num_domains:jobs () in
  let par, par_s = timed (fun () -> Cluster.Experiment.suite ~pool ~runs ~seed ()) in
  Engine.Pool.shutdown pool;
  let render suite =
    Engine.Json.to_string_pretty (Cluster.Report.suite_json ~runs ~seed suite)
  in
  (* The determinism contract, enforced on every results run: the
     parallel fan-out must not change a single byte of the output. *)
  if render seq <> render par then
    failwith "results: parallel suite diverged from sequential suite";
  Printf.printf "sequential %.1fs, parallel %.1fs (%.2fx), outputs identical\n"
    seq_s par_s (seq_s /. par_s);
  let meta =
    (match tag with Some t -> [ ("tag", Engine.Json.String t) ] | None -> [])
    @ [
        ("jobs", Engine.Json.Int jobs);
        ("sequential_seconds", Engine.Json.Float seq_s);
        ("parallel_seconds", Engine.Json.Float par_s);
        ("speedup", Engine.Json.Float (seq_s /. par_s));
      ]
  in
  let doc =
    Engine.Json.to_string_pretty (Cluster.Report.suite_json ~runs ~seed ~meta par)
    ^ "\n"
  in
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755;
  let latest = Filename.concat results_dir "latest.json" in
  write_file latest doc;
  Printf.printf "wrote %s\n" latest;
  match tag with
  | None -> ()
  | Some t ->
      let tagged = Filename.concat results_dir (t ^ ".json") in
      write_file tagged doc;
      Printf.printf "wrote %s\n" tagged

(* ------------------------------------------------------------------ *)
(* FAULTS: degradation tables + isolation demo, through the pipeline  *)

let faults () =
  section "FAULTS — degradation under escalating fault rates";
  let pool =
    Engine.Pool.create ~num_domains:(Domain.recommended_domain_count ()) ()
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let tables =
    [
      Cluster.Degradation.run ~pool ~app:(app_exn "hpcg") ~nodes:64
        ~preset:"mixed" ~runs ();
      Cluster.Degradation.run ~pool ~app:(app_exn "minife") ~nodes:256
        ~preset:"mixed" ~runs ();
    ]
  in
  List.iter
    (fun t ->
      print_string (Cluster.Degradation.render t);
      print_newline ())
    tables;
  let demo = Cluster.Degradation.isolation_demo ~pool ~runs () in
  print_string (Cluster.Degradation.render_demo demo);
  let doc =
    Engine.Json.to_string_pretty
      (Engine.Json.Obj
         [
           ("schema", Engine.Json.String "multikernel-faults-report/1");
           ( "tables",
             Engine.Json.List (List.map Cluster.Degradation.to_json tables) );
           ("isolation_demo", Cluster.Degradation.demo_to_json demo);
         ])
    ^ "\n"
  in
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755;
  let path = Filename.concat results_dir "faults.json" in
  write_file path doc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* PERF: hot-path microbenchmarks and the parallel-speedup record     *)

(* Three measurements, written to bench/results/ as
   "multikernel-perf/1" JSON:

     - events/sec through the DES core (Sim + Heap, with live
       cancellations exercising the tombstone-free cancel path);
     - pages/sec through the page-table accounting (a 4 GiB 4 KiB-page
       map/unmap, which the closed-form span arithmetic makes O(leaf
       tables) instead of O(pages) — op_count is reported so the bound
       is visible in the record);
     - suite wall-clock, sequential vs -j 2 (vs -j 4 in full mode),
       measured in-process back to back after a warm-up pass, because
       process start-up and first-touch effects are larger than the
       seq/par gap itself;
     - observability overhead: one fixed experiment timed with no
       recorder installed (sink=Null — the ambient hook takes its
       disabled branch), with an in-memory metrics collector
       (sink=Memory) and with a full trace written through
       Atomic_file (sink=File), so the zero-cost-when-disabled claim
       of docs/OBSERVABILITY.md is a measured number in the record,
       not an assertion.

   The record also self-profiles the harness: wall-clock per perf
   phase and the full per-domain scheduler statistics of each -j mode
   (Engine.Pool.stats — executed, local pops, steals, failed steals,
   injector runs, rendered through Obs.Pool_stats) land in the JSON.

   Modes are interleaved and each keeps its best time, the standard
   defence against timer noise on a shared machine.  The smoke variant
   is the CI gate: tiny configuration, and a non-zero exit if the
   suite speedups regress — -j 2 must beat sequential on machines
   with at least two cores, and -j 4 must clear the 1.25x bar the
   work-stealing pool is held to on machines with at least four.
   Each gate is conditional on the cores that could make it passable:
   on a 1-core container -j N cannot beat sequential by any
   scheduling (the same instructions run with extra coordination), so
   there the speedups are recorded but not gated. *)

let perf ?tag ~smoke () =
  section
    (if smoke then "PERF (smoke) — hot-path gate"
     else "PERF — hot-path microbenchmarks and parallel speedup");
  let tag = match tag with Some t -> t | None -> default_tag () in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  (* -- events/sec through the DES core ------------------------------ *)
  let target_events = if smoke then 200_000 else 2_000_000 in
  let chains = 64 in
  let fired = ref 0 in
  let sim = Engine.Sim.create () in
  let rec handler delay t =
    incr fired;
    if !fired + chains <= target_events then begin
      (* A cancelled decoy per firing keeps the cancellation path on
         the measured profile alongside push/pop. *)
      Engine.Sim.cancel t (Engine.Sim.schedule_after t ~delay:(delay + 1) ignore);
      ignore (Engine.Sim.schedule_after t ~delay (handler delay))
    end
  in
  for c = 1 to chains do
    ignore (Engine.Sim.schedule_after sim ~delay:c (handler c))
  done;
  let (), sim_s = timed (fun () -> Engine.Sim.run sim) in
  let events_per_sec = float_of_int !fired /. sim_s in
  Printf.printf "DES core:   %d events in %.3fs = %.2fM events/s\n%!" !fired
    sim_s (events_per_sec /. 1e6);
  (* -- pages/sec through the page-table accounting ------------------ *)
  let gib = 1024 * 1024 * 1024 in
  let pt_iters = if smoke then 4 else 32 in
  let pt = Mem.Page_table.create () in
  let (), pt_s =
    timed (fun () ->
        for _ = 1 to pt_iters do
          Mem.Page_table.map pt ~vaddr:0 ~bytes:(4 * gib) ~page:Mem.Page.Small;
          Mem.Page_table.unmap pt ~vaddr:0 ~bytes:(4 * gib) ~page:Mem.Page.Small
        done)
  in
  let pages_touched = pt_iters * 2 * (4 * gib / 4096) in
  let pages_per_sec = float_of_int pages_touched /. pt_s in
  let pt_ops = Mem.Page_table.op_count pt in
  Printf.printf
    "page table: %d x (map+unmap 4 GiB of 4K) in %.3fs = %.0fM pages/s (%d inner ops)\n%!"
    pt_iters pt_s (pages_per_sec /. 1e6) pt_ops;
  (* -- suite wall-clock: sequential vs parallel --------------------- *)
  let apps = if smoke then [ app_exn "hpcg" ] else Apps.Registry.all in
  let node_counts = if smoke then Some [ 512; 1024; 2048 ] else None in
  let perf_runs = 2 in
  let seed = 42 in
  let run_suite ?pool () =
    Cluster.Experiment.suite ?pool ~apps ?node_counts ~runs:perf_runs ~seed ()
  in
  let render s =
    Engine.Json.to_string_pretty
      (Cluster.Report.suite_json ~runs:perf_runs ~seed s)
  in
  (* Scheduler statistics of the most recent run at each -j, for the
     utilisation section of the record (racy snapshot by design, see
     Pool.stats — taken after the map has drained). *)
  let utilization : (int * Engine.Pool.stats) list ref = ref [] in
  let time_mode jobs =
    if jobs <= 1 then timed (fun () -> run_suite ())
    else begin
      let pool = Engine.Pool.create ~num_domains:(jobs - 1) () in
      Fun.protect
        ~finally:(fun () -> Engine.Pool.shutdown pool)
        (fun () ->
          let r = timed (fun () -> run_suite ~pool ()) in
          utilization :=
            (jobs, Engine.Pool.stats pool)
            :: List.remove_assoc jobs !utilization;
          r)
    end
  in
  (* Smoke includes the -j 4 gate mode only where four executors can
     actually run; the full record always measures it. *)
  let modes =
    if smoke && Domain.recommended_domain_count () < 4 then [ 1; 2 ]
    else [ 1; 2; 4 ]
  in
  let best : (int, string * float) Hashtbl.t = Hashtbl.create 4 in
  let measure_round () =
    List.iter
      (fun jobs ->
        let suite, s = time_mode jobs in
        let doc = render suite in
        Printf.printf "  -j %d  %.2fs\n%!" jobs s;
        match Hashtbl.find_opt best jobs with
        | Some (_, s0) when s0 <= s -> ()
        | _ -> Hashtbl.replace best jobs (doc, s))
      modes
  in
  let (), suite_phase_s =
    timed (fun () ->
        Printf.printf "suite warm-up...\n%!";
        ignore
          (Cluster.Experiment.suite ~apps:[ app_exn "hpcg" ]
             ~node_counts:[ 64; 128 ] ~runs:1 ~seed ());
        let rounds = if smoke then 1 else 2 in
        for _ = 1 to rounds do
          measure_round ()
        done;
        (* One retry before the smoke gate rules: a single scheduling
           hiccup on a loaded CI machine must not fail the build. *)
        let cores = Domain.recommended_domain_count () in
        let gates_failing () =
          let seq = snd (Hashtbl.find best 1) in
          (cores >= 2 && snd (Hashtbl.find best 2) > seq)
          || (cores >= 4
             &&
             match Hashtbl.find_opt best 4 with
             | Some (_, j4_s) -> seq /. j4_s < 1.25
             | None -> false)
        in
        if smoke && gates_failing () then measure_round ())
  in
  let seq_doc, seq_s = Hashtbl.find best 1 in
  (* The determinism contract, enforced here too: every parallel
     rendering must equal the sequential one byte for byte. *)
  List.iter
    (fun (jobs, (doc, _)) ->
      if doc <> seq_doc then
        failwith
          (Printf.sprintf "perf: -j %d suite diverged from sequential" jobs))
    (Analysis.Sorted.bindings best);
  let _, j2_s = Hashtbl.find best 2 in
  Printf.printf "suite: sequential %.2fs, -j 2 %.2fs (%.2fx)%s, outputs identical\n"
    seq_s j2_s (seq_s /. j2_s)
    (match Hashtbl.find_opt best 4 with
    | Some (_, j4_s) -> Printf.sprintf ", -j 4 %.2fs (%.2fx)" j4_s (seq_s /. j4_s)
    | None -> "");
  (* -- observability overhead: sink=Null vs Memory vs File ----------- *)
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755;
  let obs_app = app_exn "hpcg" in
  let obs_nodes = 64 in
  let obs_runs = 2 in
  (* One point at this size is ~1 ms — far below timer resolution — so
     each sink measurement repeats it, with a fresh collector (and a
     fresh trace write) per repetition: the per-experiment cost is what
     a user of --trace actually pays, and the sample grows to tens of
     milliseconds where the 2% gate is meaningful. *)
  let obs_reps = if smoke then 64 else 96 in
  let obs_trace_path = Filename.concat results_dir "obs-overhead-trace.json" in
  let obs_events = ref 0 in
  let obs_bytes = ref 0 in
  let obs_point ?obs () =
    ignore
      (Cluster.Experiment.point ?obs ~scenario:Cluster.Scenario.mckernel
         ~app:obs_app ~nodes:obs_nodes ~runs:obs_runs ~seed ())
  in
  (* [`Baseline] and [`Null] run identical code — the ambient hook's
     disabled branch IS the baseline path, there is no hook-free build
     to compare against — so their timing difference is the noise
     floor of this measurement, which is exactly what the ≤ 2% gate on
     null_overhead_pct asserts: the disabled sink costs nothing that
     rises above timer noise. *)
  let time_sink sink =
    snd
      (timed (fun () ->
           for _ = 1 to obs_reps do
             match sink with
             | `Baseline | `Null -> obs_point ()
             | `Memory ->
                 let c = Obs.Collect.create () in
                 obs_point ~obs:c ()
             | `File ->
                 let c = Obs.Collect.create ~trace:true () in
                 obs_point ~obs:c ();
                 let doc =
                   Engine.Json.to_string (Obs.Collect.trace_json c) ^ "\n"
                 in
                 obs_events := List.length (Obs.Collect.events c);
                 obs_bytes := String.length doc;
                 write_file obs_trace_path doc
           done))
  in
  let sink_name = function
    | `Baseline -> "baseline"
    | `Null -> "null"
    | `Memory -> "memory"
    | `File -> "file"
  in
  let sinks = [ `Baseline; `Null; `Memory; `File ] in
  let obs_best : (string, float) Hashtbl.t = Hashtbl.create 4 in
  let obs_round () =
    List.iter
      (fun sink ->
        let s = time_sink sink in
        let name = sink_name sink in
        match Hashtbl.find_opt obs_best name with
        | Some s0 when s0 <= s -> ()
        | _ -> Hashtbl.replace obs_best name s)
      sinks
  in
  let obs_stats () =
    let get name = Hashtbl.find obs_best name in
    let base = get "baseline" and null = get "null" in
    let mem = get "memory" and file = get "file" in
    let pct a b = 100.0 *. ((a /. b) -. 1.0) in
    (base, null, mem, file, pct null base, pct mem null, pct file null)
  in
  let (), obs_phase_s =
    timed (fun () ->
        Printf.printf "obs sinks (%s x %d nodes x %d runs x %d reps)...\n%!"
          obs_app.Apps.App.name obs_nodes obs_runs obs_reps;
        let rounds = if smoke then 2 else 3 in
        for _ = 1 to rounds do
          obs_round ()
        done;
        (* Retry policy, slightly stronger than the -j 2 gate's: since
           [`Baseline] and [`Null] run identical code, best-of-N for
           both converges on the same true time as N grows — extra
           rounds only ever tighten the measurement.  On a loaded
           single-core box the sample-to-sample spread can exceed the
           2% bar, so allow up to three extra rounds, stopping as soon
           as the gate is satisfied. *)
        let retries = ref 0 in
        let failing () =
          let _, _, _, _, null_pct, _, _ = obs_stats () in
          null_pct > 2.0
        in
        while smoke && failing () && !retries < 3 do
          incr retries;
          obs_round ()
        done)
  in
  let obs_base, obs_null, obs_mem, obs_file, null_pct, mem_pct, file_pct =
    obs_stats ()
  in
  Printf.printf
    "obs sinks:  null %.3fs (%+.2f%% vs baseline), memory %.3fs (%+.2f%%), \
     file %.3fs (%+.2f%%, %d events)\n"
    obs_null null_pct obs_mem mem_pct obs_file file_pct !obs_events;
  (* The per-hook cost itself, both branches of the ambient sink. *)
  let hook_iters = 1_000_000 in
  let per_op f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to hook_iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int hook_iters
  in
  let bump () = Obs.Hook.count ~subsystem:"bench" ~name:"noop" 1 in
  let disabled_hook_ns = per_op bump in
  let enabled_count_ns =
    let r = Obs.Recorder.make ~label:"bench" ~nodes:1 ~seed:0 () in
    Obs.Hook.with_recorder r (fun () -> per_op bump)
  in
  Printf.printf "hook cost:  disabled %.1f ns/op, counting %.1f ns/op\n"
    disabled_hook_ns enabled_count_ns;
  let doc =
    Engine.Json.to_string_pretty
      (Engine.Json.Obj
         ([
            ("schema", Engine.Json.String "multikernel-perf/1");
            ("tag", Engine.Json.String tag);
          ]
         @ [
             ("smoke", Engine.Json.Bool smoke);
             ("sim_events", Engine.Json.Int !fired);
             ("events_per_sec", Engine.Json.Float events_per_sec);
             ("pages_per_sec", Engine.Json.Float pages_per_sec);
             ("page_table_ops", Engine.Json.Int pt_ops);
             ( "suite",
               Engine.Json.Obj
                 ([
                    ("apps", Engine.Json.Int (List.length apps));
                    ("runs", Engine.Json.Int perf_runs);
                    ("sequential_seconds", Engine.Json.Float seq_s);
                    ("j2_seconds", Engine.Json.Float j2_s);
                    ("speedup_j2", Engine.Json.Float (seq_s /. j2_s));
                  ]
                 @
                 match Hashtbl.find_opt best 4 with
                 | Some (_, j4_s) ->
                     [
                       ("j4_seconds", Engine.Json.Float j4_s);
                       ("speedup_j4", Engine.Json.Float (seq_s /. j4_s));
                     ]
                 | None -> []) );
             ( "obs",
               Engine.Json.Obj
                 [
                   ( "workload",
                     Engine.Json.Obj
                       [
                         ("app", Engine.Json.String obs_app.Apps.App.name);
                         ("nodes", Engine.Json.Int obs_nodes);
                         ("runs", Engine.Json.Int obs_runs);
                         ("reps", Engine.Json.Int obs_reps);
                       ] );
                   ("baseline_seconds", Engine.Json.Float obs_base);
                   ("null_seconds", Engine.Json.Float obs_null);
                   ("memory_seconds", Engine.Json.Float obs_mem);
                   ("file_seconds", Engine.Json.Float obs_file);
                   ("null_overhead_pct", Engine.Json.Float null_pct);
                   ("memory_overhead_pct", Engine.Json.Float mem_pct);
                   ("file_overhead_pct", Engine.Json.Float file_pct);
                   ("trace_events", Engine.Json.Int !obs_events);
                   ("trace_bytes", Engine.Json.Int !obs_bytes);
                   ("disabled_hook_ns", Engine.Json.Float disabled_hook_ns);
                   ("enabled_count_ns", Engine.Json.Float enabled_count_ns);
                 ] );
             ( "pool_utilization",
               Engine.Json.List
                 (List.map
                    (fun ((jobs : int), (st : Engine.Pool.stats)) ->
                      let ints a =
                        Engine.Json.List
                          (Array.to_list
                             (Array.map (fun n -> Engine.Json.Int n) a))
                      in
                      Engine.Json.Obj
                        [
                          ("jobs", Engine.Json.Int jobs);
                          ("executed_per_domain", ints st.Engine.Pool.executed);
                          ("local_pops", ints st.Engine.Pool.local_pops);
                          ("steals", ints st.Engine.Pool.steals);
                          ("failed_steals", ints st.Engine.Pool.failed_steals);
                          ("injected_runs", ints st.Engine.Pool.injected_runs);
                          (* The same numbers in the metrics key
                             vocabulary, via the obs bridge — scheduler
                             self-profiling only, never merged into run
                             snapshots (the counts are host-machine
                             races, not simulation output). *)
                          ("sched_metrics", Obs.Pool_stats.to_json st);
                        ])
                    (List.sort (fun (a, _) (b, _) -> compare (a : int) b)
                       !utilization)) );
             ( "phase_seconds",
               Engine.Json.Obj
                 [
                   ("des", Engine.Json.Float sim_s);
                   ("page_table", Engine.Json.Float pt_s);
                   ("suite", Engine.Json.Float suite_phase_s);
                   ("obs", Engine.Json.Float obs_phase_s);
                 ] );
             ("outputs_identical", Engine.Json.Bool true);
           ]))
    ^ "\n"
  in
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755;
  let paths =
    if smoke then [ Filename.concat results_dir "perf-smoke.json" ]
    else [ Filename.concat results_dir "latest-perf.json" ]
  in
  List.iter
    (fun path ->
      write_file path doc;
      (* Round-trip through the parser so a schema-level mistake fails
         here, not in a later consumer. *)
      (match Engine.Json.of_string (Engine.Atomic_file.read path) with
      | Ok _ -> ()
      | Error e ->
          Printf.eprintf "%s does not parse back: %s\n" path e;
          exit 1);
      Printf.printf "wrote %s\n" path)
    paths;
  (* Tagged history before the gates: a run that fails its own bar
     still lands in the trajectory, which is exactly when the record
     is most interesting. *)
  record_history ~target:(if smoke then "perf-smoke" else "perf") ~tag doc;
  if smoke && Domain.recommended_domain_count () >= 2 && j2_s > seq_s then begin
    Printf.eprintf
      "perf --smoke: -j 2 (%.2fs) slower than sequential (%.2fs) — the\n\
       parallel engine is regressing; see docs/PERFORMANCE.md\n"
      j2_s seq_s;
    exit 1
  end;
  let cores = Domain.recommended_domain_count () in
  (match (smoke && cores >= 4, Hashtbl.find_opt best 4) with
  | true, Some (_, j4_s) when seq_s /. j4_s < 1.25 ->
      Printf.eprintf
        "perf --smoke: -j 4 speedup %.2fx below the 1.25x bar (sequential\n\
         %.2fs, -j 4 %.2fs) — work stealing is regressing; see\n\
         docs/PARALLELISM.md\n"
        (seq_s /. j4_s) seq_s j4_s;
      exit 1
  | _ -> ());
  if smoke && null_pct > 2.0 then begin
    Printf.eprintf
      "perf --smoke: Null-sink overhead %.2f%% exceeds 2%% — the disabled\n\
       observability hooks are no longer free; see docs/OBSERVABILITY.md\n"
      null_pct;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* SCALE: the weak-scaling record past the paper's 2,048 nodes        *)

(* The ROADMAP's north star made measurable: at each node count the
   suite subset (weak-scaling apps, one run) is timed end to end, the
   event-driven tier is run once through the serial heap and once
   sharded (Cluster_des.sharded_allreduce_loop), and the two results
   are compared byte for byte.  The DES measurement uses the noisy
   mOS profile so fast-forward never engages and the event count is
   the honest serial event count — the sharded/serial wall-clock
   ratio is then a pure parallel-protocol number.  Everything lands
   in bench/results/latest-scale.json plus the repo-root
   BENCH_scale.json so the trajectory is tracked across PRs.

   The smoke variant is the CI gate: small node counts, byte-identity
   at several shard counts, and — on machines with at least four
   cores — a fast-forward speedup gate on the silent profile (many
   iterations, so the closed-form skip dominates; same one-retry
   policy as the perf gates). *)

let scale_window = 2 * Engine.Units.ms

let scale_des ?pool ?fast_forward ~shards ~nodes ~iterations ~profile () =
  let fabric = Fabric.Fabric.make ~nodes () in
  Cluster.Cluster_des.sharded_allreduce_loop ?pool ?fast_forward ~shards ~nodes
    ~ranks_per_node:64 ~threads_per_rank:1 ~window:scale_window ~iterations
    ~bytes:8 ~profile ~fabric ~seed:42 ()

let scale_serial ~nodes ~iterations ~profile =
  let fabric = Fabric.Fabric.make ~nodes () in
  Cluster.Cluster_des.allreduce_loop ~nodes ~ranks_per_node:64
    ~threads_per_rank:1 ~window:scale_window ~iterations ~bytes:8 ~profile
    ~fabric ~seed:42

let scale ?tag ~smoke () =
  section
    (if smoke then "SCALE (smoke) — sharded-DES gate"
     else "SCALE — weak scaling to 131,072 nodes");
  let tag = match tag with Some t -> t | None -> default_tag () in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let cores = Domain.recommended_domain_count () in
  let shards = max 2 (min 8 cores) in
  let pool = Engine.Pool.create ~num_domains:shards () in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let node_counts =
    if smoke then [ 256; 1024 ] else [ 2048; 8192; 32768; 131072 ]
  in
  let iterations = 10 in
  let identical = ref true in
  let points =
    List.map
      (fun nodes ->
        (* Suite subset at this scale: the paper-reproduction figures
           the 2,048-node point must keep matching. *)
        let apps = [ app_exn "hpcg"; app_exn "minife" ] in
        let suite, suite_s =
          timed (fun () ->
              Cluster.Experiment.suite ~pool ~apps ~node_counts:[ nodes ]
                ~runs:1 ~seed:42 ())
        in
        let headline =
          Engine.Json.Obj
            (List.map
               (fun (label, median, best) ->
                 ( label,
                   Engine.Json.Obj
                     [
                       ("median_improvement", Engine.Json.Float median);
                       ("best_improvement", Engine.Json.Float best);
                     ] ))
               (Cluster.Report.suite_headline suite))
        in
        (* DES serial vs sharded, noisy profile: no fast-forward, so
           the shard event total is the serial event count too. *)
        let profile = Noise.Profile.mos_lwk in
        let serial, serial_s =
          timed (fun () -> scale_serial ~nodes ~iterations ~profile)
        in
        let (sharded, stats), sharded_s =
          timed (fun () ->
              scale_des ~pool ~shards ~nodes ~iterations ~profile ())
        in
        let ok = serial = sharded in
        if not ok then identical := false;
        let events = stats.Cluster.Cluster_des.shard_events in
        Printf.printf
          "%7d nodes: suite %6.2fs; DES %d events, serial %6.2fs (%.2fM ev/s), \
           %d shards %6.2fs (%.2fM ev/s), %s\n%!"
          nodes suite_s events serial_s
          (float_of_int events /. serial_s /. 1e6)
          shards sharded_s
          (float_of_int events /. sharded_s /. 1e6)
          (if ok then "identical" else "DIVERGED");
        Engine.Json.Obj
          [
            ("nodes", Engine.Json.Int nodes);
            ("suite_seconds", Engine.Json.Float suite_s);
            ("headline", headline);
            ( "des",
              Engine.Json.Obj
                [
                  ("profile", Engine.Json.String profile.Noise.Profile.name);
                  ("iterations", Engine.Json.Int iterations);
                  ("events", Engine.Json.Int events);
                  ("serial_seconds", Engine.Json.Float serial_s);
                  ("sharded_seconds", Engine.Json.Float sharded_s);
                  ( "speedup",
                    Engine.Json.Float
                      (if sharded_s > 0.0 then serial_s /. sharded_s else 0.0)
                  );
                  ( "cross_messages",
                    Engine.Json.Int stats.Cluster.Cluster_des.cross_messages );
                  ( "null_messages",
                    Engine.Json.Int stats.Cluster.Cluster_des.null_messages );
                  ("epochs", Engine.Json.Int stats.Cluster.Cluster_des.epochs);
                  ("identical", Engine.Json.Bool ok);
                ] );
          ])
      node_counts
  in
  (* Byte-identity across shard counts on the smallest configuration:
     the qcheck invariant, re-asserted against the installed binary. *)
  let id_nodes = List.hd node_counts in
  List.iter
    (fun sh ->
      let serial =
        scale_serial ~nodes:id_nodes ~iterations ~profile:Noise.Profile.mos_lwk
      in
      let sharded, _ =
        scale_des ~pool ~shards:sh ~nodes:id_nodes ~iterations
          ~profile:Noise.Profile.mos_lwk ()
      in
      if serial <> sharded then begin
        Printf.eprintf
          "scale: %d-shard DES diverged from the serial heap at %d nodes\n"
          sh id_nodes;
        identical := false
      end)
    [ 1; 2; 4; 8 ];
  (* Fast-forward speedup gate (smoke, >= 4 cores): on a silent
     profile with many iterations the closed-form skip must dominate
     the serial replay.  One retry, like the perf gates. *)
  let ff_gate () =
    let ff_nodes = 2048 and ff_iters = 200 in
    let _, serial_s =
      timed (fun () ->
          scale_serial ~nodes:ff_nodes ~iterations:ff_iters
            ~profile:Noise.Profile.silent)
    in
    let (_, stats), ff_s =
      timed (fun () ->
          scale_des ~pool ~shards ~nodes:ff_nodes ~iterations:ff_iters
            ~profile:Noise.Profile.silent ())
    in
    (serial_s, ff_s, stats.Cluster.Cluster_des.fast_forwarded)
  in
  let ff_json =
    if not (smoke && cores >= 4) then []
    else begin
      let serial_s, ff_s, skipped =
        let (s1, f1, sk) = ff_gate () in
        if s1 /. f1 >= 1.25 then (s1, f1, sk) else ff_gate ()
      in
      Printf.printf
        "fast-forward: serial %.2fs vs sharded+ff %.2fs (%.1fx, %d iterations \
         skipped)\n%!"
        serial_s ff_s (serial_s /. ff_s) skipped;
      if serial_s /. ff_s < 1.25 then begin
        Printf.eprintf
          "scale --smoke: fast-forward speedup %.2fx below the 1.25x bar \
           (serial %.2fs, sharded+ff %.2fs) — see docs/SHARDING.md\n"
          (serial_s /. ff_s) serial_s ff_s;
        exit 1
      end;
      [
        ( "fast_forward",
          Engine.Json.Obj
            [
              ("serial_seconds", Engine.Json.Float serial_s);
              ("sharded_seconds", Engine.Json.Float ff_s);
              ("speedup", Engine.Json.Float (serial_s /. ff_s));
              ("iterations_skipped", Engine.Json.Int skipped);
            ] );
      ]
    end
  in
  let doc =
    Engine.Json.to_string_pretty
      (Engine.Json.Obj
         ([
            ("schema", Engine.Json.String "multikernel-scale/1");
            ("tag", Engine.Json.String tag);
          ]
         @ [
             ("smoke", Engine.Json.Bool smoke);
             ("shards", Engine.Json.Int shards);
             ("points", Engine.Json.List points);
             ("identical", Engine.Json.Bool !identical);
           ]
         @ ff_json))
    ^ "\n"
  in
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755;
  let paths =
    (* BENCH_scale.json — the repo-root trajectory headline — is
       refreshed by every run, smoke included, so a CI pass always
       leaves a non-empty bench record behind (the "smoke" field in
       the document says which kind of run produced it). *)
    if smoke then
      [ Filename.concat results_dir "scale-smoke.json"; "BENCH_scale.json" ]
    else [ Filename.concat results_dir "latest-scale.json"; "BENCH_scale.json" ]
  in
  List.iter
    (fun path ->
      write_file path doc;
      Printf.printf "wrote %s\n" path)
    paths;
  record_history ~target:(if smoke then "scale-smoke" else "scale") ~tag doc;
  if not !identical then begin
    Printf.eprintf
      "scale: sharded DES diverged from the serial heap — the conservative \
       protocol is broken; see docs/SHARDING.md\n";
    exit 1
  end

(* The CI parse gate: a results file on disk must always be complete,
   valid JSON — the atomic writer makes a torn file impossible, this
   catches manual edits and schema-level corruption.  Every snapshot
   under bench/results/ is checked, dated ones included; the directory
   listing is sorted so the report order never depends on readdir. *)
let check_results () =
  let check path =
    match Engine.Atomic_file.read_json path with
    | _ -> Printf.printf "%s parses\n" path
    | exception Engine.Atomic_file.Corrupt { path; reason } ->
        (* [reason] carries the parser's byte offset. *)
        Printf.eprintf "%s is corrupt: %s\n" path reason;
        exit 1
  in
  if not (Sys.file_exists results_dir) then
    Printf.printf "%s absent (run the results/faults target first)\n"
      results_dir
  else
    let files =
      Sys.readdir results_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort compare
    in
    if files = [] then
      Printf.printf "%s has no JSON snapshots (run the results target first)\n"
        results_dir
    else List.iter (fun f -> check (Filename.concat results_dir f)) files

(* check-json PATH: the same parse gate pointed at one explicit file —
   ci.sh runs it over the trace-smoke exports, and it works on any
   JSON artifact (a simos --trace output, a tagged results file). *)
let check_json path =
  match Engine.Atomic_file.read_json path with
  | _ -> Printf.printf "%s parses\n" path
  | exception Engine.Atomic_file.Corrupt { path; reason } ->
      Printf.eprintf "%s is corrupt: %s\n" path reason;
      exit 1

let targets =
  [
    ("fig4", fig4); ("fig5a", fig5a); ("fig5b", fig5b); ("fig6a", fig6a);
    ("fig6b", fig6b); ("table1", table1); ("brk", brk); ("ltp", ltp);
    ("opts", opts); ("headline", headline); ("micro", micro);
    ("tools", tools); ("isolation", isolation); ("modes", modes); ("csv", csv);
    ("json", json); ("sensitivity", sensitivity); ("faults", faults);
  ]

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> List.iter (fun (_, f) -> f ()) targets
  | _ :: "results" :: rest -> (
      match rest with
      | [] -> results ()
      | [ tag ] -> results ~tag ()
      | [ tag; jobs ] -> (
          match int_of_string_opt jobs with
          | Some j -> results ~tag ~jobs:j ()
          | None ->
              Printf.eprintf
                "results: jobs must be an integer, got %s\n\
                 usage: main.exe results [tag] [jobs]\n"
                jobs;
              exit 1)
      | _ ->
          Printf.eprintf "usage: main.exe results [tag] [jobs]\n";
          exit 1)
  | _ :: "perf" :: rest -> (
      match rest with
      | [] -> perf ~smoke:false ()
      | [ "--smoke" ] -> perf ~smoke:true ()
      | [ tag ] -> perf ~tag ~smoke:false ()
      | _ ->
          Printf.eprintf "usage: main.exe perf [--smoke | tag]\n";
          exit 1)
  | _ :: "scale" :: rest -> (
      match rest with
      | [] -> scale ~smoke:false ()
      | [ "--smoke" ] -> scale ~smoke:true ()
      | [ tag ] -> scale ~tag ~smoke:false ()
      | _ ->
          Printf.eprintf "usage: main.exe scale [--smoke | tag]\n";
          exit 1)
  | [ _; "check-results" ] -> check_results ()
  | [ _; "check-json"; path ] -> check_json path
  | _ :: "history" :: rest -> (
      match rest with
      | [] -> history ()
      | [ t ] -> history ~target:t ()
      | _ ->
          Printf.eprintf "usage: main.exe history [target]\n";
          exit 1)
  | [ _; "diff-selftest" ] -> diff_selftest ()
  | _ :: "diff" :: rest ->
      let threshold = ref 50.0 in
      let smoke = ref false in
      let against = ref false in
      let refs = ref [] in
      let usage () =
        Printf.eprintf
          "usage: main.exe diff A B [--threshold PCT]\n\
          \       main.exe diff --against latest [--smoke] [--threshold PCT]\n";
        exit 1
      in
      let rec parse = function
        | [] -> ()
        | "--threshold" :: v :: rest -> (
            match float_of_string_opt v with
            | Some f when f >= 0.0 ->
                threshold := f;
                parse rest
            | _ ->
                Printf.eprintf "diff: --threshold wants a percentage, got %s\n"
                  v;
                exit 1)
        | "--smoke" :: rest ->
            smoke := true;
            parse rest
        | "--against" :: "latest" :: rest ->
            against := true;
            parse rest
        | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
            refs := arg :: !refs;
            parse rest
        | _ -> usage ()
      in
      parse rest;
      (match (!against, List.rev !refs) with
      | true, [] -> diff_against_latest ~smoke:!smoke ~threshold:!threshold
      | false, [ a; b ] ->
          if
            diff_files ~threshold:!threshold (resolve_snapshot a)
              (resolve_snapshot b)
            > 0
          then exit 1
      | _ -> usage ())
  | [ _; name ] -> (
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
          Printf.eprintf
            "unknown target %s; available: %s results perf scale history diff \
             diff-selftest check-json\n"
            name
            (String.concat " " (List.map fst targets));
          exit 1)
  | _ ->
      Printf.eprintf
        "usage: main.exe [target | results [tag] [jobs] | perf [--smoke|tag] \
         | scale [--smoke|tag] | history [target] | diff ...]\n";
      exit 1
