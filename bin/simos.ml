(* simos — command-line driver for the multi-kernel simulator.

   Examples:
     simos run --app minife --os mckernel --nodes 1024
     simos sweep --app ccs-qcd -j 4
     simos suite -j 0 --runs 5
     simos ltp
     simos node --os mos
     simos apps *)

open Cmdliner
open Multikernel

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let app_arg =
  let doc = "Application model (amg, ccs-qcd, geofem, hpcg, lammps, milc, minife, lulesh)." in
  Arg.(required & opt (some string) None & info [ "app"; "a" ] ~docv:"APP" ~doc)

let os_arg =
  let doc = "Operating system (linux, mckernel, mos)." in
  Arg.(value & opt string "mckernel" & info [ "os"; "o" ] ~docv:"OS" ~doc)

let nodes_arg =
  let doc = "Number of compute nodes." in
  Arg.(value & opt int 16 & info [ "nodes"; "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Simulation seed (same seed, same result)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let runs_arg =
  let doc = "Repetitions for median/min/max (the paper uses 5)." in
  Arg.(value & opt int Cluster.Experiment.default_runs & info [ "runs" ] ~docv:"R" ~doc)

let jobs_arg =
  let doc =
    "Parallel simulation jobs: fan independent runs out across $(docv) domains. \
     1 (the default) is fully sequential; 0 means all cores. Output is \
     bit-identical for every value of $(docv)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* Parallelism is configured process-wide so every Experiment call in
   the command picks it up without threading a pool through. *)
let set_jobs jobs = Engine.Pool.set_default_jobs jobs

(* Validation lives in Cluster.Validate so the one-line messages are
   unit-tested; here we only map [Error msg] onto cmdliner's clean
   exit path. *)
let ( let* ) r f =
  match r with Ok v -> f v | Error m -> `Error (false, m)

(* ------------------------------------------------------------------ *)
(* Observability plumbing (--trace / --metrics)                        *)

let trace_path_arg =
  let doc =
    "Write a Perfetto-loadable Chrome trace (JSON) of every simulated run to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)

let metrics_arg =
  let doc = "Print the collected metrics after the run." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let make_obs ~trace_path ~metrics =
  if trace_path = None && not metrics then None
  else Some (Obs.Collect.create ~trace:(trace_path <> None) ())

let write_trace path c =
  Engine.Atomic_file.write path
    (Engine.Json.to_string_pretty (Obs.Collect.trace_json c) ^ "\n");
  Printf.printf "trace: %s (%d events from %d runs)\n" path
    (List.length (Obs.Collect.events c))
    (Obs.Collect.runs c)

let print_metrics c =
  print_string (Cluster.Report.mechanism_table c);
  print_newline ();
  print_string (Cluster.Report.metrics_table c)

(* [print_tables] is false when stdout carries a machine format
   (JSON/CSV) that must stay parseable. *)
let flush_obs ~trace_path ~print_tables obs =
  match obs with
  | None -> ()
  | Some c ->
      if print_tables then print_metrics c;
      Option.iter (fun path -> write_trace path c) trace_path

(* ------------------------------------------------------------------ *)
(* Progress heartbeat                                                  *)

(* The wall clock here only paces the redraws of a cosmetic stderr
   line; it never reaches simulated time or any recorded output.
   mklint: allow R1 — display pacing for the TTY heartbeat only. *)
let wall_clock () = Unix.gettimeofday ()

(* A single carriage-return-rewritten progress line for long suite
   runs.  Only when stderr is a TTY: CI logs, journaled runs and
   redirected output see nothing, so recorded bytes stay identical.
   The callback runs on pool worker domains, hence the mutex. *)
let heartbeat label =
  if not (Unix.isatty Unix.stderr) then None
  else
    let start = wall_clock () in
    let last = ref 0.0 in
    let m = Mutex.create () in
    Some
      (fun ~completed ~total ->
        Mutex.protect m (fun () ->
            let now = wall_clock () in
            if now -. !last >= 0.2 || completed = total then begin
              last := now;
              let dt = now -. start in
              let rate =
                if dt > 0.0 then float_of_int completed /. dt else 0.0
              in
              Printf.eprintf "\r%s: %d/%d cells (%.1f cells/s)   %!" label
                completed total rate
            end))

let finish_heartbeat = function None -> () | Some _ -> prerr_newline ()

(* ------------------------------------------------------------------ *)
(* simos run                                                           *)

let run_cmd =
  let action app os nodes seed jobs trace_path metrics =
    let* app = Cluster.Validate.app app in
    let* scenario = Cluster.Validate.scenario os in
    let* nodes = Cluster.Validate.nodes nodes in
    let* jobs = Cluster.Validate.jobs jobs in
    set_jobs jobs;
    let obs = make_obs ~trace_path ~metrics in
    let r =
      match obs with
      | None -> Cluster.Driver.run ~scenario ~app ~nodes ~seed ()
      | Some c ->
          let rcd =
            Obs.Recorder.make ~trace:(Obs.Collect.trace_enabled c)
              ~label:scenario.Cluster.Scenario.label ~nodes ~seed ()
          in
          let r = Cluster.Driver.run ~obs:rcd ~scenario ~app ~nodes ~seed () in
          Obs.Collect.add c (Obs.Recorder.snapshot rcd);
          r
    in
    Format.printf "%s on %s, %d node(s):@." app.Apps.App.name
      scenario.Cluster.Scenario.label nodes;
    Format.printf "  %a@." Cluster.Driver.pp_result r;
    Format.printf "  figure of merit: %.5g %s@." r.Cluster.Driver.fom
      app.Apps.App.fom_unit;
    flush_obs ~trace_path ~print_tables:metrics obs;
    `Ok ()
  in
  let doc = "Run one application under one OS at one scale." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const action $ app_arg $ os_arg $ nodes_arg $ seed_arg $ jobs_arg
       $ trace_path_arg $ metrics_arg))

(* ------------------------------------------------------------------ *)
(* simos sweep                                                         *)

let format_arg =
  let doc = "Output format: table, csv or json." in
  Arg.(
    value
    & opt (enum [ ("table", `Table); ("csv", `Csv); ("json", `Json) ]) `Table
    & info [ "format"; "f" ] ~docv:"FORMAT" ~doc)

let journal_arg =
  let doc =
    "Record completed cells into an append-only journal at $(docv) as they \
     finish, so a killed run can be resumed later with --resume."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"PATH" ~doc)

let resume_arg =
  let doc =
    "Resume from the journal at $(docv): cells already recorded are replayed \
     (output stays byte-identical to an uninterrupted run), only missing \
     cells are recomputed, and new completions are appended."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"PATH" ~doc)

(* The journaled path runs cells under supervision; the summary goes
   to stderr so stdout stays byte-identical fresh-vs-resumed.  The
   quarantine count rides along so the command can exit non-zero on a
   partial report. *)
let with_journal (path, replay) cells regroup =
  let j = Engine.Journal.open_ ~replay ~path () in
  let s =
    Fun.protect
      ~finally:(fun () -> Engine.Journal.close j)
      (fun () ->
        (* Journaled runs fly with the black box armed: a quarantined
           cell leaves flight-<cell_key>.json next to the journal. *)
        Cluster.Experiment.supervised_points ~journal:j
          ~flight_dir:(Filename.dirname path) cells)
  in
  prerr_endline (Cluster.Report.supervision_summary s);
  (regroup s, s.Cluster.Experiment.quarantined)

(* A quarantined cell means the stdout report is partial: scripts/CI
   consuming it must be able to tell, so the exit status says so even
   though the run itself completed gracefully. *)
let ok_unless_quarantined quarantined =
  if quarantined = 0 then `Ok ()
  else
    `Error
      ( false,
        Printf.sprintf
          "%d cell(s) quarantined; the report is partial (details on stderr)"
          quarantined )

let sweep_cmd =
  let action app runs seed format jobs journal resume =
    let* app = Cluster.Validate.app app in
    let* runs = Cluster.Validate.runs runs in
    let* jobs = Cluster.Validate.jobs jobs in
    let* jmode =
      Cluster.Validate.journal_mode ~journal ~resume ~obs_active:false
    in
    set_jobs jobs;
    let series, quarantined =
      match jmode with
      | None ->
          ( Cluster.Experiment.compare_scenarios
              ~scenarios:Cluster.Scenario.trio ~app ~runs ~seed (),
            0 )
      | Some mode ->
          with_journal mode
            (Cluster.Experiment.compare_cells ~scenarios:Cluster.Scenario.trio
               ~app ~runs ~seed ())
            (fun s ->
              Cluster.Experiment.series_of_supervised
                s.Cluster.Experiment.outcomes)
    in
    (match format with
    | `Csv -> print_string (Cluster.Report.csv ~app series)
    | `Json ->
        print_endline
          (Engine.Json.to_string_pretty (Cluster.Report.json ~app series))
    | `Table ->
        print_string (Cluster.Report.fom_table ~app series);
        let baseline =
          List.find
            (fun (s : Cluster.Experiment.series) ->
              s.Cluster.Experiment.scenario_label = "Linux")
            series
        in
        print_string (Cluster.Report.relative_table ~app ~baseline series);
        print_string (Cluster.Report.relative_chart ~app ~baseline series));
    ok_unless_quarantined quarantined
  in
  let doc = "Sweep one application over its node counts under all three kernels." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      ret
        (const action $ app_arg $ runs_arg $ seed_arg $ format_arg $ jobs_arg
       $ journal_arg $ resume_arg))

(* ------------------------------------------------------------------ *)
(* simos suite                                                         *)

let suite_nodes_arg =
  let doc =
    "Override every application's node counts with the single scale $(docv) \
     — the weak-scaling headline runs, e.g. --nodes 131072."
  in
  Arg.(value & opt (some int) None & info [ "nodes"; "n" ] ~docv:"N" ~doc)

let des_shards_arg =
  let doc =
    "After the suite, cross-check the sharded event-driven tier against the \
     serial heap at $(docv) shard(s) (0 = one per core) for every scenario, \
     and exit non-zero on any divergence."
  in
  Arg.(value & opt (some int) None & info [ "des-shards" ] ~docv:"S" ~doc)

let suite_cmd =
  let action runs seed format jobs nodes des_shards trace_path metrics journal
      resume =
    let* runs = Cluster.Validate.runs runs in
    let* jobs = Cluster.Validate.jobs jobs in
    let* node_counts =
      match nodes with
      | None -> Ok None
      | Some n -> (
          match Cluster.Validate.nodes n with
          | Ok n -> Ok (Some [ n ])
          | Error e -> Error e)
    in
    let* des_shards =
      match des_shards with
      | None -> Ok None
      | Some s -> (
          match Cluster.Validate.des_shards s with
          | Ok 0 -> Ok (Some (Domain.recommended_domain_count ()))
          | Ok s -> Ok (Some s)
          | Error e -> Error e)
    in
    let* jmode =
      Cluster.Validate.journal_mode ~journal ~resume
        ~obs_active:(trace_path <> None || metrics)
    in
    set_jobs jobs;
    let obs = make_obs ~trace_path ~metrics in
    let suite, quarantined =
      match jmode with
      | None ->
          let progress = heartbeat "suite" in
          let s =
            Cluster.Experiment.suite ?obs ?progress ?node_counts ~runs ~seed ()
          in
          finish_heartbeat progress;
          (s, 0)
      | Some mode ->
          let per_app =
            Cluster.Experiment.suite_cells ?node_counts ~runs ~seed ()
          in
          with_journal mode
            (List.concat_map snd per_app)
            (Cluster.Experiment.suite_of_supervised per_app)
    in
    (match format with
    | `Table ->
        Printf.printf
          "suite: %d applications x {McKernel, mOS, Linux}, median of %d runs\n\n"
          (List.length suite) runs;
        print_string (Cluster.Report.suite_table suite)
    | `Csv ->
        List.iter
          (fun (app, series) -> print_string (Cluster.Report.csv ~app series))
          suite
    | `Json ->
        (* --metrics folds into the JSON document itself; stdout must
           stay a single parseable value. *)
        print_endline
          (Engine.Json.to_string_pretty
             (Cluster.Report.suite_json ~runs ~seed ?obs suite)));
    flush_obs ~trace_path ~print_tables:(metrics && format = `Table) obs;
    (* The --des-shards tier reruns the event-driven cross-validation
       sharded and serial; its table goes to stderr when stdout holds a
       machine format. *)
    let divergences =
      match des_shards with
      | None -> 0
      | Some shards ->
          let des_nodes = Option.value nodes ~default:1024 in
          let checks =
            Cluster.Experiment.des_checks ~nodes:des_nodes ~shards ~seed ()
          in
          let table = Cluster.Report.des_table checks in
          if format = `Table then print_string table else prerr_string table;
          List.length
            (List.filter
               (fun c -> not (Cluster.Experiment.des_identical c))
               checks)
    in
    if divergences > 0 then
      `Error
        ( false,
          Printf.sprintf
            "%d sharded-DES divergence(s): the parallel simulation does not \
             match the serial heap"
            divergences )
    else ok_unless_quarantined quarantined
  in
  let doc =
    "Run the paper's full evaluation — every application under all three \
     kernels at its own node counts — and report the median/best improvement \
     statistics.  Use --jobs to fan the sweep out across cores, --nodes to \
     force one (large) scale, and --des-shards to cross-check the sharded \
     event-driven tier against the serial heap."
  in
  Cmd.v (Cmd.info "suite" ~doc)
    Term.(
      ret
        (const action $ runs_arg $ seed_arg $ format_arg $ jobs_arg
       $ suite_nodes_arg $ des_shards_arg $ trace_path_arg $ metrics_arg
       $ journal_arg $ resume_arg))

(* ------------------------------------------------------------------ *)
(* simos ltp                                                           *)

let ltp_cmd =
  let action () =
    List.iter
      (fun k ->
        let s = Compat.Ltp.run_all k in
        Printf.printf "%-9s %4d failed / %d\n" (Compat.Ltp.kernel_to_string k)
          s.Compat.Ltp.failed s.Compat.Ltp.total;
        List.iter
          (fun (cause, n) -> Printf.printf "    %-24s %d\n" cause n)
          (Compat.Ltp.failures_by_cause s))
      [ Compat.Ltp.Linux_k; Compat.Ltp.Mckernel_k; Compat.Ltp.Mos_k ]
  in
  let doc = "Run the LTP-like compatibility corpus against all three kernels." in
  Cmd.v (Cmd.info "ltp" ~doc) Term.(const action $ const ())

(* ------------------------------------------------------------------ *)
(* simos node                                                          *)

let node_cmd =
  let action os =
    let* scenario = Cluster.Validate.scenario os in
    let k = scenario.Cluster.Scenario.make () in
        Format.printf "%s (%s)@." k.Kernel.Os.name
          (Kernel.Os.kind_to_string k.Kernel.Os.kind);
        Format.printf "  cores: %d app / %d OS, %d hw threads per core@."
          (List.length k.Kernel.Os.app_cores)
          (List.length k.Kernel.Os.os_cores)
          (Hw.Topology.threads_per_core k.Kernel.Os.topo);
        let numa = Hw.Topology.numa k.Kernel.Os.topo in
        List.iter
          (fun (d : Hw.Numa.domain) ->
            Format.printf "  numa %d: %s %a free %a@." d.Hw.Numa.id
              (Hw.Memory_kind.to_string d.Hw.Numa.kind)
              Engine.Units.pp_size d.Hw.Numa.capacity Engine.Units.pp_size
              (Mem.Phys.free_bytes k.Kernel.Os.phys ~domain:d.Hw.Numa.id))
          (Hw.Numa.domains numa);
        Format.printf "  noise profile: %s (%.4f%% mean overhead)@."
          k.Kernel.Os.app_noise.Noise.Profile.name
          (100.0 *. Noise.Profile.total_overhead k.Kernel.Os.app_noise);
        Format.printf "  largest contiguous MCDRAM block: %a@." Engine.Units.pp_size
          (Kernel.Os.largest_free_block k ~kind:Hw.Memory_kind.Mcdram);
        let locals, offloads, partials =
          List.fold_left
            (fun (l, o, p) s ->
              match k.Kernel.Os.disposition s with
              | Syscall.Disposition.Local -> (l + 1, o, p)
              | Syscall.Disposition.Offload -> (l, o + 1, p)
              | Syscall.Disposition.Partial _ -> (l, o, p + 1)
              | Syscall.Disposition.Unsupported -> (l, o, p))
            (0, 0, 0) Syscall.Sysno.all
        in
        Format.printf "  syscalls: %d local, %d offloaded, %d partial@." locals
          offloads partials;
        `Ok ()
  in
  let doc = "Describe a booted node under the given kernel." in
  Cmd.v (Cmd.info "node" ~doc) Term.(ret (const action $ os_arg))

(* ------------------------------------------------------------------ *)
(* simos apps                                                          *)

let apps_cmd =
  let action () =
    List.iter
      (fun (a : Apps.App.t) ->
        Printf.printf "%-10s %2d ranks x %d threads, %s scaling, %d iterations (%s)\n"
          a.Apps.App.name a.Apps.App.ranks_per_node a.Apps.App.threads_per_rank
          (match a.Apps.App.scaling with Apps.App.Weak -> "weak" | Apps.App.Strong -> "strong")
          a.Apps.App.iterations a.Apps.App.fom_unit)
      Apps.Registry.all
  in
  let doc = "List the application models." in
  Cmd.v (Cmd.info "apps" ~doc) Term.(const action $ const ())

let calibration_cmd =
  let action () = print_string (Cluster.Calibration.table ()) in
  let doc = "Print the calibration audit: every cost constant with provenance." in
  Cmd.v (Cmd.info "calibration" ~doc) Term.(const action $ const ())

(* ------------------------------------------------------------------ *)
(* simos faults                                                        *)

let plan_arg =
  let doc =
    "Fault-plan preset for a degradation table (node-crash, core-degrade, \
     link-degrade, link-flap, nic-stall, daemon-hang, proxy-crash, \
     thread-loss, mixed).  Without $(docv) the isolation demo runs instead."
  in
  Arg.(value & opt (some string) None & info [ "plan"; "p" ] ~docv:"PRESET" ~doc)

let fault_app_arg =
  let doc = "Application model for the degradation table." in
  Arg.(value & opt string "hpcg" & info [ "app"; "a" ] ~docv:"APP" ~doc)

let fault_nodes_arg =
  let doc = "Node count for the degradation table." in
  Arg.(value & opt int 64 & info [ "nodes"; "n" ] ~docv:"N" ~doc)

let rates_arg =
  let doc = "Comma-separated fault rates (expected events per node per run)." in
  Arg.(value & opt string "0.5,1,2" & info [ "rates" ] ~docv:"RATES" ~doc)

let fault_format_arg =
  let doc = "Output format: table or json." in
  Arg.(
    value
    & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
    & info [ "format"; "f" ] ~docv:"FORMAT" ~doc)

let faults_cmd =
  let action plan app nodes rates runs seed format jobs trace_path metrics =
    let* runs = Cluster.Validate.runs runs in
    let* jobs = Cluster.Validate.jobs jobs in
    set_jobs jobs;
    let obs = make_obs ~trace_path ~metrics in
    let flush () =
      flush_obs ~trace_path ~print_tables:(metrics && format = `Table) obs
    in
    match plan with
    | None ->
        let demo = Cluster.Degradation.isolation_demo ?obs ~runs ~seed () in
        (match format with
        | `Table -> print_string (Cluster.Degradation.render_demo demo)
        | `Json ->
            print_endline
              (Engine.Json.to_string_pretty
                 (Cluster.Degradation.demo_to_json demo)));
        flush ();
        `Ok ()
    | Some preset ->
        let* preset = Cluster.Validate.fault_preset preset in
        let* app = Cluster.Validate.app app in
        let* nodes = Cluster.Validate.nodes nodes in
        let* rates = Cluster.Validate.rates rates in
        let table =
          Cluster.Degradation.run ?obs ~app ~nodes ~preset ~rates ~runs ~seed ()
        in
        (match format with
        | `Table -> print_string (Cluster.Degradation.render table)
        | `Json ->
            print_endline
              (Engine.Json.to_string_pretty (Cluster.Degradation.to_json table)));
        flush ();
        `Ok ()
  in
  let doc =
    "Inject deterministic faults.  Without --plan, run the isolation demo: a \
     Linux daemon hang must hurt Linux but not the LWKs, and a McKernel \
     proxy crash must hurt syscall-heavy LAMMPS but not pure-compute MiniFE. \
     With --plan, print a degradation table for one application under \
     escalating fault rates across all three kernels."
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(
      ret
        (const action $ plan_arg $ fault_app_arg $ fault_nodes_arg $ rates_arg
       $ runs_arg $ seed_arg $ fault_format_arg $ jobs_arg $ trace_path_arg
       $ metrics_arg))

(* ------------------------------------------------------------------ *)
(* simos trace                                                         *)

let trace_nodes_arg =
  let doc = "Node count for the traced comparison." in
  Arg.(value & opt int 4 & info [ "nodes"; "n" ] ~docv:"N" ~doc)

let trace_out_arg =
  let doc = "Output path for the Perfetto trace JSON." in
  Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~docv:"PATH" ~doc)

let trace_cmd =
  let action app nodes runs seed jobs out metrics =
    let* app = Cluster.Validate.app app in
    let* nodes = Cluster.Validate.nodes nodes in
    let* runs = Cluster.Validate.runs runs in
    let* jobs = Cluster.Validate.jobs jobs in
    set_jobs jobs;
    let c = Obs.Collect.create ~trace:true () in
    let series =
      Cluster.Experiment.compare_scenarios ~obs:c
        ~scenarios:Cluster.Scenario.trio ~app ~node_counts:[ nodes ] ~runs
        ~seed ()
    in
    print_string (Cluster.Report.fom_table ~app series);
    if metrics then print_metrics c;
    write_trace out c;
    `Ok ()
  in
  let doc =
    "Trace one application under all three kernels at one node count and \
     write a Chrome trace-event JSON loadable in Perfetto (ui.perfetto.dev): \
     one process per (run, node), spans for setup / iterations / collective \
     phases on the simulated clock, instants for injected faults.  The file \
     is byte-identical for every --jobs value."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      ret
        (const action $ app_arg $ trace_nodes_arg $ runs_arg $ seed_arg
       $ jobs_arg $ trace_out_arg $ metrics_arg))

(* ------------------------------------------------------------------ *)
(* simos profile                                                       *)

let profile_nodes_arg =
  let doc = "Number of compute nodes in the instrumented DES workload." in
  Arg.(value & opt int 1024 & info [ "nodes"; "n" ] ~docv:"N" ~doc)

let profile_shards_arg =
  let doc = "Shard count for the instrumented run (0 = one per core)." in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"S" ~doc)

let bucket_us_arg =
  let doc = "Timeline bucket width, in simulated microseconds." in
  Arg.(value & opt int 1000 & info [ "bucket-us" ] ~docv:"US" ~doc)

let top_arg =
  let doc = "Rows in the hot-scenario attribution table." in
  Arg.(value & opt int 3 & info [ "top" ] ~docv:"K" ~doc)

let profile_out_arg =
  let doc =
    "Also write the profile document (JSON) to $(docv).  Byte-identical for \
     every --jobs value."
  in
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"PATH" ~doc)

let sched_arg =
  let doc =
    "Also print the live scheduler counters (steals, injector depth).  \
     Nondeterministic host-machine numbers — never part of the -o document."
  in
  Arg.(value & flag & info [ "sched" ] ~doc)

let profile_cmd =
  let action nodes shards seed jobs bucket_us k out sched =
    let* nodes = Cluster.Validate.nodes nodes in
    let* shards =
      match Cluster.Validate.des_shards shards with
      | Ok 0 -> Ok (Domain.recommended_domain_count ())
      | r -> r
    in
    let* jobs = Cluster.Validate.jobs jobs in
    let* bucket_us =
      if bucket_us > 0 then Ok bucket_us
      else Error "--bucket-us must be positive"
    in
    let* k = if k > 0 then Ok k else Error "--top must be positive" in
    let domains = if jobs = 0 then Domain.recommended_domain_count () else jobs in
    let pool = Engine.Pool.create ~num_domains:domains () in
    Fun.protect
      ~finally:(fun () -> Engine.Pool.shutdown pool)
      (fun () ->
        let rows =
          Cluster.Experiment.des_profiles ~pool
            ~bucket_ns:(bucket_us * Engine.Units.us) ~nodes ~shards ~seed ()
        in
        List.iter
          (fun (label, p) ->
            print_string (Cluster.Report.profile_timeline ~label p);
            print_newline ())
          rows;
        let tot = List.map (fun (l, p) -> (l, Obs.Profile.totals p)) rows in
        print_string
          (Cluster.Report.profile_hot ~shards (Obs.Profile.top ~k tot));
        Option.iter
          (fun path ->
            Engine.Atomic_file.write path
              (Engine.Json.to_string_pretty
                 (Cluster.Report.profile_json ~nodes ~shards ~seed rows)
              ^ "\n");
            Printf.printf "profile: %s\n" path)
          out;
        if sched then begin
          (* Live pool counters: host-machine races, printed only on
             request and kept out of the deterministic document. *)
          Printf.printf
            "\nscheduler (live, nondeterministic — excluded from -o):\n";
          Printf.printf "injector depth: %d\n"
            (Engine.Pool.injector_depth pool);
          print_endline
            (Engine.Json.to_string_pretty
               (Obs.Pool_stats.to_json (Engine.Pool.stats pool)))
        end;
        `Ok ())
  in
  let doc =
    "Profile the engine itself: run the sharded event-driven workload under \
     all three kernels with every conservative epoch sampled — per-bucket \
     event/null/stall timelines, horizon utilization, and hot-scenario \
     attribution.  The profile folds only protocol-determined shard samples, \
     so tables and -o output are byte-identical for every --jobs value; \
     --sched adds the live (nondeterministic) scheduler view."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      ret
        (const action $ profile_nodes_arg $ profile_shards_arg $ seed_arg
       $ jobs_arg $ bucket_us_arg $ top_arg $ profile_out_arg $ sched_arg))

(* ------------------------------------------------------------------ *)
(* simos chaos                                                         *)

let chaos_cmd =
  let smoke_arg =
    let doc =
      "Small cell grid — the deterministic CI gate (see ci.sh)."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let action seed smoke =
    let report = Cluster.Chaos.run ~seed ~smoke () in
    print_string (Cluster.Chaos.render report);
    if Cluster.Chaos.passed report then `Ok ()
    else `Error (false, "chaos self-test failed")
  in
  let doc =
    "Inject faults into the harness itself — seeded task exceptions, a \
     simulated mid-write crash, a kill-and-resume cycle against the run \
     journal — and verify the robustness contracts: no lost cells, \
     quarantine instead of pool poisoning, byte-identical resumed output.  \
     Everything is seeded and simulated, so the self-test is deterministic."
  in
  Cmd.v (Cmd.info "chaos" ~doc) Term.(ret (const action $ seed_arg $ smoke_arg))

let () =
  let doc = "lightweight multi-kernel operating system simulator" in
  let info = Cmd.info "simos" ~version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; sweep_cmd; suite_cmd; faults_cmd; trace_cmd; ltp_cmd;
            node_cmd; apps_cmd; calibration_cmd; profile_cmd; chaos_cmd;
          ]))
