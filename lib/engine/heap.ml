(* Cells are either live entries or the [Nil] sentinel.  Vacated
   slots are always overwritten with [Nil] so the heap never retains
   a reference to a popped value (and never holds an uninitialized
   slot that could be scanned as a bogus pointer — the original
   implementation filled fresh arrays with [Obj.magic 0]). *)
type 'a cell = Nil | Entry of { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a cell array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 64) () =
  { data = Array.make (max 1 capacity) Nil; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Ordering: key first, then insertion sequence for determinism.
   [Nil] never participates: live slots ([i < size]) are always
   [Entry]. *)
let before a b =
  match (a, b) with
  | Entry a, Entry b -> a.key < b.key || (a.key = b.key && a.seq < b.seq)
  | (Nil | Entry _), _ -> false

let grow t =
  let data = Array.make (2 * Array.length t.data) Nil in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let push t ~key value =
  if t.size = Array.length t.data then grow t;
  let e = Entry { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.data.(!i) <- e;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.data.(!i) t.data.(parent) then begin
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek t =
  if t.size = 0 then None
  else
    match t.data.(0) with
    | Entry e -> Some (e.key, e.value)
    | Nil -> assert false

let min_key t =
  if t.size = 0 then None
  else match t.data.(0) with Entry e -> Some e.key | Nil -> assert false

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.data.(!smallest) in
      t.data.(!smallest) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

(* Remove the root (which the caller has already read), dropping all
   references from vacated slots. *)
let remove_root t =
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- Nil;
    sift_down t
  end
  else t.data.(0) <- Nil

let pop t =
  if t.size = 0 then None
  else
    match t.data.(0) with
    | Entry e ->
        remove_root t;
        Some (e.key, e.value)
    | Nil -> assert false

let pop_le t ~limit =
  if t.size = 0 then None
  else
    match t.data.(0) with
    | Entry e when e.key <= limit ->
        remove_root t;
        Some (e.key, e.value)
    | Entry _ -> None
    | Nil -> assert false

let pop_exn t =
  match pop t with
  | Some kv -> kv
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  Array.fill t.data 0 t.size Nil;
  t.size <- 0;
  t.next_seq <- 0

let to_sorted_list t =
  let copy =
    {
      data = Array.sub t.data 0 (max 1 t.size);
      size = t.size;
      next_seq = t.next_seq;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
  in
  drain []
