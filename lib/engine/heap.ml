type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 64) () =
  { data = Array.make (max 1 capacity) (Obj.magic 0); size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Ordering: key first, then insertion sequence for determinism. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let data = Array.make (2 * Array.length t.data) t.data.(0) in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let push t ~key value =
  if t.size = Array.length t.data then grow t;
  let e = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.data.(!i) <- e;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.data.(!i) t.data.(parent) then begin
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek t = if t.size = 0 then None else Some (t.data.(0).key, t.data.(0).value)

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.data.(!smallest) in
      t.data.(!smallest) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t
    end;
    Some (top.key, top.value)
  end

let pop_exn t =
  match pop t with
  | Some kv -> kv
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  t.size <- 0;
  t.next_seq <- 0

let to_sorted_list t =
  let copy =
    {
      data = Array.sub t.data 0 (max 1 t.size);
      size = t.size;
      next_seq = t.next_seq;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
  in
  drain []
