(** Domain-local scratch arrays for per-run working state.

    A sweep runs thousands of independent simulations; each used to
    allocate its working arrays afresh, and under a domain pool that
    garbage is what drives OCaml 5's stop-the-world minor
    collections.  [int_array] hands back the {e same} array on every
    call with the same [tag] from the same domain, refilled with
    [init].

    Rules (enforced by convention, audited in docs/PARALLELISM.md):
    the caller must not let the array escape its run — not into
    results, closures that outlive the run, or another domain — and
    two live uses of one [tag] must not overlap. *)

val int_array : tag:string -> len:int -> init:int -> int array
(** [int_array ~tag ~len ~init] returns this domain's array for
    [tag], of exactly [len] elements, every element set to [init].
    Reallocates only when [len] differs from the cached array. *)
