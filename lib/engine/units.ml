type time = int
type size = int

let ns = 1
let us = 1_000
let ms = 1_000_000
let sec = 1_000_000_000

let of_us f = int_of_float (f *. float_of_int us)
let of_ms f = int_of_float (f *. float_of_int ms)
let of_sec f = int_of_float (f *. float_of_int sec)
let to_sec t = float_of_int t /. float_of_int sec

let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024

let of_kib n = n * kib
let of_mib n = n * mib
let of_gib n = n * gib

let pp_time ppf t =
  let f = float_of_int t in
  if t < us then Format.fprintf ppf "%dns" t
  else if t < ms then Format.fprintf ppf "%.2fus" (f /. float_of_int us)
  else if t < sec then Format.fprintf ppf "%.2fms" (f /. float_of_int ms)
  else Format.fprintf ppf "%.3fs" (f /. float_of_int sec)

let pp_size ppf s =
  let f = float_of_int s in
  if s < kib then Format.fprintf ppf "%dB" s
  else if s < mib then Format.fprintf ppf "%.1fKiB" (f /. float_of_int kib)
  else if s < gib then Format.fprintf ppf "%.1fMiB" (f /. float_of_int mib)
  else Format.fprintf ppf "%.2fGiB" (f /. float_of_int gib)

let time_to_string t = Format.asprintf "%a" pp_time t
let size_to_string s = Format.asprintf "%a" pp_size s

let bytes_per_sec_to_bytes_per_ns bps = bps /. float_of_int sec

let gib_per_sec g = bytes_per_sec_to_bytes_per_ns (g *. float_of_int gib)

let transfer_time ~bytes ~bw =
  if bytes <= 0 then 0
  else
    let t = float_of_int bytes /. bw in
    max 1 (int_of_float (Float.ceil t))
