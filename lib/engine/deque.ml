(* Chase–Lev circular-array deque (SPAA 2005) on OCaml 5 atomics.

   Layout: [top] and [bottom] are monotonically growing indices into
   a conceptually infinite array; the live window is [top, bottom).
   The physical ring stores index [i] at slot [i land (length - 1)],
   so the window must never span more than [length - 1] slots — the
   owner grows the ring before that can happen, which is also what
   makes the value-validity argument below go through.

   Every slot is its own [Atomic.t].  That is slightly heavier than
   the C original's plain array + fences, but it keeps us inside the
   OCaml memory model with nothing to prove about data races: the
   only racy accesses are atomic, and atomic operations in OCaml 5
   are sequentially consistent.  The tasks this deque carries are
   whole simulation runs (milliseconds each), so the extra indirection
   is far below measurement noise.

   Validity of a successful [steal]: a thief reads slot [t] and then
   CASes [top] from [t] to [t + 1].  The owner can only overwrite the
   physical slot of index [t] when pushing index [t + length]; the
   grow check keeps [bottom - top < length], so that push requires
   [top > t] — at which point the thief's CAS is guaranteed to fail.
   A successful CAS therefore proves the slot read was the index-[t]
   value.  The same argument covers the owner's CAS in the
   one-element [pop].

   Thieves never write slots (a delayed thief clearing a slot could
   wipe a value the owner has since pushed into the recycled slot);
   only the owner clears, on [pop].  A stolen slot keeps its value
   until the ring index wraps — a bounded GC retention we accept for
   safety. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  ring : 'a option Atomic.t array Atomic.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 2

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Deque.create: capacity must be >= 1";
  let cap = next_pow2 (max 2 capacity) in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    ring = Atomic.make (Array.init cap (fun _ -> Atomic.make None));
  }

let size t =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  max 0 (b - tp)

let slot ring i = ring.(i land (Array.length ring - 1))

(* Owner only.  Doubles the ring and copies the live window; thieves
   holding the old ring still see valid values for any index their
   CAS can win on (the copy does not clear the old slots). *)
let grow t ~top ~bottom =
  let old_ring = Atomic.get t.ring in
  let ring = Array.init (2 * Array.length old_ring) (fun _ -> Atomic.make None) in
  for i = top to bottom - 1 do
    Atomic.set (slot ring i) (Atomic.get (slot old_ring i))
  done;
  Atomic.set t.ring ring;
  ring

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let ring = Atomic.get t.ring in
  let ring =
    if b - tp >= Array.length ring - 1 then grow t ~top:tp ~bottom:b else ring
  in
  Atomic.set (slot ring b) (Some v);
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  let ring = Atomic.get t.ring in
  (* Claim index [b] first, then look at [top]: a thief that read the
     old [bottom] before this store can still CAS index [b]'s
     predecessor, but index [b] itself is now reachable only through
     the one-element race below. *)
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Already empty: restore the canonical empty shape. *)
    Atomic.set t.bottom tp;
    None
  end
  else
    let cell = slot ring b in
    let v = Atomic.get cell in
    if b > tp then begin
      (* At least two elements were present: index [b] is beyond any
         thief's reach, take it without synchronising. *)
      Atomic.set cell None;
      v
    end
    else begin
      (* Last element: race the thieves for index [tp = b]. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        Atomic.set cell None;
        v
      end
      else None
    end

let rec steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else
    let ring = Atomic.get t.ring in
    let v = Atomic.get (slot ring tp) in
    if Atomic.compare_and_set t.top tp (tp + 1) then v
    else begin
      (* Lost to another thief or to the owner's last-element pop;
         the deque may still be non-empty, so look again. *)
      Domain.cpu_relax ();
      steal t
    end
