(* Domain-local scratch arrays.

   Hot loops (one Driver.run per sweep cell) allocate a handful of
   working arrays per run; under a domain pool those allocations are
   pure minor-GC pressure, and minor GCs are stop-the-world across
   every domain.  Each domain instead keeps one array per tag and
   reuses it across runs.  Arrays never cross domains (DLS) and never
   escape into results, so reuse cannot perturb simulation output —
   see the determinism contract in docs/PARALLELISM.md. *)

let store : (string, int array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let int_array ~tag ~len ~init =
  if len < 0 then invalid_arg "Scratch.int_array: negative length";
  let tbl = Domain.DLS.get store in
  match Hashtbl.find_opt tbl tag with
  | Some a when Array.length a = len ->
      Array.fill a 0 len init;
      a
  | _ ->
      let a = Array.make (max 1 len) init in
      Hashtbl.replace tbl tag a;
      a
