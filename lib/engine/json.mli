(** Minimal JSON construction and parsing — enough to export and
    audit experiment results without external dependencies.  Output
    is deterministic (fields in insertion order) and properly
    escaped. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering. *)

val escape : string -> string
(** JSON string escaping (without the surrounding quotes). *)

val of_string : string -> (t, string) result
(** Parse one JSON value (standard JSON: objects, arrays, strings
    with escapes, numbers, literals; numbers without [.]/[e] parse as
    [Int], others as [Float]).  Rejects trailing garbage.  The error
    string carries a byte offset.  Round trip: [of_string (to_string
    t) = Ok t] for any [t] whose floats survive printing. *)
