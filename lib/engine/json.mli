(** Minimal JSON construction — enough to export experiment results
    without external dependencies.  Output is deterministic (fields
    in insertion order) and properly escaped. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering. *)

val escape : string -> string
(** JSON string escaping (without the surrounding quotes). *)
