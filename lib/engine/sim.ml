(* An event handle doubles as the cancellation token: [cancel] flips
   the state in place, so the hot path never touches a hashtable —
   cancelled events are dropped lazily when the queue reaches them. *)
type state = Pending | Cancelled | Fired

type event = { mutable state : state; handler : t -> unit }

and t = {
  mutable clock : Units.time;
  queue : event Heap.t;
  mutable live : int;
}

type event_id = event

let create () = { clock = 0; queue = Heap.create (); live = 0 }

let now t = t.clock

let schedule t ~at handler =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: time %d precedes clock %d" at t.clock);
  let ev = { state = Pending; handler } in
  Heap.push t.queue ~key:at ev;
  t.live <- t.live + 1;
  ev

let schedule_after t ~delay handler =
  if delay < 0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.clock + delay) handler

(* Only a genuinely pending event counts against [live]: cancelling
   an already-fired or already-cancelled handle is a no-op. *)
let cancel t ev =
  match ev.state with
  | Pending ->
      ev.state <- Cancelled;
      t.live <- t.live - 1
  | Cancelled | Fired -> ()

let pending t = t.live

let fire t ~at ev =
  t.clock <- at;
  ev.state <- Fired;
  t.live <- t.live - 1;
  ev.handler t

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, ev) -> (
      match ev.state with
      | Cancelled -> step t
      | Pending | Fired ->
          fire t ~at ev;
          true)

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Heap.pop_le t.queue ~limit with
        | Some (_, { state = Cancelled; _ }) -> ()
        | Some (at, ev) -> fire t ~at ev
        | None ->
            (* A pending event past [limit] drags the clock up to the
               limit; an empty queue leaves it where the last event
               put it. *)
            if not (Heap.is_empty t.queue) then t.clock <- max t.clock limit;
            continue := false
      done

let rec drop_cancelled t =
  match Heap.peek t.queue with
  | Some (_, { state = Cancelled; _ }) ->
      ignore (Heap.pop t.queue);
      drop_cancelled t
  | _ -> ()

let next_time t =
  drop_cancelled t;
  Heap.min_key t.queue

let advance_to t target =
  if target < t.clock then invalid_arg "Sim.advance_to: target in the past";
  drop_cancelled t;
  (match Heap.peek t.queue with
  | Some (at, _) when at < target ->
      invalid_arg "Sim.advance_to: pending event precedes target"
  | _ -> ());
  t.clock <- target
