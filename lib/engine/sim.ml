type event_id = int

type event = { id : event_id; handler : t -> unit }

and t = {
  mutable clock : Units.time;
  queue : event Heap.t;
  cancelled : (event_id, unit) Hashtbl.t;
  mutable next_id : event_id;
  mutable live : int;
}

let create () =
  {
    clock = 0;
    queue = Heap.create ();
    cancelled = Hashtbl.create 64;
    next_id = 0;
    live = 0;
  }

let now t = t.clock

let schedule t ~at handler =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: time %d precedes clock %d" at t.clock);
  let id = t.next_id in
  t.next_id <- id + 1;
  Heap.push t.queue ~key:at { id; handler };
  t.live <- t.live + 1;
  id

let schedule_after t ~delay handler =
  if delay < 0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.clock + delay) handler

let cancel t id =
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.replace t.cancelled id ();
    t.live <- t.live - 1
  end

let pending t = t.live

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, ev) ->
      if Hashtbl.mem t.cancelled ev.id then begin
        Hashtbl.remove t.cancelled ev.id;
        step t
      end
      else begin
        t.clock <- at;
        t.live <- t.live - 1;
        ev.handler t;
        true
      end

let run ?until t =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some (at, _) -> (
        match until with
        | Some limit when at > limit ->
            t.clock <- max t.clock limit;
            continue := false
        | _ -> ignore (step t))
  done

let advance_to t target =
  if target < t.clock then invalid_arg "Sim.advance_to: target in the past";
  (match Heap.peek t.queue with
  | Some (at, _) when at < target ->
      invalid_arg "Sim.advance_to: pending event precedes target"
  | _ -> ());
  t.clock <- target
