(* Conservative (Chandy–Misra–Bryant-style) parallel DES.

   The event population is partitioned into [shards], each owning a
   private {!Sim} heap.  Shards advance in lockstep *epochs*: before
   an epoch the coordinator computes the globally earliest pending
   timestamp [g] — over every heap and every in-flight mailbox message
   — and hands all shards the horizon [g + lookahead - 1].  Processing
   an event at time [t] may only send a cross-shard message stamped
   [>= t + lookahead >= g + lookahead], i.e. strictly past the
   horizon, so no message generated during an epoch can land inside
   it: every shard fires its own events in timestamp order and drains
   each inbox FIFO, which makes the parallel run a deterministic
   interleaving — identical for any shard-to-domain placement, pool
   size, or no pool at all.

   Cross-shard messages travel through per-ordered-pair SPSC
   {!Mailbox}es.  A shard that sent a peer nothing during an epoch
   pushes a *null message* instead: a promise that nothing earlier
   than [now + lookahead] will ever arrive on that pair.  The epoch
   barrier already carries the global bound, so the nulls are not
   needed for progress here — they are the per-pair safety net: each
   receiver checks every real message against the last promise and
   fails loudly on a protocol violation rather than reordering
   events. *)

type 'msg t = {
  id : int;
  shards : int;
  sim : Sim.t;
  lookahead : Units.time;
  deliver : 'msg t -> 'msg -> unit;
  inboxes : 'msg packet Mailbox.t array;  (* indexed by source shard *)
  outboxes : 'msg packet Mailbox.t array;  (* indexed by destination shard *)
  sent_to : bool array;  (* real traffic per destination, this epoch *)
  promise : Units.time array;  (* per-source null-message bound *)
  mutable events : int;
  mutable cross_sent : int;
  mutable nulls_sent : int;
  mutable stalls : int;
  mutable min_sent : Units.time;  (* earliest real send this epoch *)
}

and 'msg packet =
  | Msg of { at : Units.time; payload : 'msg }
  | Null of { bound : Units.time }

type stats = {
  shards : int;
  epochs : int;
  events : int array;
  cross_messages : int array;
  null_messages : int array;
  horizon_stalls : int array;
}

(* Per-epoch self-profiler sample.  Every field is computed on the
   coordinator after the epoch barrier from per-shard counters that
   the protocol itself makes deterministic (identical for any pool
   size or shard placement), so a profile built from these samples
   obeys the same byte-identity contract as the simulation output. *)
type sample = {
  sample_epoch : int;
  sample_bound : Units.time;
  sample_horizon : Units.time;
  sample_events : int;
  sample_cross : int;
  sample_nulls : int;
  sample_stalls : int;
  sample_backlog : int;
}

let id (t : _ t) = t.id
let shard_count (t : _ t) = t.shards
let now (t : _ t) = Sim.now t.sim
let lookahead (t : _ t) = t.lookahead

(* Both operands are non-negative; [max_int] means "never". *)
let sat_add a b = if a >= max_int - b then max_int else a + b

let schedule (t : _ t) ~at handler =
  ignore
    (Sim.schedule t.sim ~at (fun _ ->
         t.events <- t.events + 1;
         handler t))

let send (t : 'msg t) ~shard ~at (payload : 'msg) =
  if shard < 0 || shard >= t.shards then
    invalid_arg "Shard.send: destination shard out of range";
  if shard = t.id then
    ignore
      (Sim.schedule t.sim ~at (fun _ ->
           t.events <- t.events + 1;
           t.deliver t payload))
  else begin
    if at < sat_add (Sim.now t.sim) t.lookahead then
      invalid_arg "Shard.send: cross-shard message inside the lookahead window";
    Mailbox.push t.outboxes.(shard) (Msg { at; payload });
    t.sent_to.(shard) <- true;
    t.cross_sent <- t.cross_sent + 1;
    if at < t.min_sent then t.min_sent <- at
  end

(* One shard's share of an epoch: merge the mail received at the
   boundary (in source-shard order — the deterministic merge), fire
   everything up to the horizon, then promise every silent peer a
   bound for the next epoch.  Returns (next local timestamp, earliest
   real send), the shard's contribution to the next global bound. *)
let epoch (t : _ t) ~horizon =
  for src = 0 to t.shards - 1 do
    if src <> t.id then begin
      let box = t.inboxes.(src) in
      let rec drain () =
        match Mailbox.pop box with
        | None -> ()
        | Some (Msg { at; payload }) ->
            if at < t.promise.(src) then
              invalid_arg "Shard: message arrived before its null promise";
            ignore
              (Sim.schedule t.sim ~at (fun _ ->
                   t.events <- t.events + 1;
                   t.deliver t payload));
            drain ()
        | Some (Null { bound }) ->
            if bound > t.promise.(src) then t.promise.(src) <- bound;
            drain ()
      in
      drain ()
    end
  done;
  let before = t.events in
  Array.fill t.sent_to 0 t.shards false;
  t.min_sent <- max_int;
  Sim.run ~until:horizon t.sim;
  let next = Sim.next_time t.sim in
  if t.events = before && next <> None then t.stalls <- t.stalls + 1;
  let bound = sat_add (Sim.now t.sim) t.lookahead in
  for dst = 0 to t.shards - 1 do
    if dst <> t.id && not t.sent_to.(dst) then begin
      Mailbox.push t.outboxes.(dst) (Null { bound });
      t.nulls_sent <- t.nulls_sent + 1
    end
  done;
  (next, (if t.min_sent = max_int then None else Some t.min_sent))

let run ?pool ?observer ~shards ~lookahead ~init ~receive () =
  if shards <= 0 then invalid_arg "Shard.run: shards must be positive";
  if lookahead <= 0 then invalid_arg "Shard.run: lookahead must be positive";
  let boxes =
    Array.init shards (fun _ -> Array.init shards (fun _ -> Mailbox.create ()))
  in
  let ts =
    Array.init shards (fun i ->
        {
          id = i;
          shards;
          sim = Sim.create ();
          lookahead;
          deliver = receive;
          inboxes = Array.init shards (fun src -> boxes.(src).(i));
          outboxes = boxes.(i);
          sent_to = Array.make shards false;
          promise = Array.make shards 0;
          events = 0;
          cross_sent = 0;
          nulls_sent = 0;
          stalls = 0;
          min_sent = max_int;
        })
  in
  let ids = List.init shards (fun i -> i) in
  let global_bound reports =
    List.fold_left
      (fun acc (next, sent) ->
        let acc = match next with Some v -> min acc v | None -> acc in
        match sent with Some v -> min acc v | None -> acc)
      max_int reports
  in
  (* Round zero populates the heaps (in parallel: [init] may be the
     expensive part, e.g. per-node noise draws); every later round is
     one epoch under the freshly computed horizon. *)
  let epochs = ref 0 in
  let reports =
    ref
      (Pool.parallel_map ?pool
         (fun i ->
           let t = ts.(i) in
           init t;
           (Sim.next_time t.sim, None))
         ids)
  in
  (* The observer fires on the coordinator, after the epoch barrier:
     the parked workers' writes to the shard counters and mailboxes
     happen-before these reads, and the values themselves are
     protocol-determined, so the sample stream is identical for
     sequential and [-j N] runs. *)
  let observe =
    match observer with
    | None -> fun ~g:_ ~horizon:_ -> ()
    | Some f ->
        let sum field = Array.fold_left (fun acc t -> acc + field t) 0 ts in
        let prev_events = ref 0
        and prev_cross = ref 0
        and prev_nulls = ref 0
        and prev_stalls = ref 0 in
        fun ~g ~horizon ->
          let events = sum (fun t -> t.events)
          and cross = sum (fun t -> t.cross_sent)
          and nulls = sum (fun t -> t.nulls_sent)
          and stalls = sum (fun t -> t.stalls) in
          let backlog = ref 0 in
          Array.iter
            (Array.iter (fun box -> backlog := !backlog + Mailbox.length box))
            boxes;
          f
            {
              sample_epoch = !epochs;
              sample_bound = g;
              sample_horizon = horizon;
              sample_events = events - !prev_events;
              sample_cross = cross - !prev_cross;
              sample_nulls = nulls - !prev_nulls;
              sample_stalls = stalls - !prev_stalls;
              sample_backlog = !backlog;
            };
          prev_events := events;
          prev_cross := cross;
          prev_nulls := nulls;
          prev_stalls := stalls
  in
  let continue = ref true in
  while !continue do
    let g = global_bound !reports in
    if g = max_int then continue := false
    else begin
      incr epochs;
      let horizon = sat_add g (lookahead - 1) in
      reports :=
        Pool.parallel_map ?pool (fun i -> epoch ts.(i) ~horizon) ids;
      observe ~g ~horizon
    end
  done;
  {
    shards;
    epochs = !epochs;
    events = Array.map (fun (t : _ t) -> t.events) ts;
    cross_messages = Array.map (fun (t : _ t) -> t.cross_sent) ts;
    null_messages = Array.map (fun (t : _ t) -> t.nulls_sent) ts;
    horizon_stalls = Array.map (fun (t : _ t) -> t.stalls) ts;
  }
