(* Single-producer single-consumer linked queue (Michael–Scott with
   one lock-free side each).  The producer appends behind [tail], the
   consumer advances [head]; the only point of contact is the [next]
   pointer of the current tail, which is an [Atomic] so the producer's
   plain write to [value] happens-before the consumer's read of it
   (publish via [Atomic.set], observe via [Atomic.get]).

   [head] always points at a consumed dummy node, so neither side ever
   touches the other's pointer.  Popped nodes have their [value]
   scrubbed to [None] so the queue never retains a reference to a
   delivered message (the {!Heap} [Nil] discipline, applied to a
   linked list). *)

type 'a node = { mutable value : 'a option; next : 'a node option Atomic.t }

type 'a t = { mutable head : 'a node; mutable tail : 'a node }

let create () =
  let dummy = { value = None; next = Atomic.make None } in
  { head = dummy; tail = dummy }

let push t v =
  let n = { value = Some v; next = Atomic.make None } in
  Atomic.set t.tail.next (Some n);
  t.tail <- n

let pop t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n ->
      let v = n.value in
      n.value <- None;
      t.head <- n;
      v

let is_empty t = Atomic.get t.head.next = None

(* O(n) walk from the consumed dummy.  Exact only when both roles are
   quiescent (e.g. at the Shard epoch barrier, where the profiler
   samples backlog); mid-epoch it is a consumer-side lower bound.  No
   occupancy counters live in the queue itself: the producer and the
   consumer may be different domains racing within an epoch, and this
   queue is modelled by dscheck — a pair of plain counter fields would
   add exactly the kind of cross-domain non-atomic traffic the model
   exists to exclude. *)
let length t =
  let rec go acc node =
    match Atomic.get node.next with None -> acc | Some n -> go (acc + 1) n
  in
  go 0 t.head
