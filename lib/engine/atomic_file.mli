(** Crash-safe file replacement.

    [write path contents] stages the bytes in a sibling temp file,
    fsyncs the staging file, and [Sys.rename]s it over [path] (with a
    best-effort fsync of the parent directory).  On POSIX the rename
    is atomic: a reader (or a run interrupted mid-write) observes
    either the old complete file or the new complete file, never a
    truncated mix — and because the staged bytes are fsynced first,
    the rename never publishes a page-cache-only file that a power cut
    could truncate.  The bench results pipeline and the run journal
    ({!Journal}) route every snapshot through this. *)

exception Corrupt of { path : string; reason : string }
(** Raised by {!read} / {!read_json} when [path] cannot be read or
    parsed.  [reason] describes the failure; for JSON parse errors it
    carries the byte offset reported by {!Json.of_string}. *)

exception Crashed
(** Raised by {!write} under {!with_crash_after_bytes}: the simulated
    mid-write crash.  The torn staging file is deliberately left on
    disk, as after a real kill. *)

val tmp_path : string -> string
(** The legacy staging path ([path ^ ".tmp"]).  Current writes use a
    process-unique staging name instead; this is exposed so tests can
    place torn-writer residue where old versions would have left it. *)

val write : string -> string -> unit
(** [write path contents] atomically replaces [path].  The staging
    file is unique per writer (pid + per-process counter suffix), so
    concurrent writers to the same destination cannot tear each
    other's staging bytes — last rename wins with a complete payload.
    On failure the partially written temp file is removed and the
    original [path] is left untouched.  Raises [Sys_error] on I/O
    failure. *)

val read : string -> string
(** Whole-file read (convenience for the parse gate and tests).
    Raises {!Corrupt} if the file cannot be opened or read. *)

val read_json : string -> Json.t
(** [read path] then parse.  Raises {!Corrupt} with the parser's
    reason (including byte offset) on malformed JSON. *)

val with_crash_after_bytes : int -> (unit -> 'a) -> 'a
(** [with_crash_after_bytes n f] arms a test hook for the dynamic
    extent of [f]: the next {!write} whose payload exceeds [n] bytes
    stages exactly [n] bytes and raises {!Crashed}, leaving the torn
    staging file behind and the destination untouched.  Used by the
    chaos self-test ([simos chaos]). *)
