(** Crash-safe file replacement.

    [write path contents] stages the bytes in a sibling temp file and
    [Sys.rename]s it over [path].  On POSIX the rename is atomic: a
    reader (or a run interrupted mid-write) observes either the old
    complete file or the new complete file, never a truncated mix.
    The bench results pipeline routes every snapshot through this so
    [bench/results/latest.json] is always parseable. *)

val tmp_path : string -> string
(** The staging path used by {!write} ([path ^ ".tmp"]).  Exposed so
    tests can simulate an interrupted writer. *)

val write : string -> string -> unit
(** [write path contents] atomically replaces [path].  On failure the
    partially written temp file is removed and the original [path] is
    left untouched.  Raises [Sys_error] on I/O failure. *)

val read : string -> string
(** Whole-file read (convenience for the parse gate and tests).
    Raises [Sys_error] if the file cannot be read. *)
