(** ASCII rendering of tables and line charts for the benchmark
    harness.  The bench executable reproduces each of the paper's
    figures as a table of series plus a rough ASCII plot, so results
    can be read directly from a terminal or diffed in CI. *)

type align = Left | Right

val render :
  ?align:align list -> header:string list -> string list list -> string
(** Render rows under a header with column widths fitted to content.
    [align] defaults to left for the first column and right for the
    rest. *)

val print : ?align:align list -> header:string list -> string list list -> unit

(** {1 Series and ASCII charts} *)

type series = { label : string; points : (float * float) list }

val chart :
  ?width:int ->
  ?height:int ->
  ?logx:bool ->
  title:string ->
  ?ylabel:string ->
  series list ->
  string
(** Multi-series scatter/line chart using one glyph per series. *)

val csv : header:string list -> string list list -> string
(** Comma-separated rendering of the same data (no quoting; values
    must not contain commas). *)
