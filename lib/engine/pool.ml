type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  progress : Condition.t;
  mutable poisoned : (exn * Printexc.raw_backtrace) option;
  mutable live_workers : int;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

(* Set inside worker bodies so a nested parallel_map (a sweep fanning
   out points that themselves fan out repetitions) runs sequentially
   on the worker instead of deadlocking on its own pool. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* A raw submitted job that raises would silently kill its worker
   domain; with every worker dead, a later parallel_map would block on
   [progress] forever.  Instead the first escaping exception poisons
   the pool: pending jobs are dropped, every waiter is woken, and the
   original exception is re-raised from parallel_map/submit. *)
let worker_loop pool () =
  Domain.DLS.set in_worker true;
  (try
     let rec next () =
       Mutex.lock pool.mutex;
       let rec take () =
         match Queue.take_opt pool.queue with
         | Some job ->
             Mutex.unlock pool.mutex;
             job ();
             next ()
         | None ->
             if pool.stopped then Mutex.unlock pool.mutex
             else begin
               Condition.wait pool.nonempty pool.mutex;
               take ()
             end
       in
       take ()
     in
     next ()
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock pool.mutex;
     if pool.poisoned = None then pool.poisoned <- Some (e, bt);
     pool.stopped <- true;
     Queue.clear pool.queue;
     Condition.broadcast pool.nonempty;
     Mutex.unlock pool.mutex);
  Mutex.lock pool.mutex;
  pool.live_workers <- pool.live_workers - 1;
  Condition.broadcast pool.progress;
  Mutex.unlock pool.mutex

let create ?num_domains () =
  let size =
    match num_domains with
    | Some n when n < 1 -> invalid_arg "Pool.create: num_domains must be >= 1"
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      progress = Condition.create ();
      poisoned = None;
      live_workers = size;
      stopped = false;
      domains = [];
    }
  in
  pool.domains <- List.init size (fun _ -> Domain.spawn (worker_loop pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.mutex;
  let domains = pool.domains in
  pool.stopped <- true;
  pool.domains <- [];
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  (* Crashed workers have already returned (the poison handler is the
     last thing they run), so every join terminates. *)
  List.iter Domain.join domains

let submit pool job =
  Mutex.lock pool.mutex;
  match pool.poisoned with
  | Some (e, bt) ->
      Mutex.unlock pool.mutex;
      Printexc.raise_with_backtrace e bt
  | None ->
      if pool.stopped then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Pool.submit: pool is shut down"
      end;
      Queue.add job pool.queue;
      Condition.signal pool.nonempty;
      Mutex.unlock pool.mutex

(* ------------------------------------------------------------------ *)
(* Process-wide default, configured by the CLI's -j/--jobs flag.       *)

let default_jobs_setting = ref 1
let default_pool : t option ref = ref None
let at_exit_registered = ref false

let default_jobs () = !default_jobs_setting

let teardown_default () =
  match !default_pool with
  | Some p ->
      default_pool := None;
      shutdown p
  | None -> ()

let set_default_jobs n =
  let n = if n = 0 then Domain.recommended_domain_count () else max 1 n in
  teardown_default ();
  default_jobs_setting := n;
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit teardown_default
  end

let get_default () =
  if !default_jobs_setting <= 1 then None
  else
    match !default_pool with
    | Some _ as p -> p
    | None ->
        let p = create ~num_domains:!default_jobs_setting () in
        default_pool := Some p;
        Some p

(* ------------------------------------------------------------------ *)

let parallel_map_on pool f xs =
  let inputs = Array.of_list xs in
  let n = Array.length inputs in
  let results = Array.make n None in
  let remaining = ref n in
  for i = 0 to n - 1 do
    submit pool (fun () ->
        let r =
          try Ok (f inputs.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock pool.mutex;
        results.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.broadcast pool.progress;
        Mutex.unlock pool.mutex)
  done;
  Mutex.lock pool.mutex;
  while !remaining > 0 && pool.poisoned = None && pool.live_workers > 0 do
    Condition.wait pool.progress pool.mutex
  done;
  let outcome =
    if !remaining = 0 then `Done
    else match pool.poisoned with Some p -> `Poisoned p | None -> `Abandoned
  in
  Mutex.unlock pool.mutex;
  match outcome with
  | `Poisoned (e, bt) -> Printexc.raise_with_backtrace e bt
  | `Abandoned ->
      (* Every worker exited (concurrent shutdown) with jobs pending. *)
      invalid_arg "Pool.parallel_map: pool was shut down"
  | `Done ->
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
             | None -> assert false)
           results)

let parallel_map ?pool f xs =
  if Domain.DLS.get in_worker then List.map f xs
  else
    let pool = match pool with Some _ as p -> p | None -> get_default () in
    match pool with
    | Some p when p.size > 1 && List.compare_length_with xs 2 >= 0 ->
        parallel_map_on p f xs
    | _ -> List.map f xs
