(* Work-stealing executor.

   One Chase–Lev deque per executor (the [size] worker domains plus
   one slot for the submitting domain), replacing the old single
   Mutex/Condition queue that serialised every dispatch.  An executor
   pops its own deque LIFO; when that is empty it steals FIFO from
   the other executors (rotating round-robin victim order — no
   ambient randomness, mklint R2); raw [submit] jobs travel through a
   small mutex-protected injector queue; only when deques and
   injector are all empty does a worker block on a condition
   variable.

   Invariant the waiting logic leans on: deque tasks are pushed only
   by the domain running [parallel_map] (workers never push — a
   nested map degrades to [List.map] on the worker), so once the
   submitter has finished pushing, the set of tasks is fixed and
   "every queue empty" means "all remaining work is in flight". *)

type task = unit -> unit

type t = {
  size : int;
  deques : task Deque.t array;
      (* [size + 1] deques: slot [i < size] is worker [i]'s, slot
         [size] belongs to the submitting domain during
         [parallel_map].  SPMC: one owner each, anyone steals. *)
  injected : task Queue.t;  (* raw [submit] jobs; guarded by [mutex] *)
  mutex : Mutex.t;
  nonempty : Condition.t;  (* workers sleep here when all queues drain *)
  progress : Condition.t;  (* parallel_map waits here; worker exit + final
                              task completion + poison broadcast it *)
  pending : int Atomic.t;
      (* queued-but-not-yet-dequeued tasks, all queues combined.  The
         publish half of the sleep/wake Dekker protocol: pushers do
         [push; incr pending; read sleepers], sleepers do
         [incr sleepers; read pending]; both sequences are seq-cst, so
         at least one side sees the other and no wakeup is lost. *)
  sleepers : int Atomic.t;  (* workers committed to [Condition.wait] *)
  submitter_busy : bool Atomic.t;
      (* claim on deque slot [size]; a second concurrent submitter
         falls back to the injector (slotless) path *)
  mutable active_helpers : int;  (* submitters inside parallel_map; guarded
                                    by [mutex], keeps a zero-worker pool's
                                    concurrent maps from declaring each
                                    other abandoned *)
  mutable poisoned : (exn * Printexc.raw_backtrace) option;
  mutable live_workers : int;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
  (* Self-profiling counters: slot [i] is written by executor [i]
     only, without fences — snapshots may lag a few jobs, which is
     fine for the bench utilisation report and must never feed
     simulation output.  The slotless fallback path does not count. *)
  executed : int array;
  local_pops : int array;
  steals : int array;
  failed_steals : int array;
  injected_runs : int array;
  next_victim : int array;  (* per-executor steal rotation cursor *)
}

type stats = {
  executors : int;
  executed : int array;
  local_pops : int array;
  steals : int array;
  failed_steals : int array;
  injected_runs : int array;
}

(* Set inside worker bodies so a nested parallel_map (a sweep fanning
   out points that themselves fan out repetitions) runs sequentially
   on the worker instead of deadlocking on its own pool. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Which executor slot (hence which deque and counter row) the
   current domain owns: worker [i] holds [Some i] for its lifetime,
   the submitting domain holds [Some size] for the duration of a
   [parallel_map]. *)
let executor_slot : int option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* ------------------------------------------------------------------ *)
(* Worker GC tuning.

   OCaml 5 minor collections are stop-the-world across every domain,
   so on machines with fewer cores than domains each minor GC costs a
   cross-domain rendezvous on an oversubscribed scheduler.  Workers
   therefore get a larger per-domain minor heap ([Gc.set] from a
   domain only affects that domain's minor heap), which divides the
   number of rendezvous by the growth factor.  The submitting domain
   and sequential runs keep the default GC, so sequential results and
   baselines are unaffected. *)

type gc_tuning = { minor_heap_words : int; space_overhead : int }

(* Measured on the suite workload (bench perf): nurseries in the
   2-16M-word range all collapse the minor-collection count by an
   order of magnitude, but past ~4M words the larger working set
   starts to eat the gain back in cache misses, and raising
   space_overhead trades marking work for major-heap growth at a
   clear loss.  4M words, stock space_overhead is the measured
   optimum; [set_worker_gc_tuning] overrides it per machine. *)
let default_gc_tuning =
  { minor_heap_words = 4 * 1024 * 1024; space_overhead = 120 }

(* mklint: allow R4 — written only from the main domain before any
   worker exists (workers read it once, at domain startup). *)
let worker_gc_tuning = ref (Some default_gc_tuning)
let set_worker_gc_tuning t = worker_gc_tuning := t

let apply_worker_gc_tuning () =
  match !worker_gc_tuning with
  | None -> ()
  | Some { minor_heap_words; space_overhead } ->
      let g = Gc.get () in
      Gc.set { g with minor_heap_size = minor_heap_words; space_overhead }

(* ------------------------------------------------------------------ *)
(* Task discovery: own deque, then a steal round, then the injector.  *)

(* A raw submitted job that raises would silently kill its worker
   domain; with every worker dead, a later parallel_map would block
   forever.  Instead the first escaping exception poisons the pool:
   pending injector jobs are dropped, every waiter is woken, and the
   original exception is re-raised from parallel_map/submit.
   ([parallel_map]'s own tasks never poison: their exceptions are
   captured per result slot and re-raised in input order.) *)
let poison pool e bt =
  Mutex.lock pool.mutex;
  if pool.poisoned = None then pool.poisoned <- Some (e, bt);
  pool.stopped <- true;
  Queue.clear pool.injected;
  Condition.broadcast pool.nonempty;
  Condition.broadcast pool.progress;
  Mutex.unlock pool.mutex

let take_injected pool =
  Mutex.lock pool.mutex;
  let job = Queue.take_opt pool.injected in
  Mutex.unlock pool.mutex;
  job

(* Probe every other executor's deque once, starting after the last
   successful victim (deterministic rotation, not random).  [steal]
   returning [None] means that deque was observably empty — counted
   as a failed steal. *)
let steal_round pool me =
  let n = Array.length pool.deques in
  let start = pool.next_victim.(me) in
  (* [k] walks all [n] slots from the rotation start and skips [me],
     so every other executor is probed exactly once per round. *)
  let rec probe k =
    if k >= n then None
    else
      let v = (start + k) mod n in
      if v = me then probe (k + 1)
      else
        match Deque.steal pool.deques.(v) with
        | Some _ as job ->
            pool.next_victim.(me) <- v;
            pool.steals.(me) <- pool.steals.(me) + 1;
            job
        | None ->
            pool.failed_steals.(me) <- pool.failed_steals.(me) + 1;
            probe (k + 1)
  in
  probe 0

let find_task pool me =
  let found =
    match Deque.pop pool.deques.(me) with
    | Some _ as job ->
        pool.local_pops.(me) <- pool.local_pops.(me) + 1;
        job
    | None -> (
        match steal_round pool me with
        | Some _ as job -> job
        | None -> (
            match take_injected pool with
            | Some _ as job ->
                pool.injected_runs.(me) <- pool.injected_runs.(me) + 1;
                job
            | None -> None))
  in
  (match found with Some _ -> Atomic.decr pool.pending | None -> ());
  found

(* The slotless path: a second domain running [parallel_map]
   concurrently with the slot holder.  No own deque, no counter row —
   it steals from everyone and drains the injector. *)
let find_task_slotless pool =
  let n = Array.length pool.deques in
  let rec probe k =
    if k >= n then take_injected pool
    else
      match Deque.steal pool.deques.(k) with
      | Some _ as job -> job
      | None -> probe (k + 1)
  in
  match probe 0 with
  | Some _ as job ->
      Atomic.decr pool.pending;
      job
  | None -> None

let worker_loop pool idx () =
  Domain.DLS.set in_worker true;
  Domain.DLS.set executor_slot (Some idx);
  apply_worker_gc_tuning ();
  (try
     let rec loop () =
       if pool.poisoned <> None then ()
       else
         match find_task pool idx with
         | Some job ->
             pool.executed.(idx) <- pool.executed.(idx) + 1;
             job ();
             loop ()
         | None -> idle ()
     and idle () =
       (* Every queue looked empty.  Sleep unless work was published
          between the scan and here (the Dekker re-check), or the
          pool is winding down — a worker only exits with all queues
          drained, so [shutdown] keeps the old drain semantics. *)
       Mutex.lock pool.mutex;
       if pool.poisoned <> None || pool.stopped then Mutex.unlock pool.mutex
       else begin
         Atomic.incr pool.sleepers;
         if Atomic.get pool.pending > 0 then begin
           Atomic.decr pool.sleepers;
           Mutex.unlock pool.mutex;
           Domain.cpu_relax ();
           loop ()
         end
         else begin
           Condition.wait pool.nonempty pool.mutex;
           Atomic.decr pool.sleepers;
           Mutex.unlock pool.mutex;
           loop ()
         end
       end
     in
     loop ()
   with e -> poison pool e (Printexc.get_raw_backtrace ()));
  Mutex.lock pool.mutex;
  pool.live_workers <- pool.live_workers - 1;
  Condition.broadcast pool.progress;
  Mutex.unlock pool.mutex

let create ?(oversubscribe = false) ?num_domains ?deque_capacity () =
  let requested =
    match num_domains with
    | Some n when n < 1 -> invalid_arg "Pool.create: num_domains must be >= 1"
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  (* A domain that cannot run on its own core does not add throughput;
     it adds a stop-the-world rendezvous partner and scheduler
     ping-pong, which is how -j used to *lose* to sequential on small
     machines.  [num_domains] is therefore a cap, not a demand: the
     submitting domain helps drain the deques during parallel_map, so
     workers are clamped to [recommended_domain_count - 1] to keep
     total executors at the machine's concurrency.  A clamped-to-zero
     pool is still useful — parallel_map then runs every task on the
     (GC-tuned) submitting domain.  [oversubscribe:true] disables the
     clamp, for tests that need real cross-domain traffic regardless
     of the machine they run on. *)
  let size =
    if oversubscribe then requested
    else min requested (max 0 (Domain.recommended_domain_count () - 1))
  in
  let executors = size + 1 in
  let pool =
    {
      size;
      deques =
        Array.init executors (fun _ -> Deque.create ?capacity:deque_capacity ());
      injected = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      progress = Condition.create ();
      pending = Atomic.make 0;
      sleepers = Atomic.make 0;
      submitter_busy = Atomic.make false;
      active_helpers = 0;
      poisoned = None;
      live_workers = size;
      stopped = false;
      domains = [];
      executed = Array.make executors 0;
      local_pops = Array.make executors 0;
      steals = Array.make executors 0;
      failed_steals = Array.make executors 0;
      injected_runs = Array.make executors 0;
      next_victim = Array.init executors (fun i -> (i + 1) mod executors);
    }
  in
  pool.domains <- List.init size (fun i -> Domain.spawn (worker_loop pool i));
  pool

let size pool = pool.size

let stats pool =
  {
    executors = pool.size + 1;
    executed = Array.copy pool.executed;
    local_pops = Array.copy pool.local_pops;
    steals = Array.copy pool.steals;
    failed_steals = Array.copy pool.failed_steals;
    injected_runs = Array.copy pool.injected_runs;
  }

let reset_stats (pool : t) =
  let zero a = Array.fill a 0 (Array.length a) 0 in
  zero pool.executed;
  zero pool.local_pops;
  zero pool.steals;
  zero pool.failed_steals;
  zero pool.injected_runs

let executed_jobs (pool : t) = Array.copy pool.executed
let reset_executed = reset_stats

let injector_depth (pool : t) =
  Mutex.lock pool.mutex;
  let n = Queue.length pool.injected in
  Mutex.unlock pool.mutex;
  n

let shutdown pool =
  Mutex.lock pool.mutex;
  let domains = pool.domains in
  pool.stopped <- true;
  pool.domains <- [];
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  (* Crashed workers have already returned (the poison handler is the
     last thing they run), so every join terminates. *)
  List.iter Domain.join domains

(* Wake sleeping workers after publishing work.  Pushers read
   [sleepers] after their [pending] increments (both seq-cst); the
   paired re-check in [idle] makes a missed broadcast impossible. *)
let wake_sleepers pool =
  if Atomic.get pool.sleepers > 0 then begin
    Mutex.lock pool.mutex;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex
  end

let submit pool job =
  Mutex.lock pool.mutex;
  match pool.poisoned with
  | Some (e, bt) ->
      Mutex.unlock pool.mutex;
      Printexc.raise_with_backtrace e bt
  | None ->
      if pool.stopped then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Pool.submit: pool is shut down"
      end;
      Atomic.incr pool.pending;
      Queue.add job pool.injected;
      Condition.signal pool.nonempty;
      Mutex.unlock pool.mutex

(* ------------------------------------------------------------------ *)
(* Process-wide default, configured by the CLI's -j/--jobs flag.       *)

(* mklint: allow-file R4 — these three cells are the process-wide -j
   singleton itself: mutated only by the main domain (CLI setup and
   at_exit teardown), never from inside submitted jobs. *)
let default_jobs_setting = ref 1
let default_pool : t option ref = ref None
let at_exit_registered = ref false

let default_jobs () = !default_jobs_setting

let teardown_default () =
  match !default_pool with
  | Some p ->
      default_pool := None;
      shutdown p
  | None -> ()

let set_default_jobs n =
  let n = if n = 0 then Domain.recommended_domain_count () else max 1 n in
  teardown_default ();
  default_jobs_setting := n;
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit teardown_default
  end

let get_default () =
  if !default_jobs_setting <= 1 then None
  else
    match !default_pool with
    | Some _ as p -> p
    | None ->
        (* The submitting domain is one of the -j executors (it helps
           drain the deques in parallel_map), so -j N needs N-1 worker
           domains. *)
        let p = create ~num_domains:(!default_jobs_setting - 1) () in
        default_pool := Some p;
        Some p

(* ------------------------------------------------------------------ *)

(* One task per list element — the finest grain available.  With the
   old central queue, fine grain meant fine-grained lock traffic, so
   items were batched into per-executor chunks and an expensive cell
   hiding in a cheap chunk serialised its whole chunk.  Deques invert
   that: local push/pop is a few atomic ops and only actual steals
   touch shared state, so per-item tasks cost nothing extra and idle
   executors pull exactly the items the busy ones have not reached —
   uneven task costs load-balance themselves.

   Each task writes its own disjoint slot of [results]; the seq-cst
   decrements of [remaining] (and the final broadcast under the
   mutex) publish those writes to the submitting domain.

   The submitting domain does not sleep while workers run: it claims
   executor slot [size] (deque and counter row), pushes every task
   there, and executes alongside the workers — popping its own deque
   LIFO, stealing back when its deque is drained — with the worker GC
   tuning and the [in_worker] flag applied for the duration and
   restored after.  A map over a pool of [w] workers therefore uses
   [w + 1] executing domains, and no more domains than executors.  If
   another domain's map already holds slot [size] (unusual but
   legal), this map routes its tasks through the injector instead and
   helps slotlessly. *)
let parallel_run_on pool f xs =
  Mutex.lock pool.mutex;
  (match pool.poisoned with
  | Some (e, bt) ->
      Mutex.unlock pool.mutex;
      Printexc.raise_with_backtrace e bt
  | None ->
      if pool.stopped then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Pool.submit: pool is shut down"
      end;
      pool.active_helpers <- pool.active_helpers + 1;
      Mutex.unlock pool.mutex);
  let inputs = Array.of_list xs in
  let n = Array.length inputs in
  let results = Array.make n None in
  let remaining = Atomic.make n in
  let task i () =
    results.(i) <-
      Some
        (try Ok (f inputs.(i))
         with e -> Error (e, Printexc.get_raw_backtrace ()));
    if Atomic.fetch_and_add remaining (-1) = 1 then begin
      Mutex.lock pool.mutex;
      Condition.broadcast pool.progress;
      Mutex.unlock pool.mutex
    end
  in
  let slot_claimed = Atomic.compare_and_set pool.submitter_busy false true in
  if slot_claimed then begin
    let dq = pool.deques.(pool.size) in
    for i = 0 to n - 1 do
      Deque.push dq (task i);
      Atomic.incr pool.pending
    done
  end
  else begin
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) pool.injected;
      Atomic.incr pool.pending
    done;
    Mutex.unlock pool.mutex
  end;
  wake_sleepers pool;
  let saved_gc = Gc.get () in
  let saved_slot = Domain.DLS.get executor_slot in
  Domain.DLS.set in_worker true;
  if slot_claimed then Domain.DLS.set executor_slot (Some pool.size);
  apply_worker_gc_tuning ();
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set in_worker false;
        Domain.DLS.set executor_slot saved_slot;
        if slot_claimed then Atomic.set pool.submitter_busy false;
        Mutex.lock pool.mutex;
        pool.active_helpers <- pool.active_helpers - 1;
        Condition.broadcast pool.progress;
        Mutex.unlock pool.mutex;
        Gc.set saved_gc)
    @@ fun () ->
    let rec help () =
      if Atomic.get remaining = 0 then `Done
      else
        match pool.poisoned with
        | Some p -> `Poisoned p
        | None -> (
            let found =
              if slot_claimed then find_task pool pool.size
              else find_task_slotless pool
            in
            match found with
            | Some job ->
                if slot_claimed then
                  pool.executed.(pool.size) <- pool.executed.(pool.size) + 1;
                (* Injected raw jobs poison exactly as on a worker;
                   map tasks capture their exceptions per slot. *)
                (try job ()
                 with e -> poison pool e (Printexc.get_raw_backtrace ()));
                help ()
            | None ->
                (* Nothing runnable anywhere, so every unfinished task
                   is in flight on another executor (tasks are only
                   ever pushed by submitters, never by workers): wait
                   for completions, worker exits or poison. *)
                Mutex.lock pool.mutex;
                while
                  Atomic.get remaining > 0
                  && pool.poisoned = None
                  && pool.live_workers + pool.active_helpers - 1 > 0
                do
                  Condition.wait pool.progress pool.mutex
                done;
                let outcome =
                  if Atomic.get remaining = 0 then `Done
                  else
                    match pool.poisoned with
                    | Some p -> `Poisoned p
                    | None -> `Abandoned
                in
                Mutex.unlock pool.mutex;
                (match outcome with
                | `Done | `Poisoned _ -> outcome
                | `Abandoned ->
                    (* Workers all exited (concurrent shutdown); one
                       final scan before declaring the map lost. *)
                    if
                      (if slot_claimed then find_task pool pool.size
                       else find_task_slotless pool)
                      = None
                    then `Abandoned
                    else `Rescan))
    and continue = function `Rescan -> help () | o -> o
    in
    continue (help ())
  in
  match outcome with
  | `Poisoned (e, bt) -> Printexc.raise_with_backtrace e bt
  | `Abandoned | `Rescan ->
      (* Every worker exited (concurrent shutdown) with tasks pending. *)
      invalid_arg "Pool.parallel_map: pool was shut down"
  | `Done ->
      Array.to_list
        (Array.map
           (function Some r -> r | None -> assert false)
           results)

let parallel_map_on pool f xs =
  let rs = parallel_run_on pool f xs in
  (* First exception in input order wins, after all tasks finished. *)
  List.iter
    (function
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
    rs;
  List.map (function Ok v -> v | Error _ -> assert false) rs

let seq_map_result f xs =
  List.map
    (fun x ->
      try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ()))
    xs

let parallel_map ?pool f xs =
  if Domain.DLS.get in_worker then List.map f xs
  else
    let pool = match pool with Some _ as p -> p | None -> get_default () in
    match pool with
    | Some p when List.compare_length_with xs 2 >= 0 -> parallel_map_on p f xs
    | _ -> List.map f xs

let parallel_map_result ?pool f xs =
  if Domain.DLS.get in_worker then seq_map_result f xs
  else
    let pool = match pool with Some _ as p -> p | None -> get_default () in
    match pool with
    | Some p when List.compare_length_with xs 2 >= 0 -> parallel_run_on p f xs
    | _ -> seq_map_result f xs
