type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  progress : Condition.t;
  mutable poisoned : (exn * Printexc.raw_backtrace) option;
  mutable live_workers : int;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
  executed : int array;
      (* per-executor job counts: slot [i < size] is worker [i], slot
         [size] is the submitting domain helping during parallel_map.
         Each slot is written by exactly one domain, without fences —
         self-profiling only, never part of simulation output. *)
}

(* Set inside worker bodies so a nested parallel_map (a sweep fanning
   out points that themselves fan out repetitions) runs sequentially
   on the worker instead of deadlocking on its own pool. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* ------------------------------------------------------------------ *)
(* Worker GC tuning.

   OCaml 5 minor collections are stop-the-world across every domain,
   so on machines with fewer cores than domains each minor GC costs a
   cross-domain rendezvous on an oversubscribed scheduler.  Workers
   therefore get a larger per-domain minor heap ([Gc.set] from a
   domain only affects that domain's minor heap), which divides the
   number of rendezvous by the growth factor.  The submitting domain
   and sequential runs keep the default GC, so sequential results and
   baselines are unaffected. *)

type gc_tuning = { minor_heap_words : int; space_overhead : int }

(* Measured on the suite workload (bench perf): nurseries in the
   2-16M-word range all collapse the minor-collection count by an
   order of magnitude, but past ~4M words the larger working set
   starts to eat the gain back in cache misses, and raising
   space_overhead trades marking work for major-heap growth at a
   clear loss.  4M words, stock space_overhead is the measured
   optimum; [set_worker_gc_tuning] overrides it per machine. *)
let default_gc_tuning =
  { minor_heap_words = 4 * 1024 * 1024; space_overhead = 120 }

(* mklint: allow R4 — written only from the main domain before any
   worker exists (workers read it once, at domain startup). *)
let worker_gc_tuning = ref (Some default_gc_tuning)
let set_worker_gc_tuning t = worker_gc_tuning := t

let apply_worker_gc_tuning () =
  match !worker_gc_tuning with
  | None -> ()
  | Some { minor_heap_words; space_overhead } ->
      let g = Gc.get () in
      Gc.set { g with minor_heap_size = minor_heap_words; space_overhead }

(* A raw submitted job that raises would silently kill its worker
   domain; with every worker dead, a later parallel_map would block on
   [progress] forever.  Instead the first escaping exception poisons
   the pool: pending jobs are dropped, every waiter is woken, and the
   original exception is re-raised from parallel_map/submit. *)
let worker_loop pool idx () =
  Domain.DLS.set in_worker true;
  apply_worker_gc_tuning ();
  (try
     let rec next () =
       Mutex.lock pool.mutex;
       let rec take () =
         match Queue.take_opt pool.queue with
         | Some job ->
             Mutex.unlock pool.mutex;
             pool.executed.(idx) <- pool.executed.(idx) + 1;
             job ();
             next ()
         | None ->
             if pool.stopped then Mutex.unlock pool.mutex
             else begin
               Condition.wait pool.nonempty pool.mutex;
               take ()
             end
       in
       take ()
     in
     next ()
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock pool.mutex;
     if pool.poisoned = None then pool.poisoned <- Some (e, bt);
     pool.stopped <- true;
     Queue.clear pool.queue;
     Condition.broadcast pool.nonempty;
     Mutex.unlock pool.mutex);
  Mutex.lock pool.mutex;
  pool.live_workers <- pool.live_workers - 1;
  Condition.broadcast pool.progress;
  Mutex.unlock pool.mutex

let create ?(oversubscribe = false) ?num_domains () =
  let requested =
    match num_domains with
    | Some n when n < 1 -> invalid_arg "Pool.create: num_domains must be >= 1"
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  (* A domain that cannot run on its own core does not add throughput;
     it adds a stop-the-world rendezvous partner and scheduler
     ping-pong, which is how -j used to *lose* to sequential on small
     machines.  [num_domains] is therefore a cap, not a demand: the
     submitting domain helps drain the queue during parallel_map, so
     workers are clamped to [recommended_domain_count - 1] to keep
     total executors at the machine's concurrency.  A clamped-to-zero
     pool is still useful — parallel_map then runs every chunk on the
     (GC-tuned) submitting domain.  [oversubscribe:true] disables the
     clamp, for tests that need real cross-domain traffic regardless
     of the machine they run on. *)
  let size =
    if oversubscribe then requested
    else min requested (max 0 (Domain.recommended_domain_count () - 1))
  in
  let pool =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      progress = Condition.create ();
      poisoned = None;
      live_workers = size;
      stopped = false;
      domains = [];
      executed = Array.make (size + 1) 0;
    }
  in
  pool.domains <- List.init size (fun i -> Domain.spawn (worker_loop pool i));
  pool

let size pool = pool.size

let executed_jobs pool = Array.copy pool.executed

let reset_executed pool =
  Array.fill pool.executed 0 (Array.length pool.executed) 0

let shutdown pool =
  Mutex.lock pool.mutex;
  let domains = pool.domains in
  pool.stopped <- true;
  pool.domains <- [];
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  (* Crashed workers have already returned (the poison handler is the
     last thing they run), so every join terminates. *)
  List.iter Domain.join domains

let submit pool job =
  Mutex.lock pool.mutex;
  match pool.poisoned with
  | Some (e, bt) ->
      Mutex.unlock pool.mutex;
      Printexc.raise_with_backtrace e bt
  | None ->
      if pool.stopped then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Pool.submit: pool is shut down"
      end;
      Queue.add job pool.queue;
      Condition.signal pool.nonempty;
      Mutex.unlock pool.mutex

(* ------------------------------------------------------------------ *)
(* Process-wide default, configured by the CLI's -j/--jobs flag.       *)

(* mklint: allow-file R4 — these three cells are the process-wide -j
   singleton itself: mutated only by the main domain (CLI setup and
   at_exit teardown), never from inside submitted jobs. *)
let default_jobs_setting = ref 1
let default_pool : t option ref = ref None
let at_exit_registered = ref false

let default_jobs () = !default_jobs_setting

let teardown_default () =
  match !default_pool with
  | Some p ->
      default_pool := None;
      shutdown p
  | None -> ()

let set_default_jobs n =
  let n = if n = 0 then Domain.recommended_domain_count () else max 1 n in
  teardown_default ();
  default_jobs_setting := n;
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit teardown_default
  end

let get_default () =
  if !default_jobs_setting <= 1 then None
  else
    match !default_pool with
    | Some _ as p -> p
    | None ->
        (* The submitting domain is one of the -j executors (it helps
           drain the queue in parallel_map), so -j N needs N-1 worker
           domains. *)
        let p = create ~num_domains:(!default_jobs_setting - 1) () in
        default_pool := Some p;
        Some p

(* ------------------------------------------------------------------ *)

(* Work items are submitted in contiguous chunks — a few per executor
   for load balance — so queue traffic and wake-ups scale with the
   executor count, not the item count.  Each chunk writes its own
   disjoint slice of [results]; the final mutex-protected decrement
   of [remaining] publishes those writes to the submitting domain.

   The submitting domain does not sleep while the workers run: it
   pulls chunks off the same queue (with the worker GC tuning and the
   [in_worker] flag applied for the duration, and both restored
   after).  A map over a pool of [w] workers therefore uses [w + 1]
   executing domains — and, crucially, no more domains than
   executors, which matters when domains outnumber cores: every
   minor GC is a stop-the-world rendezvous of {e all} domains, and an
   extra idle-but-schedulable domain adds a scheduling round-trip to
   each one. *)
let parallel_map_on pool f xs =
  let inputs = Array.of_list xs in
  let n = Array.length inputs in
  let results = Array.make n None in
  let executors = pool.size + 1 in
  let chunks = min n (4 * executors) in
  let chunk_size = (n + chunks - 1) / chunks in
  let chunks = (n + chunk_size - 1) / chunk_size in
  let remaining = ref chunks in
  let run_chunk lo hi =
    for i = lo to hi - 1 do
      results.(i) <-
        Some
          (try Ok (f inputs.(i))
           with e -> Error (e, Printexc.get_raw_backtrace ()))
    done;
    Mutex.lock pool.mutex;
    decr remaining;
    if !remaining = 0 then Condition.broadcast pool.progress;
    Mutex.unlock pool.mutex
  in
  for c = 0 to chunks - 1 do
    let lo = c * chunk_size in
    let hi = min n (lo + chunk_size) in
    submit pool (fun () -> run_chunk lo hi)
  done;
  let saved_gc = Gc.get () in
  Domain.DLS.set in_worker true;
  apply_worker_gc_tuning ();
  let outcome =
    Fun.protect ~finally:(fun () ->
        Domain.DLS.set in_worker false;
        Gc.set saved_gc)
    @@ fun () ->
    let rec help () =
      Mutex.lock pool.mutex;
      match Queue.take_opt pool.queue with
      | Some job ->
          Mutex.unlock pool.mutex;
          pool.executed.(pool.size) <- pool.executed.(pool.size) + 1;
          (* Raw jobs poison exactly as they would on a worker. *)
          (try job ()
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             Mutex.lock pool.mutex;
             if pool.poisoned = None then pool.poisoned <- Some (e, bt);
             pool.stopped <- true;
             Queue.clear pool.queue;
             Condition.broadcast pool.nonempty;
             Mutex.unlock pool.mutex);
          help ()
      | None ->
          while !remaining > 0 && pool.poisoned = None && pool.live_workers > 0
          do
            Condition.wait pool.progress pool.mutex
          done;
          let outcome =
            if !remaining = 0 then `Done
            else
              match pool.poisoned with
              | Some p -> `Poisoned p
              | None -> `Abandoned
          in
          Mutex.unlock pool.mutex;
          outcome
    in
    help ()
  in
  match outcome with
  | `Poisoned (e, bt) -> Printexc.raise_with_backtrace e bt
  | `Abandoned ->
      (* Every worker exited (concurrent shutdown) with jobs pending. *)
      invalid_arg "Pool.parallel_map: pool was shut down"
  | `Done ->
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
             | None -> assert false)
           results)

let parallel_map ?pool f xs =
  if Domain.DLS.get in_worker then List.map f xs
  else
    let pool = match pool with Some _ as p -> p | None -> get_default () in
    match pool with
    | Some p when List.compare_length_with xs 2 >= 0 -> parallel_map_on p f xs
    | _ -> List.map f xs
