(** Work-stealing domain pool for embarrassingly parallel sweeps.

    The experiment layer runs many independent simulations — every
    {!Mk_cluster.Driver.run} owns its own event queue and PRNG, so a
    sweep is a pure [map] over (scenario × node count × repetition)
    cells.  This module fans such maps out across OCaml 5 domains
    while keeping the output {e bit-identical} to the sequential run.

    Scheduling is work stealing over per-executor {!Deque}s rather
    than a central locked queue: each executor (worker domain or the
    submitting domain) owns one Chase–Lev deque, pushes and pops it
    LIFO without contention, and steals the {e oldest} task from a
    sibling — deterministic round-robin victim order — only when its
    own deque is empty.  Blocking on a condition variable is the last
    resort, after a full steal round finds nothing.  Tasks are
    single list elements (one simulation run each), so uneven task
    costs load-balance themselves: idle executors pull exactly the
    runs the busy ones have not reached.

    Determinism is unaffected by any of this, by construction:

    - {!parallel_map} writes each result into a slot indexed by input
      position and reassembles in input order, so result assembly
      does not depend on completion order — which executor ran a task,
      or in what order, is invisible in the output;
    - workers share nothing: each task closes over its own immutable
      inputs and writes one private result slot;
    - a [parallel_map] issued from inside a worker (a nested sweep)
      degrades to a plain [List.map] on that worker, which both keeps
      the determinism argument trivial and makes pool deadlock
      impossible.

    The determinism contract this relies on is spelled out in
    [docs/PARALLELISM.md]. *)

type t
(** A pool of worker domains scheduled by work stealing. *)

val create :
  ?oversubscribe:bool -> ?num_domains:int -> ?deque_capacity:int -> unit -> t
(** [create ?num_domains ()] spawns up to [num_domains] worker domains
    (default [max 1 (Domain.recommended_domain_count () - 1)]).
    Raises [Invalid_argument] if [num_domains < 1].

    [num_domains] is a cap, not a demand.  The submitting domain helps
    execute tasks during {!parallel_map}, so the pool clamps its worker
    count to [recommended_domain_count - 1]: a domain without a core
    of its own adds no throughput, only stop-the-world GC rendezvous
    and scheduler ping-pong — the reason [-j] used to lose to
    sequential on small machines.  On a single-core machine the clamp
    yields zero workers and [parallel_map] runs every task on the
    (GC-tuned) submitting domain.  [oversubscribe:true] spawns the
    requested count regardless; tests use it to get real cross-domain
    traffic on any machine.

    [deque_capacity] is the initial ring size of each executor's
    {!Deque} (default 256; grows geometrically, so it is never a
    limit).  Tests pass tiny capacities to force ring growth under
    concurrent stealing. *)

val size : t -> int
(** Number of worker domains (after clamping). *)

(** {1 Scheduler statistics}

    Per-executor counters for the bench layer's self-profiling.
    Counter slot [i < size t] belongs to worker [i]; the last slot is
    the submitting domain helping during {!parallel_map}.  Each slot
    is written by its executor alone and read without
    synchronisation, so a snapshot taken while a map is in flight may
    lag by a task or two.  Which executor ran which task is a race
    between domains, so these numbers are {e nondeterministic} by
    nature: they are for [bench perf]'s scheduler report and must
    never feed simulation output or run snapshots. *)

type stats = {
  executors : int;  (** [size t + 1]: workers plus the submitter slot *)
  executed : int array;  (** tasks run, per executor *)
  local_pops : int array;  (** tasks taken from the executor's own deque *)
  steals : int array;  (** tasks stolen from another executor's deque *)
  failed_steals : int array;  (** steal probes that found a deque empty *)
  injected_runs : int array;
      (** tasks taken from the [submit] injector queue *)
}

val stats : t -> stats
(** Snapshot of the counters since creation (or {!reset_stats}).
    For every executor [i],
    [executed.(i) = local_pops.(i) + steals.(i) + injected_runs.(i)]
    once the pool is quiescent. *)

val reset_stats : t -> unit
(** Zero all {!stats} counters.  Call between benchmark phases, not
    while a map is in flight. *)

val executed_jobs : t -> int array
(** [stats t |> fun s -> s.executed] — kept for the bench layer's
    utilisation report. *)

val injector_depth : t -> int
(** Jobs currently waiting on the [submit] injector queue (taken
    under the pool mutex, so exact at the instant of the call).  Like
    {!stats} this is scheduler state — nondeterministic by nature,
    for the self-profiler's live view only, never for simulation
    output. *)

val reset_executed : t -> unit
(** Alias of {!reset_stats}. *)

val shutdown : t -> unit
(** Drain the queues, stop the workers and join them.  Idempotent, and
    safe on a poisoned pool (crashed workers have already returned).
    Submitting to a shut-down pool raises [Invalid_argument]. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a raw job on the injector queue (raw jobs are not pushed
    on any deque — deque ownership belongs to [parallel_map]
    submitters).  Idle executors drain the injector after their steal
    round.  The job should not raise: an exception escaping a raw job
    {e poisons} the pool — the worker that ran it stops, pending jobs
    are discarded, and the original exception is re-raised by every
    subsequent [submit] or in-flight [parallel_map] instead of
    deadlocking them.  ([parallel_map]'s own tasks never poison:
    their exceptions are captured per-slot and re-raised in input
    order.) *)

val parallel_map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ?pool f xs] is [List.map f xs], evaluated across
    the pool's domains.  Results are returned in input order.  If any
    task raises, the first exception (in input order) is re-raised
    with its backtrace after all tasks have finished.  If the pool is
    poisoned while tasks are pending, the poisoning exception is
    re-raised immediately (fail fast, no deadlock).

    Every list element becomes its own task.  The submitting domain
    is an executor too: it pushes the tasks onto its own deque, then
    rather than sleeping on the pool it executes alongside the
    workers — popping its deque LIFO, stealing back once it drains —
    with the worker GC tuning applied for the duration (and restored
    after).  A map over a pool of [w] workers therefore uses [w + 1]
    executing domains.

    Runs sequentially — exactly [List.map f xs] — when [pool] is
    absent and no default pool is configured, when [xs] has fewer
    than two elements, or when called from inside a pool worker. *)

val parallel_map_result :
  ?pool:t ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** Like {!parallel_map}, but a task exception never discards sibling
    work: each task's outcome is returned in its own input-order slot,
    [Ok v] or [Error (exn, backtrace)].  This is the primitive the
    experiment supervisor builds on — a quarantined cell must not cost
    the run its other cells.  Pool poisoning (from a raw {!submit}
    job) still re-raises: poisoning means worker domains died, which
    is not a per-task condition. *)

(** {1 Process-wide default}

    The CLI surfaces parallelism as a [-j]/[--jobs] flag; the flag
    configures this default so library code deep in the experiment
    layer need not thread a pool through every call site. *)

val set_default_jobs : int -> unit
(** [set_default_jobs n] makes [parallel_map] calls without an
    explicit [?pool] use a shared pool sized for [n] executors — the
    submitting domain plus up to [n - 1] workers (clamped as in
    {!create}).  [n <= 1] means sequential (the initial state); [0]
    means [Domain.recommended_domain_count ()].  Replacing the
    setting shuts the previous default pool down. *)

val default_jobs : unit -> int
(** The currently configured default ([1] initially). *)

(** {1 Worker GC tuning}

    OCaml 5 minor collections stop the world across {e every} domain,
    so when domains outnumber cores each minor GC is a rendezvous on
    an oversubscribed scheduler — the dominant cost of small-heap
    parallel runs.  Worker domains therefore enlarge their private
    minor heap at spawn ([Gc.set] inside a domain only affects that
    domain), dividing the rendezvous count; the submitting domain and
    sequential runs keep the default GC so baselines are unaffected.
    This replaces fiddling with [OCAMLRUNPARAM], which would tune the
    sequential baseline too. *)

type gc_tuning = {
  minor_heap_words : int;  (** per-worker minor heap, in words *)
  space_overhead : int;  (** major-GC slack, as [Gc.control] *)
}

val default_gc_tuning : gc_tuning

val set_worker_gc_tuning : gc_tuning option -> unit
(** Tuning applied by each worker domain as it starts; [None] leaves
    workers on the runtime defaults.  Takes effect for pools created
    after the call. *)
