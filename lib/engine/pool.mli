(** Fixed-size domain pool for embarrassingly parallel sweeps.

    The experiment layer runs many independent simulations — every
    {!Mk_cluster.Driver.run} owns its own event queue and PRNG, so a
    sweep is a pure [map] over (scenario × node count × repetition)
    cells.  This module fans such maps out across OCaml 5 domains
    while keeping the output {e bit-identical} to the sequential run:

    - {!parallel_map} preserves input order, so result assembly does
      not depend on completion order;
    - workers share nothing: each job closes over its own immutable
      inputs and writes one private result slot;
    - a [parallel_map] issued from inside a worker (a nested sweep)
      degrades to a plain [List.map] on that worker, which both keeps
      the determinism argument trivial and makes pool deadlock
      impossible.

    The determinism contract this relies on is spelled out in
    [docs/PARALLELISM.md]. *)

type t
(** A pool of worker domains fed from one locked work queue. *)

val create : ?num_domains:int -> unit -> t
(** [create ?num_domains ()] spawns [num_domains] worker domains
    (default [max 1 (Domain.recommended_domain_count () - 1)], leaving
    one core to the submitting domain).  Raises [Invalid_argument] if
    [num_domains < 1]. *)

val size : t -> int
(** Number of worker domains. *)

val shutdown : t -> unit
(** Drain the queue, stop the workers and join them.  Idempotent, and
    safe on a poisoned pool (crashed workers have already returned).
    Submitting to a shut-down pool raises [Invalid_argument]. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a raw job.  The job should not raise: an exception
    escaping a raw job {e poisons} the pool — the worker that ran it
    stops, pending jobs are discarded, and the original exception is
    re-raised by every subsequent [submit] or in-flight
    [parallel_map] instead of deadlocking them.  ([parallel_map]'s
    own jobs never poison: their exceptions are captured per-slot and
    re-raised in input order.) *)

val parallel_map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ?pool f xs] is [List.map f xs], evaluated across
    the pool's domains.  Results are returned in input order.  If any
    job raises, the first exception (in input order) is re-raised
    with its backtrace after all jobs have finished.  If the pool is
    poisoned while jobs are pending, the poisoning exception is
    re-raised immediately (fail fast, no deadlock).

    Runs sequentially — exactly [List.map f xs] — when [pool] is
    absent and no default pool is configured, when the pool has a
    single worker, when [xs] has fewer than two elements, or when
    called from inside a pool worker. *)

(** {1 Process-wide default}

    The CLI surfaces parallelism as a [-j]/[--jobs] flag; the flag
    configures this default so library code deep in the experiment
    layer need not thread a pool through every call site. *)

val set_default_jobs : int -> unit
(** [set_default_jobs n] makes [parallel_map] calls without an
    explicit [?pool] use a shared pool of [n] workers.  [n <= 1]
    means sequential (the initial state); [0] means
    [Domain.recommended_domain_count ()].  Replacing the setting
    shuts the previous default pool down. *)

val default_jobs : unit -> int
(** The currently configured default ([1] initially). *)
