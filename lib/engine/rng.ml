type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 is used for seeding: it turns any 64-bit value into a
   well-mixed sequence, which is the recommended way to initialise
   xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t label =
  (* Mix the parent state with the label through splitmix64 without
     advancing the parent. *)
  let state =
    ref
      (Int64.add
         (Int64.mul t.s0 0x2545F4914F6CDD1DL)
         (Int64.add (Int64.of_int label) t.s3))
  in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Drop two bits so the value fits OCaml's 63-bit signed int. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  (* 53 random bits mapped to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = float t 1.0 and u2 = float t 1.0 in
  let u1 = if u1 <= 0.0 then 1e-300 else u1 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let pareto t ~scale ~shape =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-300 else u in
  scale /. (u ** (1.0 /. shape))

(* Acklam's rational approximation to the inverse normal CDF;
   absolute error below 1.15e-9 over (0,1). *)
let normal_quantile p =
  if p <= 0.0 then -8.0
  else if p >= 1.0 then 8.0
  else begin
    let a =
      [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
         1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
    in
    let b =
      [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
         6.680131188771972e+01; -1.328068155288572e+01 |]
    in
    let c =
      [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
         -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
    in
    let d =
      [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
         3.754408661907416e+00 |]
    in
    let p_low = 0.02425 in
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
      +. c.(5)
      |> fun num ->
      num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
      +. a.(5))
      *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r
         +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
         +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
  end

let poisson t ~lambda =
  if lambda < 0.0 then invalid_arg "Rng.poisson: negative lambda";
  if lambda = 0.0 then 0
  else if lambda < 30.0 then begin
    (* Knuth: multiply uniforms until below e^-lambda. *)
    let limit = exp (-.lambda) in
    let rec go k p =
      let p = p *. float t 1.0 in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.0
  end
  else begin
    let v = lambda +. (sqrt lambda *. normal_quantile (float t 1.0)) in
    max 0 (int_of_float (Float.round v))
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
