(** Online and batch statistics.

    [Summary] accumulates count/mean/variance/min/max in O(1) memory
    (Welford's algorithm).  [Sample] keeps the raw values for exact
    medians and percentiles — the paper reports the median of five
    runs with min/max error bars, which [Sample.median] and
    [Sample.minmax] provide.  [Histogram] is log-bucketed, suitable
    for latency distributions spanning several decades. *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val merge : t -> t -> t
end

module Sample : sig
  type t

  val create : unit -> t
  val of_list : float list -> t
  val add : t -> float -> unit
  val count : t -> int
  val values : t -> float array
  val mean : t -> float
  val median : t -> float
  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0,100], linear interpolation. *)

  val minmax : t -> float * float
end

module Histogram : sig
  type t

  val create : ?base:float -> ?buckets:int -> unit -> t
  (** Log-bucketed histogram starting at 1.0 with the given base
      (default 2.0) and number of buckets (default 64). *)

  val add : t -> float -> unit
  val count : t -> int
  val bucket_count : t -> int -> int
  (** Entries in bucket [i]. *)

  val bucket_bounds : t -> int -> float * float
  val pp : Format.formatter -> t -> unit
end

val median_of : float list -> float
(** Convenience: exact median of a non-empty list. *)
