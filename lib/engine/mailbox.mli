(** Single-producer single-consumer mailbox.

    The channel between two {!Shard}s: the shard that owns the sending
    side pushes, the shard that owns the receiving side pops, and no
    lock is ever taken.  "Single" is a role, not a domain identity —
    the epoch barrier in {!Shard.run} hands each role to at most one
    domain at a time and synchronises the hand-over, which is exactly
    the contract this queue needs.

    FIFO per mailbox; delivered values are scrubbed from the queue's
    nodes so no reference outlives its delivery. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Producer side: append one value.  Never blocks; the queue is
    unbounded (one heap node per in-flight value). *)

val pop : 'a t -> 'a option
(** Consumer side: remove the oldest value, or [None] when the queue
    is empty at the moment of the call. *)

val is_empty : 'a t -> bool
(** Consumer side: no value was visible at the moment of the call. *)

val length : 'a t -> int
(** Number of undelivered values visible to the consumer — an O(n)
    walk of the queue.  Exact when both roles are quiescent (the
    {!Shard.run} epoch barrier, where the self-profiler samples
    mailbox occupancy); otherwise a consumer-side lower bound. *)
