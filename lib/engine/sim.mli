(** Discrete-event simulation core.

    A simulation owns a virtual clock and a priority queue of pending
    events.  Event handlers receive the simulation and may schedule
    further events.  Scheduled events can be cancelled; ties on the
    clock fire in scheduling order, so runs are deterministic. *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

val create : unit -> t

val now : t -> Units.time
(** Current virtual time, ns. *)

val schedule : t -> at:Units.time -> (t -> unit) -> event_id
(** Schedule a handler to fire at absolute time [at].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_after : t -> delay:Units.time -> (t -> unit) -> event_id
(** Schedule relative to [now]. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of live (non-cancelled) events in the queue. *)

val step : t -> bool
(** Fire the next event; [false] if the queue was empty. *)

val run : ?until:Units.time -> t -> unit
(** Fire events until the queue drains, or until the clock would pass
    [until] (events at exactly [until] still fire). *)

val next_time : t -> Units.time option
(** Timestamp of the earliest live event, without firing it —
    {!Shard}'s lookahead peek.  Drops cancelled entries it passes
    over, so repeated calls stay cheap. *)

val advance_to : t -> Units.time -> unit
(** Move the clock forward without firing events; only valid when no
    pending event precedes the target time.
    @raise Invalid_argument otherwise. *)
