(** Array-backed binary min-heap keyed by integer priority.

    Used as the backbone of the event queue.  Insertions with equal
    keys are dequeued in insertion order (the heap carries a sequence
    number), which keeps simulations deterministic. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> 'a -> unit

val peek : 'a t -> (int * 'a) option
(** Smallest (key, value), without removing it. *)

val min_key : 'a t -> int option
(** Smallest key alone — the lookahead peek: {!Shard}'s coordinator
    asks every heap for its next timestamp each epoch, and has no use
    for the value. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the smallest (key, value).  The vacated slot is
    overwritten, so the heap retains no reference to popped values. *)

val pop_le : 'a t -> limit:int -> (int * 'a) option
(** [pop_le t ~limit] pops the smallest (key, value) only when
    [key <= limit]; otherwise (or when empty) [None] and the heap is
    unchanged.  One root access — the caller needs no separate
    {!peek}. *)

val pop_exn : 'a t -> int * 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Empty the heap, overwriting every occupied slot so no value
    reference is retained. *)

val to_sorted_list : 'a t -> (int * 'a) list
(** Non-destructive: all elements in ascending key order. *)
