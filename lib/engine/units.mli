(** Physical units used throughout the simulator.

    Simulated time is measured in integer nanoseconds, memory sizes in
    integer bytes.  Using [int] (63-bit on 64-bit platforms) gives us
    ~292 simulated years of nanosecond resolution, far more than any
    experiment needs, while keeping arithmetic exact and fast. *)

type time = int
(** Simulated time or duration, in nanoseconds. *)

type size = int
(** Memory size, in bytes. *)

(** {1 Time constants} *)

val ns : time
val us : time
val ms : time
val sec : time

val of_us : float -> time
val of_ms : float -> time
val of_sec : float -> time

val to_sec : time -> float
(** [to_sec t] converts nanoseconds to seconds as a float. *)

(** {1 Size constants} *)

val kib : size
val mib : size
val gib : size

val of_kib : int -> size
val of_mib : int -> size
val of_gib : int -> size

(** {1 Pretty printing} *)

val pp_time : Format.formatter -> time -> unit
(** Human-friendly duration: picks ns/us/ms/s automatically. *)

val pp_size : Format.formatter -> size -> unit
(** Human-friendly size: picks B/KiB/MiB/GiB automatically. *)

val time_to_string : time -> string
val size_to_string : size -> string

(** {1 Rates} *)

val bytes_per_sec_to_bytes_per_ns : float -> float
(** Convert a bandwidth in bytes/second into bytes/nanosecond. *)

val gib_per_sec : float -> float
(** [gib_per_sec g] is a bandwidth of [g] GiB/s expressed in bytes/ns. *)

val transfer_time : bytes:size -> bw:float -> time
(** [transfer_time ~bytes ~bw] is the time to move [bytes] at [bw]
    bytes/ns, rounded up to at least 1 ns for non-empty transfers. *)
