(** Append-only run journal: crash-safe memoization of completed
    experiment cells.

    Each line of the journal file is one compact JSON object
    [{"key": <hash>, "label": <human label>, "value": <result>}].
    [key] is a content hash of everything the cell's result depends on
    (seed, scenario, config, code-version salt — see
    {!Mk_cluster.Experiment.cell_key}); [label] exists only for
    humans reading the file.  Entries are appended, flushed, and
    fsynced as each cell completes, so a killed run loses at most the
    cell being written — and a torn trailing line is detected and
    ignored on reload.

    The journal is a lookup table, not an ordered log: the byte order
    of entries depends on parallel completion order and is explicitly
    {e not} part of any byte-identity contract.  Resume identity comes
    from the report renderer consuming cells in input order, whether
    each cell was replayed or recomputed. *)

type t

val open_ : ?replay:bool -> path:string -> unit -> t
(** Open (creating if absent) the journal at [path] for appending,
    first loading any existing entries.  Later duplicate keys win.  A
    malformed line stops the load and is counted in {!torn}; the torn
    tail is then truncated away (and a missing final newline repaired)
    before any new record is appended, so a crash–resume–crash cycle
    never fuses a fresh record onto torn bytes.  When [replay] is
    [false] (record-only mode, [--journal] without [--resume]) the
    loaded entries are kept for accounting but {!find} always
    misses. *)

val find : t -> key:string -> Json.t option
(** Replay lookup.  [None] when the key is absent or the journal was
    opened with [~replay:false].  Thread-safe (worker tasks look up
    concurrently with {!record} from their siblings). *)

val record : t -> key:string -> label:string -> Json.t -> unit
(** Append one completed cell.  Thread-safe (worker tasks record as
    they finish); the line is flushed and fsynced before returning. *)

val loaded : t -> int
(** Entries successfully loaded from the pre-existing file. *)

val torn : t -> int
(** Malformed (torn) lines encountered during load. *)

val path : t -> string

val close : t -> unit
