let tmp_path path = path ^ ".tmp"

let write path contents =
  let tmp = tmp_path path in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     flush oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
