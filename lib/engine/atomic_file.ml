exception Corrupt of { path : string; reason : string }
exception Crashed

let () =
  Printexc.register_printer (function
    | Corrupt { path; reason } ->
        Some (Printf.sprintf "Atomic_file.Corrupt(%s: %s)" path reason)
    | Crashed -> Some "Atomic_file.Crashed (simulated mid-write crash)"
    | _ -> None)

let tmp_path path = path ^ ".tmp"

(* Monotonic per-process stamp so two writers racing on the same
   destination never share a staging file; combined with the pid it is
   unique across concurrent processes too. *)
let stage_counter = Atomic.make 0 (* mklint: allow R4 — process-unique stamp, never read as data *)

let stage_path path =
  Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
    (Atomic.fetch_and_add stage_counter 1)

(* Test hook: when set to [Some n], the next [write] raises [Crashed]
   after staging exactly [n] bytes, leaving the torn staging file on
   disk (a real crash does not clean up after itself). *)
let crash_after : int option ref = ref None (* mklint: allow R4 — test hook, set only from single-domain test code *)

let with_crash_after_bytes n f =
  crash_after := Some n;
  Fun.protect ~finally:(fun () -> crash_after := None) f

let fsync_channel oc = try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let fsync_dir path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let write path contents =
  let tmp = stage_path path in
  let oc = open_out_bin tmp in
  (try
     (match !crash_after with
     | Some n when n < String.length contents ->
         output_substring oc contents 0 n;
         flush oc;
         fsync_channel oc;
         close_out_noerr oc;
         (* Simulated kill: the torn staging file stays behind. *)
         raise Crashed
     | _ -> ());
     output_string oc contents;
     flush oc;
     fsync_channel oc;
     (* Inside the handler's reach: close_out can itself raise (its
        implicit flush, e.g. on ENOSPC) and must also leave no staging
        file behind. *)
     close_out oc
   with
  | Crashed -> raise Crashed
  | e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path;
  fsync_dir path

let read path =
  match open_in_bin path with
  | exception Sys_error reason -> raise (Corrupt { path; reason })
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try really_input_string ic (in_channel_length ic)
          with Sys_error reason | Failure reason ->
            raise (Corrupt { path; reason }))

let read_json path =
  let contents = read path in
  match Json.of_string contents with
  | Ok json -> json
  | Error reason -> raise (Corrupt { path; reason })
