type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec render ~indent ~level buf t =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          render ~indent ~level:(level + 1) buf item)
        items;
      newline ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          render ~indent ~level:(level + 1) buf v)
        fields;
      newline ();
      pad level;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  render ~indent:false ~level:0 buf t;
  Buffer.contents buf

let to_string_pretty t =
  let buf = Buffer.create 256 in
  render ~indent:true ~level:0 buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the byte string.                    *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      v
    end
    else fail "invalid literal"
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          incr pos;
          Buffer.contents buf
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' ->
              Buffer.add_char buf '"';
              incr pos
          | '\\' ->
              Buffer.add_char buf '\\';
              incr pos
          | '/' ->
              Buffer.add_char buf '/';
              incr pos
          | 'b' ->
              Buffer.add_char buf '\b';
              incr pos
          | 'f' ->
              Buffer.add_char buf '\012';
              incr pos
          | 'n' ->
              Buffer.add_char buf '\n';
              incr pos
          | 'r' ->
              Buffer.add_char buf '\r';
              incr pos
          | 't' ->
              Buffer.add_char buf '\t';
              incr pos
          | 'u' ->
              incr pos;
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              add_utf8 buf code
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_digit c = c >= '0' && c <= '9' in
    if peek () = Some '-' then incr pos;
    while !pos < n && is_digit s.[!pos] do
      incr pos
    done;
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      while !pos < n && is_digit s.[!pos] do
        incr pos
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        while !pos < n && is_digit s.[!pos] do
          incr pos
        done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "invalid number";
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "invalid number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "invalid number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                field ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          field ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                item ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
