module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; mn = infinity; mx = neg_infinity; total = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x;
    t.total <- t.total +. x

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.mn
  let max t = t.mx
  let total t = t.total

  let merge a b =
    if a.n = 0 then
      { n = b.n; mean = b.mean; m2 = b.m2; mn = b.mn; mx = b.mx; total = b.total }
    else if b.n = 0 then
      { n = a.n; mean = a.mean; m2 = a.m2; mn = a.mn; mx = a.mx; total = a.total }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      {
        n;
        mean;
        m2;
        mn = Stdlib.min a.mn b.mn;
        mx = Stdlib.max a.mx b.mx;
        total = a.total +. b.total;
      }
    end
end

module Sample = struct
  type t = { mutable data : float array; mutable n : int; mutable sorted : bool }

  let create () = { data = Array.make 16 0.0; n = 0; sorted = true }

  let add t x =
    if t.n = Array.length t.data then begin
      let data = Array.make (2 * t.n) 0.0 in
      Array.blit t.data 0 data 0 t.n;
      t.data <- data
    end;
    t.data.(t.n) <- x;
    t.n <- t.n + 1;
    t.sorted <- false

  let of_list xs =
    let t = create () in
    List.iter (add t) xs;
    t

  let count t = t.n
  let values t = Array.sub t.data 0 t.n

  let ensure_sorted t =
    if not t.sorted then begin
      let v = Array.sub t.data 0 t.n in
      Array.sort compare v;
      Array.blit v 0 t.data 0 t.n;
      t.sorted <- true
    end

  let mean t =
    if t.n = 0 then 0.0
    else begin
      let s = ref 0.0 in
      for i = 0 to t.n - 1 do
        s := !s +. t.data.(i)
      done;
      !s /. float_of_int t.n
    end

  let percentile t p =
    if t.n = 0 then invalid_arg "Stats.Sample.percentile: empty sample";
    ensure_sorted t;
    let rank = p /. 100.0 *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then t.data.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))
    end

  let median t = percentile t 50.0

  let minmax t =
    if t.n = 0 then invalid_arg "Stats.Sample.minmax: empty sample";
    ensure_sorted t;
    (t.data.(0), t.data.(t.n - 1))
end

module Histogram = struct
  type t = { base : float; counts : int array; mutable n : int }

  let create ?(base = 2.0) ?(buckets = 64) () =
    if base <= 1.0 then invalid_arg "Stats.Histogram.create: base must exceed 1";
    { base; counts = Array.make buckets 0; n = 0 }

  let bucket_of t x =
    if x < 1.0 then 0
    else begin
      let b = int_of_float (Float.floor (log x /. log t.base)) + 1 in
      Stdlib.min b (Array.length t.counts - 1)
    end

  let add t x =
    let b = bucket_of t x in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1

  let count t = t.n
  let bucket_count t i = t.counts.(i)

  let bucket_bounds t i =
    if i = 0 then (0.0, 1.0)
    else (t.base ** float_of_int (i - 1), t.base ** float_of_int i)

  let pp ppf t =
    let width = 40 in
    let mx = Array.fold_left Stdlib.max 1 t.counts in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          let lo, hi = bucket_bounds t i in
          let bar = String.make (c * width / mx) '#' in
          Format.fprintf ppf "[%10.1f, %10.1f) %8d %s@." lo hi c bar
        end)
      t.counts
end

let median_of xs = Sample.median (Sample.of_list xs)
