(** Sharded, conservatively synchronised parallel DES.

    Partitions an event simulation into [shards] independent {!Sim}
    heaps that advance in parallel — one {!Pool} task per shard per
    epoch — while producing output {e byte-identical} to a single
    serial heap.  The synchronisation is conservative in the
    Chandy–Misra–Bryant sense: a model must declare a [lookahead]
    [L > 0] and promise that an event processed at time [t] only
    sends cross-shard messages stamped [t + L] or later ({!send}
    enforces this).  Each epoch then safely fires everything up to
    [g + L - 1], where [g] is the globally earliest pending
    timestamp; cross-shard messages ride per-ordered-pair SPSC
    {!Mailbox}es and are merged at the epoch boundary in source-shard
    order, with null-message promises covering silent pairs.  The
    protocol, the lookahead derivation for the cluster model, and the
    determinism argument are spelled out in [docs/SHARDING.md]. *)

type 'msg t
(** One shard, as seen by model code running inside it: a private
    clock and event heap plus mailboxes to its peers.  ['msg] is the
    model's cross-shard message type. *)

val id : 'msg t -> int
val shard_count : 'msg t -> int

val now : 'msg t -> Units.time
(** The shard's private clock; shards drift within an epoch and never
    observably disagree (any event they could exchange is ordered by
    the lookahead). *)

val lookahead : 'msg t -> Units.time

val schedule : 'msg t -> at:Units.time -> ('msg t -> unit) -> unit
(** Schedule a local event on this shard's heap.
    @raise Invalid_argument if [at] precedes the shard's clock. *)

val send : 'msg t -> shard:int -> at:Units.time -> 'msg -> unit
(** Deliver [payload] to [shard] at absolute time [at].  Same-shard
    sends are ordinary local events.  Cross-shard sends must respect
    the lookahead contract.
    @raise Invalid_argument if [shard] is out of range, or if the
    send is cross-shard with [at < now + lookahead]. *)

type stats = {
  shards : int;
  epochs : int;  (** synchronisation rounds after the init round *)
  events : int array;  (** events fired, per shard *)
  cross_messages : int array;  (** real cross-shard messages sent, per shard *)
  null_messages : int array;  (** null promises sent, per shard *)
  horizon_stalls : int array;
      (** epochs a shard held pending events but could fire none *)
}
(** All deterministic: identical for every pool size, including none —
    safe to feed observability counters or snapshots. *)

type sample = {
  sample_epoch : int;  (** 1-based epoch index *)
  sample_bound : Units.time;  (** the epoch's global bound [g] *)
  sample_horizon : Units.time;  (** [g + lookahead - 1] *)
  sample_events : int;  (** events fired this epoch, all shards *)
  sample_cross : int;  (** real cross-shard messages sent this epoch *)
  sample_nulls : int;  (** null promises sent this epoch *)
  sample_stalls : int;  (** shards that held events but fired none *)
  sample_backlog : int;
      (** packets (real + null) in flight at the epoch barrier *)
}
(** One epoch of engine internals, as handed to {!run}'s [observer].
    Like {!stats}, every field is protocol-determined — identical for
    sequential and [-j N] runs — so {!Mk_obs.Profile} timelines built
    from samples keep the byte-identity contract. *)

val run :
  ?pool:Pool.t ->
  ?observer:(sample -> unit) ->
  shards:int ->
  lookahead:Units.time ->
  init:('msg t -> unit) ->
  receive:('msg t -> 'msg -> unit) ->
  unit ->
  stats
(** Run a sharded simulation to completion.  [init] is called once
    per shard (in parallel) to populate its heap; [receive] handles
    each delivered cross- or same-shard {!send} — it fires at the
    message's timestamp, so [now t] inside it {e is} the [at] of the
    send.  Epochs repeat until every heap is empty and no message is
    in flight.  [observer] fires once per epoch, on the coordinating
    caller after the epoch barrier (never on a worker), with that
    epoch's {!sample}.  Uses the ambient default pool when [pool] is
    absent; degrades to a sequential loop inside a pool worker, with
    identical results.
    @raise Invalid_argument when [shards <= 0] or [lookahead <= 0]. *)
