(** Deterministic, splittable pseudo-random number generation.

    The whole simulator draws randomness through this module so that a
    run is reproducible from a single seed.  The generator is
    xoshiro256** (Blackman & Vigna), seeded via splitmix64.  [split]
    derives an independent stream from a parent stream and a label,
    which lets us give every (experiment, run, node, rank) tuple its
    own deterministic stream regardless of evaluation order. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> int -> t
(** [split t label] derives an independent generator.  Distinct labels
    yield decorrelated streams; the parent is not advanced. *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n).  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian via Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** exp of a normal draw: heavy-ish right tail, always positive. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto type I: support [scale, inf), heavier tail for small shape. *)

val poisson : t -> lambda:float -> int
(** Poisson-distributed count; Knuth's method for small [lambda],
    normal approximation beyond 30. *)

val normal_quantile : float -> float
(** Inverse standard-normal CDF (Acklam's approximation); pure
    function, exposed for max-order-statistic sampling. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
