type t = {
  path : string;
  replay : bool;
  seen : (string, Json.t) Hashtbl.t;
  mutable loaded : int;
  mutable torn : int;
  oc : out_channel;
  mutex : Mutex.t;
}

let parse_line line =
  match Json.of_string line with
  | Error _ -> None
  | Ok (Json.Obj fields) -> (
      match (List.assoc_opt "key" fields, List.assoc_opt "value" fields) with
      | Some (Json.String key), Some value -> Some (key, value)
      | _ -> None)
  | Ok _ -> None

let load t path =
  match open_in_bin path with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let size = in_channel_length ic in
          (* Byte offset just past the last well-formed line: where a
             torn tail (if any) begins. *)
          let good_end = ref 0 in
          let rec loop () =
            match input_line ic with
            | exception End_of_file -> ()
            | line when String.trim line = "" ->
                good_end := pos_in ic;
                loop ()
            | line -> (
                match parse_line line with
                | Some (key, value) ->
                    (* Later entries win: a resumed run may re-record a
                       cell that was journaled before an older crash. *)
                    Hashtbl.replace t.seen key value;
                    t.loaded <- t.loaded + 1;
                    good_end := pos_in ic;
                    loop ()
                | None ->
                    (* A torn trailing line from a killed writer; count
                       it and stop — nothing after it is trustworthy. *)
                    t.torn <- t.torn + 1)
          in
          loop ();
          (* Repair before the first append, or the new record fuses
             with the torn bytes into one unparsable line and a later
             resume silently stops loading there. *)
          if t.torn > 0 then (
            try Unix.truncate path !good_end with Unix.Unix_error _ -> ())
          else if size > 0 then (
            (* A last line that parsed but lacks its trailing newline
               would fuse too: separate it. *)
            seek_in ic (size - 1);
            match input_char ic with
            | '\n' -> ()
            | _ | (exception End_of_file) ->
                output_char t.oc '\n';
                flush t.oc))

let open_ ?(replay = true) ~path () =
  let t =
    {
      path;
      replay;
      seen = Hashtbl.create 64;
      loaded = 0;
      torn = 0;
      oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path;
      mutex = Mutex.create ();
    }
  in
  load t path;
  t

(* [seen] is read by every worker domain while completed tasks
   [record] into it concurrently, and stdlib Hashtbl is unsynchronized
   across domains — so lookups take the same mutex as writers. *)
let find t ~key =
  if t.replay then
    Mutex.protect t.mutex (fun () -> Hashtbl.find_opt t.seen key)
  else None

let record t ~key ~label value =
  let entry =
    Json.Obj
      [ ("key", Json.String key); ("label", Json.String label); ("value", value) ]
  in
  let line = Json.to_string entry in
  Mutex.protect t.mutex (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc;
      (try Unix.fsync (Unix.descr_of_out_channel t.oc)
       with Unix.Unix_error _ -> ());
      Hashtbl.replace t.seen key value)

let loaded t = t.loaded
let torn t = t.torn
let path t = t.path
let close t = Mutex.protect t.mutex (fun () -> close_out_noerr t.oc)
