type t = {
  path : string;
  replay : bool;
  seen : (string, Json.t) Hashtbl.t;
  mutable loaded : int;
  mutable torn : int;
  oc : out_channel;
  mutex : Mutex.t;
}

let parse_line line =
  match Json.of_string line with
  | Error _ -> None
  | Ok (Json.Obj fields) -> (
      match (List.assoc_opt "key" fields, List.assoc_opt "value" fields) with
      | Some (Json.String key), Some value -> Some (key, value)
      | _ -> None)
  | Ok _ -> None

let load t path =
  match open_in_bin path with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec loop () =
            match input_line ic with
            | exception End_of_file -> ()
            | line when String.trim line = "" -> loop ()
            | line -> (
                match parse_line line with
                | Some (key, value) ->
                    (* Later entries win: a resumed run may re-record a
                       cell that was journaled before an older crash. *)
                    Hashtbl.replace t.seen key value;
                    t.loaded <- t.loaded + 1;
                    loop ()
                | None ->
                    (* A torn trailing line from a killed writer; count
                       it and stop — nothing after it is trustworthy. *)
                    t.torn <- t.torn + 1)
          in
          loop ())

let open_ ?(replay = true) ~path () =
  let t =
    {
      path;
      replay;
      seen = Hashtbl.create 64;
      loaded = 0;
      torn = 0;
      oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path;
      mutex = Mutex.create ();
    }
  in
  load t path;
  t

let find t ~key = if t.replay then Hashtbl.find_opt t.seen key else None

let record t ~key ~label value =
  let entry =
    Json.Obj
      [ ("key", Json.String key); ("label", Json.String label); ("value", value) ]
  in
  let line = Json.to_string entry in
  Mutex.protect t.mutex (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc;
      (try Unix.fsync (Unix.descr_of_out_channel t.oc)
       with Unix.Unix_error _ -> ());
      Hashtbl.replace t.seen key value)

let loaded t = t.loaded
let torn t = t.torn
let path t = t.path
let close t = Mutex.protect t.mutex (fun () -> close_out_noerr t.oc)
