type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let rule = Array.fold_left (fun acc w -> acc + w) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make rule '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; 'o'; '+'; 'x'; '@'; '%'; '#'; '~' |]

let chart ?(width = 72) ?(height = 20) ?(logx = false) ~title ?ylabel series =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then begin
    Buffer.add_string buf "  (no data)\n";
    Buffer.contents buf
  end
  else begin
    let tx x = if logx then log x else x in
    let xs = List.map (fun (x, _) -> tx x) all_points in
    let ys = List.map snd all_points in
    let xmin = List.fold_left min infinity xs
    and xmax = List.fold_left max neg_infinity xs in
    let ymin = List.fold_left min infinity ys
    and ymax = List.fold_left max neg_infinity ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            let cx =
              int_of_float ((tx x -. xmin) /. xspan *. float_of_int (width - 1))
            in
            let cy =
              height - 1
              - int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
            in
            if cx >= 0 && cx < width && cy >= 0 && cy < height then
              grid.(cy).(cx) <- glyph)
          s.points)
      series;
    (match ylabel with
    | Some l -> Buffer.add_string buf (Printf.sprintf "  y: %s\n" l)
    | None -> ());
    Buffer.add_string buf (Printf.sprintf "  %10.3g +\n" ymax);
    Array.iter
      (fun row ->
        Buffer.add_string buf "             |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "  %10.3g +%s\n" ymin (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "              x: %.3g .. %.3g%s\n"
         (if logx then exp xmin else xmin)
         (if logx then exp xmax else xmax)
         (if logx then " (log scale)" else ""));
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "              %c = %s\n"
             glyphs.(si mod Array.length glyphs)
             s.label))
      series;
    Buffer.contents buf
  end

let csv ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
