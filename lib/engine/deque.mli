(** Chase–Lev work-stealing deque: single owner, many thieves.

    The owner pushes and pops at the {e bottom} (LIFO, cache-warm);
    any other domain steals from the {e top} (FIFO, oldest task
    first).  This is the per-domain run queue of {!Pool}'s
    work-stealing executor: LIFO local execution keeps a submitter
    close to the work it just created, FIFO stealing hands a thief
    the largest-granularity task available — the classic split that
    makes stealing rare and cheap when the load is balanced and
    effective when it is not.

    The implementation is the circular-array deque of Chase and Lev
    (SPAA 2005) on OCaml 5 [Atomic]s: [push]/[pop] are a handful of
    plain loads and one atomic store in the common case; [steal] and
    the one-element [pop] race resolve by compare-and-set on the top
    index.  The ring grows geometrically when full (the capacity
    argument is an initial size, not a limit), so [push] never
    blocks and never drops work.

    Ownership discipline is the caller's contract: [push] and [pop]
    must only ever be called from one domain at a time — the owner —
    while [steal] is safe from any domain, concurrently with
    everything.  Nothing enforces this; {!Pool} guarantees it by
    construction (one deque per executor slot). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** A fresh empty deque.  [capacity] (default [256]) is the initial
    ring size, rounded up to a power of two [>= 2]; the ring doubles
    whenever a [push] finds it full.  Tests use tiny capacities to
    force the growth path under concurrent stealing. *)

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed element (LIFO), or
    [None] when empty.  When exactly one element remains, the owner
    races any thieves for it with a CAS on the top index; losing the
    race yields [None]. *)

val steal : 'a t -> 'a option
(** Any domain: take the {e oldest} element (FIFO), or [None] when
    the deque is empty.  Internal CAS contention with other thieves
    retries; an empty result means there really was nothing to take
    at the linearisation point. *)

val size : 'a t -> int
(** Snapshot of [bottom - top]: the number of elements present at
    some moment during the call.  Racy by nature — use for
    heuristics and diagnostics, never for correctness. *)
