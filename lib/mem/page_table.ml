let entries_per_table = 512

(* Region sizes covered by one table at each level. *)
let pt_span = 512 * 4096 (* one PT maps 2 MiB of 4K pages *)
let pd_span = 512 * pt_span (* one PD maps 1 GiB *)
let pdpt_span = 512 * pd_span (* one PDPT maps 512 GiB *)

type t = {
  (* For each level, how many leaf entries each table (keyed by the
     table's base virtual address) currently holds.  A table exists
     while it has a non-zero count; intermediate tables are implied:
     a PT requires its PD/PDPT, etc. *)
  pts : (int, int) Hashtbl.t;  (** 4K leaves, keyed by 2M-aligned base *)
  pds : (int, int) Hashtbl.t;  (** 2M leaves + child PTs, keyed by 1G base *)
  pdpts : (int, int) Hashtbl.t;  (** 1G leaves + child PDs, keyed by 512G base *)
  mutable leaves : int;
}

let create () =
  { pts = Hashtbl.create 64; pds = Hashtbl.create 16; pdpts = Hashtbl.create 4; leaves = 0 }

let bump tbl key delta =
  let v = delta + Option.value (Hashtbl.find_opt tbl key) ~default:0 in
  if v < 0 then invalid_arg "Page_table: negative entry count";
  if v = 0 then Hashtbl.remove tbl key else Hashtbl.replace tbl key v

let existed tbl key = Hashtbl.mem tbl key

let walk_levels = function Page.Small -> 4 | Page.Large -> 3 | Page.Huge -> 2

(* Apply [f] once per page of the mapping, tracking table creation. *)
let for_each_page ~vaddr ~bytes ~page f =
  let psize = Page.bytes page in
  let first = Page.align_down vaddr psize in
  let last = Page.align_up (vaddr + bytes) psize in
  let n = (last - first) / psize in
  for i = 0 to n - 1 do
    f (first + (i * psize))
  done

let map t ~vaddr ~bytes ~page =
  if bytes <= 0 then invalid_arg "Page_table.map: non-positive size";
  for_each_page ~vaddr ~bytes ~page (fun addr ->
      t.leaves <- t.leaves + 1;
      match page with
      | Page.Huge -> bump t.pdpts (Page.align_down addr pdpt_span) 1
      | Page.Large ->
          let pd = Page.align_down addr pd_span in
          if not (existed t.pds pd) then
            bump t.pdpts (Page.align_down addr pdpt_span) 1;
          bump t.pds pd 1
      | Page.Small ->
          let pt = Page.align_down addr pt_span in
          if not (existed t.pts pt) then begin
            let pd = Page.align_down addr pd_span in
            if not (existed t.pds pd) then
              bump t.pdpts (Page.align_down addr pdpt_span) 1;
            bump t.pds pd 1
          end;
          bump t.pts pt 1)

let unmap t ~vaddr ~bytes ~page =
  for_each_page ~vaddr ~bytes ~page (fun addr ->
      t.leaves <- t.leaves - 1;
      match page with
      | Page.Huge -> bump t.pdpts (Page.align_down addr pdpt_span) (-1)
      | Page.Large ->
          let pd = Page.align_down addr pd_span in
          bump t.pds pd (-1);
          if not (existed t.pds pd) then
            bump t.pdpts (Page.align_down addr pdpt_span) (-1)
      | Page.Small ->
          let pt = Page.align_down addr pt_span in
          bump t.pts pt (-1);
          if not (existed t.pts pt) then begin
            let pd = Page.align_down addr pd_span in
            bump t.pds pd (-1);
            if not (existed t.pds pd) then
              bump t.pdpts (Page.align_down addr pdpt_span) (-1)
          end)

let leaf_entries t = t.leaves

let table_pages t =
  Hashtbl.length t.pts + Hashtbl.length t.pds + Hashtbl.length t.pdpts

let table_bytes t = table_pages t * 4096
