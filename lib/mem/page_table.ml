let entries_per_table = 512

(* Region sizes covered by one table at each level. *)
let pt_span = 512 * 4096 (* one PT maps 2 MiB of 4K pages *)
let pd_span = 512 * pt_span (* one PD maps 1 GiB *)
let pdpt_span = 512 * pd_span (* one PDPT maps 512 GiB *)

type t = {
  (* For each level, how many leaf entries each table (keyed by the
     table's base virtual address) currently holds.  A table exists
     while it has a non-zero count; intermediate tables are implied:
     a PT requires its PD/PDPT, etc. *)
  pts : (int, int) Hashtbl.t;  (** 4K leaves, keyed by 2M-aligned base *)
  pds : (int, int) Hashtbl.t;  (** 2M leaves + child PTs, keyed by 1G base *)
  pdpts : (int, int) Hashtbl.t;  (** 1G leaves + child PDs, keyed by 512G base *)
  mutable leaves : int;
  mutable ops : int;
}

let create () =
  {
    pts = Hashtbl.create 64;
    pds = Hashtbl.create 16;
    pdpts = Hashtbl.create 4;
    leaves = 0;
    ops = 0;
  }

let bump tbl key delta =
  let v = delta + Option.value (Hashtbl.find_opt tbl key) ~default:0 in
  if v < 0 then invalid_arg "Page_table: negative entry count";
  if v = 0 then Hashtbl.remove tbl key else Hashtbl.replace tbl key v

let existed tbl key = Hashtbl.mem tbl key

let walk_levels = function Page.Small -> 4 | Page.Large -> 3 | Page.Huge -> 2

let page_range ~vaddr ~bytes ~page =
  let psize = Page.bytes page in
  let first = Page.align_down vaddr psize in
  let last = Page.align_up (vaddr + bytes) psize in
  (first, last, psize)

(* Apply [f base count] once per leaf table covering [first, last):
   [base] is the table's span-aligned base address, [count] how many
   leaf pages of the mapping fall inside that span.  O(tables
   touched), not O(pages). *)
let for_each_span t ~first ~last ~span ~psize f =
  let base = ref (Page.align_down first span) in
  while !base < last do
    t.ops <- t.ops + 1;
    let lo = max !base first and hi = min (!base + span) last in
    f !base ((hi - lo) / psize);
    base := !base + span
  done

(* Closed-form map: one hashtable update per leaf table touched, with
   parent entries created exactly as the per-page walk would have. *)
let map t ~vaddr ~bytes ~page =
  if bytes <= 0 then invalid_arg "Page_table.map: non-positive size";
  let first, last, psize = page_range ~vaddr ~bytes ~page in
  t.leaves <- t.leaves + ((last - first) / psize);
  match page with
  | Page.Huge ->
      for_each_span t ~first ~last ~span:pdpt_span ~psize (fun base n ->
          bump t.pdpts base n)
  | Page.Large ->
      for_each_span t ~first ~last ~span:pd_span ~psize (fun base n ->
          if not (existed t.pds base) then
            bump t.pdpts (Page.align_down base pdpt_span) 1;
          bump t.pds base n)
  | Page.Small ->
      for_each_span t ~first ~last ~span:pt_span ~psize (fun base n ->
          if not (existed t.pts base) then begin
            let pd = Page.align_down base pd_span in
            if not (existed t.pds pd) then
              bump t.pdpts (Page.align_down base pdpt_span) 1;
            bump t.pds pd 1
          end;
          bump t.pts base n)

let unmap t ~vaddr ~bytes ~page =
  let first, last, psize = page_range ~vaddr ~bytes ~page in
  t.leaves <- t.leaves - ((last - first) / psize);
  match page with
  | Page.Huge ->
      for_each_span t ~first ~last ~span:pdpt_span ~psize (fun base n ->
          bump t.pdpts base (-n))
  | Page.Large ->
      for_each_span t ~first ~last ~span:pd_span ~psize (fun base n ->
          bump t.pds base (-n);
          if not (existed t.pds base) then
            bump t.pdpts (Page.align_down base pdpt_span) (-1))
  | Page.Small ->
      for_each_span t ~first ~last ~span:pt_span ~psize (fun base n ->
          bump t.pts base (-n);
          if not (existed t.pts base) then begin
            let pd = Page.align_down base pd_span in
            bump t.pds pd (-1);
            if not (existed t.pds pd) then
              bump t.pdpts (Page.align_down base pdpt_span) (-1)
          end)

let leaf_entries t = t.leaves

let table_pages t =
  Hashtbl.length t.pts + Hashtbl.length t.pds + Hashtbl.length t.pdpts

let table_bytes t = table_pages t * 4096

let op_count t = t.ops

(* ------------------------------------------------------------------ *)
(* Reference implementation: the original one-loop-iteration-per-page
   walk, retained verbatim for property testing against the
   closed-form span arithmetic above.                                  *)

let for_each_page t ~vaddr ~bytes ~page f =
  let first, last, psize = page_range ~vaddr ~bytes ~page in
  let n = (last - first) / psize in
  for i = 0 to n - 1 do
    t.ops <- t.ops + 1;
    f (first + (i * psize))
  done

let map_reference t ~vaddr ~bytes ~page =
  if bytes <= 0 then invalid_arg "Page_table.map_reference: non-positive size";
  for_each_page t ~vaddr ~bytes ~page (fun addr ->
      t.leaves <- t.leaves + 1;
      match page with
      | Page.Huge -> bump t.pdpts (Page.align_down addr pdpt_span) 1
      | Page.Large ->
          let pd = Page.align_down addr pd_span in
          if not (existed t.pds pd) then
            bump t.pdpts (Page.align_down addr pdpt_span) 1;
          bump t.pds pd 1
      | Page.Small ->
          let pt = Page.align_down addr pt_span in
          if not (existed t.pts pt) then begin
            let pd = Page.align_down addr pd_span in
            if not (existed t.pds pd) then
              bump t.pdpts (Page.align_down addr pdpt_span) 1;
            bump t.pds pd 1
          end;
          bump t.pts pt 1)

let unmap_reference t ~vaddr ~bytes ~page =
  for_each_page t ~vaddr ~bytes ~page (fun addr ->
      t.leaves <- t.leaves - 1;
      match page with
      | Page.Huge -> bump t.pdpts (Page.align_down addr pdpt_span) (-1)
      | Page.Large ->
          let pd = Page.align_down addr pd_span in
          bump t.pds pd (-1);
          if not (existed t.pds pd) then
            bump t.pdpts (Page.align_down addr pdpt_span) (-1)
      | Page.Small ->
          let pt = Page.align_down addr pt_span in
          bump t.pts pt (-1);
          if not (existed t.pts pt) then begin
            let pd = Page.align_down addr pd_span in
            bump t.pds pd (-1);
            if not (existed t.pds pd) then
              bump t.pdpts (Page.align_down addr pdpt_span) (-1)
          end)
