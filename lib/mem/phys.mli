(** Physical memory of a node, organised by NUMA domain.

    Each domain owns one or more contiguous regions managed by buddy
    allocators.  A domain backed by several small regions models the
    fragmentation an LWK suffers when it obtains its memory late
    (IHK/McKernel), as opposed to one big region grabbed at boot
    (mOS, Linux). *)

type t

val create : Mk_hw.Numa.t -> t
(** One pristine region per domain covering its full capacity. *)

val create_fragmented :
  Mk_hw.Numa.t -> max_block:Mk_engine.Units.size -> t
(** Like {!create} but each domain's memory is pre-split into regions
    of at most [max_block] bytes, capping the largest contiguous
    allocation (and hence the largest usable page size). *)

val reserve : t -> domain:Mk_hw.Numa.id -> bytes:Mk_engine.Units.size -> unit
(** Permanently remove capacity from a domain (memory kept by Linux
    when an LWK partitions the node).  Takes from the front regions.
    @raise Invalid_argument if the domain cannot supply it. *)

type block = { domain : Mk_hw.Numa.id; addr : int; bytes : int }

val alloc : t -> domain:Mk_hw.Numa.id -> bytes:int -> block option
(** One contiguous block from one domain. *)

val free : t -> block -> unit

val free_bytes : t -> domain:Mk_hw.Numa.id -> int
val used_bytes : t -> domain:Mk_hw.Numa.id -> int
val largest_free : t -> domain:Mk_hw.Numa.id -> int

val free_bytes_of_kind : t -> Mk_hw.Memory_kind.t -> int

val numa : t -> Mk_hw.Numa.t
