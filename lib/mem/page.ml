type size = Small | Large | Huge

let bytes = function
  | Small -> 4 * 1024
  | Large -> 2 * 1024 * 1024
  | Huge -> 1024 * 1024 * 1024

let to_string = function Small -> "4K" | Large -> "2M" | Huge -> "1G"
let pp ppf t = Format.pp_print_string ppf (to_string t)
let all = [ Small; Large; Huge ]

let align_up x a =
  if a <= 0 then invalid_arg "Page.align_up: non-positive alignment";
  (x + a - 1) / a * a

let align_down x a =
  if a <= 0 then invalid_arg "Page.align_down: non-positive alignment";
  x / a * a

let is_aligned x a = a > 0 && x mod a = 0

let round_up x s = align_up x (bytes s)
let round_down x s = align_down x (bytes s)

let count ~bytes:b s =
  let p = bytes s in
  (b + p - 1) / p

let best_fit ~addr ~bytes:b =
  let fits s = is_aligned addr (bytes s) && b >= bytes s in
  if fits Huge then Huge else if fits Large then Large else Small

(* Calibrated against the usual 4K-vs-2M STREAM deltas on KNL: small
   pages cost a few percent on bandwidth-bound loops, 2M pages are
   nearly free, 1G pages are the reference. *)
let tlb_overhead = function Small -> 1.06 | Large -> 1.008 | Huge -> 1.0
