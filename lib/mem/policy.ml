type t =
  | Default of { home : Mk_hw.Numa.id }
  | Preferred of { domain : Mk_hw.Numa.id }
  | Bind of { domains : Mk_hw.Numa.id list }
  | Interleave of { domains : Mk_hw.Numa.id list }
  | Mcdram_first of { home : Mk_hw.Numa.id }
  | Ddr_only of { home : Mk_hw.Numa.id }

let filter_kind numa kind ids =
  List.filter (fun id -> Mk_hw.Memory_kind.equal (Mk_hw.Numa.kind numa id) kind) ids

let candidates t numa =
  match t with
  | Default { home } -> Mk_hw.Numa.by_distance numa ~from:home
  | Preferred { domain } -> Mk_hw.Numa.by_distance numa ~from:domain
  | Bind { domains } -> domains
  | Interleave { domains } -> domains
  | Mcdram_first { home } ->
      let ordered = Mk_hw.Numa.by_distance numa ~from:home in
      filter_kind numa Mk_hw.Memory_kind.Mcdram ordered
      @ filter_kind numa Mk_hw.Memory_kind.Ddr4 ordered
  | Ddr_only { home } ->
      filter_kind numa Mk_hw.Memory_kind.Ddr4 (Mk_hw.Numa.by_distance numa ~from:home)

let strict = function
  | Bind _ -> true
  | Default _ | Preferred _ | Interleave _ | Mcdram_first _ | Ddr_only _ -> false

let to_string = function
  | Default { home } -> Printf.sprintf "default(home=%d)" home
  | Preferred { domain } -> Printf.sprintf "preferred(%d)" domain
  | Bind { domains } ->
      Printf.sprintf "bind(%s)" (String.concat "," (List.map string_of_int domains))
  | Interleave { domains } ->
      Printf.sprintf "interleave(%s)"
        (String.concat "," (List.map string_of_int domains))
  | Mcdram_first { home } -> Printf.sprintf "mcdram-first(home=%d)" home
  | Ddr_only { home } -> Printf.sprintf "ddr-only(home=%d)" home
