let base_page = 4096

type t = {
  base : int;
  total_pages : int;
  max_order : int;
  free_lists : (int, unit) Hashtbl.t array;  (** per order: set of page indexes *)
  allocated : (int, int) Hashtbl.t;  (** page index -> order *)
  mutable free_pages : int;
}

let order_of_pages pages =
  let rec go o = if 1 lsl o >= pages then o else go (o + 1) in
  go 0

let create ~base ~bytes =
  if base mod base_page <> 0 then invalid_arg "Buddy.create: base not page aligned";
  let total_pages = bytes / base_page in
  if total_pages <= 0 then invalid_arg "Buddy.create: region too small";
  let max_order = order_of_pages total_pages in
  let free_lists = Array.init (max_order + 1) (fun _ -> Hashtbl.create 16) in
  let t =
    {
      base;
      total_pages;
      max_order;
      free_lists;
      allocated = Hashtbl.create 64;
      free_pages = 0;
    }
  in
  (* Seed the free lists with a greedy power-of-two decomposition of
     the region, so non-power-of-two regions are fully usable. *)
  let rec seed idx remaining =
    if remaining > 0 then begin
      (* Largest order block that fits and is naturally aligned at idx. *)
      let rec pick o =
        let sz = 1 lsl o in
        if sz <= remaining && idx mod sz = 0 then o
        else if o = 0 then 0
        else pick (o - 1)
      in
      let o = pick max_order in
      Hashtbl.replace t.free_lists.(o) idx ();
      t.free_pages <- t.free_pages + (1 lsl o);
      seed (idx + (1 lsl o)) (remaining - (1 lsl o))
    end
  in
  seed 0 total_pages;
  t

let total t = t.total_pages * base_page
let free_bytes t = t.free_pages * base_page
let used_bytes t = (t.total_pages - t.free_pages) * base_page

let take_any tbl =
  (* Deterministic: take the smallest index so identical call sequences
     produce identical layouts. *)
  (* mklint: allow R3 — min over all keys, order-independent. *)
  Hashtbl.fold
    (fun k () acc -> match acc with None -> Some k | Some m -> Some (min m k))
    tbl None

let rec split_down t o target =
  (* Split one block of order o until a block of order target exists. *)
  if o > target then begin
    match take_any t.free_lists.(o) with
    | None -> ()
    | Some idx ->
        Hashtbl.remove t.free_lists.(o) idx;
        let half = 1 lsl (o - 1) in
        Hashtbl.replace t.free_lists.(o - 1) idx ();
        Hashtbl.replace t.free_lists.(o - 1) (idx + half) ();
        split_down t (o - 1) target
  end

let alloc t ~bytes =
  if bytes <= 0 then invalid_arg "Buddy.alloc: non-positive size";
  let pages = (bytes + base_page - 1) / base_page in
  let order = order_of_pages pages in
  if order > t.max_order then None
  else begin
    (* Find the smallest order >= requested with a free block. *)
    let rec find o =
      if o > t.max_order then None
      else if Hashtbl.length t.free_lists.(o) > 0 then Some o
      else find (o + 1)
    in
    match find order with
    | None -> None
    | Some o ->
        split_down t o order;
        (match take_any t.free_lists.(order) with
        | None -> None
        | Some idx ->
            Hashtbl.remove t.free_lists.(order) idx;
            Hashtbl.replace t.allocated idx order;
            t.free_pages <- t.free_pages - (1 lsl order);
            Some (t.base + (idx * base_page)))
  end

let rec coalesce t idx order =
  if order < t.max_order then begin
    let size = 1 lsl order in
    let buddy = idx lxor size in
    if buddy + size <= t.total_pages && Hashtbl.mem t.free_lists.(order) buddy
    then begin
      Hashtbl.remove t.free_lists.(order) buddy;
      let merged = min idx buddy in
      coalesce t merged (order + 1)
    end
    else Hashtbl.replace t.free_lists.(order) idx ()
  end
  else Hashtbl.replace t.free_lists.(order) idx ()

let free t ~addr ~bytes =
  let idx = (addr - t.base) / base_page in
  let pages = (bytes + base_page - 1) / base_page in
  let order = order_of_pages pages in
  (match Hashtbl.find_opt t.allocated idx with
  | Some o when o = order -> Hashtbl.remove t.allocated idx
  | Some o ->
      invalid_arg
        (Printf.sprintf "Buddy.free: block at %#x has order %d, freed as %d" addr o
           order)
  | None -> invalid_arg (Printf.sprintf "Buddy.free: block at %#x not allocated" addr));
  t.free_pages <- t.free_pages + (1 lsl order);
  coalesce t idx order

let largest_free t =
  let rec go o =
    if o < 0 then 0
    else if Hashtbl.length t.free_lists.(o) > 0 then (1 lsl o) * base_page
    else go (o - 1)
  in
  go t.max_order

let fragmentation t =
  let fb = free_bytes t in
  if fb = 0 then 0.0 else 1.0 -. (float_of_int (largest_free t) /. float_of_int fb)
