type 'a t = { mutable items : Phys.block list }

let empty () = { items = [] }
let add t b = t.items <- b :: t.items
let blocks t = t.items

let release_all t phys =
  List.iter (fun b -> Phys.free phys b) t.items;
  t.items <- []

let total_bytes t =
  List.fold_left (fun acc (b : Phys.block) -> acc + b.bytes) 0 t.items
