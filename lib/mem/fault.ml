open Mk_engine

type costs = {
  trap : Units.time;
  map_small : Units.time;
  map_large : Units.time;
  map_huge : Units.time;
  zero_bandwidth : float;
  bulk_zero_bandwidth : float;
  contention : float;
}

let default =
  {
    trap = 900;
    map_small = 250;
    map_large = 450;
    map_huge = 700;
    zero_bandwidth = 4.0;
    bulk_zero_bandwidth = 9.0;
    contention = 0.03;
  }

let map_cost c = function
  | Page.Small -> c.map_small
  | Page.Large -> c.map_large
  | Page.Huge -> c.map_huge

let contention_factor c concurrency =
  1.0 +. (c.contention *. float_of_int (max 0 (concurrency - 1)))

let demand_fault c ~page ~concurrency =
  let zero = Units.transfer_time ~bytes:(Page.bytes page) ~bw:c.zero_bandwidth in
  let base = c.trap + map_cost c page + zero in
  int_of_float (float_of_int base *. contention_factor c concurrency)

let demand_fault_bytes c ~page ~bytes ~concurrency =
  if bytes <= 0 then 0
  else
    let pages = Page.count ~bytes page in
    pages * demand_fault c ~page ~concurrency

let prefault c ~page ~bytes ~zero_bytes =
  if bytes <= 0 then 0
  else begin
    let pages = Page.count ~bytes page in
    let map = pages * map_cost c page in
    let zero = Units.transfer_time ~bytes:zero_bytes ~bw:c.bulk_zero_bandwidth in
    map + zero
  end
