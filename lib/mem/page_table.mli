(** Four-level x86-64 page-table accounting.

    Mapping granularity decides how much memory the page tables
    themselves consume and how deep a TLB-miss walk goes: a 4 KiB
    mapping needs entries on all four levels (PML4→PDPT→PD→PT), a
    2 MiB mapping stops at the PD, a 1 GiB mapping at the PDPT.  The
    LWKs' preference for the largest possible pages therefore shrinks
    both the walk depth (captured by {!Page.tlb_overhead}) and the
    page-table footprint this module accounts. *)

type t

val create : unit -> t

val map : t -> vaddr:int -> bytes:int -> page:Page.size -> unit
(** Account mappings covering [bytes] from [vaddr] at the given page
    size.  Intermediate tables are shared between mappings that fall
    into the same regions, as in a real radix tree.

    Cost is O(leaf tables touched), not O(pages): the per-table leaf
    deltas are computed in closed form per 2M/1G/512G-aligned span, so
    mapping a multi-GiB region does a few thousand hashtable updates
    rather than millions of per-page loop iterations. *)

val unmap : t -> vaddr:int -> bytes:int -> page:Page.size -> unit

val leaf_entries : t -> int
(** Live leaf (translation) entries. *)

val table_pages : t -> int
(** 4 KiB pages consumed by the paging structures themselves
    (excluding the root, which always exists). *)

val table_bytes : t -> int

val walk_levels : Page.size -> int
(** Page-walk depth on a TLB miss: 4 for 4K, 3 for 2M, 2 for 1G. *)

val entries_per_table : int
(** 512 on x86-64. *)

val op_count : t -> int
(** Cumulative inner-loop iterations performed by {!map}/{!unmap}
    (and the [_reference] variants) on this table since {!create} —
    a diagnostic counter for asserting the closed-form cost bound in
    tests. *)

(** {1 Reference implementation}

    The original one-loop-iteration-per-page accounting, retained as
    an executable specification: property tests drive random
    map/unmap sequences through both implementations and require
    identical [leaf_entries]/[table_pages]/[table_bytes]. *)

val map_reference : t -> vaddr:int -> bytes:int -> page:Page.size -> unit
val unmap_reference : t -> vaddr:int -> bytes:int -> page:Page.size -> unit
