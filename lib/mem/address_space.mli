(** Per-process virtual address space: mmap, brk, demand faults.

    This module is where the memory-management behaviours that
    distinguish Linux, McKernel and mOS actually execute.  A kernel
    expresses its behaviour as a {!strategy}:

    - Linux: demand paging, 4K pages with opportunistic THP, heap
      grown/shrunk exactly as requested, pages returned on shrink.
    - McKernel: prefault at map time, up to 1G pages, 2M-aligned heap
      grown in 2M increments with shrink ignored and only the first
      4K of each fresh 2M page zeroed, MCDRAM-first with transparent
      DDR4 spill, and fallback to demand paging when contiguous
      physical memory is unavailable.
    - mOS: as McKernel, minus the demand-paging fallback (rigid:
      only physically available memory can be allocated) and with an
      optional per-process MCDRAM quota modelling its upfront
      division of LWK memory between ranks.

    Every operation returns the simulated time it consumed; the
    kernel layer adds syscall-entry costs on top. *)

type strategy = {
  prefault : bool;  (** populate physical memory at map time *)
  heap_prefault : bool;  (** populate the heap at brk time *)
  max_page : Page.size;  (** largest page size the kernel will map *)
  thp : bool;  (** Linux-style opportunistic 2M for aligned anon interiors *)
  heap_align : int;  (** alignment of the heap base and growth *)
  heap_increment : int;  (** granularity of physical heap growth *)
  heap_ignore_shrink : bool;  (** keep memory mapped on negative brk *)
  heap_zero_first_4k_only : bool;
      (** zero 4K per fresh heap page instead of the whole page *)
  demand_fallback : bool;
      (** fall back to demand paging when contiguous allocation fails *)
  strict_physical : bool;  (** fail with ENOMEM instead of demand paging *)
  mcdram_quota : int option;  (** cap on MCDRAM bytes for this space *)
}

val linux_strategy : strategy
val mckernel_strategy : strategy
val mos_strategy : strategy
(** mOS with regular heap management; toggle fields for Table I. *)

type stats = {
  mutable faults : int;
  mutable fault_time : Mk_engine.Units.time;
  mutable brk_queries : int;
  mutable brk_grows : int;
  mutable brk_shrinks : int;
  mutable brk_time : Mk_engine.Units.time;
  mutable mmap_calls : int;
  mutable mmap_time : Mk_engine.Units.time;
  mutable demand_fallbacks : int;
  mutable zeroed_bytes : int;
  mutable cumulative_heap_growth : int;
  mutable heap_peak : int;
}

type t

val create :
  phys:Phys.t ->
  strategy:strategy ->
  ?costs:Fault.costs ->
  default_policy:Policy.t ->
  unit ->
  t

val strategy : t -> strategy
val stats : t -> stats

val set_mcdram_quota : t -> int option -> unit
(** Adjust the MCDRAM budget before populating the space.  The
    cluster driver uses this to express how the kernels share scarce
    MCDRAM between ranks: demand paging (Linux first-touch,
    McKernel's fallback) shares it in proportion to footprint, while
    mOS divides it upfront into equal shares (Section IV). *)

(** {1 Operations} *)

val mmap :
  t ->
  bytes:int ->
  backing:Vma.backing ->
  ?policy:Policy.t ->
  unit ->
  (int * Mk_engine.Units.time, [ `Enomem ]) result
(** Map a new region; returns (address, cost).  Under a prefault
    strategy the cost includes population and zeroing; [`Enomem] is
    only possible under [strict_physical] or a strict policy. *)

val munmap : t -> addr:int -> Mk_engine.Units.time
(** Unmap the VMA starting at [addr], releasing physical backing.
    @raise Invalid_argument if no VMA starts there. *)

val brk : t -> delta:int -> (int * Mk_engine.Units.time, [ `Enomem ]) result
(** Grow ([delta > 0]), shrink ([delta < 0]) or query ([delta = 0])
    the heap.  Returns the new program break and the cost. *)

val sbrk_query : t -> int
(** Current program break (no cost, no stats — for assertions). *)

val touch :
  t -> addr:int -> bytes:int -> concurrency:int -> Mk_engine.Units.time
(** First-touch the byte range: demand-fault any unpopulated pages
    covering it.  Prefaulted regions cost nothing.  [concurrency] is
    the number of threads faulting simultaneously (page-fault handler
    contention). *)

val premap : t -> addr:int -> bytes:int -> Mk_engine.Units.time
(** Populate a range upfront without taking page faults: bulk
    mapping and zeroing at prefault cost (MAP_POPULATE semantics,
    McKernel's [--mpol-shm-premap]). *)

val touch_heap : t -> concurrency:int -> Mk_engine.Units.time
(** First-touch the heap up to the current break. *)

val touch_all : t -> concurrency:int -> Mk_engine.Units.time
(** Touch every VMA completely (plus the heap up to the break). *)

(** {1 Placement queries} *)

val backed_bytes : t -> int
val mcdram_bytes : t -> int

val mcdram_fraction : t -> float
(** Share of populated bytes living in MCDRAM (1.0 if nothing is
    populated — an empty space has no DDR4 penalty). *)

val tlb_factor : t -> float
(** Weighted TLB/page-walk overhead multiplier for this space. *)

val heap_mapped_bytes : t -> int
(** Physically mapped extent of the heap (can exceed the break when
    shrink is ignored). *)

val find_vma : t -> int -> Vma.t option

val page_table : t -> Page_table.t
(** The process's paging structures: the LWKs' huge mappings keep
    this radically smaller than Linux's 4K/2M trees. *)
