(** Cost model for page faults and page-table population.

    A demand (Linux-style) fault pays a trap into the kernel, a
    page-table install, and the zeroing of the page on first write.
    Populating pages upfront (LWK-style prefault at [mmap]/[brk] time)
    pays only the installs plus whatever zeroing policy the kernel
    uses — no traps, no per-page kernel entries.  Concurrent faulting
    threads contend on mm locks, which is what McKernel's
    [--mpol-shm-premap] avoids (Section IV). *)

type costs = {
  trap : Mk_engine.Units.time;  (** user→kernel transition + handler entry *)
  map_small : Mk_engine.Units.time;  (** PTE install, 4K *)
  map_large : Mk_engine.Units.time;  (** PMD install, 2M *)
  map_huge : Mk_engine.Units.time;  (** PUD install, 1G *)
  zero_bandwidth : float;
      (** single-thread memset bandwidth, bytes/ns (KNL cores are slow) *)
  bulk_zero_bandwidth : float;
      (** streaming memset without per-page traps, bytes/ns *)
  contention : float;
      (** extra cost fraction per additional concurrent faulter *)
}

val default : costs
(** Calibrated to typical KNL numbers: ~1 µs per 4K anonymous fault,
    ~4 GB/s single-thread memset. *)

val map_cost : costs -> Page.size -> Mk_engine.Units.time

val demand_fault : costs -> page:Page.size -> concurrency:int -> Mk_engine.Units.time
(** One demand fault mapping and zeroing one page of the given size
    with [concurrency] threads faulting simultaneously in the same
    address space or on the same shared mapping. *)

val demand_fault_bytes :
  costs -> page:Page.size -> bytes:int -> concurrency:int -> Mk_engine.Units.time
(** Total cost of demand-faulting [bytes] at the given granularity. *)

val prefault :
  costs -> page:Page.size -> bytes:int -> zero_bytes:int -> Mk_engine.Units.time
(** Populate [bytes] upfront at mapping time, zeroing only
    [zero_bytes] of them (an LWK may zero just the first 4 KiB of
    each 2 MiB heap page). *)
