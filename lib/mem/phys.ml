type region = { buddy : Buddy.t; base : int; limit : int }

type t = { numa : Mk_hw.Numa.t; regions : region list array }

(* Physical address map: domain d occupies a 1 TiB window starting at
   d * 1 TiB, so blocks carry globally unique addresses. *)
let domain_window = 1 lsl 40

let region_of ~base ~bytes = { buddy = Buddy.create ~base ~bytes; base; limit = base + bytes }

let create numa =
  let regions =
    Array.init (Mk_hw.Numa.count numa) (fun d ->
        let cap = Mk_hw.Numa.capacity numa d in
        [ region_of ~base:(d * domain_window) ~bytes:cap ])
  in
  { numa; regions }

let create_fragmented numa ~max_block =
  if max_block <= 0 then invalid_arg "Phys.create_fragmented: max_block must be positive";
  let regions =
    Array.init (Mk_hw.Numa.count numa) (fun d ->
        let cap = Mk_hw.Numa.capacity numa d in
        let rec build offset remaining acc =
          if remaining <= 0 then List.rev acc
          else begin
            let bytes = min max_block remaining in
            let base = (d * domain_window) + offset in
            (* Leave a 4K gap between regions so the buddy allocators
               cannot coalesce across them. *)
            build (offset + bytes + 4096) (remaining - bytes)
              (region_of ~base ~bytes :: acc)
          end
        in
        build 0 cap [])
  in
  { numa; regions }

let check_domain t d =
  if d < 0 || d >= Array.length t.regions then
    invalid_arg (Printf.sprintf "Phys: bad domain %d" d)

let reserve t ~domain ~bytes =
  check_domain t domain;
  (* Model memory withheld from the allocator by carving it out in
     page-sized allocations that are never freed. *)
  let rec take remaining regions =
    if remaining > 0 then
      match regions with
      | [] -> invalid_arg "Phys.reserve: domain cannot supply reservation"
      | r :: rest -> (
          let chunk = min remaining (Buddy.largest_free r.buddy) in
          if chunk = 0 then take remaining rest
          else
            match Buddy.alloc r.buddy ~bytes:chunk with
            | Some _ -> take (remaining - chunk) regions
            | None -> take remaining rest)
  in
  take bytes t.regions.(domain)

type block = { domain : Mk_hw.Numa.id; addr : int; bytes : int }

let alloc t ~domain ~bytes =
  check_domain t domain;
  let rec try_regions = function
    | [] -> None
    | r :: rest -> (
        match Buddy.alloc r.buddy ~bytes with
        | Some addr -> Some { domain; addr; bytes }
        | None -> try_regions rest)
  in
  try_regions t.regions.(domain)

let free t block =
  check_domain t block.domain;
  let region =
    List.find_opt
      (fun r -> block.addr >= r.base && block.addr < r.limit)
      t.regions.(block.domain)
  in
  match region with
  | Some r -> Buddy.free r.buddy ~addr:block.addr ~bytes:block.bytes
  | None -> invalid_arg "Phys.free: block does not belong to this allocator"

let sum_regions t d f =
  check_domain t d;
  List.fold_left (fun acc r -> acc + f r.buddy) 0 t.regions.(d)

let free_bytes t ~domain = sum_regions t domain Buddy.free_bytes
let used_bytes t ~domain = sum_regions t domain Buddy.used_bytes

let largest_free t ~domain =
  check_domain t domain;
  List.fold_left (fun acc r -> max acc (Buddy.largest_free r.buddy)) 0
    t.regions.(domain)

let free_bytes_of_kind t kind =
  List.fold_left
    (fun acc (d : Mk_hw.Numa.domain) ->
      if Mk_hw.Memory_kind.equal d.kind kind then acc + free_bytes t ~domain:d.id
      else acc)
    0 (Mk_hw.Numa.domains t.numa)

let numa t = t.numa
