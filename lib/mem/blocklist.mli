(** A bag of physical blocks with bulk release.

    VMAs keep their backing blocks here so that unmap can return
    everything to the right {!Phys} allocator.  The type parameter is
    phantom-ish (we store {!Phys.block} directly); the module exists
    to keep [Vma] free of a direct dependency cycle with [Phys]. *)

type 'a t

val empty : unit -> 'a t
val add : 'a t -> Phys.block -> unit
val blocks : 'a t -> Phys.block list
val release_all : 'a t -> Phys.t -> unit
(** Free every block into the allocator and empty the bag. *)

val total_bytes : 'a t -> int
