(** Page sizes and alignment arithmetic.

    Both LWKs map physically contiguous memory with the largest page
    size the mapping allows — up to 1 GB pages, "even on the stack"
    (Section II-D3) — while Linux defaults to 4 KB with opportunistic
    transparent huge pages. *)

type size = Small | Large | Huge
(** 4 KiB, 2 MiB and 1 GiB pages. *)

val bytes : size -> Mk_engine.Units.size
val to_string : size -> string
val pp : Format.formatter -> size -> unit
val all : size list
(** Ordered small to huge. *)

val align_up : int -> int -> int
(** [align_up x a] rounds [x] up to a multiple of [a] ([a] > 0). *)

val align_down : int -> int -> int
val is_aligned : int -> int -> bool

val round_up : int -> size -> int
(** Round a byte count or address up to a page boundary. *)

val round_down : int -> size -> int

val count : bytes:int -> size -> int
(** Pages of the given size needed to cover [bytes]. *)

val best_fit : addr:int -> bytes:int -> size
(** Largest page size usable for a mapping at [addr] spanning
    [bytes]: both the address must be aligned and the length must be
    at least one page of that size. *)

val tlb_overhead : size -> float
(** Multiplicative slowdown of streaming compute caused by TLB misses
    and page walks for working sets mapped at this page size, relative
    to an ideal (1 GiB) mapping.  Models the paper's "implication of
    contiguous physical memory is better cache performance". *)
