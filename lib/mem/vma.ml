type backing = Anonymous | Heap | Stack | Shared of int

type acct = {
  mutable backed : int;
  mutable mcdram : int;
  mutable small : int;
  mutable large : int;
  mutable huge : int;
}

type t = {
  start : int;
  mutable len : int;
  backing : backing;
  policy : Policy.t;
  mutable blocks : Mk_hw.Numa.id Blocklist.t;
  acct : acct;
  mutable mappings : (int * int * Page.size) list;
      (** (vaddr, bytes, page) of each populated extent, newest first *)
}

let fresh_acct () = { backed = 0; mcdram = 0; small = 0; large = 0; huge = 0 }

let make ~start ~len ~backing ~policy =
  if len <= 0 then invalid_arg "Vma.make: non-positive length";
  {
    start;
    len;
    backing;
    policy;
    blocks = Blocklist.empty ();
    acct = fresh_acct ();
    mappings = [];
  }

let end_ t = t.start + t.len
let contains t addr = addr >= t.start && addr < end_ t

let overlaps t ~start ~len =
  let e = start + len in
  not (e <= t.start || start >= end_ t)

let record t ~bytes ~mcdram ~page =
  (* Backing fills the VMA front to back, so the new extent starts at
     the current high-water mark. *)
  t.mappings <- (t.start + t.acct.backed, bytes, page) :: t.mappings;
  t.acct.backed <- t.acct.backed + bytes;
  t.acct.mcdram <- t.acct.mcdram + mcdram;
  (match page with
  | Page.Small -> t.acct.small <- t.acct.small + bytes
  | Page.Large -> t.acct.large <- t.acct.large + bytes
  | Page.Huge -> t.acct.huge <- t.acct.huge + bytes)

let unbacked t = max 0 (t.len - t.acct.backed)

let tlb_factor acct =
  let total = acct.small + acct.large + acct.huge in
  if total = 0 then 1.0
  else begin
    let weighted =
      (float_of_int acct.small *. Page.tlb_overhead Page.Small)
      +. (float_of_int acct.large *. Page.tlb_overhead Page.Large)
      +. (float_of_int acct.huge *. Page.tlb_overhead Page.Huge)
    in
    weighted /. float_of_int total
  end

let merge_acct accts =
  let out = fresh_acct () in
  List.iter
    (fun a ->
      out.backed <- out.backed + a.backed;
      out.mcdram <- out.mcdram + a.mcdram;
      out.small <- out.small + a.small;
      out.large <- out.large + a.large;
      out.huge <- out.huge + a.huge)
    accts;
  out

let backing_to_string = function
  | Anonymous -> "anon"
  | Heap -> "heap"
  | Stack -> "stack"
  | Shared k -> Printf.sprintf "shm:%d" k
