open Mk_engine

type strategy = {
  prefault : bool;
  heap_prefault : bool;
  max_page : Page.size;
  thp : bool;
  heap_align : int;
  heap_increment : int;
  heap_ignore_shrink : bool;
  heap_zero_first_4k_only : bool;
  demand_fallback : bool;
  strict_physical : bool;
  mcdram_quota : int option;
}

let linux_strategy =
  {
    prefault = false;
    heap_prefault = false;
    max_page = Page.Large;
    thp = true;
    heap_align = Page.bytes Page.Small;
    heap_increment = Page.bytes Page.Small;
    heap_ignore_shrink = false;
    heap_zero_first_4k_only = false;
    demand_fallback = true;
    strict_physical = false;
    mcdram_quota = None;
  }

let mckernel_strategy =
  {
    prefault = true;
    heap_prefault = true;
    max_page = Page.Huge;
    thp = false;
    heap_align = Page.bytes Page.Large;
    heap_increment = Page.bytes Page.Large;
    heap_ignore_shrink = true;
    heap_zero_first_4k_only = true;
    demand_fallback = true;
    strict_physical = false;
    mcdram_quota = None;
  }

let mos_strategy =
  {
    prefault = true;
    heap_prefault = true;
    max_page = Page.Huge;
    thp = false;
    heap_align = Page.bytes Page.Large;
    heap_increment = Page.bytes Page.Large;
    heap_ignore_shrink = true;
    heap_zero_first_4k_only = true;
    demand_fallback = false;
    strict_physical = true;
    mcdram_quota = None;
  }

type stats = {
  mutable faults : int;
  mutable fault_time : Units.time;
  mutable brk_queries : int;
  mutable brk_grows : int;
  mutable brk_shrinks : int;
  mutable brk_time : Units.time;
  mutable mmap_calls : int;
  mutable mmap_time : Units.time;
  mutable demand_fallbacks : int;
  mutable zeroed_bytes : int;
  mutable cumulative_heap_growth : int;
  mutable heap_peak : int;
}

let fresh_stats () =
  {
    faults = 0;
    fault_time = 0;
    brk_queries = 0;
    brk_grows = 0;
    brk_shrinks = 0;
    brk_time = 0;
    mmap_calls = 0;
    mmap_time = 0;
    demand_fallbacks = 0;
    zeroed_bytes = 0;
    cumulative_heap_growth = 0;
    heap_peak = 0;
  }

(* Virtual layout: heap at 16 MiB, mmap area at 128 TiB growing up. *)
let heap_base_addr = 16 * 1024 * 1024
let mmap_base_addr = 128 * (1 lsl 40)

type t = {
  phys : Phys.t;
  mutable strategy : strategy;
  costs : Fault.costs;
  default_policy : Policy.t;
  mutable vmas : Vma.t list;  (** sorted by start, excludes the heap *)
  heap : Vma.t;  (** heap VMA; [len] is the physically-mapped extent *)
  mutable brk_current : int;
  mutable heap_mapped_top : int;
  mutable mmap_next : int;
  stats : stats;
  mutable mcdram_used : int;
  page_table : Page_table.t;
}

let create ~phys ~strategy ?(costs = Fault.default) ~default_policy () =
  let heap =
    {
      (Vma.make ~start:heap_base_addr ~len:1 ~backing:Vma.Heap
         ~policy:default_policy)
      with
      Vma.len = 0;
    }
  in
  {
    phys;
    strategy;
    costs;
    default_policy;
    vmas = [];
    heap;
    brk_current = heap_base_addr;
    heap_mapped_top = heap_base_addr;
    mmap_next = mmap_base_addr;
    stats = fresh_stats ();
    mcdram_used = 0;
    page_table = Page_table.create ();
  }

let strategy t = t.strategy
let stats t = t.stats

let set_mcdram_quota t quota = t.strategy <- { t.strategy with mcdram_quota = quota }

let page_table t = t.page_table

(* ------------------------------------------------------------------ *)
(* Physical chunk allocation                                           *)

let is_mcdram t domain =
  Mk_hw.Memory_kind.equal (Mk_hw.Numa.kind (Phys.numa t.phys) domain)
    Mk_hw.Memory_kind.Mcdram

let quota_room t =
  match t.strategy.mcdram_quota with
  | None -> max_int
  | Some q -> max 0 (q - t.mcdram_used)

let pow2_floor n =
  let rec go p = if p * 2 <= n then go (p * 2) else p in
  if n < 1 then 0 else go 1

(* Allocate up to [bytes] from [domain] in power-of-two chunks no
   larger than [chunk_cap], mapping each chunk at the largest page
   size allowed.  Returns bytes obtained and per-page-size accounting
   via [record]. *)
let alloc_from_domain t vma ~domain ~bytes ~max_page =
  let mc = is_mcdram t domain in
  let budget = if mc then min bytes (quota_room t) else bytes in
  let page_bytes = Page.bytes Page.Small in
  (* Chunks up to 1 GiB so huge pages stay reachable. *)
  let chunk_cap = Page.bytes Page.Huge in
  let rec go remaining obtained =
    if remaining < page_bytes then obtained
    else begin
      let largest = Phys.largest_free t.phys ~domain in
      let want = min (min remaining chunk_cap) largest in
      let chunk = pow2_floor want in
      if chunk < page_bytes then obtained
      else
        match Phys.alloc t.phys ~domain ~bytes:chunk with
        | None -> obtained
        | Some block ->
            Blocklist.add vma.Vma.blocks block;
            let page =
              (* The chunk is size-aligned, so page size is bounded by
                 the chunk itself and the kernel's maximum. *)
              let fits s = chunk >= Page.bytes s in
              match max_page with
              | Page.Huge when fits Page.Huge -> Page.Huge
              | Page.Huge | Page.Large ->
                  if fits Page.Large then Page.Large else Page.Small
              | Page.Small -> Page.Small
            in
            (* 2M mappings (THP promotions on Linux, native large
               pages on the LWKs) are the mechanism behind the TLB
               columns of Section IV. *)
            if page = Page.Large then
              Mk_obs.Hook.count ~subsystem:"mem" ~name:"pages_2m"
                (chunk / Page.bytes Page.Large);
            let vaddr = vma.Vma.start + vma.Vma.acct.Vma.backed in
            Vma.record vma ~bytes:chunk ~mcdram:(if mc then chunk else 0) ~page;
            Page_table.map t.page_table ~vaddr ~bytes:chunk ~page;
            if mc then t.mcdram_used <- t.mcdram_used + chunk;
            go (remaining - chunk) (obtained + chunk)
    end
  in
  go budget 0

(* Populate [bytes] of [vma] following [policy]'s candidate order. *)
let populate t vma ~bytes ~policy ~max_page =
  let candidates = Policy.candidates policy (Phys.numa t.phys) in
  (* When the policy's first choice is MCDRAM, bytes obtained from any
     DDR4 domain are spill — the pressure effect the MCDRAM columns
     of Section IV attribute cost to. *)
  let prefer_mc =
    match candidates with d :: _ -> is_mcdram t d | [] -> false
  in
  let rec go remaining spilled = function
    | [] -> (bytes - remaining, spilled)
    | d :: rest ->
        if remaining <= 0 then (bytes - remaining, spilled)
        else begin
          let got = alloc_from_domain t vma ~domain:d ~bytes:remaining ~max_page in
          let spilled =
            if prefer_mc && not (is_mcdram t d) then spilled + got else spilled
          in
          go (remaining - got) spilled rest
        end
  in
  let populated, spilled = go (Page.round_up bytes Page.Small) 0 candidates in
  if spilled > 0 then
    Mk_obs.Hook.count ~subsystem:"mem" ~name:"mcdram_spill_bytes" spilled;
  populated

(* ------------------------------------------------------------------ *)
(* mmap / munmap                                                       *)

let vma_setup_cost = 400

let insert_vma t vma =
  t.vmas <-
    List.sort (fun (a : Vma.t) (b : Vma.t) -> compare a.start b.start) (vma :: t.vmas)

let interior_page t ~bytes =
  (* Page size Linux THP would use for a well-aligned anonymous
     mapping: the 2M-aligned interior gets 2M pages, modelled as the
     whole region when it spans at least a few 2M pages. *)
  if t.strategy.thp && bytes >= 4 * Page.bytes Page.Large then Page.Large
  else Page.Small

let mmap t ~bytes ~backing ?policy () =
  let policy = Option.value policy ~default:t.default_policy in
  let len = Page.round_up bytes Page.Small in
  let start = Page.align_up t.mmap_next (Page.bytes Page.Huge) in
  t.mmap_next <- start + len;
  let vma = Vma.make ~start ~len ~backing ~policy in
  t.stats.mmap_calls <- t.stats.mmap_calls + 1;
  (* Shared segments are populated by whichever rank touches a page
     first — a kernel cannot prefault them for everyone.  This is the
     gap McKernel's --mpol-shm-premap closes explicitly. *)
  let prefault =
    t.strategy.prefault
    && match backing with Vma.Shared _ -> false | _ -> true
  in
  if not prefault then begin
    insert_vma t vma;
    t.stats.mmap_time <- t.stats.mmap_time + vma_setup_cost;
    Ok (start, vma_setup_cost)
  end
  else begin
    let populated = populate t vma ~bytes:len ~policy ~max_page:t.strategy.max_page in
    if populated >= len then begin
      insert_vma t vma;
      let acct = vma.Vma.acct in
      let zero = len in
      let cost =
        vma_setup_cost
        + Fault.prefault t.costs ~page:Page.Small ~bytes:0 ~zero_bytes:0
        + Fault.prefault t.costs ~page:Page.Huge ~bytes:acct.Vma.huge ~zero_bytes:0
        + Fault.prefault t.costs ~page:Page.Large ~bytes:acct.Vma.large ~zero_bytes:0
        + Fault.prefault t.costs ~page:Page.Small ~bytes:acct.Vma.small
            ~zero_bytes:zero
      in
      t.stats.zeroed_bytes <- t.stats.zeroed_bytes + zero;
      t.stats.mmap_time <- t.stats.mmap_time + cost;
      Ok (start, cost)
    end
    else if t.strategy.strict_physical || Policy.strict policy then begin
      (* Roll back: return whatever we grabbed. *)
      t.mcdram_used <- t.mcdram_used - vma.Vma.acct.Vma.mcdram;
      Blocklist.release_all vma.Vma.blocks t.phys;
      Error `Enomem
    end
    else begin
      (* McKernel: keep what we got and demand-page the rest
         best-effort from the requested domains (Section II-D3). *)
      t.stats.demand_fallbacks <- t.stats.demand_fallbacks + 1;
      Mk_obs.Hook.count ~subsystem:"mem" ~name:"demand_fallbacks" 1;
      insert_vma t vma;
      t.stats.mmap_time <- t.stats.mmap_time + vma_setup_cost;
      Ok (start, vma_setup_cost)
    end
  end

let find_vma t addr =
  if Vma.contains t.heap addr then Some t.heap
  else List.find_opt (fun v -> Vma.contains v addr) t.vmas

let munmap t ~addr =
  match List.find_opt (fun (v : Vma.t) -> v.start = addr) t.vmas with
  | None -> invalid_arg (Printf.sprintf "Address_space.munmap: no VMA at %#x" addr)
  | Some vma ->
      List.iter
        (fun (vaddr, bytes, page) -> Page_table.unmap t.page_table ~vaddr ~bytes ~page)
        vma.Vma.mappings;
      vma.Vma.mappings <- [];
      t.mcdram_used <- t.mcdram_used - vma.Vma.acct.Vma.mcdram;
      Blocklist.release_all vma.Vma.blocks t.phys;
      t.vmas <- List.filter (fun (v : Vma.t) -> v.start <> addr) t.vmas;
      let pages = Page.count ~bytes:vma.len Page.Small in
      (* unmap + TLB shootdown, amortised per page *)
      vma_setup_cost + (pages * 15)

(* ------------------------------------------------------------------ *)
(* brk                                                                 *)

let brk_fast_cost = 150
let brk_vma_cost = 300

let sbrk_query t = t.brk_current

let heap_used t = t.brk_current - heap_base_addr

let grow_heap_physical t target =
  (* Extend physical backing of the heap from [heap_mapped_top] to
     [target] (already increment-aligned). *)
  let need = target - t.heap_mapped_top in
  if need <= 0 then Ok 0
  else begin
    let before = t.heap.Vma.acct.Vma.backed in
    t.heap.Vma.len <- target - heap_base_addr;
    let populated =
      if t.strategy.heap_prefault then
        populate t t.heap ~bytes:need ~policy:t.heap.Vma.policy
          ~max_page:t.strategy.max_page
      else 0
    in
    if t.strategy.heap_prefault && populated < need then begin
      if t.strategy.strict_physical then begin
        (* Roll back the length; keep blocks already threaded into the
           heap accounting is complex, so release the surplus. *)
        t.heap.Vma.len <- t.heap_mapped_top - heap_base_addr;
        Error `Enomem
      end
      else begin
        t.stats.demand_fallbacks <- t.stats.demand_fallbacks + 1;
        Mk_obs.Hook.count ~subsystem:"mem" ~name:"demand_fallbacks" 1;
        t.heap_mapped_top <- target;
        Ok 0
      end
    end
    else begin
      t.heap_mapped_top <- target;
      let added = t.heap.Vma.acct.Vma.backed - before in
      let zero_bytes =
        if not t.strategy.heap_prefault then 0
        else if t.strategy.heap_zero_first_4k_only then
          (* One 4K memset per fresh 2M page (the AMG 2013 workaround,
             Section IV). *)
          Page.count ~bytes:added Page.Large * Page.bytes Page.Small
        else added
      in
      t.stats.zeroed_bytes <- t.stats.zeroed_bytes + zero_bytes;
      let acct = t.heap.Vma.acct in
      ignore acct;
      let cost =
        if t.strategy.heap_prefault then
          let page =
            if t.strategy.heap_increment >= Page.bytes Page.Large then Page.Large
            else Page.Small
          in
          Fault.prefault t.costs ~page ~bytes:added ~zero_bytes
        else 0
      in
      Ok cost
    end
  end

let brk t ~delta =
  if delta = 0 then begin
    t.stats.brk_queries <- t.stats.brk_queries + 1;
    Mk_obs.Hook.count ~subsystem:"mem" ~name:"brk_queries" 1;
    t.stats.brk_time <- t.stats.brk_time + brk_fast_cost;
    Ok (t.brk_current, brk_fast_cost)
  end
  else if delta > 0 then begin
    t.stats.brk_grows <- t.stats.brk_grows + 1;
    Mk_obs.Hook.count ~subsystem:"mem" ~name:"brk_grows" 1;
    t.stats.cumulative_heap_growth <- t.stats.cumulative_heap_growth + delta;
    let new_brk = t.brk_current + delta in
    let target = Page.align_up (max new_brk t.heap_mapped_top) t.strategy.heap_increment in
    if new_brk <= t.heap_mapped_top then begin
      (* LWK fast path: the regrown range is still mapped. *)
      t.brk_current <- new_brk;
      t.stats.heap_peak <- max t.stats.heap_peak (heap_used t);
      t.stats.brk_time <- t.stats.brk_time + brk_fast_cost;
      Ok (new_brk, brk_fast_cost)
    end
    else
      match grow_heap_physical t target with
      | Error `Enomem -> Error `Enomem
      | Ok populate_cost ->
          t.brk_current <- new_brk;
          t.stats.heap_peak <- max t.stats.heap_peak (heap_used t);
          let cost = brk_vma_cost + populate_cost in
          t.stats.brk_time <- t.stats.brk_time + cost;
          Ok (new_brk, cost)
  end
  else begin
    t.stats.brk_shrinks <- t.stats.brk_shrinks + 1;
    Mk_obs.Hook.count ~subsystem:"mem" ~name:"brk_shrinks" 1;
    let new_brk = max heap_base_addr (t.brk_current + delta) in
    t.brk_current <- new_brk;
    if t.strategy.heap_ignore_shrink then begin
      (* Memory stays mapped; only the logical break moves.  (This is
         the behaviour that makes LTP's fault-after-shrink test fail.) *)
      t.stats.brk_time <- t.stats.brk_time + brk_fast_cost;
      Ok (new_brk, brk_fast_cost)
    end
    else begin
      (* Linux: pages above the new break go back to the system, so a
         later regrow will fault and re-zero them.  Physical blocks
         are released newest-first until the target amount is out. *)
      let new_top = Page.align_up new_brk t.strategy.heap_increment in
      let released = t.heap_mapped_top - new_top in
      let cost =
        if released > 0 then begin
          let acct = t.heap.Vma.acct in
          let freed = ref 0 in
          let keep =
            List.filter
              (fun (b : Phys.block) ->
                if !freed < released then begin
                  Phys.free t.phys b;
                  freed := !freed + b.Phys.bytes;
                  let mc = is_mcdram t b.Phys.domain in
                  acct.Vma.backed <- max 0 (acct.Vma.backed - b.Phys.bytes);
                  if mc then begin
                    acct.Vma.mcdram <- max 0 (acct.Vma.mcdram - b.Phys.bytes);
                    t.mcdram_used <- max 0 (t.mcdram_used - b.Phys.bytes)
                  end;
                  (* Heap pages under Linux are small-page backed. *)
                  acct.Vma.small <- max 0 (acct.Vma.small - b.Phys.bytes);
                  false
                end
                else true)
              (Blocklist.blocks t.heap.Vma.blocks)
          in
          let bag = Blocklist.empty () in
          List.iter (Blocklist.add bag) keep;
          t.heap.Vma.blocks <- bag;
          (* Newest-first mappings go away with the freed blocks. *)
          let dropped = ref 0 in
          let kept_mappings =
            List.filter
              (fun (vaddr, bytes, page) ->
                if !dropped < !freed then begin
                  Page_table.unmap t.page_table ~vaddr ~bytes ~page;
                  dropped := !dropped + bytes;
                  false
                end
                else true)
              t.heap.Vma.mappings
          in
          t.heap.Vma.mappings <- kept_mappings;
          t.heap_mapped_top <- new_top;
          t.heap.Vma.len <- max 0 (new_top - heap_base_addr);
          brk_vma_cost + (Page.count ~bytes:released Page.Small * 15)
        end
        else brk_fast_cost
      in
      t.stats.brk_time <- t.stats.brk_time + cost;
      Ok (new_brk, cost)
    end
  end

(* ------------------------------------------------------------------ *)
(* Demand faulting                                                     *)

let demand_fault_range t (vma : Vma.t) ~bytes ~concurrency =
  (* Fault [bytes] of unbacked memory in [vma]: allocate physical
     pages following the VMA policy and charge per-page fault costs.
     The heap never gets THP treatment: its boundary is only 4K
     aligned under Linux (Section IV). *)
  let page =
    match vma.Vma.backing with
    | Vma.Heap -> Page.Small
    | Vma.Anonymous | Vma.Stack | Vma.Shared _ -> interior_page t ~bytes
  in
  let before = vma.Vma.acct.Vma.backed in
  let _ = populate t vma ~bytes ~policy:vma.Vma.policy ~max_page:page in
  let added = vma.Vma.acct.Vma.backed - before in
  (* Force demand-paged accounting to the fault granularity: the
     chunks were recorded at up to [page], which is already <= THP. *)
  let faulted = min bytes added in
  if faulted <= 0 then 0
  else begin
    let cost = Fault.demand_fault_bytes t.costs ~page ~bytes:faulted ~concurrency in
    let pages = Page.count ~bytes:faulted page in
    t.stats.faults <- t.stats.faults + pages;
    t.stats.fault_time <- t.stats.fault_time + cost;
    t.stats.zeroed_bytes <- t.stats.zeroed_bytes + faulted;
    Mk_obs.Hook.count ~subsystem:"mem" ~name:"demand_faults" pages;
    Mk_obs.Hook.count ~subsystem:"mem" ~name:"fault_ns" cost;
    cost
  end

let touch t ~addr ~bytes ~concurrency =
  match find_vma t addr with
  | None -> 0
  | Some vma ->
      let span_end = min (addr + bytes) (Vma.end_ vma) in
      let span = max 0 (span_end - addr) in
      let un = Vma.unbacked vma in
      let to_fault = min span un in
      if to_fault <= 0 then 0
      else demand_fault_range t vma ~bytes:to_fault ~concurrency

let premap t ~addr ~bytes =
  (* Populate without taking faults: bulk mapping and zeroing, as a
     kernel does when asked to pre-populate a region (MAP_POPULATE,
     or McKernel's --mpol-shm-premap). *)
  match find_vma t addr with
  | None -> 0
  | Some vma ->
      let span_end = min (addr + bytes) (Vma.end_ vma) in
      let span = max 0 (span_end - addr) in
      let to_map = min span (Vma.unbacked vma) in
      if to_map <= 0 then 0
      else begin
        let page = interior_page t ~bytes:to_map in
        let before = vma.Vma.acct.Vma.backed in
        let _ = populate t vma ~bytes:to_map ~policy:vma.Vma.policy ~max_page:page in
        let added = vma.Vma.acct.Vma.backed - before in
        t.stats.zeroed_bytes <- t.stats.zeroed_bytes + added;
        Fault.prefault t.costs ~page ~bytes:added ~zero_bytes:added
      end

let touch_heap t ~concurrency =
  let heap_extent = max 0 (t.brk_current - heap_base_addr) in
  if heap_extent > t.heap.Vma.len then t.heap.Vma.len <- heap_extent;
  let un = Vma.unbacked t.heap in
  if un <= 0 then 0 else demand_fault_range t t.heap ~bytes:un ~concurrency

let touch_all t ~concurrency =
  let cost = ref 0 in
  List.iter
    (fun (v : Vma.t) ->
      let un = Vma.unbacked v in
      if un > 0 then cost := !cost + demand_fault_range t v ~bytes:un ~concurrency)
    t.vmas;
  let heap_extent = max 0 (t.brk_current - heap_base_addr) in
  if heap_extent > t.heap.Vma.len then t.heap.Vma.len <- heap_extent;
  let un = Vma.unbacked t.heap in
  if un > 0 then cost := !cost + demand_fault_range t t.heap ~bytes:un ~concurrency;
  !cost

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let all_accts t = t.heap.Vma.acct :: List.map (fun (v : Vma.t) -> v.Vma.acct) t.vmas

let backed_bytes t =
  List.fold_left (fun acc (a : Vma.acct) -> acc + a.Vma.backed) 0 (all_accts t)

let mcdram_bytes t =
  List.fold_left (fun acc (a : Vma.acct) -> acc + a.Vma.mcdram) 0 (all_accts t)

let mcdram_fraction t =
  let b = backed_bytes t in
  if b = 0 then 1.0 else float_of_int (mcdram_bytes t) /. float_of_int b

let tlb_factor t = Vma.tlb_factor (Vma.merge_acct (all_accts t))

let heap_mapped_bytes t = t.heap_mapped_top - heap_base_addr
