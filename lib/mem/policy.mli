(** NUMA memory placement policies.

    Linux exposes the standard policies ([Preferred], [Bind],
    [Interleave]); the LWKs add what Linux in SNC-4 mode cannot
    express (Section II-D3): [Mcdram_first], which tries every MCDRAM
    domain nearest-first and silently spills to DDR4, and [Ddr_only].
    A policy reduces to an ordered list of candidate domains plus a
    strictness flag. *)

type t =
  | Default of { home : Mk_hw.Numa.id }
      (** First-touch on the local domain, spill by distance. *)
  | Preferred of { domain : Mk_hw.Numa.id }
      (** [numactl -p]: one preferred domain, spill by distance.  In
          SNC-4 mode Linux accepts only one domain here, which is the
          limitation the paper calls out. *)
  | Bind of { domains : Mk_hw.Numa.id list }
      (** Strict: allocation fails rather than spill elsewhere. *)
  | Interleave of { domains : Mk_hw.Numa.id list }
  | Mcdram_first of { home : Mk_hw.Numa.id }
      (** LWK policy: all MCDRAM domains nearest-first, then DDR4. *)
  | Ddr_only of { home : Mk_hw.Numa.id }

val candidates : t -> Mk_hw.Numa.t -> Mk_hw.Numa.id list
(** Domains to try, in order. *)

val strict : t -> bool
(** Whether allocation must fail once the candidates are exhausted
    (true only for [Bind]). *)

val to_string : t -> string
