(** Virtual memory areas.

    A VMA records one contiguous virtual mapping, the physical blocks
    backing it, how many bytes are populated, where they live
    (MCDRAM vs DDR4) and at which page sizes they are mapped.  The
    page-size mix feeds the TLB overhead factor; the MCDRAM share
    feeds the bandwidth model. *)

type backing =
  | Anonymous  (** mmap(MAP_ANONYMOUS) *)
  | Heap  (** the brk-managed region *)
  | Stack
  | Shared of int  (** System-V / POSIX shared memory, keyed segment *)

type acct = {
  mutable backed : int;  (** bytes physically populated *)
  mutable mcdram : int;  (** of which in MCDRAM *)
  mutable small : int;  (** bytes mapped with 4K pages *)
  mutable large : int;  (** bytes mapped with 2M pages *)
  mutable huge : int;  (** bytes mapped with 1G pages *)
}

type t = {
  start : int;
  mutable len : int;
  backing : backing;
  policy : Policy.t;
  mutable blocks : Mk_hw.Numa.id Blocklist.t;
  acct : acct;
  mutable mappings : (int * int * Page.size) list;
      (** (vaddr, bytes, page) of each populated extent, newest first *)
}

val make : start:int -> len:int -> backing:backing -> policy:Policy.t -> t
val end_ : t -> int
val contains : t -> int -> bool
val overlaps : t -> start:int -> len:int -> bool

val record :
  t -> bytes:int -> mcdram:int -> page:Page.size -> unit
(** Account [bytes] newly populated, [mcdram] of them in MCDRAM,
    mapped at page size [page]. *)

val unbacked : t -> int
(** Bytes of the VMA not yet physically populated. *)

val tlb_factor : acct -> float
(** Backed-byte-weighted average of {!Page.tlb_overhead}; 1.0 for an
    empty accounting. *)

val merge_acct : acct list -> acct

val backing_to_string : backing -> string
