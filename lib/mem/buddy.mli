(** Binary buddy allocator over one physically contiguous region.

    Physical memory inside a NUMA domain is handed out in power-of-two
    blocks of 4 KiB base pages.  The allocator tracks the largest free
    block, which determines whether a 1 GiB or 2 MiB page can still be
    mapped — the mechanism behind mOS's advantage from grabbing memory
    "early during the boot sequence" versus IHK/McKernel requesting it
    after Linux "has already placed unmovable data structures into it"
    (Section II-D5). *)

type t

val create : base:int -> bytes:int -> t
(** Region starting at physical address [base] covering [bytes].
    [base] must be 4 KiB aligned; [bytes] is rounded down to a whole
    number of base pages. *)

val total : t -> int
(** Usable bytes in the region. *)

val free_bytes : t -> int
val used_bytes : t -> int

val alloc : t -> bytes:int -> int option
(** Allocate a contiguous block of at least [bytes]; returns the
    physical base address.  The block is aligned to its own
    (power-of-two) size, so a 1 GiB request comes back 1 GiB aligned. *)

val free : t -> addr:int -> bytes:int -> unit
(** Release a block obtained from [alloc] with the same size.
    @raise Invalid_argument on a block that is not currently allocated. *)

val largest_free : t -> int
(** Size in bytes of the largest currently free block. *)

val fragmentation : t -> float
(** 1 - largest_free/free_bytes; 0 when free space is one block. *)
