type t = { mutable counter : int }

let create ?(first = 1) () = { counter = first }

let next t =
  let v = t.counter in
  t.counter <- v + 1;
  v

let peek t = t.counter
