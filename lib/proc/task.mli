(** Threads of execution — the simulator's [task_struct].

    mOS "retains Linux kernel compatibility at the level of its
    internal kernel data structures; e.g., the task_struct, which
    enables mOS to move threads directly into Linux" (Section II-C);
    this module is the shared representation both kernel models use,
    with a [home] marker saying which kernel currently runs it. *)

type state =
  | Runnable
  | Running of Mk_hw.Topology.cpu
  | Blocked of string  (** reason, e.g. "futex", "mpi-recv" *)
  | Migrated  (** temporarily executing on the other kernel *)
  | Exited of int

type home = Lwk | Linux_side

type accounting = {
  mutable user_time : Mk_engine.Units.time;
  mutable kernel_time : Mk_engine.Units.time;
  mutable noise_time : Mk_engine.Units.time;
  mutable syscalls_local : int;
  mutable syscalls_offloaded : int;
  mutable migrations : int;
  mutable context_switches : int;
}

type t = {
  tid : int;
  pid : int;
  name : string;
  mutable state : state;
  mutable home : home;
  mutable affinity : Mk_hw.Topology.cpu list;  (** allowed CPUs *)
  acct : accounting;
}

val make :
  tid:int -> pid:int -> name:string -> affinity:Mk_hw.Topology.cpu list -> t

val is_runnable : t -> bool
val run_on : t -> Mk_hw.Topology.cpu -> unit
val block : t -> string -> unit
val wake : t -> unit
val exit : t -> code:int -> unit

val charge_user : t -> Mk_engine.Units.time -> unit
val charge_kernel : t -> Mk_engine.Units.time -> unit
val charge_noise : t -> Mk_engine.Units.time -> unit

val state_to_string : state -> string
