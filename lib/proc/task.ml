type state =
  | Runnable
  | Running of Mk_hw.Topology.cpu
  | Blocked of string
  | Migrated
  | Exited of int

type home = Lwk | Linux_side

type accounting = {
  mutable user_time : Mk_engine.Units.time;
  mutable kernel_time : Mk_engine.Units.time;
  mutable noise_time : Mk_engine.Units.time;
  mutable syscalls_local : int;
  mutable syscalls_offloaded : int;
  mutable migrations : int;
  mutable context_switches : int;
}

type t = {
  tid : int;
  pid : int;
  name : string;
  mutable state : state;
  mutable home : home;
  mutable affinity : Mk_hw.Topology.cpu list;
  acct : accounting;
}

let make ~tid ~pid ~name ~affinity =
  {
    tid;
    pid;
    name;
    state = Runnable;
    home = Lwk;
    affinity;
    acct =
      {
        user_time = 0;
        kernel_time = 0;
        noise_time = 0;
        syscalls_local = 0;
        syscalls_offloaded = 0;
        migrations = 0;
        context_switches = 0;
      };
  }

let is_runnable t = match t.state with Runnable -> true | _ -> false

let run_on t cpu = t.state <- Running cpu
let block t reason = t.state <- Blocked reason
let wake t = match t.state with Exited _ -> () | _ -> t.state <- Runnable
let exit t ~code = t.state <- Exited code

let charge_user t d = t.acct.user_time <- t.acct.user_time + d
let charge_kernel t d = t.acct.kernel_time <- t.acct.kernel_time + d
let charge_noise t d = t.acct.noise_time <- t.acct.noise_time + d

let state_to_string = function
  | Runnable -> "runnable"
  | Running cpu -> Printf.sprintf "running@cpu%d" cpu
  | Blocked r -> Printf.sprintf "blocked(%s)" r
  | Migrated -> "migrated"
  | Exited c -> Printf.sprintf "exited(%d)" c
