type proxy = {
  proxy_pid : int;
  fds : Fd_table.t;
  mutable offloads_served : int;
}

type t = {
  pid : int;
  name : string;
  address_space : Mk_mem.Address_space.t;
  mutable tasks : Task.t list;
  mutable proxy : proxy option;
  own_fds : Fd_table.t;
}

let make ~pid ~name ~address_space =
  {
    pid;
    name;
    address_space;
    tasks = [];
    proxy = None;
    own_fds = Fd_table.create ();
  }

let attach_proxy t ~proxy_pid =
  let p = { proxy_pid; fds = Fd_table.create (); offloads_served = 0 } in
  t.proxy <- Some p;
  p

let add_task t task = t.tasks <- task :: t.tasks

let live_tasks t =
  List.filter
    (fun (task : Task.t) ->
      match task.Task.state with Task.Exited _ -> false | _ -> true)
    t.tasks

let fds t = match t.proxy with Some p -> p.fds | None -> t.own_fds

let has_proxy t = t.proxy <> None
