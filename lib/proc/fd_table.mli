(** File descriptor table.

    Under IHK/McKernel the LWK "has no knowledge of file descriptors;
    it simply returns the descriptor it receives from the proxy
    process" (Section II-B) — so this table always lives on the Linux
    side of a McKernel process, attached to the proxy. *)

type descriptor = {
  fd : int;
  path : string;
  mutable position : int;
  mutable open_ : bool;
}

type t

val create : unit -> t
(** Starts with stdin/stdout/stderr occupied. *)

val open_file : t -> path:string -> int
(** Allocates the lowest free descriptor, POSIX-style. *)

val close : t -> int -> (unit, [ `Ebadf ]) result
val lookup : t -> int -> descriptor option
val seek : t -> int -> pos:int -> (unit, [ `Ebadf ]) result
val advance : t -> int -> bytes:int -> (unit, [ `Ebadf ]) result
val open_count : t -> int
