(** Monotonic identifier generators for processes and threads. *)

type t

val create : ?first:int -> unit -> t
val next : t -> int
val peek : t -> int
