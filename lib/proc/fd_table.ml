type descriptor = {
  fd : int;
  path : string;
  mutable position : int;
  mutable open_ : bool;
}

type t = { mutable table : descriptor list }

let std path fd = { fd; path; position = 0; open_ = true }

let create () =
  { table = [ std "/dev/stdin" 0; std "/dev/stdout" 1; std "/dev/stderr" 2 ] }

let lookup t fd = List.find_opt (fun d -> d.fd = fd && d.open_) t.table

let open_file t ~path =
  let used = List.filter_map (fun d -> if d.open_ then Some d.fd else None) t.table in
  let rec lowest n = if List.mem n used then lowest (n + 1) else n in
  let fd = lowest 0 in
  let d = { fd; path; position = 0; open_ = true } in
  t.table <- d :: List.filter (fun e -> e.fd <> fd) t.table;
  fd

let close t fd =
  match lookup t fd with
  | Some d ->
      d.open_ <- false;
      Ok ()
  | None -> Error `Ebadf

let seek t fd ~pos =
  match lookup t fd with
  | Some d ->
      d.position <- pos;
      Ok ()
  | None -> Error `Ebadf

let advance t fd ~bytes =
  match lookup t fd with
  | Some d ->
      d.position <- d.position + bytes;
      Ok ()
  | None -> Error `Ebadf

let open_count t = List.length (List.filter (fun d -> d.open_) t.table)
