(** A process: address space plus tasks plus — when running on
    McKernel — the Linux-side proxy bookkeeping.

    "For every single process running on McKernel there is a process
    spawned on Linux, called the proxy process … The actual set of
    open files; i.e., file descriptor table, file positions, etc.,
    are tracked by the Linux kernel." (Section II-B) *)

type proxy = {
  proxy_pid : int;
  fds : Fd_table.t;  (** descriptor state lives Linux-side *)
  mutable offloads_served : int;
}

type t = {
  pid : int;
  name : string;
  address_space : Mk_mem.Address_space.t;
  mutable tasks : Task.t list;
  mutable proxy : proxy option;
  own_fds : Fd_table.t;
      (** used when no proxy exists (Linux, mOS: the kernel itself
          tracks descriptors) *)
}

val make :
  pid:int -> name:string -> address_space:Mk_mem.Address_space.t -> t

val attach_proxy : t -> proxy_pid:int -> proxy
val add_task : t -> Task.t -> unit
val live_tasks : t -> Task.t list
val fds : t -> Fd_table.t
(** The descriptor table: the Linux-side proxy's when one exists
    (McKernel "has no knowledge of file descriptors"), the process's
    own otherwise. *)

val has_proxy : t -> bool
