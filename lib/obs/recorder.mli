(** One run's observability handle: a {!Metrics} registry, an
    optional {!Trace} buffer and a current-node attribution cursor.

    A recorder belongs to exactly one {!Mk_cluster.Driver} run and is
    only touched from the domain executing that run (the experiment
    layer fans runs out one-per-job), so no locking is needed and
    parallel fan-out stays deterministic: each run's samples live in
    its own recorder, and {!snapshot}s are merged in input order by
    {!Collect}. *)

type t

type snapshot = {
  snap_label : string;  (** scenario/kernel label *)
  snap_nodes : int;
  snap_seed : int;
  snap_metrics : (Key.t * Metrics.value) list;
  snap_events : Trace.event list;
      (** in record order; [pid] is the run-local node index *)
}

val make : ?trace:bool -> label:string -> nodes:int -> seed:int -> unit -> t
(** [trace] (default [false]) allocates the event buffer; without it
    every span/instant call is a no-op. *)

val label : t -> string
val metrics : t -> Metrics.t
val tracing : t -> bool

val set_node : t -> int -> unit
(** Set the node charged by subsequent {!count}/{!observe}/{!gauge}
    calls.  {!Key.job_wide} initially. *)

val node : t -> int

val count : t -> subsystem:string -> name:string -> int -> unit
val count_node : t -> node:int -> subsystem:string -> name:string -> int -> unit
val observe : t -> subsystem:string -> name:string -> int -> unit
val gauge : t -> subsystem:string -> name:string -> int -> unit

val span :
  t ->
  ts:Mk_engine.Units.time ->
  dur:Mk_engine.Units.time ->
  node:int ->
  tid:int ->
  cat:string ->
  name:string ->
  ?args:(string * Mk_engine.Json.t) list ->
  unit ->
  unit
(** No-op unless tracing. *)

val instant :
  t ->
  ts:Mk_engine.Units.time ->
  node:int ->
  tid:int ->
  cat:string ->
  name:string ->
  ?args:(string * Mk_engine.Json.t) list ->
  unit ->
  unit

val snapshot : t -> snapshot
(** Immutable copy of everything recorded so far. *)
