type t = {
  trace_enabled : bool;
  metrics : Metrics.t;
  mutable events_rev : Trace.event list;
  mutable procs_rev : (int * string) list;
  mutable next_pid : int;
  mutable next_seq : int;
  mutable runs : int;
}

let create ?(trace = false) () =
  {
    trace_enabled = trace;
    metrics = Metrics.create ();
    events_rev = [];
    procs_rev = [];
    next_pid = 1;
    next_seq = 0;
    runs = 0;
  }

let trace_enabled t = t.trace_enabled
let runs t = t.runs
let metrics t = t.metrics
let bindings t = Metrics.bindings t.metrics
let metrics_json t = Metrics.to_json t.metrics
let events t = List.rev t.events_rev

(* Adds MUST happen on one domain, in a deterministic order — the
   experiment layer calls this sequentially, in input order, after
   its parallel_map returns.  Each snapshot gets a fresh pid range
   (one pid per cluster node) and its events get globally increasing
   sequence numbers, so the merged trace depends only on the add
   order, never on which domain simulated which run. *)
let add t (s : Recorder.snapshot) =
  t.runs <- t.runs + 1;
  Metrics.absorb t.metrics s.Recorder.snap_metrics;
  if t.trace_enabled then begin
    let base = t.next_pid in
    t.next_pid <- base + max 1 s.Recorder.snap_nodes;
    let used = ref [] in
    List.iter
      (fun (e : Trace.event) ->
        let pid = base + max 0 e.Trace.pid in
        used := pid :: !used;
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        t.events_rev <- { e with Trace.pid; seq } :: t.events_rev)
      s.Recorder.snap_events;
    let pids = List.sort_uniq Int.compare !used in
    List.iter
      (fun pid ->
        let name =
          Printf.sprintf "%s seed %d node %d" s.Recorder.snap_label
            s.Recorder.snap_seed (pid - base)
        in
        t.procs_rev <- (pid, name) :: t.procs_rev)
      pids
  end

let tid_name = function
  | 0 -> "clock"
  | 1 -> "mpi"
  | tid -> Printf.sprintf "t%d" tid

let trace_json t =
  let evs = events t in
  let tids =
    List.sort_uniq compare
      (List.map (fun (e : Trace.event) -> (e.Trace.pid, e.Trace.tid)) evs)
  in
  Trace.to_json
    ~processes:(List.rev t.procs_rev)
    ~threads:(List.map (fun (pid, tid) -> (pid, tid, tid_name tid)) tids)
    evs
