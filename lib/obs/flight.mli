(** Always-on black-box flight recorder (docs/OBSERVABILITY.md §2).

    A bounded per-cell ring of DES-clock-stamped events, armed around
    every supervised cell and dumped (via {!Mk_engine.Atomic_file}) as
    [flight-<cell_key>.json] only when the cell is quarantined or a
    chaos run kills it — every crash ships a trace of its last
    [capacity] events, exportable to Perfetto through {!Trace}.

    Domain safety: each ring is single-owner (created, filled and
    snapshotted on the worker domain running the cell — the degenerate
    lock-free SPSC case), and the ambient channel is a [Domain.DLS]
    slot like {!Hook}'s, so no mutable state crosses domains except as
    an immutable {!snapshot} through the pool barrier.  Wraparound is
    a pure function of the append count, so the surviving window is
    byte-identical between sequential and [-j N] runs. *)

type entry = {
  e_ts : Mk_engine.Units.time;  (** DES timestamp, ns *)
  e_dur : Mk_engine.Units.time option;  (** [Some] for spans *)
  e_node : int;  (** attribution node (Perfetto pid) *)
  e_tid : int;
  e_cat : string;
  e_name : string;
  e_value : int option;  (** [Some] for counter samples *)
}

type t

val default_capacity : int
(** 512 entries — small enough to arm on every cell, large enough to
    cover several iterations of the densest Tier-1 apps. *)

val create : ?capacity:int -> label:string -> seed:int -> unit -> t
(** Fresh ring.  [label] should identify the cell
    ({!Experiment.cell_label} style) so a dump attributes its origin.
    Raises [Invalid_argument] if [capacity <= 0]. *)

val label : t -> string
val capacity : t -> int

val recorded : t -> int
(** Total events appended since {!create} (wraparound included). *)

(** {1 Recording} *)

val span :
  t ->
  ts:Mk_engine.Units.time ->
  dur:Mk_engine.Units.time ->
  node:int ->
  tid:int ->
  cat:string ->
  name:string ->
  unit ->
  unit

val instant :
  t -> ts:Mk_engine.Units.time -> node:int -> cat:string -> name:string -> unit -> unit

val count :
  t ->
  ts:Mk_engine.Units.time ->
  node:int ->
  subsystem:string ->
  name:string ->
  int ->
  unit

(** {1 Ambient arming}

    Mirrors {!Hook}: a domain-local slot lets the Driver reach the
    ring without threading it through every layer.  All [record_*]
    functions are no-ops (one DLS read) when no ring is armed. *)

val with_ring : t -> (unit -> 'a) -> 'a
(** [with_ring t f] arms [t] for the dynamic extent of [f] on the
    calling domain, restoring the previous ring afterwards. *)

val armed : unit -> t option

val is_armed : unit -> bool
(** Cheap guard for call sites that would otherwise allocate an event
    name eagerly. *)

val record_span :
  ts:Mk_engine.Units.time ->
  dur:Mk_engine.Units.time ->
  node:int ->
  tid:int ->
  cat:string ->
  name:string ->
  unit ->
  unit

val record_instant :
  ts:Mk_engine.Units.time -> node:int -> cat:string -> name:string -> unit -> unit

val record_count :
  ts:Mk_engine.Units.time ->
  node:int ->
  subsystem:string ->
  name:string ->
  int ->
  unit

(** {1 Snapshot and export} *)

type snapshot = {
  snap_label : string;
  snap_seed : int;
  snap_capacity : int;
  snap_recorded : int;
  snap_entries : (int * entry) list;
      (** [(seq, entry)], oldest first; [seq] is the global append
          index, so gaps before the first kept entry are visible. *)
}

val snapshot : t -> snapshot
(** The last [min (recorded t) (capacity t)] events in append order.
    Pure read; the ring stays armed and usable. *)

val dropped : snapshot -> int
(** Events lost to wraparound ([recorded - kept]). *)

val to_events : snapshot -> Trace.event list
(** Chrome-trace events: spans keep their duration, counter samples
    become instants with a [value] arg; [seq] is the append index. *)

val to_json : ?cell_key:string -> ?reason:string -> snapshot -> Mk_engine.Json.t
(** The dump document (schema ["multikernel-flight/1"]): cell
    identity, ring occupancy, and a full Perfetto-loadable trace
    document under ["trace"]. *)
