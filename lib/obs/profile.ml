open Mk_engine

(* Engine self-profiler, deterministic tier.  One [t] accompanies one
   sharded DES run: every {!Shard.sample} the coordinator hands us is
   protocol-determined (see shard.mli), and samples arrive in epoch
   order with nondecreasing global bounds — so the timeline below is
   an append-only bucket list, no hash table, no sorting, and its
   JSON rendering is byte-identical for sequential and [-j N] runs.
   The nondeterministic tier (live Pool counters, injector depth)
   deliberately lives elsewhere: {!Pool_stats} renders it, and
   [simos profile --sched] keeps it out of the deterministic
   document. *)

type bucket = {
  b_index : int;
  b_start : Units.time;
  b_epochs : int;
  b_events : int;
  b_cross : int;
  b_nulls : int;
  b_stalls : int;
  b_max_backlog : int;
}

type totals = {
  t_epochs : int;
  t_events : int;
  t_cross : int;
  t_nulls : int;
  t_stalls : int;
  t_max_backlog : int;
  t_first_bound : Units.time;
  t_last_bound : Units.time;
  t_lookahead : Units.time;
}

type t = {
  shards : int;
  bucket_ns : Units.time;
  mutable cur : bucket option;
  mutable closed : bucket list; (* most recent first *)
  mutable totals : totals;
  mutable samples : int;
}

let default_bucket_ns = Units.ms

let create ?(bucket_ns = default_bucket_ns) ~shards () =
  if bucket_ns <= 0 then
    invalid_arg "Profile.create: bucket_ns must be positive";
  if shards <= 0 then invalid_arg "Profile.create: shards must be positive";
  {
    shards;
    bucket_ns;
    cur = None;
    closed = [];
    totals =
      {
        t_epochs = 0;
        t_events = 0;
        t_cross = 0;
        t_nulls = 0;
        t_stalls = 0;
        t_max_backlog = 0;
        t_first_bound = 0;
        t_last_bound = 0;
        t_lookahead = 0;
      };
    samples = 0;
  }

let shards t = t.shards
let bucket_ns t = t.bucket_ns

let observe t (s : Shard.sample) =
  let idx = s.Shard.sample_bound / t.bucket_ns in
  let fold b =
    {
      b with
      b_epochs = b.b_epochs + 1;
      b_events = b.b_events + s.Shard.sample_events;
      b_cross = b.b_cross + s.Shard.sample_cross;
      b_nulls = b.b_nulls + s.Shard.sample_nulls;
      b_stalls = b.b_stalls + s.Shard.sample_stalls;
      b_max_backlog = max b.b_max_backlog s.Shard.sample_backlog;
    }
  in
  let fresh =
    {
      b_index = idx;
      b_start = idx * t.bucket_ns;
      b_epochs = 1;
      b_events = s.Shard.sample_events;
      b_cross = s.Shard.sample_cross;
      b_nulls = s.Shard.sample_nulls;
      b_stalls = s.Shard.sample_stalls;
      b_max_backlog = s.Shard.sample_backlog;
    }
  in
  (match t.cur with
  | Some b when b.b_index = idx -> t.cur <- Some (fold b)
  | Some b ->
      (* Bounds are nondecreasing, so a new index closes the old
         bucket for good. *)
      t.closed <- b :: t.closed;
      t.cur <- Some fresh
  | None -> t.cur <- Some fresh);
  let tt = t.totals in
  t.totals <-
    {
      t_epochs = tt.t_epochs + 1;
      t_events = tt.t_events + s.Shard.sample_events;
      t_cross = tt.t_cross + s.Shard.sample_cross;
      t_nulls = tt.t_nulls + s.Shard.sample_nulls;
      t_stalls = tt.t_stalls + s.Shard.sample_stalls;
      t_max_backlog = max tt.t_max_backlog s.Shard.sample_backlog;
      t_first_bound =
        (if t.samples = 0 then s.Shard.sample_bound else tt.t_first_bound);
      t_last_bound = s.Shard.sample_bound;
      t_lookahead =
        (if t.samples = 0 then
           s.Shard.sample_horizon - s.Shard.sample_bound + 1
         else tt.t_lookahead);
    };
  t.samples <- t.samples + 1

let buckets t =
  List.rev (match t.cur with None -> t.closed | Some b -> b :: t.closed)

let totals t = t.totals

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

(* Mean simulated time an epoch advances the global bound, as a
   fraction of the lookahead window — 1.0 means every barrier buys a
   full horizon of progress, small values mean the conservative
   protocol is spinning on synchronisation. *)
let horizon_utilization tt =
  if tt.t_epochs <= 1 || tt.t_lookahead <= 0 then 1.0
  else
    ratio (tt.t_last_bound - tt.t_first_bound) ((tt.t_epochs - 1) * tt.t_lookahead)

let stall_pct ~shards tt = 100.0 *. ratio tt.t_stalls (tt.t_epochs * shards)
let null_pct tt = 100.0 *. ratio tt.t_nulls (tt.t_nulls + tt.t_cross)
let events_per_epoch tt = ratio tt.t_events tt.t_epochs

let bucket_to_json b =
  Json.Obj
    [
      ("start_ns", Json.Int b.b_start);
      ("epochs", Json.Int b.b_epochs);
      ("events", Json.Int b.b_events);
      ("cross_messages", Json.Int b.b_cross);
      ("null_messages", Json.Int b.b_nulls);
      ("stalls", Json.Int b.b_stalls);
      ("max_backlog", Json.Int b.b_max_backlog);
    ]

let totals_to_json ~shards tt =
  Json.Obj
    [
      ("epochs", Json.Int tt.t_epochs);
      ("events", Json.Int tt.t_events);
      ("cross_messages", Json.Int tt.t_cross);
      ("null_messages", Json.Int tt.t_nulls);
      ("stalls", Json.Int tt.t_stalls);
      ("max_backlog", Json.Int tt.t_max_backlog);
      ("lookahead_ns", Json.Int tt.t_lookahead);
      ("span_ns", Json.Int (tt.t_last_bound - tt.t_first_bound));
      ("events_per_epoch", Json.Float (events_per_epoch tt));
      ("null_pct", Json.Float (null_pct tt));
      ("stall_pct", Json.Float (stall_pct ~shards tt));
      ("horizon_utilization", Json.Float (horizon_utilization tt));
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "multikernel-profile/1");
      ("shards", Json.Int t.shards);
      ("bucket_ns", Json.Int t.bucket_ns);
      ("totals", totals_to_json ~shards:t.shards t.totals);
      ("timeline", Json.List (List.map bucket_to_json (buckets t)));
    ]

(* ------------------------------------------------------------------ *)
(* Hot-scenario attribution: rank labelled runs by deterministic
   simulated cost.  Ties break on the label so the table is stable. *)

let top ~k rows =
  let sorted =
    List.sort
      (fun (la, (a : totals)) (lb, b) ->
        let c = Int.compare b.t_events a.t_events in
        if c <> 0 then c else String.compare la lb)
      rows
  in
  List.filteri (fun i _ -> i < k) sorted

let attribution_json ~shards rows =
  Json.List
    (List.map
       (fun (label, tt) ->
         Json.Obj
           (("label", Json.String label)
           :: (match totals_to_json ~shards tt with
              | Json.Obj fields -> fields
              | _ -> assert false)))
       rows)
