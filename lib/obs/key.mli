(** Metric identity: [(kernel, node, subsystem, name)].

    [kernel] is the scenario label of the run that produced the
    sample ("Linux", "McKernel", "mOS"), so one registry can hold a
    whole comparison and still attribute every count to the kernel
    that earned it.  [node] is the cluster node index the sample was
    charged to, or {!job_wide} for whole-job aggregates (collective
    phase latencies, for instance). *)

type t = { kernel : string; node : int; subsystem : string; name : string }

val job_wide : int
(** [-1]: the sample belongs to the job, not one node. *)

val v : ?node:int -> kernel:string -> subsystem:string -> name:string -> unit -> t
(** [node] defaults to {!job_wide}. *)

val compare : t -> t -> int
(** Total order: kernel, then node, then subsystem, then name.  The
    deterministic tie-break every table and JSON export sorts by. *)

val node_label : int -> string
(** ["*"] for {!job_wide}, the decimal index otherwise. *)

val to_string : t -> string
(** ["kernel/node/subsystem/name"], e.g. ["McKernel/0/mem/demand_faults"]. *)
