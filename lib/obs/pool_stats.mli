(** Scheduler counters as metrics: the bridge from
    {!Mk_engine.Pool.stats} to the {!Metrics} vocabulary.

    The work-stealing pool counts, per executor, how many tasks it
    ran and where it got them (own deque, steal, injector).  Those
    numbers describe {e the host machine's race between domains}, not
    the simulated cluster: two identical runs produce different steal
    counts.  They therefore must never be absorbed into a run's
    {!Recorder} snapshot or any {!Collect} that feeds simulation
    output — the determinism gate (seq vs [-j N] byte-identity) would
    catch it if they were.  This module exists for the bench layer's
    self-profiling only: [bench perf] snapshots the pool after a
    timed phase and embeds the result in its report.

    Key shape: [kernel] is ["engine"] (no simulated kernel earned
    these samples), [node] is the executor index — worker [i] is node
    [i], the submitting domain is the last executor — and
    [subsystem] is ["sched"].  Sources become counters
    ([local_pops], [steals], [failed_steals], [injected_runs]); the
    per-executor task total is the [executed] gauge. *)

val kernel : string
(** ["engine"]. *)

val subsystem : string
(** ["sched"]. *)

val to_metrics : Mk_engine.Pool.stats -> Metrics.t
(** A fresh registry holding one [executed] gauge and four source
    counters per executor.  Once the pool is quiescent, for each
    executor the gauge equals the sum of its three task-source
    counters ([local_pops + steals + injected_runs]) — the invariant
    [test/test_obs.ml] pins down. *)

val to_json : Mk_engine.Pool.stats -> Mk_engine.Json.t
(** [Metrics.to_json (to_metrics s)]: keys sorted by {!Key.compare},
    byte-stable for identical stats. *)
