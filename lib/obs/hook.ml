(* The ambient hook slot.  Layer code (mem, ikc, noise, fault, sched)
   cannot thread a recorder through every call without distorting the
   very APIs the paper models, so the active recorder — if any — is
   held in domain-local storage.  DLS, not a global ref (mklint R4):
   each domain in a Pool fan-out sees only its own slot, so a run's
   samples can never leak into a sibling run's recorder, and the
   sequential/-j N byte-identity argument stays trivial.

   The Null sink is [None], the initial state.  A disabled hook is a
   DLS read plus a match — no allocation, no branch into the layer's
   arithmetic — which is what lets the hook sites live inside
   demand-fault and offload hot paths. *)

let slot : Recorder.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let active () = Domain.DLS.get slot

let with_recorder r f =
  let prev = Domain.DLS.get slot in
  Domain.DLS.set slot (Some r);
  Fun.protect ~finally:(fun () -> Domain.DLS.set slot prev) f

let count ~subsystem ~name n =
  match Domain.DLS.get slot with
  | None -> ()
  | Some r -> Recorder.count r ~subsystem ~name n

let count_node ~node ~subsystem ~name n =
  match Domain.DLS.get slot with
  | None -> ()
  | Some r -> Recorder.count_node r ~node ~subsystem ~name n

let observe ~subsystem ~name v =
  match Domain.DLS.get slot with
  | None -> ()
  | Some r -> Recorder.observe r ~subsystem ~name v

let gauge ~subsystem ~name v =
  match Domain.DLS.get slot with
  | None -> ()
  | Some r -> Recorder.gauge r ~subsystem ~name v
