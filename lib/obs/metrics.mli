(** The metrics registry: counters, gauges and log2 histograms keyed
    by {!Key.t}.

    One registry belongs to one simulation run (see {!Recorder});
    cross-run aggregation goes through immutable {!bindings}
    snapshots and {!absorb}, so parallel experiment fan-out never
    shares a registry between domains.  Every exported view is sorted
    by {!Key.compare} via [Analysis.Sorted] — byte-identical output
    for identical contents, regardless of insertion history. *)

type histogram = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
      (** sparse [(bit_length, count)]: bucket [b] holds values in
          [\[2^(b-1), 2^b)], bucket 0 holds [<= 0] *)
}

type value =
  | Counter of int
  | Gauge of { last : int; peak : int }
  | Histogram of histogram

type t

val create : unit -> t

val add : t -> Key.t -> int -> unit
(** Bump a counter (created at 0 on first use).  Raises
    [Invalid_argument] if the key already names a gauge/histogram. *)

val set_gauge : t -> Key.t -> int -> unit
(** Record an instantaneous level; the peak is kept alongside. *)

val observe : t -> Key.t -> int -> unit
(** Add one sample to a histogram. *)

val counter : t -> Key.t -> int
(** Current counter value; [0] when absent (or not a counter). *)

val bindings : t -> (Key.t * value) list
(** Immutable snapshot, sorted by {!Key.compare}. *)

val absorb : t -> (Key.t * value) list -> unit
(** Merge a snapshot in: counters add, gauges take the later [last]
    and the max [peak], histograms sum pointwise. *)

val bucket_of : int -> int
(** Histogram bucket index of a value (its bit length; [0] for
    non-positive values). *)

val value_to_json : value -> Mk_engine.Json.t
val value_to_string : value -> string

val to_json : t -> Mk_engine.Json.t
(** Object keyed by {!Key.to_string}, in {!Key.compare} order. *)
