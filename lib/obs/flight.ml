open Mk_engine

(* Black-box flight recorder: a bounded ring of DES-stamped events
   that is cheap enough to leave armed on every supervised cell and is
   dumped only when the cell dies.  Determinism and domain safety rest
   on two facts.  (1) Each ring is single-owner: the worker domain
   running a cell creates it, appends to it and snapshots it; the
   snapshot (an immutable list) travels to the submitter only through
   the [Pool.parallel_map_result] barrier, which establishes the
   happens-before edge.  A one-domain ring is the degenerate SPSC
   queue — no atomics needed.  (2) The ambient channel below is a
   [Domain.DLS] slot, the same sanctioned pattern as {!Hook}: each
   domain sees only its own ring, so there is no cross-domain mutable
   global for mklint R4/R8 to object to.  Wraparound is a pure
   function of the append sequence ([next mod capacity]), so the
   surviving window is identical for sequential and [-j N] runs. *)

type entry = {
  e_ts : Units.time;
  e_dur : Units.time option;
  e_node : int;
  e_tid : int;
  e_cat : string;
  e_name : string;
  e_value : int option;
}

type t = {
  label : string;
  seed : int;
  capacity : int;
  slots : entry array;
  mutable next : int; (* total appended since [create]; never wraps *)
}

let padding =
  {
    e_ts = 0;
    e_dur = None;
    e_node = 0;
    e_tid = 0;
    e_cat = "";
    e_name = "";
    e_value = None;
  }

let default_capacity = 512

let create ?(capacity = default_capacity) ~label ~seed () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  { label; seed; capacity; slots = Array.make capacity padding; next = 0 }

let label t = t.label
let capacity t = t.capacity
let recorded t = t.next

let append t e =
  t.slots.(t.next mod t.capacity) <- e;
  t.next <- t.next + 1

let span t ~ts ~dur ~node ~tid ~cat ~name () =
  append t
    {
      e_ts = ts;
      e_dur = Some dur;
      e_node = node;
      e_tid = tid;
      e_cat = cat;
      e_name = name;
      e_value = None;
    }

let instant t ~ts ~node ~cat ~name () =
  append t
    {
      e_ts = ts;
      e_dur = None;
      e_node = node;
      e_tid = 0;
      e_cat = cat;
      e_name = name;
      e_value = None;
    }

let count t ~ts ~node ~subsystem ~name n =
  append t
    {
      e_ts = ts;
      e_dur = None;
      e_node = node;
      e_tid = 0;
      e_cat = subsystem;
      e_name = name;
      e_value = Some n;
    }

(* ------------------------------------------------------------------ *)
(* Ambient arming, mirroring Hook: a domain-local slot so the Driver
   reaches the ring without threading it through every layer.  The
   supervised path refuses --trace/--metrics (Validate.journal_mode),
   so the Hook recorder is absent exactly when the flight recorder
   matters — it needs its own channel. *)

let slot : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let armed () = Domain.DLS.get slot
let is_armed () = Option.is_some (Domain.DLS.get slot)

let with_ring t f =
  let prev = Domain.DLS.get slot in
  Domain.DLS.set slot (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set slot prev) f

let record_span ~ts ~dur ~node ~tid ~cat ~name () =
  match Domain.DLS.get slot with
  | None -> ()
  | Some t -> span t ~ts ~dur ~node ~tid ~cat ~name ()

let record_instant ~ts ~node ~cat ~name () =
  match Domain.DLS.get slot with
  | None -> ()
  | Some t -> instant t ~ts ~node ~cat ~name ()

let record_count ~ts ~node ~subsystem ~name n =
  match Domain.DLS.get slot with
  | None -> ()
  | Some t -> count t ~ts ~node ~subsystem ~name n

(* ------------------------------------------------------------------ *)
(* Snapshots and export *)

type snapshot = {
  snap_label : string;
  snap_seed : int;
  snap_capacity : int;
  snap_recorded : int;
  snap_entries : (int * entry) list;
}

let snapshot t =
  let kept = min t.next t.capacity in
  let entries =
    List.init kept (fun i ->
        let s = t.next - kept + i in
        (s, t.slots.(s mod t.capacity)))
  in
  {
    snap_label = t.label;
    snap_seed = t.seed;
    snap_capacity = t.capacity;
    snap_recorded = t.next;
    snap_entries = entries;
  }

let dropped s = s.snap_recorded - List.length s.snap_entries

let to_events s =
  List.map
    (fun (seq, e) ->
      let args =
        match e.e_value with
        | None -> []
        | Some v -> [ ("value", Json.Int v) ]
      in
      {
        Trace.ts = e.e_ts;
        dur = e.e_dur;
        pid = max 0 e.e_node;
        tid = e.e_tid;
        cat = e.e_cat;
        name = e.e_name;
        args;
        seq;
      })
    s.snap_entries

let to_json ?cell_key ?reason s =
  let evs = to_events s in
  let pids =
    List.sort_uniq Int.compare (List.map (fun (e : Trace.event) -> e.Trace.pid) evs)
  in
  let processes = List.map (fun p -> (p, "node " ^ string_of_int p)) pids in
  Json.Obj
    ([
       ("schema", Json.String "multikernel-flight/1");
       ("label", Json.String s.snap_label);
       ("seed", Json.Int s.snap_seed);
     ]
    @ (match cell_key with
      | None -> []
      | Some k -> [ ("cell_key", Json.String k) ])
    @ (match reason with
      | None -> []
      | Some r -> [ ("reason", Json.String r) ])
    @ [
        ("capacity", Json.Int s.snap_capacity);
        ("recorded", Json.Int s.snap_recorded);
        ("dropped", Json.Int (dropped s));
        ("trace", Trace.to_json ~processes ~threads:[] evs);
      ])
