(** Engine self-profiler: deterministic timelines of sharded-DES
    internals (docs/OBSERVABILITY.md §3).

    One [t] accompanies one {!Mk_engine.Shard.run}: feed {!observe}
    as the run's [observer] and every epoch's protocol-determined
    {!Mk_engine.Shard.sample} (event/cross/null/stall deltas, mailbox
    backlog at the barrier, global bound and horizon) is folded into
    fixed-width simulated-time buckets plus run totals.  Because the
    samples are identical for sequential and [-j N] execution, so is
    {!to_json} — the profile obeys the same byte-identity contract as
    the simulation output (qcheck'd in [test/test_obs.ml]).

    The {e nondeterministic} scheduler view (live {!Mk_engine.Pool}
    steal counters, {!Mk_engine.Pool.injector_depth}) is deliberately
    not part of this document; {!Pool_stats} renders it and
    [simos profile --sched] prints it separately. *)

type bucket = {
  b_index : int;  (** [b_start / bucket_ns] *)
  b_start : Mk_engine.Units.time;  (** bucket start, simulated ns *)
  b_epochs : int;
  b_events : int;
  b_cross : int;
  b_nulls : int;
  b_stalls : int;
  b_max_backlog : int;  (** max in-flight packets at an epoch barrier *)
}

type totals = {
  t_epochs : int;
  t_events : int;
  t_cross : int;
  t_nulls : int;
  t_stalls : int;
  t_max_backlog : int;
  t_first_bound : Mk_engine.Units.time;
  t_last_bound : Mk_engine.Units.time;
  t_lookahead : Mk_engine.Units.time;  (** derived from the first sample *)
}

type t

val default_bucket_ns : Mk_engine.Units.time
(** 1 ms of simulated time per bucket. *)

val create : ?bucket_ns:Mk_engine.Units.time -> shards:int -> unit -> t
(** Raises [Invalid_argument] when [bucket_ns <= 0] or [shards <= 0]. *)

val shards : t -> int
val bucket_ns : t -> Mk_engine.Units.time

val observe : t -> Mk_engine.Shard.sample -> unit
(** Fold one epoch sample in.  Samples must arrive in epoch order
    (nondecreasing bounds) — exactly what {!Mk_engine.Shard.run}'s
    [observer] delivers. *)

val buckets : t -> bucket list
(** Timeline so far, oldest first. *)

val totals : t -> totals

(** {1 Derived rates} *)

val events_per_epoch : totals -> float
(** How much work each synchronisation round extracts. *)

val null_pct : totals -> float
(** Null promises as a percentage of all cross-shard packets. *)

val stall_pct : shards:int -> totals -> float
(** Percentage of (epoch × shard) slots that held pending events but
    fired none. *)

val horizon_utilization : totals -> float
(** Mean bound advance per epoch over the lookahead window; 1.0 means
    every barrier buys a full horizon of progress. *)

(** {1 Export} *)

val to_json : t -> Mk_engine.Json.t
(** Schema ["multikernel-profile/1"]: totals (with derived rates) and
    the bucket timeline.  Deterministic — byte-identical across pool
    sizes for the same run. *)

val top : k:int -> (string * totals) list -> (string * totals) list
(** Hot-scenario attribution: the [k] rows with the most simulated
    events, ties broken by label — a deterministic ranking. *)

val attribution_json : shards:int -> (string * totals) list -> Mk_engine.Json.t
(** The attribution table as a JSON list, one object per row with the
    label and the row's {!totals} fields. *)
