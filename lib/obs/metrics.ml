(* The registry is a hash table of mutable cells, touched from the hot
   paths of a single simulation run (one domain at a time — see
   Hook).  Everything order-sensitive goes through
   Analysis.Sorted.bindings_by, never Hashtbl.iter/fold (mklint R3),
   so the rendered output depends only on the table's contents. *)

type histogram = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;  (** (bit-length of value, count), sparse *)
}

type value =
  | Counter of int
  | Gauge of { last : int; peak : int }
  | Histogram of histogram

(* log2 histogram: bucket index = number of bits in the value, so
   bucket [i] covers [2^(i-1), 2^i).  64 buckets cover every
   non-negative int. *)
let bucket_count = 64

let bucket_of v =
  let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
  if v <= 0 then 0 else bits v 0

type cell =
  | Ctr of int ref
  | Gge of { mutable last : int; mutable peak : int }
  | Hst of {
      mutable hcount : int;
      mutable hsum : int;
      mutable hmin : int;
      mutable hmax : int;
      counts : int array;
    }

type t = (Key.t, cell) Hashtbl.t

let create () : t = Hashtbl.create 64

let wrong_kind key =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered with another kind"
       (Key.to_string key))

let add t key n =
  match Hashtbl.find_opt t key with
  | Some (Ctr r) -> r := !r + n
  | Some _ -> wrong_kind key
  | None -> Hashtbl.replace t key (Ctr (ref n))

let set_gauge t key v =
  match Hashtbl.find_opt t key with
  | Some (Gge g) ->
      g.last <- v;
      if v > g.peak then g.peak <- v
  | Some _ -> wrong_kind key
  | None -> Hashtbl.replace t key (Gge { last = v; peak = v })

let observe t key v =
  match Hashtbl.find_opt t key with
  | Some (Hst h) ->
      h.hcount <- h.hcount + 1;
      h.hsum <- h.hsum + v;
      if v < h.hmin then h.hmin <- v;
      if v > h.hmax then h.hmax <- v;
      let b = bucket_of v in
      h.counts.(b) <- h.counts.(b) + 1
  | Some _ -> wrong_kind key
  | None ->
      let counts = Array.make bucket_count 0 in
      counts.(bucket_of v) <- 1;
      Hashtbl.replace t key
        (Hst { hcount = 1; hsum = v; hmin = v; hmax = v; counts })

let counter t key =
  match Hashtbl.find_opt t key with Some (Ctr r) -> !r | _ -> 0

let value_of_cell = function
  | Ctr r -> Counter !r
  | Gge { last; peak } -> Gauge { last; peak }
  | Hst { hcount; hsum; hmin; hmax; counts } ->
      let buckets = ref [] in
      for b = bucket_count - 1 downto 0 do
        if counts.(b) > 0 then buckets := (b, counts.(b)) :: !buckets
      done;
      Histogram
        { count = hcount; sum = hsum; min = hmin; max = hmax; buckets = !buckets }

let bindings t =
  List.map
    (fun (k, c) -> (k, value_of_cell c))
    (Mk_analysis.Sorted.bindings_by ~cmp:Key.compare t)

(* Cross-run accumulation: counters add, gauges keep the later last
   and the overall peak, histograms sum pointwise. *)
let absorb t kvs =
  List.iter
    (fun (key, v) ->
      match v with
      | Counter n -> add t key n
      | Gauge { last; peak } -> (
          match Hashtbl.find_opt t key with
          | Some (Gge g) ->
              g.last <- last;
              if peak > g.peak then g.peak <- peak
          | Some _ -> wrong_kind key
          | None -> Hashtbl.replace t key (Gge { last; peak }))
      | Histogram h -> (
          let cell =
            match Hashtbl.find_opt t key with
            | Some (Hst _ as c) -> c
            | Some _ -> wrong_kind key
            | None ->
                let c =
                  Hst
                    {
                      hcount = 0;
                      hsum = 0;
                      hmin = max_int;
                      hmax = min_int;
                      counts = Array.make bucket_count 0;
                    }
                in
                Hashtbl.replace t key c;
                c
          in
          match cell with
          | Hst dst ->
              dst.hcount <- dst.hcount + h.count;
              dst.hsum <- dst.hsum + h.sum;
              if h.min < dst.hmin then dst.hmin <- h.min;
              if h.max > dst.hmax then dst.hmax <- h.max;
              List.iter
                (fun (b, c) -> dst.counts.(b) <- dst.counts.(b) + c)
                h.buckets
          | Ctr _ | Gge _ -> assert false))
    kvs

let value_to_json =
  let open Mk_engine.Json in
  function
  | Counter n -> Int n
  | Gauge { last; peak } -> Obj [ ("last", Int last); ("peak", Int peak) ]
  | Histogram h ->
      Obj
        [
          ("count", Int h.count);
          ("sum", Int h.sum);
          ("min", Int h.min);
          ("max", Int h.max);
          ( "buckets",
            List
              (List.map
                 (fun (bits, c) ->
                   Obj [ ("bits", Int bits); ("count", Int c) ])
                 h.buckets) );
        ]

let value_to_string = function
  | Counter n -> string_of_int n
  | Gauge { last; peak } -> Printf.sprintf "%d (peak %d)" last peak
  | Histogram h ->
      Printf.sprintf "n=%d sum=%d min=%d max=%d" h.count h.sum h.min h.max

let to_json t =
  Mk_engine.Json.Obj
    (List.map
       (fun (k, v) -> (Key.to_string k, value_to_json v))
       (bindings t))
