type t = {
  label : string;
  nodes : int;
  seed : int;
  metrics : Metrics.t;
  trace : Trace.t option;
  mutable node : int;
}

type snapshot = {
  snap_label : string;
  snap_nodes : int;
  snap_seed : int;
  snap_metrics : (Key.t * Metrics.value) list;
  snap_events : Trace.event list;
}

let make ?(trace = false) ~label ~nodes ~seed () =
  {
    label;
    nodes;
    seed;
    metrics = Metrics.create ();
    trace = (if trace then Some (Trace.create ()) else None);
    node = Key.job_wide;
  }

let label t = t.label
let metrics t = t.metrics
let tracing t = Option.is_some t.trace
let set_node t n = t.node <- n
let node t = t.node

let key t ~node ~subsystem ~name =
  { Key.kernel = t.label; node; subsystem; name }

let count_node t ~node ~subsystem ~name n =
  Metrics.add t.metrics (key t ~node ~subsystem ~name) n

let count t ~subsystem ~name n =
  count_node t ~node:t.node ~subsystem ~name n

let observe t ~subsystem ~name v =
  Metrics.observe t.metrics (key t ~node:t.node ~subsystem ~name) v

let gauge t ~subsystem ~name v =
  Metrics.set_gauge t.metrics (key t ~node:t.node ~subsystem ~name) v

let span t ~ts ~dur ~node ~tid ~cat ~name ?args () =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.span tr ~ts ~dur ~pid:node ~tid ~cat ~name ?args ()

let instant t ~ts ~node ~tid ~cat ~name ?args () =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.instant tr ~ts ~pid:node ~tid ~cat ~name ?args ()

let snapshot t =
  {
    snap_label = t.label;
    snap_nodes = t.nodes;
    snap_seed = t.seed;
    snap_metrics = Metrics.bindings t.metrics;
    snap_events = (match t.trace with None -> [] | Some tr -> Trace.events tr);
  }
