(** Cross-run aggregation: merges per-run {!Recorder.snapshot}s into
    one metrics registry and one trace.

    The experiment layer fans runs out across domains but calls
    {!add} sequentially, in input order, after the fan-out returns.
    Pids (one per cluster node, per run) and event sequence numbers
    are assigned at add time, so the merged artifacts depend only on
    that deterministic order — the sequential and [-j N] traces are
    byte-identical. *)

type t

val create : ?trace:bool -> unit -> t
(** [trace] (default false) controls whether per-run recorders should
    buffer events; collectors pass it through to {!Recorder.make}. *)

val trace_enabled : t -> bool
val runs : t -> int
(** Snapshots absorbed so far. *)

val add : t -> Recorder.snapshot -> unit
(** Merge one run in.  Call from one domain only, in input order. *)

val metrics : t -> Metrics.t
val bindings : t -> (Key.t * Metrics.value) list
val metrics_json : t -> Mk_engine.Json.t

val events : t -> Trace.event list
(** Rebased events in add order (use {!Trace.sort} for time order). *)

val trace_json : t -> Mk_engine.Json.t
(** The Perfetto-loadable Chrome trace document: one process per
    (run, node) with human-readable names, one thread per track. *)
