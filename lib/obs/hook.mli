(** Ambient hook sites: how instrumented layers reach the active
    {!Recorder} without threading it through their APIs.

    The slot is domain-local ([Domain.DLS], the {!Mk_engine.Scratch}
    pattern — not a global [ref], which mklint R4 would rightly
    reject): under a {!Mk_engine.Pool} fan-out every worker domain
    has its own slot, so concurrent runs cannot observe each other's
    recorders.  {!Mk_cluster.Driver.run} installs its recorder with
    {!with_recorder} for the duration of the run.

    When no recorder is installed (the Null sink — the initial state)
    every helper is a DLS read and a [match]: zero allocation, which
    is what "zero-cost when disabled" means here; [bench perf]
    measures it rather than asserting it. *)

val active : unit -> Recorder.t option

val with_recorder : Recorder.t -> (unit -> 'a) -> 'a
(** Install [r] for the call's duration; restores the previous slot
    value on the way out (exceptions included). *)

val count : subsystem:string -> name:string -> int -> unit
(** Bump a counter on the active recorder, charged to its current
    node; no-op when disabled. *)

val count_node : node:int -> subsystem:string -> name:string -> int -> unit
(** As {!count} with an explicit node (fault events know the node
    they hit regardless of the attribution cursor). *)

val observe : subsystem:string -> name:string -> int -> unit
val gauge : subsystem:string -> name:string -> int -> unit
