open Mk_engine

type event = {
  ts : Units.time;
  dur : Units.time option;
  pid : int;
  tid : int;
  cat : string;
  name : string;
  args : (string * Json.t) list;
  seq : int;
}

type t = { mutable events : event list; mutable next_seq : int }

let create () = { events = []; next_seq = 0 }

let record t ~ts ~dur ~pid ~tid ~cat ~name ~args =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.events <- { ts; dur; pid; tid; cat; name; args; seq } :: t.events

let span t ~ts ~dur ~pid ~tid ~cat ~name ?(args = []) () =
  record t ~ts ~dur:(Some dur) ~pid ~tid ~cat ~name ~args

let instant t ~ts ~pid ~tid ~cat ~name ?(args = []) () =
  record t ~ts ~dur:None ~pid ~tid ~cat ~name ~args

let events t = List.rev t.events
let length t = t.next_seq

(* Merge order: simulated time, then the stable per-event sequence
   number assigned at record (or re-assigned at Collect.add) time.
   Wall clock never participates, so the sorted stream is identical
   for sequential, -j N and fault-replay runs. *)
let compare_event a b =
  let c = Int.compare a.ts b.ts in
  if c <> 0 then c else Int.compare a.seq b.seq

let sort evs = List.sort compare_event evs

(* Chrome trace-event JSON (the "JSON Array Format" with a
   [traceEvents] wrapper), loadable by Perfetto and chrome://tracing.
   [ts]/[dur] are microseconds by convention; the DES clock is in
   nanoseconds, so values are scaled by 1e-3. *)
let us_of_ns ns = Json.Float (Int.to_float ns /. 1000.)

let meta ~pid ?tid ~name ~value () =
  Json.Obj
    ([ ("name", Json.String name); ("ph", Json.String "M") ]
    @ [ ("pid", Json.Int pid) ]
    @ (match tid with None -> [] | Some tid -> [ ("tid", Json.Int tid) ])
    @ [ ("args", Json.Obj [ ("name", Json.String value) ]) ])

let event_to_json e =
  Json.Obj
    ([
       ("name", Json.String e.name);
       ("cat", Json.String e.cat);
       ("ph", Json.String (match e.dur with Some _ -> "X" | None -> "i"));
       ("ts", us_of_ns e.ts);
     ]
    @ (match e.dur with Some d -> [ ("dur", us_of_ns d) ] | None -> [ ("s", Json.String "t") ])
    @ [ ("pid", Json.Int e.pid); ("tid", Json.Int e.tid) ]
    @ match e.args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let to_json ~processes ~threads evs =
  let metas =
    List.map (fun (pid, name) -> meta ~pid ~name:"process_name" ~value:name ()) processes
    @ List.map
        (fun (pid, tid, name) ->
          meta ~pid ~tid ~name:"thread_name" ~value:name ())
        threads
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metas @ List.map event_to_json (sort evs)));
      ("displayTimeUnit", Json.String "ns");
    ]
