type t = { kernel : string; node : int; subsystem : string; name : string }

let job_wide = -1

let v ?(node = job_wide) ~kernel ~subsystem ~name () =
  { kernel; node; subsystem; name }

let compare a b =
  let c = String.compare a.kernel b.kernel in
  if c <> 0 then c
  else
    let c = Int.compare a.node b.node in
    if c <> 0 then c
    else
      let c = String.compare a.subsystem b.subsystem in
      if c <> 0 then c else String.compare a.name b.name

let node_label n = if n = job_wide then "*" else string_of_int n

let to_string k =
  Printf.sprintf "%s/%s/%s/%s" k.kernel (node_label k.node) k.subsystem k.name
