let kernel = "engine"
let subsystem = "sched"

let key ~node name = Key.v ~node ~kernel ~subsystem ~name ()

let to_metrics (s : Mk_engine.Pool.stats) =
  let m = Metrics.create () in
  for i = 0 to s.executors - 1 do
    Metrics.set_gauge m (key ~node:i "executed") s.executed.(i);
    Metrics.add m (key ~node:i "local_pops") s.local_pops.(i);
    Metrics.add m (key ~node:i "steals") s.steals.(i);
    Metrics.add m (key ~node:i "failed_steals") s.failed_steals.(i);
    Metrics.add m (key ~node:i "injected_runs") s.injected_runs.(i)
  done;
  m

let to_json s = Metrics.to_json (to_metrics s)
