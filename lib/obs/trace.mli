(** The trace recorder: spans and instant events on the simulated DES
    clock, exported as Chrome trace-event JSON (Perfetto-loadable).

    Timestamps are the simulator's nanosecond {!Mk_engine.Units.time}
    values — never wall clock — and the export order is
    [(ts, seq)] where [seq] is a stable per-event sequence number
    assigned at record time.  Identical runs therefore serialize to
    identical bytes whatever machine, job count or replay produced
    them (the determinism contract in docs/OBSERVABILITY.md). *)

type event = {
  ts : Mk_engine.Units.time;  (** simulated time, ns *)
  dur : Mk_engine.Units.time option;
      (** [Some d]: a complete span (ph "X"); [None]: an instant (ph "i") *)
  pid : int;  (** Perfetto process = cluster node *)
  tid : int;  (** Perfetto thread = track within the node *)
  cat : string;
  name : string;
  args : (string * Mk_engine.Json.t) list;
  seq : int;  (** stable record order; the sort tie-break *)
}

type t

val create : unit -> t

val span :
  t ->
  ts:Mk_engine.Units.time ->
  dur:Mk_engine.Units.time ->
  pid:int ->
  tid:int ->
  cat:string ->
  name:string ->
  ?args:(string * Mk_engine.Json.t) list ->
  unit ->
  unit

val instant :
  t ->
  ts:Mk_engine.Units.time ->
  pid:int ->
  tid:int ->
  cat:string ->
  name:string ->
  ?args:(string * Mk_engine.Json.t) list ->
  unit ->
  unit

val events : t -> event list
(** In record order. *)

val length : t -> int

val compare_event : event -> event -> int
(** [(ts, seq)] lexicographic — the only order traces are merged or
    serialized in. *)

val sort : event list -> event list

val to_json :
  processes:(int * string) list ->
  threads:(int * int * string) list ->
  event list ->
  Mk_engine.Json.t
(** The Chrome trace document: process/thread-name metadata events
    followed by the given events in {!compare_event} order, wrapped
    as [{"traceEvents": [...], "displayTimeUnit": "ns"}].  [ts] and
    [dur] are emitted in microseconds (floats), as the format
    specifies. *)
