(** Intel Xeon Phi 7250 "Knights Landing" node configurations.

    The experiments in the paper run Oakforest-PACS nodes in SNC-4
    flat mode: MCDRAM is addressable memory (not cache), and the chip
    is split into four quadrants, giving four DDR4 NUMA domains that
    own the cores (domains 0–3) and four core-less MCDRAM domains
    (4–7).  Quadrant flat mode — one DDR4 domain + one MCDRAM domain —
    is provided as well because the paper contrasts the two when
    discussing Linux's [numactl -p] limitation. *)

type mode = Snc4_flat | Quadrant_flat

val cores : int
(** 68 physical cores on the 7250. *)

val threads_per_core : int
(** 4 hardware threads per core. *)

val mcdram_total : Mk_engine.Units.size
(** 16 GiB of on-package MCDRAM. *)

val ddr4_total : Mk_engine.Units.size
(** 96 GiB of DDR4. *)

val topology : mode -> Topology.t

val mcdram_domains : mode -> Numa.id list
val ddr4_domains : mode -> Numa.id list

val mode_to_string : mode -> string
