open Mk_engine

type mode = Snc4_flat | Quadrant_flat

let cores = 68
let threads_per_core = 4
let mcdram_total = Units.of_gib 16
let ddr4_total = Units.of_gib 96

(* SNC-4 distances, following the SLIT Linux exposes on KNL: local 10,
   DDR4 in another quadrant 21, MCDRAM in the same quadrant 31, MCDRAM
   in another quadrant 41.  The large MCDRAM distances are exactly why
   standard NUMA policies cannot express "MCDRAM first, then spill to
   my local DDR4" on Linux (Section II-D3). *)
let snc4_distance i j =
  let quadrant d = d mod 4 in
  let is_mcdram d = d >= 4 in
  if i = j then 10
  else
    match (is_mcdram i, is_mcdram j) with
    | false, false -> 21
    | _ -> if quadrant i = quadrant j then 31 else 41

let quadrant_distance i j = if i = j then 10 else 31

let snc4_domains =
  List.init 8 (fun id ->
      if id < 4 then
        { Numa.id; kind = Memory_kind.Ddr4; capacity = ddr4_total / 4; quadrant = id }
      else
        {
          Numa.id;
          kind = Memory_kind.Mcdram;
          capacity = mcdram_total / 4;
          quadrant = id - 4;
        })

let quadrant_domains =
  [
    { Numa.id = 0; kind = Memory_kind.Ddr4; capacity = ddr4_total; quadrant = 0 };
    { Numa.id = 1; kind = Memory_kind.Mcdram; capacity = mcdram_total; quadrant = 0 };
  ]

let topology = function
  | Snc4_flat ->
      let numa = Numa.make ~domains:snc4_domains ~distance:snc4_distance in
      (* 68 cores over 4 quadrants: 17 per quadrant. *)
      Topology.make ~cores ~threads_per_core ~numa ~core_domain:(fun c -> c / 17)
  | Quadrant_flat ->
      let numa = Numa.make ~domains:quadrant_domains ~distance:quadrant_distance in
      Topology.make ~cores ~threads_per_core ~numa ~core_domain:(fun _ -> 0)

let mcdram_domains = function
  | Snc4_flat -> [ 4; 5; 6; 7 ]
  | Quadrant_flat -> [ 1 ]

let ddr4_domains = function Snc4_flat -> [ 0; 1; 2; 3 ] | Quadrant_flat -> [ 0 ]

let mode_to_string = function
  | Snc4_flat -> "SNC-4 flat"
  | Quadrant_flat -> "quadrant flat"
