type core = int
type cpu = int

type t = {
  cores : int;
  threads_per_core : int;
  numa : Numa.t;
  core_domain : Numa.id array;
}

let make ~cores ~threads_per_core ~numa ~core_domain =
  if cores <= 0 then invalid_arg "Topology.make: cores must be positive";
  if threads_per_core <= 0 then
    invalid_arg "Topology.make: threads_per_core must be positive";
  let core_domain =
    Array.init cores (fun c ->
        let d = core_domain c in
        if d < 0 || d >= Numa.count numa then
          invalid_arg (Printf.sprintf "Topology.make: core %d maps to bad domain %d" c d);
        d)
  in
  { cores; threads_per_core; numa; core_domain }

let cores t = t.cores
let threads_per_core t = t.threads_per_core
let cpus t = t.cores * t.threads_per_core
let numa t = t.numa

let check_cpu t cpu =
  if cpu < 0 || cpu >= cpus t then
    invalid_arg (Printf.sprintf "Topology: bad cpu %d" cpu)

let core_of_cpu t cpu =
  check_cpu t cpu;
  cpu mod t.cores

let thread_of_cpu t cpu =
  check_cpu t cpu;
  cpu / t.cores

let cpu_of t ~core ~thread =
  if core < 0 || core >= t.cores then invalid_arg "Topology.cpu_of: bad core";
  if thread < 0 || thread >= t.threads_per_core then
    invalid_arg "Topology.cpu_of: bad thread";
  core + (t.cores * thread)

let domain_of_core t core =
  if core < 0 || core >= t.cores then
    invalid_arg (Printf.sprintf "Topology.domain_of_core: bad core %d" core);
  t.core_domain.(core)

let domain_of_cpu t cpu = domain_of_core t (core_of_cpu t cpu)

let cores_of_domain t id =
  List.filter (fun c -> t.core_domain.(c) = id) (List.init t.cores (fun c -> c))

let siblings t cpu =
  let core = core_of_cpu t cpu in
  List.init t.threads_per_core (fun thread -> cpu_of t ~core ~thread)

let quadrant_of_core t core = (Numa.domain t.numa (domain_of_core t core)).Numa.quadrant
