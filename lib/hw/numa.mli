(** NUMA domains and inter-domain distances.

    A node exposes a set of NUMA domains, each backed by one memory
    kind and (possibly) owning CPU cores.  In KNL's SNC-4 flat mode
    there are eight domains: four DDR4 quadrants with cores and four
    core-less MCDRAM quadrants.  Distances follow the Linux SLIT
    convention (10 = local). *)

type id = int

type domain = {
  id : id;
  kind : Memory_kind.t;
  capacity : Mk_engine.Units.size;
  quadrant : int;  (** Physical quadrant the domain lives in, 0-3. *)
}

type t

val make : domains:domain list -> distance:(id -> id -> int) -> t

val domains : t -> domain list
val domain : t -> id -> domain
val count : t -> int

val distance : t -> id -> id -> int
(** SLIT-style distance; [distance t i i = 10]. *)

val capacity : t -> id -> Mk_engine.Units.size
val kind : t -> id -> Memory_kind.t

val domains_of_kind : t -> Memory_kind.t -> domain list

val nearest : t -> from:id -> kind:Memory_kind.t -> id option
(** Closest domain of a given kind, by distance then by id. *)

val by_distance : t -> from:id -> id list
(** All domain ids ordered by increasing distance from [from]
    (ties broken by id); [from] itself comes first. *)
