open Mk_engine

type placement = { mcdram_fraction : float }

let all_mcdram = { mcdram_fraction = 1.0 }
let all_ddr4 = { mcdram_fraction = 0.0 }

let mixed ~mcdram_fraction =
  if mcdram_fraction < 0.0 || mcdram_fraction > 1.0 then
    invalid_arg "Bandwidth.mixed: fraction must lie in [0,1]";
  { mcdram_fraction }

let effective p =
  let bw_m = Memory_kind.stream_bandwidth Memory_kind.Mcdram in
  let bw_d = Memory_kind.stream_bandwidth Memory_kind.Ddr4 in
  let f = p.mcdram_fraction in
  (* Harmonic mix: streaming 1 byte costs f/bw_m + (1-f)/bw_d. *)
  1.0 /. ((f /. bw_m) +. ((1.0 -. f) /. bw_d))

let per_rank p ~ranks =
  if ranks <= 0 then invalid_arg "Bandwidth.per_rank: ranks must be positive";
  effective p /. float_of_int ranks

let stream_time ~bytes p ~ranks =
  Units.transfer_time ~bytes ~bw:(per_rank p ~ranks)
