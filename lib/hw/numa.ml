type id = int

type domain = {
  id : id;
  kind : Memory_kind.t;
  capacity : Mk_engine.Units.size;
  quadrant : int;
}

type t = { domains : domain array; distance : int array array }

let make ~domains ~distance =
  let domains = Array.of_list domains in
  Array.iteri
    (fun i d ->
      if d.id <> i then invalid_arg "Numa.make: domain ids must be 0..n-1 in order")
    domains;
  let n = Array.length domains in
  let dist = Array.init n (fun i -> Array.init n (fun j -> distance i j)) in
  for i = 0 to n - 1 do
    if dist.(i).(i) <> 10 then invalid_arg "Numa.make: self distance must be 10"
  done;
  { domains; distance = dist }

let domains t = Array.to_list t.domains

let domain t id =
  if id < 0 || id >= Array.length t.domains then
    invalid_arg (Printf.sprintf "Numa.domain: no domain %d" id);
  t.domains.(id)

let count t = Array.length t.domains
let distance t i j = t.distance.(i).(j)
let capacity t id = (domain t id).capacity
let kind t id = (domain t id).kind

let domains_of_kind t k =
  List.filter (fun d -> Memory_kind.equal d.kind k) (domains t)

let by_distance t ~from =
  let ids = List.init (count t) (fun i -> i) in
  List.sort
    (fun a b ->
      match compare (distance t from a) (distance t from b) with
      | 0 -> compare a b
      | c -> c)
    ids

let nearest t ~from ~kind:k =
  let candidates =
    List.filter (fun id -> Memory_kind.equal (kind t id) k) (by_distance t ~from)
  in
  match candidates with [] -> None | id :: _ -> Some id
