(** Node-level memory bandwidth model.

    HPC kernels on KNL are overwhelmingly memory-bandwidth bound, so
    the model reduces a compute phase to "bytes streamed" and divides
    node bandwidth among the ranks using it.  When a rank's working
    set is split between MCDRAM and DDR4, the achieved bandwidth is
    the harmonic mix of the two: time = bytes_m/bw_m + bytes_d/bw_d. *)

type placement = {
  mcdram_fraction : float;  (** Share of streamed bytes served by MCDRAM. *)
}

val all_mcdram : placement
val all_ddr4 : placement
val mixed : mcdram_fraction:float -> placement

val effective : placement -> float
(** Node-aggregate bandwidth in bytes/ns for the given placement,
    harmonic mix of {!Memory_kind.stream_bandwidth}. *)

val per_rank : placement -> ranks:int -> float
(** Fair share of node bandwidth when [ranks] ranks stream
    concurrently. *)

val stream_time :
  bytes:Mk_engine.Units.size -> placement -> ranks:int -> Mk_engine.Units.time
(** Time for one rank to stream [bytes] of its working set. *)
