(** Memory technologies present in a node.

    The KNL processor pairs 16 GB of on-package MCDRAM (high
    bandwidth, slightly higher latency) with 96 GB of DDR4.  The
    bandwidth ratio between the two is what makes memory placement
    decisions — the subject of much of the paper — matter. *)

type t = Mcdram | Ddr4

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val stream_bandwidth : t -> float
(** Sustained per-node STREAM-like bandwidth, bytes/ns (≈ GB/s).
    MCDRAM ≈ 480 GB/s, DDR4 ≈ 90 GB/s on KNL. *)

val load_latency : t -> Mk_engine.Units.time
(** Idle load-to-use latency in ns.  MCDRAM is slightly slower to
    first word than DDR4 (≈ 170 vs 130 ns on KNL). *)

val all : t list
