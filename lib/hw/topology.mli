(** CPU topology of a compute node.

    A node has [cores] physical cores, each with [threads_per_core]
    hardware threads.  Cores belong to a NUMA domain (in SNC-4, only
    the four DDR4 domains own cores).  Logical CPU numbering follows
    Linux on KNL: logical cpu = core + cores * thread. *)

type core = int
(** Physical core index, [0, cores). *)

type cpu = int
(** Logical CPU (hardware thread) index, [0, cores * threads_per_core). *)

type t

val make :
  cores:int ->
  threads_per_core:int ->
  numa:Numa.t ->
  core_domain:(core -> Numa.id) ->
  t
(** @raise Invalid_argument if [core_domain] maps a core to a
    domain without the right to own cores (an MCDRAM domain is
    allowed here; validation only checks the id is in range). *)

val cores : t -> int
val threads_per_core : t -> int
val cpus : t -> int
val numa : t -> Numa.t

val core_of_cpu : t -> cpu -> core
val thread_of_cpu : t -> cpu -> int
val cpu_of : t -> core:core -> thread:int -> cpu

val domain_of_core : t -> core -> Numa.id
val domain_of_cpu : t -> cpu -> Numa.id
val cores_of_domain : t -> Numa.id -> core list

val siblings : t -> cpu -> cpu list
(** Hardware threads sharing the same physical core, including [cpu]. *)

val quadrant_of_core : t -> core -> int
