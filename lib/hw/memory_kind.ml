type t = Mcdram | Ddr4

let equal a b = a = b
let compare = Stdlib.compare
let to_string = function Mcdram -> "MCDRAM" | Ddr4 -> "DDR4"
let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Bytes per nanosecond equals GB/s to within 7%; we use the published
   sustained figures for KNL in flat mode. *)
let stream_bandwidth = function Mcdram -> 480.0 | Ddr4 -> 90.0

let load_latency = function Mcdram -> 170 | Ddr4 -> 130

let all = [ Mcdram; Ddr4 ]
