type t = {
  nodes : int;
  plan : Plan.t;
  alive : bool array;
  compute_factor : float array;
  daemon_left : int array;
  link_factor : float array;
  flap : int array;
  nic_extra : int array;
  proxy_down : bool array;
  thread_lost : bool array;
  mutable newly_crashed : int list;
  mutable events_applied : int;
  mutable last_iteration : int;
}

let make ~plan ~nodes =
  if nodes <= 0 then invalid_arg "State.make: nodes must be positive";
  {
    nodes;
    plan;
    alive = Array.make nodes true;
    compute_factor = Array.make nodes 1.0;
    daemon_left = Array.make nodes 0;
    link_factor = Array.make nodes 1.0;
    flap = Array.make nodes 0;
    nic_extra = Array.make nodes 0;
    proxy_down = Array.make nodes false;
    thread_lost = Array.make nodes false;
    newly_crashed = [];
    events_applied = 0;
    last_iteration = -1;
  }

(* Plain labels for counter names; Plan.pp_kind is a formatter and
   interpolates factors, which would explode counter cardinality. *)
let kind_label : Plan.kind -> string = function
  | Plan.Node_crash -> "node-crash"
  | Plan.Core_degrade _ -> "core-degrade"
  | Plan.Link_degrade _ -> "link-degrade"
  | Plan.Link_flap _ -> "link-flap"
  | Plan.Nic_stall _ -> "nic-stall"
  | Plan.Daemon_hang _ -> "daemon-hang"
  | Plan.Proxy_crash -> "proxy-crash"
  | Plan.Thread_loss -> "thread-loss"

let apply t (e : Plan.event) =
  let n = e.node in
  if n >= 0 && n < t.nodes then begin
    t.events_applied <- t.events_applied + 1;
    Mk_obs.Hook.count_node ~node:n ~subsystem:"fault"
      ~name:("events:" ^ kind_label e.kind) 1;
    match e.kind with
    | Plan.Node_crash ->
        if t.alive.(n) then begin
          t.alive.(n) <- false;
          t.newly_crashed <- n :: t.newly_crashed
        end
    | Plan.Core_degrade { factor } ->
        t.compute_factor.(n) <- t.compute_factor.(n) *. factor
    | Plan.Link_degrade { factor } ->
        t.link_factor.(n) <- t.link_factor.(n) *. factor
    | Plan.Link_flap { failures } -> t.flap.(n) <- t.flap.(n) + failures
    | Plan.Nic_stall { extra } -> t.nic_extra.(n) <- t.nic_extra.(n) + extra
    | Plan.Daemon_hang { iterations } ->
        t.daemon_left.(n) <- max t.daemon_left.(n) iterations
    | Plan.Proxy_crash -> t.proxy_down.(n) <- true
    | Plan.Thread_loss -> t.thread_lost.(n) <- true
  end

let begin_iteration t ~iteration =
  if iteration <= t.last_iteration then
    invalid_arg "State.begin_iteration: iterations must increase";
  (* Transients from the previous iteration expire. *)
  Array.fill t.flap 0 t.nodes 0;
  Array.fill t.nic_extra 0 t.nodes 0;
  Array.fill t.proxy_down 0 t.nodes false;
  for n = 0 to t.nodes - 1 do
    if t.daemon_left.(n) > 0 then t.daemon_left.(n) <- t.daemon_left.(n) - 1
  done;
  List.iter
    (fun (e : Plan.event) ->
      if e.iteration > t.last_iteration && e.iteration <= iteration then
        apply t e)
    t.plan.Plan.events;
  t.last_iteration <- iteration

let is_alive t n = t.alive.(n)
let alive_array t = t.alive

let alive_count t =
  Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.alive

let compute_factor t n = t.compute_factor.(n)
let daemon_hung t n = t.daemon_left.(n) > 0
let link_factor t n = t.link_factor.(n)
let flap_failures t n = t.flap.(n)
let nic_extra t n = t.nic_extra.(n)
let proxy_down t n = t.proxy_down.(n)
let thread_lost t n = t.thread_lost.(n)

let take_newly_crashed t =
  let l = List.rev t.newly_crashed in
  t.newly_crashed <- [];
  l

let faulted t =
  let any p = Array.exists p in
  any not t.alive
  || any (fun f -> f <> 1.0) t.compute_factor
  || any (fun n -> n > 0) t.daemon_left
  || any (fun f -> f <> 1.0) t.link_factor
  || any (fun n -> n > 0) t.flap
  || any (fun n -> n > 0) t.nic_extra
  || any Fun.id t.proxy_down
  || any Fun.id t.thread_lost

let events_applied t = t.events_applied
let dead_count t = t.nodes - alive_count t
