type policy = {
  timeout : Mk_engine.Units.time;
  max_retries : int;
  backoff : Mk_engine.Units.time;
  backoff_cap : Mk_engine.Units.time;
}

(* A healthy proxy round trip is ~5 us; declare an attempt dead at
   20 us and give up after ~150 us total. *)
let default_ikc =
  { timeout = 20_000; max_retries = 3; backoff = 10_000; backoff_cap = 200_000 }

(* A healthy internode message lands within tens of microseconds;
   give a peer ~3.4 ms before routing around it. *)
let default_mpi =
  {
    timeout = 500_000;
    max_retries = 3;
    backoff = 200_000;
    backoff_cap = 2_000_000;
  }

let backoff_delay p ~retry =
  if retry < 1 then invalid_arg "Retry.backoff_delay: retry must be >= 1";
  (* Shift saturates long before the cap matters. *)
  let exp = min (retry - 1) 30 in
  min p.backoff_cap (p.backoff * (1 lsl exp))

let retry_time p ~failures =
  if failures <= 0 then 0
  else begin
    let failures = min failures (p.max_retries + 1) in
    let t = ref (failures * p.timeout) in
    for retry = 1 to failures - 1 do
      t := !t + backoff_delay p ~retry
    done;
    Mk_obs.Hook.count ~subsystem:"retry" ~name:"attempts" failures;
    Mk_obs.Hook.count ~subsystem:"retry" ~name:"backoff_ns"
      (!t - (failures * p.timeout));
    !t
  end

let give_up_time p = retry_time p ~failures:(p.max_retries + 1)
