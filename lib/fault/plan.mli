(** Deterministic fault plans.

    A plan is an explicit timeline of fault events — which node is hit
    by which fault at which simulated iteration.  Plans are either
    written down literally (the demo plans below) or generated from a
    rate {!spec} through the shared split PRNG, so the same
    [(spec, nodes, iterations, seed)] tuple always yields the same
    timeline: fault injection inherits the simulator's determinism
    contract instead of weakening it.

    The plan only *schedules* faults; what each fault means on a given
    kernel (containment semantics) is decided by the cluster driver —
    see docs/FAULTS.md for the containment matrix. *)

(** One fault kind.  Durations are in simulated iterations, times in
    nanoseconds ({!Mk_engine.Units.time}). *)
type kind =
  | Node_crash  (** whole node dies; collectives must route around it *)
  | Core_degrade of { factor : float }
      (** frequency throttle: compute slowed by [factor] (> 1.0), permanent *)
  | Link_degrade of { factor : float }
      (** fabric link runs at reduced bandwidth: wire time x [factor], permanent *)
  | Link_flap of { failures : int }
      (** link drops [failures] consecutive sends this iteration; each
          failed attempt is retried under the MPI policy *)
  | Nic_stall of { extra : Mk_engine.Units.time }
      (** NIC control path wedged: every control-path message on the
          node pays [extra] this iteration *)
  | Daemon_hang of { iterations : int }
      (** Linux-side daemons hang for [iterations] iterations: on
          Linux they spill onto app cores; on an LWK they only slow
          the offload service path *)
  | Proxy_crash
      (** McKernel proxy process dies this iteration; in-flight IKC
          requests time out, the proxy is respawned *)
  | Thread_loss
      (** mOS offload-target Linux core lost, permanent; migrated
          threads fail over to the next NUMA-matched core *)

type event = { iteration : int; node : int; kind : kind }

type t = { label : string; events : event list }
(** Events are kept sorted by [(iteration, node)]. *)

val empty : t
(** No faults.  Running with [empty] must be indistinguishable from
    running without fault injection at all. *)

val make : label:string -> event list -> t
(** Sorts the events; raises [Invalid_argument] on a negative
    iteration or node. *)

val is_empty : t -> bool

val events_at : t -> iteration:int -> event list

(** {1 Generated plans} *)

(** Expected number of events of each kind, per node, over the whole
    run.  The per-iteration injection probability for a kind is
    [rate /. iterations], clamped to [0, 1]. *)
type spec = {
  node_crash : float;
  core_degrade : float;
  link_degrade : float;
  link_flap : float;
  nic_stall : float;
  daemon_hang : float;
  proxy_crash : float;
  thread_loss : float;
}

val zero_spec : spec

val scale_spec : spec -> float -> spec
(** Multiply every rate; used for escalating-rate sweeps. *)

val preset_names : string list
(** Valid arguments to {!preset_spec}: one per fault kind plus
    ["mixed"], a blend weighted towards the faults the paper's
    isolation story is about (daemon hangs, proxy crashes). *)

val preset_spec : string -> rate:float -> spec option
(** [preset_spec name ~rate] is the spec whose only (or, for
    ["mixed"], total) expected event count per node is [rate];
    [None] for an unknown name. *)

val generate :
  spec:spec -> nodes:int -> iterations:int -> seed:int -> t
(** Deterministic: each node draws from its own {!Mk_engine.Rng.split}
    child stream, so the timeline is a pure function of the arguments
    and is independent of evaluation order. *)

(** {1 Fixed demo plans} (acceptance demos, see docs/FAULTS.md) *)

val daemon_hang_demo : nodes:int -> t
(** One Linux-side daemon hang covering most of the measured
    iterations on one node. *)

val proxy_crash_demo : nodes:int -> t
(** Three proxy crashes spread over the run on two nodes. *)

(** {1 Rendering} *)

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
val to_json : t -> Mk_engine.Json.t
