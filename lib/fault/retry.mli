(** Timeout and retry-with-backoff policies.

    Every resilient path in the simulator — IKC offload requests
    surviving a proxy crash, MPI point-to-point sends over a flapping
    link, collectives discovering a dead peer — prices its recovery
    through one of these policies: each failed attempt costs one
    [timeout], each retry is preceded by an exponentially growing
    (capped) backoff, and after [max_retries] retries the caller
    gives up and escalates (marks the peer dead, respawns the proxy,
    surfaces a degraded node).

    Policies are plain data so fault experiments can sweep them; the
    defaults are calibrated against the healthy-path latencies they
    guard (an IKC round trip is microseconds, so its timeout is tens
    of microseconds; an MPI message is tens of microseconds, so its
    timeout is hundreds). *)

type policy = {
  timeout : Mk_engine.Units.time;
      (** how long one attempt waits before being declared failed *)
  max_retries : int;  (** retries after the first attempt *)
  backoff : Mk_engine.Units.time;  (** delay before the first retry *)
  backoff_cap : Mk_engine.Units.time;
      (** ceiling on the exponential backoff growth *)
}

val default_ikc : policy
(** Guards one IKC offload request (healthy round trip: ~5 us). *)

val default_mpi : policy
(** Guards one internode MPI message (healthy wire: ~1-30 us). *)

val backoff_delay : policy -> retry:int -> Mk_engine.Units.time
(** Delay before the [retry]-th retry (1-based):
    [backoff * 2^(retry-1)], capped at [backoff_cap].  Raises
    [Invalid_argument] when [retry < 1]. *)

val retry_time : policy -> failures:int -> Mk_engine.Units.time
(** Time lost to [failures] consecutive failed attempts: one timeout
    per attempt plus the backoff before each retry.  Clamped at
    {!give_up_time} — after the policy is exhausted no further time
    accrues, the failure escalates instead. *)

val give_up_time : policy -> Mk_engine.Units.time
(** Total time after which a caller abandons the peer:
    [max_retries + 1] timeouts plus every backoff delay. *)
