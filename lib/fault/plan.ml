open Mk_engine

type kind =
  | Node_crash
  | Core_degrade of { factor : float }
  | Link_degrade of { factor : float }
  | Link_flap of { failures : int }
  | Nic_stall of { extra : Units.time }
  | Daemon_hang of { iterations : int }
  | Proxy_crash
  | Thread_loss

type event = { iteration : int; node : int; kind : kind }
type t = { label : string; events : event list }

let empty = { label = "healthy"; events = [] }

let compare_event a b =
  match compare a.iteration b.iteration with
  | 0 -> compare a.node b.node
  | c -> c

let make ~label events =
  List.iter
    (fun e ->
      if e.iteration < 0 then invalid_arg "Plan.make: negative iteration";
      if e.node < 0 then invalid_arg "Plan.make: negative node")
    events;
  { label; events = List.stable_sort compare_event events }

let is_empty t = t.events = []

let events_at t ~iteration =
  List.filter (fun e -> e.iteration = iteration) t.events

type spec = {
  node_crash : float;
  core_degrade : float;
  link_degrade : float;
  link_flap : float;
  nic_stall : float;
  daemon_hang : float;
  proxy_crash : float;
  thread_loss : float;
}

let zero_spec =
  {
    node_crash = 0.;
    core_degrade = 0.;
    link_degrade = 0.;
    link_flap = 0.;
    nic_stall = 0.;
    daemon_hang = 0.;
    proxy_crash = 0.;
    thread_loss = 0.;
  }

let scale_spec s k =
  {
    node_crash = s.node_crash *. k;
    core_degrade = s.core_degrade *. k;
    link_degrade = s.link_degrade *. k;
    link_flap = s.link_flap *. k;
    nic_stall = s.nic_stall *. k;
    daemon_hang = s.daemon_hang *. k;
    proxy_crash = s.proxy_crash *. k;
    thread_loss = s.thread_loss *. k;
  }

let preset_names =
  [
    "node-crash";
    "core-degrade";
    "link-degrade";
    "link-flap";
    "nic-stall";
    "daemon-hang";
    "proxy-crash";
    "thread-loss";
    "mixed";
  ]

let preset_spec name ~rate =
  match name with
  | "node-crash" -> Some { zero_spec with node_crash = rate }
  | "core-degrade" -> Some { zero_spec with core_degrade = rate }
  | "link-degrade" -> Some { zero_spec with link_degrade = rate }
  | "link-flap" -> Some { zero_spec with link_flap = rate }
  | "nic-stall" -> Some { zero_spec with nic_stall = rate }
  | "daemon-hang" -> Some { zero_spec with daemon_hang = rate }
  | "proxy-crash" -> Some { zero_spec with proxy_crash = rate }
  | "thread-loss" -> Some { zero_spec with thread_loss = rate }
  | "mixed" ->
      Some
        {
          node_crash = 0.02 *. rate;
          core_degrade = 0.10 *. rate;
          link_degrade = 0.10 *. rate;
          link_flap = 0.05 *. rate;
          nic_stall = 0.10 *. rate;
          daemon_hang = 0.40 *. rate;
          proxy_crash = 0.20 *. rate;
          thread_loss = 0.03 *. rate;
        }
  | _ -> None

(* Fixed evaluation order: a kind's draw position in the node's
   stream never depends on which other kinds fired. *)
let generate ~spec ~nodes ~iterations ~seed =
  if nodes <= 0 then invalid_arg "Plan.generate: nodes must be positive";
  if iterations <= 0 then invalid_arg "Plan.generate: iterations must be positive";
  let prob rate =
    if iterations = 0 then 0. else Float.min 1. (Float.max 0. (rate /. float iterations))
  in
  let root = Rng.create ((seed * 2_862_933_555_777_941_757) + 1) in
  let events = ref [] in
  for node = 0 to nodes - 1 do
    let rng = Rng.split root (node + 1) in
    for iteration = 0 to iterations - 1 do
      let draw rate mk =
        let u = Rng.float rng 1.0 in
        if u < prob rate then
          events := { iteration; node; kind = mk rng } :: !events
      in
      draw spec.node_crash (fun _ -> Node_crash);
      draw spec.core_degrade (fun r ->
          Core_degrade { factor = 1.2 +. Rng.float r 0.6 });
      draw spec.link_degrade (fun r ->
          Link_degrade { factor = 1.5 +. Rng.float r 2.5 });
      draw spec.link_flap (fun r -> Link_flap { failures = 1 + Rng.int r 3 });
      draw spec.nic_stall (fun r ->
          Nic_stall { extra = 5_000 + Rng.int r 45_000 });
      draw spec.daemon_hang (fun r ->
          Daemon_hang { iterations = 2 + Rng.int r 4 });
      draw spec.proxy_crash (fun _ -> Proxy_crash);
      draw spec.thread_loss (fun _ -> Thread_loss)
    done
  done;
  make ~label:(Printf.sprintf "generated(seed=%d)" seed) !events

let daemon_hang_demo ~nodes =
  if nodes <= 0 then invalid_arg "Plan.daemon_hang_demo: nodes must be positive";
  let node = min 1 (nodes - 1) in
  make ~label:"daemon-hang-demo"
    [ { iteration = 1; node; kind = Daemon_hang { iterations = 6 } } ]

let proxy_crash_demo ~nodes =
  if nodes <= 0 then invalid_arg "Plan.proxy_crash_demo: nodes must be positive";
  let second = min 1 (nodes - 1) in
  make ~label:"proxy-crash-demo"
    [
      { iteration = 1; node = 0; kind = Proxy_crash };
      { iteration = 4; node = second; kind = Proxy_crash };
      { iteration = 7; node = 0; kind = Proxy_crash };
    ]

let pp_kind ppf = function
  | Node_crash -> Format.fprintf ppf "node-crash"
  | Core_degrade { factor } -> Format.fprintf ppf "core-degrade(x%.2f)" factor
  | Link_degrade { factor } -> Format.fprintf ppf "link-degrade(x%.2f)" factor
  | Link_flap { failures } -> Format.fprintf ppf "link-flap(%d)" failures
  | Nic_stall { extra } ->
      Format.fprintf ppf "nic-stall(+%.1fus)" (float extra /. 1e3)
  | Daemon_hang { iterations } ->
      Format.fprintf ppf "daemon-hang(%d iters)" iterations
  | Proxy_crash -> Format.fprintf ppf "proxy-crash"
  | Thread_loss -> Format.fprintf ppf "thread-loss"

let pp ppf t =
  Format.fprintf ppf "@[<v>plan %s (%d events)" t.label (List.length t.events);
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  iter %2d node %3d  %a" e.iteration e.node pp_kind
        e.kind)
    t.events;
  Format.fprintf ppf "@]"

let kind_to_json = function
  | Node_crash -> Json.Obj [ ("kind", Json.String "node-crash") ]
  | Core_degrade { factor } ->
      Json.Obj
        [ ("kind", Json.String "core-degrade"); ("factor", Json.Float factor) ]
  | Link_degrade { factor } ->
      Json.Obj
        [ ("kind", Json.String "link-degrade"); ("factor", Json.Float factor) ]
  | Link_flap { failures } ->
      Json.Obj
        [ ("kind", Json.String "link-flap"); ("failures", Json.Int failures) ]
  | Nic_stall { extra } ->
      Json.Obj [ ("kind", Json.String "nic-stall"); ("extra_ns", Json.Int extra) ]
  | Daemon_hang { iterations } ->
      Json.Obj
        [
          ("kind", Json.String "daemon-hang"); ("iterations", Json.Int iterations);
        ]
  | Proxy_crash -> Json.Obj [ ("kind", Json.String "proxy-crash") ]
  | Thread_loss -> Json.Obj [ ("kind", Json.String "thread-loss") ]

let to_json t =
  Json.Obj
    [
      ("label", Json.String t.label);
      ( "events",
        Json.List
          (List.map
             (fun e ->
               match kind_to_json e.kind with
               | Json.Obj fields ->
                   Json.Obj
                     (("iteration", Json.Int e.iteration)
                     :: ("node", Json.Int e.node)
                     :: fields)
               | j -> j)
             t.events) );
    ]
