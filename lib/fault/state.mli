(** Mutable per-run view of an unfolding fault plan.

    The cluster driver creates one state per run, calls
    {!begin_iteration} at the top of every simulated iteration, and
    reads the per-node accessors when pricing compute windows, offload
    service and fabric traffic.  Transient faults (link flap, NIC
    stall, proxy crash) last exactly one iteration; daemon hangs last
    their scheduled duration; crashes, core/link degradation and
    thread loss are permanent.

    The state does no pricing itself — it only answers "what is broken
    on node [n] right now"; the containment semantics (what a broken
    component costs on each kernel) live in the driver. *)

type t

val make : plan:Plan.t -> nodes:int -> t
(** Events whose [node] is outside [0, nodes) are ignored. *)

val begin_iteration : t -> iteration:int -> unit
(** Clears last iteration's transient faults, ages daemon hangs, then
    applies this iteration's events.  Iterations must be visited in
    increasing order starting at 0; events scheduled between two
    visited iterations are applied at the later visit. *)

(** {1 Per-node queries} (valid for the current iteration) *)

val is_alive : t -> int -> bool
val alive_array : t -> bool array  (** shared, do not mutate *)

val alive_count : t -> int

val compute_factor : t -> int -> float
(** >= 1.0; product of the node's core-degrade events. *)

val daemon_hung : t -> int -> bool
val link_factor : t -> int -> float  (** >= 1.0 *)

val flap_failures : t -> int -> int
(** Failed send attempts each message from this node suffers this
    iteration (0 when the link is healthy). *)

val nic_extra : t -> int -> Mk_engine.Units.time
(** Added control-path latency per message this iteration. *)

val proxy_down : t -> int -> bool
val thread_lost : t -> int -> bool

(** {1 Run-level bookkeeping} *)

val take_newly_crashed : t -> int list
(** Nodes that crashed since the last call; the caller charges the
    survivors one detection round per crash.  Clears the list. *)

val faulted : t -> bool
(** Any fault active this iteration or any permanent damage? When
    false, the iteration must price exactly like a healthy one. *)

val events_applied : t -> int
val dead_count : t -> int
