(** Baseline in-kernel execution costs per system call.

    [native s] is the time a call spends once inside a kernel that
    implements it locally — excluding memory-management work, which
    the address-space model charges separately, and excluding any
    offload transport, which the IKC layer charges.  [entry] is the
    user→kernel→user transition cost itself. *)

val entry : Mk_engine.Units.time
(** syscall/sysret transition, ~180 ns on KNL's slow cores. *)

val native : Sysno.t -> Mk_engine.Units.time
(** In-kernel service time for a locally implemented call. *)

val local : Sysno.t -> Mk_engine.Units.time
(** [entry + native s]: full local syscall latency. *)
