(** How a kernel treats each system call.

    McKernel "implements only a small set of performance sensitive
    system calls; the rest are offloaded to Linux" (Section II-B);
    mOS does the same through thread migration.  A handful of calls
    are unsupported or partially supported, which the compatibility
    corpus (mk_compat) probes. *)

type t =
  | Local  (** implemented in this kernel *)
  | Offload  (** forwarded to the Linux side *)
  | Unsupported  (** fails with ENOSYS *)
  | Partial of string
      (** implemented but with documented deviations from Linux
          semantics; the string names the deviation.  Plain calls
          succeed, the LTP corner cases fail. *)

type table = Sysno.t -> t

val is_local : t -> bool
val to_string : t -> string

val linux : table
(** Everything local. *)

val mckernel : table
(** Memory, threads (via clone), scheduling, signals, futex and the
    trivial getters are local; file systems, networking, IPC and
    process-creation machinery are offloaded through the proxy;
    move_pages is work-in-progress; ptrace/prctl are hard to support
    across the proxy boundary (Section II-D4); fork is supported via
    the proxy but an esoteric clone-flag combination fails. *)

val mos : table
(** Like McKernel but: ptrace/prctl reuse the Linux implementation
    directly (local-quality, one ptrace corner still failing), fork
    is not fully implemented yet, and brk carries the HPC heap
    deviation (Section III-D / IV). *)
