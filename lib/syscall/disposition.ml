type t = Local | Offload | Unsupported | Partial of string

type table = Sysno.t -> t

let is_local = function Local | Partial _ -> true | Offload | Unsupported -> false

let to_string = function
  | Local -> "local"
  | Offload -> "offload"
  | Unsupported -> "unsupported"
  | Partial reason -> Printf.sprintf "partial(%s)" reason

let linux _ = Local

let mckernel s =
  match Sysno.cls s with
  | Sysno.Memory -> (
      match s with
      | Sysno.Move_pages -> Partial "work in progress"
      | Sysno.Brk -> Partial "heap never returned to the system"
      | _ -> Local)
  | Sysno.Scheduling | Sysno.Synchronisation | Sysno.Signals -> Local
  | Sysno.Process -> (
      match s with
      | Sysno.Getpid | Sysno.Getppid | Sysno.Gettid | Sysno.Set_tid_address
      | Sysno.Exit | Sysno.Exit_group | Sysno.Kill | Sysno.Tgkill ->
          Local
      | Sysno.Clone -> Partial "esoteric flag combinations rejected"
      | Sysno.Ptrace -> Partial "proxy boundary limits tracing"
      | Sysno.Prctl -> Partial "proxy boundary limits prctl"
      | Sysno.Fork | Sysno.Vfork | Sysno.Execve | Sysno.Wait4 | Sysno.Waitid ->
          Offload
      | _ -> Offload)
  | Sysno.Info -> (
      match s with
      | Sysno.Clock_gettime | Sysno.Gettimeofday | Sysno.Getcpu -> Local
      | _ -> Offload)
  | Sysno.Files | Sysno.Networking | Sysno.Ipc -> Offload

let mos s =
  match Sysno.cls s with
  | Sysno.Memory -> (
      match s with
      | Sysno.Move_pages -> Partial "work in progress"
      | Sysno.Brk -> Partial "heap never returned to the system"
      | Sysno.Set_mempolicy | Sysno.Mbind -> Partial "mOS-specific memory options"
      | _ -> Local)
  | Sysno.Scheduling | Sysno.Synchronisation | Sysno.Signals -> Local
  | Sysno.Process -> (
      match s with
      | Sysno.Getpid | Sysno.Getppid | Sysno.Gettid | Sysno.Set_tid_address
      | Sysno.Exit | Sysno.Exit_group | Sysno.Kill | Sysno.Tgkill | Sysno.Clone
        ->
          Local
      | Sysno.Fork | Sysno.Vfork -> Partial "fork not fully implemented"
      | Sysno.Ptrace -> Partial "one corner case failing"
      | Sysno.Prctl -> Local
      | Sysno.Execve | Sysno.Wait4 | Sysno.Waitid -> Offload
      | _ -> Offload)
  | Sysno.Info -> (
      match s with
      | Sysno.Clock_gettime | Sysno.Gettimeofday | Sysno.Getcpu -> Local
      | _ -> Offload)
  | Sysno.Files | Sysno.Networking | Sysno.Ipc -> Offload
