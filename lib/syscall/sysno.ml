type t =
  | Mmap | Munmap | Brk | Mprotect | Madvise | Mremap | Msync
  | Mlock | Munlock | Set_mempolicy | Mbind | Move_pages | Get_mempolicy
  | Clone | Fork | Vfork | Execve | Exit | Exit_group | Wait4 | Waitid
  | Getpid | Getppid | Gettid | Set_tid_address | Ptrace | Prctl | Kill | Tgkill
  | Sched_yield | Sched_setaffinity | Sched_getaffinity
  | Sched_setscheduler | Sched_getscheduler | Getcpu | Nanosleep
  | Futex
  | Rt_sigaction | Rt_sigprocmask | Rt_sigreturn | Sigaltstack
  | Open | Openat | Close | Read | Write | Readv | Writev | Pread64 | Pwrite64
  | Lseek | Stat | Fstat | Lstat | Access | Readlink | Getdents | Unlink
  | Mkdir | Rename | Fcntl | Dup | Dup2 | Pipe | Ioctl | Poll | Select
  | Epoll_create | Epoll_wait | Epoll_ctl | Fsync | Ftruncate
  | Socket | Bind | Listen | Accept | Connect | Sendto | Recvfrom
  | Sendmsg | Recvmsg | Setsockopt | Getsockopt | Shutdown
  | Shmget | Shmat | Shmdt | Shmctl
  | Clock_gettime | Gettimeofday | Times | Getrusage | Uname
  | Getuid | Geteuid | Getgid | Getegid | Setrlimit | Getrlimit
  | Sysinfo | Setitimer | Timer_create

type cls =
  | Memory
  | Process
  | Scheduling
  | Synchronisation
  | Signals
  | Files
  | Networking
  | Ipc
  | Info

let cls = function
  | Mmap | Munmap | Brk | Mprotect | Madvise | Mremap | Msync | Mlock | Munlock
  | Set_mempolicy | Mbind | Move_pages | Get_mempolicy ->
      Memory
  | Clone | Fork | Vfork | Execve | Exit | Exit_group | Wait4 | Waitid | Getpid
  | Getppid | Gettid | Set_tid_address | Ptrace | Prctl | Kill | Tgkill ->
      Process
  | Sched_yield | Sched_setaffinity | Sched_getaffinity | Sched_setscheduler
  | Sched_getscheduler | Getcpu | Nanosleep ->
      Scheduling
  | Futex -> Synchronisation
  | Rt_sigaction | Rt_sigprocmask | Rt_sigreturn | Sigaltstack -> Signals
  | Open | Openat | Close | Read | Write | Readv | Writev | Pread64 | Pwrite64
  | Lseek | Stat | Fstat | Lstat | Access | Readlink | Getdents | Unlink | Mkdir
  | Rename | Fcntl | Dup | Dup2 | Pipe | Ioctl | Poll | Select | Epoll_create
  | Epoll_wait | Epoll_ctl | Fsync | Ftruncate ->
      Files
  | Socket | Bind | Listen | Accept | Connect | Sendto | Recvfrom | Sendmsg
  | Recvmsg | Setsockopt | Getsockopt | Shutdown ->
      Networking
  | Shmget | Shmat | Shmdt | Shmctl -> Ipc
  | Clock_gettime | Gettimeofday | Times | Getrusage | Uname | Getuid | Geteuid
  | Getgid | Getegid | Setrlimit | Getrlimit | Sysinfo | Setitimer | Timer_create
    ->
      Info

let to_string = function
  | Mmap -> "mmap" | Munmap -> "munmap" | Brk -> "brk" | Mprotect -> "mprotect"
  | Madvise -> "madvise" | Mremap -> "mremap" | Msync -> "msync"
  | Mlock -> "mlock" | Munlock -> "munlock" | Set_mempolicy -> "set_mempolicy"
  | Mbind -> "mbind" | Move_pages -> "move_pages" | Get_mempolicy -> "get_mempolicy"
  | Clone -> "clone" | Fork -> "fork" | Vfork -> "vfork" | Execve -> "execve"
  | Exit -> "exit" | Exit_group -> "exit_group" | Wait4 -> "wait4"
  | Waitid -> "waitid" | Getpid -> "getpid" | Getppid -> "getppid"
  | Gettid -> "gettid" | Set_tid_address -> "set_tid_address"
  | Ptrace -> "ptrace" | Prctl -> "prctl" | Kill -> "kill" | Tgkill -> "tgkill"
  | Sched_yield -> "sched_yield" | Sched_setaffinity -> "sched_setaffinity"
  | Sched_getaffinity -> "sched_getaffinity"
  | Sched_setscheduler -> "sched_setscheduler"
  | Sched_getscheduler -> "sched_getscheduler" | Getcpu -> "getcpu"
  | Nanosleep -> "nanosleep" | Futex -> "futex"
  | Rt_sigaction -> "rt_sigaction" | Rt_sigprocmask -> "rt_sigprocmask"
  | Rt_sigreturn -> "rt_sigreturn" | Sigaltstack -> "sigaltstack"
  | Open -> "open" | Openat -> "openat" | Close -> "close" | Read -> "read"
  | Write -> "write" | Readv -> "readv" | Writev -> "writev"
  | Pread64 -> "pread64" | Pwrite64 -> "pwrite64" | Lseek -> "lseek"
  | Stat -> "stat" | Fstat -> "fstat" | Lstat -> "lstat" | Access -> "access"
  | Readlink -> "readlink" | Getdents -> "getdents" | Unlink -> "unlink"
  | Mkdir -> "mkdir" | Rename -> "rename" | Fcntl -> "fcntl" | Dup -> "dup"
  | Dup2 -> "dup2" | Pipe -> "pipe" | Ioctl -> "ioctl" | Poll -> "poll"
  | Select -> "select" | Epoll_create -> "epoll_create"
  | Epoll_wait -> "epoll_wait" | Epoll_ctl -> "epoll_ctl" | Fsync -> "fsync"
  | Ftruncate -> "ftruncate" | Socket -> "socket" | Bind -> "bind"
  | Listen -> "listen" | Accept -> "accept" | Connect -> "connect"
  | Sendto -> "sendto" | Recvfrom -> "recvfrom" | Sendmsg -> "sendmsg"
  | Recvmsg -> "recvmsg" | Setsockopt -> "setsockopt"
  | Getsockopt -> "getsockopt" | Shutdown -> "shutdown" | Shmget -> "shmget"
  | Shmat -> "shmat" | Shmdt -> "shmdt" | Shmctl -> "shmctl"
  | Clock_gettime -> "clock_gettime" | Gettimeofday -> "gettimeofday"
  | Times -> "times" | Getrusage -> "getrusage" | Uname -> "uname"
  | Getuid -> "getuid" | Geteuid -> "geteuid" | Getgid -> "getgid"
  | Getegid -> "getegid" | Setrlimit -> "setrlimit" | Getrlimit -> "getrlimit"
  | Sysinfo -> "sysinfo" | Setitimer -> "setitimer"
  | Timer_create -> "timer_create"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all =
  [
    Mmap; Munmap; Brk; Mprotect; Madvise; Mremap; Msync; Mlock; Munlock;
    Set_mempolicy; Mbind; Move_pages; Get_mempolicy; Clone; Fork; Vfork; Execve;
    Exit; Exit_group; Wait4; Waitid; Getpid; Getppid; Gettid; Set_tid_address;
    Ptrace; Prctl; Kill; Tgkill; Sched_yield; Sched_setaffinity;
    Sched_getaffinity; Sched_setscheduler; Sched_getscheduler; Getcpu; Nanosleep;
    Futex; Rt_sigaction; Rt_sigprocmask; Rt_sigreturn; Sigaltstack; Open; Openat;
    Close; Read; Write; Readv; Writev; Pread64; Pwrite64; Lseek; Stat; Fstat;
    Lstat; Access; Readlink; Getdents; Unlink; Mkdir; Rename; Fcntl; Dup; Dup2;
    Pipe; Ioctl; Poll; Select; Epoll_create; Epoll_wait; Epoll_ctl; Fsync;
    Ftruncate; Socket; Bind; Listen; Accept; Connect; Sendto; Recvfrom; Sendmsg;
    Recvmsg; Setsockopt; Getsockopt; Shutdown; Shmget; Shmat; Shmdt; Shmctl;
    Clock_gettime; Gettimeofday; Times; Getrusage; Uname; Getuid; Geteuid;
    Getgid; Getegid; Setrlimit; Getrlimit; Sysinfo; Setitimer; Timer_create;
  ]

let of_class c = List.filter (fun s -> cls s = c) all

let class_to_string = function
  | Memory -> "memory"
  | Process -> "process"
  | Scheduling -> "scheduling"
  | Synchronisation -> "synchronisation"
  | Signals -> "signals"
  | Files -> "files"
  | Networking -> "networking"
  | Ipc -> "ipc"
  | Info -> "info"

let count = List.length all
