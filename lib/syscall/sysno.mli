(** System calls the simulator knows about.

    The set covers what the paper's discussion touches: the
    performance-sensitive calls an LWK implements natively (memory
    management, threading, scheduling, signals), the calls both LWKs
    offload to Linux (file systems, networking, the /proc and /sys
    pseudo files), and the compatibility-corner calls that show up in
    the LTP discussion (move_pages, exotic clone flags, ptrace,
    fork).  Classes drive both offloading policy and the generated
    compatibility corpus. *)

type t =
  (* memory *)
  | Mmap | Munmap | Brk | Mprotect | Madvise | Mremap | Msync
  | Mlock | Munlock | Set_mempolicy | Mbind | Move_pages | Get_mempolicy
  (* process & threads *)
  | Clone | Fork | Vfork | Execve | Exit | Exit_group | Wait4 | Waitid
  | Getpid | Getppid | Gettid | Set_tid_address | Ptrace | Prctl | Kill | Tgkill
  (* scheduling *)
  | Sched_yield | Sched_setaffinity | Sched_getaffinity
  | Sched_setscheduler | Sched_getscheduler | Getcpu | Nanosleep
  (* synchronisation *)
  | Futex
  (* signals *)
  | Rt_sigaction | Rt_sigprocmask | Rt_sigreturn | Sigaltstack
  (* files *)
  | Open | Openat | Close | Read | Write | Readv | Writev | Pread64 | Pwrite64
  | Lseek | Stat | Fstat | Lstat | Access | Readlink | Getdents | Unlink
  | Mkdir | Rename | Fcntl | Dup | Dup2 | Pipe | Ioctl | Poll | Select
  | Epoll_create | Epoll_wait | Epoll_ctl | Fsync | Ftruncate
  (* networking *)
  | Socket | Bind | Listen | Accept | Connect | Sendto | Recvfrom
  | Sendmsg | Recvmsg | Setsockopt | Getsockopt | Shutdown
  (* IPC / shared memory *)
  | Shmget | Shmat | Shmdt | Shmctl
  (* time & info *)
  | Clock_gettime | Gettimeofday | Times | Getrusage | Uname
  | Getuid | Geteuid | Getgid | Getegid | Setrlimit | Getrlimit
  | Sysinfo | Setitimer | Timer_create

type cls =
  | Memory
  | Process
  | Scheduling
  | Synchronisation
  | Signals
  | Files
  | Networking
  | Ipc
  | Info

val cls : t -> cls
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val all : t list
val of_class : cls -> t list
val class_to_string : cls -> string
val count : int
