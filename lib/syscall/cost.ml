let entry = 180

(* Rough service times on a 1.4 GHz KNL core.  Trivial getters are
   tens of nanoseconds; VFS operations are microseconds; process
   creation is tens of microseconds. *)
let native s =
  match Sysno.cls s with
  | Sysno.Info -> (
      match s with
      | Sysno.Clock_gettime | Sysno.Gettimeofday -> 40
      | _ -> 150)
  | Sysno.Scheduling -> (
      match s with
      | Sysno.Sched_yield -> 250
      | Sysno.Nanosleep -> 1_200
      | _ -> 400)
  | Sysno.Synchronisation -> 600
  | Sysno.Signals -> 500
  | Sysno.Memory -> (
      match s with
      | Sysno.Brk -> 300
      | Sysno.Mmap | Sysno.Munmap -> 900
      | Sysno.Move_pages -> 4_000
      | _ -> 700)
  | Sysno.Process -> (
      match s with
      | Sysno.Getpid | Sysno.Getppid | Sysno.Gettid -> 60
      | Sysno.Fork | Sysno.Vfork -> 60_000
      | Sysno.Clone -> 25_000
      | Sysno.Execve -> 250_000
      | Sysno.Ptrace -> 2_000
      | _ -> 800)
  | Sysno.Files -> (
      match s with
      | Sysno.Read | Sysno.Write | Sysno.Readv | Sysno.Writev -> 1_200
      | Sysno.Open | Sysno.Openat -> 2_500
      | Sysno.Ioctl -> 1_500
      | Sysno.Poll | Sysno.Select | Sysno.Epoll_wait -> 1_800
      | Sysno.Fsync -> 50_000
      | _ -> 1_000)
  | Sysno.Networking -> (
      match s with
      | Sysno.Sendmsg | Sysno.Recvmsg | Sysno.Sendto | Sysno.Recvfrom -> 2_000
      | _ -> 3_000)
  | Sysno.Ipc -> 2_000

let local s = entry + native s
