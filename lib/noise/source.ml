open Mk_engine

type t = {
  name : string;
  period : Units.time;
  duration : Units.time;
  duration_sigma : float;
}

let make ~name ~period ~duration ?(duration_sigma = 0.0) () =
  if period <= 0 then invalid_arg "Source.make: period must be positive";
  if duration < 0 then invalid_arg "Source.make: negative duration";
  { name; period; duration; duration_sigma }

let overhead t = float_of_int t.duration /. float_of_int t.period

let timer_tick =
  make ~name:"timer-tick" ~period:Units.ms ~duration:(3 * Units.us) ()

let timer_tick_nohz =
  make ~name:"timer-tick-nohz" ~period:Units.sec ~duration:(3 * Units.us) ()

let kworker =
  make ~name:"kworker" ~period:(10 * Units.ms) ~duration:(15 * Units.us)
    ~duration_sigma:0.5 ()

let daemon =
  make ~name:"daemon" ~period:Units.sec ~duration:(600 * Units.us)
    ~duration_sigma:1.0 ()

let irq =
  make ~name:"irq" ~period:(5 * Units.ms) ~duration:(6 * Units.us)
    ~duration_sigma:0.3 ()

let lwk_stray =
  make ~name:"lwk-stray" ~period:(10 * Units.sec) ~duration:(20 * Units.us)
    ~duration_sigma:0.5 ()
