(** One source of operating-system interference ("noise", "jitter").

    A source preempts an application thread every [period] ns for
    [duration] ns on average.  [duration_sigma] spreads individual
    detour lengths lognormally — long daemon wakeups have heavy
    tails, timer ticks are nearly constant. *)

type t = {
  name : string;
  period : Mk_engine.Units.time;  (** mean time between occurrences *)
  duration : Mk_engine.Units.time;  (** mean detour length *)
  duration_sigma : float;
      (** lognormal sigma of individual detour lengths; 0 = constant *)
}

val make :
  name:string ->
  period:Mk_engine.Units.time ->
  duration:Mk_engine.Units.time ->
  ?duration_sigma:float ->
  unit ->
  t

val overhead : t -> float
(** Mean fraction of CPU time stolen: duration / period. *)

val timer_tick : t
(** 1 kHz scheduler tick, ~3 us handler. *)

val timer_tick_nohz : t
(** Residual 1 Hz tick under [nohz_full]. *)

val kworker : t
(** Kernel work queues: every ~10 ms, ~15 us. *)

val daemon : t
(** System daemons (monitoring, slurmd, …): every ~1 s, ~600 us,
    heavy-tailed. *)

val irq : t
(** Device interrupts: every ~5 ms, ~6 us. *)

val lwk_stray : t
(** A rare stray Linux task reaching an mOS LWK core: every ~10 s,
    ~20 us (Section II-D2 notes mOS must actively chase these). *)
