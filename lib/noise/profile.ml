type t = { name : string; sources : Source.t list }

let make ~name sources = { name; sources }

let total_overhead t =
  List.fold_left (fun acc s -> acc +. Source.overhead s) 0.0 t.sources

let silent = make ~name:"silent" []

let mos_lwk = make ~name:"mos-lwk" [ Source.lwk_stray ]

let linux_default =
  make ~name:"linux-default"
    [ Source.timer_tick; Source.kworker; Source.irq; Source.daemon ]

let linux_nohz_full =
  (* nohz_full quiets the tick and the daemons sit on the service
     cores, but kworkers, IRQs and the occasional stray daemon or
     balancer pass still reach application cores.  The stray source
     is rare and heavy-tailed: irrelevant on one node, decisive for
     the max over 131,072 ranks. *)
  make ~name:"linux-nohz-full"
    [
      Source.timer_tick_nohz;
      Source.kworker;
      Source.irq;
      Source.make ~name:"daemon-spill" ~period:(3 * Mk_engine.Units.sec)
        ~duration:(150 * Mk_engine.Units.us) ~duration_sigma:0.8 ();
    ]

let linux_cotenant =
  make ~name:"linux-cotenant"
    [
      Source.timer_tick;
      Source.kworker;
      Source.irq;
      Source.make ~name:"cotenant-thread" ~period:(40 * Mk_engine.Units.ms)
        ~duration:(2 * Mk_engine.Units.ms) ~duration_sigma:0.6 ();
    ]

let linux_service_core =
  make ~name:"linux-service-core"
    [
      Source.timer_tick;
      Source.kworker;
      Source.irq;
      Source.daemon;
      Source.make ~name:"slurmd" ~period:(500 * Mk_engine.Units.ms)
        ~duration:(2 * Mk_engine.Units.ms) ~duration_sigma:1.0 ();
    ]
