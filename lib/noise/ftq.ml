open Mk_engine

type sample = { quantum : int; work_done : float }

type summary = {
  samples : sample list;
  mean_work : float;
  min_work : float;
  perturbed_quanta : int;
  worst_detour : Units.time;
  noise_fraction : float;
}

let run ~profile ~quantum ~quanta ~seed =
  if quantum <= 0 || quanta <= 0 then invalid_arg "Ftq.run: positive sizes required";
  let rng = Rng.create seed in
  let samples = ref [] in
  let stolen_total = ref 0 in
  let perturbed = ref 0 in
  let worst = ref 0 in
  for i = 0 to quanta - 1 do
    let stolen = min quantum (Injector.delay profile rng ~dur:quantum) in
    if stolen > 0 then incr perturbed;
    if stolen > !worst then worst := stolen;
    stolen_total := !stolen_total + stolen;
    let work_done = float_of_int (quantum - stolen) /. float_of_int quantum in
    samples := { quantum = i; work_done } :: !samples
  done;
  let samples = List.rev !samples in
  let works = List.map (fun s -> s.work_done) samples in
  {
    samples;
    mean_work = List.fold_left ( +. ) 0.0 works /. float_of_int quanta;
    min_work = List.fold_left min 1.0 works;
    perturbed_quanta = !perturbed;
    worst_detour = !worst;
    noise_fraction =
      float_of_int !stolen_total /. float_of_int (quantum * quanta);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "mean work %.5f, min %.5f, %d/%d quanta perturbed, worst detour %a, noise %.5f%%"
    s.mean_work s.min_work s.perturbed_quanta (List.length s.samples) Units.pp_time
    s.worst_detour (100.0 *. s.noise_fraction)
