(** The Fixed Time Quantum (FTQ) benchmark, simulated.

    FTQ is the standard instrument for quantifying OS noise (Sottile &
    Minnich): a thread performs unit work in fixed wall-clock quanta
    and records how much it completed in each; interference shows up
    as quanta with missing work.  The paper's isolation claims —
    McKernel cores silent, mOS cores nearly so, Linux cores perturbed
    even under nohz_full (Section II-D2) — are exactly statements
    about an FTQ trace's shape, so this module lets the simulator
    produce those traces from its noise profiles. *)

type sample = {
  quantum : int;  (** index *)
  work_done : float;  (** fraction of the quantum spent on user work *)
}

type summary = {
  samples : sample list;
  mean_work : float;
  min_work : float;
  perturbed_quanta : int;  (** quanta with any detour at all *)
  worst_detour : Mk_engine.Units.time;
  noise_fraction : float;  (** total stolen time / total time *)
}

val run :
  profile:Profile.t ->
  quantum:Mk_engine.Units.time ->
  quanta:int ->
  seed:int ->
  summary
(** Simulate [quanta] fixed quanta of length [quantum] under the
    given noise profile. *)

val pp_summary : Format.formatter -> summary -> unit
