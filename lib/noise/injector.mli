(** Sampling the interference a compute window suffers.

    [delay] draws the total detour time one thread accumulates over a
    window: per source, a Poisson number of occurrences times
    (lognormally spread) detour lengths.

    [max_delay] draws the detour of the *slowest* of [ranks]
    independent threads — the quantity that gates a synchronising
    collective.  It samples each source's occurrence count from the
    max-order-statistic of [ranks] iid Poissons (inverse-CDF on
    u^(1/ranks)) and sums across sources, a slight over-estimate of
    the true max-of-sums that preserves monotonicity in [ranks].
    This is the noise-amplification mechanism: with fine-grained
    collectives the per-level max grows with scale, which is why the
    Linux MiniFE curve collapses at 1,024+ nodes while the silent
    LWKs keep scaling (Figure 5b). *)

val delay : Profile.t -> Mk_engine.Rng.t -> dur:Mk_engine.Units.time -> Mk_engine.Units.time
(** Total noise suffered by one thread over a compute window of
    length [dur]. *)

val inflate :
  Profile.t -> Mk_engine.Rng.t -> dur:Mk_engine.Units.time -> Mk_engine.Units.time
(** [dur] plus sampled noise. *)

val max_delay :
  Profile.t ->
  Mk_engine.Rng.t ->
  dur:Mk_engine.Units.time ->
  ranks:int ->
  Mk_engine.Units.time
(** Noise suffered by the slowest of [ranks] threads over a window. *)

val mean_delay : Profile.t -> dur:Mk_engine.Units.time -> Mk_engine.Units.time
(** Deterministic expectation, for calibration and tests. *)
