(** Noise profiles: the set of interference sources active on a CPU
    core under a given kernel configuration.

    The experimental setup in the paper reserves 4 of 68 cores for
    Linux and its daemons; application cores run with [nohz_full].
    Even so, residual kworkers, IRQs and occasional daemon spill-over
    perturb Linux application cores, while LWK cores are silent
    (McKernel) or almost silent (mOS). *)

type t = { name : string; sources : Source.t list }

val make : name:string -> Source.t list -> t

val total_overhead : t -> float
(** Mean fraction of CPU stolen by all sources combined. *)

val silent : t
(** No interference at all (McKernel LWK cores: Linux "cannot
    interact with the McKernel scheduler", Section II-D2). *)

val mos_lwk : t
(** mOS LWK cores: rare stray kernel tasks only. *)

val linux_default : t
(** Linux application core without nohz_full. *)

val linux_nohz_full : t
(** Linux application core with the nohz_full boot argument — the
    configuration used for the paper's Linux baseline runs. *)

val linux_cotenant : t
(** A Linux application core sharing the node with a co-located
    tenant (in-situ analytics, a second job): the co-tenant's threads
    periodically run on the application cores.  LWK cores are immune
    by construction — their strong partitioning keeps foreign tasks
    out (Sections II-D1, V: "multi-kernel's ability of performance
    isolation"). *)

val linux_service_core : t
(** One of the four cores that keep the daemons: heavy interference.
    Applications avoid these; relevant when a workload is forced to
    share them. *)
