open Mk_engine

let occurrences rng (s : Source.t) ~dur =
  let lambda = float_of_int dur /. float_of_int s.Source.period in
  Rng.poisson rng ~lambda

(* Draw one detour length.  With sigma = 0 the length is the mean;
   otherwise lognormal with that mean. *)
let detour rng (s : Source.t) =
  if s.Source.duration_sigma = 0.0 then s.Source.duration
  else begin
    let sigma = s.Source.duration_sigma in
    (* E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); pick mu so the
       mean matches the source's duration. *)
    let mu = log (float_of_int s.Source.duration) -. (sigma *. sigma /. 2.0) in
    max 0 (int_of_float (Rng.lognormal rng ~mu ~sigma))
  end

(* Top-level recursions, not local closures: these run once per node
   per synchronisation point, and the capturing closures they replace
   were hot minor-heap allocations at high node counts. *)
let rec detour_sum rng s k acc =
  if k = 0 then acc else detour_sum rng s (k - 1) (acc + detour rng s)

(* The hook fires only when the source actually struck (k > 0), so
   the disabled-path cost of instrumentation is one branch on the
   sparse case, not a DLS read per source per window. *)
let record_strikes (s : Source.t) ~k ~stolen =
  if k > 0 then begin
    Mk_obs.Hook.count ~subsystem:"noise" ~name:("injections:" ^ s.Source.name) k;
    Mk_obs.Hook.count ~subsystem:"noise" ~name:("stolen_ns:" ^ s.Source.name)
      stolen
  end

let source_delay rng s ~dur =
  let k = occurrences rng s ~dur in
  let stolen = detour_sum rng s k 0 in
  record_strikes s ~k ~stolen;
  stolen

let rec delay_sum rng ~dur acc = function
  | [] -> acc
  | s :: rest -> delay_sum rng ~dur (acc + source_delay rng s ~dur) rest

let delay profile rng ~dur = delay_sum rng ~dur 0 profile.Profile.sources

let inflate profile rng ~dur = dur + delay profile rng ~dur

(* Sample the maximum of [ranks] iid Poisson(lambda) variables by
   inverse CDF at u^(1/ranks). *)
let max_poisson rng ~lambda ~ranks =
  if lambda <= 0.0 then 0
  else begin
    let u = Rng.float rng 1.0 in
    let u = if u <= 0.0 then 1e-12 else u in
    let target = u ** (1.0 /. float_of_int ranks) in
    if lambda < 60.0 then begin
      (* Walk the CDF. *)
      let rec go k pmf cdf =
        if cdf >= target || k > 10_000 then k
        else begin
          let pmf' = pmf *. lambda /. float_of_int (k + 1) in
          go (k + 1) pmf' (cdf +. pmf')
        end
      in
      let p0 = exp (-.lambda) in
      go 0 p0 p0
    end
    else begin
      (* Normal approximation to the Poisson. *)
      let z = Rng.normal_quantile target in
      max 0 (int_of_float (Float.round (lambda +. (z *. sqrt lambda))))
    end
  end

let rec max_delay_sum rng ~dur ~ranks acc = function
  | [] -> acc
  | (s : Source.t) :: rest ->
      let lambda = float_of_int dur /. float_of_int s.Source.period in
      let k = max_poisson rng ~lambda ~ranks in
      let stolen = detour_sum rng s k 0 in
      record_strikes s ~k ~stolen;
      max_delay_sum rng ~dur ~ranks (acc + stolen) rest

let max_delay profile rng ~dur ~ranks =
  if ranks <= 0 then invalid_arg "Injector.max_delay: ranks must be positive";
  if ranks = 1 then delay profile rng ~dur
  else max_delay_sum rng ~dur ~ranks 0 profile.Profile.sources

let mean_delay profile ~dur =
  let f = Profile.total_overhead profile in
  int_of_float (f *. float_of_int dur)
