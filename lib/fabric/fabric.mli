(** End-to-end internode message cost.

    The wire part is the classic alpha–beta model with a per-hop
    term; the control part is a list of system calls that the
    *sending OS* must execute — local on Linux, offloaded on the
    LWKs.  The caller turns those into time with its kernel's
    syscall table, keeping this library OS-agnostic. *)

type t

val make : ?nic:Nic.t -> nodes:int -> unit -> t

val nic : t -> Nic.t
val topology : t -> Topology.t

val wire_time : t -> src:int -> dst:int -> bytes:int -> Mk_engine.Units.time
(** Latency + hops + serialisation for one message. *)

val message :
  t ->
  src:int ->
  dst:int ->
  bytes:int ->
  Mk_engine.Units.time * Mk_syscall.Sysno.t list
(** (wire time, control system calls charged to the sender). *)

val base_latency : Mk_engine.Units.time
val per_hop : Mk_engine.Units.time

val min_cross_region_time : t -> bytes:int -> Mk_engine.Units.time
(** Lower bound on {!wire_time} between nodes in different
    {!Topology.region}s, for messages of [bytes]: the healthy 3-hop
    cost ([base_latency + 3*per_hop + injection + serialisation]).
    Degraded links only raise the true cost, so the bound survives
    fault injection.  [max_int] when the topology has one region.
    This is the lookahead a region-partitioned {!Mk_engine.Shard}
    simulation may claim. *)

(** {1 Link degradation} (fault injection)

    A degraded endpoint multiplies the wire time of every message it
    sends or receives (the worse endpoint wins).  With no factor set
    the cost arithmetic is exactly the healthy integer path — fault
    support is provably zero-cost when off. *)

val set_link_factor : t -> node:int -> factor:float -> unit
(** [factor >= 1.0]; out-of-range nodes are ignored.  Raises
    [Invalid_argument] when [factor < 1.0]. *)

val reset_link_factors : t -> unit
