type t = { nodes : int; edge_size : int }

let make ?(ports_per_edge = 48) ~nodes () =
  if nodes <= 0 then invalid_arg "Topology.make: nodes must be positive";
  (* Half the ports go down to nodes, half up to spines. *)
  { nodes; edge_size = max 1 (ports_per_edge / 2) }

let nodes t = t.nodes

let region t n = n / t.edge_size

let regions t = ((t.nodes - 1) / t.edge_size) + 1

let same_edge t a b = a / t.edge_size = b / t.edge_size

let hops t ~src ~dst =
  if src = dst then 0 else if same_edge t src dst then 1 else 3
