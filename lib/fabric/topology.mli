(** Cluster interconnect topology: a two-level fat tree of the kind
    Oakforest-PACS builds from 48-port Omni-Path edge switches and
    director spines. *)

type t

val make : ?ports_per_edge:int -> nodes:int -> unit -> t
(** Full-bisection two-level fat tree over [nodes] nodes; default
    48-port edges. *)

val nodes : t -> int

val hops : t -> src:int -> dst:int -> int
(** Switch hops between two nodes: 0 (same node), 1 (same edge
    switch) or 3 (via a spine). *)

val same_edge : t -> int -> int -> bool

val region : t -> int -> int
(** Edge-switch index of a node — the unit the sharded DES partitions
    by: traffic between distinct regions always crosses a spine
    (3 hops), which is what gives the scheme its lookahead. *)

val regions : t -> int
(** Number of edge switches ([region] values are [0 .. regions - 1]). *)
