type t = {
  nic : Nic.t;
  topology : Topology.t;
  link_factors : float array;
  mutable degraded : bool;
}

let make ?(nic = Nic.make ()) ~nodes () =
  {
    nic;
    topology = Topology.make ~nodes () ;
    link_factors = Array.make (max 1 nodes) 1.0;
    degraded = false;
  }

let nic t = t.nic
let topology t = t.topology

let set_link_factor t ~node ~factor =
  if factor < 1.0 then invalid_arg "Fabric.set_link_factor: factor must be >= 1";
  if node >= 0 && node < Array.length t.link_factors then begin
    t.link_factors.(node) <- factor;
    t.degraded <- t.degraded || factor > 1.0
  end

let reset_link_factors t =
  Array.fill t.link_factors 0 (Array.length t.link_factors) 1.0;
  t.degraded <- false

(* Omni-Path end-to-end MPI latency is ~1 us nearest-neighbour;
   each extra switch hop adds ~150 ns. *)
let base_latency = 950
let per_hop = 150

let wire_time t ~src ~dst ~bytes =
  if src = dst then 0
  else begin
    let hops = Topology.hops t.topology ~src ~dst in
    let w =
      base_latency + (hops * per_hop) + Nic.injection_overhead
      + Mk_engine.Units.transfer_time ~bytes ~bw:Nic.wire_bandwidth
    in
    (* The integer fast path is load-bearing: with no degraded link the
       arithmetic must be bit-for-bit what it was before fault
       injection existed. *)
    if not t.degraded then w
    else begin
      let f src_or_dst =
        if src_or_dst >= 0 && src_or_dst < Array.length t.link_factors then
          t.link_factors.(src_or_dst)
        else 1.0
      in
      let factor = Float.max (f src) (f dst) in
      if factor = 1.0 then w else int_of_float (Float.round (float w *. factor))
    end
  end

(* The healthy-path cost is identical for every cross-region pair, and
   link degradation only multiplies it upward, so this is a sound
   lower bound on any message between nodes under different edge
   switches — the sharded DES's lookahead.  [max_int] when the fabric
   has a single region: no cross-region message can exist at all. *)
let min_cross_region_time t ~bytes =
  if Topology.regions t.topology <= 1 then max_int
  else
    base_latency + (3 * per_hop) + Nic.injection_overhead
    + Mk_engine.Units.transfer_time ~bytes ~bw:Nic.wire_bandwidth

let message t ~src ~dst ~bytes =
  let wire = wire_time t ~src ~dst ~bytes in
  let control = if src = dst then [] else Nic.control_syscalls t.nic ~bytes in
  (wire, control)
