type t = { nic : Nic.t; topology : Topology.t }

let make ?(nic = Nic.make ()) ~nodes () =
  { nic; topology = Topology.make ~nodes () }

let nic t = t.nic
let topology t = t.topology

(* Omni-Path end-to-end MPI latency is ~1 us nearest-neighbour;
   each extra switch hop adds ~150 ns. *)
let base_latency = 950
let per_hop = 150

let wire_time t ~src ~dst ~bytes =
  if src = dst then 0
  else begin
    let hops = Topology.hops t.topology ~src ~dst in
    base_latency + (hops * per_hop) + Nic.injection_overhead
    + Mk_engine.Units.transfer_time ~bytes ~bw:Nic.wire_bandwidth
  end

let message t ~src ~dst ~bytes =
  let wire = wire_time t ~src ~dst ~bytes in
  let control = if src = dst then [] else Nic.control_syscalls t.nic ~bytes in
  (wire, control)
