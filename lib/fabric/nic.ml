type t = { eager_threshold : int }

let make ?(eager_threshold = 16 * 1024) () = { eager_threshold }

let eager_threshold t = t.eager_threshold

let control_syscalls t ~bytes =
  if bytes <= t.eager_threshold then []
  else [ Mk_syscall.Sysno.Ioctl; Mk_syscall.Sysno.Poll ]

(* 100 Gb/s = 12.5 GB/s. *)
let wire_bandwidth = 12.5

let injection_overhead = 350
