type t = { eager_threshold : int; rendezvous_controls : Mk_syscall.Sysno.t list }

let make ?(eager_threshold = 16 * 1024) () =
  (* The control list is immutable and constant, so it is built once
     here: [control_syscalls] sits under every tree edge of every
     collective and must not allocate. *)
  {
    eager_threshold;
    rendezvous_controls = [ Mk_syscall.Sysno.Ioctl; Mk_syscall.Sysno.Poll ];
  }

let eager_threshold t = t.eager_threshold

let control_syscalls t ~bytes =
  if bytes <= t.eager_threshold then [] else t.rendezvous_controls

(* 100 Gb/s = 12.5 GB/s. *)
let wire_bandwidth = 12.5

let injection_overhead = 350
