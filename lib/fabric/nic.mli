(** Host fabric interface: Omni-Path generation 1.

    The data path is user-space (PSM2), but "the Intel Omni-Path
    network involves system calls for certain operations" (Section
    IV): memory registration for large transfers and completion
    waits.  [control_syscalls] says how many kernel crossings a
    message of a given size needs; on an LWK those crossings are
    offloaded to Linux, which is precisely why "LAMMPS utilizes
    communication routines that rely on those" loses at scale. *)

type t

val make : ?eager_threshold:int -> unit -> t
(** Default eager threshold 16 KiB. *)

val eager_threshold : t -> int

val control_syscalls : t -> bytes:int -> Mk_syscall.Sysno.t list
(** Kernel crossings needed to move one message: none for eager
    messages, an ioctl (registration) plus a poll (completion) for
    rendezvous ones. *)

val wire_bandwidth : float
(** 100 Gb/s Omni-Path link, in bytes/ns. *)

val injection_overhead : Mk_engine.Units.time
(** Per-message software overhead in the user-space library. *)
