let create ?(mode = Mk_hw.Knl.Snc4_flat) ?(os_cores = 4)
    ?(ihk_spec = Ihk.default_late) ?(options = Os.default_options)
    ?(time_sharing = None) () =
  let topo = Mk_hw.Knl.topology mode in
  let phys = Ihk.partition ~topo ihk_spec in
  let os, app = Mk_sched.Binding.partition_cores ~topo ~os_cores in
  let router = Mk_ikc.Router.make ~topo ~linux_cores:os in
  let offload = Mk_ikc.Offload.make Mk_ikc.Offload.default_proxy ~router in
  let base = Mk_mem.Address_space.mckernel_strategy in
  let strategy =
    if options.Os.heap_management then base
    else
      (* The separate non-optimised kernel image: Linux-like heap
         handling, everything else unchanged (Section IV). *)
      {
        base with
        Mk_mem.Address_space.heap_align = Mk_mem.Page.bytes Mk_mem.Page.Small;
        heap_increment = Mk_mem.Page.bytes Mk_mem.Page.Small;
        heap_ignore_shrink = false;
        heap_zero_first_4k_only = false;
        heap_prefault = false;
      }
  in
  {
    Os.kind = Os.Mckernel_kind;
    name = "mckernel";
    topo;
    phys;
    os_cores = os;
    app_cores = app;
    app_noise = Mk_noise.Profile.silent;
    disposition = Mk_syscall.Disposition.mckernel;
    offload = Some offload;
    sched_kind =
      (match time_sharing with
      | None -> Os.Lwk_cooperative
      | Some quantum -> Os.Lwk_time_sharing quantum);
    strategy = (fun ~ranks:_ -> strategy);
    default_policy = (fun ~home -> Mk_mem.Policy.Mcdram_first { home });
    options;
    syscall_entry = 120;
    local_service_factor = 0.7;
    fault_costs = { Mk_mem.Fault.default with Mk_mem.Fault.trap = 500 };
    resilience = Mk_fault.Retry.default_ikc;
  }
