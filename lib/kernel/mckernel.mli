(** IHK/McKernel: LWK booted by IHK after Linux, proxy-process
    system-call offloading, strict core isolation (Linux "cannot
    interact with the McKernel scheduler", Section II-D2).

    Memory: prefault with up to 1G pages, MCDRAM-first with silent
    DDR4 spill, fall back to demand paging when contiguous physical
    memory runs short (the behaviour behind the CCS-QCD win,
    Section IV), 2M-aligned aggressively-extended heap with shrink
    ignored.  The job-launch options of Section IV are exposed. *)

val create :
  ?mode:Mk_hw.Knl.mode ->
  ?os_cores:int ->
  ?ihk_spec:Ihk.spec ->
  ?options:Os.options ->
  ?time_sharing:Mk_engine.Units.time option ->
  unit ->
  Os.t
(** Defaults: SNC-4 flat, 4 Linux cores, late (fragmented) IHK
    partition, heap management on, no premap, yield honoured,
    cooperative scheduling. *)
