(** The /proc and /sys pseudo-filesystems, and tools support.

    "Full Linux compatibility requires faithfully replicating system
    call semantics, but also mimicking the complex and ever changing
    pseudo file systems; e.g., /proc, /sys" (Section II-A), and the
    design split shows here most clearly: "McKernel needs to implement
    various /sys and /proc files to reflect the resource partition
    assigned to the LWK, while mOS mostly reuses the Linux
    implementation.  Additionally, in McKernel most tools must run on
    an LWK core, while mOS can leave them on the Linux side"
    (Section II-D4).

    The model: each pseudo-file is served in one of four ways, and
    each standard tool needs a set of pseudo-files plus possibly
    ptrace; combining the two yields a support verdict per kernel. *)

type entry =
  | Proc_cpuinfo
  | Proc_meminfo
  | Proc_stat
  | Proc_pid_stat  (** /proc/[pid]/stat *)
  | Proc_pid_status
  | Proc_pid_maps
  | Proc_pid_mem
  | Proc_pid_environ
  | Proc_loadavg
  | Sys_cpu_topology  (** /sys/devices/system/cpu *)
  | Sys_node_meminfo  (** /sys/devices/system/node *)
  | Sys_kernel_mm  (** /sys/kernel/mm (hugepages, THP knobs) *)

type serving =
  | Native  (** the kernel's own first-class implementation *)
  | Reimplemented
      (** rebuilt inside the LWK to reflect the LWK partition *)
  | Reused  (** mOS: the in-tree Linux implementation, partition-aware *)
  | Forwarded
      (** answered by the Linux side; values describe Linux's view of
          the node, not the LWK partition *)
  | Missing

type kernel = Linux | Mckernel | Mos

val serve : kernel -> entry -> serving

val reflects_partition : serving -> bool
(** Whether a read returns values consistent with the resources the
    application actually owns. *)

val entries : entry list
val entry_path : entry -> string

(** {1 Tools} *)

type tool = Ps | Top | Numactl_hardware | Taskset | Gdb | Strace

type verdict =
  | Full
  | Degraded of string  (** works, with a caveat *)
  | Broken of string

val tool_support : kernel -> tool -> verdict

val tool_runs_on : kernel -> tool -> [ `Lwk_core | `Linux_core ]
(** Where the tool must execute: on McKernel, tools that inspect LWK
    processes must run on an LWK core; mOS leaves them Linux-side. *)

val tools : tool list
val tool_name : tool -> string
val verdict_to_string : verdict -> string

val support_score : kernel -> int
(** Count of fully-supported tools, for coarse comparisons. *)
