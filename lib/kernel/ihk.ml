open Mk_engine

type spec = {
  linux_memory : Units.size;
  max_contiguous : Units.size option;
}

let default_late =
  { linux_memory = Units.of_gib 4; max_contiguous = Some (Units.of_gib 1 + Units.of_mib 256) }

let default_boot = { linux_memory = Units.of_gib 4; max_contiguous = None }

let partition ~topo spec =
  let numa = Mk_hw.Topology.numa topo in
  let phys =
    match spec.max_contiguous with
    | None -> Mk_mem.Phys.create numa
    | Some max_block -> Mk_mem.Phys.create_fragmented numa ~max_block
  in
  (* Linux keeps its share of DDR4 spread over the core-owning
     domains (its unmovable data sits where it booted). *)
  let ddr =
    List.filter
      (fun (d : Mk_hw.Numa.domain) ->
        Mk_hw.Memory_kind.equal d.Mk_hw.Numa.kind Mk_hw.Memory_kind.Ddr4)
      (Mk_hw.Numa.domains numa)
  in
  let n = max 1 (List.length ddr) in
  let share = spec.linux_memory / n in
  List.iter
    (fun (d : Mk_hw.Numa.domain) ->
      Mk_mem.Phys.reserve phys ~domain:d.Mk_hw.Numa.id ~bytes:share)
    ddr;
  phys

let release _ = ()
