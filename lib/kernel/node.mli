(** One booted compute node: an OS model plus a job's ranks, with an
    interpreter for {!Workload} programs.

    [run_ops] executes one rank's program start-to-finish on its own
    core (the HPC configuration: one task per hardware thread, no
    oversubscription), charging compute inflation from the noise
    profile, memory costs from the address space, and system-call
    costs from the kernel's disposition/offload machinery.

    [run_shared_core] is the oversubscribed variant: several tasks
    time-share one core under the kernel's scheduler — preemptive
    CFS on Linux, cooperative round-robin (optionally time-shared) on
    the LWKs — driven by the discrete-event core. *)

type rank_state = {
  rank : int;
  process : Mk_proc.Process.t;
  task : Mk_proc.Task.t;
  core : Mk_hw.Topology.core;
  home : Mk_hw.Numa.id;
  rng : Mk_engine.Rng.t;
  mutable last_fd : int option;  (** most recently opened descriptor *)
}

type t

val boot :
  os:Os.t -> ranks:int -> threads_per_rank:int -> seed:int -> t
(** Lays ranks out with {!Mk_sched.Binding.block}, creates one
    process + address space per rank (and, under McKernel, its
    Linux-side proxy). *)

val os : t -> Os.t
val ranks : t -> int
val rank_state : t -> int -> rank_state
val address_space : t -> rank:int -> Mk_mem.Address_space.t

val run_ops : t -> rank:int -> Workload.op list -> Mk_engine.Units.time
(** Execute a program on one rank; returns elapsed simulated time.
    Failed operations (ENOMEM under a rigid kernel, ENOSYS) are
    counted in [failures] but do not abort the program. *)

val run_all : t -> (int -> Workload.op list) -> Mk_engine.Units.time array
(** Run every rank's program independently (they do not synchronise
    here — MPI-level synchronisation lives in mk_mpi). *)

val failures : t -> int

val run_shared_core :
  t ->
  tasks:int ->
  ops_per_task:Workload.op list ->
  Mk_engine.Units.time
(** DES-driven time sharing of [tasks] identical programs on one
    core; returns the makespan. *)

val shm_window : t -> bytes_per_rank:int -> Mk_engine.Units.time array
(** Create the MPI intra-node shared-memory window: one segment per
    rank pair direction, modelled as one shared mapping per rank.
    Under McKernel's [--mpol-shm-premap] the cost lands here
    (prefault, no contention); otherwise the pages fault on first
    communication with all ranks contending (Section IV). *)
