type kind = Linux | Mckernel_kind | Mos_kind

type sched_kind =
  | Cfs_sched
  | Lwk_cooperative
  | Lwk_time_sharing of Mk_engine.Units.time

type options = {
  mpol_shm_premap : bool;
  disable_sched_yield : bool;
  heap_management : bool;
}

let default_options =
  { mpol_shm_premap = false; disable_sched_yield = false; heap_management = true }

type t = {
  kind : kind;
  name : string;
  topo : Mk_hw.Topology.t;
  phys : Mk_mem.Phys.t;
  os_cores : Mk_hw.Topology.core list;
  app_cores : Mk_hw.Topology.core list;
  app_noise : Mk_noise.Profile.t;
  disposition : Mk_syscall.Disposition.table;
  offload : Mk_ikc.Offload.t option;
  sched_kind : sched_kind;
  strategy : ranks:int -> Mk_mem.Address_space.strategy;
  default_policy : home:Mk_hw.Numa.id -> Mk_mem.Policy.t;
  options : options;
  syscall_entry : Mk_engine.Units.time;
  local_service_factor : float;
  fault_costs : Mk_mem.Fault.costs;
  resilience : Mk_fault.Retry.policy;
}

let kind_to_string = function
  | Linux -> "Linux"
  | Mckernel_kind -> "McKernel"
  | Mos_kind -> "mOS"

let hijacked_yield_cost = 30
(* A no-op shared-library call: stays entirely in user space. *)

let syscall_time t ?(payload = 128) ~core sysno =
  if t.options.disable_sched_yield && sysno = Mk_syscall.Sysno.Sched_yield then
    Ok hijacked_yield_cost
  else
    match t.disposition sysno with
    | Mk_syscall.Disposition.Unsupported -> Error `Enosys
    | Mk_syscall.Disposition.Local | Mk_syscall.Disposition.Partial _ ->
        let service =
          int_of_float
            (t.local_service_factor
            *. float_of_int (Mk_syscall.Cost.native sysno))
        in
        Ok (t.syscall_entry + service)
    | Mk_syscall.Disposition.Offload -> (
        match t.offload with
        | None ->
            (* A kernel without transport treats offloads as local. *)
            Ok (t.syscall_entry + Mk_syscall.Cost.native sysno)
        | Some off -> Ok (Mk_ikc.Offload.cost off ~lwk_core:core ~sysno ~payload ()))

let address_space t ~ranks ~home =
  Mk_mem.Address_space.create ~phys:t.phys ~strategy:(t.strategy ~ranks)
    ~costs:t.fault_costs ~default_policy:(t.default_policy ~home) ()

let is_lwk t = match t.kind with Linux -> false | Mckernel_kind | Mos_kind -> true

let largest_free_block t ~kind =
  let numa = Mk_mem.Phys.numa t.phys in
  List.fold_left
    (fun acc (d : Mk_hw.Numa.domain) ->
      if Mk_hw.Memory_kind.equal d.Mk_hw.Numa.kind kind then
        max acc (Mk_mem.Phys.largest_free t.phys ~domain:d.Mk_hw.Numa.id)
      else acc)
    0 (Mk_hw.Numa.domains numa)
