open Mk_engine

type rank_state = {
  rank : int;
  process : Mk_proc.Process.t;
  task : Mk_proc.Task.t;
  core : Mk_hw.Topology.core;
  home : Mk_hw.Numa.id;
  rng : Rng.t;
  mutable last_fd : int option;  (** most recently opened descriptor *)
}

type t = {
  os : Os.t;
  plan : Mk_sched.Binding.plan;
  states : rank_state array;
  pids : Mk_proc.Ids.t;
  mutable failures : int;
}

let boot ~os ~ranks ~threads_per_rank ~seed =
  let topo = os.Os.topo in
  let plan =
    Mk_sched.Binding.block ~topo
      ~os_cores:(List.length os.Os.os_cores)
      ~ranks ~threads_per_rank
  in
  let pids = Mk_proc.Ids.create ~first:1000 () in
  let root_rng = Rng.create seed in
  let states =
    Array.init ranks (fun rank ->
        let home = Mk_sched.Binding.home_domain ~topo plan ~rank in
        let address_space = Os.address_space os ~ranks ~home in
        let pid = Mk_proc.Ids.next pids in
        let name = Printf.sprintf "rank%d" rank in
        let process = Mk_proc.Process.make ~pid ~name ~address_space in
        (* McKernel pairs every LWK process with a Linux-side proxy
           that owns the descriptor table (Section II-B). *)
        (match os.Os.kind with
        | Os.Mckernel_kind ->
            ignore (Mk_proc.Process.attach_proxy process ~proxy_pid:(Mk_proc.Ids.next pids))
        | Os.Linux | Os.Mos_kind -> ());
        let affinity = plan.Mk_sched.Binding.rank_cpus.(rank) in
        let task = Mk_proc.Task.make ~tid:pid ~pid ~name ~affinity in
        task.Mk_proc.Task.home <-
          (if Os.is_lwk os then Mk_proc.Task.Lwk else Mk_proc.Task.Linux_side);
        Mk_proc.Process.add_task process task;
        let core =
          match affinity with
          | cpu :: _ -> Mk_hw.Topology.core_of_cpu topo cpu
          | [] -> 0
        in
        { rank; process; task; core; home; rng = Rng.split root_rng rank;
          last_fd = None })
  in
  { os; plan; states; pids; failures = 0 }

let os t = t.os
let ranks t = Array.length t.states
let rank_state t rank = t.states.(rank)

let address_space t ~rank =
  t.states.(rank).process.Mk_proc.Process.address_space

let failures t = t.failures

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

let run_compute t st dur =
  let inflated = Mk_noise.Injector.inflate t.os.Os.app_noise st.rng ~dur in
  Mk_proc.Task.charge_user st.task dur;
  Mk_proc.Task.charge_noise st.task (inflated - dur);
  inflated

let run_stream t st bytes =
  let asp = st.process.Mk_proc.Process.address_space in
  let placement =
    Mk_hw.Bandwidth.mixed
      ~mcdram_fraction:(Mk_mem.Address_space.mcdram_fraction asp)
  in
  let base = Mk_hw.Bandwidth.stream_time ~bytes placement ~ranks:(ranks t) in
  let with_tlb =
    int_of_float
      (float_of_int base *. Mk_mem.Address_space.tlb_factor asp)
  in
  run_compute t st with_tlb

(* File I/O: the syscall itself plus data movement.  Page-cache reads
   stream at memory-ish speed; an offloaded call additionally ships
   the buffer through the IKC channel (the payload parameter). *)
let page_cache_bandwidth = 3.0 (* bytes/ns *)

let run_file_op t st op =
  let fds = Mk_proc.Process.fds st.process in
  let priced ?payload sysno =
    match Os.syscall_time t.os ?payload ~core:st.core sysno with
    | Ok cost -> cost
    | Error `Enosys ->
        t.failures <- t.failures + 1;
        t.os.Os.syscall_entry
  in
  match op with
  | Workload.Open_file path ->
      let fd = Mk_proc.Fd_table.open_file fds ~path in
      st.last_fd <- Some fd;
      priced Mk_syscall.Sysno.Open
  | Workload.Close_file -> (
      match st.last_fd with
      | None ->
          t.failures <- t.failures + 1;
          t.os.Os.syscall_entry
      | Some fd ->
          (match Mk_proc.Fd_table.close fds fd with
          | Ok () -> ()
          | Error `Ebadf -> t.failures <- t.failures + 1);
          st.last_fd <- None;
          priced Mk_syscall.Sysno.Close)
  | Workload.Read_bytes bytes | Workload.Write_bytes bytes -> (
      let sysno =
        match op with
        | Workload.Read_bytes _ -> Mk_syscall.Sysno.Read
        | _ -> Mk_syscall.Sysno.Write
      in
      match st.last_fd with
      | None ->
          t.failures <- t.failures + 1;
          t.os.Os.syscall_entry
      | Some fd ->
          (match Mk_proc.Fd_table.advance fds fd ~bytes with
          | Ok () -> ()
          | Error `Ebadf -> t.failures <- t.failures + 1);
          priced ~payload:bytes sysno
          + Units.transfer_time ~bytes ~bw:page_cache_bandwidth)
  | Workload.Compute _ | Workload.Stream _ | Workload.Syscall _
  | Workload.Mmap _ | Workload.Brk _ | Workload.Touch_heap | Workload.Yield ->
      invalid_arg "Node.run_file_op: not a file operation"

let run_syscall t st sysno =
  match Os.syscall_time t.os ~core:st.core sysno with
  | Ok cost ->
      (match t.os.Os.disposition sysno with
      | Mk_syscall.Disposition.Offload ->
          st.task.Mk_proc.Task.acct.Mk_proc.Task.syscalls_offloaded <-
            st.task.Mk_proc.Task.acct.Mk_proc.Task.syscalls_offloaded + 1;
          (match st.process.Mk_proc.Process.proxy with
          | Some proxy ->
              proxy.Mk_proc.Process.offloads_served <-
                proxy.Mk_proc.Process.offloads_served + 1
          | None -> ())
      | _ ->
          st.task.Mk_proc.Task.acct.Mk_proc.Task.syscalls_local <-
            st.task.Mk_proc.Task.acct.Mk_proc.Task.syscalls_local + 1);
      Mk_proc.Task.charge_kernel st.task cost;
      cost
  | Error `Enosys ->
      t.failures <- t.failures + 1;
      t.os.Os.syscall_entry

let run_op t st op =
  let asp = st.process.Mk_proc.Process.address_space in
  match op with
  | Workload.Compute dur -> run_compute t st dur
  | Workload.Stream bytes -> run_stream t st bytes
  | Workload.Syscall sysno -> run_syscall t st sysno
  | Workload.Yield -> run_syscall t st Mk_syscall.Sysno.Sched_yield
  | Workload.Brk delta -> (
      match Mk_mem.Address_space.brk asp ~delta with
      | Ok (_, cost) ->
          Mk_proc.Task.charge_kernel st.task (t.os.Os.syscall_entry + cost);
          t.os.Os.syscall_entry + cost
      | Error `Enomem ->
          t.failures <- t.failures + 1;
          t.os.Os.syscall_entry)
  | Workload.Mmap { bytes; touch } -> (
      match Mk_mem.Address_space.mmap asp ~bytes ~backing:Mk_mem.Vma.Anonymous () with
      | Ok (addr, cost) ->
          let touch_cost =
            if touch then
              Mk_mem.Address_space.touch asp ~addr ~bytes ~concurrency:1
            else 0
          in
          Mk_proc.Task.charge_kernel st.task (t.os.Os.syscall_entry + cost + touch_cost);
          t.os.Os.syscall_entry + cost + touch_cost
      | Error `Enomem ->
          t.failures <- t.failures + 1;
          t.os.Os.syscall_entry)
  | Workload.Touch_heap ->
      let cost = Mk_mem.Address_space.touch_heap asp ~concurrency:1 in
      Mk_proc.Task.charge_kernel st.task cost;
      cost
  | Workload.Open_file _ | Workload.Read_bytes _ | Workload.Write_bytes _
  | Workload.Close_file ->
      let cost = run_file_op t st op in
      Mk_proc.Task.charge_kernel st.task cost;
      (match (op, t.os.Os.kind) with
      | (Workload.Open_file _ | Workload.Read_bytes _ | Workload.Write_bytes _
        | Workload.Close_file), Os.Mckernel_kind ->
          st.task.Mk_proc.Task.acct.Mk_proc.Task.syscalls_offloaded <-
            st.task.Mk_proc.Task.acct.Mk_proc.Task.syscalls_offloaded + 1
      | _ ->
          st.task.Mk_proc.Task.acct.Mk_proc.Task.syscalls_local <-
            st.task.Mk_proc.Task.acct.Mk_proc.Task.syscalls_local + 1);
      cost

let run_ops t ~rank ops =
  let st = t.states.(rank) in
  List.fold_left (fun acc op -> acc + run_op t st op) 0 ops

let run_all t programs =
  Array.init (ranks t) (fun rank -> run_ops t ~rank (programs rank))

(* ------------------------------------------------------------------ *)
(* Oversubscribed core: DES-driven time sharing                        *)

let run_shared_core t ~tasks ~ops_per_task =
  if tasks <= 0 then invalid_arg "Node.run_shared_core: tasks must be positive";
  let st = t.states.(0) in
  (* Pre-compute each program's total service demand once; every
     task runs the same program but keeps its own remaining budget. *)
  let demand = List.fold_left (fun acc op -> acc + run_op t st op) 0 ops_per_task in
  let remaining = Array.make tasks demand in
  let module Run (S : Mk_sched.Sched_intf.S) = struct
    let go sched =
      let sim = Sim.create () in
      Array.iteri
        (fun i _ ->
          let task =
            Mk_proc.Task.make ~tid:(9000 + i) ~pid:(9000 + i)
              ~name:(Printf.sprintf "ts%d" i) ~affinity:[ 0 ]
          in
          S.enqueue sched task)
        remaining;
      let rec step sim =
        match S.pick sched with
        | None -> ()
        | Some task ->
            let i = task.Mk_proc.Task.tid - 9000 in
            let slice =
              match S.timeslice sched ~runnable:(S.queued sched + 1) with
              | None -> remaining.(i)
              | Some q -> min q remaining.(i)
            in
            remaining.(i) <- remaining.(i) - slice;
            task.Mk_proc.Task.acct.Mk_proc.Task.context_switches <-
              task.Mk_proc.Task.acct.Mk_proc.Task.context_switches + 1;
            Mk_obs.Hook.count ~subsystem:"sched" ~name:"context_switches" 1;
            ignore
              (Sim.schedule_after sim ~delay:(slice + S.context_switch_cost)
                 (fun sim ->
                   if remaining.(i) > 0 then begin
                     Mk_obs.Hook.count ~subsystem:"sched" ~name:"preemptions" 1;
                     S.requeue sched task ~ran:slice
                   end;
                   step sim))
      in
      step sim;
      Sim.run sim;
      Sim.now sim
  end in
  match t.os.Os.sched_kind with
  | Os.Cfs_sched ->
      let module R = Run (Mk_sched.Cfs) in
      R.go (Mk_sched.Cfs.create ())
  | Os.Lwk_cooperative ->
      let module R = Run (Mk_sched.Lwk_rr) in
      R.go (Mk_sched.Lwk_rr.create ())
  | Os.Lwk_time_sharing quantum ->
      let module R = Run (Mk_sched.Lwk_rr) in
      R.go (Mk_sched.Lwk_rr.create_time_sharing ~quantum)

(* ------------------------------------------------------------------ *)
(* MPI shared-memory window                                            *)

let shm_window t ~bytes_per_rank =
  Array.map
    (fun st ->
      let asp = st.process.Mk_proc.Process.address_space in
      match
        Mk_mem.Address_space.mmap asp ~bytes:bytes_per_rank
          ~backing:(Mk_mem.Vma.Shared st.rank) ()
      with
      | Error `Enomem ->
          t.failures <- t.failures + 1;
          0
      | Ok (addr, cost) ->
          if t.os.Os.options.Os.mpol_shm_premap then
            (* Populate at window creation: no faults, no contention. *)
            cost + Mk_mem.Address_space.premap asp ~addr ~bytes:bytes_per_rank
          else cost)
    t.states
