(** Interface for Heterogeneous Kernels: resource partitioning.

    "IHK can allocate and release host resources dynamically without
    rebooting the host machine … implemented as a collection of
    kernel modules without any modifications to the Linux kernel"
    (Section II-B).  The price of partitioning after Linux has booted
    is that "McKernel has to request [large contiguous physical
    memory blocks] from Linux later, potentially after Linux has
    already placed unmovable data structures into it" (Section
    II-D5): the LWK partition comes back fragmented, modelled by a
    cap on contiguous block size.

    [partition] returns the physical memory the LWK will manage;
    whatever Linux keeps is subtracted. *)

type spec = {
  linux_memory : Mk_engine.Units.size;
      (** DDR4 kept by the Linux side (kernel, daemons, page cache) *)
  max_contiguous : Mk_engine.Units.size option;
      (** [Some b]: blocks handed over are at most [b] contiguous
          (late, post-boot reservation).  [None]: pristine memory
          (boot-time grab, as mOS does). *)
}

val default_late : spec
(** 4 GiB for Linux; contiguous blocks capped at 1 GiB + change, so
    1G pages remain available but barely. *)

val default_boot : spec
(** 4 GiB for Linux; no fragmentation (mOS-style boot-time grab). *)

val partition : topo:Mk_hw.Topology.t -> spec -> Mk_mem.Phys.t

val release : Mk_mem.Phys.t -> unit
(** Releasing an LWK partition back to Linux is instantaneous in the
    model; provided for API completeness. *)
