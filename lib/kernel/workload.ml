type op =
  | Compute of Mk_engine.Units.time
  | Stream of Mk_engine.Units.size
  | Syscall of Mk_syscall.Sysno.t
  | Mmap of { bytes : Mk_engine.Units.size; touch : bool }
  | Brk of int
  | Touch_heap
  | Yield
  | Open_file of string
  | Read_bytes of int
  | Write_bytes of int
  | Close_file

let compute ms = Compute (Mk_engine.Units.of_ms ms)

let pp ppf = function
  | Compute t -> Format.fprintf ppf "compute(%a)" Mk_engine.Units.pp_time t
  | Stream s -> Format.fprintf ppf "stream(%a)" Mk_engine.Units.pp_size s
  | Syscall s -> Format.fprintf ppf "syscall(%a)" Mk_syscall.Sysno.pp s
  | Mmap { bytes; touch } ->
      Format.fprintf ppf "mmap(%a%s)" Mk_engine.Units.pp_size bytes
        (if touch then ", touch" else "")
  | Brk d -> Format.fprintf ppf "brk(%+d)" d
  | Touch_heap -> Format.fprintf ppf "touch-heap"
  | Yield -> Format.fprintf ppf "yield"
  | Open_file p -> Format.fprintf ppf "open(%s)" p
  | Read_bytes n -> Format.fprintf ppf "read(%d)" n
  | Write_bytes n -> Format.fprintf ppf "write(%d)" n
  | Close_file -> Format.fprintf ppf "close"

let total_brk_calls ops =
  List.length (List.filter (function Brk _ -> true | _ -> false) ops)
