(** A bootable operating-system model for one node.

    The three kernels of the paper are values of this one type,
    differing in their noise profile, scheduler, system-call
    disposition/offload transport, memory-management strategy and
    physical-memory boot state.  Constructors live in
    {!Linux_os}, {!Mckernel} and {!Mos}. *)

type kind = Linux | Mckernel_kind | Mos_kind

type sched_kind =
  | Cfs_sched
  | Lwk_cooperative
  | Lwk_time_sharing of Mk_engine.Units.time

type options = {
  mpol_shm_premap : bool;
      (** McKernel [--mpol-shm-premap]: pre-populate MPI shared-memory
          windows to dodge page-fault contention (Section IV). *)
  disable_sched_yield : bool;
      (** McKernel [--disable-sched-yield]: hijack glibc's
          sched_yield and make it a no-op (Section IV). *)
  heap_management : bool;
      (** The HPC brk optimisation; toggleable in mOS at job launch
          (Table I), a separate kernel image in McKernel. *)
}

val default_options : options

type t = {
  kind : kind;
  name : string;
  topo : Mk_hw.Topology.t;
  phys : Mk_mem.Phys.t;
  os_cores : Mk_hw.Topology.core list;
  app_cores : Mk_hw.Topology.core list;
  app_noise : Mk_noise.Profile.t;  (** interference on application cores *)
  disposition : Mk_syscall.Disposition.table;
  offload : Mk_ikc.Offload.t option;  (** [None] when everything is local *)
  sched_kind : sched_kind;
  strategy : ranks:int -> Mk_mem.Address_space.strategy;
      (** per-process memory strategy for a job with [ranks] ranks
          per node (mOS derives its MCDRAM quota from this) *)
  default_policy : home:Mk_hw.Numa.id -> Mk_mem.Policy.t;
  options : options;
  syscall_entry : Mk_engine.Units.time;  (** user→kernel transition *)
  local_service_factor : float;
      (** scaling of {!Mk_syscall.Cost.native} for locally-implemented
          calls: an LWK's lean paths beat Linux's general ones *)
  fault_costs : Mk_mem.Fault.costs;
      (** page-fault cost parameters; an LWK's fault path is leaner *)
  resilience : Mk_fault.Retry.policy;
      (** timeout/retry policy guarding the kernel's offload and
          control paths when faults are injected (docs/FAULTS.md) *)
}

val kind_to_string : kind -> string

val syscall_time :
  t ->
  ?payload:int ->
  core:Mk_hw.Topology.core ->
  Mk_syscall.Sysno.t ->
  (Mk_engine.Units.time, [ `Enosys ]) result
(** Latency of one system call issued from [core], honouring the
    kernel's disposition table, offload transport and the
    [disable_sched_yield] option.  [payload] is the argument/data
    volume an offloaded call must ship across the IKC channel
    (read/write buffers).  Memory-management work is *not* included —
    the address-space model charges it. *)

val address_space :
  t -> ranks:int -> home:Mk_hw.Numa.id -> Mk_mem.Address_space.t
(** Fresh address space for one rank of a [ranks]-per-node job whose
    first CPU sits in NUMA domain [home]. *)

val is_lwk : t -> bool

val largest_free_block :
  t -> kind:Mk_hw.Memory_kind.t -> Mk_engine.Units.size
(** Largest contiguous physical block of the given memory kind — the
    1G-page-availability probe for the boot-time-grab ablation. *)
