let create ?(mode = Mk_hw.Knl.Snc4_flat) ?(os_cores = 4) ?(nohz_full = true)
    ?(linux_memory = Mk_engine.Units.of_gib 4) () =
  let topo = Mk_hw.Knl.topology mode in
  let phys = Ihk.partition ~topo { Ihk.linux_memory; max_contiguous = None } in
  let os, app = Mk_sched.Binding.partition_cores ~topo ~os_cores in
  {
    Os.kind = Os.Linux;
    name = (if nohz_full then "linux-nohz_full" else "linux");
    topo;
    phys;
    os_cores = os;
    app_cores = app;
    app_noise =
      (if nohz_full then Mk_noise.Profile.linux_nohz_full
       else Mk_noise.Profile.linux_default);
    disposition = Mk_syscall.Disposition.linux;
    offload = None;
    sched_kind = Os.Cfs_sched;
    strategy = (fun ~ranks:_ -> Mk_mem.Address_space.linux_strategy);
    default_policy =
      (fun ~home ->
        (* Applications are launched with numactl preferring the
           quadrant-local MCDRAM domain: the best Linux can do in
           SNC-4 mode, where only one preferred domain can be given
           (Section II-D3). *)
        match Mk_hw.Numa.nearest (Mk_hw.Topology.numa topo) ~from:home
                ~kind:Mk_hw.Memory_kind.Mcdram
        with
        | Some d -> Mk_mem.Policy.Preferred { domain = d }
        | None -> Mk_mem.Policy.Default { home });
    options = Os.default_options;
    syscall_entry = Mk_syscall.Cost.entry;
    local_service_factor = 1.0;
    fault_costs = Mk_mem.Fault.default;
    resilience = Mk_fault.Retry.default_ikc;
  }
