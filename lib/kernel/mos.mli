(** mOS: the LWK compiled directly into Linux, offloading system
    calls by migrating the issuing thread onto a Linux core and back
    (Section II-C).

    Memory: boot-time contiguous grab (best 1G-page availability),
    prefault with up to 1G pages, rigid physical allocation — "Only
    physically available memory can be allocated" (Section II-D3) —
    and LWK memory divided between ranks at job launch, modelled as a
    per-process MCDRAM quota.  The heap optimisation is a runtime
    toggle (Table I).  Being in-tree, a rare stray Linux kernel task
    can still reach an LWK core (Section II-D2). *)

val create :
  ?mode:Mk_hw.Knl.mode ->
  ?os_cores:int ->
  ?linux_memory:Mk_engine.Units.size ->
  ?options:Os.options ->
  unit ->
  Os.t
