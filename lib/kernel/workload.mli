(** The node-level workload language.

    A rank's behaviour is a sequence of operations; the {!Node}
    interpreter executes them against a booted OS model, charging
    simulated time.  Application models (mk_apps) compile to this
    language for single-node experiments — e.g. the Lulesh brk trace
    of Section IV is literally a list of [Brk] operations. *)

type op =
  | Compute of Mk_engine.Units.time
      (** CPU-bound work; inflated by the OS noise profile. *)
  | Stream of Mk_engine.Units.size
      (** Memory-bandwidth-bound sweep over a working set of this
          size; speed depends on where the rank's memory landed
          (MCDRAM vs DDR4) and its page sizes. *)
  | Syscall of Mk_syscall.Sysno.t
      (** A non-memory system call: local or offloaded per kernel. *)
  | Mmap of { bytes : Mk_engine.Units.size; touch : bool }
      (** Anonymous mapping; [touch] first-touches it immediately. *)
  | Brk of int  (** brk delta: positive grow, negative shrink, 0 query. *)
  | Touch_heap  (** Write over the whole heap (faults unbacked pages). *)
  | Yield  (** sched_yield — hijackable by [--disable-sched-yield]. *)
  | Open_file of string
      (** open(2); the descriptor lands in the Linux-side proxy's
          table on McKernel ("McKernel … simply returns the
          descriptor it receives from the proxy process"). *)
  | Read_bytes of int
      (** read(2) on the most recently opened descriptor; offloaded
          reads ship the buffer back through the IKC channel. *)
  | Write_bytes of int  (** write(2) on the most recent descriptor. *)
  | Close_file  (** close(2) on the most recent descriptor. *)

val compute : float -> op
(** [compute ms] — convenience, milliseconds. *)

val pp : Format.formatter -> op -> unit

val total_brk_calls : op list -> int
