(** The Linux baseline: the Fujitsu HPC-optimised production stack
    the paper compares against — CentOS-based XPPSL with application
    cores configured [nohz_full] (Section III-A).

    Demand paging with opportunistic THP, CFS scheduling, the full
    noise menagerie on application cores (reduced by nohz_full), and
    every system call served locally. *)

val create :
  ?mode:Mk_hw.Knl.mode ->
  ?os_cores:int ->
  ?nohz_full:bool ->
  ?linux_memory:Mk_engine.Units.size ->
  unit ->
  Os.t
(** Defaults: SNC-4 flat, 4 OS cores, nohz_full enabled, 4 GiB kept
    for the kernel and daemons. *)
