let create ?(mode = Mk_hw.Knl.Snc4_flat) ?(os_cores = 4)
    ?(linux_memory = Mk_engine.Units.of_gib 4) ?(options = Os.default_options) () =
  let topo = Mk_hw.Knl.topology mode in
  (* Boot-time grab: pristine, unfragmented partition. *)
  let phys = Ihk.partition ~topo { Ihk.linux_memory; max_contiguous = None } in
  let os, app = Mk_sched.Binding.partition_cores ~topo ~os_cores in
  let router = Mk_ikc.Router.make ~topo ~linux_cores:os in
  let offload = Mk_ikc.Offload.make Mk_ikc.Offload.default_migration ~router in
  let mcdram_total =
    Mk_mem.Phys.free_bytes_of_kind phys Mk_hw.Memory_kind.Mcdram
  in
  let base = Mk_mem.Address_space.mos_strategy in
  let with_heap_toggle =
    if options.Os.heap_management then base
    else
      {
        base with
        Mk_mem.Address_space.heap_align = Mk_mem.Page.bytes Mk_mem.Page.Small;
        heap_increment = Mk_mem.Page.bytes Mk_mem.Page.Small;
        heap_ignore_shrink = false;
        heap_zero_first_4k_only = false;
        heap_prefault = false;
      }
  in
  let strategy ~ranks =
    (* "Dividing memory resources upfront, which is what mOS does by
       default" (Section IV): each rank may take at most an equal
       share of MCDRAM. *)
    {
      with_heap_toggle with
      Mk_mem.Address_space.mcdram_quota = Some (mcdram_total / max 1 ranks);
    }
  in
  {
    Os.kind = Os.Mos_kind;
    name = "mos";
    topo;
    phys;
    os_cores = os;
    app_cores = app;
    app_noise = Mk_noise.Profile.mos_lwk;
    disposition = Mk_syscall.Disposition.mos;
    offload = Some offload;
    sched_kind = Os.Lwk_cooperative;
    strategy;
    default_policy = (fun ~home -> Mk_mem.Policy.Mcdram_first { home });
    options;
    syscall_entry = 130;
    local_service_factor = 0.75;
    fault_costs = { Mk_mem.Fault.default with Mk_mem.Fault.trap = 500 };
    (* mOS migrates the caller thread itself, so a wedged target core
       is noticed faster than a wedged proxy process. *)
    resilience = { Mk_fault.Retry.default_ikc with Mk_fault.Retry.timeout = 15_000 };
  }
