type entry =
  | Proc_cpuinfo
  | Proc_meminfo
  | Proc_stat
  | Proc_pid_stat
  | Proc_pid_status
  | Proc_pid_maps
  | Proc_pid_mem
  | Proc_pid_environ
  | Proc_loadavg
  | Sys_cpu_topology
  | Sys_node_meminfo
  | Sys_kernel_mm

type serving = Native | Reimplemented | Reused | Forwarded | Missing

type kernel = Linux | Mckernel | Mos

let entries =
  [
    Proc_cpuinfo; Proc_meminfo; Proc_stat; Proc_pid_stat; Proc_pid_status;
    Proc_pid_maps; Proc_pid_mem; Proc_pid_environ; Proc_loadavg;
    Sys_cpu_topology; Sys_node_meminfo; Sys_kernel_mm;
  ]

let entry_path = function
  | Proc_cpuinfo -> "/proc/cpuinfo"
  | Proc_meminfo -> "/proc/meminfo"
  | Proc_stat -> "/proc/stat"
  | Proc_pid_stat -> "/proc/[pid]/stat"
  | Proc_pid_status -> "/proc/[pid]/status"
  | Proc_pid_maps -> "/proc/[pid]/maps"
  | Proc_pid_mem -> "/proc/[pid]/mem"
  | Proc_pid_environ -> "/proc/[pid]/environ"
  | Proc_loadavg -> "/proc/loadavg"
  | Sys_cpu_topology -> "/sys/devices/system/cpu"
  | Sys_node_meminfo -> "/sys/devices/system/node"
  | Sys_kernel_mm -> "/sys/kernel/mm"

let serve kernel entry =
  match kernel with
  | Linux -> Native
  | Mos -> (
      (* In-tree: "mOS mostly reuses the Linux implementation", and
         being compiled into Linux the reused files see the real
         partition. *)
      match entry with
      | Proc_pid_maps | Proc_pid_mem ->
          (* LWK mappings are mOS-private; these two are rebuilt. *)
          Reimplemented
      | _ -> Reused)
  | Mckernel -> (
      (* The proxy model: per-process files must be reimplemented to
         describe the LWK process; global files are forwarded to the
         Linux side and therefore describe Linux's slice of the node,
         not the LWK partition — unless McKernel rebuilt them. *)
      match entry with
      | Proc_pid_stat | Proc_pid_status | Proc_pid_maps | Proc_pid_environ ->
          Reimplemented
      | Proc_cpuinfo | Proc_meminfo | Sys_cpu_topology | Sys_node_meminfo ->
          Reimplemented
      | Proc_stat | Proc_loadavg -> Forwarded
      | Proc_pid_mem -> Reimplemented
      | Sys_kernel_mm -> Missing)

let reflects_partition = function
  | Native | Reimplemented | Reused -> true
  | Forwarded | Missing -> false

(* ------------------------------------------------------------------ *)
(* Tools                                                               *)

type tool = Ps | Top | Numactl_hardware | Taskset | Gdb | Strace

type verdict = Full | Degraded of string | Broken of string

let tools = [ Ps; Top; Numactl_hardware; Taskset; Gdb; Strace ]

let tool_name = function
  | Ps -> "ps"
  | Top -> "top"
  | Numactl_hardware -> "numactl --hardware"
  | Taskset -> "taskset"
  | Gdb -> "gdb"
  | Strace -> "strace"

let needs = function
  | Ps -> [ Proc_pid_stat; Proc_pid_status ]
  | Top -> [ Proc_pid_stat; Proc_stat; Proc_meminfo; Proc_loadavg ]
  | Numactl_hardware -> [ Sys_cpu_topology; Sys_node_meminfo ]
  | Taskset -> []
  | Gdb -> [ Proc_pid_maps; Proc_pid_mem ]
  | Strace -> []

let needs_ptrace = function
  | Gdb | Strace -> true
  | Ps | Top | Numactl_hardware | Taskset -> false

let ptrace_quality kernel =
  match kernel with
  | Linux -> Full
  | Mos ->
      (* "mOS … can directly reuse Linux' ptrace() implementation"
         (Section II-D4); one LTP corner still fails. *)
      Degraded "one ptrace corner case fails"
  | Mckernel ->
      (* "services like ptrace() and prctl() are difficult to
         implement in the proxy model when crossing kernel
         boundaries" (Section II-D4). *)
      Degraded "proxy-boundary tracing: limited stop/resume fidelity"

let tool_support kernel tool =
  let stale =
    List.filter (fun e -> not (reflects_partition (serve kernel e))) (needs tool)
  in
  let base =
    match stale with
    | [] -> Full
    | es ->
        Degraded
          (Printf.sprintf "%s describe the Linux view, not the LWK partition"
             (String.concat ", " (List.map entry_path es)))
  in
  if not (needs_ptrace tool) then base
  else
    match (base, ptrace_quality kernel) with
    | Broken r, _ | _, Broken r -> Broken r
    | Degraded r, _ | _, Degraded r -> Degraded r
    | Full, Full -> Full

let tool_runs_on kernel tool =
  match kernel with
  | Linux -> `Linux_core
  | Mos ->
      (* "mOS can leave them on the Linux side" (Section II-D4). *)
      `Linux_core
  | Mckernel -> (
      (* "in McKernel most tools must run on an LWK core". *)
      match tool with
      | Numactl_hardware -> `Linux_core
      | Ps | Top | Taskset | Gdb | Strace -> `Lwk_core)

let verdict_to_string = function
  | Full -> "full"
  | Degraded r -> Printf.sprintf "degraded (%s)" r
  | Broken r -> Printf.sprintf "broken (%s)" r

let support_score kernel =
  List.length (List.filter (fun t -> tool_support kernel t = Full) tools)
