open Kernels

let trace_scale = (50.0 /. 30.0) ** 3.0

let app =
  {
    App.name = "Lulesh2.0";
    ranks_per_node = 64;
    threads_per_rank = 2;
    scaling = App.Weak;
    node_counts = cube_counts;
    (* Persistent mesh arrays live in ordinary mappings; the churn
       goes through the heap trace below. *)
    footprint_per_rank = uniform_footprint (110 * mib);
    heap_per_rank = int_of_float (trace_scale *. float_of_int (85 * mib));
    shm_bytes_per_rank = 12 * mib;
    iteration =
      (fun ~nodes:_ ->
        [
          (* Shock-hydro element kernels are compute-heavy; the
             gather/scatter sweeps are the bandwidth-bound part. *)
          App.Cpu (Mk_engine.Units.of_ms 350.0);
          App.Stream (95 * mib);
          (* dt is a global min-reduction every step. *)
          App.Allreduce { bytes = 8; count = 1 };
          (* 26-neighbour exchange of face/edge/corner ghosts. *)
          App.Halo { bytes = 180 * 1024; neighbors = 26; msgs_per_node = 120 };
        ]);
    iterations = Lulesh_trace.iterations;
    sim_iterations = 10;
    trace =
      Some
        (fun ~nodes:_ ~iteration ->
          if iteration < 0 then Lulesh_trace.setup ~scale:trace_scale
          else Lulesh_trace.iteration ~scale:trace_scale ~iteration);
    work_per_iteration =
      (fun ~nodes ->
        (* zones per job: 50³ per rank, 64 ranks per node. *)
        float_of_int (50 * 50 * 50 * 64 * nodes));
    fom_unit = "zones/s";
    linux_ddr_only = false;
  }
