type phase =
  | Stream of int
  | Cpu of Mk_engine.Units.time
  | Allreduce of { bytes : int; count : int }
  | Halo of { bytes : int; neighbors : int; msgs_per_node : int }
  | Yields of int

type scaling = Weak | Strong

type t = {
  name : string;
  ranks_per_node : int;
  threads_per_rank : int;
  scaling : scaling;
  node_counts : int list;
  footprint_per_rank : nodes:int -> local_rank:int -> int;
  heap_per_rank : int;
  shm_bytes_per_rank : int;
  iteration : nodes:int -> phase list;
  iterations : int;
  sim_iterations : int;
  trace : (nodes:int -> iteration:int -> Mk_kernel.Workload.op list) option;
  work_per_iteration : nodes:int -> float;
  fom_unit : string;
  linux_ddr_only : bool;
}

let phases_pp ppf = function
  | Stream b -> Format.fprintf ppf "stream(%a)" Mk_engine.Units.pp_size b
  | Cpu t -> Format.fprintf ppf "cpu(%a)" Mk_engine.Units.pp_time t
  | Allreduce { bytes; count } -> Format.fprintf ppf "allreduce(%dB x%d)" bytes count
  | Halo { bytes; neighbors; msgs_per_node } ->
      Format.fprintf ppf "halo(%dB, %d nbrs, %d msgs)" bytes neighbors msgs_per_node
  | Yields n -> Format.fprintf ppf "yields(%d)" n

let fom t ~nodes ~total_time =
  let sec = Mk_engine.Units.to_sec total_time in
  if sec <= 0.0 then 0.0
  else t.work_per_iteration ~nodes *. float_of_int t.iterations /. sec

let allreduce_count phases =
  List.fold_left
    (fun acc -> function Allreduce { count; _ } -> acc + count | _ -> acc)
    0 phases

let internode_messages phases =
  List.fold_left
    (fun acc -> function Halo { msgs_per_node; _ } -> acc + msgs_per_node | _ -> acc)
    0 phases
