(** The Lulesh 2.0 heap-allocation trace of Section IV.

    Profiling Lulesh with [-s 30] showed "7,526 queries – calling
    sbrk() with a value of 0 – 3,028 expansion requests, and 1,499
    requests for contraction for a total of about 12,000 calls to
    brk() … At its largest, the heap grew to 87 MB, but … the
    cumulative amount of memory requested was 22 GB."

    This module regenerates a trace with exactly those call counts:
    a setup prologue that establishes the persistent arrays, then
    per-iteration temporary-array churn (grow, use, shrink) that
    Linux pays for with page faults every iteration while the LWKs,
    ignoring the shrink, take the fast path. *)

val iterations : int
(** 750 timesteps for the [-s 30] problem. *)

val setup : scale:float -> Mk_kernel.Workload.op list
(** Persistent allocations (prologue). [scale] multiplies all sizes:
    1.0 reproduces [-s 30]; [(50/30)^3 ≈ 4.63] models [-s 50]. *)

val iteration : scale:float -> iteration:int -> Mk_kernel.Workload.op list
(** Temporary churn of one timestep. *)

val full_trace : scale:float -> Mk_kernel.Workload.op list
(** Prologue plus all iterations, concatenated. *)

(** {1 Aggregate statistics of the s=30 trace} *)

val expected_queries : int
(** 7,526 *)

val expected_grows : int
(** 3,028 *)

val expected_shrinks : int
(** 1,499 *)

val record : Mk_obs.Metrics.t -> kernel:string -> Mk_kernel.Workload.op list -> unit
(** Count a trace's brk traffic into a metrics registry, under the
    same [mem/brk_queries]/[brk_grows]/[brk_shrinks] names the
    simulator's own hook sites use — so a static trace and a live run
    land in comparable keys. *)

val count_stats : Mk_kernel.Workload.op list -> int * int * int
(** (queries, grows, shrinks) in a trace; a {!record} into a scratch
    registry, read back. *)
