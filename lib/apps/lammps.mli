(** LAMMPS — molecular dynamics, Lennard-Jones weak-scaling deck
    (lj.weak.4x2x2x7900), 64 ranks × 2 threads.

    The suite's communication-heavy compute-bound member and the one
    workload where "neither mOS nor McKernel performed better than
    Linux at scale": every timestep exchanges ghost atoms with all
    neighbours, and "the Intel Omni-Path network involves system
    calls for certain operations … This introduces extra latency and
    drop in network bandwidth when running on McKernel, because
    system calls on device files are offloaded to Linux" (Section
    IV).  The many rendezvous messages per node per step funnel their
    control syscalls through the few Linux cores. *)

val app : App.t
