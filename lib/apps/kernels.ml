let mib = 1024 * 1024
let gib = 1024 * mib

let weak_counts = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048 ]
let lammps_counts = [ 16; 32; 64; 128; 256; 512; 1024; 2048 ]
let cube_counts = [ 1; 8; 27; 64; 125; 216; 343; 512; 729; 1000; 1331; 1728 ]

let cg_bundle ~stream ~dots ~halo_bytes ~neighbors ~msgs_per_node ?(yields = 0) () =
  [
    App.Stream stream;
    App.Allreduce { bytes = 16; count = dots };
    App.Halo { bytes = halo_bytes; neighbors; msgs_per_node };
  ]
  @ (if yields > 0 then [ App.Yields yields ] else [])

let uniform_footprint bytes ~nodes:_ ~local_rank:_ = bytes

let imbalanced_footprint ~base ~spread ~nodes:_ ~local_rank =
  (* Deterministic ±spread pattern with zero mean over 4 ranks. *)
  let factors = [| 1.0 +. spread; 1.0 -. spread; 1.0 +. (spread /. 2.0); 1.0 -. (spread /. 2.0) |] in
  int_of_float (float_of_int base *. factors.(local_rank mod 4))

let weak_work ~per_node ~nodes = per_node *. float_of_int nodes
