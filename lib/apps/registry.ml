let fig4 =
  [ Amg.app; Ccs_qcd.app; Geofem.app; Hpcg.app; Lammps.app; Milc.app; Minife.app ]

let all = fig4 @ [ Lulesh.app ]

let normalise s = String.lowercase_ascii (String.trim s)

let aliases =
  [
    ("amg", "AMG2013");
    ("amg2013", "AMG2013");
    ("ccs-qcd", "CCS-QCD");
    ("ccsqcd", "CCS-QCD");
    ("qcd", "CCS-QCD");
    ("geofem", "GeoFEM");
    ("hpcg", "HPCG");
    ("lammps", "LAMMPS");
    ("milc", "MILC");
    ("minife", "MiniFE");
    ("lulesh", "Lulesh2.0");
    ("lulesh2.0", "Lulesh2.0");
  ]

let find name =
  let n = normalise name in
  let target =
    match List.assoc_opt n aliases with Some t -> t | None -> name
  in
  List.find_opt (fun (a : App.t) -> normalise a.App.name = normalise target) all

let names = List.map (fun (a : App.t) -> a.App.name) all
