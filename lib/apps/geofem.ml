open Kernels

let app =
  {
    App.name = "GeoFEM";
    ranks_per_node = 64;
    threads_per_rank = 1;
    scaling = App.Weak;
    node_counts = weak_counts;
    footprint_per_rank = uniform_footprint (140 * mib);
    heap_per_rank = 0;
    shm_bytes_per_rank = 16 * mib;
    iteration =
      (fun ~nodes:_ ->
        cg_bundle ~stream:(110 * mib) ~dots:6
          ~halo_bytes:(24 * 1024)
          ~neighbors:6 ~msgs_per_node:64 ~yields:12 ());
    iterations = 150;
    sim_iterations = 12;
    trace = None;
    work_per_iteration = (fun ~nodes -> weak_work ~per_node:1.0e6 ~nodes);
    fom_unit = "FOM/s";
    linux_ddr_only = false;
  }
