(** GeoFEM — parallel iterative solver with selective-blocking
    preconditioning for nonlinear contact problems (Earth Simulator
    heritage).  Weak-scaled ICCG: bandwidth-bound SpMV sweeps,
    a handful of dot-product reductions, small halos. *)

val app : App.t
