open Kernels

let app =
  {
    App.name = "LAMMPS";
    ranks_per_node = 64;
    threads_per_rank = 2;
    scaling = App.Weak;
    node_counts = lammps_counts;
    footprint_per_rank = uniform_footprint (60 * mib);
    heap_per_rank = 0;
    shm_bytes_per_rank = 8 * mib;
    iteration =
      (fun ~nodes:_ ->
        [
          (* Force computation: pair interactions are CPU-heavy with
             a modest neighbour-list sweep. *)
          App.Cpu (Mk_engine.Units.of_ms 2.4);
          App.Stream (18 * mib);
          (* Ghost-atom exchange every step: the surface ranks of the
             node push ~350 KB rendezvous messages.  Global
             reductions (thermo output) only run every ~100 steps,
             so a timestep's only synchronisation is with its
             neighbours. *)
          App.Halo { bytes = 128 * 1024; neighbors = 6; msgs_per_node = 900 };
        ]);
    iterations = 100;
    sim_iterations = 10;
    trace = None;
    work_per_iteration = (fun ~nodes:_ -> 1.0);
    fom_unit = "timesteps/s";
    linux_ddr_only = false;
  }
