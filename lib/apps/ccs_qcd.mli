(** CCS-QCD — lattice QCD with clover fermions (Fiber miniapp).

    The paper's memory-hierarchy stress case: "we chose a large
    problem size that does not fit into MCDRAM" (Section III-C).
    4 ranks × 32 threads per node, ~22 GB per node against 16 GB of
    MCDRAM.  The LWKs allocate MCDRAM until it runs out and spill to
    DDR4 transparently; Linux in SNC-4 mode cannot express that
    policy, so the paper ran it out of DDR4 — hence Figure 5a's up to
    39% (McKernel) and 28% (mOS) wins.  Rank footprints are
    imbalanced, which is why McKernel's demand-paging fallback packs
    MCDRAM better than mOS's upfront per-rank division (Section IV). *)

val app : App.t
