open Mk_kernel

let iterations = 750

let mib = 1024 * 1024

(* Per-iteration churn: 10 sbrk(0) queries, 4 grows totalling
   ~29.9 MiB of temporaries, 2 shrinks giving them back (the last
   timestep leaves its temporaries for process exit: 1 shrink).
   Setup: 26 queries and 28 grows building a 55 MiB persistent heap.
   Totals: queries 26 + 750*10 = 7,526; grows 28 + 750*4 = 3,028;
   shrinks 749*2 + 1 = 1,499.  Peak = 55 + 30 ≈ 85 MiB; cumulative
   growth = 55 MiB + 750 * 29.9 MiB ≈ 22 GB. *)

let scaled scale bytes = int_of_float (scale *. float_of_int bytes)

let setup ~scale =
  let persistent_total = scaled scale (55 * mib) in
  let chunk = persistent_total / 28 in
  let queries = List.init 26 (fun _ -> Workload.Brk 0) in
  let grows =
    List.concat_map
      (fun _ -> [ Workload.Brk chunk; Workload.Touch_heap ])
      (List.init 28 (fun i -> i))
  in
  queries @ grows

let iteration_grows = 4
let iteration_queries = 10
let iteration_temp_bytes = 31_404_032 (* ≈ 29.95 MiB, split over 4 grows *)

let iteration ~scale ~iteration:i =
  if i < 0 || i >= iterations then
    invalid_arg (Printf.sprintf "Lulesh_trace.iteration: %d outside [0,%d)" i iterations);
  let temp = scaled scale iteration_temp_bytes in
  let grow = temp / iteration_grows in
  let queries = List.init iteration_queries (fun _ -> Workload.Brk 0) in
  let grows =
    List.concat_map
      (fun _ -> [ Workload.Brk grow; Workload.Touch_heap ])
      (List.init iteration_grows (fun k -> k))
  in
  let shrink_total = grow * iteration_grows in
  let shrinks =
    if i = iterations - 1 then [ Workload.Brk (-shrink_total) ]
    else
      [
        Workload.Brk (-(shrink_total / 2));
        Workload.Brk (-(shrink_total - (shrink_total / 2)));
      ]
  in
  queries @ grows @ shrinks

let full_trace ~scale =
  setup ~scale
  @ List.concat_map
      (fun i -> iteration ~scale ~iteration:i)
      (List.init iterations (fun i -> i))

let expected_queries = 7_526
let expected_grows = 3_028
let expected_shrinks = 1_499

(* The same names {!Mk_mem.Address_space.brk} counts through the
   ambient hook, so a recorded trace lines up with a simulated run. *)
let brk_key ~kernel name = Mk_obs.Key.v ~kernel ~subsystem:"mem" ~name ()

let record m ~kernel ops =
  List.iter
    (fun op ->
      match op with
      | Workload.Brk 0 -> Mk_obs.Metrics.add m (brk_key ~kernel "brk_queries") 1
      | Workload.Brk d when d > 0 ->
          Mk_obs.Metrics.add m (brk_key ~kernel "brk_grows") 1
      | Workload.Brk _ -> Mk_obs.Metrics.add m (brk_key ~kernel "brk_shrinks") 1
      | _ -> ())
    ops

let count_stats ops =
  let m = Mk_obs.Metrics.create () in
  record m ~kernel:"trace" ops;
  let c name = Mk_obs.Metrics.counter m (brk_key ~kernel:"trace" name) in
  (c "brk_queries", c "brk_grows", c "brk_shrinks")
