(** AMG2013 — parallel algebraic multigrid (BoomerAMG).

    Weak-scaled.  A V-cycle touches every multigrid level: moderate
    bandwidth demand, many small reductions (norms and inner products
    on each level) and many small halo messages.  Fits comfortably in
    MCDRAM.  This is the workload for which the paper measured a 9%
    improvement at 16 nodes from [--mpol-shm-premap] together with
    [--disable-sched-yield] (Section IV) — it yields a lot while
    polling its many-message exchanges. *)

val app : App.t
