(** HPCG — the high-performance conjugate-gradient benchmark:
    multigrid-preconditioned CG over a 27-point stencil.
    Weak-scaled, 16 ranks × 4 threads, bandwidth-dominated with a few
    global reductions per iteration and medium halos (which cross the
    NIC's eager threshold, so its control syscalls show up). *)

val app : App.t
