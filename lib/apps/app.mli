(** Mechanistic application models.

    Each of the paper's eight applications is described by what it
    does to the operating system per iteration — how much memory it
    streams, how its footprint compares to MCDRAM, how often it
    synchronises, how many internode messages it sends and of what
    size, and how it churns the heap.  Those are the only properties
    the paper's per-application results depend on, so a faithful
    phase description reproduces each curve from its mechanism.

    An iteration is a list of {!phase}s executed by every rank; the
    cluster driver turns them into per-node clock updates. *)

type phase =
  | Stream of int
      (** Sweep [bytes] of the rank's working set (bandwidth-bound). *)
  | Cpu of Mk_engine.Units.time  (** CPU-bound work, noise-inflated. *)
  | Allreduce of { bytes : int; count : int }
      (** [count] back-to-back allreduces of [bytes] (CG dots, norms). *)
  | Halo of { bytes : int; neighbors : int; msgs_per_node : int }
      (** Nearest-neighbour exchange; [msgs_per_node] internode
          messages leave each node (drives NIC control syscalls). *)
  | Yields of int
      (** sched_yield calls per rank from MPI busy-wait loops. *)

type scaling = Weak | Strong

type t = {
  name : string;
  ranks_per_node : int;
  threads_per_rank : int;
  scaling : scaling;
  node_counts : int list;  (** the paper's sweep for this app *)
  footprint_per_rank : nodes:int -> local_rank:int -> int;
      (** bytes of anonymous working set each rank maps at start-up;
          may vary per local rank (domain imbalance) *)
  heap_per_rank : int;
      (** expected peak heap per rank (feeds MCDRAM-sharing quotas;
          actual heap behaviour comes from the [trace]) *)
  shm_bytes_per_rank : int;  (** MPI intra-node window size *)
  iteration : nodes:int -> phase list;
  iterations : int;  (** real iteration count (extrapolated) *)
  sim_iterations : int;  (** iterations actually simulated *)
  trace : (nodes:int -> iteration:int -> Mk_kernel.Workload.op list) option;
      (** per-iteration node-tier operations (heap churn à la Lulesh);
          [iteration] = -1 requests the setup prologue *)
  work_per_iteration : nodes:int -> float;
      (** job-wide work per iteration, in [fom_unit]-seconds *)
  fom_unit : string;
  linux_ddr_only : bool;
      (** the paper ran the Linux baseline out of DDR4 only (CCS-QCD,
          Section III-B) *)
}

val phases_pp : Format.formatter -> phase -> unit

val fom : t -> nodes:int -> total_time:Mk_engine.Units.time -> float
(** Figure of merit: work·iterations / seconds. *)

val allreduce_count : phase list -> int
val internode_messages : phase list -> int
