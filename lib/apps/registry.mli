(** All application models, in the order of Figure 4. *)

val all : App.t list
(** The seven Figure-4 applications plus Lulesh 2.0 (plotted
    separately because of its cubic node counts). *)

val fig4 : App.t list
(** AMG2013, CCS-QCD, GeoFEM, HPCG, LAMMPS, MILC, MiniFE. *)

val find : string -> App.t option
(** Case-insensitive lookup by name or common alias. *)

val names : string list
