(** MiniFE — implicit finite-element proxy (Mantevo), 660×660×660,
    64 ranks × 4 threads, strong-scaled — the only strong-scaled
    member of the suite (Section III-B).

    "MiniFE stands out as the application that ran almost seven
    times faster on the LWK than on Linux on 1,024 nodes … that
    apparent performance gain is actually due to Linux performance
    dropping precariously … MiniFE is sensitive to the performance
    of MPI collective operations; e.g., MPI_Allreduce(), which
    typically benefit from jitter-less operating system kernels"
    (Section III-C).  Strong scaling shrinks the per-rank compute
    between reductions until the collective — and therefore the
    slowest straggler of 131,072 ranks — is everything. *)

val app : App.t

val total_rows : int
(** 660³. *)
