open Kernels

let app =
  {
    App.name = "HPCG";
    ranks_per_node = 16;
    threads_per_rank = 4;
    scaling = App.Weak;
    node_counts = weak_counts;
    footprint_per_rank = uniform_footprint (700 * mib);
    heap_per_rank = 0;
    shm_bytes_per_rank = 16 * mib;
    iteration =
      (fun ~nodes:_ ->
        cg_bundle
          ~stream:(520 * mib)
          ~dots:4
          ~halo_bytes:(144 * 1024)
          ~neighbors:6 ~msgs_per_node:36 ~yields:8 ());
    iterations = 60;
    sim_iterations = 10;
    trace = None;
    work_per_iteration = (fun ~nodes -> weak_work ~per_node:1.0e6 ~nodes);
    fom_unit = "Gflops";
    linux_ddr_only = false;
  }
