(** Shared phase-building helpers for the application models. *)

val mib : int
val gib : int

val weak_counts : int list
(** 1, 2, 4, …, 2048 — the node counts of Figure 4. *)

val lammps_counts : int list
(** 16 … 2048 (Figure 6b starts at 16). *)

val cube_counts : int list
(** 1, 8, 27, …, 1728 — Lulesh's cubic node counts (Figure 6a). *)

val cg_bundle :
  stream:int ->
  dots:int ->
  halo_bytes:int ->
  neighbors:int ->
  msgs_per_node:int ->
  ?yields:int ->
  unit ->
  App.phase list
(** The conjugate-gradient iteration shape shared by half the suite:
    a bandwidth-bound sweep, a few tiny allreduces (dot products),
    a nearest-neighbour halo, some busy-wait yields. *)

val uniform_footprint : int -> nodes:int -> local_rank:int -> int
(** Same footprint for every rank (weak scaling). *)

val imbalanced_footprint :
  base:int -> spread:float -> nodes:int -> local_rank:int -> int
(** Rank footprints alternating ±[spread] around [base] — the
    domain-decomposition imbalance that lets McKernel's global
    MCDRAM pool beat mOS's upfront per-rank division (Section IV). *)

val weak_work : per_node:float -> nodes:int -> float
(** Work per iteration proportional to node count. *)
