(** MILC — lattice QCD (su3_rmd).  Weak-scaled, bandwidth-bound,
    and the suite's most reduction-hungry member: the CG solver for
    the fermion force fires tiny allreduces continuously.  That makes
    it the second-strongest amplifier of OS jitter after MiniFE —
    the Figure 4 markers for MILC run off the clipped axis at large
    node counts. *)

val app : App.t
