open Kernels

let total_rows = 660 * 660 * 660

(* 27-point stencil in double precision: matrix + CG vectors come to
   ~350 bytes per row. *)
let bytes_per_row = 350

let total_bytes = total_rows * bytes_per_row

let app =
  {
    App.name = "MiniFE";
    ranks_per_node = 64;
    threads_per_rank = 4;
    scaling = App.Strong;
    node_counts = weak_counts;
    footprint_per_rank =
      (fun ~nodes ~local_rank:_ -> max (4 * mib) (total_bytes / (64 * nodes)));
    heap_per_rank = 0;
    shm_bytes_per_rank = 16 * mib;
    iteration =
      (fun ~nodes ->
        let per_rank = max (2 * mib) (total_bytes / (64 * nodes)) in
        let surface =
          (* Halo surface shrinks with the 2/3 power of the block. *)
          max 2048
            (int_of_float (8.0 *. (float_of_int (total_rows / (64 * nodes)) ** (2.0 /. 3.0))))
        in
        [
          App.Stream per_rank;
          App.Allreduce { bytes = 16; count = 3 };
          App.Halo { bytes = surface; neighbors = 6; msgs_per_node = 72 };
          App.Yields 150;
        ]);
    iterations = 200;
    sim_iterations = 12;
    trace = None;
    work_per_iteration =
      (fun ~nodes:_ ->
        (* 2 flops per nonzero, 27 nonzeros per row, in Mflops. *)
        2.0 *. 27.0 *. float_of_int total_rows /. 1.0e6);
    fom_unit = "Mflops";
    linux_ddr_only = false;
  }
