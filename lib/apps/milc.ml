open Kernels

let app =
  {
    App.name = "MILC";
    ranks_per_node = 64;
    threads_per_rank = 1;
    scaling = App.Weak;
    node_counts = weak_counts;
    footprint_per_rank = uniform_footprint (120 * mib);
    heap_per_rank = 0;
    shm_bytes_per_rank = 16 * mib;
    iteration =
      (fun ~nodes:_ ->
        [
          App.Stream (70 * mib);
          (* CG inner loop: a reduction every few matrix applies. *)
          App.Allreduce { bytes = 16; count = 24 };
          App.Halo { bytes = 48 * 1024; neighbors = 8; msgs_per_node = 96 };
          App.Yields 24;
        ]);
    iterations = 200;
    sim_iterations = 10;
    trace = None;
    work_per_iteration = (fun ~nodes -> weak_work ~per_node:1.0e6 ~nodes);
    fom_unit = "FOM/s";
    linux_ddr_only = false;
  }
