(** Lulesh 2.0 — Livermore unstructured shock hydrodynamics,
    [-s 50], 64 ranks × 2 threads, cubic node counts (Figure 6a).

    The heap-management showcase: "The significant performance
    improvement of Lulesh 2.0 … comes from the overhead of the brk()
    system call" (Section IV).  Every timestep allocates and frees
    ~30 MB of temporaries through brk; under Linux each round trip
    releases the pages and the regrowth faults and re-zeroes them,
    while the LWKs keep the memory mapped and take the fast path.
    The replayed trace reproduces the paper's call counts exactly
    (see {!Lulesh_trace}). *)

val app : App.t

val trace_scale : float
(** Size multiplier from the profiled [-s 30] trace to the measured
    [-s 50] runs: (50/30)³. *)
