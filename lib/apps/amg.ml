open Kernels

let app =
  {
    App.name = "AMG2013";
    ranks_per_node = 64;
    threads_per_rank = 1;
    scaling = App.Weak;
    node_counts = weak_counts;
    footprint_per_rank = uniform_footprint (160 * mib);
    heap_per_rank = 0;
    shm_bytes_per_rank = 24 * mib;
    iteration =
      (fun ~nodes:_ ->
        [
          (* One V-cycle: fine-level relaxation dominates bandwidth,
             coarse levels add reductions and message count. *)
          App.Stream (120 * mib);
          App.Allreduce { bytes = 8; count = 6 };
          App.Halo { bytes = 40 * 1024; neighbors = 6; msgs_per_node = 96 };
          App.Yields 2600;
        ]);
    iterations = 30;
    sim_iterations = 12;
    trace = None;
    work_per_iteration = (fun ~nodes -> weak_work ~per_node:1.0e6 ~nodes);
    fom_unit = "FOM/s";
    linux_ddr_only = false;
  }
