open Kernels

let app =
  {
    App.name = "CCS-QCD";
    ranks_per_node = 4;
    threads_per_rank = 32;
    scaling = App.Weak;
    node_counts = weak_counts;
    (* ~22 GB per node, imbalanced ±15% across the four ranks. *)
    footprint_per_rank =
      (fun ~nodes ~local_rank ->
        imbalanced_footprint
          ~base:(5 * gib + (512 * mib))
          ~spread:0.15 ~nodes ~local_rank);
    heap_per_rank = 0;
    shm_bytes_per_rank = 32 * mib;
    iteration =
      (fun ~nodes:_ ->
        (* One BiCGStab bundle of the clover solver: the hopping-term
           stencil is flop-heavy on KNL's wide vectors, with roughly a
           quarter of the time in bandwidth-bound sweeps — the part
           the MCDRAM spill accelerates. *)
        App.Cpu (Mk_engine.Units.of_ms 70.0)
        :: cg_bundle
             ~stream:(950 * mib)
             ~dots:8
             ~halo_bytes:(2 * mib)
             ~neighbors:8 ~msgs_per_node:24 ~yields:16 ());
    iterations = 120;
    sim_iterations = 8;
    trace = None;
    work_per_iteration = (fun ~nodes -> weak_work ~per_node:1.0e6 ~nodes);
    fom_unit = "Mflops/s/node";
    linux_ddr_only = true;
  }
