open Mk_engine

type result = { completion : Units.time; messages : int }

(* Both formulations share the same tree and the same edge pricing so
   that the silent-profile case agrees bit for bit. *)
let edge_cost fabric ~src ~dst ~bytes =
  Mk_fabric.Fabric.wire_time fabric ~src ~dst ~bytes

let intra_halves ~ranks_per_node ~bytes =
  let intra = Mk_mpi.Shm.intra_allreduce ~ranks:ranks_per_node ~bytes in
  (intra / 2, intra - (intra / 2))

(* Reduce/broadcast round structure of Mk_mpi.Collective.allreduce:
   in reduce round k (1,2,4,...), node i with i mod 2k = 0 receives
   from i+k; broadcast reverses. *)
let reduce_rounds nodes =
  let rec go k acc = if k < nodes then go (2 * k) (k :: acc) else acc in
  List.rev (go 1 [])

let allreduce_loop ~nodes ~ranks_per_node ~threads_per_rank ~window ~iterations
    ~bytes ~profile ~fabric ~seed =
  if nodes <= 0 || iterations <= 0 then
    invalid_arg "Cluster_des.allreduce_loop: positive sizes required";
  let stragglers = ranks_per_node * threads_per_rank in
  let rngs = Array.init nodes (fun n -> Rng.split (Rng.create (seed * 7919)) (1000 + n)) in
  let half1, half2 = intra_halves ~ranks_per_node ~bytes in
  let rounds = reduce_rounds nodes in
  let sim = Sim.create () in
  let messages = ref 0 in
  (* Per-node time at which the current iteration step completed; the
     DES threads these through events rather than array sweeps. *)
  let exit_time = Array.make nodes 0 in
  (* One iteration: driven recursively; [starts.(i)] is when node i may
     begin its compute window. *)
  let rec iteration iter starts =
    if iter < iterations then begin
      (* ready.(i): when node i finished local reduce and may take
         part in internode rounds; filled per round below. *)
      let ready = Array.make nodes 0 in
      let pending = ref nodes in
      let after_arrivals sim =
        (* All arrival events fired; run the tree with message events. *)
        let rec run_reduce remaining sim =
          match remaining with
          | [] -> run_broadcast (List.rev rounds) sim
          | k :: rest ->
              (* All pairs of this round exchange concurrently; the
                 round completes when the last message lands. *)
              let outstanding = ref 0 in
              let i = ref 0 in
              while !i < nodes do
                let recv = !i and send = !i + k in
                if send < nodes then begin
                  incr outstanding;
                  incr messages;
                  let arrival =
                    ready.(send) + edge_cost fabric ~src:send ~dst:recv ~bytes
                  in
                  ignore
                    (Sim.schedule sim ~at:(max (Sim.now sim) arrival) (fun sim ->
                         ready.(recv) <- max ready.(recv) arrival;
                         decr outstanding;
                         if !outstanding = 0 then run_reduce rest sim))
                end;
                i := !i + (2 * k)
              done;
              if !outstanding = 0 then run_reduce rest sim
        and run_broadcast remaining sim =
          match remaining with
          | [] ->
              Array.iteri (fun n t -> exit_time.(n) <- t + half2) ready;
              iteration (iter + 1) (Array.copy exit_time)
          | k :: rest ->
              let outstanding = ref 0 in
              let i = ref 0 in
              while !i < nodes do
                let send = !i and recv = !i + k in
                if recv < nodes then begin
                  incr outstanding;
                  incr messages;
                  let arrival =
                    ready.(send) + edge_cost fabric ~src:send ~dst:recv ~bytes
                  in
                  ignore
                    (Sim.schedule sim ~at:(max (Sim.now sim) arrival) (fun sim ->
                         ready.(recv) <- max ready.(recv) arrival;
                         decr outstanding;
                         if !outstanding = 0 then run_broadcast rest sim))
                end;
                i := !i + (2 * k)
              done;
              if !outstanding = 0 then run_broadcast rest sim
        in
        run_reduce rounds sim
      in
      (* Arrival events: compute window + straggler delay + local
         reduce half. *)
      Array.iteri
        (fun n start ->
          let skew =
            Mk_noise.Injector.max_delay profile rngs.(n) ~dur:window
              ~ranks:stragglers
          in
          let at = start + window + skew + half1 in
          ignore
            (Sim.schedule sim ~at:(max (Sim.now sim) at) (fun sim ->
                 ready.(n) <- at;
                 decr pending;
                 if !pending = 0 then after_arrivals sim)))
        starts
    end
  in
  iteration 0 (Array.make nodes 0);
  Sim.run sim;
  { completion = Array.fold_left max 0 exit_time; messages = !messages }

(* ------------------------------------------------------------------ *)
(* Sharded parallel path.                                             *)
(*                                                                    *)
(* Same tree, same edge pricing, different execution: nodes are       *)
(* partitioned by fabric region onto [shards] independent event heaps *)
(* ({!Mk_engine.Shard}), and the global round barriers of the serial  *)
(* loop are replaced by per-node dataflow.  Node j's reduce value is  *)
(* final once its start and its statically known inputs (j + k for    *)
(* rounds k with 2k | j, j + k < nodes) have arrived — in the serial  *)
(* loop too, j's sender in round k has received everything it ever    *)
(* will before that round is scheduled, so the value read per edge is *)
(* identical and only the firing *times* of events differ, which the  *)
(* result cannot observe.  A node's broadcast arrival is stamped      *)
(* strictly later than all its reduce inputs (the parent's value      *)
(* already dominates the node's own), so a two-phase counter per node *)
(* is enough: no event can arrive out of phase.                       *)
(*                                                                    *)
(* Cross-shard messages are cross-region by construction (a shard     *)
(* owns whole regions), so every one costs at least the healthy       *)
(* 3-hop wire time — Fabric.min_cross_region_time, the lookahead.    *)

type sharding = {
  shard_events : int;  (** DES events fired, summed over shards *)
  cross_messages : int;  (** node messages that crossed a shard boundary *)
  null_messages : int;  (** CMB null promises exchanged *)
  horizon_stalls : int;  (** shard-epochs spent waiting on the horizon *)
  epochs : int;  (** conservative synchronisation rounds *)
  fast_forwarded : int;  (** iterations advanced in closed form *)
}

let sharded_allreduce_loop ?pool ?observer ?(fast_forward = true) ~shards
    ~nodes ~ranks_per_node ~threads_per_rank ~window ~iterations ~bytes
    ~profile ~fabric ~seed () =
  if nodes <= 0 || iterations <= 0 then
    invalid_arg "Cluster_des.sharded_allreduce_loop: positive sizes required";
  if shards <= 0 then
    invalid_arg "Cluster_des.sharded_allreduce_loop: shards must be positive";
  let stragglers = ranks_per_node * threads_per_rank in
  let rngs =
    Array.init nodes (fun n -> Rng.split (Rng.create (seed * 7919)) (1000 + n))
  in
  let half1, half2 = intra_halves ~ranks_per_node ~bytes in
  let topo = Mk_fabric.Fabric.topology fabric in
  let shard_of = Array.init nodes (fun n -> Mk_fabric.Topology.region topo n mod shards) in
  let members = Array.make shards [] in
  for n = nodes - 1 downto 0 do
    members.(shard_of.(n)) <- n :: members.(shard_of.(n))
  done;
  let lookahead = Mk_fabric.Fabric.min_cross_region_time fabric ~bytes in
  let rounds_desc = List.rev (reduce_rounds nodes) in
  (* Broadcast sends of node j, in the serial round order (descending
     k); by symmetry the same list read backwards is j's reduce input
     set, so one table serves both directions. *)
  let children =
    Array.init nodes (fun j ->
        List.filter (fun k -> j mod (2 * k) = 0 && j + k < nodes) rounds_desc)
  in
  let fan_in = Array.map List.length children in
  let lsb j = j land -j in
  (* Per-node state, touched only by the owning shard's current
     domain; epoch barriers order the handoffs. *)
  let value = Array.make nodes 0 in
  let await = Array.make nodes 0 in
  let bcast = Array.make nodes false in
  let exits = Array.make nodes 0 in
  let sent = Array.make shards 0 in
  let edge src dst = edge_cost fabric ~src ~dst ~bytes in
  let rec arrive sh n v =
    if v > value.(n) then value.(n) <- v;
    await.(n) <- await.(n) - 1;
    if await.(n) = 0 then
      if bcast.(n) then emit sh n
      else if n = 0 then emit sh 0
      else begin
        bcast.(n) <- true;
        await.(n) <- 1;
        post sh n (n - lsb n)
      end
  and emit sh n =
    List.iter (fun k -> post sh n (n + k)) children.(n);
    exits.(n) <- value.(n) + half2
  and post sh src dst =
    sent.(Mk_engine.Shard.id sh) <- sent.(Mk_engine.Shard.id sh) + 1;
    let at = value.(src) + edge src dst in
    Mk_engine.Shard.send sh ~shard:shard_of.(dst) ~at dst
  in
  let receive sh dst = arrive sh dst (Mk_engine.Shard.now sh) in
  (* [exits] doubles as next-iteration start times (zero initially). *)
  let init sh =
    List.iter
      (fun n ->
        (* mklint: allow R8 — the per-node arrays are partitioned, not
           shared: node [n] belongs to exactly one shard (members /
           shard_of), so each cell is only ever written by the domain
           running that shard, and the epoch barrier in Shard.run
           orders the cross-iteration handoff of [exits]. *)
        value.(n) <- 0; bcast.(n) <- false; await.(n) <- fan_in.(n) + 1;
        let skew =
          Mk_noise.Injector.max_delay profile rngs.(n) ~dur:window
            ~ranks:stragglers
        in
        let at = exits.(n) + window + skew + half1 in
        Mk_engine.Shard.schedule sh ~at (fun sh -> arrive sh n at))
      members.(Mk_engine.Shard.id sh)
  in
  let events = ref 0 and crossings = ref 0 and nulls = ref 0 in
  let stalls = ref 0 and epochs = ref 0 in
  let per_shard_events = Array.make shards 0 in
  let per_shard_nulls = Array.make shards 0 in
  let per_shard_stalls = Array.make shards 0 in
  (* Closed-form fast-forward.  With a silent profile the iteration
     map on exit vectors is max-plus rank-one: e'(j) = half2 + down(j)
     + max_n (e(n) + window + half1 + up(n)), so adding a constant to
     every exit adds the same constant to every next exit.  Once two
     consecutive iterations differ by a uniform delta d (and moved the
     same message count, as a cross-check), all remaining iterations
     provably replay shifted by d — advance the population in O(nodes)
     and skip the events entirely. *)
  let silent = profile.Mk_noise.Profile.sources = [] in
  let prev_exits = Array.make nodes 0 in
  let prev_sent = ref (-1) in
  let have_prev = ref false in
  let skipped = ref 0 in
  let iter = ref 0 in
  let running = ref true in
  while !running && !iter < iterations do
    let sent_before = Array.fold_left ( + ) 0 sent in
    Array.blit exits 0 prev_exits 0 nodes;
    let stats =
      Mk_engine.Shard.run ?pool ?observer ~shards ~lookahead ~init ~receive ()
    in
    Array.iteri
      (fun s n ->
        per_shard_events.(s) <- per_shard_events.(s) + n;
        events := !events + n)
      stats.Mk_engine.Shard.events;
    Array.iter (fun n -> crossings := !crossings + n)
      stats.Mk_engine.Shard.cross_messages;
    Array.iteri
      (fun s n ->
        per_shard_nulls.(s) <- per_shard_nulls.(s) + n;
        nulls := !nulls + n)
      stats.Mk_engine.Shard.null_messages;
    Array.iteri
      (fun s n ->
        per_shard_stalls.(s) <- per_shard_stalls.(s) + n;
        stalls := !stalls + n)
      stats.Mk_engine.Shard.horizon_stalls;
    epochs := !epochs + stats.Mk_engine.Shard.epochs;
    incr iter;
    let m_iter = Array.fold_left ( + ) 0 sent - sent_before in
    if fast_forward && silent && !iter < iterations then begin
      if !have_prev then begin
        let d = exits.(0) - prev_exits.(0) in
        let uniform = ref (d > 0) in
        for n = 1 to nodes - 1 do
          if exits.(n) - prev_exits.(n) <> d then uniform := false
        done;
        if !uniform && m_iter = !prev_sent then begin
          let remaining = iterations - !iter in
          skipped := remaining;
          for n = 0 to nodes - 1 do
            exits.(n) <- exits.(n) + (remaining * d)
          done;
          sent.(0) <- sent.(0) + (remaining * m_iter);
          running := false
        end
      end;
      have_prev := true;
      prev_sent := m_iter
    end
  done;
  for s = 0 to shards - 1 do
    if per_shard_events.(s) > 0 then
      Mk_obs.Hook.count_node ~node:s ~subsystem:"des" ~name:"events"
        per_shard_events.(s);
    if per_shard_nulls.(s) > 0 then
      Mk_obs.Hook.count_node ~node:s ~subsystem:"des" ~name:"null_messages"
        per_shard_nulls.(s);
    if per_shard_stalls.(s) > 0 then
      Mk_obs.Hook.count_node ~node:s ~subsystem:"des" ~name:"horizon_stalls"
        per_shard_stalls.(s)
  done;
  if !epochs > 0 then Mk_obs.Hook.count ~subsystem:"des" ~name:"epochs" !epochs;
  if !skipped > 0 then
    Mk_obs.Hook.count ~subsystem:"des" ~name:"fast_forward_iters" !skipped;
  ( {
      completion = Array.fold_left max 0 exits;
      messages = Array.fold_left ( + ) 0 sent;
    },
    {
      shard_events = !events;
      cross_messages = !crossings;
      null_messages = !nulls;
      horizon_stalls = !stalls;
      epochs = !epochs;
      fast_forwarded = !skipped;
    } )

let analytic_allreduce_loop ~nodes ~ranks_per_node ~threads_per_rank ~window
    ~iterations ~bytes ~profile ~fabric ~seed =
  let stragglers = ranks_per_node * threads_per_rank in
  let rngs = Array.init nodes (fun n -> Rng.split (Rng.create (seed * 7919)) (1000 + n)) in
  let env =
    {
      Mk_mpi.Collective.fabric;
      syscall_cost = (fun _ -> 0);
      intra_ranks = ranks_per_node;
    }
  in
  let clocks = Array.make nodes 0 in
  for _ = 1 to iterations do
    Array.iteri
      (fun n c ->
        let skew =
          Mk_noise.Injector.max_delay profile rngs.(n) ~dur:window ~ranks:stragglers
        in
        clocks.(n) <- c + window + skew)
      clocks;
    Mk_mpi.Collective.allreduce env ~clocks ~bytes
  done;
  Array.fold_left max 0 clocks
