open Mk_engine

type result = { completion : Units.time; messages : int }

(* Both formulations share the same tree and the same edge pricing so
   that the silent-profile case agrees bit for bit. *)
let edge_cost fabric ~src ~dst ~bytes =
  Mk_fabric.Fabric.wire_time fabric ~src ~dst ~bytes

let intra_halves ~ranks_per_node ~bytes =
  let intra = Mk_mpi.Shm.intra_allreduce ~ranks:ranks_per_node ~bytes in
  (intra / 2, intra - (intra / 2))

(* Reduce/broadcast round structure of Mk_mpi.Collective.allreduce:
   in reduce round k (1,2,4,...), node i with i mod 2k = 0 receives
   from i+k; broadcast reverses. *)
let reduce_rounds nodes =
  let rec go k acc = if k < nodes then go (2 * k) (k :: acc) else acc in
  List.rev (go 1 [])

let allreduce_loop ~nodes ~ranks_per_node ~threads_per_rank ~window ~iterations
    ~bytes ~profile ~fabric ~seed =
  if nodes <= 0 || iterations <= 0 then
    invalid_arg "Cluster_des.allreduce_loop: positive sizes required";
  let stragglers = ranks_per_node * threads_per_rank in
  let rngs = Array.init nodes (fun n -> Rng.split (Rng.create (seed * 7919)) (1000 + n)) in
  let half1, half2 = intra_halves ~ranks_per_node ~bytes in
  let rounds = reduce_rounds nodes in
  let sim = Sim.create () in
  let messages = ref 0 in
  (* Per-node time at which the current iteration step completed; the
     DES threads these through events rather than array sweeps. *)
  let exit_time = Array.make nodes 0 in
  (* One iteration: driven recursively; [starts.(i)] is when node i may
     begin its compute window. *)
  let rec iteration iter starts =
    if iter < iterations then begin
      (* ready.(i): when node i finished local reduce and may take
         part in internode rounds; filled per round below. *)
      let ready = Array.make nodes 0 in
      let pending = ref nodes in
      let after_arrivals sim =
        (* All arrival events fired; run the tree with message events. *)
        let rec run_reduce remaining sim =
          match remaining with
          | [] -> run_broadcast (List.rev rounds) sim
          | k :: rest ->
              (* All pairs of this round exchange concurrently; the
                 round completes when the last message lands. *)
              let outstanding = ref 0 in
              let i = ref 0 in
              while !i < nodes do
                let recv = !i and send = !i + k in
                if send < nodes then begin
                  incr outstanding;
                  incr messages;
                  let arrival =
                    ready.(send) + edge_cost fabric ~src:send ~dst:recv ~bytes
                  in
                  ignore
                    (Sim.schedule sim ~at:(max (Sim.now sim) arrival) (fun sim ->
                         ready.(recv) <- max ready.(recv) arrival;
                         decr outstanding;
                         if !outstanding = 0 then run_reduce rest sim))
                end;
                i := !i + (2 * k)
              done;
              if !outstanding = 0 then run_reduce rest sim
        and run_broadcast remaining sim =
          match remaining with
          | [] ->
              Array.iteri (fun n t -> exit_time.(n) <- t + half2) ready;
              iteration (iter + 1) (Array.copy exit_time)
          | k :: rest ->
              let outstanding = ref 0 in
              let i = ref 0 in
              while !i < nodes do
                let send = !i and recv = !i + k in
                if recv < nodes then begin
                  incr outstanding;
                  incr messages;
                  let arrival =
                    ready.(send) + edge_cost fabric ~src:send ~dst:recv ~bytes
                  in
                  ignore
                    (Sim.schedule sim ~at:(max (Sim.now sim) arrival) (fun sim ->
                         ready.(recv) <- max ready.(recv) arrival;
                         decr outstanding;
                         if !outstanding = 0 then run_broadcast rest sim))
                end;
                i := !i + (2 * k)
              done;
              if !outstanding = 0 then run_broadcast rest sim
        in
        run_reduce rounds sim
      in
      (* Arrival events: compute window + straggler delay + local
         reduce half. *)
      Array.iteri
        (fun n start ->
          let skew =
            Mk_noise.Injector.max_delay profile rngs.(n) ~dur:window
              ~ranks:stragglers
          in
          let at = start + window + skew + half1 in
          ignore
            (Sim.schedule sim ~at:(max (Sim.now sim) at) (fun sim ->
                 ready.(n) <- at;
                 decr pending;
                 if !pending = 0 then after_arrivals sim)))
        starts
    end
  in
  iteration 0 (Array.make nodes 0);
  Sim.run sim;
  { completion = Array.fold_left max 0 exit_time; messages = !messages }

let analytic_allreduce_loop ~nodes ~ranks_per_node ~threads_per_rank ~window
    ~iterations ~bytes ~profile ~fabric ~seed =
  let stragglers = ranks_per_node * threads_per_rank in
  let rngs = Array.init nodes (fun n -> Rng.split (Rng.create (seed * 7919)) (1000 + n)) in
  let env =
    {
      Mk_mpi.Collective.fabric;
      syscall_cost = (fun _ -> 0);
      intra_ranks = ranks_per_node;
    }
  in
  let clocks = Array.make nodes 0 in
  for _ = 1 to iterations do
    Array.iteri
      (fun n c ->
        let skew =
          Mk_noise.Injector.max_delay profile rngs.(n) ~dur:window ~ranks:stragglers
        in
        clocks.(n) <- c + window + skew)
      clocks;
    Mk_mpi.Collective.allreduce env ~clocks ~bytes
  done;
  Array.fold_left max 0 clocks
