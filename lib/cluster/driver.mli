(** The cluster-scale experiment driver (Tier 2).

    One run simulates a job of [nodes] nodes under one OS model.  A
    single representative node is booted for real — its address
    spaces, physical allocator, heap traces and shared-memory windows
    execute through the Tier-1 machinery — because under the paper's
    configurations every node is identically laid out.  Across nodes
    only the *noise* differs, so the cluster is reduced to an array
    of per-node clocks advanced iteration by iteration:

    + compute phases advance every clock by the representative node's
      cost plus a per-node sampled straggler term (the max over that
      node's ranks of the OS noise suffered in the window);
    + collectives and halos combine clocks through tree/neighbour
      max-plus operations with fabric costs on the edges
      ({!Mk_mpi.Collective}, {!Mk_mpi.P2p});
    + NIC control system calls are priced through the OS: local and
      parallel on Linux, offloaded and funnelled through the few
      Linux-side cores on the LWKs (the LAMMPS mechanism);
    + heap-trace operations replay on the representative node, so
      Linux re-faults every iteration while the LWKs hit their brk
      fast path (the Lulesh mechanism).

    The first simulated iteration is kept separate (cold page faults,
    shared-memory population); the remaining iterations are averaged
    and extrapolated to the application's real iteration count. *)

type result = {
  nodes : int;
  total_time : Mk_engine.Units.time;
  solve_time : Mk_engine.Units.time;
      (** the timed region: iterations only, as the benchmarks report *)
  setup_time : Mk_engine.Units.time;
  first_iteration : Mk_engine.Units.time;
  steady_iteration : Mk_engine.Units.time;  (** average of the rest *)
  fom : float;
  mcdram_fraction : float;  (** across the representative node's ranks *)
  faults : int;  (** demand faults on the representative node *)
  offloads_per_iteration : int;
  failures : int;
  fault_events : int;  (** injected fault events applied (0 when off) *)
  dead_nodes : int;  (** nodes lost to injected crashes *)
  recoveries : int;
      (** recovery episodes priced: crash detections + proxy respawns *)
}

val run :
  ?eager_threshold:int ->
  ?faults:Mk_fault.Plan.t ->
  ?obs:Mk_obs.Recorder.t ->
  scenario:Scenario.t ->
  app:Mk_apps.App.t ->
  nodes:int ->
  seed:int ->
  unit ->
  result
(** [eager_threshold] overrides the NIC's eager/rendezvous switch —
    the knob for the LAMMPS-sensitivity ablation.

    [faults] injects a deterministic fault plan
    ({!Mk_fault.Plan}); containment semantics per kernel are spelled
    out in docs/FAULTS.md.  Omitting it — or passing
    {!Mk_fault.Plan.empty} — runs the exact healthy arithmetic: the
    fault layer is zero-cost when off.  Dead nodes' clocks freeze;
    collectives route around them ({!Mk_mpi.Resilient}); survivors
    pay detection, retry and respawn costs under the kernel's
    {!Mk_fault.Retry.policy}.

    [obs] installs a {!Mk_obs.Recorder} for the run's duration: every
    instrumented layer counts into it (via {!Mk_obs.Hook}) and, when
    the recorder traces, the driver emits setup/iteration/sync spans
    and fault instants on the simulated clock.  Omitting it leaves
    the Null sink in place — the zero-cost default. *)

val pp_result : Format.formatter -> result -> unit
