let max_nodes = 1_048_576
let max_runs = 1_000
let max_jobs = 512
let max_des_shards = 512

let nodes n =
  if n >= 1 && n <= max_nodes then Ok n
  else
    Error
      (Printf.sprintf "invalid node count %d: expected 1 to %d" n max_nodes)

let node_counts l =
  if l = [] then Error "empty node-count list: give at least one node count"
  else
    let rec go = function
      | [] -> Ok l
      | n :: rest -> ( match nodes n with Ok _ -> go rest | Error e -> Error e)
    in
    go l

let jobs n =
  if n >= 0 && n <= max_jobs then Ok n
  else
    Error
      (Printf.sprintf
         "invalid jobs value %d: expected 0 (all cores) to %d" n max_jobs)

let des_shards n =
  if n >= 0 && n <= max_des_shards then Ok n
  else
    Error
      (Printf.sprintf
         "invalid des-shards value %d: expected 0 (one per core) to %d" n
         max_des_shards)

let runs n =
  if n >= 1 && n <= max_runs then Ok n
  else Error (Printf.sprintf "invalid runs value %d: expected 1 to %d" n max_runs)

let app name =
  match Mk_apps.Registry.find name with
  | Some a -> Ok a
  | None ->
      Error
        (Printf.sprintf "unknown application %S: valid choices are %s" name
           (String.concat ", " Mk_apps.Registry.names))

let scenario_names =
  List.map
    (fun (s : Scenario.t) -> s.Scenario.label)
    (Scenario.trio @ [ Scenario.linux_default_noise ])

let scenario name =
  match Scenario.find name with
  | Some s -> Ok s
  | None ->
      Error
        (Printf.sprintf "unknown scenario %S: valid choices are %s" name
           (String.concat ", " scenario_names))

let fault_preset name =
  let n = String.lowercase_ascii (String.trim name) in
  if List.mem n Mk_fault.Plan.preset_names then Ok n
  else
    Error
      (Printf.sprintf "unknown fault preset %S: valid choices are %s" name
         (String.concat ", " Mk_fault.Plan.preset_names))

let rates s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty rate list: give e.g. 0.5,1,2"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match float_of_string_opt p with
          | Some r when r >= 0.0 -> go (r :: acc) rest
          | Some _ -> Error (Printf.sprintf "invalid rate %S: must be >= 0" p)
          | None -> Error (Printf.sprintf "invalid rate %S: not a number" p))
    in
    go [] parts

let journal_mode ~journal ~resume ~obs_active =
  match (journal, resume) with
  | None, None -> Ok None
  | Some _, Some _ ->
      Error
        "--journal and --resume are mutually exclusive: --resume both replays \
         and records"
  | (Some _, None | None, Some _) when obs_active ->
      Error
        "--journal/--resume cannot be combined with --trace/--metrics: \
         replayed cells record nothing, so observed output would differ \
         between fresh and resumed runs"
  | Some path, None -> Ok (Some (path, false))
  | None, Some path -> Ok (Some (path, true))
