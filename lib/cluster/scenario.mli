(** The operating-system configurations under comparison.

    A scenario is a recipe for booting a fresh OS model — fresh,
    because physical-memory state is mutable and every run must start
    from a clean node. *)

type t = {
  label : string;
  make : unit -> Mk_kernel.Os.t;
}

val linux : t
(** The paper's baseline: XPPSL Linux, nohz_full on app cores. *)

val mckernel : t
val mos : t

val trio : t list
(** McKernel, mOS, Linux — the comparison of Figure 4. *)

val mckernel_with : Mk_kernel.Os.options -> label:string -> t
val mos_with : Mk_kernel.Os.options -> label:string -> t

val linux_default_noise : t
(** Linux without nohz_full — noise-ablation scenario. *)

val find : string -> t option
