(** Deterministic chaos self-test for the harness itself.

    The simulator models crash-tolerance; this module checks that the
    {e harness} delivers it, by injecting harness faults with a seeded
    {!Mk_engine.Rng} and asserting the supervision/journal contracts
    of [docs/ROBUSTNESS.md]:

    - {b no-lost-cells}: a cell that raises transiently recovers
      through retries, a permanently failing cell is quarantined, and
      every sibling cell's numbers equal the unsupervised baseline;
    - {b kill-and-resume}: a run journaled up to cell [k] then
      "killed" (plus a torn trailing journal line) resumes to output
      byte-identical to an uninterrupted run, replaying exactly [k]
      cells;
    - {b atomic-mid-write-crash}: {!Mk_engine.Atomic_file.write}
      interrupted mid-stage leaves the previous complete file behind;
    - {b journal-round-trip}: append/reopen/replay, duplicate keys
      resolve to the latest entry, record-only mode never replays;
    - {b flight-recorder}: a killed cell leaves a parseable
      [flight-<cell_key>.json] black box behind ({!Mk_obs.Flight})
      that attributes exactly the killed cell and carries a non-empty
      Perfetto trace, and surviving cells dump nothing.

    Everything is seeded and simulated — no processes are killed, no
    wall clock is read — so the gate ([simos chaos --smoke], wired
    into [ci.sh]) is deterministic.  This module only builds strings;
    printing is the CLI's job (mklint R5). *)

type check = { name : string; passed : bool; detail : string }
type report = { checks : check list }

val run : ?seed:int -> smoke:bool -> unit -> report
(** Run every check.  [smoke] shrinks the cell grid for the CI gate;
    [seed] drives the injected-failure placement. *)

val passed : report -> bool
val render : report -> string
