(** One-line CLI argument validation.

    Every function returns [Error msg] with a single-line message
    listing the valid choices, so [simos] can exit cleanly instead of
    dumping an exception backtrace at the user.  Kept in the library
    (not [bin/]) so the messages are unit-testable. *)

val max_nodes : int
val max_runs : int
val max_jobs : int
val max_des_shards : int

val nodes : int -> (int, string) result
(** Positive and at most {!max_nodes}. *)

val node_counts : int list -> (int list, string) result
(** Every element validated by {!nodes}; the list must be non-empty. *)

val jobs : int -> (int, string) result
(** [0] (all cores) to {!max_jobs}. *)

val runs : int -> (int, string) result
(** [1] to {!max_runs}. *)

val des_shards : int -> (int, string) result
(** [0] (one shard per recommended domain) to {!max_des_shards}, for
    the [--des-shards] sharded-DES validation tier. *)

val app : string -> (Mk_apps.App.t, string) result
(** Lookup through {!Mk_apps.Registry.find}; the error lists every
    registered application name. *)

val scenario : string -> (Scenario.t, string) result
(** Lookup through {!Scenario.find}; the error lists the valid
    scenario labels. *)

val fault_preset : string -> (string, string) result
(** Validates against {!Mk_fault.Plan.preset_names}. *)

val rates : string -> (float list, string) result
(** Comma-separated non-negative fault rates, e.g. ["0.5,1,2"]. *)

val journal_mode :
  journal:string option ->
  resume:string option ->
  obs_active:bool ->
  ((string * bool) option, string) result
(** Resolve the [--journal PATH] (record-only) / [--resume PATH]
    (replay and record) flags into [Some (path, replay)].  The two
    flags are mutually exclusive, and neither combines with
    [--trace]/[--metrics]: a replayed cell records no metrics, so the
    observed output of a resumed run could not stay byte-identical to
    a fresh one. *)
