type row = { name : string; value : float; unit_ : string; provenance : string }

let f = float_of_int

let all =
  let fault = Mk_mem.Fault.default in
  [
    {
      name = "mcdram-stream-bandwidth";
      value = Mk_hw.Memory_kind.stream_bandwidth Mk_hw.Memory_kind.Mcdram;
      unit_ = "B/ns";
      provenance = "published KNL flat-mode STREAM, ~480 GB/s";
    };
    {
      name = "ddr4-stream-bandwidth";
      value = Mk_hw.Memory_kind.stream_bandwidth Mk_hw.Memory_kind.Ddr4;
      unit_ = "B/ns";
      provenance = "published KNL DDR4 STREAM, ~90 GB/s";
    };
    {
      name = "mcdram-load-latency";
      value = f (Mk_hw.Memory_kind.load_latency Mk_hw.Memory_kind.Mcdram);
      unit_ = "ns";
      provenance = "KNL idle latency measurements (~170 ns; above DDR4)";
    };
    {
      name = "fault-trap";
      value = f fault.Mk_mem.Fault.trap;
      unit_ = "ns";
      provenance = "anonymous-fault kernel entry on a 1.4 GHz KNL core";
    };
    {
      name = "fault-zero-bandwidth";
      value = fault.Mk_mem.Fault.zero_bandwidth;
      unit_ = "B/ns";
      provenance = "single-thread memset on a KNL core";
    };
    {
      name = "fault-contention-slope";
      value = fault.Mk_mem.Fault.contention;
      unit_ = "fraction/faulter";
      provenance = "mm-lock contention; motivates --mpol-shm-premap (§IV)";
    };
    {
      name = "tlb-overhead-4k";
      value = Mk_mem.Page.tlb_overhead Mk_mem.Page.Small;
      unit_ = "x";
      provenance = "4K-vs-hugepage STREAM deltas on KNL";
    };
    {
      name = "syscall-entry";
      value = f Mk_syscall.Cost.entry;
      unit_ = "ns";
      provenance = "syscall/sysret on KNL's slow cores";
    };
    {
      name = "proxy-wakeup";
      value =
        (match Mk_ikc.Offload.default_proxy with
        | Mk_ikc.Offload.Proxy { wakeup } -> f wakeup
        | Mk_ikc.Offload.Migration _ -> 0.0);
      unit_ = "ns";
      provenance = "IPI + Linux scheduler wake of a blocked proxy thread";
    };
    {
      name = "migration-handoff";
      value =
        (match Mk_ikc.Offload.default_migration with
        | Mk_ikc.Offload.Migration { handoff; _ } -> f handoff
        | Mk_ikc.Offload.Proxy _ -> 0.0);
      unit_ = "ns";
      provenance = "mOS run-queue hand-off (one way)";
    };
    {
      name = "fabric-base-latency";
      value = f Mk_fabric.Fabric.base_latency;
      unit_ = "ns";
      provenance = "Omni-Path nearest-neighbour MPI latency ~1 us";
    };
    {
      name = "fabric-wire-bandwidth";
      value = Mk_fabric.Nic.wire_bandwidth;
      unit_ = "B/ns";
      provenance = "100 Gb/s Omni-Path link";
    };
    {
      name = "nic-eager-threshold";
      value = f (Mk_fabric.Nic.eager_threshold (Mk_fabric.Nic.make ()));
      unit_ = "B";
      provenance = "PSM2 eager/rendezvous switch; rendezvous needs syscalls (§IV)";
    };
    {
      name = "shm-copy-bandwidth";
      value = Mk_mpi.Shm.copy_bandwidth;
      unit_ = "B/ns";
      provenance = "single-pair shared-memory copy on KNL";
    };
    {
      name = "shm-latency";
      value = f Mk_mpi.Shm.latency;
      unit_ = "ns";
      provenance = "intra-node MPI message latency";
    };
    {
      name = "linux-nohz-noise";
      value = 100.0 *. Mk_noise.Profile.total_overhead Mk_noise.Profile.linux_nohz_full;
      unit_ = "%";
      provenance = "residual kworker/IRQ/daemon-spill under nohz_full";
    };
    {
      name = "mos-lwk-noise";
      value = 100.0 *. Mk_noise.Profile.total_overhead Mk_noise.Profile.mos_lwk;
      unit_ = "%";
      provenance = "rare stray Linux tasks on mOS LWK cores (§II-D2)";
    };
    {
      name = "cfs-context-switch";
      value = f Mk_sched.Cfs.context_switch_cost;
      unit_ = "ns";
      provenance = "full CFS reschedule on KNL";
    };
    {
      name = "lwk-context-switch";
      value = f Mk_sched.Lwk_rr.context_switch_cost;
      unit_ = "ns";
      provenance = "cooperative LWK hand-off (§II-D2)";
    };
  ]

let find name = List.find_opt (fun r -> r.name = name) all

let table () =
  Mk_engine.Table.render
    ~header:[ "constant"; "value"; "unit"; "provenance" ]
    (List.map
       (fun r ->
         [ r.name; Printf.sprintf "%.4g" r.value; r.unit_; r.provenance ])
       all)

let mcdram_ddr_ratio () =
  Mk_hw.Memory_kind.stream_bandwidth Mk_hw.Memory_kind.Mcdram
  /. Mk_hw.Memory_kind.stream_bandwidth Mk_hw.Memory_kind.Ddr4
