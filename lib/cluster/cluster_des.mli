(** Event-driven cross-validation of the analytic cluster tier.

    {!Driver} advances per-node clocks through max-plus formulas; this
    module executes the same iteration structure — compute window,
    per-node straggler delay, binomial-tree allreduce over the fabric
    — as an actual discrete-event simulation: every internode message
    is a scheduled event, every node a small state machine, and nodes
    desynchronise and resynchronise naturally across iterations.

    With a silent noise profile the two formulations must agree
    *exactly* (same trees, same edge costs); with noise they must
    agree statistically.  The test suite pins both properties, which
    is the evidence that the fast analytic tier computes what the
    slow event-driven tier would. *)

type result = {
  completion : Mk_engine.Units.time;  (** last node's exit from the last iteration *)
  messages : int;  (** internode messages exchanged *)
}

val allreduce_loop :
  nodes:int ->
  ranks_per_node:int ->
  threads_per_rank:int ->
  window:Mk_engine.Units.time ->
  iterations:int ->
  bytes:int ->
  profile:Mk_noise.Profile.t ->
  fabric:Mk_fabric.Fabric.t ->
  seed:int ->
  result
(** Simulate [iterations] of (compute window + straggler delay +
    allreduce) over [nodes] nodes, event by event. *)

type sharding = {
  shard_events : int;  (** DES events fired, summed over shards *)
  cross_messages : int;  (** node messages that crossed a shard boundary *)
  null_messages : int;  (** CMB null promises exchanged *)
  horizon_stalls : int;  (** shard-epochs spent waiting on the horizon *)
  epochs : int;  (** conservative synchronisation rounds *)
  fast_forwarded : int;  (** iterations advanced in closed form *)
}
(** Execution profile of a sharded run.  Deterministic for a given
    (parameters, shard count): independent of the pool, so safe in
    snapshots. *)

val sharded_allreduce_loop :
  ?pool:Mk_engine.Pool.t ->
  ?observer:(Mk_engine.Shard.sample -> unit) ->
  ?fast_forward:bool ->
  shards:int ->
  nodes:int ->
  ranks_per_node:int ->
  threads_per_rank:int ->
  window:Mk_engine.Units.time ->
  iterations:int ->
  bytes:int ->
  profile:Mk_noise.Profile.t ->
  fabric:Mk_fabric.Fabric.t ->
  seed:int ->
  unit ->
  result * sharding
(** {!allreduce_loop} executed as a conservatively synchronised
    parallel simulation ({!Mk_engine.Shard}): nodes are partitioned by
    fabric region over [shards] event heaps, with the minimum
    cross-region wire time as lookahead.  The [result] is {e exactly}
    {!allreduce_loop}'s for every shard count and pool — the test
    suite qcheck's this.  [fast_forward] (default on) additionally
    advances provably periodic iterations in closed form on silent
    profiles: once two consecutive iterations shift every node's exit
    by the same delta, the remaining ones are that shift repeated
    (the iteration map is max-plus rank-one), which is what makes
    131,072-node runs take seconds instead of minutes.  Emits
    per-shard ["des"] observability counters (events, null messages,
    horizon stalls) when a recorder is active.  [observer] receives
    every conservative epoch's {!Mk_engine.Shard.sample} (feed it
    {!Mk_obs.Profile.observe} to build a deterministic self-profile;
    iterations share one absolute clock, so buckets compose across
    {!Mk_engine.Shard.run} calls).
    @raise Invalid_argument on non-positive sizes or shard count. *)

val analytic_allreduce_loop :
  nodes:int ->
  ranks_per_node:int ->
  threads_per_rank:int ->
  window:Mk_engine.Units.time ->
  iterations:int ->
  bytes:int ->
  profile:Mk_noise.Profile.t ->
  fabric:Mk_fabric.Fabric.t ->
  seed:int ->
  Mk_engine.Units.time
(** The same loop through {!Mk_mpi.Collective}'s max-plus composition
    (the Driver's formulation), for comparison. *)
