(** Event-driven cross-validation of the analytic cluster tier.

    {!Driver} advances per-node clocks through max-plus formulas; this
    module executes the same iteration structure — compute window,
    per-node straggler delay, binomial-tree allreduce over the fabric
    — as an actual discrete-event simulation: every internode message
    is a scheduled event, every node a small state machine, and nodes
    desynchronise and resynchronise naturally across iterations.

    With a silent noise profile the two formulations must agree
    *exactly* (same trees, same edge costs); with noise they must
    agree statistically.  The test suite pins both properties, which
    is the evidence that the fast analytic tier computes what the
    slow event-driven tier would. *)

type result = {
  completion : Mk_engine.Units.time;  (** last node's exit from the last iteration *)
  messages : int;  (** internode messages exchanged *)
}

val allreduce_loop :
  nodes:int ->
  ranks_per_node:int ->
  threads_per_rank:int ->
  window:Mk_engine.Units.time ->
  iterations:int ->
  bytes:int ->
  profile:Mk_noise.Profile.t ->
  fabric:Mk_fabric.Fabric.t ->
  seed:int ->
  result
(** Simulate [iterations] of (compute window + straggler delay +
    allreduce) over [nodes] nodes, event by event. *)

val analytic_allreduce_loop :
  nodes:int ->
  ranks_per_node:int ->
  threads_per_rank:int ->
  window:Mk_engine.Units.time ->
  iterations:int ->
  bytes:int ->
  profile:Mk_noise.Profile.t ->
  fabric:Mk_fabric.Fabric.t ->
  seed:int ->
  Mk_engine.Units.time
(** The same loop through {!Mk_mpi.Collective}'s max-plus composition
    (the Driver's formulation), for comparison. *)
