exception Transient of string

exception Budget_exceeded of { units : int; budget : int }

let () =
  Printexc.register_printer (function
    | Transient reason -> Some (Printf.sprintf "Supervise.Transient(%s)" reason)
    | Budget_exceeded { units; budget } ->
        Some
          (Printf.sprintf
             "Supervise.Budget_exceeded(%d work units over budget %d)" units
             budget)
    | _ -> None)

type policy = {
  retry : Mk_fault.Retry.policy;
  budget : int option;
  classify : exn -> [ `Transient | `Permanent ];
}

let default_classify = function Transient _ -> `Transient | _ -> `Permanent

let default =
  { retry = Mk_fault.Retry.default_mpi; budget = None; classify = default_classify }

let check_budget policy ~units =
  match policy.budget with
  | Some budget when units > budget -> raise (Budget_exceeded { units; budget })
  | _ -> ()

type failure = { error : string; attempts : int }

type 'a outcome = {
  result : ('a, failure) result;
  attempts : int;
  backoff_ns : int;
}

let run ?(chaos = fun ~attempt:_ -> ()) policy f =
  let max_attempts = policy.retry.Mk_fault.Retry.max_retries + 1 in
  let rec go attempt backoff_ns =
    match
      chaos ~attempt;
      f ()
    with
    | v -> { result = Ok v; attempts = attempt; backoff_ns }
    | exception e -> (
        match policy.classify e with
        | `Transient when attempt < max_attempts ->
            (* The backoff is priced on the simulated clock (same
               policy arithmetic the in-model retries use) — the
               harness never sleeps. *)
            let delay =
              Mk_fault.Retry.backoff_delay policy.retry ~retry:attempt
            in
            go (attempt + 1) (backoff_ns + delay)
        | `Transient | `Permanent ->
            {
              result = Error { error = Printexc.to_string e; attempts = attempt };
              attempts = attempt;
              backoff_ns;
            })
  in
  go 1 0
