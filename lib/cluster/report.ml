open Mk_engine

let fmt_g v = Printf.sprintf "%.4g" v

let fom_table ~(app : Mk_apps.App.t) series_list =
  let counts =
    match series_list with
    | [] -> []
    | s :: _ -> List.map (fun (p : Experiment.point) -> p.Experiment.nodes) s.Experiment.points
  in
  let header =
    "nodes"
    :: List.concat_map
         (fun (s : Experiment.series) ->
           [ s.Experiment.scenario_label; "min..max" ])
         series_list
  in
  let rows =
    List.map
      (fun nodes ->
        string_of_int nodes
        :: List.concat_map
             (fun (s : Experiment.series) ->
               match
                 List.find_opt
                   (fun (p : Experiment.point) -> p.Experiment.nodes = nodes)
                   s.Experiment.points
               with
               | Some p ->
                   [
                     fmt_g p.Experiment.median_fom;
                     Printf.sprintf "%s..%s" (fmt_g p.Experiment.min_fom)
                       (fmt_g p.Experiment.max_fom);
                   ]
               | None -> [ "-"; "-" ])
             series_list)
      counts
  in
  Printf.sprintf "%s (%s)\n%s" app.Mk_apps.App.name app.Mk_apps.App.fom_unit
    (Table.render ~header rows)

let relative_pairs ~baseline series =
  Experiment.relative_to ~baseline series

let relative_table ~(app : Mk_apps.App.t) ~baseline series_list =
  let others =
    List.filter
      (fun (s : Experiment.series) ->
        s.Experiment.scenario_label <> baseline.Experiment.scenario_label)
      series_list
  in
  let header =
    "nodes"
    :: List.map (fun (s : Experiment.series) -> s.Experiment.scenario_label) others
  in
  let counts =
    List.map (fun (p : Experiment.point) -> p.Experiment.nodes) baseline.Experiment.points
  in
  let rows =
    List.map
      (fun nodes ->
        string_of_int nodes
        :: List.map
             (fun s ->
               match List.assoc_opt nodes (relative_pairs ~baseline s) with
               | Some r -> Printf.sprintf "%.3f" r
               | None -> "-")
             others)
      counts
  in
  Printf.sprintf "%s: median performance relative to %s\n%s" app.Mk_apps.App.name
    baseline.Experiment.scenario_label (Table.render ~header rows)

let relative_chart ~(app : Mk_apps.App.t) ~baseline series_list =
  let others =
    List.filter
      (fun (s : Experiment.series) ->
        s.Experiment.scenario_label <> baseline.Experiment.scenario_label)
      series_list
  in
  let to_series (s : Experiment.series) =
    {
      Table.label = s.Experiment.scenario_label;
      points =
        List.map
          (fun (n, r) -> (float_of_int n, r))
          (relative_pairs ~baseline s);
    }
  in
  Table.chart ~logx:true
    ~title:
      (Printf.sprintf "%s relative to %s (1.0 = parity)" app.Mk_apps.App.name
         baseline.Experiment.scenario_label)
    ~ylabel:"relative median performance"
    (List.map to_series others)

let absolute_chart ~(app : Mk_apps.App.t) series_list =
  let to_series (s : Experiment.series) =
    {
      Table.label = s.Experiment.scenario_label;
      points =
        List.map
          (fun (p : Experiment.point) ->
            (float_of_int p.Experiment.nodes, p.Experiment.median_fom))
          s.Experiment.points;
    }
  in
  Table.chart ~logx:true
    ~title:(Printf.sprintf "%s (%s)" app.Mk_apps.App.name app.Mk_apps.App.fom_unit)
    ~ylabel:app.Mk_apps.App.fom_unit
    (List.map to_series series_list)

let csv ~(app : Mk_apps.App.t) series_list =
  let rows =
    List.concat_map
      (fun (s : Experiment.series) ->
        List.map
          (fun (p : Experiment.point) ->
            [
              app.Mk_apps.App.name;
              s.Experiment.scenario_label;
              string_of_int p.Experiment.nodes;
              fmt_g p.Experiment.median_fom;
              fmt_g p.Experiment.min_fom;
              fmt_g p.Experiment.max_fom;
            ])
          s.Experiment.points)
      series_list
  in
  Table.csv ~header:[ "app"; "os"; "nodes"; "median"; "min"; "max" ] rows

let json ~(app : Mk_apps.App.t) series_list =
  let open Mk_engine.Json in
  let point (p : Experiment.point) =
    let r = p.Experiment.median_result in
    Obj
      [
        ("nodes", Int p.Experiment.nodes);
        ("median", Float p.Experiment.median_fom);
        ("min", Float p.Experiment.min_fom);
        ("max", Float p.Experiment.max_fom);
        ("solve_time_ns", Int r.Driver.solve_time);
        ("setup_time_ns", Int r.Driver.setup_time);
        ("mcdram_fraction", Float r.Driver.mcdram_fraction);
        ("faults", Int r.Driver.faults);
        ("offloads_per_iteration", Int r.Driver.offloads_per_iteration);
      ]
  in
  Obj
    [
      ("app", String app.Mk_apps.App.name);
      ("fom_unit", String app.Mk_apps.App.fom_unit);
      ( "scenarios",
        List
          (List.map
             (fun (s : Experiment.series) ->
               Obj
                 [
                   ("label", String s.Experiment.scenario_label);
                   ("points", List (List.map point s.Experiment.points));
                 ])
             series_list) );
    ]
