open Mk_engine

let fmt_g v = Printf.sprintf "%.4g" v

let fom_table ~(app : Mk_apps.App.t) series_list =
  let counts =
    match series_list with
    | [] -> []
    | s :: _ -> List.map (fun (p : Experiment.point) -> p.Experiment.nodes) s.Experiment.points
  in
  let header =
    "nodes"
    :: List.concat_map
         (fun (s : Experiment.series) ->
           [ s.Experiment.scenario_label; "min..max" ])
         series_list
  in
  let rows =
    List.map
      (fun nodes ->
        string_of_int nodes
        :: List.concat_map
             (fun (s : Experiment.series) ->
               match
                 List.find_opt
                   (fun (p : Experiment.point) -> p.Experiment.nodes = nodes)
                   s.Experiment.points
               with
               | Some p ->
                   [
                     fmt_g p.Experiment.median_fom;
                     Printf.sprintf "%s..%s" (fmt_g p.Experiment.min_fom)
                       (fmt_g p.Experiment.max_fom);
                   ]
               | None -> [ "-"; "-" ])
             series_list)
      counts
  in
  Printf.sprintf "%s (%s)\n%s" app.Mk_apps.App.name app.Mk_apps.App.fom_unit
    (Table.render ~header rows)

let relative_pairs ~baseline series =
  Experiment.relative_to ~baseline series

let relative_table ~(app : Mk_apps.App.t) ~baseline series_list =
  let others =
    List.filter
      (fun (s : Experiment.series) ->
        s.Experiment.scenario_label <> baseline.Experiment.scenario_label)
      series_list
  in
  let header =
    "nodes"
    :: List.map (fun (s : Experiment.series) -> s.Experiment.scenario_label) others
  in
  let counts =
    List.map (fun (p : Experiment.point) -> p.Experiment.nodes) baseline.Experiment.points
  in
  let rows =
    List.map
      (fun nodes ->
        string_of_int nodes
        :: List.map
             (fun s ->
               match List.assoc_opt nodes (relative_pairs ~baseline s) with
               | Some r -> Printf.sprintf "%.3f" r
               | None -> "-")
             others)
      counts
  in
  Printf.sprintf "%s: median performance relative to %s\n%s" app.Mk_apps.App.name
    baseline.Experiment.scenario_label (Table.render ~header rows)

let relative_chart ~(app : Mk_apps.App.t) ~baseline series_list =
  let others =
    List.filter
      (fun (s : Experiment.series) ->
        s.Experiment.scenario_label <> baseline.Experiment.scenario_label)
      series_list
  in
  let to_series (s : Experiment.series) =
    {
      Table.label = s.Experiment.scenario_label;
      points =
        List.map
          (fun (n, r) -> (float_of_int n, r))
          (relative_pairs ~baseline s);
    }
  in
  Table.chart ~logx:true
    ~title:
      (Printf.sprintf "%s relative to %s (1.0 = parity)" app.Mk_apps.App.name
         baseline.Experiment.scenario_label)
    ~ylabel:"relative median performance"
    (List.map to_series others)

let absolute_chart ~(app : Mk_apps.App.t) series_list =
  let to_series (s : Experiment.series) =
    {
      Table.label = s.Experiment.scenario_label;
      points =
        List.map
          (fun (p : Experiment.point) ->
            (float_of_int p.Experiment.nodes, p.Experiment.median_fom))
          s.Experiment.points;
    }
  in
  Table.chart ~logx:true
    ~title:(Printf.sprintf "%s (%s)" app.Mk_apps.App.name app.Mk_apps.App.fom_unit)
    ~ylabel:app.Mk_apps.App.fom_unit
    (List.map to_series series_list)

let csv ~(app : Mk_apps.App.t) series_list =
  let rows =
    List.concat_map
      (fun (s : Experiment.series) ->
        List.map
          (fun (p : Experiment.point) ->
            [
              app.Mk_apps.App.name;
              s.Experiment.scenario_label;
              string_of_int p.Experiment.nodes;
              fmt_g p.Experiment.median_fom;
              fmt_g p.Experiment.min_fom;
              fmt_g p.Experiment.max_fom;
            ])
          s.Experiment.points)
      series_list
  in
  Table.csv ~header:[ "app"; "os"; "nodes"; "median"; "min"; "max" ] rows

(* ------------------------------------------------------------------ *)
(* Suite views: the eight-apps × three-kernels aggregate.              *)

let baseline_label = "Linux"

let suite_ratios ~label suite =
  List.filter_map
    (fun ((_ : Mk_apps.App.t), series) ->
      let find l =
        List.find_opt
          (fun (s : Experiment.series) -> s.Experiment.scenario_label = l)
          series
      in
      match (find baseline_label, find label) with
      | Some baseline, Some s -> Some (Experiment.relative_to ~baseline s)
      | _ -> None)
    suite

let lwk_labels suite =
  match suite with
  | [] -> []
  | (_, series) :: _ ->
      List.filter_map
        (fun (s : Experiment.series) ->
          if s.Experiment.scenario_label = baseline_label then None
          else Some s.Experiment.scenario_label)
        series

let suite_headline suite =
  List.map
    (fun label ->
      let r = suite_ratios ~label suite in
      (label, Experiment.median_improvement r, Experiment.best_improvement r))
    (lwk_labels suite)

let suite_table suite =
  let labels = lwk_labels suite in
  let header =
    "app" :: "points"
    :: List.concat_map (fun l -> [ l ^ " median"; l ^ " best" ]) labels
  in
  let pct r = Printf.sprintf "%+.1f%%" (100.0 *. (r -. 1.0)) in
  let rows =
    List.map
      (fun ((app : Mk_apps.App.t), series) ->
        let cells =
          List.fold_left
            (fun acc (s : Experiment.series) ->
              acc + List.length s.Experiment.points)
            0 series
        in
        app.Mk_apps.App.name :: string_of_int cells
        :: List.concat_map
             (fun label ->
               match suite_ratios ~label [ (app, series) ] with
               | [ ratios ] when ratios <> [] ->
                   [
                     pct (Experiment.median_improvement [ ratios ]);
                     pct (Experiment.best_improvement [ ratios ]);
                   ]
               | _ -> [ "-"; "-" ])
             labels)
      suite
  in
  let headline =
    List.map
      (fun (label, median, best) ->
        Printf.sprintf "%-9s median improvement %+.1f%%, best %+.0f%%" label
          (100.0 *. (median -. 1.0))
          (100.0 *. (best -. 1.0)))
      (suite_headline suite)
  in
  Table.render ~header rows
  ^ "\nImprovement over the Linux baseline across every (app x node count) point:\n"
  ^ String.concat "\n" headline ^ "\n"

let json ~(app : Mk_apps.App.t) series_list =
  let open Mk_engine.Json in
  let point (p : Experiment.point) =
    let r = p.Experiment.median_result in
    Obj
      [
        ("nodes", Int p.Experiment.nodes);
        ("median", Float p.Experiment.median_fom);
        ("min", Float p.Experiment.min_fom);
        ("max", Float p.Experiment.max_fom);
        ("solve_time_ns", Int r.Driver.solve_time);
        ("setup_time_ns", Int r.Driver.setup_time);
        ("mcdram_fraction", Float r.Driver.mcdram_fraction);
        ("faults", Int r.Driver.faults);
        ("offloads_per_iteration", Int r.Driver.offloads_per_iteration);
      ]
  in
  Obj
    [
      ("app", String app.Mk_apps.App.name);
      ("fom_unit", String app.Mk_apps.App.fom_unit);
      ( "scenarios",
        List
          (List.map
             (fun (s : Experiment.series) ->
               Obj
                 [
                   ("label", String s.Experiment.scenario_label);
                   ("points", List (List.map point s.Experiment.points));
                 ])
             series_list) );
    ]

(* ------------------------------------------------------------------ *)
(* Observability views                                                 *)

let metrics_table (c : Mk_obs.Collect.t) =
  let header = [ "kernel"; "node"; "subsystem"; "name"; "value" ] in
  let rows =
    List.map
      (fun ((k : Mk_obs.Key.t), v) ->
        [
          k.Mk_obs.Key.kernel;
          Mk_obs.Key.node_label k.Mk_obs.Key.node;
          k.Mk_obs.Key.subsystem;
          k.Mk_obs.Key.name;
          Mk_obs.Metrics.value_to_string v;
        ])
      (Mk_obs.Collect.bindings c)
  in
  Printf.sprintf "metrics (%d runs)\n%s" (Mk_obs.Collect.runs c)
    (Table.render ~header rows)

(* The counters behind the paper's three mechanisms, summed over
   nodes and pivoted per kernel: one glance says which kernel paid in
   page faults, which in proxy round-trips. *)
let mechanism_counters =
  [
    ("mem", "demand_faults");
    ("mem", "pages_2m");
    ("mem", "mcdram_spill_bytes");
    ("ikc", "proxy_roundtrips");
    ("ikc", "thread_migrations");
    ("mpi", "allreduce_calls");
    ("mpi", "halo_calls");
    ("retry", "attempts");
    ("sched", "preemptions");
  ]

let mechanism_table (c : Mk_obs.Collect.t) =
  let bindings = Mk_obs.Collect.bindings c in
  let kernels =
    List.sort_uniq String.compare
      (List.map (fun ((k : Mk_obs.Key.t), _) -> k.Mk_obs.Key.kernel) bindings)
  in
  let total kernel (sub, name) =
    List.fold_left
      (fun acc ((k : Mk_obs.Key.t), v) ->
        if
          k.Mk_obs.Key.kernel = kernel
          && k.Mk_obs.Key.subsystem = sub
          && k.Mk_obs.Key.name = name
        then acc + (match v with Mk_obs.Metrics.Counter n -> n | _ -> 0)
        else acc)
      0 bindings
  in
  let header = "counter" :: kernels in
  let rows =
    List.map
      (fun (sub, name) ->
        (sub ^ "/" ^ name)
        :: List.map
             (fun kernel -> string_of_int (total kernel (sub, name)))
             kernels)
      mechanism_counters
  in
  Table.render ~header rows

let suite_json ~runs ~seed ?(meta = []) ?obs suite =
  let open Mk_engine.Json in
  Obj
    ([
       ("schema", String "multikernel-suite/1");
       ("runs", Int runs);
       ("seed", Int seed);
     ]
    @ meta
    @ (match obs with
      | None -> []
      | Some c -> [ ("metrics", Mk_obs.Collect.metrics_json c) ])
    @ [
        ( "headline",
          Obj
            (List.map
               (fun (label, median, best) ->
                 ( label,
                   Obj
                     [
                       ("median_improvement", Float median);
                       ("best_improvement", Float best);
                     ] ))
               (suite_headline suite)) );
        ("apps", List (List.map (fun (app, series) -> json ~app series) suite));
      ])

let supervision_summary (s : Experiment.supervised) =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "supervision: %d cell(s) computed, %d replayed from journal, %d retrie(s), %d quarantined"
    s.Experiment.computed s.Experiment.replayed s.Experiment.retries
    s.Experiment.quarantined;
  if s.Experiment.backoff_ns > 0 then
    Printf.bprintf b " (%d ns simulated backoff)" s.Experiment.backoff_ns;
  List.iter
    (fun (c, o) ->
      match o with
      | Experiment.Completed _ -> ()
      | Experiment.Quarantined { error; attempts } ->
          Printf.bprintf b "\n  quarantined %s after %d attempt(s): %s"
            (Experiment.cell_label c) attempts error)
    s.Experiment.outcomes;
  Buffer.contents b

(* One row per scenario: both DES formulations side by side, plus the
   conservative-protocol counters that explain where the parallel run
   spent its epochs.  "ok" is the byte-identity verdict the CLI turns
   into an exit status. *)
let des_table (checks : Experiment.des_check list) =
  let header =
    [
      "scenario"; "nodes"; "shards"; "serial"; "sharded"; "messages"; "events";
      "cross"; "nulls"; "epochs"; "ff"; "ok";
    ]
  in
  let rows =
    List.map
      (fun (c : Experiment.des_check) ->
        let st = c.Experiment.des_stats in
        [
          c.Experiment.des_scenario;
          string_of_int c.Experiment.des_nodes;
          string_of_int c.Experiment.des_shards;
          Units.time_to_string c.Experiment.serial.Cluster_des.completion;
          Units.time_to_string c.Experiment.sharded.Cluster_des.completion;
          string_of_int c.Experiment.sharded.Cluster_des.messages;
          string_of_int st.Cluster_des.shard_events;
          string_of_int st.Cluster_des.cross_messages;
          string_of_int st.Cluster_des.null_messages;
          string_of_int st.Cluster_des.epochs;
          string_of_int st.Cluster_des.fast_forwarded;
          (if Experiment.des_identical c then "yes" else "NO");
        ])
      checks
  in
  Printf.sprintf "sharded-DES cross-check (serial heap vs %s)\n%s"
    (match checks with
    | c :: _ -> Printf.sprintf "%d shard(s)" c.Experiment.des_shards
    | [] -> "sharded")
    (Table.render ~header rows)

(* ------------------------------------------------------------------ *)
(* Self-profiler views (simos profile)                                 *)

let pct v = Printf.sprintf "%.1f%%" v

let profile_timeline ~label p =
  let header =
    [ "bucket"; "epochs"; "events"; "cross"; "nulls"; "stalls"; "backlog" ]
  in
  let rows =
    List.map
      (fun (b : Mk_obs.Profile.bucket) ->
        [
          Units.time_to_string b.Mk_obs.Profile.b_start;
          string_of_int b.Mk_obs.Profile.b_epochs;
          string_of_int b.Mk_obs.Profile.b_events;
          string_of_int b.Mk_obs.Profile.b_cross;
          string_of_int b.Mk_obs.Profile.b_nulls;
          string_of_int b.Mk_obs.Profile.b_stalls;
          string_of_int b.Mk_obs.Profile.b_max_backlog;
        ])
      (Mk_obs.Profile.buckets p)
  in
  let tt = Mk_obs.Profile.totals p in
  Printf.sprintf
    "%s: %d epochs, %.1f events/epoch, null %s, stall %s, horizon utilization %.2f\n%s"
    label tt.Mk_obs.Profile.t_epochs
    (Mk_obs.Profile.events_per_epoch tt)
    (pct (Mk_obs.Profile.null_pct tt))
    (pct (Mk_obs.Profile.stall_pct ~shards:(Mk_obs.Profile.shards p) tt))
    (Mk_obs.Profile.horizon_utilization tt)
    (Table.render ~header rows)

let profile_hot ~shards rows =
  let header =
    [
      "scenario"; "events"; "epochs"; "ev/epoch"; "null"; "stall"; "horizon";
      "backlog";
    ]
  in
  let body =
    List.map
      (fun (label, (tt : Mk_obs.Profile.totals)) ->
        [
          label;
          string_of_int tt.Mk_obs.Profile.t_events;
          string_of_int tt.Mk_obs.Profile.t_epochs;
          Printf.sprintf "%.1f" (Mk_obs.Profile.events_per_epoch tt);
          pct (Mk_obs.Profile.null_pct tt);
          pct (Mk_obs.Profile.stall_pct ~shards tt);
          Printf.sprintf "%.2f" (Mk_obs.Profile.horizon_utilization tt);
          string_of_int tt.Mk_obs.Profile.t_max_backlog;
        ])
      rows
  in
  "hot scenarios (by simulated events)\n" ^ Table.render ~header body

let profile_json ~nodes ~shards ~seed rows =
  Json.Obj
    [
      ("schema", Json.String "multikernel-profile-report/1");
      ("nodes", Json.Int nodes);
      ("shards", Json.Int shards);
      ("seed", Json.Int seed);
      ( "scenarios",
        Json.List
          (List.map
             (fun (label, p) ->
               Json.Obj
                 [
                   ("scenario", Json.String label);
                   ("profile", Mk_obs.Profile.to_json p);
                 ])
             rows) );
      ( "attribution",
        Mk_obs.Profile.attribution_json ~shards
          (List.map (fun (l, p) -> (l, Mk_obs.Profile.totals p)) rows) );
    ]
