(** Per-cell supervision: retry, budget, quarantine.

    The fault layer ({!Mk_fault}) models crash-tolerance {e inside}
    the simulation; this module applies the same discipline to the
    harness itself.  A supervised computation (one experiment cell)
    gets a bounded number of attempts under a {!Mk_fault.Retry.policy}
    — transient failures retry with the policy's exponential backoff,
    {e priced on the simulated clock, never slept} — and a computation
    that keeps failing (or fails permanently, or exceeds its work-unit
    budget) is {e quarantined}: recorded as a failure with its attempt
    count instead of poisoning the pool and discarding sibling cells.

    Determinism: everything here is pure control flow around the
    supervised thunk.  Retries re-run the same deterministic
    simulation, backoff is arithmetic, and the budget is a static
    work-unit count — no wall clock anywhere (mklint R1). *)

exception Transient of string
(** Raise from a supervised computation (or classify foreign
    exceptions into it) to request a retry. *)

exception Budget_exceeded of { units : int; budget : int }
(** Raised by {!check_budget}; permanent by {!default_classify}. *)

type policy = {
  retry : Mk_fault.Retry.policy;
      (** attempt count and backoff shape; [max_retries + 1] attempts total *)
  budget : int option;
      (** work-unit cap per cell ([runs x nodes x sim_iterations] at
          the experiment layer); [None] means unbounded *)
  classify : exn -> [ `Transient | `Permanent ];
      (** transient failures retry, permanent ones quarantine at once *)
}

val default : policy
(** {!Mk_fault.Retry.default_mpi} attempts/backoff, no budget,
    {!default_classify}. *)

val default_classify : exn -> [ `Transient | `Permanent ]
(** [Transient _] is transient; everything else is permanent. *)

val check_budget : policy -> units:int -> unit
(** Raises {!Budget_exceeded} when the policy carries a budget and
    [units] exceeds it. *)

type failure = { error : string; attempts : int }
(** A quarantined computation: the printed exception and how many
    attempts were made before giving up. *)

type 'a outcome = {
  result : ('a, failure) result;
  attempts : int;  (** attempts actually made (1 = first try succeeded) *)
  backoff_ns : int;  (** simulated backoff accumulated across retries *)
}

val run : ?chaos:(attempt:int -> unit) -> policy -> (unit -> 'a) -> 'a outcome
(** [run policy f] evaluates [f ()] under supervision.  [chaos] is the
    fault-injection hook used by {!Mk_cluster.Chaos}: it runs before
    each attempt and may raise to simulate that attempt failing. *)
