(** Degradation tables: median FOM under escalating fault rates.

    The fault-injection counterpart of {!Report}: one row per
    scenario, one cell per fault rate, each cell a full
    {!Experiment.point} run under a generated {!Mk_fault.Plan} — the
    {e same} plan for every scenario at a given rate, so the table
    compares how the three kernels absorb one identical fault
    timeline.  Everything is deterministic in [(app, nodes, preset,
    rates, runs, seed)]. *)

type cell = {
  rate : float;
  fom : float;
  vs_healthy : float;  (** [fom /. healthy_fom]; 1.0 = unharmed *)
  dead_nodes : int;
  recoveries : int;
  fault_events : int;
}

type row = { scenario : string; healthy_fom : float; cells : cell list }

type table = {
  app : string;
  nodes : int;
  preset : string;
  runs : int;
  seed : int;
  rows : row list;
}

val default_rates : float list
(** [[0.5; 1.0; 2.0]] expected events per node per run. *)

val run :
  ?pool:Mk_engine.Pool.t ->
  ?obs:Mk_obs.Collect.t ->
  ?scenarios:Scenario.t list ->
  app:Mk_apps.App.t ->
  nodes:int ->
  preset:string ->
  ?rates:float list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  table
(** Raises [Invalid_argument] on an unknown preset (validate first
    with {!Validate.fault_preset}). *)

val render : table -> string
val to_json : table -> Mk_engine.Json.t

(** {1 Isolation demo}

    The acceptance experiment for the paper's isolation claim
    (docs/FAULTS.md): a Linux-daemon hang must visibly degrade the
    Linux HPCG@64 median while both LWKs move under 1 %; a proxy
    crash must degrade McKernel's syscall-heavy LAMMPS point while
    its MiniFE@256 compute phases (no offloaded control traffic at
    that scale) stay within noise. *)

type demo_row = {
  label : string;
  healthy : float;
  faulted : float;
  delta_pct : float;  (** [(faulted /. healthy -. 1.) *. 100.] *)
  noise_pct : float;
      (** healthy min-max spread as a percentage of the median — the
          natural run-to-run noise the deltas are judged against *)
}

type demo = {
  hpcg_daemon_hang : demo_row list;  (** one row per trio scenario *)
  lammps_proxy : demo_row;  (** McKernel, syscall-heavy point *)
  minife_proxy : demo_row;  (** McKernel, pure-compute point *)
}

val isolation_demo :
  ?pool:Mk_engine.Pool.t ->
  ?obs:Mk_obs.Collect.t ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  demo

val render_demo : demo -> string
val demo_to_json : demo -> Mk_engine.Json.t
