type check = { name : string; passed : bool; detail : string }
type report = { checks : check list }

let passed r = List.for_all (fun c -> c.passed) r.checks

let render r =
  let b = Buffer.create 256 in
  Printf.bprintf b "chaos self-test: %d check(s), %s\n" (List.length r.checks)
    (if passed r then "all passed" else "FAILURES");
  List.iter
    (fun c ->
      Printf.bprintf b "  [%s] %s: %s\n"
        (if c.passed then "ok" else "FAIL")
        c.name c.detail)
    r.checks;
  Buffer.contents b

let app () =
  match Mk_apps.Registry.find "HPCG" with
  | Some a -> a
  | None -> failwith "Chaos: HPCG not registered"

let check name (passed, detail) = { name; passed; detail }

let with_temp_file prefix suffix f =
  let path = Filename.temp_file prefix suffix in
  Fun.protect
    ~finally:(fun () ->
      (* Remove the file and any staging/torn residue next to it. *)
      let dir = Filename.dirname path and base = Filename.basename path in
      Array.iter
        (fun entry ->
          if String.length entry >= String.length base
             && String.sub entry 0 (String.length base) = base
          then try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]))
    (fun () -> f path)

let with_temp_dir prefix f =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat path e) with Sys_error _ -> ())
        (try Sys.readdir path with Sys_error _ -> [||]);
      try Sys.rmdir path with Sys_error _ -> ())
    (fun () -> f path)

(* 1. Injected failures: one transient cell (fails twice, then
   succeeds), one permanently failing cell.  The permanent cell must
   be quarantined, every other cell must complete with numbers equal
   to the unsupervised baseline. *)
let no_lost_cells ~rng ~counts ~runs ~seed =
  let cells =
    Experiment.compare_cells ~scenarios:Scenario.trio ~app:(app ())
      ~node_counts:counts ~runs ~seed ()
  in
  let n = List.length cells in
  let transient = Mk_engine.Rng.int rng n in
  let permanent = (transient + 1 + Mk_engine.Rng.int rng (n - 1)) mod n in
  let chaos ~cell ~attempt =
    if cell = transient && attempt <= 2 then
      raise (Supervise.Transient "chaos: injected transient failure");
    if cell = permanent then failwith "chaos: injected permanent failure"
  in
  let baseline = Experiment.points cells in
  let s = Experiment.supervised_points ~chaos cells in
  let mismatches = ref 0 in
  let quarantined_right = ref false in
  List.iteri
    (fun i ((_, o), b) ->
      match o with
      | Experiment.Completed p -> if p <> b then incr mismatches
      | Experiment.Quarantined { attempts; _ } ->
          if i = permanent && attempts = 1 then quarantined_right := true)
    (List.combine s.Experiment.outcomes baseline);
  let ok =
    !quarantined_right
    && s.Experiment.quarantined = 1
    && s.Experiment.retries = 2
    && !mismatches = 0
    && List.length s.Experiment.outcomes = n
  in
  ( ok,
    Printf.sprintf
      "%d cells, transient #%d recovered after %d retrie(s), permanent #%d \
       quarantined (%d), %d sibling mismatch(es) vs unsupervised baseline"
      n transient s.Experiment.retries permanent s.Experiment.quarantined
      !mismatches )

(* 2. Kill-and-resume: journal the first [k] cells (the "killed" run),
   corrupt the journal tail the way a killed writer would, resume over
   the full cell list, and require the rendered report byte-identical
   to an uninterrupted run.  Then resume a SECOND time: the first
   resume appended fresh records after the torn tail, and if open_
   failed to repair the tail first, the fused line would make this
   second resume silently drop them and recompute. *)
let kill_and_resume ~counts ~runs ~seed =
  let a = app () in
  let cells =
    Experiment.compare_cells ~scenarios:Scenario.trio ~app:a
      ~node_counts:counts ~runs ~seed ()
  in
  let n = List.length cells in
  let k = n / 2 in
  let doc outcomes =
    Mk_engine.Json.to_string_pretty
      (Report.json ~app:a (Experiment.series_of_supervised outcomes))
  in
  let fresh = Experiment.supervised_points cells in
  let expected = doc fresh.Experiment.outcomes in
  with_temp_file "mkchaos" ".journal" @@ fun path ->
  let first_k = List.filteri (fun i _ -> i < k) cells in
  let j1 = Mk_engine.Journal.open_ ~path () in
  let killed = Experiment.supervised_points ~journal:j1 first_k in
  Mk_engine.Journal.close j1;
  (* A real kill can leave a torn trailing line behind. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "{\"key\":\"torn-by-chaos";
  close_out oc;
  let j2 = Mk_engine.Journal.open_ ~path () in
  let resumed = Experiment.supervised_points ~journal:j2 cells in
  let torn = Mk_engine.Journal.torn j2 in
  Mk_engine.Journal.close j2;
  let got = doc resumed.Experiment.outcomes in
  let j3 = Mk_engine.Journal.open_ ~path () in
  let again = Experiment.supervised_points ~journal:j3 cells in
  let torn3 = Mk_engine.Journal.torn j3 in
  Mk_engine.Journal.close j3;
  let got_again = doc again.Experiment.outcomes in
  let ok =
    killed.Experiment.computed = k
    && resumed.Experiment.replayed = k
    && resumed.Experiment.computed = n - k
    && torn = 1
    && String.equal got expected
    && again.Experiment.replayed = n
    && again.Experiment.computed = 0
    && torn3 = 0
    && String.equal got_again expected
  in
  ( ok,
    Printf.sprintf
      "killed after %d/%d cells; resume replayed %d, recomputed %d, %d torn \
       line(s) ignored, output %s; second resume replayed %d, recomputed %d \
       (torn tail repaired: %b), output %s"
      k n resumed.Experiment.replayed resumed.Experiment.computed torn
      (if String.equal got expected then "byte-identical" else "DIFFERS")
      again.Experiment.replayed again.Experiment.computed (torn3 = 0)
      (if String.equal got_again expected then "byte-identical" else "DIFFERS") )

(* 3. Mid-write crash: a write killed between staging and rename must
   leave the previous complete file in place, and a rerun must land
   the new contents. *)
let atomic_crash () =
  with_temp_file "mkchaos" ".json" @@ fun path ->
  let old_doc = "{\"generation\": 1}" and new_doc = "{\"generation\": 2}" in
  Mk_engine.Atomic_file.write path old_doc;
  let crashed =
    match
      Mk_engine.Atomic_file.with_crash_after_bytes 5 (fun () ->
          Mk_engine.Atomic_file.write path new_doc)
    with
    | () -> false
    | exception Mk_engine.Atomic_file.Crashed -> true
  in
  let after_crash = Mk_engine.Atomic_file.read path in
  let parses =
    match Mk_engine.Json.of_string after_crash with
    | Ok _ -> true
    | Error _ -> false
  in
  Mk_engine.Atomic_file.write path new_doc;
  let after_retry = Mk_engine.Atomic_file.read path in
  let ok =
    crashed
    && String.equal after_crash old_doc
    && parses
    && String.equal after_retry new_doc
  in
  ( ok,
    Printf.sprintf
      "crash injected: %b; old contents intact: %b (parseable: %b); retry \
       landed new contents: %b"
      crashed
      (String.equal after_crash old_doc)
      parses
      (String.equal after_retry new_doc) )

(* 4. Journal round trip: append, reopen, replay; duplicate keys
   resolve to the latest entry; record-only mode never replays. *)
let journal_roundtrip () =
  with_temp_file "mkchaos" ".journal" @@ fun path ->
  let v n = Mk_engine.Json.Obj [ ("value", Mk_engine.Json.Int n) ] in
  let j = Mk_engine.Journal.open_ ~path () in
  Mk_engine.Journal.record j ~key:"k1" ~label:"cell one" (v 1);
  Mk_engine.Journal.record j ~key:"k2" ~label:"cell two" (v 2);
  Mk_engine.Journal.record j ~key:"k1" ~label:"cell one again" (v 3);
  Mk_engine.Journal.close j;
  let j2 = Mk_engine.Journal.open_ ~path () in
  let k1 = Mk_engine.Journal.find j2 ~key:"k1" in
  let k2 = Mk_engine.Journal.find j2 ~key:"k2" in
  let loaded = Mk_engine.Journal.loaded j2 in
  let torn = Mk_engine.Journal.torn j2 in
  Mk_engine.Journal.close j2;
  let j3 = Mk_engine.Journal.open_ ~replay:false ~path () in
  let norecall = Mk_engine.Journal.find j3 ~key:"k1" in
  Mk_engine.Journal.close j3;
  let ok =
    k1 = Some (v 3) && k2 = Some (v 2) && loaded = 3 && torn = 0
    && norecall = None
  in
  ( ok,
    Printf.sprintf
      "3 entries loaded: %d, torn: %d, duplicate resolved to latest: %b, \
       record-only mode replays nothing: %b"
      loaded torn (k1 = Some (v 3)) (norecall = None) )

(* 5. Flight recorder: kill one cell and require its black box on
   disk — parseable, attributing exactly the killed cell (key and
   label), carrying a non-empty Perfetto trace — and nothing dumped
   for the cells that survived. *)
let flight_recorder ~rng ~counts ~runs ~seed =
  let cells =
    Experiment.compare_cells ~scenarios:Scenario.trio ~app:(app ())
      ~node_counts:counts ~runs ~seed ()
  in
  let n = List.length cells in
  let victim = Mk_engine.Rng.int rng n in
  let chaos ~cell ~attempt:_ =
    if cell = victim then failwith "chaos: killed for the flight recorder"
  in
  with_temp_dir "mkflight" @@ fun dir ->
  let s = Experiment.supervised_points ~chaos ~flight_dir:dir cells in
  let victim_cell = List.nth cells victim in
  let key = Experiment.cell_key victim_cell in
  let path = Experiment.flight_path ~dir ~key in
  let dumps =
    Array.fold_left
      (fun acc e ->
        if String.length e >= 7 && String.sub e 0 7 = "flight-" then acc + 1
        else acc)
      0
      (Sys.readdir dir)
  in
  let parsed =
    if Sys.file_exists path then
      try Some (Mk_engine.Atomic_file.read_json path)
      with Mk_engine.Atomic_file.Corrupt _ -> None
    else None
  in
  let field name = function
    | Mk_engine.Json.Obj fs -> List.assoc_opt name fs
    | _ -> None
  in
  let ok_schema, ok_key, ok_label, ok_reason, recorded, trace_events =
    match parsed with
    | None -> (false, false, false, false, 0, 0)
    | Some doc ->
        let str name =
          match field name doc with
          | Some (Mk_engine.Json.String s) -> Some s
          | _ -> None
        in
        ( str "schema" = Some "multikernel-flight/1",
          str "cell_key" = Some key,
          str "label" = Some (Experiment.cell_label victim_cell),
          Option.is_some (str "reason"),
          (match field "recorded" doc with
          | Some (Mk_engine.Json.Int i) -> i
          | _ -> 0),
          match field "trace" doc with
          | Some (Mk_engine.Json.Obj tf) -> (
              match List.assoc_opt "traceEvents" tf with
              | Some (Mk_engine.Json.List l) -> List.length l
              | _ -> 0)
          | _ -> 0 )
  in
  let ok =
    s.Experiment.quarantined = 1
    && dumps = 1 && ok_schema && ok_key && ok_label && ok_reason
    && recorded > 0 && trace_events > 0
  in
  ( ok,
    Printf.sprintf
      "cell #%d/%d killed; %d dump(s); parsed: %b; attributes killed cell \
       (key: %b, label: %b, reason: %b); %d event(s) recorded, %d trace \
       event(s) exported"
      victim n dumps (parsed <> None) ok_key ok_label ok_reason recorded
      trace_events )

let run ?(seed = 42) ~smoke () =
  let counts = if smoke then [ 2; 4 ] else [ 2; 4; 8 ] in
  let runs = 2 in
  let rng = Mk_engine.Rng.create seed in
  {
    checks =
      [
        check "no-lost-cells" (no_lost_cells ~rng ~counts ~runs ~seed);
        check "kill-and-resume" (kill_and_resume ~counts ~runs ~seed);
        check "atomic-mid-write-crash" (atomic_crash ());
        check "journal-round-trip" (journal_roundtrip ());
        check "flight-recorder" (flight_recorder ~rng ~counts ~runs ~seed);
      ];
  }
