open Mk_engine

type cell = {
  rate : float;
  fom : float;
  vs_healthy : float;
  dead_nodes : int;
  recoveries : int;
  fault_events : int;
}

type row = { scenario : string; healthy_fom : float; cells : cell list }

type table = {
  app : string;
  nodes : int;
  preset : string;
  runs : int;
  seed : int;
  rows : row list;
}

let default_rates = [ 0.5; 1.0; 2.0 ]

(* Mirrors the driver's simulated-iteration count so plan events land
   inside the measured window. *)
let sim_iterations (app : Mk_apps.App.t) =
  max 2 (min app.Mk_apps.App.sim_iterations app.Mk_apps.App.iterations)

let plan_for ~preset ~rate ~app ~nodes ~seed =
  match Mk_fault.Plan.preset_spec preset ~rate with
  | None -> invalid_arg (Printf.sprintf "Degradation: unknown preset %S" preset)
  | Some spec ->
      Mk_fault.Plan.generate ~spec ~nodes ~iterations:(sim_iterations app)
        ~seed:(seed + 7919)

let run ?pool ?obs ?(scenarios = Scenario.trio) ~app ~nodes ~preset
    ?(rates = default_rates) ?(runs = Experiment.default_runs) ?(seed = 42) () =
  (* Fail on a bad preset before any simulation runs. *)
  List.iter
    (fun rate -> ignore (plan_for ~preset ~rate ~app ~nodes ~seed))
    (match rates with [] -> [ 0.0 ] | l -> l);
  (* One flat (scenario × rate-or-healthy) cell list handed to
     Experiment.points, which decomposes it into per-repetition pool
     tasks: the whole table is a single flat schedule, and the
     collector (if any) absorbs snapshots in cell input order inside
     [points].  Fault plans are generated here — they are a pure
     function of their arguments, so this changes nothing observable
     versus generating them in workers. *)
  let specs =
    List.concat
      (List.mapi
         (fun i scenario ->
           (i, scenario, None)
           :: List.map (fun rate -> (i, scenario, Some rate)) rates)
         scenarios)
  in
  let cells =
    List.map
      (fun (_, scenario, rate) ->
        {
          Experiment.scenario;
          app;
          nodes;
          faults =
            Option.map (fun rate -> plan_for ~preset ~rate ~app ~nodes ~seed) rate;
          runs;
          seed;
        })
      specs
  in
  let cell_results =
    List.map2
      (fun (i, _, rate) p -> (i, rate, p))
      specs
      (Experiment.points ?pool ?obs cells)
  in
  let rows =
    List.mapi
      (fun i (scenario : Scenario.t) ->
        let mine =
          List.filter_map
            (fun (j, rate, p) -> if j = i then Some (rate, p) else None)
            cell_results
        in
        let healthy =
          match List.assoc_opt None (List.map (fun (r, p) -> (r, p)) mine) with
          | Some p -> p
          | None -> assert false
        in
        let healthy_fom = healthy.Experiment.median_fom in
        let cells =
          List.filter_map
            (fun (rate, (p : Experiment.point)) ->
              match rate with
              | None -> None
              | Some rate ->
                  let r = p.Experiment.median_result in
                  Some
                    {
                      rate;
                      fom = p.Experiment.median_fom;
                      vs_healthy =
                        (if healthy_fom > 0.0 then
                           p.Experiment.median_fom /. healthy_fom
                         else 1.0);
                      dead_nodes = r.Driver.dead_nodes;
                      recoveries = r.Driver.recoveries;
                      fault_events = r.Driver.fault_events;
                    })
            mine
        in
        { scenario = scenario.Scenario.label; healthy_fom; cells })
      scenarios
  in
  { app = app.Mk_apps.App.name; nodes; preset; runs; seed; rows }

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "fault degradation — %s @ %d nodes, preset %s (%d runs, seed %d)\n"
       t.app t.nodes t.preset t.runs t.seed);
  Buffer.add_string buf (Printf.sprintf "%-12s %14s" "scenario" "healthy");
  (match t.rows with
  | { cells; _ } :: _ ->
      List.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf " %18s" (Printf.sprintf "rate %.2g" c.rate)))
        cells
  | [] -> ());
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %14.4g" row.scenario row.healthy_fom);
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf " %18s"
               (Printf.sprintf "%.4g (%+.1f%%)" c.fom
                  ((c.vs_healthy -. 1.) *. 100.))))
        row.cells;
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "multikernel-faults/1");
      ("app", Json.String t.app);
      ("nodes", Json.Int t.nodes);
      ("preset", Json.String t.preset);
      ("runs", Json.Int t.runs);
      ("seed", Json.Int t.seed);
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("scenario", Json.String row.scenario);
                   ("healthy_fom", Json.Float row.healthy_fom);
                   ( "cells",
                     Json.List
                       (List.map
                          (fun c ->
                            Json.Obj
                              [
                                ("rate", Json.Float c.rate);
                                ("fom", Json.Float c.fom);
                                ("vs_healthy", Json.Float c.vs_healthy);
                                ("dead_nodes", Json.Int c.dead_nodes);
                                ("recoveries", Json.Int c.recoveries);
                                ("fault_events", Json.Int c.fault_events);
                              ])
                          row.cells) );
                 ])
             t.rows) );
    ]

(* ------------------------------------------------------------------ *)
(* Isolation demo                                                      *)

type demo_row = {
  label : string;
  healthy : float;
  faulted : float;
  delta_pct : float;
  noise_pct : float;
}

type demo = {
  hpcg_daemon_hang : demo_row list;
  lammps_proxy : demo_row;
  minife_proxy : demo_row;
}

let demo_row ~label ~(healthy : Experiment.point) ~(faulted : Experiment.point) =
  let h = healthy.Experiment.median_fom in
  let f = faulted.Experiment.median_fom in
  {
    label;
    healthy = h;
    faulted = f;
    delta_pct = (if h > 0.0 then ((f /. h) -. 1.) *. 100. else 0.0);
    noise_pct =
      (if h > 0.0 then
         (healthy.Experiment.max_fom -. healthy.Experiment.min_fom) /. h *. 100.
       else 0.0);
  }

let isolation_demo ?pool ?obs ?(runs = Experiment.default_runs) ?(seed = 42) () =
  let hpcg = Mk_apps.Hpcg.app and lammps = Mk_apps.Lammps.app
  and minife = Mk_apps.Minife.app in
  let hang_64 = Mk_fault.Plan.daemon_hang_demo ~nodes:64 in
  let crash_16 = Mk_fault.Plan.proxy_crash_demo ~nodes:16 in
  let crash_256 = Mk_fault.Plan.proxy_crash_demo ~nodes:256 in
  (* Flat cell batch: label × scenario × app × nodes × plan option. *)
  let cells =
    List.map
      (fun (s : Scenario.t) -> (s.Scenario.label, s, hpcg, 64, None))
      Scenario.trio
    @ List.map
        (fun (s : Scenario.t) -> (s.Scenario.label, s, hpcg, 64, Some hang_64))
        Scenario.trio
    @ [
        ("lammps-h", Scenario.mckernel, lammps, 16, None);
        ("lammps-f", Scenario.mckernel, lammps, 16, Some crash_16);
        ("minife-h", Scenario.mckernel, minife, 256, None);
        ("minife-f", Scenario.mckernel, minife, 256, Some crash_256);
      ]
  in
  let results =
    Experiment.points ?pool ?obs
      (List.map
         (fun (_, scenario, app, nodes, faults) ->
           { Experiment.scenario; app; nodes; faults; runs; seed })
         cells)
  in
  let tagged = List.combine (List.map (fun (l, _, _, _, p) -> (l, p)) cells) results in
  let find label faulted =
    match
      List.find_opt
        (fun ((l, p), _) -> l = label && Option.is_some p = faulted)
        tagged
    with
    | Some (_, p) -> p
    | None -> assert false
  in
  {
    hpcg_daemon_hang =
      List.map
        (fun (s : Scenario.t) ->
          let l = s.Scenario.label in
          demo_row ~label:l ~healthy:(find l false) ~faulted:(find l true))
        Scenario.trio;
    lammps_proxy =
      demo_row ~label:"McKernel LAMMPS@16"
        ~healthy:(find "lammps-h" false)
        ~faulted:(find "lammps-f" true);
    minife_proxy =
      demo_row ~label:"McKernel MiniFE@256"
        ~healthy:(find "minife-h" false)
        ~faulted:(find "minife-f" true);
  }

let render_demo d =
  let buf = Buffer.create 1024 in
  let line r =
    Buffer.add_string buf
      (Printf.sprintf "  %-22s healthy %10.4g   faulted %10.4g   delta %+6.2f%%  (noise ±%.2f%%)\n"
         r.label r.healthy r.faulted r.delta_pct (r.noise_pct /. 2.))
  in
  Buffer.add_string buf
    "isolation demo 1 — Linux daemon hang, HPCG @ 64 nodes\n";
  Buffer.add_string buf
    "  (the hang wedges node 1's Linux partition for 6 of 10 iterations)\n";
  List.iter line d.hpcg_daemon_hang;
  Buffer.add_string buf
    "isolation demo 2 — McKernel proxy crash (3 crashes over the run)\n";
  line d.lammps_proxy;
  line d.minife_proxy;
  Buffer.add_string buf
    "  LAMMPS offloads ~1800 control syscalls per iteration through the proxy;\n";
  Buffer.add_string buf
    "  MiniFE at 256 nodes sends halos below the eager threshold — no offloaded\n";
  Buffer.add_string buf
    "  control path, so a dead proxy goes unnoticed by pure compute.\n";
  Buffer.contents buf

let demo_row_json r =
  Json.Obj
    [
      ("label", Json.String r.label);
      ("healthy_fom", Json.Float r.healthy);
      ("faulted_fom", Json.Float r.faulted);
      ("delta_pct", Json.Float r.delta_pct);
      ("noise_pct", Json.Float r.noise_pct);
    ]

let demo_to_json d =
  Json.Obj
    [
      ("schema", Json.String "multikernel-faults-demo/1");
      ("hpcg_daemon_hang", Json.List (List.map demo_row_json d.hpcg_daemon_hang));
      ("lammps_proxy", demo_row_json d.lammps_proxy);
      ("minife_proxy", demo_row_json d.minife_proxy);
    ]
