type point = {
  nodes : int;
  median_fom : float;
  min_fom : float;
  max_fom : float;
  median_result : Driver.result;
}

type series = { scenario_label : string; points : point list }

type cell = {
  scenario : Scenario.t;
  app : Mk_apps.App.t;
  nodes : int;
  faults : Mk_fault.Plan.t option;
  runs : int;
  seed : int;
}

let default_runs = 5

(* Repetition [i] of a cell perturbs the base seed deterministically;
   part of the cell's identity (see [cell_key]), so it must never
   change without bumping [cell_salt]. *)
let seed_of c i = c.seed + (100 * i)

let summarise ~nodes results =
  let sorted =
    List.sort (fun (a : Driver.result) b -> compare a.Driver.fom b.Driver.fom) results
  in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let median_result = arr.(n / 2) in
  {
    nodes;
    median_fom = median_result.Driver.fom;
    min_fom = arr.(0).Driver.fom;
    max_fom = arr.(n - 1).Driver.fom;
    median_result;
  }

(* Split a flat stream back into consecutive groups of the given
   sizes.  The fan-out below relies on [Pool.parallel_map] preserving
   input order, so group boundaries are positional. *)
let split_groups sizes xs =
  let rec take n rest acc =
    if n = 0 then (List.rev acc, rest)
    else
      match rest with
      | x :: tl -> take (n - 1) tl (x :: acc)
      | [] -> assert false
  in
  let rec go sizes rest acc =
    match sizes with
    | [] -> List.rev acc
    | n :: tl ->
        let mine, rest = take n rest [] in
        go tl rest (mine :: acc)
  in
  go sizes xs []

(* The one fan-out point of the experiment layer.  Every repetition of
   every cell becomes its own pool task — the finest grain there is —
   so the work-stealing executor load-balances across uneven cell
   costs (a 256-node HPCG run next to a 4-node sleep costs nothing to
   schedule around).  Jobs are laid out cell-major, repetition-minor;
   results come back in that same order ([parallel_map] reassembles
   positionally), so summarising per cell and absorbing snapshots in
   job order reproduce exactly what sequential execution would have
   done — which executor ran which repetition is invisible. *)
let points ?pool ?obs ?progress cells =
  List.iter
    (fun c ->
      if c.runs <= 0 then invalid_arg "Experiment.point: runs must be positive")
    cells;
  let jobs =
    List.concat_map (fun c -> List.init c.runs (fun i -> (c, i))) cells
  in
  (* Progress is a side channel for interactive feedback (the simos
     heartbeat): the callback fires on whichever domain finished the
     repetition, so it must be thread-safe and must never influence
     results.  The counter is the only shared state. *)
  let total = List.length jobs in
  let completed = Atomic.make 0 in
  let notify task j =
    match progress with
    | None -> task j
    | Some f ->
        let r = task j in
        f ~completed:(Atomic.fetch_and_add completed 1 + 1) ~total;
        r
  in
  let regroup results =
    List.map2
      (fun c rs -> summarise ~nodes:c.nodes rs)
      cells
      (split_groups (List.map (fun c -> c.runs) cells) results)
  in
  match obs with
  | None ->
      (* No recorder is even allocated: the Driver keeps the Null
         sink installed — the pre-observability fast path. *)
      regroup
        (Mk_engine.Pool.parallel_map ?pool
           (notify (fun (c, i) ->
                Driver.run ?faults:c.faults ~scenario:c.scenario ~app:c.app
                  ~nodes:c.nodes ~seed:(seed_of c i) ()))
           jobs)
  | Some coll ->
      let trace = Mk_obs.Collect.trace_enabled coll in
      let outs =
        Mk_engine.Pool.parallel_map ?pool
          (notify (fun (c, i) ->
            let seed = seed_of c i in
            let r =
              Mk_obs.Recorder.make ~trace ~label:c.scenario.Scenario.label
                ~nodes:c.nodes ~seed ()
            in
            let result =
              Driver.run ?faults:c.faults ~obs:r ~scenario:c.scenario
                ~app:c.app ~nodes:c.nodes ~seed ()
            in
            (result, Mk_obs.Recorder.snapshot r)))
          jobs
      in
      (* Each run recorded into its own recorder; merging here — in
         job order, never in a worker — keeps parallel observed
         output bit-identical to sequential. *)
      List.iter (fun (_, s) -> Mk_obs.Collect.add coll s) outs;
      regroup (List.map fst outs)

let point ?pool ?faults ?obs ~scenario ~app ~nodes ?(runs = default_runs)
    ?(seed = 42) () =
  match points ?pool ?obs [ { scenario; app; nodes; faults; runs; seed } ] with
  | [ p ] -> p
  | _ -> assert false

(* Cell builders — the one place each orchestrator's cell layout is
   defined, shared with the supervised/journaled path so a journal
   written by [simos sweep --journal] replays against exactly the
   cells a fresh run would compute. *)
let sweep_cells ~scenario ~app ?node_counts ?(runs = default_runs)
    ?(seed = 42) () =
  let counts = Option.value node_counts ~default:app.Mk_apps.App.node_counts in
  List.map
    (fun nodes -> { scenario; app; nodes; faults = None; runs; seed })
    counts

let compare_cells ~scenarios ~app ?node_counts ?(runs = default_runs)
    ?(seed = 42) () =
  List.concat_map
    (fun scenario -> sweep_cells ~scenario ~app ?node_counts ~runs ~seed ())
    scenarios

let suite_cells ?(apps = Mk_apps.Registry.all) ?node_counts
    ?(runs = default_runs) ?(seed = 42) () =
  List.map
    (fun app ->
      ( app,
        compare_cells ~scenarios:Scenario.trio ~app ?node_counts ~runs ~seed
          () ))
    apps

let sweep ?pool ?obs ?progress ~scenario ~app ?node_counts ?runs ?seed () =
  let cells = sweep_cells ~scenario ~app ?node_counts ?runs ?seed () in
  {
    scenario_label = scenario.Scenario.label;
    points = points ?pool ?obs ?progress cells;
  }

let compare_scenarios ?pool ?obs ?progress ~scenarios ~app ?node_counts ?runs
    ?seed () =
  let counts = Option.value node_counts ~default:app.Mk_apps.App.node_counts in
  let cells = compare_cells ~scenarios ~app ?node_counts ?runs ?seed () in
  let k = List.length counts in
  List.map2
    (fun (scenario : Scenario.t) pts ->
      { scenario_label = scenario.Scenario.label; points = pts })
    scenarios
    (split_groups
       (List.map (fun _ -> k) scenarios)
       (points ?pool ?obs ?progress cells))

let relative_to ~baseline series =
  List.filter_map
    (fun (p : point) ->
      match List.find_opt (fun (b : point) -> b.nodes = p.nodes) baseline.points with
      | Some b when b.median_fom > 0.0 -> Some (p.nodes, p.median_fom /. b.median_fom)
      | Some _ | None -> None)
    series.points

let median_improvement ratio_lists =
  let all = List.concat ratio_lists |> List.map snd in
  if all = [] then 1.0 else Mk_engine.Stats.median_of all

let best_improvement ratio_lists =
  List.fold_left
    (fun acc (_, r) -> max acc r)
    neg_infinity
    (List.concat ratio_lists)

let suite ?pool ?obs ?progress ?apps ?node_counts ?runs ?seed () =
  (* The whole evaluation — every (app × scenario × node count)
     repetition — as one flat batch.  This is where per-run tasks pay
     off most: apps differ in cost by orders of magnitude, and with
     per-app (or even per-cell) batches the suite's tail was whoever
     drew the expensive app.  Here idle executors steal individual
     runs from the expensive cells instead of waiting out the
     barrier. *)
  let counts_of app = Option.value node_counts ~default:app.Mk_apps.App.node_counts in
  let per_app = suite_cells ?apps ?node_counts ?runs ?seed () in
  let ps = points ?pool ?obs ?progress (List.concat_map snd per_app) in
  List.map2
    (fun (app, _) pts ->
      let k = List.length (counts_of app) in
      ( app,
        List.map2
          (fun (s : Scenario.t) points ->
            { scenario_label = s.Scenario.label; points })
          Scenario.trio
          (split_groups (List.map (fun _ -> k) Scenario.trio) pts) ))
    per_app
    (split_groups (List.map (fun (_, cs) -> List.length cs) per_app) ps)

(* ------------------------------------------------------------------ *)
(* Supervised, journaled execution.                                    *)

(* Version salt folded into every cell key.  Bump it whenever the
   meaning of a cell changes — the seed schedule ([seed_of]), the
   Driver's arithmetic, the summary statistics — so stale journal
   entries miss instead of replaying wrong numbers. *)
let cell_salt = "multikernel-cell/1"

let cell_fingerprint c =
  Mk_engine.Json.(
    to_string
      (Obj
         [
           ("salt", String cell_salt);
           ("scenario", String c.scenario.Scenario.label);
           ("app", String c.app.Mk_apps.App.name);
           ("nodes", Int c.nodes);
           ("runs", Int c.runs);
           ("seed", Int c.seed);
           ( "faults",
             match c.faults with
             | None -> Null
             | Some p -> Mk_fault.Plan.to_json p );
         ]))

let cell_key c = Digest.to_hex (Digest.string (cell_fingerprint c))

let cell_label c =
  Printf.sprintf "%s/%s/n%d/r%d/s%d" c.app.Mk_apps.App.name
    c.scenario.Scenario.label c.nodes c.runs c.seed

(* Static work-unit cost of a cell — deterministic by construction
   (no event counting, no clocks), which is all the budget needs to
   be to catch a pathologically sized cell before it runs. *)
let cell_units c = c.runs * c.nodes * c.app.Mk_apps.App.sim_iterations

let result_to_json (r : Driver.result) =
  Mk_engine.Json.(
    Obj
      [
        ("nodes", Int r.Driver.nodes);
        ("total_time", Int r.Driver.total_time);
        ("solve_time", Int r.Driver.solve_time);
        ("setup_time", Int r.Driver.setup_time);
        ("first_iteration", Int r.Driver.first_iteration);
        ("steady_iteration", Int r.Driver.steady_iteration);
        ("fom", Float r.Driver.fom);
        ("mcdram_fraction", Float r.Driver.mcdram_fraction);
        ("faults", Int r.Driver.faults);
        ("offloads_per_iteration", Int r.Driver.offloads_per_iteration);
        ("failures", Int r.Driver.failures);
        ("fault_events", Int r.Driver.fault_events);
        ("dead_nodes", Int r.Driver.dead_nodes);
        ("recoveries", Int r.Driver.recoveries);
      ])

exception Bad_field of string

let int_field fields name =
  match List.assoc_opt name fields with
  | Some (Mk_engine.Json.Int i) -> i
  | _ -> raise (Bad_field name)

let float_field fields name =
  match List.assoc_opt name fields with
  | Some (Mk_engine.Json.Float f) -> f
  | _ -> raise (Bad_field name)

let result_of_json_exn fields : Driver.result =
  {
    Driver.nodes = int_field fields "nodes";
    total_time = int_field fields "total_time";
    solve_time = int_field fields "solve_time";
    setup_time = int_field fields "setup_time";
    first_iteration = int_field fields "first_iteration";
    steady_iteration = int_field fields "steady_iteration";
    fom = float_field fields "fom";
    mcdram_fraction = float_field fields "mcdram_fraction";
    faults = int_field fields "faults";
    offloads_per_iteration = int_field fields "offloads_per_iteration";
    failures = int_field fields "failures";
    fault_events = int_field fields "fault_events";
    dead_nodes = int_field fields "dead_nodes";
    recoveries = int_field fields "recoveries";
  }

let point_to_json (p : point) =
  Mk_engine.Json.(
    Obj
      [
        ("nodes", Int p.nodes);
        ("median_fom", Float p.median_fom);
        ("min_fom", Float p.min_fom);
        ("max_fom", Float p.max_fom);
        ("median_result", result_to_json p.median_result);
      ])

let point_of_json json : (point, string) result =
  match json with
  | Mk_engine.Json.Obj fields -> (
      try
        let median_result =
          match List.assoc_opt "median_result" fields with
          | Some (Mk_engine.Json.Obj rf) -> result_of_json_exn rf
          | _ -> raise (Bad_field "median_result")
        in
        Ok
          {
            nodes = int_field fields "nodes";
            median_fom = float_field fields "median_fom";
            min_fom = float_field fields "min_fom";
            max_fom = float_field fields "max_fom";
            median_result;
          }
      with Bad_field name -> Error (Printf.sprintf "bad field %S" name))
  | _ -> Error "point is not an object"

type outcome = Completed of point | Quarantined of { error : string; attempts : int }

type supervised = {
  outcomes : (cell * outcome) list;
  computed : int;
  replayed : int;
  retries : int;
  quarantined : int;
  backoff_ns : int;
}

let flight_path ~dir ~key = Filename.concat dir ("flight-" ^ key ^ ".json")

let supervised_points ?pool ?(policy = Supervise.default) ?journal ?chaos
    ?flight_dir cells =
  List.iter
    (fun c ->
      if c.runs <= 0 then
        invalid_arg "Experiment.supervised_points: runs must be positive")
    cells;
  let chaos = Option.value chaos ~default:(fun ~cell:_ ~attempt:_ -> ()) in
  let indexed = List.mapi (fun i c -> (i, c, cell_key c)) cells in
  (* One task per CELL (not per repetition): a cell is the unit of
     retry, quarantine and journaling, so its repetitions must live
     and die together.  Inside the task the repetitions run
     sequentially with exactly the seeds [points] would use, so a
     supervised run's numbers are identical to an unsupervised one. *)
  let task (i, c, key) =
    let replayed =
      match
        Option.bind journal (fun j -> Mk_engine.Journal.find j ~key)
      with
      | None -> None
      | Some json -> (
          (* An unparseable journal value is treated as a miss — the
             cell is simply recomputed. *)
          match point_of_json json with Ok p -> Some p | Error _ -> None)
    in
    match replayed with
    | Some p -> `Replayed p
    | None ->
        (* Flight recorder: a per-cell black box, armed for the whole
           supervised extent (all attempts share one ring — the tail
           of the last, fatal attempt survives wraparound).  Created,
           filled and snapshotted on this worker domain only; the
           immutable snapshot crosses to the submitter through the
           pool barrier below. *)
        let ring =
          match flight_dir with
          | None -> None
          | Some _ ->
              Some (Mk_obs.Flight.create ~label:(cell_label c) ~seed:c.seed ())
        in
        let arm f =
          match ring with None -> f () | Some r -> Mk_obs.Flight.with_ring r f
        in
        let out =
          arm (fun () ->
              Supervise.run
                ~chaos:(fun ~attempt ->
                  (match ring with
                  | None -> ()
                  | Some r ->
                      Mk_obs.Flight.instant r ~ts:0 ~node:0 ~cat:"cell"
                        ~name:(Printf.sprintf "attempt %d" attempt) ());
                  chaos ~cell:i ~attempt)
                policy
                (fun () ->
                  Supervise.check_budget policy ~units:(cell_units c);
                  summarise ~nodes:c.nodes
                    (List.init c.runs (fun r ->
                         (match ring with
                         | None -> ()
                         | Some fr ->
                             Mk_obs.Flight.instant fr ~ts:0 ~node:0 ~cat:"cell"
                               ~name:(Printf.sprintf "repetition %d" r) ());
                         Driver.run ?faults:c.faults ~scenario:c.scenario
                           ~app:c.app ~nodes:c.nodes ~seed:(seed_of c r) ()))))
        in
        (* Record from the worker, as soon as the cell completes: a
           kill between cells then loses nothing already done. *)
        (match (out.Supervise.result, journal) with
        | Ok p, Some j ->
            Mk_engine.Journal.record j ~key ~label:(cell_label c)
              (point_to_json p)
        | _ -> ());
        let flight =
          match (out.Supervise.result, ring) with
          | Error _, Some r -> Some (Mk_obs.Flight.snapshot r)
          | _ -> None
        in
        `Computed (out, flight)
  in
  let raw = Mk_engine.Pool.parallel_map_result ?pool task indexed in
  let zero =
    {
      outcomes = [];
      computed = 0;
      replayed = 0;
      retries = 0;
      quarantined = 0;
      backoff_ns = 0;
    }
  in
  (* Black-box dumps happen here, on the submitting domain after the
     barrier — one writer, cell order, through the same crash-safe
     rename as every other artifact. *)
  let dump_flight ~key ~error flight =
    match (flight_dir, flight) with
    | Some dir, Some snap ->
        Mk_engine.Atomic_file.write
          (flight_path ~dir ~key)
          (Mk_engine.Json.to_string_pretty
             (Mk_obs.Flight.to_json ~cell_key:key ~reason:error snap)
          ^ "\n")
    | _ -> ()
  in
  let s =
    List.fold_left2
      (fun acc (_, c, key) r ->
        match r with
        | Ok (`Replayed p) ->
            {
              acc with
              outcomes = (c, Completed p) :: acc.outcomes;
              replayed = acc.replayed + 1;
            }
        | Ok (`Computed (out, flight)) -> (
            let retries = acc.retries + out.Supervise.attempts - 1 in
            let backoff_ns = acc.backoff_ns + out.Supervise.backoff_ns in
            match out.Supervise.result with
            | Ok p ->
                {
                  acc with
                  outcomes = (c, Completed p) :: acc.outcomes;
                  computed = acc.computed + 1;
                  retries;
                  backoff_ns;
                }
            | Error { Supervise.error; attempts } ->
                dump_flight ~key ~error flight;
                {
                  acc with
                  outcomes = (c, Quarantined { error; attempts }) :: acc.outcomes;
                  quarantined = acc.quarantined + 1;
                  retries;
                  backoff_ns;
                })
        | Error (e, _bt) ->
            (* The supervisor itself escaped (journal I/O failure,
               …): still contained — sibling cells keep their
               results.  [attempts = 0] marks a supervisor failure as
               opposed to an exhausted retry budget. *)
            {
              acc with
              outcomes =
                (c, Quarantined { error = Printexc.to_string e; attempts = 0 })
                :: acc.outcomes;
              quarantined = acc.quarantined + 1;
            })
      zero indexed raw
  in
  let s = { s with outcomes = List.rev s.outcomes } in
  (* Supervision counters, emitted once on the submitting domain
     after the barrier — deterministic, like every other obs merge. *)
  if s.replayed > 0 then
    Mk_obs.Hook.count ~subsystem:"supervise" ~name:"journal_hits" s.replayed;
  if s.retries > 0 then
    Mk_obs.Hook.count ~subsystem:"supervise" ~name:"retries" s.retries;
  if s.quarantined > 0 then
    Mk_obs.Hook.count ~subsystem:"supervise" ~name:"quarantines" s.quarantined;
  s

let series_of_supervised outcomes =
  let labels =
    List.fold_left
      (fun acc (c, _) ->
        let l = c.scenario.Scenario.label in
        if List.mem l acc then acc else acc @ [ l ])
      [] outcomes
  in
  List.map
    (fun l ->
      {
        scenario_label = l;
        points =
          List.filter_map
            (fun (c, o) ->
              if c.scenario.Scenario.label = l then
                match o with Completed p -> Some p | Quarantined _ -> None
              else None)
            outcomes;
      })
    labels

let suite_of_supervised per_app s =
  let sizes = List.map (fun (_, cs) -> List.length cs) per_app in
  List.map2
    (fun (app, _) block -> (app, series_of_supervised block))
    per_app
    (split_groups sizes s.outcomes)

(* ------------------------------------------------------------------ *)
(* Sharded-DES validation tier (simos suite --des-shards) *)

type des_check = {
  des_scenario : string;
  des_nodes : int;
  des_shards : int;
  serial : Cluster_des.result;
  sharded : Cluster_des.result;
  des_stats : Cluster_des.sharding;
}

let des_identical c = c.serial = c.sharded

(* The workload of the DES cross-validation tests: one Oakforest-like
   node (64 ranks), a 2 ms compute window, 10 allreduce iterations. *)
let des_checks ?pool ?(scenarios = Scenario.trio) ~nodes ~shards ?(seed = 42)
    () =
  if shards <= 0 then
    invalid_arg "Experiment.des_checks: shards must be positive";
  let window = 2 * Mk_engine.Units.ms in
  List.map
    (fun (sc : Scenario.t) ->
      let os = sc.Scenario.make () in
      let profile = os.Mk_kernel.Os.app_noise in
      let fabric = Mk_fabric.Fabric.make ~nodes () in
      let serial =
        Cluster_des.allreduce_loop ~nodes ~ranks_per_node:64
          ~threads_per_rank:1 ~window ~iterations:10 ~bytes:8 ~profile ~fabric
          ~seed
      in
      let sharded, des_stats =
        Cluster_des.sharded_allreduce_loop ?pool ~shards ~nodes
          ~ranks_per_node:64 ~threads_per_rank:1 ~window ~iterations:10
          ~bytes:8 ~profile ~fabric ~seed ()
      in
      {
        des_scenario = sc.Scenario.label;
        des_nodes = nodes;
        des_shards = shards;
        serial;
        sharded;
        des_stats;
      })
    scenarios

(* The same workload as [des_checks], but instrumented: each scenario's
   sharded run feeds an engine self-profiler through the epoch
   observer.  The profile consumes only protocol-determined
   Shard.samples, so the rows are byte-identical across pool sizes —
   the property [simos profile -o] and test/test_obs.ml rely on. *)
let des_profiles ?pool ?(scenarios = Scenario.trio) ?bucket_ns ~nodes ~shards
    ?(iterations = 10) ?(seed = 42) () =
  if shards <= 0 then
    invalid_arg "Experiment.des_profiles: shards must be positive";
  if iterations <= 0 then
    invalid_arg "Experiment.des_profiles: iterations must be positive";
  let window = 2 * Mk_engine.Units.ms in
  List.map
    (fun (sc : Scenario.t) ->
      let os = sc.Scenario.make () in
      let profile = os.Mk_kernel.Os.app_noise in
      let fabric = Mk_fabric.Fabric.make ~nodes () in
      let p = Mk_obs.Profile.create ?bucket_ns ~shards () in
      let _ =
        Cluster_des.sharded_allreduce_loop ?pool
          ~observer:(Mk_obs.Profile.observe p) ~shards ~nodes
          ~ranks_per_node:64 ~threads_per_rank:1 ~window ~iterations ~bytes:8
          ~profile ~fabric ~seed ()
      in
      (sc.Scenario.label, p))
    scenarios
