type point = {
  nodes : int;
  median_fom : float;
  min_fom : float;
  max_fom : float;
  median_result : Driver.result;
}

type series = { scenario_label : string; points : point list }

let default_runs = 5

let point ?pool ?faults ~scenario ~app ~nodes ?(runs = default_runs) ?(seed = 42)
    () =
  if runs <= 0 then invalid_arg "Experiment.point: runs must be positive";
  let results =
    Mk_engine.Pool.parallel_map ?pool
      (fun i -> Driver.run ?faults ~scenario ~app ~nodes ~seed:(seed + (100 * i)) ())
      (List.init runs Fun.id)
  in
  let sorted =
    List.sort (fun (a : Driver.result) b -> compare a.Driver.fom b.Driver.fom) results
  in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let median_result = arr.(n / 2) in
  {
    nodes;
    median_fom = median_result.Driver.fom;
    min_fom = arr.(0).Driver.fom;
    max_fom = arr.(n - 1).Driver.fom;
    median_result;
  }

let sweep ?pool ~scenario ~app ?node_counts ?runs ?seed () =
  let counts = Option.value node_counts ~default:app.Mk_apps.App.node_counts in
  {
    scenario_label = scenario.Scenario.label;
    points =
      Mk_engine.Pool.parallel_map ?pool
        (fun nodes -> point ?pool ~scenario ~app ~nodes ?runs ?seed ())
        counts;
  }

let compare_scenarios ?pool ~scenarios ~app ?node_counts ?runs ?seed () =
  let counts = Option.value node_counts ~default:app.Mk_apps.App.node_counts in
  (* Fan every (scenario × node count) cell out as one job — a single
     flat batch keeps all workers busy even when scenarios and node
     counts are few — then regroup by scenario index, so the output
     is structurally identical to mapping [sweep] over [scenarios]. *)
  let cells =
    List.concat
      (List.mapi
         (fun i scenario -> List.map (fun nodes -> (i, scenario, nodes)) counts)
         scenarios)
  in
  let cell_points =
    Mk_engine.Pool.parallel_map ?pool
      (fun (i, scenario, nodes) ->
        (i, point ?pool ~scenario ~app ~nodes ?runs ?seed ()))
      cells
  in
  List.mapi
    (fun i (scenario : Scenario.t) ->
      {
        scenario_label = scenario.Scenario.label;
        points = List.filter_map (fun (j, p) -> if j = i then Some p else None) cell_points;
      })
    scenarios

let relative_to ~baseline series =
  List.filter_map
    (fun p ->
      match List.find_opt (fun b -> b.nodes = p.nodes) baseline.points with
      | Some b when b.median_fom > 0.0 -> Some (p.nodes, p.median_fom /. b.median_fom)
      | Some _ | None -> None)
    series.points

let median_improvement ratio_lists =
  let all = List.concat ratio_lists |> List.map snd in
  if all = [] then 1.0 else Mk_engine.Stats.median_of all

let best_improvement ratio_lists =
  List.fold_left
    (fun acc (_, r) -> max acc r)
    neg_infinity
    (List.concat ratio_lists)

let suite ?pool ?(apps = Mk_apps.Registry.all) ?node_counts ?runs ?seed () =
  List.map
    (fun app ->
      ( app,
        compare_scenarios ?pool ~scenarios:Scenario.trio ~app ?node_counts
          ?runs ?seed () ))
    apps
