type point = {
  nodes : int;
  median_fom : float;
  min_fom : float;
  max_fom : float;
  median_result : Driver.result;
}

type series = { scenario_label : string; points : point list }

let default_runs = 5

let point ~scenario ~app ~nodes ?(runs = default_runs) ?(seed = 42) () =
  if runs <= 0 then invalid_arg "Experiment.point: runs must be positive";
  let results =
    List.init runs (fun i -> Driver.run ~scenario ~app ~nodes ~seed:(seed + (100 * i)) ())
  in
  let sorted =
    List.sort (fun (a : Driver.result) b -> compare a.Driver.fom b.Driver.fom) results
  in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let median_result = arr.(n / 2) in
  {
    nodes;
    median_fom = median_result.Driver.fom;
    min_fom = arr.(0).Driver.fom;
    max_fom = arr.(n - 1).Driver.fom;
    median_result;
  }

let sweep ~scenario ~app ?node_counts ?runs ?seed () =
  let counts = Option.value node_counts ~default:app.Mk_apps.App.node_counts in
  {
    scenario_label = scenario.Scenario.label;
    points = List.map (fun nodes -> point ~scenario ~app ~nodes ?runs ?seed ()) counts;
  }

let compare_scenarios ~scenarios ~app ?node_counts ?runs ?seed () =
  List.map (fun scenario -> sweep ~scenario ~app ?node_counts ?runs ?seed ()) scenarios

let relative_to ~baseline series =
  List.filter_map
    (fun p ->
      match List.find_opt (fun b -> b.nodes = p.nodes) baseline.points with
      | Some b when b.median_fom > 0.0 -> Some (p.nodes, p.median_fom /. b.median_fom)
      | Some _ | None -> None)
    series.points

let median_improvement ratio_lists =
  let all = List.concat ratio_lists |> List.map snd in
  if all = [] then 1.0 else Mk_engine.Stats.median_of all

let best_improvement ratio_lists =
  List.fold_left
    (fun acc (_, r) -> max acc r)
    neg_infinity
    (List.concat ratio_lists)
