type point = {
  nodes : int;
  median_fom : float;
  min_fom : float;
  max_fom : float;
  median_result : Driver.result;
}

type series = { scenario_label : string; points : point list }

let default_runs = 5

let summarise ~nodes results =
  let sorted =
    List.sort (fun (a : Driver.result) b -> compare a.Driver.fom b.Driver.fom) results
  in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let median_result = arr.(n / 2) in
  {
    nodes;
    median_fom = median_result.Driver.fom;
    min_fom = arr.(0).Driver.fom;
    max_fom = arr.(n - 1).Driver.fom;
    median_result;
  }

let point_traced ?pool ?faults ~trace ~scenario ~app ~nodes
    ?(runs = default_runs) ?(seed = 42) () =
  if runs <= 0 then invalid_arg "Experiment.point: runs must be positive";
  let label = scenario.Scenario.label in
  let outs =
    Mk_engine.Pool.parallel_map ?pool
      (fun i ->
        let seed = seed + (100 * i) in
        let r = Mk_obs.Recorder.make ~trace ~label ~nodes ~seed () in
        let result = Driver.run ?faults ~obs:r ~scenario ~app ~nodes ~seed () in
        (result, Mk_obs.Recorder.snapshot r))
      (List.init runs Fun.id)
  in
  (summarise ~nodes (List.map fst outs), List.map snd outs)

let point ?pool ?faults ?obs ~scenario ~app ~nodes ?(runs = default_runs)
    ?(seed = 42) () =
  match obs with
  | None ->
      (* No recorder is even allocated: the Driver keeps the Null
         sink installed — the pre-observability fast path. *)
      if runs <= 0 then invalid_arg "Experiment.point: runs must be positive";
      let results =
        Mk_engine.Pool.parallel_map ?pool
          (fun i ->
            Driver.run ?faults ~scenario ~app ~nodes ~seed:(seed + (100 * i)) ())
          (List.init runs Fun.id)
      in
      summarise ~nodes results
  | Some c ->
      let p, snaps =
        point_traced ?pool ?faults ~trace:(Mk_obs.Collect.trace_enabled c)
          ~scenario ~app ~nodes ~runs ~seed ()
      in
      (* Absorb in run order, after the fan-out barrier: each run
         recorded into its own recorder, so merging here — never in a
         worker — keeps parallel output bit-identical to sequential. *)
      List.iter (Mk_obs.Collect.add c) snaps;
      p

let sweep ?pool ?obs ~scenario ~app ?node_counts ?runs ?seed () =
  let counts = Option.value node_counts ~default:app.Mk_apps.App.node_counts in
  let points =
    match obs with
    | None ->
        Mk_engine.Pool.parallel_map ?pool
          (fun nodes -> point ?pool ~scenario ~app ~nodes ?runs ?seed ())
          counts
    | Some c ->
        let trace = Mk_obs.Collect.trace_enabled c in
        let outs =
          Mk_engine.Pool.parallel_map ?pool
            (fun nodes ->
              point_traced ?pool ~trace ~scenario ~app ~nodes ?runs ?seed ())
            counts
        in
        List.iter (fun (_, snaps) -> List.iter (Mk_obs.Collect.add c) snaps) outs;
        List.map fst outs
  in
  { scenario_label = scenario.Scenario.label; points }

let compare_scenarios ?pool ?obs ~scenarios ~app ?node_counts ?runs ?seed () =
  let counts = Option.value node_counts ~default:app.Mk_apps.App.node_counts in
  (* Fan every (scenario × node count) cell out as one job — a single
     flat batch keeps all workers busy even when scenarios and node
     counts are few — then regroup by scenario index, so the output
     is structurally identical to mapping [sweep] over [scenarios]. *)
  let cells =
    List.concat
      (List.mapi
         (fun i scenario -> List.map (fun nodes -> (i, scenario, nodes)) counts)
         scenarios)
  in
  let regroup cell_points =
    List.mapi
      (fun i (scenario : Scenario.t) ->
        {
          scenario_label = scenario.Scenario.label;
          points = List.filter_map (fun (j, p) -> if j = i then Some p else None) cell_points;
        })
      scenarios
  in
  match obs with
  | None ->
      regroup
        (Mk_engine.Pool.parallel_map ?pool
           (fun (i, scenario, nodes) ->
             (i, point ?pool ~scenario ~app ~nodes ?runs ?seed ()))
           cells)
  | Some c ->
      (* Workers never touch [c]: snapshots travel back with their
         cell and are absorbed here in cell input order, exactly the
         order a sequential execution would have produced. *)
      let trace = Mk_obs.Collect.trace_enabled c in
      let cell_out =
        Mk_engine.Pool.parallel_map ?pool
          (fun (i, scenario, nodes) ->
            (i, point_traced ?pool ~trace ~scenario ~app ~nodes ?runs ?seed ()))
          cells
      in
      List.iter
        (fun (_, (_, snaps)) -> List.iter (Mk_obs.Collect.add c) snaps)
        cell_out;
      regroup (List.map (fun (i, (p, _)) -> (i, p)) cell_out)

let relative_to ~baseline series =
  List.filter_map
    (fun p ->
      match List.find_opt (fun b -> b.nodes = p.nodes) baseline.points with
      | Some b when b.median_fom > 0.0 -> Some (p.nodes, p.median_fom /. b.median_fom)
      | Some _ | None -> None)
    series.points

let median_improvement ratio_lists =
  let all = List.concat ratio_lists |> List.map snd in
  if all = [] then 1.0 else Mk_engine.Stats.median_of all

let best_improvement ratio_lists =
  List.fold_left
    (fun acc (_, r) -> max acc r)
    neg_infinity
    (List.concat ratio_lists)

let suite ?pool ?obs ?(apps = Mk_apps.Registry.all) ?node_counts ?runs ?seed () =
  List.map
    (fun app ->
      ( app,
        compare_scenarios ?pool ?obs ~scenarios:Scenario.trio ~app ?node_counts
          ?runs ?seed () ))
    apps
