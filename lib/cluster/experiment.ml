type point = {
  nodes : int;
  median_fom : float;
  min_fom : float;
  max_fom : float;
  median_result : Driver.result;
}

type series = { scenario_label : string; points : point list }

type cell = {
  scenario : Scenario.t;
  app : Mk_apps.App.t;
  nodes : int;
  faults : Mk_fault.Plan.t option;
  runs : int;
  seed : int;
}

let default_runs = 5

let summarise ~nodes results =
  let sorted =
    List.sort (fun (a : Driver.result) b -> compare a.Driver.fom b.Driver.fom) results
  in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let median_result = arr.(n / 2) in
  {
    nodes;
    median_fom = median_result.Driver.fom;
    min_fom = arr.(0).Driver.fom;
    max_fom = arr.(n - 1).Driver.fom;
    median_result;
  }

(* Split a flat stream back into consecutive groups of the given
   sizes.  The fan-out below relies on [Pool.parallel_map] preserving
   input order, so group boundaries are positional. *)
let split_groups sizes xs =
  let rec take n rest acc =
    if n = 0 then (List.rev acc, rest)
    else
      match rest with
      | x :: tl -> take (n - 1) tl (x :: acc)
      | [] -> assert false
  in
  let rec go sizes rest acc =
    match sizes with
    | [] -> List.rev acc
    | n :: tl ->
        let mine, rest = take n rest [] in
        go tl rest (mine :: acc)
  in
  go sizes xs []

(* The one fan-out point of the experiment layer.  Every repetition of
   every cell becomes its own pool task — the finest grain there is —
   so the work-stealing executor load-balances across uneven cell
   costs (a 256-node HPCG run next to a 4-node sleep costs nothing to
   schedule around).  Jobs are laid out cell-major, repetition-minor;
   results come back in that same order ([parallel_map] reassembles
   positionally), so summarising per cell and absorbing snapshots in
   job order reproduce exactly what sequential execution would have
   done — which executor ran which repetition is invisible. *)
let points ?pool ?obs cells =
  List.iter
    (fun c ->
      if c.runs <= 0 then invalid_arg "Experiment.point: runs must be positive")
    cells;
  let jobs =
    List.concat_map (fun c -> List.init c.runs (fun i -> (c, i))) cells
  in
  let seed_of c i = c.seed + (100 * i) in
  let regroup results =
    List.map2
      (fun c rs -> summarise ~nodes:c.nodes rs)
      cells
      (split_groups (List.map (fun c -> c.runs) cells) results)
  in
  match obs with
  | None ->
      (* No recorder is even allocated: the Driver keeps the Null
         sink installed — the pre-observability fast path. *)
      regroup
        (Mk_engine.Pool.parallel_map ?pool
           (fun (c, i) ->
             Driver.run ?faults:c.faults ~scenario:c.scenario ~app:c.app
               ~nodes:c.nodes ~seed:(seed_of c i) ())
           jobs)
  | Some coll ->
      let trace = Mk_obs.Collect.trace_enabled coll in
      let outs =
        Mk_engine.Pool.parallel_map ?pool
          (fun (c, i) ->
            let seed = seed_of c i in
            let r =
              Mk_obs.Recorder.make ~trace ~label:c.scenario.Scenario.label
                ~nodes:c.nodes ~seed ()
            in
            let result =
              Driver.run ?faults:c.faults ~obs:r ~scenario:c.scenario
                ~app:c.app ~nodes:c.nodes ~seed ()
            in
            (result, Mk_obs.Recorder.snapshot r))
          jobs
      in
      (* Each run recorded into its own recorder; merging here — in
         job order, never in a worker — keeps parallel observed
         output bit-identical to sequential. *)
      List.iter (fun (_, s) -> Mk_obs.Collect.add coll s) outs;
      regroup (List.map fst outs)

let point ?pool ?faults ?obs ~scenario ~app ~nodes ?(runs = default_runs)
    ?(seed = 42) () =
  match points ?pool ?obs [ { scenario; app; nodes; faults; runs; seed } ] with
  | [ p ] -> p
  | _ -> assert false

let sweep ?pool ?obs ~scenario ~app ?node_counts ?(runs = default_runs)
    ?(seed = 42) () =
  let counts = Option.value node_counts ~default:app.Mk_apps.App.node_counts in
  let cells =
    List.map
      (fun nodes -> { scenario; app; nodes; faults = None; runs; seed })
      counts
  in
  { scenario_label = scenario.Scenario.label; points = points ?pool ?obs cells }

let compare_scenarios ?pool ?obs ~scenarios ~app ?node_counts
    ?(runs = default_runs) ?(seed = 42) () =
  let counts = Option.value node_counts ~default:app.Mk_apps.App.node_counts in
  let cells =
    List.concat_map
      (fun scenario ->
        List.map
          (fun nodes -> { scenario; app; nodes; faults = None; runs; seed })
          counts)
      scenarios
  in
  let k = List.length counts in
  List.map2
    (fun (scenario : Scenario.t) pts ->
      { scenario_label = scenario.Scenario.label; points = pts })
    scenarios
    (split_groups
       (List.map (fun _ -> k) scenarios)
       (points ?pool ?obs cells))

let relative_to ~baseline series =
  List.filter_map
    (fun (p : point) ->
      match List.find_opt (fun (b : point) -> b.nodes = p.nodes) baseline.points with
      | Some b when b.median_fom > 0.0 -> Some (p.nodes, p.median_fom /. b.median_fom)
      | Some _ | None -> None)
    series.points

let median_improvement ratio_lists =
  let all = List.concat ratio_lists |> List.map snd in
  if all = [] then 1.0 else Mk_engine.Stats.median_of all

let best_improvement ratio_lists =
  List.fold_left
    (fun acc (_, r) -> max acc r)
    neg_infinity
    (List.concat ratio_lists)

let suite ?pool ?obs ?(apps = Mk_apps.Registry.all) ?node_counts
    ?(runs = default_runs) ?(seed = 42) () =
  (* The whole evaluation — every (app × scenario × node count)
     repetition — as one flat batch.  This is where per-run tasks pay
     off most: apps differ in cost by orders of magnitude, and with
     per-app (or even per-cell) batches the suite's tail was whoever
     drew the expensive app.  Here idle executors steal individual
     runs from the expensive cells instead of waiting out the
     barrier. *)
  let counts_of app = Option.value node_counts ~default:app.Mk_apps.App.node_counts in
  let cells_of app =
    List.concat_map
      (fun scenario ->
        List.map
          (fun nodes -> { scenario; app; nodes; faults = None; runs; seed })
          (counts_of app))
      Scenario.trio
  in
  let per_app = List.map (fun app -> (app, cells_of app)) apps in
  let ps = points ?pool ?obs (List.concat_map snd per_app) in
  List.map2
    (fun (app, _) pts ->
      let k = List.length (counts_of app) in
      ( app,
        List.map2
          (fun (s : Scenario.t) points ->
            { scenario_label = s.Scenario.label; points })
          Scenario.trio
          (split_groups (List.map (fun _ -> k) Scenario.trio) pts) ))
    per_app
    (split_groups (List.map (fun (_, cs) -> List.length cs) per_app) ps)
