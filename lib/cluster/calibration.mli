(** The calibration audit: every cost constant the simulator's
    results rest on, with value and provenance, in one table.

    A reproduction's credibility lives in its constants.  This module
    aggregates them from the modules that own them (nothing is
    duplicated — each row reads the live value), so `bench micro`
    can print the exact calibration a result set was produced with,
    and tests can pin the relationships that matter (e.g. the
    MCDRAM:DDR4 bandwidth ratio) without freezing every number. *)

type row = {
  name : string;
  value : float;
  unit_ : string;
  provenance : string;  (** where the number comes from *)
}

val all : row list

val find : string -> row option

val table : unit -> string
(** Rendered table of every constant. *)

val mcdram_ddr_ratio : unit -> float
(** The load-bearing ratio behind Figure 5a. *)
