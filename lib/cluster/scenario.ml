type t = { label : string; make : unit -> Mk_kernel.Os.t }

let linux = { label = "Linux"; make = (fun () -> Mk_kernel.Linux_os.create ()) }

let mckernel =
  { label = "McKernel"; make = (fun () -> Mk_kernel.Mckernel.create ()) }

let mos = { label = "mOS"; make = (fun () -> Mk_kernel.Mos.create ()) }

let trio = [ mckernel; mos; linux ]

let mckernel_with options ~label =
  { label; make = (fun () -> Mk_kernel.Mckernel.create ~options ()) }

let mos_with options ~label =
  { label; make = (fun () -> Mk_kernel.Mos.create ~options ()) }

let linux_default_noise =
  {
    label = "Linux-noisy";
    make = (fun () -> Mk_kernel.Linux_os.create ~nohz_full:false ());
  }

let find name =
  let n = String.lowercase_ascii (String.trim name) in
  List.find_opt
    (fun t -> String.lowercase_ascii t.label = n)
    (trio @ [ linux_default_noise ])
