(** Experiment orchestration: repeated runs, medians, sweeps.

    The paper "ran most applications five times and show[s] the
    median … error bars indicating the maximum and minimum values"
    (Section III-C); [point] carries exactly that. *)

type point = {
  nodes : int;
  median_fom : float;
  min_fom : float;
  max_fom : float;
  median_result : Driver.result;  (** the run realising the median *)
}

type series = { scenario_label : string; points : point list }

val default_runs : int
(** 5, as in the paper. *)

val point :
  scenario:Scenario.t ->
  app:Mk_apps.App.t ->
  nodes:int ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  point

val sweep :
  scenario:Scenario.t ->
  app:Mk_apps.App.t ->
  ?node_counts:int list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  series
(** One curve: FOM against node count (defaults to the app's own
    sweep). *)

val compare_scenarios :
  scenarios:Scenario.t list ->
  app:Mk_apps.App.t ->
  ?node_counts:int list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  series list

val relative_to :
  baseline:series -> series -> (int * float) list
(** Per node count, this series' median FOM over the baseline's. *)

val median_improvement : (int * float) list list -> float
(** The paper's headline statistic: the median, across every
    (application × node count) pair, of the LWK-vs-Linux ratio. *)

val best_improvement : (int * float) list list -> float
