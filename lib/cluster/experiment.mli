(** Experiment orchestration: repeated runs, medians, sweeps.

    The paper "ran most applications five times and show[s] the
    median … error bars indicating the maximum and minimum values"
    (Section III-C); [point] carries exactly that.

    Every repetition and every (scenario × node count) cell is an
    independent simulation — its own {!Driver} run, its own seed —
    so the three orchestrators below fan their cells out through
    {!Mk_engine.Pool.parallel_map}.  Results are reassembled in input
    order, which makes parallel output bit-identical to sequential
    output (see [docs/PARALLELISM.md] for the contract, and the
    determinism test in [test/test_cluster.ml]).  With no [?pool] and
    no configured default pool everything runs sequentially, exactly
    as before. *)

type point = {
  nodes : int;
  median_fom : float;
  min_fom : float;
  max_fom : float;
  median_result : Driver.result;  (** the run realising the median *)
}

type series = { scenario_label : string; points : point list }

val default_runs : int
(** 5, as in the paper. *)

val point :
  ?pool:Mk_engine.Pool.t ->
  ?faults:Mk_fault.Plan.t ->
  ?obs:Mk_obs.Collect.t ->
  scenario:Scenario.t ->
  app:Mk_apps.App.t ->
  nodes:int ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  point
(** One cell: [runs] repetitions (seeds [seed], [seed + 100], …)
    fanned out across the pool, reduced to median/min/max.  [faults]
    applies the same fault plan to every repetition, so the medians
    compare a fixed fault timeline across kernels and seeds.

    [obs] collects metrics (and, if it was created with [~trace:true],
    trace events) from every repetition.  Each run records into its
    own {!Mk_obs.Recorder}; snapshots are absorbed into the collector
    sequentially in run order after the fan-out returns, so observed
    output is bit-identical between sequential and [-j N] execution. *)

val point_traced :
  ?pool:Mk_engine.Pool.t ->
  ?faults:Mk_fault.Plan.t ->
  trace:bool ->
  scenario:Scenario.t ->
  app:Mk_apps.App.t ->
  nodes:int ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  point * Mk_obs.Recorder.snapshot list
(** As {!point} but returning the per-run snapshots instead of
    absorbing them: shared-state-free, hence safe to call from inside
    a {!Mk_engine.Pool.parallel_map} worker (as {!Degradation} does).
    The caller is responsible for absorbing the snapshots — in input
    order, outside any worker. *)

val sweep :
  ?pool:Mk_engine.Pool.t ->
  ?obs:Mk_obs.Collect.t ->
  scenario:Scenario.t ->
  app:Mk_apps.App.t ->
  ?node_counts:int list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  series
(** One curve: FOM against node count (defaults to the app's own
    sweep). *)

val compare_scenarios :
  ?pool:Mk_engine.Pool.t ->
  ?obs:Mk_obs.Collect.t ->
  scenarios:Scenario.t list ->
  app:Mk_apps.App.t ->
  ?node_counts:int list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  series list
(** The Figure-4 shape: one series per scenario.  All
    (scenario × node count) cells are submitted as a single flat
    batch so the pool stays busy across scenario boundaries. *)

val relative_to :
  baseline:series -> series -> (int * float) list
(** Per node count, this series' median FOM over the baseline's. *)

val median_improvement : (int * float) list list -> float
(** The paper's headline statistic: the median, across every
    (application × node count) pair, of the LWK-vs-Linux ratio. *)

val best_improvement : (int * float) list list -> float

val suite :
  ?pool:Mk_engine.Pool.t ->
  ?obs:Mk_obs.Collect.t ->
  ?apps:Mk_apps.App.t list ->
  ?node_counts:int list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  (Mk_apps.App.t * series list) list
(** The paper's full evaluation: every registered application (or
    [apps]) against {!Scenario.trio} at its own node counts (or
    [node_counts] for all of them — the bench perf smoke gate uses
    this to shrink the suite to a few cells).  The input to the
    {!Report} suite views and the [simos suite] command. *)
