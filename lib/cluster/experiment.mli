(** Experiment orchestration: repeated runs, medians, sweeps.

    The paper "ran most applications five times and show[s] the
    median … error bars indicating the maximum and minimum values"
    (Section III-C); [point] carries exactly that.

    Every repetition of every (scenario × node count) cell is an
    independent simulation — its own {!Driver} run, its own seed — so
    the orchestrators below flatten their cells into {e per-run}
    tasks and fan them out through one {!Mk_engine.Pool.parallel_map}
    call ({!points}): the work-stealing pool load-balances individual
    runs across uneven cell costs, with no barrier between cells,
    scenarios or apps.  Results are reassembled in input order, which
    makes parallel output bit-identical to sequential output (see
    [docs/PARALLELISM.md] for the contract, and the determinism test
    in [test/test_cluster.ml]).  With no [?pool] and no configured
    default pool everything runs sequentially, exactly as before. *)

type point = {
  nodes : int;
  median_fom : float;
  min_fom : float;
  max_fom : float;
  median_result : Driver.result;  (** the run realising the median *)
}

type series = { scenario_label : string; points : point list }

val default_runs : int
(** 5, as in the paper. *)

val point :
  ?pool:Mk_engine.Pool.t ->
  ?faults:Mk_fault.Plan.t ->
  ?obs:Mk_obs.Collect.t ->
  scenario:Scenario.t ->
  app:Mk_apps.App.t ->
  nodes:int ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  point
(** One cell: [runs] repetitions (seeds [seed], [seed + 100], …)
    fanned out across the pool, reduced to median/min/max.  [faults]
    applies the same fault plan to every repetition, so the medians
    compare a fixed fault timeline across kernels and seeds.

    [obs] collects metrics (and, if it was created with [~trace:true],
    trace events) from every repetition.  Each run records into its
    own {!Mk_obs.Recorder}; snapshots are absorbed into the collector
    sequentially in run order after the fan-out returns, so observed
    output is bit-identical between sequential and [-j N] execution. *)

type cell = {
  scenario : Scenario.t;
  app : Mk_apps.App.t;
  nodes : int;
  faults : Mk_fault.Plan.t option;
  runs : int;
  seed : int;
}
(** One aggregation unit of {!points}: [runs] repetitions of the same
    configuration, reduced to a single {!point}. *)

val points :
  ?pool:Mk_engine.Pool.t ->
  ?obs:Mk_obs.Collect.t ->
  ?progress:(completed:int -> total:int -> unit) ->
  cell list ->
  point list
(** The experiment layer's one fan-out primitive: every repetition of
    every cell becomes its own pool task (cell-major,
    repetition-minor), so the work-stealing pool balances individual
    runs across cells of wildly different cost.  Returns one point
    per cell, in cell order.  {!point}, {!sweep},
    {!compare_scenarios}, {!suite} and {!Degradation} all reduce to a
    single call of this; use it directly for custom cell batches
    (mixed apps, per-cell fault plans) that should share one flat
    schedule.  [progress] fires after each completed repetition, on
    whichever domain ran it — it must be thread-safe, and it must not
    influence results (interactive heartbeats only; see
    [simos suite]).  Raises [Invalid_argument] if any cell has
    [runs <= 0]. *)

val sweep :
  ?pool:Mk_engine.Pool.t ->
  ?obs:Mk_obs.Collect.t ->
  ?progress:(completed:int -> total:int -> unit) ->
  scenario:Scenario.t ->
  app:Mk_apps.App.t ->
  ?node_counts:int list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  series
(** One curve: FOM against node count (defaults to the app's own
    sweep). *)

val compare_scenarios :
  ?pool:Mk_engine.Pool.t ->
  ?obs:Mk_obs.Collect.t ->
  ?progress:(completed:int -> total:int -> unit) ->
  scenarios:Scenario.t list ->
  app:Mk_apps.App.t ->
  ?node_counts:int list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  series list
(** The Figure-4 shape: one series per scenario.  Every repetition of
    every (scenario × node count) cell is submitted as one flat
    {!points} batch, so the pool stays busy across scenario
    boundaries. *)

val relative_to :
  baseline:series -> series -> (int * float) list
(** Per node count, this series' median FOM over the baseline's. *)

val median_improvement : (int * float) list list -> float
(** The paper's headline statistic: the median, across every
    (application × node count) pair, of the LWK-vs-Linux ratio. *)

val best_improvement : (int * float) list list -> float

val suite :
  ?pool:Mk_engine.Pool.t ->
  ?obs:Mk_obs.Collect.t ->
  ?progress:(completed:int -> total:int -> unit) ->
  ?apps:Mk_apps.App.t list ->
  ?node_counts:int list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  (Mk_apps.App.t * series list) list
(** The paper's full evaluation: every registered application (or
    [apps]) against {!Scenario.trio} at its own node counts (or
    [node_counts] for all of them — the bench perf smoke gate uses
    this to shrink the suite to a few cells).  The input to the
    {!Report} suite views and the [simos suite] command. *)

(** {1 Cell builders}

    The cell layouts behind {!sweep}, {!compare_scenarios} and
    {!suite}, exposed so the supervised/journaled path below fans out
    over {e exactly} the cells a fresh orchestrator call would
    compute — the resume-identity contract depends on it. *)

val sweep_cells :
  scenario:Scenario.t ->
  app:Mk_apps.App.t ->
  ?node_counts:int list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  cell list

val compare_cells :
  scenarios:Scenario.t list ->
  app:Mk_apps.App.t ->
  ?node_counts:int list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  cell list
(** Scenario-major, node-count-minor — the {!compare_scenarios} (and,
    per app, {!suite}) layout. *)

val suite_cells :
  ?apps:Mk_apps.App.t list ->
  ?node_counts:int list ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  (Mk_apps.App.t * cell list) list

(** {1 Supervised, journaled execution}

    The crash-safe counterpart of {!points}: each cell runs under a
    {!Supervise.policy} (retry-with-backoff on transient failure,
    work-unit budget, quarantine instead of pool poisoning) and,
    given a {!Mk_engine.Journal}, completed cells are recorded as
    they finish and replayed on resume.  See [docs/ROBUSTNESS.md]. *)

val cell_salt : string
(** Code-version salt folded into {!cell_key}.  Bump on any change to
    the meaning of a cell (seed schedule, driver arithmetic, summary
    statistics) so stale journals miss instead of replaying wrong
    numbers. *)

val cell_fingerprint : cell -> string
(** Canonical JSON of everything a cell's result depends on: the
    salt, scenario label, app name, nodes, runs, seed and the fault
    plan. *)

val cell_key : cell -> string
(** Hex digest of {!cell_fingerprint} — the journal key. *)

val cell_label : cell -> string
(** Human-readable cell identity, stored next to the key in journal
    entries. *)

val cell_units : cell -> int
(** Static work-unit cost ([runs x nodes x sim_iterations]) checked
    against {!Supervise.policy}[.budget] — deterministic, no clocks. *)

val point_to_json : point -> Mk_engine.Json.t

val point_of_json : Mk_engine.Json.t -> (point, string) result
(** Exact inverse of {!point_to_json} (floats round-trip bit-exactly
    through the deterministic {!Mk_engine.Json} rendering); [Error]
    on malformed input, which the replay path treats as a journal
    miss. *)

type outcome =
  | Completed of point
  | Quarantined of { error : string; attempts : int }

type supervised = {
  outcomes : (cell * outcome) list;  (** one per input cell, in order *)
  computed : int;  (** cells actually simulated this run *)
  replayed : int;  (** cells served from the journal *)
  retries : int;  (** extra attempts across all cells *)
  quarantined : int;  (** cells that exhausted their attempts *)
  backoff_ns : int;  (** simulated backoff accumulated by retries *)
}

val flight_path : dir:string -> key:string -> string
(** Where {!supervised_points} drops a quarantined cell's black box:
    [dir/flight-<key>.json]. *)

val supervised_points :
  ?pool:Mk_engine.Pool.t ->
  ?policy:Supervise.policy ->
  ?journal:Mk_engine.Journal.t ->
  ?chaos:(cell:int -> attempt:int -> unit) ->
  ?flight_dir:string ->
  cell list ->
  supervised
(** Like {!points}, but each {e cell} is one supervised task (its
    repetitions live and die together): a raising cell is retried
    per the policy and finally quarantined — sibling cells always
    complete.  Completed cells are recorded into [journal] as they
    finish (worker-side, so a killed run keeps them) and replayed
    from it on resume; a replayed cell is bit-identical to a
    recomputed one.  [chaos] injects a fault before attempt
    [attempt] of cell [cell] (input index) — the {!Chaos} harness
    hook.  [flight_dir] arms a per-cell {!Mk_obs.Flight} ring for
    every computed cell; when a cell is quarantined its last
    {!Mk_obs.Flight.default_capacity} events are dumped crash-safely
    to {!flight_path} (submitter-side, after the barrier), so the
    quarantine report is never the only evidence.  Emits
    [supervise/journal_hits,retries,quarantines] counters through
    {!Mk_obs.Hook} after the barrier.  Raises [Invalid_argument] if
    any cell has [runs <= 0]. *)

val series_of_supervised : (cell * outcome) list -> series list
(** Regroup supervised outcomes into report series: one series per
    distinct scenario label in first-appearance order, quarantined
    cells dropped (the degradation report names them instead). *)

val suite_of_supervised :
  (Mk_apps.App.t * cell list) list ->
  supervised ->
  (Mk_apps.App.t * series list) list
(** Regroup a supervised run over [suite_cells] blocks back into the
    {!suite} result shape. *)

(** {1 Sharded-DES validation}

    The [--des-shards] tier of [simos suite]: for each scenario, run
    the event-driven allreduce loop once on the single serial heap
    and once sharded ({!Cluster_des.sharded_allreduce_loop}), so the
    byte-identity invariant is checked against the exact OS noise
    profiles the suite just measured. *)

type des_check = {
  des_scenario : string;
  des_nodes : int;
  des_shards : int;
  serial : Cluster_des.result;
  sharded : Cluster_des.result;
  des_stats : Cluster_des.sharding;
}

val des_identical : des_check -> bool
(** Completion time {e and} message count agree exactly. *)

val des_checks :
  ?pool:Mk_engine.Pool.t ->
  ?scenarios:Scenario.t list ->
  nodes:int ->
  shards:int ->
  ?seed:int ->
  unit ->
  des_check list
(** One {!des_check} per scenario (default {!Scenario.trio}), at the
    DES cross-validation workload (64 ranks per node, 2 ms windows,
    10 iterations, 8-byte reductions).
    @raise Invalid_argument when [shards <= 0]. *)

val des_profiles :
  ?pool:Mk_engine.Pool.t ->
  ?scenarios:Scenario.t list ->
  ?bucket_ns:Mk_engine.Units.time ->
  nodes:int ->
  shards:int ->
  ?iterations:int ->
  ?seed:int ->
  unit ->
  (string * Mk_obs.Profile.t) list
(** The [simos profile] tier: the {!des_checks} workload run sharded
    with an {!Mk_obs.Profile} observing every conservative epoch — one
    labelled self-profile per scenario.  Profiles fold only
    protocol-determined {!Mk_engine.Shard.sample}s, so the result (and
    its JSON) is byte-identical for every pool size.
    @raise Invalid_argument when [shards <= 0] or [iterations <= 0]. *)
