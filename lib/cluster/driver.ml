open Mk_engine

type result = {
  nodes : int;
  total_time : Units.time;
  solve_time : Units.time;
  setup_time : Units.time;
  first_iteration : Units.time;
  steady_iteration : Units.time;
  fom : float;
  mcdram_fraction : float;
  faults : int;
  offloads_per_iteration : int;
  failures : int;
  fault_events : int;
  dead_nodes : int;
  recoveries : int;
}

let max_array a = Array.fold_left max min_int a

(* ------------------------------------------------------------------ *)
(* Per-node setup on the representative node                           *)

let setup_memory node (app : Mk_apps.App.t) ~nodes =
  let os = Mk_kernel.Node.os node in
  let ranks = Mk_kernel.Node.ranks node in
  let linux_ddr =
    app.Mk_apps.App.linux_ddr_only && os.Mk_kernel.Os.kind = Mk_kernel.Os.Linux
  in
  (* MCDRAM sharing under pressure.  Demand paging (Linux first-touch
     and McKernel's fallback) fills MCDRAM in proportion to how fast
     each rank touches it — i.e. in proportion to footprint — whereas
     mOS has already divided it into equal per-rank shares at job
     launch (its strategy carries that quota).  Section IV credits
     McKernel's CCS-QCD edge to exactly this difference. *)
  let footprints = Scratch.int_array ~tag:"driver.footprints" ~len:ranks ~init:0 in
  let demands = Scratch.int_array ~tag:"driver.demands" ~len:ranks ~init:0 in
  for r = 0 to ranks - 1 do
    footprints.(r) <- app.Mk_apps.App.footprint_per_rank ~nodes ~local_rank:r;
    demands.(r) <- footprints.(r) + app.Mk_apps.App.heap_per_rank
  done;
  let total_footprint = Array.fold_left ( + ) 0 demands in
  let mcdram_free =
    Mk_mem.Phys.free_bytes_of_kind os.Mk_kernel.Os.phys Mk_hw.Memory_kind.Mcdram
  in
  if
    (not linux_ddr)
    && total_footprint > mcdram_free
    && os.Mk_kernel.Os.kind <> Mk_kernel.Os.Mos_kind
  then begin
    (* Linux's single-domain preferred policy confines each rank's
       MCDRAM to its own quadrant, so first-touch shares that domain
       among the quadrant's ranks; the LWKs' MCDRAM-first policy
       draws on the whole package. *)
    let numa = Mk_hw.Topology.numa os.Mk_kernel.Os.topo in
    let quadrant_ranks = Hashtbl.create 8 in
    for rank = 0 to ranks - 1 do
      let home = (Mk_kernel.Node.rank_state node rank).Mk_kernel.Node.home in
      Hashtbl.replace quadrant_ranks home
        (1 + Option.value (Hashtbl.find_opt quadrant_ranks home) ~default:0)
    done;
    for rank = 0 to ranks - 1 do
      let share =
        int_of_float
          (float_of_int demands.(rank)
          *. float_of_int mcdram_free /. float_of_int total_footprint)
      in
      let share =
        if os.Mk_kernel.Os.kind <> Mk_kernel.Os.Linux then share
        else begin
          let home = (Mk_kernel.Node.rank_state node rank).Mk_kernel.Node.home in
          let local_cap =
            match
              Mk_hw.Numa.nearest numa ~from:home ~kind:Mk_hw.Memory_kind.Mcdram
            with
            | Some d -> Mk_hw.Numa.capacity numa d
            | None -> 0
          in
          let peers =
            max 1 (Option.value (Hashtbl.find_opt quadrant_ranks home) ~default:1)
          in
          min share (local_cap / peers)
        end
      in
      Mk_mem.Address_space.set_mcdram_quota
        (Mk_kernel.Node.address_space node ~rank)
        (Some share)
    done
  end;
  let worst = ref 0 in
  for rank = 0 to ranks - 1 do
    let st = Mk_kernel.Node.rank_state node rank in
    let asp = Mk_kernel.Node.address_space node ~rank in
    let bytes = footprints.(rank) in
    let policy =
      (* The paper ran this workload's Linux baseline out of DDR4
         (Section III-B): SNC-4 prevents the spill policy. *)
      if app.Mk_apps.App.linux_ddr_only && os.Mk_kernel.Os.kind = Mk_kernel.Os.Linux
      then Some (Mk_mem.Policy.Ddr_only { home = st.Mk_kernel.Node.home })
      else None
    in
    let cost =
      match Mk_mem.Address_space.mmap asp ~bytes ~backing:Mk_mem.Vma.Anonymous ?policy () with
      | Ok (addr, c) ->
          c + Mk_mem.Address_space.touch asp ~addr ~bytes ~concurrency:1
      | Error `Enomem -> 0
    in
    if cost > !worst then worst := cost
  done;
  !worst

(* ------------------------------------------------------------------ *)
(* Compute-phase cost on the representative node (per iteration)       *)

let stream_cost node ~bytes =
  let ranks = Mk_kernel.Node.ranks node in
  let worst = ref 0 in
  for rank = 0 to ranks - 1 do
    let asp = Mk_kernel.Node.address_space node ~rank in
    let placement =
      Mk_hw.Bandwidth.mixed
        ~mcdram_fraction:(Mk_mem.Address_space.mcdram_fraction asp)
    in
    let base = Mk_hw.Bandwidth.stream_time ~bytes placement ~ranks in
    let t =
      int_of_float
        (float_of_int base *. Mk_mem.Address_space.tlb_factor asp)
    in
    if t > !worst then worst := t
  done;
  !worst

let compute_total node phases =
  List.fold_left
    (fun acc phase ->
      match phase with
      | Mk_apps.App.Stream bytes -> acc + stream_cost node ~bytes
      | Mk_apps.App.Cpu t -> acc + t
      | Mk_apps.App.Allreduce _ | Mk_apps.App.Halo _ | Mk_apps.App.Yields _ -> acc)
    0 phases

(* ------------------------------------------------------------------ *)
(* System-call pricing                                                 *)

let syscall_cost os sysno =
  match Mk_kernel.Os.syscall_time os ~core:10 sysno with
  | Ok t -> t
  | Error `Enosys -> 0

(* NIC control-path handling for a halo phase: on Linux every rank
   executes its own control syscalls in parallel; on an LWK they all
   offload and the few Linux-side cores become a service bottleneck —
   the critical path is the larger of per-rank serial latency and the
   queueing delay at the proxy/migration target cores. *)
let halo_control_cost os ~ranks_per_node ~msgs_per_node ~controls =
  if controls = [] || msgs_per_node = 0 then 0
  else begin
    let per_msg = List.fold_left (fun acc s -> acc + syscall_cost os s) 0 controls in
    let per_rank_msgs = (msgs_per_node + ranks_per_node - 1) / ranks_per_node in
    let serial = per_rank_msgs * per_msg in
    match os.Mk_kernel.Os.offload with
    | None -> serial
    | Some _ ->
        let service =
          List.fold_left
            (fun acc s -> acc + Mk_syscall.Cost.local s)
            0 controls
        in
        let linux_cores = max 1 (List.length os.Mk_kernel.Os.os_cores) in
        let queue = msgs_per_node * service / linux_cores in
        Mk_obs.Hook.gauge ~subsystem:"ikc" ~name:"proxy_queue_ns" queue;
        max serial queue
  end

(* ------------------------------------------------------------------ *)
(* Containment semantics (docs/FAULTS.md)                              *)

(* Hung Linux daemons on an LWK node slow the offload *service* —
   the Linux cores that execute proxied/migrated control syscalls are
   busy — but never the LWK compute cores. *)
let daemon_service_factor = 4.0

(* On Linux itself the daemons have nowhere to hide: they spill onto
   the application cores and inflate every compute window. *)
let daemon_spill_factor = 1.35

(* Fault-aware version of [halo_control_cost] for one node.  The
   healthy arithmetic is preserved exactly when the node carries no
   active fault; each fault adds to the side of the serial/queue race
   it physically lives on. *)
let halo_control_cost_faulty os st ~node ~ranks_per_node ~msgs_per_node
    ~controls =
  if controls = [] || msgs_per_node = 0 then 0
  else begin
    let nic_x = Mk_fault.State.nic_extra st node in
    let per_msg =
      List.fold_left (fun acc s -> acc + syscall_cost os s) 0 controls + nic_x
    in
    let per_rank_msgs = (msgs_per_node + ranks_per_node - 1) / ranks_per_node in
    let serial = per_rank_msgs * per_msg in
    match os.Mk_kernel.Os.offload with
    | None -> serial
    | Some off ->
        let mech = Mk_ikc.Offload.mechanism off in
        let proxy_stalled =
          match mech with
          | Mk_ikc.Offload.Proxy _ -> Mk_fault.State.proxy_down st node
          | Mk_ikc.Offload.Migration _ -> false
        in
        let target_lost =
          match mech with
          | Mk_ikc.Offload.Migration _ -> Mk_fault.State.thread_lost st node
          | Mk_ikc.Offload.Proxy _ -> false
        in
        let service =
          let s =
            List.fold_left (fun acc s -> acc + Mk_syscall.Cost.local s) 0 controls
          in
          if Mk_fault.State.daemon_hung st node then
            int_of_float (Float.round (float_of_int s *. daemon_service_factor))
          else s
        in
        let per_offload_extra =
          (if proxy_stalled then
             (* Each offloaded request this iteration stalls for one
                IKC timeout before the retry lands on the respawned
                proxy. *)
             os.Mk_kernel.Os.resilience.Mk_fault.Retry.timeout
           else 0)
          + (if target_lost then Mk_ikc.Offload.failover_cost mech else 0)
          + nic_x
        in
        let linux_cores =
          max 1
            (List.length os.Mk_kernel.Os.os_cores - if target_lost then 1 else 0)
        in
        let queue = msgs_per_node * (service + per_offload_extra) / linux_cores in
        Mk_obs.Hook.gauge ~subsystem:"ikc" ~name:"proxy_queue_ns" queue;
        max serial queue
  end

(* ------------------------------------------------------------------ *)
(* Main run                                                            *)

let with_obs obs f = match obs with None -> () | Some r -> f r

let run_body ?eager_threshold ?faults ~obs ~(scenario : Scenario.t)
    ~(app : Mk_apps.App.t) ~nodes ~seed () =
  if nodes <= 0 then invalid_arg "Driver.run: nodes must be positive";
  (* Attribution cursor: Tier-1 pricing (memory, heap traces, IKC,
     scheduling) executes on the representative node and is charged
     to node 0. *)
  with_obs obs (fun r -> Mk_obs.Recorder.set_node r 0);
  let fstate =
    match faults with
    | None -> None
    | Some plan -> Some (Mk_fault.State.make ~plan ~nodes)
  in
  let os = scenario.Scenario.make () in
  let ranks_per_node = app.Mk_apps.App.ranks_per_node in
  let node =
    Mk_kernel.Node.boot ~os ~ranks:ranks_per_node
      ~threads_per_rank:app.Mk_apps.App.threads_per_rank ~seed
  in
  (* Every busy hardware thread is a straggler candidate: a detour on
     any OpenMP worker delays its whole rank at the next barrier. *)
  let stragglers = ranks_per_node * app.Mk_apps.App.threads_per_rank in
  let root_rng = Rng.create (seed * 7919) in
  let node_rngs = Array.init nodes (fun n -> Rng.split root_rng (1000 + n)) in
  let nic_cfg = Mk_fabric.Nic.make ?eager_threshold () in
  let fabric = Mk_fabric.Fabric.make ~nic:nic_cfg ~nodes () in
  let nic = Mk_fabric.Fabric.nic fabric in
  let profile = os.Mk_kernel.Os.app_noise in

  (* --- Setup ------------------------------------------------------ *)
  let setup_mem = setup_memory node app ~nodes in
  let shm_costs =
    Mk_kernel.Node.shm_window node ~bytes_per_rank:app.Mk_apps.App.shm_bytes_per_rank
  in
  let shm_setup = Array.fold_left max 0 shm_costs in
  (* Heap traces replay on every rank: each process owns its heap, so
     the node pays the cost of the slowest rank. *)
  let replay_trace ops =
    let worst = ref 0 in
    for rank = 0 to ranks_per_node - 1 do
      let c = Mk_kernel.Node.run_ops node ~rank ops in
      if c > !worst then worst := c
    done;
    !worst
  in
  let trace_setup =
    match app.Mk_apps.App.trace with
    | None -> 0
    | Some trace -> replay_trace (trace ~nodes ~iteration:(-1))
  in
  let setup_time = setup_mem + shm_setup + trace_setup in
  with_obs obs (fun r ->
      Mk_obs.Recorder.span r ~ts:0 ~dur:setup_time ~node:0 ~tid:0 ~cat:"phase"
        ~name:"setup" ());
  (* Flight mirrors are unconditional: the supervised path runs with
     obs = None (journal mode refuses --trace/--metrics), which is
     exactly when the black box matters.  Each is a no-op DLS read
     when no ring is armed. *)
  Mk_obs.Flight.record_span ~ts:0 ~dur:setup_time ~node:0 ~tid:0 ~cat:"phase"
    ~name:"setup" ();

  (* --- Static per-iteration pieces --------------------------------- *)
  let phases = app.Mk_apps.App.iteration ~nodes in
  let yields =
    List.fold_left
      (fun acc -> function Mk_apps.App.Yields n -> acc + n | _ -> acc)
      0 phases
  in
  let yield_cost = yields * syscall_cost os Mk_syscall.Sysno.Sched_yield in
  (* Sync points: each allreduce and each halo absorbs stragglers. *)
  let syncs =
    List.concat_map
      (function
        | Mk_apps.App.Allreduce { bytes; count } ->
            List.init count (fun _ -> `Allreduce bytes)
        | Mk_apps.App.Halo { bytes; neighbors; msgs_per_node } ->
            [ `Halo (bytes, neighbors, msgs_per_node) ]
        | Mk_apps.App.Stream _ | Mk_apps.App.Cpu _ | Mk_apps.App.Yields _ -> [])
      phases
  in
  let nsync = max 1 (List.length syncs) in
  let env =
    {
      Mk_mpi.Collective.fabric;
      syscall_cost = (fun s -> syscall_cost os s);
      intra_ranks = ranks_per_node;
    }
  in
  let halo_env =
    (* Control syscalls for halos are charged explicitly (queueing
       model); the tree edges see only wire time. *)
    { env with Mk_mpi.Collective.syscall_cost = (fun _ -> 0) }
  in
  (* Fault plumbing.  Everything below is gated on [fstate]: with no
     plan the healthy code path runs the exact pre-fault arithmetic. *)
  let mpi_policy = Mk_fault.Retry.default_mpi in
  let renvs =
    match fstate with
    | None -> None
    | Some st ->
        let extra_edge ~src ~dst =
          (* A flapping link drops sends; each failed attempt costs a
             timeout plus backoff under the MPI retry policy. *)
          let f =
            Mk_fault.State.flap_failures st src
            + Mk_fault.State.flap_failures st dst
          in
          if f = 0 then 0 else Mk_fault.Retry.retry_time mpi_policy ~failures:f
        in
        let alive = Mk_fault.State.alive_array st in
        Some
          ( Mk_mpi.Resilient.make ~base:env ~alive ~extra_edge,
            Mk_mpi.Resilient.make ~base:halo_env ~alive ~extra_edge )
  in
  let mechanism = Option.map Mk_ikc.Offload.mechanism os.Mk_kernel.Os.offload in
  let has_proxy =
    match mechanism with Some (Mk_ikc.Offload.Proxy _) -> true | _ -> false
  in
  let node_alive =
    match fstate with
    | None -> fun _ -> true
    | Some st -> fun n -> Mk_fault.State.is_alive st n
  in
  let node_factor =
    match fstate with
    | None -> fun _ -> 1.0
    | Some st ->
        fun n ->
          let f = Mk_fault.State.compute_factor st n in
          if
            os.Mk_kernel.Os.kind = Mk_kernel.Os.Linux
            && Mk_fault.State.daemon_hung st n
          then f *. daemon_spill_factor
          else f
  in
  (* Per-node cost scaling; the [f = 1.0] fast path keeps the healthy
     arithmetic purely integral. *)
  let scaled n t =
    let f = node_factor n in
    if f = 1.0 then t else int_of_float (Float.round (float_of_int t *. f))
  in
  let max_alive a =
    match fstate with
    | None -> max_array a
    | Some st ->
        let m = ref min_int in
        Array.iteri (fun i c -> if Mk_fault.State.is_alive st i then m := max !m c) a;
        if !m = min_int then max_array a else !m
  in
  let recoveries = ref 0 in
  let offloads_per_iteration =
    if Mk_kernel.Os.is_lwk os then
      List.fold_left
        (fun acc -> function
          | `Halo (bytes, _, msgs) ->
              acc + (msgs * List.length (Mk_fabric.Nic.control_syscalls nic ~bytes))
          | `Allreduce _ -> acc)
        0 syncs
    else 0
  in

  (* --- Iterations --------------------------------------------------- *)
  let clocks = Scratch.int_array ~tag:"driver.clocks" ~len:nodes ~init:setup_time in
  let sim_iters = max 2 (min app.Mk_apps.App.sim_iterations app.Mk_apps.App.iterations) in
  let iter_durations =
    Scratch.int_array ~tag:"driver.iter_durations" ~len:sim_iters ~init:0
  in
  (* Per-node iteration-start clocks, kept only when tracing: spans
     need a start timestamp per node. *)
  let iter_snap =
    match obs with
    | Some r when Mk_obs.Recorder.tracing r -> Some (Array.make nodes 0)
    | _ -> None
  in
  let prev_sync = ref (Units.us) in
  for iter = 0 to sim_iters - 1 do
    let start = max_alive clocks in
    with_obs obs (fun r -> Mk_obs.Recorder.set_node r 0);
    (match iter_snap with
    | Some a -> Array.blit clocks 0 a 0 nodes
    | None -> ());
    (* Unfold the fault plan for this iteration. *)
    (match fstate with
    | None -> ()
    | Some st ->
        Mk_fault.State.begin_iteration st ~iteration:iter;
        for n = 0 to nodes - 1 do
          let f = Mk_fault.State.link_factor st n in
          if f > 1.0 then Mk_fabric.Fabric.set_link_factor fabric ~node:n ~factor:f
        done;
        (* Fresh crashes: every survivor times out on the dead peer
           (retry until give-up under the MPI policy) before the
           collective tree is rebuilt without it. *)
        (match Mk_fault.State.take_newly_crashed st with
        | [] -> ()
        | crashed ->
            recoveries := !recoveries + List.length crashed;
            with_obs obs (fun r ->
                List.iter
                  (fun n ->
                    Mk_obs.Recorder.instant r ~ts:start ~node:n ~tid:0
                      ~cat:"fault" ~name:"node-crash" ())
                  crashed);
            List.iter
              (fun n ->
                Mk_obs.Flight.record_instant ~ts:start ~node:n ~cat:"fault"
                  ~name:"node-crash" ())
              crashed;
            if nodes > 1 then begin
              let detect =
                List.length crashed * Mk_fault.Retry.give_up_time mpi_policy
              in
              Array.iteri
                (fun n c ->
                  if Mk_fault.State.is_alive st n then clocks.(n) <- c + detect)
                clocks
            end);
        (* Proxy crash (McKernel only): the node's offloaded requests
           time out, back off and give up, then the proxy is
           respawned.  A node with no offload traffic this iteration
           never notices — the crash costs nothing (MiniFE at 256
           nodes: halos below the eager threshold, zero control
           syscalls). *)
        if has_proxy && offloads_per_iteration > 0 then
          Array.iteri
            (fun n c ->
              if Mk_fault.State.is_alive st n && Mk_fault.State.proxy_down st n
              then begin
                recoveries := !recoveries + 1;
                with_obs obs (fun r ->
                    Mk_obs.Recorder.instant r ~ts:c ~node:n ~tid:0 ~cat:"fault"
                      ~name:"proxy-respawn" ());
                Mk_obs.Flight.record_instant ~ts:c ~node:n ~cat:"fault"
                  ~name:"proxy-respawn" ();
                clocks.(n) <-
                  c
                  + Mk_fault.Retry.give_up_time os.Mk_kernel.Os.resilience
                  + Mk_ikc.Offload.respawn_cost
                      (Option.get mechanism)
              end)
            clocks);
    (* Placement and page-size mix can change between iterations
       (cold shared-memory faults, heap growth), so compute costs are
       re-priced each round. *)
    let compute = compute_total node phases in
    let window = compute / nsync in
    (* Cold shared-memory faults: without premap, the first exchange
       populates the windows with every rank contending. *)
    if iter = 0 && not os.Mk_kernel.Os.options.Mk_kernel.Os.mpol_shm_premap then begin
      let worst = ref 0 in
      for rank = 0 to ranks_per_node - 1 do
        let asp = Mk_kernel.Node.address_space node ~rank in
        let c = Mk_mem.Address_space.touch_all asp ~concurrency:ranks_per_node in
        if c > !worst then worst := c
      done;
      Array.iteri
        (fun n c -> if node_alive n then clocks.(n) <- c + scaled n !worst)
        clocks
    end;
    (* Heap churn replay (Lulesh): every node pays the same cost, but
       the cost differs radically between kernels and iterations. *)
    let trace_cost =
      match app.Mk_apps.App.trace with
      | None -> 0
      | Some trace -> replay_trace (trace ~nodes ~iteration:iter)
    in
    let fixed = trace_cost + yield_cost in
    Array.iteri
      (fun n c -> if node_alive n then clocks.(n) <- c + scaled n fixed)
      clocks;
    (* Compute windows interleaved with synchronisation points. *)
    let sync_cost_acc = ref 0 in
    let apply_sync sync =
      (* Advance every node through its compute window plus its
         sampled straggler delay, then synchronise. *)
      let max_skew = ref (-1) and straggler = ref (-1) in
      Array.iteri
        (fun n c ->
          if node_alive n then begin
            with_obs obs (fun r -> Mk_obs.Recorder.set_node r n);
            let w = scaled n window in
            let skew =
              Mk_noise.Injector.max_delay profile node_rngs.(n)
                ~dur:(w + !prev_sync) ~ranks:stragglers
            in
            if skew > !max_skew then begin
              max_skew := skew;
              straggler := n
            end;
            clocks.(n) <- c + w + skew
          end)
        clocks;
      with_obs obs (fun r ->
          Mk_obs.Recorder.set_node r 0;
          if !max_skew > 0 then
            Mk_obs.Recorder.count_node r ~node:!straggler ~subsystem:"mpi"
              ~name:"straggler" 1);
      let before = max_alive clocks in
      if !max_skew > 0 then
        Mk_obs.Flight.record_count ~ts:before ~node:!straggler ~subsystem:"mpi"
          ~name:"straggler" 1;
      (match (renvs, fstate) with
      | None, _ | _, None -> (
          match sync with
          | `Allreduce bytes -> Mk_mpi.Collective.allreduce env ~clocks ~bytes
          | `Halo (bytes, neighbors, msgs_per_node) ->
              Mk_mpi.P2p.halo halo_env ~clocks ~bytes ~neighbors;
              (* On one node there are no internode messages, hence no
                 NIC control traffic. *)
              if nodes > 1 then begin
                let control =
                  halo_control_cost os ~ranks_per_node ~msgs_per_node
                    ~controls:(Mk_fabric.Nic.control_syscalls nic ~bytes)
                in
                Array.iteri (fun n c -> clocks.(n) <- c + control) clocks
              end)
      | Some (renv, renv_halo), Some st -> (
          match sync with
          | `Allreduce bytes -> Mk_mpi.Resilient.allreduce renv ~clocks ~bytes
          | `Halo (bytes, neighbors, msgs_per_node) ->
              Mk_mpi.Resilient.halo renv_halo ~clocks ~bytes ~neighbors;
              if nodes > 1 then begin
                let controls = Mk_fabric.Nic.control_syscalls nic ~bytes in
                Array.iteri
                  (fun n c ->
                    if Mk_fault.State.is_alive st n then
                      clocks.(n) <-
                        c
                        + halo_control_cost_faulty os st ~node:n ~ranks_per_node
                            ~msgs_per_node ~controls)
                  clocks
              end));
      let sync_cost = max_alive clocks - before in
      with_obs obs (fun r ->
          let name =
            match sync with `Allreduce _ -> "allreduce" | `Halo _ -> "halo"
          in
          Mk_obs.Recorder.observe r ~subsystem:"mpi" ~name:(name ^ "_ns")
            sync_cost;
          Mk_obs.Recorder.span r ~ts:before ~dur:sync_cost ~node:0 ~tid:1
            ~cat:"mpi" ~name ());
      Mk_obs.Flight.record_span ~ts:before ~dur:sync_cost ~node:0 ~tid:1
        ~cat:"mpi"
        ~name:(match sync with `Allreduce _ -> "allreduce" | `Halo _ -> "halo")
        ();
      sync_cost_acc := !sync_cost_acc + sync_cost
    in
    List.iter apply_sync syncs;
    if syncs = [] then begin
      (* No synchronisation: pure per-node progress. *)
      Array.iteri
        (fun n c ->
          if node_alive n then begin
            with_obs obs (fun r -> Mk_obs.Recorder.set_node r n);
            let w = scaled n window in
            let skew =
              Mk_noise.Injector.max_delay profile node_rngs.(n) ~dur:w
                ~ranks:stragglers
            in
            clocks.(n) <- c + w + skew
          end)
        clocks;
      with_obs obs (fun r -> Mk_obs.Recorder.set_node r 0)
    end;
    (* Remainder of the compute that integer division dropped. *)
    let remainder = compute - (window * nsync) in
    if remainder > 0 then
      Array.iteri
        (fun n c -> if node_alive n then clocks.(n) <- c + scaled n remainder)
        clocks;
    prev_sync := !sync_cost_acc / nsync;
    (match (iter_snap, obs) with
    | Some a, Some r ->
        let name = "iter " ^ string_of_int iter in
        for n = 0 to nodes - 1 do
          let dur = clocks.(n) - a.(n) in
          if dur > 0 then
            Mk_obs.Recorder.span r ~ts:a.(n) ~dur ~node:n ~tid:0 ~cat:"iter"
              ~name ()
        done
    | _ -> ());
    (* [is_armed] guard: the name concatenation should not allocate on
       unarmed runs (the ≤2% disabled-overhead budget). *)
    if Mk_obs.Flight.is_armed () then
      Mk_obs.Flight.record_span ~ts:start ~dur:(max_alive clocks - start)
        ~node:0 ~tid:0 ~cat:"iter"
        ~name:("iter " ^ string_of_int iter) ();
    iter_durations.(iter) <- max_alive clocks - start
  done;

  (* --- Extrapolation ------------------------------------------------ *)
  let first_iteration = iter_durations.(0) in
  let steady_sum = ref 0 in
  for i = 1 to sim_iters - 1 do
    steady_sum := !steady_sum + iter_durations.(i)
  done;
  let steady_iteration = !steady_sum / max 1 (sim_iters - 1) in
  (* Benchmarks report their figure of merit over the timed solver
     region; start-up (allocation, first touch, window creation) is
     excluded, exactly as the real benchmarks do. *)
  let solve_time =
    first_iteration + (steady_iteration * (app.Mk_apps.App.iterations - 1))
  in
  let total_time = setup_time + solve_time in
  (* --- Aggregates --------------------------------------------------- *)
  let backed = ref 0 and mcdram = ref 0 and faults = ref 0 in
  for rank = 0 to ranks_per_node - 1 do
    let asp = Mk_kernel.Node.address_space node ~rank in
    backed := !backed + Mk_mem.Address_space.backed_bytes asp;
    mcdram := !mcdram + Mk_mem.Address_space.mcdram_bytes asp;
    faults := !faults + (Mk_mem.Address_space.stats asp).Mk_mem.Address_space.faults
  done;
  {
    nodes;
    total_time;
    solve_time;
    setup_time;
    first_iteration;
    steady_iteration;
    fom = Mk_apps.App.fom app ~nodes ~total_time:solve_time;
    mcdram_fraction =
      (if !backed = 0 then 1.0 else float_of_int !mcdram /. float_of_int !backed);
    faults = !faults;
    offloads_per_iteration;
    failures = Mk_kernel.Node.failures node;
    fault_events =
      (match fstate with
      | None -> 0
      | Some st -> Mk_fault.State.events_applied st);
    dead_nodes =
      (match fstate with None -> 0 | Some st -> Mk_fault.State.dead_count st);
    recoveries = !recoveries;
  }

let run ?eager_threshold ?faults ?obs ~scenario ~app ~nodes ~seed () =
  match obs with
  | None ->
      run_body ?eager_threshold ?faults ~obs:None ~scenario ~app ~nodes ~seed ()
  | Some r ->
      (* Install the recorder in the domain-local hook slot so the
         Tier-1 layers (mem, ikc, noise, fault, mpi, sched) reach it
         without threading it through their APIs. *)
      Mk_obs.Hook.with_recorder r (fun () ->
          run_body ?eager_threshold ?faults ~obs ~scenario ~app ~nodes ~seed ())

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>nodes %d: total %a (setup %a, first %a, steady %a)@ fom %.4g, mcdram %.2f, faults %d, offloads/iter %d, failures %d@]"
    r.nodes Units.pp_time r.total_time Units.pp_time r.setup_time Units.pp_time
    r.first_iteration Units.pp_time r.steady_iteration r.fom r.mcdram_fraction
    r.faults r.offloads_per_iteration r.failures
