open Mk_engine

type result = {
  nodes : int;
  total_time : Units.time;
  solve_time : Units.time;
  setup_time : Units.time;
  first_iteration : Units.time;
  steady_iteration : Units.time;
  fom : float;
  mcdram_fraction : float;
  faults : int;
  offloads_per_iteration : int;
  failures : int;
}

let max_array a = Array.fold_left max min_int a

(* ------------------------------------------------------------------ *)
(* Per-node setup on the representative node                           *)

let setup_memory node (app : Mk_apps.App.t) ~nodes =
  let os = Mk_kernel.Node.os node in
  let ranks = Mk_kernel.Node.ranks node in
  let linux_ddr =
    app.Mk_apps.App.linux_ddr_only && os.Mk_kernel.Os.kind = Mk_kernel.Os.Linux
  in
  (* MCDRAM sharing under pressure.  Demand paging (Linux first-touch
     and McKernel's fallback) fills MCDRAM in proportion to how fast
     each rank touches it — i.e. in proportion to footprint — whereas
     mOS has already divided it into equal per-rank shares at job
     launch (its strategy carries that quota).  Section IV credits
     McKernel's CCS-QCD edge to exactly this difference. *)
  let footprints =
    Array.init ranks (fun r -> app.Mk_apps.App.footprint_per_rank ~nodes ~local_rank:r)
  in
  let demands =
    Array.map (fun f -> f + app.Mk_apps.App.heap_per_rank) footprints
  in
  let total_footprint = Array.fold_left ( + ) 0 demands in
  let mcdram_free =
    Mk_mem.Phys.free_bytes_of_kind os.Mk_kernel.Os.phys Mk_hw.Memory_kind.Mcdram
  in
  if
    (not linux_ddr)
    && total_footprint > mcdram_free
    && os.Mk_kernel.Os.kind <> Mk_kernel.Os.Mos_kind
  then begin
    (* Linux's single-domain preferred policy confines each rank's
       MCDRAM to its own quadrant, so first-touch shares that domain
       among the quadrant's ranks; the LWKs' MCDRAM-first policy
       draws on the whole package. *)
    let numa = Mk_hw.Topology.numa os.Mk_kernel.Os.topo in
    let quadrant_ranks = Hashtbl.create 8 in
    for rank = 0 to ranks - 1 do
      let home = (Mk_kernel.Node.rank_state node rank).Mk_kernel.Node.home in
      Hashtbl.replace quadrant_ranks home
        (1 + Option.value (Hashtbl.find_opt quadrant_ranks home) ~default:0)
    done;
    for rank = 0 to ranks - 1 do
      let share =
        int_of_float
          (float_of_int demands.(rank)
          *. float_of_int mcdram_free /. float_of_int total_footprint)
      in
      let share =
        if os.Mk_kernel.Os.kind <> Mk_kernel.Os.Linux then share
        else begin
          let home = (Mk_kernel.Node.rank_state node rank).Mk_kernel.Node.home in
          let local_cap =
            match
              Mk_hw.Numa.nearest numa ~from:home ~kind:Mk_hw.Memory_kind.Mcdram
            with
            | Some d -> Mk_hw.Numa.capacity numa d
            | None -> 0
          in
          let peers =
            max 1 (Option.value (Hashtbl.find_opt quadrant_ranks home) ~default:1)
          in
          min share (local_cap / peers)
        end
      in
      Mk_mem.Address_space.set_mcdram_quota
        (Mk_kernel.Node.address_space node ~rank)
        (Some share)
    done
  end;
  let worst = ref 0 in
  for rank = 0 to ranks - 1 do
    let st = Mk_kernel.Node.rank_state node rank in
    let asp = Mk_kernel.Node.address_space node ~rank in
    let bytes = footprints.(rank) in
    let policy =
      (* The paper ran this workload's Linux baseline out of DDR4
         (Section III-B): SNC-4 prevents the spill policy. *)
      if app.Mk_apps.App.linux_ddr_only && os.Mk_kernel.Os.kind = Mk_kernel.Os.Linux
      then Some (Mk_mem.Policy.Ddr_only { home = st.Mk_kernel.Node.home })
      else None
    in
    let cost =
      match Mk_mem.Address_space.mmap asp ~bytes ~backing:Mk_mem.Vma.Anonymous ?policy () with
      | Ok (addr, c) ->
          c + Mk_mem.Address_space.touch asp ~addr ~bytes ~concurrency:1
      | Error `Enomem -> 0
    in
    if cost > !worst then worst := cost
  done;
  !worst

(* ------------------------------------------------------------------ *)
(* Compute-phase cost on the representative node (per iteration)       *)

let stream_cost node ~bytes =
  let ranks = Mk_kernel.Node.ranks node in
  let worst = ref 0 in
  for rank = 0 to ranks - 1 do
    let asp = Mk_kernel.Node.address_space node ~rank in
    let placement =
      Mk_hw.Bandwidth.mixed
        ~mcdram_fraction:(Mk_mem.Address_space.mcdram_fraction asp)
    in
    let base = Mk_hw.Bandwidth.stream_time ~bytes placement ~ranks in
    let t =
      int_of_float
        (float_of_int base *. Mk_mem.Address_space.tlb_factor asp)
    in
    if t > !worst then worst := t
  done;
  !worst

let compute_total node phases =
  List.fold_left
    (fun acc phase ->
      match phase with
      | Mk_apps.App.Stream bytes -> acc + stream_cost node ~bytes
      | Mk_apps.App.Cpu t -> acc + t
      | Mk_apps.App.Allreduce _ | Mk_apps.App.Halo _ | Mk_apps.App.Yields _ -> acc)
    0 phases

(* ------------------------------------------------------------------ *)
(* System-call pricing                                                 *)

let syscall_cost os sysno =
  match Mk_kernel.Os.syscall_time os ~core:10 sysno with
  | Ok t -> t
  | Error `Enosys -> 0

(* NIC control-path handling for a halo phase: on Linux every rank
   executes its own control syscalls in parallel; on an LWK they all
   offload and the few Linux-side cores become a service bottleneck —
   the critical path is the larger of per-rank serial latency and the
   queueing delay at the proxy/migration target cores. *)
let halo_control_cost os ~ranks_per_node ~msgs_per_node ~controls =
  if controls = [] || msgs_per_node = 0 then 0
  else begin
    let per_msg = List.fold_left (fun acc s -> acc + syscall_cost os s) 0 controls in
    let per_rank_msgs = (msgs_per_node + ranks_per_node - 1) / ranks_per_node in
    let serial = per_rank_msgs * per_msg in
    match os.Mk_kernel.Os.offload with
    | None -> serial
    | Some _ ->
        let service =
          List.fold_left
            (fun acc s -> acc + Mk_syscall.Cost.local s)
            0 controls
        in
        let linux_cores = max 1 (List.length os.Mk_kernel.Os.os_cores) in
        let queue = msgs_per_node * service / linux_cores in
        max serial queue
  end

(* ------------------------------------------------------------------ *)
(* Main run                                                            *)

let run ?eager_threshold ~(scenario : Scenario.t) ~(app : Mk_apps.App.t) ~nodes ~seed
    () =
  if nodes <= 0 then invalid_arg "Driver.run: nodes must be positive";
  let os = scenario.Scenario.make () in
  let ranks_per_node = app.Mk_apps.App.ranks_per_node in
  let node =
    Mk_kernel.Node.boot ~os ~ranks:ranks_per_node
      ~threads_per_rank:app.Mk_apps.App.threads_per_rank ~seed
  in
  (* Every busy hardware thread is a straggler candidate: a detour on
     any OpenMP worker delays its whole rank at the next barrier. *)
  let stragglers = ranks_per_node * app.Mk_apps.App.threads_per_rank in
  let root_rng = Rng.create (seed * 7919) in
  let node_rngs = Array.init nodes (fun n -> Rng.split root_rng (1000 + n)) in
  let nic_cfg = Mk_fabric.Nic.make ?eager_threshold () in
  let fabric = Mk_fabric.Fabric.make ~nic:nic_cfg ~nodes () in
  let nic = Mk_fabric.Fabric.nic fabric in
  let profile = os.Mk_kernel.Os.app_noise in

  (* --- Setup ------------------------------------------------------ *)
  let setup_mem = setup_memory node app ~nodes in
  let shm_costs =
    Mk_kernel.Node.shm_window node ~bytes_per_rank:app.Mk_apps.App.shm_bytes_per_rank
  in
  let shm_setup = Array.fold_left max 0 shm_costs in
  (* Heap traces replay on every rank: each process owns its heap, so
     the node pays the cost of the slowest rank. *)
  let replay_trace ops =
    let worst = ref 0 in
    for rank = 0 to ranks_per_node - 1 do
      let c = Mk_kernel.Node.run_ops node ~rank ops in
      if c > !worst then worst := c
    done;
    !worst
  in
  let trace_setup =
    match app.Mk_apps.App.trace with
    | None -> 0
    | Some trace -> replay_trace (trace ~nodes ~iteration:(-1))
  in
  let setup_time = setup_mem + shm_setup + trace_setup in

  (* --- Static per-iteration pieces --------------------------------- *)
  let phases = app.Mk_apps.App.iteration ~nodes in
  let yields =
    List.fold_left
      (fun acc -> function Mk_apps.App.Yields n -> acc + n | _ -> acc)
      0 phases
  in
  let yield_cost = yields * syscall_cost os Mk_syscall.Sysno.Sched_yield in
  (* Sync points: each allreduce and each halo absorbs stragglers. *)
  let syncs =
    List.concat_map
      (function
        | Mk_apps.App.Allreduce { bytes; count } ->
            List.init count (fun _ -> `Allreduce bytes)
        | Mk_apps.App.Halo { bytes; neighbors; msgs_per_node } ->
            [ `Halo (bytes, neighbors, msgs_per_node) ]
        | Mk_apps.App.Stream _ | Mk_apps.App.Cpu _ | Mk_apps.App.Yields _ -> [])
      phases
  in
  let nsync = max 1 (List.length syncs) in
  let env =
    {
      Mk_mpi.Collective.fabric;
      syscall_cost = (fun s -> syscall_cost os s);
      intra_ranks = ranks_per_node;
    }
  in
  let halo_env =
    (* Control syscalls for halos are charged explicitly (queueing
       model); the tree edges see only wire time. *)
    { env with Mk_mpi.Collective.syscall_cost = (fun _ -> 0) }
  in
  let offloads_per_iteration =
    if Mk_kernel.Os.is_lwk os then
      List.fold_left
        (fun acc -> function
          | `Halo (bytes, _, msgs) ->
              acc + (msgs * List.length (Mk_fabric.Nic.control_syscalls nic ~bytes))
          | `Allreduce _ -> acc)
        0 syncs
    else 0
  in

  (* --- Iterations --------------------------------------------------- *)
  let clocks = Array.make nodes setup_time in
  let sim_iters = max 2 (min app.Mk_apps.App.sim_iterations app.Mk_apps.App.iterations) in
  let iter_durations = Array.make sim_iters 0 in
  let prev_sync = ref (Units.us) in
  for iter = 0 to sim_iters - 1 do
    let start = max_array clocks in
    (* Placement and page-size mix can change between iterations
       (cold shared-memory faults, heap growth), so compute costs are
       re-priced each round. *)
    let compute = compute_total node phases in
    let window = compute / nsync in
    (* Cold shared-memory faults: without premap, the first exchange
       populates the windows with every rank contending. *)
    if iter = 0 && not os.Mk_kernel.Os.options.Mk_kernel.Os.mpol_shm_premap then begin
      let worst = ref 0 in
      for rank = 0 to ranks_per_node - 1 do
        let asp = Mk_kernel.Node.address_space node ~rank in
        let c = Mk_mem.Address_space.touch_all asp ~concurrency:ranks_per_node in
        if c > !worst then worst := c
      done;
      Array.iteri (fun n c -> clocks.(n) <- c + !worst) clocks
    end;
    (* Heap churn replay (Lulesh): every node pays the same cost, but
       the cost differs radically between kernels and iterations. *)
    let trace_cost =
      match app.Mk_apps.App.trace with
      | None -> 0
      | Some trace -> replay_trace (trace ~nodes ~iteration:iter)
    in
    let fixed = trace_cost + yield_cost in
    Array.iteri (fun n c -> clocks.(n) <- c + fixed) clocks;
    (* Compute windows interleaved with synchronisation points. *)
    let sync_cost_acc = ref 0 in
    let apply_sync sync =
      (* Advance every node through its compute window plus its
         sampled straggler delay, then synchronise. *)
      Array.iteri
        (fun n c ->
          let skew =
            Mk_noise.Injector.max_delay profile node_rngs.(n)
              ~dur:(window + !prev_sync) ~ranks:stragglers
          in
          clocks.(n) <- c + window + skew)
        clocks;
      let before = max_array clocks in
      (match sync with
      | `Allreduce bytes -> Mk_mpi.Collective.allreduce env ~clocks ~bytes
      | `Halo (bytes, neighbors, msgs_per_node) ->
          Mk_mpi.P2p.halo halo_env ~clocks ~bytes ~neighbors;
          (* On one node there are no internode messages, hence no
             NIC control traffic. *)
          if nodes > 1 then begin
            let control =
              halo_control_cost os ~ranks_per_node ~msgs_per_node
                ~controls:(Mk_fabric.Nic.control_syscalls nic ~bytes)
            in
            Array.iteri (fun n c -> clocks.(n) <- c + control) clocks
          end);
      sync_cost_acc := !sync_cost_acc + (max_array clocks - before)
    in
    List.iter apply_sync syncs;
    if syncs = [] then
      (* No synchronisation: pure per-node progress. *)
      Array.iteri
        (fun n c ->
          let skew =
            Mk_noise.Injector.max_delay profile node_rngs.(n) ~dur:window
              ~ranks:stragglers
          in
          clocks.(n) <- c + window + skew)
        clocks;
    (* Remainder of the compute that integer division dropped. *)
    let remainder = compute - (window * nsync) in
    if remainder > 0 then Array.iteri (fun n c -> clocks.(n) <- c + remainder) clocks;
    prev_sync := !sync_cost_acc / nsync;
    iter_durations.(iter) <- max_array clocks - start
  done;

  (* --- Extrapolation ------------------------------------------------ *)
  let first_iteration = iter_durations.(0) in
  let steady_sum = ref 0 in
  for i = 1 to sim_iters - 1 do
    steady_sum := !steady_sum + iter_durations.(i)
  done;
  let steady_iteration = !steady_sum / max 1 (sim_iters - 1) in
  (* Benchmarks report their figure of merit over the timed solver
     region; start-up (allocation, first touch, window creation) is
     excluded, exactly as the real benchmarks do. *)
  let solve_time =
    first_iteration + (steady_iteration * (app.Mk_apps.App.iterations - 1))
  in
  let total_time = setup_time + solve_time in
  (* --- Aggregates --------------------------------------------------- *)
  let backed = ref 0 and mcdram = ref 0 and faults = ref 0 in
  for rank = 0 to ranks_per_node - 1 do
    let asp = Mk_kernel.Node.address_space node ~rank in
    backed := !backed + Mk_mem.Address_space.backed_bytes asp;
    mcdram := !mcdram + Mk_mem.Address_space.mcdram_bytes asp;
    faults := !faults + (Mk_mem.Address_space.stats asp).Mk_mem.Address_space.faults
  done;
  {
    nodes;
    total_time;
    solve_time;
    setup_time;
    first_iteration;
    steady_iteration;
    fom = Mk_apps.App.fom app ~nodes ~total_time:solve_time;
    mcdram_fraction =
      (if !backed = 0 then 1.0 else float_of_int !mcdram /. float_of_int !backed);
    faults = !faults;
    offloads_per_iteration;
    failures = Mk_kernel.Node.failures node;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>nodes %d: total %a (setup %a, first %a, steady %a)@ fom %.4g, mcdram %.2f, faults %d, offloads/iter %d, failures %d@]"
    r.nodes Units.pp_time r.total_time Units.pp_time r.setup_time Units.pp_time
    r.first_iteration Units.pp_time r.steady_iteration r.fom r.mcdram_fraction
    r.faults r.offloads_per_iteration r.failures
