(** Rendering experiment output the way the paper presents it. *)

val fom_table : app:Mk_apps.App.t -> Experiment.series list -> string
(** Node counts down the side, one FOM column (with min–max error
    range) per scenario. *)

val relative_table :
  app:Mk_apps.App.t ->
  baseline:Experiment.series ->
  Experiment.series list ->
  string
(** The Figure-4 view: each scenario's median relative to the
    baseline per node count. *)

val relative_chart :
  app:Mk_apps.App.t ->
  baseline:Experiment.series ->
  Experiment.series list ->
  string

val absolute_chart : app:Mk_apps.App.t -> Experiment.series list -> string

val csv : app:Mk_apps.App.t -> Experiment.series list -> string

val json : app:Mk_apps.App.t -> Experiment.series list -> Mk_engine.Json.t
(** Structured export: per scenario, per point — median/min/max FOM
    plus the median run's diagnostics (MCDRAM fraction, faults,
    offloads). *)

(** {1 Suite views}

    A {e suite} is the full evaluation: every application paired with
    its three-kernel comparison, as produced by {!Experiment.suite}.
    The baseline series is the one labelled ["Linux"]; apps missing a
    baseline or a comparison series are skipped, not errors. *)

val suite_table : (Mk_apps.App.t * Experiment.series list) list -> string
(** One row per application — median/best improvement over Linux for
    each LWK — followed by the paper's headline statistics. *)

val suite_headline :
  (Mk_apps.App.t * Experiment.series list) list ->
  (string * float * float) list
(** Per LWK label: (label, median improvement, best improvement)
    across every (application × node count) point, as ratios
    (1.0 = parity).  The paper reports a median of 1.09 with a best
    of 3.8 (Section I). *)

val metrics_table : Mk_obs.Collect.t -> string
(** Every collected metric, one row per [(kernel, node, subsystem,
    name)] key in {!Mk_obs.Key.compare} order — the deterministic
    tie-break, not insertion order. *)

val mechanism_table : Mk_obs.Collect.t -> string
(** The mechanism counters (demand faults, 2M pages, MCDRAM spill,
    proxy round-trips vs. thread migrations, retries, preemptions)
    summed over nodes and pivoted per kernel. *)

val suite_json :
  runs:int ->
  seed:int ->
  ?meta:(string * Mk_engine.Json.t) list ->
  ?obs:Mk_obs.Collect.t ->
  (Mk_apps.App.t * Experiment.series list) list ->
  Mk_engine.Json.t
(** The bench/results document: schema tag, run parameters, extra
    [meta] fields (tag, wall-clock timings …), headline statistics,
    and the per-app {!json} exports.  Deterministic field order, so
    byte-identical inputs render byte-identical files. *)

val des_table : Experiment.des_check list -> string
(** The [--des-shards] verdict: one row per scenario with the serial
    and sharded completion times side by side plus the conservative
    protocol's counters (events, cross-shard messages, nulls, epochs,
    fast-forwarded iterations).  The final column says whether the two
    runs were byte-identical. *)

val supervision_summary : Experiment.supervised -> string
(** The degradation report: computed/replayed/retried/quarantined
    counts plus one line per quarantined cell (label, attempts,
    error).  The CLI prints this to {e stderr} so journaled stdout
    stays byte-identical between fresh and resumed runs. *)

val profile_timeline : label:string -> Mk_obs.Profile.t -> string
(** The engine self-profile of one sharded-DES run: a summary line
    (epochs, events/epoch, null and stall rates, horizon utilization)
    over the simulated-time bucket table.  Deterministic — built only
    from {!Mk_engine.Shard.sample}s. *)

val profile_hot :
  shards:int -> (string * Mk_obs.Profile.totals) list -> string
(** The top-k hot-scenario attribution table ({!Mk_obs.Profile.top}
    output): one row per labelled run, ranked by simulated events. *)

val profile_json :
  nodes:int ->
  shards:int ->
  seed:int ->
  (string * Mk_obs.Profile.t) list ->
  Mk_engine.Json.t
(** The [simos profile -o] document (schema
    ["multikernel-profile-report/1"]): run parameters, each scenario's
    {!Mk_obs.Profile.to_json}, and the hot-scenario attribution.
    Deterministic — byte-identical for every pool size. *)
