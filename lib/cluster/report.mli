(** Rendering experiment output the way the paper presents it. *)

val fom_table : app:Mk_apps.App.t -> Experiment.series list -> string
(** Node counts down the side, one FOM column (with min–max error
    range) per scenario. *)

val relative_table :
  app:Mk_apps.App.t ->
  baseline:Experiment.series ->
  Experiment.series list ->
  string
(** The Figure-4 view: each scenario's median relative to the
    baseline per node count. *)

val relative_chart :
  app:Mk_apps.App.t ->
  baseline:Experiment.series ->
  Experiment.series list ->
  string

val absolute_chart : app:Mk_apps.App.t -> Experiment.series list -> string

val csv : app:Mk_apps.App.t -> Experiment.series list -> string

val json : app:Mk_apps.App.t -> Experiment.series list -> Mk_engine.Json.t
(** Structured export: per scenario, per point — median/min/max FOM
    plus the median run's diagnostics (MCDRAM fraction, faults,
    offloads). *)
