(** A CFS-flavoured fair scheduler: virtual-runtime ordered picks,
    preemption after a latency-divided timeslice.  Context switches
    are comparatively expensive and, unlike the LWK queue, tasks are
    preempted even when alone in a time-sharing class — the timer
    tick itself is modelled by the noise profile, the forced switch
    here adds the direct scheduling cost. *)

include Sched_intf.S

val vruntime : t -> Mk_proc.Task.t -> Mk_engine.Units.time
(** Accumulated virtual runtime (testing/inspection). *)
