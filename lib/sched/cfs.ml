open Mk_engine

type t = {
  queue : Mk_proc.Task.t Heap.t;
  vruntimes : (int, Units.time) Hashtbl.t;
  mutable min_vruntime : Units.time;
}

let create () =
  { queue = Heap.create (); vruntimes = Hashtbl.create 16; min_vruntime = 0 }

let name _ = "cfs"

let vruntime t (task : Mk_proc.Task.t) =
  Option.value (Hashtbl.find_opt t.vruntimes task.Mk_proc.Task.tid) ~default:0

let enqueue t (task : Mk_proc.Task.t) =
  (* A task joining the queue starts at the current minimum so it
     cannot starve the others nor monopolise the CPU. *)
  let vr = max (vruntime t task) t.min_vruntime in
  Hashtbl.replace t.vruntimes task.Mk_proc.Task.tid vr;
  Heap.push t.queue ~key:vr task

let pick t =
  match Heap.pop t.queue with
  | None -> None
  | Some (vr, task) ->
      t.min_vruntime <- max t.min_vruntime vr;
      Some task

let requeue t task ~ran =
  let vr = vruntime t task + ran in
  Hashtbl.replace t.vruntimes task.Mk_proc.Task.tid vr;
  Heap.push t.queue ~key:vr task

let queued t = Heap.length t.queue

(* sched_latency 24ms divided among runnables, floored at the
   6ms minimum granularity (scaled-up defaults for slow cores). *)
let sched_latency = 24 * Units.ms
let min_granularity = 6 * Units.ms

let timeslice _ ~runnable =
  Some (max min_granularity (sched_latency / max 1 runnable))

let context_switch_cost = 3_500
