(** NUMA-aware binding of MPI ranks and threads to cores.

    "mOS allows LWK resources to be divided at the time of
    application launch.  This division respects NUMA boundaries and
    binds threads to CPU cores accordingly.  McKernel provides a
    similar feature for dealing with CPU cores" (Section II-D1).

    The paper's node configuration dedicates 64 cores to the
    application and reserves 4 for OS activity; ranks are laid out
    blockwise so each rank's threads share a quadrant. *)

type plan = {
  rank_cpus : Mk_hw.Topology.cpu list array;  (** CPUs per rank *)
  os_cores : Mk_hw.Topology.core list;
  app_cores : Mk_hw.Topology.core list;
}

val partition_cores :
  topo:Mk_hw.Topology.t -> os_cores:int -> Mk_hw.Topology.core list * Mk_hw.Topology.core list
(** (os cores, application cores): the first [os_cores] cores go to
    the OS — matching OFP practice where "daemons and other system
    services run on the first four cores" (Section III-A). *)

val block :
  topo:Mk_hw.Topology.t ->
  os_cores:int ->
  ranks:int ->
  threads_per_rank:int ->
  plan
(** Block distribution: consecutive cores per rank, hardware threads
    filled core-first so a 2-thread rank uses 1 core's siblings only
    when cores run out.
    @raise Invalid_argument when the demand exceeds the node. *)

val ranks_per_domain : topo:Mk_hw.Topology.t -> plan -> (Mk_hw.Numa.id * int) list
(** How many ranks have their first CPU in each core-owning domain. *)

val home_domain : topo:Mk_hw.Topology.t -> plan -> rank:int -> Mk_hw.Numa.id
(** NUMA domain of the rank's first CPU. *)
