(** Scheduler interface shared by the Linux-like and LWK policies.

    A scheduler owns one run queue (the node model instantiates one
    per core).  [timeslice] distinguishes the two worlds: the CFS
    model preempts, the LWK round-robin scheduler is "non-preemptive,
    co-operative … their primary purpose is to stay out of the way of
    applications" (Section II-D2). *)

module type S = sig
  type t

  val create : unit -> t
  val name : t -> string

  val enqueue : t -> Mk_proc.Task.t -> unit
  (** Add a runnable task to the queue. *)

  val pick : t -> Mk_proc.Task.t option
  (** Remove and return the next task to run. *)

  val requeue : t -> Mk_proc.Task.t -> ran:Mk_engine.Units.time -> unit
  (** Put a task back after it ran for [ran] (yield or preemption). *)

  val queued : t -> int

  val timeslice : t -> runnable:int -> Mk_engine.Units.time option
  (** Maximum slice before forced preemption; [None] = cooperative. *)

  val context_switch_cost : Mk_engine.Units.time
end
