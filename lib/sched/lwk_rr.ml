type t = {
  queue : Mk_proc.Task.t Queue.t;
  quantum : Mk_engine.Units.time option;
}

let create () = { queue = Queue.create (); quantum = None }

let create_time_sharing ~quantum = { queue = Queue.create (); quantum = Some quantum }

let name t =
  match t.quantum with None -> "lwk-rr" | Some _ -> "lwk-rr-timesharing"

let enqueue t task = Queue.add task t.queue

let pick t = Queue.take_opt t.queue

let requeue t task ~ran:_ = Queue.add task t.queue

let queued t = Queue.length t.queue

let timeslice t ~runnable:_ = t.quantum

(* A cooperative switch is a function call plus register save — far
   below a full CFS reschedule. *)
let context_switch_cost = 600
