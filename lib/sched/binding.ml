type plan = {
  rank_cpus : Mk_hw.Topology.cpu list array;
  os_cores : Mk_hw.Topology.core list;
  app_cores : Mk_hw.Topology.core list;
}

let partition_cores ~topo ~os_cores =
  let n = Mk_hw.Topology.cores topo in
  if os_cores < 0 || os_cores >= n then
    invalid_arg "Binding.partition_cores: bad OS core count";
  let all = List.init n (fun c -> c) in
  let rec split i acc = function
    | [] -> (List.rev acc, [])
    | c :: rest ->
        if i < os_cores then split (i + 1) (c :: acc) rest
        else (List.rev acc, c :: rest)
  in
  split 0 [] all

let block ~topo ~os_cores ~ranks ~threads_per_rank =
  if ranks <= 0 then invalid_arg "Binding.block: ranks must be positive";
  if threads_per_rank <= 0 then
    invalid_arg "Binding.block: threads_per_rank must be positive";
  let os, app = partition_cores ~topo ~os_cores in
  let app_arr = Array.of_list app in
  let napp = Array.length app_arr in
  let ht = Mk_hw.Topology.threads_per_core topo in
  if ranks * threads_per_rank > napp * ht then
    invalid_arg
      (Printf.sprintf "Binding.block: %d ranks x %d threads exceed %d cpus" ranks
         threads_per_rank (napp * ht));
  (* Cores per rank: spread cores evenly; hardware threads are used
     once a rank needs more threads than it has cores. *)
  let cores_per_rank = max 1 (napp / ranks) in
  let rank_cpus =
    Array.init ranks (fun r ->
        let first = r * cores_per_rank mod napp in
        let cores =
          List.init (min cores_per_rank napp) (fun i -> app_arr.((first + i) mod napp))
        in
        (* Fill thread 0 of each core first, then thread 1, ... *)
        let rec take needed thread cores_left acc =
          if needed = 0 then List.rev acc
          else
            match cores_left with
            | [] ->
                if thread + 1 >= ht then List.rev acc
                else take needed (thread + 1) cores acc
            | core :: rest ->
                let cpu = Mk_hw.Topology.cpu_of topo ~core ~thread in
                take (needed - 1) thread rest (cpu :: acc)
        in
        take threads_per_rank 0 cores [])
  in
  { rank_cpus; os_cores = os; app_cores = app }

let home_domain ~topo plan ~rank =
  match plan.rank_cpus.(rank) with
  | [] -> invalid_arg "Binding.home_domain: rank has no cpus"
  | cpu :: _ -> Mk_hw.Topology.domain_of_cpu topo cpu

let ranks_per_domain ~topo plan =
  let counts = Hashtbl.create 8 in
  Array.iteri
    (fun _ cpus ->
      match cpus with
      | [] -> ()
      | cpu :: _ ->
          let d = Mk_hw.Topology.domain_of_cpu topo cpu in
          Hashtbl.replace counts d (1 + Option.value (Hashtbl.find_opt counts d) ~default:0))
    plan.rank_cpus;
  (* mklint: allow R3 — fully re-sorted by domain on the next line. *)
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
