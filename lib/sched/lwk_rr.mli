(** The LWK scheduler: round-robin, non-preemptive, cooperative
    (Section II-D2).  With [time_sharing] enabled — the option
    McKernel provides "only on specific CPU cores" — a quantum forces
    rotation; otherwise tasks run until they yield or block. *)

include Sched_intf.S

val create_time_sharing : quantum:Mk_engine.Units.time -> t
