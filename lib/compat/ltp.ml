open Mk_syscall

type kernel = Linux_k | Mckernel_k | Mos_k

type test = {
  name : string;
  sysno : Sysno.t;
  corner : string option;
  needs_fork_setup : bool;
}

type verdict = Pass | Fail of string

type summary = {
  total : int;
  passed : int;
  failed : int;
  failures : (test * string) list;
}

let kernel_to_string = function
  | Linux_k -> "Linux"
  | Mckernel_k -> "McKernel"
  | Mos_k -> "mOS"

(* --------------------------------------------------------------- *)
(* Corner-case tests that specific kernels fail                     *)

let move_pages_corners =
  (* "Eleven of the 32 failing experiments attempt to test various
     combinations of the move_pages() system call" — the whole
     move_pages suite is these eleven. *)
  List.init 11 (fun i -> Printf.sprintf "combination-%02d" (i + 1))

let ptrace_corners = [ "basic"; "attach"; "peekdata"; "cont-signal"; "event-msg" ]

(* Corner semantics McKernel has not implemented (or omits
   intentionally for HPC); all on locally-served calls, since an
   offloaded call executes on real Linux and passes. *)
let mckernel_misc =
  [
    (Sysno.Mprotect, "grows-down");
    (Sysno.Mmap, "map-fixed-noreplace");
    (Sysno.Munmap, "partial-unmap");
    (Sysno.Mremap, "fixed-move");
    (Sysno.Msync, "sync-durability");
    (Sysno.Mlock, "rlimit-exceeded");
    (Sysno.Madvise, "willneed-readahead");
    (Sysno.Futex, "requeue-pi");
    (Sysno.Futex, "robust-list");
    (Sysno.Rt_sigaction, "restorer");
    (Sysno.Rt_sigprocmask, "setsize");
    (Sysno.Sigaltstack, "ss-onstack");
    (Sysno.Sched_setscheduler, "rr-priority");
    (Sysno.Nanosleep, "clock-abstime");
  ]

let mckernel_fail_corners =
  List.map (fun c -> (Sysno.Move_pages, c)) move_pages_corners
  @ [ (Sysno.Clone, "esoteric-flags"); (Sysno.Brk, "fault-after-shrink") ]
  @ List.map (fun c -> (Sysno.Ptrace, c)) ptrace_corners
  @ mckernel_misc

let mos_fail_corners =
  List.map (fun c -> (Sysno.Move_pages, c)) move_pages_corners
  (* "ptrace() is working in mOS.  However, four of the five
     ptrace() experiments fail." *)
  @ List.map
      (fun c -> (Sysno.Ptrace, c))
      (List.filter (fun c -> c <> "basic") ptrace_corners)
  @ [
      (Sysno.Brk, "fault-after-shrink");
      (Sysno.Set_mempolicy, "default-home");
      (Sysno.Mbind, "mf-move");
    ]

let fail_corners = function
  | Linux_k -> []
  | Mckernel_k -> mckernel_fail_corners
  | Mos_k -> mos_fail_corners

(* --------------------------------------------------------------- *)
(* Corpus generation                                                 *)

let target_total = 3_328
let fork_setup_target = 93

(* Per-syscall test quota: move_pages and ptrace have exactly the
   counts the paper implies; the rest share the remainder. *)
let quota =
  let fixed = [ (Sysno.Move_pages, 11); (Sysno.Ptrace, 5) ] in
  let others =
    List.filter
      (fun s -> not (List.mem_assoc s fixed))
      Sysno.all
  in
  let n = List.length others in
  let remainder = target_total - List.fold_left (fun a (_, c) -> a + c) 0 fixed in
  let base = remainder / n in
  let extra = remainder - (base * n) in
  fixed
  @ List.mapi (fun i s -> (s, if i < extra then base + 1 else base)) others

(* Classes whose LTP tests habitually fork a child to set up the
   experiment. *)
let forky_class s =
  match Sysno.cls s with
  | Sysno.Files | Sysno.Ipc | Sysno.Signals -> true
  | Sysno.Memory | Sysno.Process | Sysno.Scheduling | Sysno.Synchronisation
  | Sysno.Info | Sysno.Networking ->
      false

let corpus =
  (* Corner tests occupy the tail of each syscall's quota; fork-setup
     marks occupy the head of forky syscalls, round-robin until the
     target is reached. *)
  let corner_map =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (s, c) ->
        Hashtbl.replace tbl s (c :: Option.value (Hashtbl.find_opt tbl s) ~default:[]))
      (List.rev (mckernel_fail_corners @ mos_fail_corners));
    (* Deduplicate (move_pages/brk/ptrace corners appear in both
       lists).  Mutating a table while Hashtbl.iter walks it is
       unspecified behaviour, so rewrite from a sorted snapshot. *)
    List.iter
      (fun (s, cs) -> Hashtbl.replace tbl s (List.sort_uniq compare cs))
      (Mk_analysis.Sorted.bindings tbl);
    tbl
  in
  let forky = List.filter forky_class (List.map fst quota) in
  let fork_marks = Hashtbl.create 64 in
  (* Round-robin: depth d over the forky syscalls. *)
  let rec mark assigned depth =
    if assigned < fork_setup_target then begin
      let assigned =
        List.fold_left
          (fun acc s ->
            if acc < fork_setup_target then begin
              Hashtbl.replace fork_marks (s, depth) ();
              acc + 1
            end
            else acc)
          assigned forky
      in
      mark assigned (depth + 1)
    end
  in
  mark 0 0;
  List.concat_map
    (fun (s, count) ->
      let corners = Option.value (Hashtbl.find_opt corner_map s) ~default:[] in
      let n_corner = List.length corners in
      List.init count (fun i ->
          let corner =
            if i >= count - n_corner then Some (List.nth corners (i - (count - n_corner)))
            else None
          in
          {
            name = Printf.sprintf "ltp-%s-%02d" (Sysno.to_string s) (i + 1);
            sysno = s;
            corner;
            needs_fork_setup = Hashtbl.mem fork_marks (s, i);
          }))
    quota

(* --------------------------------------------------------------- *)
(* Execution                                                         *)

let disposition_of = function
  | Linux_k -> Disposition.linux
  | Mckernel_k -> Disposition.mckernel
  | Mos_k -> Disposition.mos

let run_test kernel t =
  (* mOS: "fork() is not fully implemented yet which results in many
     failures before the tests of the targeted system calls even
     begin". *)
  if kernel = Mos_k && t.needs_fork_setup then Fail "fork-setup"
  else
    match (disposition_of kernel) t.sysno with
    | Disposition.Unsupported -> Fail "enosys"
    | Disposition.Local | Disposition.Offload | Disposition.Partial _ -> (
        match t.corner with
        | None -> Pass
        | Some c ->
            if List.mem (t.sysno, c) (fail_corners kernel) then
              Fail (Printf.sprintf "corner:%s" c)
            else Pass)

let run_all kernel =
  let failures =
    List.filter_map
      (fun t ->
        match run_test kernel t with Pass -> None | Fail reason -> Some (t, reason))
      corpus
  in
  let total = List.length corpus in
  let failed = List.length failures in
  { total; passed = total - failed; failed; failures }

let failures_by_cause summary =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (_, reason) ->
      Hashtbl.replace tbl reason
        (1 + Option.value (Hashtbl.find_opt tbl reason) ~default:0))
    summary.failures;
  (* Sorted before the (stable) count sort: causes with equal counts
     tie-break alphabetically instead of by hash-bucket order, which
     would otherwise leak into the rendered tables. *)
  Mk_analysis.Sorted.bindings tbl
  |> List.stable_sort (fun (_, a) (_, b) -> compare b a)
