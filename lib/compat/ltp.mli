(** A Linux Test Project-like compatibility corpus.

    Section III-D measures Linux compatibility with LTP: of 3,328
    system-call tests, "McKernel passes all but 32 of them.  For mOS
    the numbers are more bleak: 111 tests out of 3,328 fail."  The
    paper itemises the causes: eleven tests exercise combinations of
    the in-progress move_pages(); one tests "the error behavior of an
    unusual clone() flag combination"; heap-management optimisation
    makes the test that "expect[s] a page fault" after a brk shrink
    fail; "four of the five ptrace() experiments fail" on mOS; and
    "many of the LTP tests rely on fork() to set up the experiment",
    which cascades on mOS where "fork() is not fully implemented yet".

    This module generates a deterministic corpus with those counts
    and mechanisms: each test names a system call, possibly a
    corner-case tag, and possibly a fork-based setup requirement.
    Verdicts derive from the kernels' disposition tables plus
    explicit per-kernel corner-failure lists. *)

type kernel = Linux_k | Mckernel_k | Mos_k

type test = {
  name : string;
  sysno : Mk_syscall.Sysno.t;
  corner : string option;  (** corner-case semantics under test *)
  needs_fork_setup : bool;
}

type verdict = Pass | Fail of string

type summary = {
  total : int;
  passed : int;
  failed : int;
  failures : (test * string) list;
}

val corpus : test list
(** The full generated corpus; length 3,328. *)

val run_test : kernel -> test -> verdict

val run_all : kernel -> summary

val kernel_to_string : kernel -> string

val failures_by_cause : summary -> (string * int) list
(** Failure counts grouped by cause string, descending. *)
