(* A KNL-core memcpy through a shared ring sustains a few GB/s. *)
let copy_bandwidth = 3.0

let latency = 550

let message_time ~bytes =
  latency + Mk_engine.Units.transfer_time ~bytes ~bw:copy_bandwidth

let reduce_steps ~ranks =
  if ranks <= 0 then invalid_arg "Shm.reduce_steps: ranks must be positive";
  let rec go steps cover = if cover >= ranks then steps else go (steps + 1) (cover * 2) in
  go 0 1

let intra_allreduce ~ranks ~bytes =
  2 * reduce_steps ~ranks * message_time ~bytes
