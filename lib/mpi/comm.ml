type t = { nodes : int; ranks_per_node : int }

let make ~nodes ~ranks_per_node =
  if nodes <= 0 || ranks_per_node <= 0 then
    invalid_arg "Comm.make: geometry must be positive";
  { nodes; ranks_per_node }

let size t = t.nodes * t.ranks_per_node

let check t rank =
  if rank < 0 || rank >= size t then
    invalid_arg (Printf.sprintf "Comm: bad rank %d" rank)

let node_of_rank t rank =
  check t rank;
  rank / t.ranks_per_node

let local_of_rank t rank =
  check t rank;
  rank mod t.ranks_per_node

let rank_of t ~node ~local =
  if node < 0 || node >= t.nodes || local < 0 || local >= t.ranks_per_node then
    invalid_arg "Comm.rank_of: out of range";
  (node * t.ranks_per_node) + local

let same_node t a b = node_of_rank t a = node_of_rank t b
