(** Point-to-point exchanges over per-node clocks.

    [halo] models a nearest-neighbour exchange: each node swaps
    [bytes] with each of [neighbors] logical neighbours (ring offsets
    derived from a 3D decomposition) and proceeds once the slowest
    neighbour's message has arrived.  Control system calls are
    charged per message to the sender — on an LWK these offload,
    which is how a message-heavy workload like LAMMPS gives back its
    single-node advantage at scale (Section IV). *)

val neighbor_offsets : nodes:int -> neighbors:int -> int list
(** Symmetric ring offsets approximating a 3D stencil on [nodes]. *)

val halo :
  Collective.cost_env ->
  clocks:Mk_engine.Units.time array ->
  bytes:int ->
  neighbors:int ->
  unit
(** In place: clocks advance to the end of the exchange. *)

val messages_per_node : neighbors:int -> int
