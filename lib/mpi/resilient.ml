type env = {
  base : Collective.cost_env;
  alive : bool array;
  extra_edge : src:int -> dst:int -> Mk_engine.Units.time;
  mutable pending_detection : Mk_engine.Units.time;
}

let make ~base ~alive ~extra_edge =
  { base; alive; extra_edge; pending_detection = 0 }

let notify_crashes env ~policy ~count =
  if count > 0 then begin
    Mk_obs.Hook.count ~subsystem:"mpi" ~name:"crash_detections" count;
    env.pending_detection <-
      env.pending_detection + (count * Mk_fault.Retry.give_up_time policy)
  end

let pending_detection env = env.pending_detection

let flush_detection env ~clocks =
  if env.pending_detection > 0 then begin
    Array.iteri
      (fun i c -> if env.alive.(i) then clocks.(i) <- c + env.pending_detection)
      clocks;
    env.pending_detection <- 0
  end

(* Mirrors Collective.allreduce with the node set compacted to the
   survivors: idx.(i) plays the role index i played in the healthy
   tree.  With everyone alive and extra_edge = 0 the loops are the
   same loops over the same integers. *)
let allreduce env ~clocks ~bytes =
  let n = Array.length clocks in
  if n = 0 then invalid_arg "Resilient.allreduce: no nodes";
  Mk_obs.Hook.count ~subsystem:"mpi" ~name:"allreduce_calls" 1;
  flush_detection env ~clocks;
  let idx =
    Array.of_list (List.filter (fun i -> env.alive.(i)) (List.init n Fun.id))
  in
  let m = Array.length idx in
  if m > 0 then begin
    let intra =
      Shm.intra_allreduce ~ranks:env.base.Collective.intra_ranks ~bytes
    in
    let half = intra / 2 in
    Array.iter (fun i -> clocks.(i) <- clocks.(i) + half) idx;
    let edge ~src ~dst =
      Collective.edge_cost env.base ~src ~dst ~bytes + env.extra_edge ~src ~dst
    in
    let k = ref 1 in
    while !k < m do
      let i = ref 0 in
      while !i < m do
        let j = !i + !k in
        if j < m then begin
          let c = edge ~src:idx.(j) ~dst:idx.(!i) in
          clocks.(idx.(!i)) <- max clocks.(idx.(!i)) (clocks.(idx.(j)) + c)
        end;
        i := !i + (2 * !k)
      done;
      k := !k * 2
    done;
    let k = ref 1 in
    while !k * 2 < m do
      k := !k * 2
    done;
    while !k >= 1 do
      let i = ref 0 in
      while !i < m do
        let j = !i + !k in
        if j < m then begin
          let c = edge ~src:idx.(!i) ~dst:idx.(j) in
          clocks.(idx.(j)) <- max clocks.(idx.(j)) (clocks.(idx.(!i)) + c)
        end;
        i := !i + (2 * !k)
      done;
      k := !k / 2
    done;
    Array.iter (fun i -> clocks.(i) <- clocks.(i) + (intra - half)) idx
  end

(* Mirrors P2p.halo; a dead neighbour contributes nothing to the
   arrival max and a dead node's own clock stays frozen. *)
let halo env ~clocks ~bytes ~neighbors =
  flush_detection env ~clocks;
  let n = Array.length clocks in
  if n > 1 && neighbors > 0 then begin
    Mk_obs.Hook.count ~subsystem:"mpi" ~name:"halo_calls" 1;
    let offsets = P2p.neighbor_offsets ~nodes:n ~neighbors in
    let send_cost =
      List.length offsets
      * List.fold_left
          (fun acc s -> acc + env.base.Collective.syscall_cost s)
          0
          (Mk_fabric.Nic.control_syscalls
             (Mk_fabric.Fabric.nic env.base.Collective.fabric)
             ~bytes)
    in
    let before = Array.copy clocks in
    Array.iteri
      (fun i c ->
        if env.alive.(i) then begin
          let arrival =
            List.fold_left
              (fun acc off ->
                let j = (((i + off) mod n) + n) mod n in
                if not env.alive.(j) then acc
                else begin
                  let wire =
                    Mk_fabric.Fabric.wire_time env.base.Collective.fabric
                      ~src:j ~dst:i ~bytes
                  in
                  max acc
                    (before.(j) + send_cost + wire
                   + env.extra_edge ~src:j ~dst:i)
                end)
              (c + send_cost) offsets
          in
          clocks.(i) <- arrival
        end)
      before
  end
