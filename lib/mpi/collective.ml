type cost_env = {
  fabric : Mk_fabric.Fabric.t;
  syscall_cost : Mk_syscall.Sysno.t -> Mk_engine.Units.time;
  intra_ranks : int;
}

(* Top-level recursion rather than a fold with a capturing closure:
   edge costing runs once per tree edge per collective, and at 2048
   nodes the closure and the (wire, control) tuple of
   [Fabric.message] were the simulator's hottest allocations. *)
let rec add_control_costs env acc = function
  | [] -> acc
  | s :: rest -> add_control_costs env (acc + env.syscall_cost s) rest

let edge_cost env ~src ~dst ~bytes =
  let wire = Mk_fabric.Fabric.wire_time env.fabric ~src ~dst ~bytes in
  if src = dst then wire
  else
    add_control_costs env wire
      (Mk_fabric.Nic.control_syscalls
         (Mk_fabric.Fabric.nic env.fabric)
         ~bytes)

let allreduce env ~clocks ~bytes =
  let n = Array.length clocks in
  if n = 0 then invalid_arg "Collective.allreduce: no nodes";
  Mk_obs.Hook.count ~subsystem:"mpi" ~name:"allreduce_calls" 1;
  let intra = Shm.intra_allreduce ~ranks:env.intra_ranks ~bytes in
  let half = intra / 2 in
  (* Local reduction to each node's leader. *)
  Array.iteri (fun i c -> clocks.(i) <- c + half) clocks;
  (* Binomial-tree reduce towards node 0. *)
  let k = ref 1 in
  while !k < n do
    let i = ref 0 in
    while !i < n do
      let j = !i + !k in
      if j < n then begin
        let c = edge_cost env ~src:j ~dst:!i ~bytes in
        clocks.(!i) <- max clocks.(!i) (clocks.(j) + c)
      end;
      i := !i + (2 * !k)
    done;
    k := !k * 2
  done;
  (* Broadcast back down the same tree. *)
  let k = ref 1 in
  while !k * 2 < n do
    k := !k * 2
  done;
  while !k >= 1 do
    let i = ref 0 in
    while !i < n do
      let j = !i + !k in
      if j < n then begin
        let c = edge_cost env ~src:!i ~dst:j ~bytes in
        clocks.(j) <- max clocks.(j) (clocks.(!i) + c)
      end;
      i := !i + (2 * !k)
    done;
    k := !k / 2
  done;
  (* Local broadcast to the node's ranks. *)
  Array.iteri (fun i c -> clocks.(i) <- c + (intra - half)) clocks

let barrier env ~clocks = allreduce env ~clocks ~bytes:8

let synchronise ~clocks =
  let m = Array.fold_left max min_int clocks in
  Array.iteri (fun i _ -> clocks.(i) <- m) clocks
