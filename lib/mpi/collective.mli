(** Collective operations over per-node clocks.

    The cluster tier tracks one virtual clock per node (the moment
    its slowest rank reaches the next synchronisation point).  A
    collective transforms the clock array in place: a binomial-tree
    reduce followed by a broadcast, each tree edge paying the fabric
    wire time plus whatever control system calls the sending OS
    needs (the [syscall_cost] callback prices them — local on Linux,
    offloaded on an LWK).

    This max-plus composition is where OS noise amplifies: a single
    straggler delays its whole subtree, so the expected completion
    grows with both scale and per-node jitter — the mechanism behind
    Figure 5(b). *)

type cost_env = {
  fabric : Mk_fabric.Fabric.t;
  syscall_cost : Mk_syscall.Sysno.t -> Mk_engine.Units.time;
  intra_ranks : int;  (** ranks per node taking part *)
}

val edge_cost : cost_env -> src:int -> dst:int -> bytes:int -> Mk_engine.Units.time
(** One tree edge: wire + control-syscall time. *)

val allreduce :
  cost_env -> clocks:Mk_engine.Units.time array -> bytes:int -> unit
(** In place: after return every clock holds the time at which that
    node leaves the allreduce (intra-node reduce, inter-node
    reduce+broadcast tree, intra-node broadcast). *)

val barrier : cost_env -> clocks:Mk_engine.Units.time array -> unit
(** An 8-byte allreduce. *)

val synchronise : clocks:Mk_engine.Units.time array -> unit
(** Ideal zero-cost synchronisation: every clock becomes the max.
    Used by tests as a baseline. *)
