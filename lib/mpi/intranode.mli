(** Event-driven intra-node collective simulation.

    Unlike {!Collective}, which advances per-node clocks analytically,
    this module runs an actual discrete-event simulation of one
    node's ranks performing a binomial-tree allreduce over the
    shared-memory transport: every message is an event, every blocked
    receiver wakes either by spinning on the ring (dedicated LWK
    cores can afford to) or through a futex sleep/wake with its
    kernel round-trip.  It serves as the micro-scale ground truth for
    the analytic tier and as an osu_allreduce-style microbenchmark of
    the transport. *)

type wait_mode =
  | Spin  (** poll the ring; zero wake-up cost on a dedicated core *)
  | Futex_wake of Mk_engine.Units.time
      (** sleep in futex; each message delivery pays this wake-up *)

type result = {
  completion : Mk_engine.Units.time;  (** when the last rank exits *)
  messages : int;  (** total shm messages exchanged *)
  wakeups : int;  (** futex wake-ups taken *)
}

val allreduce :
  ranks:int ->
  bytes:int ->
  wait:wait_mode ->
  ?skew:(int -> Mk_engine.Units.time) ->
  unit ->
  result
(** Simulate one allreduce over [ranks] ranks; [skew rank] is each
    rank's arrival time at the collective (default: all at 0). *)

val latency_sweep :
  ranks:int -> wait:wait_mode -> int list -> (int * Mk_engine.Units.time) list
(** osu_allreduce-style: (message size, completion latency) pairs. *)
