(** Intra-node transport over shared-memory windows.

    Within a node, messages move through per-pair shared rings at
    memory-copy speed.  The windows are ordinary shared mappings and
    therefore demand-faulted by the first toucher; McKernel's
    [--mpol-shm-premap] exists precisely to pre-populate them and
    avoid "contention in the page fault handler" (Section IV) during
    the first communication step — that cost is modelled in
    {!Mk_kernel.Node.shm_window} and in the first-use penalty here. *)

val copy_bandwidth : float
(** Single-pair shared-memory copy bandwidth, bytes/ns. *)

val latency : Mk_engine.Units.time
(** Per-message software latency between two ranks on one node. *)

val message_time : bytes:int -> Mk_engine.Units.time

val reduce_steps : ranks:int -> int
(** Tree steps of an intra-node reduction: ceil(log2 ranks). *)

val intra_allreduce : ranks:int -> bytes:int -> Mk_engine.Units.time
(** Reduce-then-broadcast inside the node: 2·log2(R) message steps. *)
