let neighbor_offsets ~nodes ~neighbors =
  if neighbors <= 0 then []
  else begin
    let side =
      int_of_float (Float.round (Float.cbrt (float_of_int (max 1 nodes))))
    in
    let side = max 1 side in
    let candidates = [ 1; side; side * side ] in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
    in
    let pos = take ((neighbors + 1) / 2) candidates in
    List.concat_map (fun o -> [ o; -o ]) pos
    |> fun l -> take neighbors l
  end

let messages_per_node ~neighbors = neighbors

let halo env ~clocks ~bytes ~neighbors =
  let n = Array.length clocks in
  if n > 1 && neighbors > 0 then begin
    Mk_obs.Hook.count ~subsystem:"mpi" ~name:"halo_calls" 1;
    let offsets = neighbor_offsets ~nodes:n ~neighbors in
    let send_cost = List.length offsets * List.fold_left
                      (fun acc s -> acc + env.Collective.syscall_cost s)
                      0
                      (Mk_fabric.Nic.control_syscalls
                         (Mk_fabric.Fabric.nic env.Collective.fabric)
                         ~bytes)
    in
    (* Domain-local scratch instead of a fresh copy: the halo runs
       once per sync point per iteration per run, and the copy of a
       2048-node clock array was pure minor-heap churn. *)
    let before = Mk_engine.Scratch.int_array ~tag:"p2p.halo.before" ~len:n ~init:0 in
    Array.blit clocks 0 before 0 n;
    Array.iteri
      (fun i c ->
        let arrival =
          List.fold_left
            (fun acc off ->
              let j = ((i + off) mod n + n) mod n in
              let wire =
                Mk_fabric.Fabric.wire_time env.Collective.fabric ~src:j ~dst:i
                  ~bytes
              in
              max acc (before.(j) + send_cost + wire))
            (c + send_cost) offsets
        in
        clocks.(i) <- arrival)
      before
  end
