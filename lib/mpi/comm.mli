(** Communicator geometry: ranks laid out over nodes.

    Ranks are numbered node-major (Intel MPI's default on OFP):
    rank = node * ranks_per_node + local. *)

type t = { nodes : int; ranks_per_node : int }

val make : nodes:int -> ranks_per_node:int -> t
val size : t -> int
val node_of_rank : t -> int -> int
val local_of_rank : t -> int -> int
val rank_of : t -> node:int -> local:int -> int
val same_node : t -> int -> int -> bool
