open Mk_engine

type wait_mode = Spin | Futex_wake of Units.time

type result = {
  completion : Units.time;
  messages : int;
  wakeups : int;
}

(* Binomial tree over rank ids: rank i's parent strips the lowest set
   bit; its children are i + 2^j for the js below its own lowest set
   bit (or all powers of two for rank 0). *)
let parent rank = rank land (rank - 1)

let children ~ranks rank =
  let lowest_set r =
    let rec go j = if r land (1 lsl j) <> 0 then j else go (j + 1) in
    go 0
  in
  let limit = if rank = 0 then 30 else lowest_set rank in
  let rec gather j acc =
    if j >= limit then List.rev acc
    else begin
      let c = rank + (1 lsl j) in
      if c < ranks then gather (j + 1) (c :: acc) else List.rev acc
    end
  in
  gather 0 []

let allreduce ~ranks ~bytes ~wait ?(skew = fun _ -> 0) () =
  if ranks <= 0 then invalid_arg "Intranode.allreduce: ranks must be positive";
  let sim = Sim.create () in
  let msg = Shm.message_time ~bytes in
  let wake = match wait with Spin -> 0 | Futex_wake w -> w in
  let messages = ref 0 in
  let wakeups = ref 0 in
  (* Reduce state: children remaining per rank; when a rank has heard
     from all children (and has arrived itself) it sends upward. *)
  let missing = Array.init ranks (fun r -> List.length (children ~ranks r)) in
  let arrived = Array.make ranks false in
  let finish = Array.make ranks 0 in
  let rec send_up rank sim =
    if rank = 0 then broadcast 0 sim
    else begin
      incr messages;
      if wake > 0 then incr wakeups;
      let p = parent rank in
      ignore
        (Sim.schedule_after sim ~delay:(msg + wake) (fun sim ->
             missing.(p) <- missing.(p) - 1;
             maybe_up p sim))
    end
  and maybe_up rank sim =
    if arrived.(rank) && missing.(rank) = 0 then send_up rank sim
  and broadcast rank sim =
    finish.(rank) <- Sim.now sim;
    List.iter
      (fun c ->
        incr messages;
        if wake > 0 then incr wakeups;
        ignore (Sim.schedule_after sim ~delay:(msg + wake) (broadcast c)))
      (children ~ranks rank)
  in
  for rank = 0 to ranks - 1 do
    ignore
      (Sim.schedule sim ~at:(skew rank) (fun sim ->
           arrived.(rank) <- true;
           maybe_up rank sim))
  done;
  Sim.run sim;
  let completion = Array.fold_left max 0 finish in
  { completion; messages = !messages; wakeups = !wakeups }

let latency_sweep ~ranks ~wait sizes =
  List.map
    (fun bytes -> (bytes, (allreduce ~ranks ~bytes ~wait ()).completion))
    sizes
