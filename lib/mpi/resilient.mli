(** Fault-aware variants of {!Collective} and {!P2p}.

    Same max-plus clock semantics, three additions:

    - {b routing around crashes}: the binomial reduce/broadcast tree
      is rebuilt over the surviving nodes (the index array is
      compacted, the tree shape follows), and a halo exchange simply
      stops waiting for dead neighbours — the slowdown of a thinner
      tree {e emerges} from the composition, nothing is hard-coded;
    - {b detection cost}: when the driver reports fresh crashes via
      {!notify_crashes}, every survivor is charged one full
      retry-until-give-up round ({!Mk_fault.Retry.give_up_time}) at
      the next synchronisation — the point where the collective times
      out on the dead peer and rebuilds;
    - {b per-edge surcharges}: the [extra_edge] callback prices
      transient link faults (flapping sends retried under the MPI
      policy) without this module knowing why.

    With every node alive, no pending detection and a zero
    [extra_edge], each operation is {e bit-identical} to its healthy
    counterpart — the fault layer costs nothing when off. *)

type env

val make :
  base:Collective.cost_env ->
  alive:bool array ->
  extra_edge:(src:int -> dst:int -> Mk_engine.Units.time) ->
  env
(** [alive] is shared with the caller (the driver's fault state
    mutates it as the plan unfolds). *)

val notify_crashes :
  env -> policy:Mk_fault.Retry.policy -> count:int -> unit
(** Queue the detection cost for [count] fresh crashes; charged to
    every survivor by the next collective or halo. *)

val pending_detection : env -> Mk_engine.Units.time

val allreduce :
  env -> clocks:Mk_engine.Units.time array -> bytes:int -> unit
(** Dead nodes' clocks are left frozen; survivors pay the compacted
    tree. *)

val halo :
  env ->
  clocks:Mk_engine.Units.time array ->
  bytes:int ->
  neighbors:int ->
  unit
(** Ring geometry is unchanged (ranks keep their coordinates); dead
    neighbours are simply no longer waited for. *)
