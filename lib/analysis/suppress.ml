type entry = { rules : Rule.id list; first : int; last : int; whole_file : bool }
type t = entry list

let marker = "mklint:"

(* Tokens after "mklint:" up to the first word that is not a rule id;
   "allow R3 R4 — reason" yields (false, [R3; R4]). *)
let parse_directive rest =
  let words =
    String.split_on_char ' ' rest
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | kind :: rest when kind = "allow" || kind = "allow-file" ->
      let rec take acc = function
        | w :: tl -> (
            match Rule.id_of_string w with
            | Some r -> take (r :: acc) tl
            | None -> List.rev acc)
        | [] -> List.rev acc
      in
      let rules = take [] rest in
      if rules = [] then None else Some (kind = "allow-file", rules)
  | _ -> None

let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some i
    else go (i + 1)
  in
  go 0

(* A directive covers its comment through the line after the comment
   terminator, so a justification wrapped over several lines still
   reaches the construct beneath it. *)
let close_line lines i at =
  let n = Array.length lines in
  let rec go j from =
    if j >= n || j > i + 50 then i
    else
      match find_sub (String.sub lines.(j) from (String.length lines.(j) - from)) "*)" with
      | Some _ -> j
      | None -> go (j + 1) 0
  in
  go i at

let scan contents =
  let lines = Array.of_list (String.split_on_char '\n' contents) in
  List.concat
    (List.mapi
       (fun i line ->
         match find_sub line marker with
         | None -> []
         | Some at -> (
             let rest =
               String.sub line
                 (at + String.length marker)
                 (String.length line - at - String.length marker)
             in
             match parse_directive rest with
             | None -> []
             | Some (whole_file, rules) ->
                 [
                   {
                     rules;
                     first = i + 1;
                     last = close_line lines i (at + String.length marker) + 2;
                     whole_file;
                   };
                 ]))
       (Array.to_list lines))

let allows t ~rule ~line =
  List.exists
    (fun e ->
      List.mem rule e.rules
      && (e.whole_file || (line >= e.first && line <= e.last)))
    t

let count t = List.length t
