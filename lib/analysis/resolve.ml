(* Alias-aware naming of typedtree paths.

   The typer already resolves [let open M in gettimeofday] to a fully
   qualified path, but a module alias [module U = Unix] leaves
   [Pdot (Pident U, "gettimeofday")] with the alias as the head.  We
   collect every [module X = <path>] binding (top-level, nested and
   [let module]) into a map keyed by the unique ident, and substitute
   while printing, so [U.gettimeofday] names as [Unix.gettimeofday]. *)

type t = { aliases : (string, string) Hashtbl.t }

let empty () = { aliases = Hashtbl.create 16 }

let rec path_name t (p : Path.t) =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt t.aliases (Ident.unique_name id) with
      | Some target -> target
      | None -> Ident.name id)
  | Path.Pdot (p, s) -> path_name t p ^ "." ^ s
  | Path.Papply (p, _) -> path_name t p
  | _ -> Path.name p

let collect (str : Typedtree.structure) =
  let t = empty () in
  let add id (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Typedtree.Tmod_ident (p, _) ->
        (* [path_name t] here chases alias chains already recorded, so
           [module A = Unix  module B = A] lands both on "Unix". *)
        Hashtbl.replace t.aliases (Ident.unique_name id) (path_name t p)
    | _ -> ()
  in
  let structure_item self (si : Typedtree.structure_item) =
    (match si.str_desc with
    | Tstr_module { mb_id = Some id; mb_expr; _ } -> add id mb_expr
    | _ -> ());
    Tast_iterator.default_iterator.structure_item self si
  in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_letmodule (Some id, _, _, me, _) -> add id me
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let it = { Tast_iterator.default_iterator with structure_item; expr } in
  it.structure it str;
  t

(* Compiled paths name stdlib and dune-wrapped modules by their mangled
   unit ("Stdlib__Hashtbl", "Mk_engine__Pool"); fold those back to the
   source spelling so one name table serves both lint stages. *)
let demangle part =
  (* "Mk_engine__Pool" -> "Mk_engine.Pool"; a "__" at either end is
     not a separator (that would leave an empty component). *)
  let b = Buffer.create (String.length part) in
  let n = String.length part in
  let i = ref 0 in
  while !i < n do
    if !i > 0 && !i + 2 < n && part.[!i] = '_' && part.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      Buffer.add_char b (Char.uppercase_ascii part.[!i + 2]);
      i := !i + 3
    end
    else begin
      Buffer.add_char b part.[!i];
      incr i
    end
  done;
  Buffer.contents b

let normalize name =
  let name =
    String.concat "." (List.map demangle (String.split_on_char '.' name))
  in
  match String.split_on_char '.' name with
  | "Stdlib" :: (_ :: _ as rest) -> String.concat "." rest
  | _ -> name

let qualified t p = normalize (path_name t p)
