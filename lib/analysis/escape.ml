(* R8/R9: the typed passes that look at closures.

   R8 (domain escape): a closure handed to Pool/Experiment/Shard runs
   on worker domains.  Any mutable value it captures from the
   enclosing scope — a ref, table, buffer, queue, record with mutable
   fields, or an array it writes — is shared across domains without
   synchronisation.  The pass is deliberately one closure deep and
   resolves let-bound task functions one level (the
   [let task = fun ... in Pool.parallel_map task] shape); it does not
   chase arbitrary call graphs.  Domain-local escape hatches are
   recognised structurally: values allocated inside the closure,
   state routed through Engine.Scratch, and code under
   [Mutex.protect] (or a [Mutex.lock]-led sequence).

   R9 (mutate during iteration): [Hashtbl.iter]/[fold] whose closure
   mutates the table being walked — the Ltp corner-map bug shape.
   Hashtbl semantics under concurrent mutation of the iterated table
   are unspecified, independent of domains. *)

let loc_line_col (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let violation ~file ~zone rule loc fmt =
  let line, col = loc_line_col loc in
  let severity : Rule.severity =
    if zone = Lint.Test then Warning else Error
  in
  Printf.ksprintf
    (fun message -> { Rule.rule; severity; file; line; col; message })
    fmt

(* ------------------------------------------------------------------ *)
(* What one compilation unit binds *)

type st = {
  resolve : Resolve.t;
  (* Ident.unique_name -> (kind, source name) for bindings whose value
     is a mutable cell. *)
  mutable_binds : (string, string * string) Hashtbl.t;
  (* Ident.unique_name -> function literal, for one-level resolution
     of let-bound task closures. *)
  local_funs : (string, Typedtree.expression) Hashtbl.t;
}

(* The value a binding ultimately holds, looking through scaffolding. *)
let rec binding_head (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_let (_, _, body)
  | Texp_sequence (_, body)
  | Texp_open (_, body)
  | Texp_letmodule (_, _, _, _, body)
  | Texp_letexception (_, body) ->
      binding_head body
  | _ -> e

let head_name st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (Resolve.qualified st.resolve p)
  | _ -> None

let contains_component ~comp name =
  List.mem comp (String.split_on_char '.' name)

let mutable_kind name =
  match name with
  | "ref" -> Some "ref cell"
  | "Hashtbl.create" -> Some "hash table"
  | "Buffer.create" -> Some "buffer"
  | "Queue.create" -> Some "queue"
  | "Stack.create" -> Some "stack"
  | "Bytes.create" | "Bytes.make" -> Some "bytes buffer"
  | "Weak.create" -> Some "weak array"
  | _ -> None

let prepass resolve (str : Typedtree.structure) =
  let st =
    {
      resolve;
      mutable_binds = Hashtbl.create 32;
      local_funs = Hashtbl.create 32;
    }
  in
  let classify_binding id (rhs : Typedtree.expression) =
    let key = Ident.unique_name id in
    let h = binding_head rhs in
    match h.exp_desc with
    | Texp_function _ -> Hashtbl.replace st.local_funs key h
    | Texp_apply (f, _) -> (
        match head_name st f with
        | Some name when contains_component ~comp:"Scratch" name ->
            (* Engine.Scratch hands out per-domain storage: the
               sanctioned route for worker-local mutable state. *)
            ()
        | Some name -> (
            match mutable_kind name with
            | Some kind ->
                Hashtbl.replace st.mutable_binds key (kind, Ident.name id)
            | None -> ())
        | None -> ())
    | Texp_record { fields; _ }
      when Array.exists
             (fun ((lbl : Types.label_description), _) ->
               lbl.lbl_mut = Mutable)
             fields ->
        Hashtbl.replace st.mutable_binds key
          ("record with mutable fields", Ident.name id)
    | _ -> ()
  in
  let value_binding self (vb : Typedtree.value_binding) =
    (match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) -> classify_binding id vb.vb_expr
    | Tpat_alias (_, id, _) -> classify_binding id vb.vb_expr
    | _ -> ());
    Tast_iterator.default_iterator.value_binding self vb
  in
  let it = { Tast_iterator.default_iterator with value_binding } in
  it.structure it str;
  st

(* ------------------------------------------------------------------ *)
(* R8 *)

let triggers =
  [
    "Pool.parallel_map";
    "Pool.parallel_map_result";
    "Pool.parallel_map_on";
    "Pool.parallel_run_on";
    "Pool.submit";
    "Experiment.points";
    "Experiment.point";
    "Experiment.sweep";
    "Experiment.compare_scenarios";
    "Experiment.suite";
    "Shard.run";
    "Shard.schedule";
  ]

let suffix_match ~suffixes name =
  List.find_opt
    (fun s ->
      let ls = String.length s and ln = String.length name in
      ln >= ls
      && String.sub name (ln - ls) ls = s
      && (ln = ls || name.[ln - ls - 1] = '.'))
    suffixes

let array_write_arg name =
  (* Which positional argument is the array/bytes being written. *)
  match name with
  | "Array.set" | "Array.unsafe_set" | "Array.fill" | "Bytes.set"
  | "Bytes.unsafe_set" | "Bytes.fill" ->
      Some 0
  | "Array.blit" | "Bytes.blit" -> Some 2
  | _ -> None

let positional args =
  List.filter_map
    (function Asttypes.Nolabel, Some e -> Some e | _ -> None)
    args

let nth_opt l n = List.nth_opt l n

(* Function literals reachable in argument position without entering a
   function body: the task closures of one trigger call.  Nested
   closures are *not* collected here — the per-closure analysis walks
   into them with the outer locals still in scope. *)
let rec top_funs (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function _ -> [ e ]
  | Texp_apply (hd, args) ->
      top_funs hd
      @ List.concat_map
          (function _, Some a -> top_funs a | _, None -> [])
          args
  | Texp_tuple es -> List.concat_map top_funs es
  | Texp_construct (_, _, es) -> List.concat_map top_funs es
  | Texp_let (_, _, body) | Texp_sequence (_, body) | Texp_open (_, body) ->
      top_funs body
  | Texp_ifthenelse (_, e1, e2) ->
      top_funs e1 @ (match e2 with Some e2 -> top_funs e2 | None -> [])
  | _ -> []

let analyze_closure ~file ~zone ~trigger st (fn : Typedtree.expression) acc =
  let locals = Hashtbl.create 32 in
  let add_id id = Hashtbl.replace locals (Ident.unique_name id) () in
  let add_pat p = List.iter add_id (Typedtree.pat_bound_idents p) in
  let is_local id = Hashtbl.mem locals (Ident.unique_name id) in
  let guarded = ref false in
  let seen = Hashtbl.create 8 in
  let flag key loc fmt =
    Printf.ksprintf
      (fun detail ->
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          acc :=
            violation ~file ~zone R8 loc
              "%s — captured by a task passed to %s, so worker domains \
               share it unsynchronised; allocate it inside the closure, \
               route it through Engine.Scratch, or guard it with a mutex \
               (then suppress with the invariant)"
              detail trigger
            :: !acc
        end)
      fmt
  in
  let register_binders (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function { param; cases; _ } ->
        add_id param;
        List.iter (fun (c : _ Typedtree.case) -> add_pat c.c_lhs) cases
    | Texp_let (_, vbs, _) ->
        List.iter (fun (vb : Typedtree.value_binding) -> add_pat vb.vb_pat) vbs
    | Texp_match (_, cases, _) ->
        List.iter (fun (c : _ Typedtree.case) -> add_pat c.c_lhs) cases
    | Texp_try (_, cases) ->
        List.iter (fun (c : _ Typedtree.case) -> add_pat c.c_lhs) cases
    | Texp_for (id, _, _, _, _, _) -> add_id id
    | _ -> ()
  in
  let expr (self : Tast_iterator.iterator) (e : Typedtree.expression) =
    register_binders e;
    match e.exp_desc with
    | Texp_apply (hd, _)
      when head_name st hd = Some "Mutex.protect" && not !guarded ->
        guarded := true;
        Tast_iterator.default_iterator.expr self e;
        guarded := false
    | Texp_sequence (e1, e2)
      when head_name st
             (match e1.exp_desc with Texp_apply (h, _) -> h | _ -> e1)
           = Some "Mutex.lock"
           && not !guarded ->
        self.expr self e1;
        guarded := true;
        self.expr self e2;
        guarded := false
    | Texp_ident (Path.Pident id, _, _) ->
        (if (not (is_local id)) && not !guarded then
           match Hashtbl.find_opt st.mutable_binds (Ident.unique_name id) with
           | Some (kind, name) ->
               flag (Ident.unique_name id) e.exp_loc "%s `%s` from the \
                 enclosing scope" kind name
           | None -> ());
        Tast_iterator.default_iterator.expr self e
    | Texp_setfield
        ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ }, _, lbl, _) ->
        if (not (is_local id)) && not !guarded then
          flag (Ident.unique_name id) e.exp_loc
            "write to mutable field `%s` of `%s` from the enclosing scope"
            lbl.lbl_name (Ident.name id);
        Tast_iterator.default_iterator.expr self e
    | Texp_apply (hd, args) -> (
        (match head_name st hd with
        | Some name when not !guarded -> (
            match array_write_arg name with
            | Some i -> (
                match nth_opt (positional args) i with
                | Some { exp_desc = Texp_ident (Path.Pident id, _, _); exp_loc; _ }
                  when not (is_local id) ->
                    flag (Ident.unique_name id) exp_loc
                      "%s writes array `%s` from the enclosing scope" name
                      (Ident.name id)
                | _ -> ())
            | None -> ())
        | _ -> ());
        Tast_iterator.default_iterator.expr self e)
    | _ -> Tast_iterator.default_iterator.expr self e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it fn

let collect_r8 ~file ~zone st (str : Typedtree.structure) =
  let acc = ref [] in
  let expr (self : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply (hd, args) -> (
        match head_name st hd with
        | Some name -> (
            match suffix_match ~suffixes:triggers name with
            | Some trigger ->
                List.iter
                  (fun (_, argo) ->
                    match argo with
                    | None -> ()
                    | Some (arg : Typedtree.expression) ->
                        let fns =
                          match arg.exp_desc with
                          | Texp_ident (Path.Pident id, _, _) -> (
                              match
                                Hashtbl.find_opt st.local_funs
                                  (Ident.unique_name id)
                              with
                              | Some f -> [ f ]
                              | None -> [])
                          | _ -> top_funs arg
                        in
                        List.iter
                          (fun f ->
                            analyze_closure ~file ~zone ~trigger st f acc)
                          fns)
                  args
            | None -> ())
        | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  !acc

(* ------------------------------------------------------------------ *)
(* R9 *)

let hashtbl_iterators = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let hashtbl_mutators =
  [
    "Hashtbl.replace";
    "Hashtbl.add";
    "Hashtbl.remove";
    "Hashtbl.clear";
    "Hashtbl.reset";
    "Hashtbl.filter_map_inplace";
  ]

(* Structural identity of the iterated table: an ident (by unique
   name) or a field path rooted at one.  [None] means "cannot tell",
   which errs silent — R9 is a detector for the provable case. *)
let rec table_key st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some ("i:" ^ Ident.unique_name id)
  | Texp_ident (p, _, _) -> Some ("p:" ^ Resolve.qualified st.resolve p)
  | Texp_field (b, _, lbl) ->
      Option.map (fun k -> k ^ "." ^ lbl.lbl_name) (table_key st b)
  | _ -> None

let collect_r9 ~file ~zone st (str : Typedtree.structure) =
  let acc = ref [] in
  let scan_closure ~iterator ~key ~table_name (f : Typedtree.expression) =
    let expr (self : Tast_iterator.iterator) (e : Typedtree.expression) =
      (match e.exp_desc with
      | Texp_apply (hd, args) -> (
          match head_name st hd with
          | Some name when List.mem name hashtbl_mutators -> (
              match positional args with
              | tbl :: _ when table_key st tbl = Some key ->
                  acc :=
                    violation ~file ~zone R9 e.exp_loc
                      "%s mutates `%s` while %s is iterating it — Hashtbl \
                       behaviour under mutation during iteration is \
                       unspecified (entries skipped or visited twice after \
                       a resize); collect the updates and apply them after \
                       the walk"
                      name table_name iterator
                  :: !acc
              | _ -> ())
          | _ -> ())
      | _ -> ());
      Tast_iterator.default_iterator.expr self e
    in
    let it = { Tast_iterator.default_iterator with expr } in
    it.expr it f
  in
  let expr (self : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply (hd, args) -> (
        match head_name st hd with
        | Some name when List.mem name hashtbl_iterators -> (
            match positional args with
            | f :: tbl :: _ -> (
                match table_key st tbl with
                | Some key ->
                    let table_name =
                      match tbl.exp_desc with
                      | Texp_ident (Path.Pident id, _, _) -> Ident.name id
                      | Texp_field (_, lid, _) -> (
                          match Longident.flatten lid.txt with
                          | parts -> String.concat "." parts
                          | exception _ -> "the table")
                      | _ -> "the table"
                    in
                    let fns =
                      match f.exp_desc with
                      | Texp_ident (Path.Pident id, _, _) -> (
                          match
                            Hashtbl.find_opt st.local_funs
                              (Ident.unique_name id)
                          with
                          | Some fn -> [ fn ]
                          | None -> [])
                      | _ -> [ f ]
                    in
                    List.iter
                      (scan_closure ~iterator:name ~key ~table_name)
                      fns
                | None -> ())
            | _ -> ())
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  !acc

(* ------------------------------------------------------------------ *)

let collect ~file ~zone resolve (str : Typedtree.structure) =
  let st = prepass resolve str in
  collect_r8 ~file ~zone st str @ collect_r9 ~file ~zone st str
