type severity = Error | Warning

type id = Parse | R1 | R2 | R3 | R4 | R5 | R6

let all = [ R1; R2; R3; R4; R5; R6 ]

let id_to_string = function
  | Parse -> "parse"
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"

let id_of_string s =
  match String.lowercase_ascii s with
  | "parse" -> Some Parse
  | "r1" -> Some R1
  | "r2" -> Some R2
  | "r3" -> Some R3
  | "r4" -> Some R4
  | "r5" -> Some R5
  | "r6" -> Some R6
  | _ -> None

let severity_to_string = function Error -> "error" | Warning -> "warning"

let title = function
  | Parse -> "file must parse"
  | R1 -> "no wall-clock reads in simulation code"
  | R2 -> "no ambient Random — all randomness flows through the seeded PRNG"
  | R3 -> "no Hashtbl.iter/fold where iteration order can leak into output"
  | R4 -> "no top-level mutable state reachable from pool workers"
  | R5 -> "no direct stdout printing in lib/ outside the report layer"
  | R6 -> "every lib/ module declares its interface in an .mli"

let hazard = function
  | Parse -> "an unparseable file escapes every other rule"
  | R1 ->
      "Unix.gettimeofday/Sys.time in a sim path makes results depend on the \
       host clock, breaking same-seed byte-identical replay"
  | R2 ->
      "Random.self_init (or any ambient Random.*) draws from process-global \
       state, so reruns and -j N runs diverge; use Engine.Rng splits"
  | R3 ->
      "Hashtbl iteration order is unspecified, so folding a table into a \
       report or results file lets bucket layout choose the output bytes"
  | R4 ->
      "a top-level ref/Hashtbl is shared by every Pool worker domain: \
       cross-domain mutation races and schedule-dependent results"
  | R5 ->
      "stray prints interleave nondeterministically under -j N and corrupt \
       byte-compared report streams; return strings or go through Report"
  | R6 ->
      "without an .mli the whole module surface is public, so internal \
       mutable state can be reached from anywhere"

type violation = {
  rule : id;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let id_rank = function
  | Parse -> 0
  | R1 -> 1
  | R2 -> 2
  | R3 -> 3
  | R4 -> 4
  | R5 -> 5
  | R6 -> 6

let compare_violation a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c
      else
        let c = compare (id_rank a.rule) (id_rank b.rule) in
        if c <> 0 then c else String.compare a.message b.message
