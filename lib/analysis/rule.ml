type severity = Error | Warning

type id = Parse | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9

let all = [ R1; R2; R3; R4; R5; R6; R7; R8; R9 ]

let id_to_string = function
  | Parse -> "parse"
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"

let id_of_string s =
  match String.lowercase_ascii s with
  | "parse" -> Some Parse
  | "r1" -> Some R1
  | "r2" -> Some R2
  | "r3" -> Some R3
  | "r4" -> Some R4
  | "r5" -> Some R5
  | "r6" -> Some R6
  | "r7" -> Some R7
  | "r8" -> Some R8
  | "r9" -> Some R9
  | _ -> None

let severity_to_string = function Error -> "error" | Warning -> "warning"

let title = function
  | Parse -> "file must parse"
  | R1 -> "no wall-clock reads in simulation code"
  | R2 -> "no ambient Random — all randomness flows through the seeded PRNG"
  | R3 -> "no Hashtbl.iter/fold where iteration order can leak into output"
  | R4 -> "no top-level mutable state reachable from pool workers"
  | R5 -> "no direct stdout printing in lib/ outside the report layer"
  | R6 -> "every lib/ module declares its interface in an .mli"
  | R7 -> "typed re-check of R1/R2/R3/R5 on alias-resolved paths"
  | R8 -> "no mutable state captured by closures that run on worker domains"
  | R9 -> "no mutation of a hashtable from inside its own iteration"

let hazard = function
  | Parse -> "an unparseable file escapes every other rule"
  | R1 ->
      "Unix.gettimeofday/Sys.time in a sim path makes results depend on the \
       host clock, breaking same-seed byte-identical replay"
  | R2 ->
      "Random.self_init (or any ambient Random.*) draws from process-global \
       state, so reruns and -j N runs diverge; use Engine.Rng splits"
  | R3 ->
      "Hashtbl iteration order is unspecified, so folding a table into a \
       report or results file lets bucket layout choose the output bytes"
  | R4 ->
      "a top-level ref/Hashtbl is shared by every Pool worker domain: \
       cross-domain mutation races and schedule-dependent results"
  | R5 ->
      "stray prints interleave nondeterministically under -j N and corrupt \
       byte-compared report streams; return strings or go through Report"
  | R6 ->
      "without an .mli the whole module surface is public, so internal \
       mutable state can be reached from anywhere"
  | R7 ->
      "a banned name reached through `let open` or a module alias is \
       invisible to the syntactic pass; the typedtree path is fully \
       qualified, so the same hazards are re-checked with aliases resolved"
  | R8 ->
      "a ref/table/buffer captured by a closure handed to Pool, Experiment \
       or Shard is mutated concurrently by worker domains: data races and \
       schedule-dependent results; allocate inside the task, route the \
       state through Engine.Scratch, or guard it with a mutex"
  | R9 ->
      "mutating a Hashtbl while Hashtbl.iter/fold walks it has unspecified \
       semantics (the Ltp corner-map bug): entries may be visited twice, \
       skipped, or the walk may diverge after a resize"

type violation = {
  rule : id;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let id_rank = function
  | Parse -> 0
  | R1 -> 1
  | R2 -> 2
  | R3 -> 3
  | R4 -> 4
  | R5 -> 5
  | R6 -> 6
  | R7 -> 7
  | R8 -> 8
  | R9 -> 9

let compare_violation a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c
      else
        let c = compare (id_rank a.rule) (id_rank b.rule) in
        if c <> 0 then c else String.compare a.message b.message
