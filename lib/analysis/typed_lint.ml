(* The typed (.cmt) lint stage.

   Reads the typedtrees dune already produces and runs the passes the
   parsetree cannot express: R7 (alias-resolved re-checks of the
   R1/R2/R3/R5 name rules) here, R8/R9 (closure analyses) in
   {!Escape}.  R7 fires only when the name as *written* differs from
   the name as *resolved* — a direct [Unix.gettimeofday] is already
   the syntactic stage's finding, so the two stages never report the
   same use twice. *)

let written_name (lid : Longident.t) =
  match Longident.flatten lid with
  | exception _ -> ""
  | parts -> String.concat "." parts

let collect_r7 ~file ~zone resolve (str : Typedtree.structure) =
  let acc = ref [] in
  let expr (self : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (path, lid, _) -> (
        let written = written_name lid.txt in
        let resolved = Resolve.qualified resolve path in
        if written <> "" && written <> resolved then
          match Lint.ident_violation ~file ~zone resolved lid.loc with
          | Some v ->
              acc :=
                {
                  v with
                  rule = R7;
                  message =
                    Printf.sprintf "`%s` resolves to %s: %s" written resolved
                      v.message;
                }
                :: !acc
          | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  !acc

let lint_structure ~file (str : Typedtree.structure) =
  match Lint.classify file with
  | None -> []
  | Some zone ->
      let resolve = Resolve.collect str in
      collect_r7 ~file ~zone resolve str @ Escape.collect ~file ~zone resolve str

let lint_cmt ~file path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Implementation str; _ } -> lint_structure ~file str
  | _ -> []
  | exception exn ->
      [
        {
          Rule.rule = Parse;
          severity = Error;
          file;
          line = 1;
          col = 0;
          message =
            Printf.sprintf "cannot read %s for the typed stage: %s" path
              (Printexc.to_string exn);
        };
      ]

(* ------------------------------------------------------------------ *)
(* Discovery under _build *)

let build_root root = Filename.concat (Filename.concat root "_build") "default"
let available ~root = Sys.file_exists (build_root root)

(* Unlike the source walk, this one must descend into dot-directories:
   dune hides cmts in <dir>/.<lib>.objs/byte/. *)
let rec walk_cmts dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk_cmts path acc
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc entries

let lint_tree ~root =
  let dirs =
    List.filter_map
      (fun d ->
        let dir = Filename.concat (build_root root) d in
        if Sys.file_exists dir then Some dir else None)
      Lint.default_dirs
  in
  let cmts = List.sort String.compare (List.concat_map (fun d -> walk_cmts d []) dirs) in
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun cmt ->
      match Cmt_format.read_cmt cmt with
      | exception _ -> []
      | info -> (
          match info.cmt_sourcefile with
          | None -> []
          | Some file ->
              (* dune records the source path root-relative; generated
                 sources (module alias files, ppx output) do not exist
                 in the tree and are skipped. *)
              if
                Filename.is_relative file
                && (not (Hashtbl.mem seen file))
                && Sys.file_exists (Filename.concat root file)
                && Filename.check_suffix file ".ml"
                && Lint.classify file <> None
              then begin
                Hashtbl.add seen file ();
                match info.cmt_annots with
                | Implementation str -> lint_structure ~file str
                | _ -> []
              end
              else []))
    cmts
