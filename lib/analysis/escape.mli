(** R8/R9: the typed closure passes.

    {b R8 — domain escape.}  Closures handed to [Pool.parallel_map] /
    [parallel_map_result] / [parallel_map_on] / [parallel_run_on] /
    [submit], the [Experiment] fan-out entry points, or [Shard.run] /
    [Shard.schedule] execute on worker domains.  The pass flags
    mutable values captured from the enclosing scope — refs, hash
    tables, buffers, queues, stacks, bytes, records with mutable
    fields, and arrays the closure writes — unless the value provably
    stays domain-local: allocated inside the closure, routed through
    [Engine.Scratch], or used under [Mutex.protect] (or a
    [Mutex.lock]-led sequence, the Journal pattern).  Let-bound task
    functions are resolved one level ([let task = fun … in
    Pool.parallel_map task]); arbitrary call graphs are not chased,
    so the rule is a detector for the provable shape, not an alias
    analysis.

    {b R9 — mutate during iteration.}  A [Hashtbl.iter]/[fold] whose
    closure mutates the very table being walked (the Ltp corner-map
    bug shape).  Tables are identified structurally: same ident or
    same field path rooted at the same ident.

    Both rules report at [Error] severity except in the [Test] zone,
    where they downgrade to [Warning]. *)

val collect :
  file:string ->
  zone:Lint.zone ->
  Resolve.t ->
  Typedtree.structure ->
  Rule.violation list
(** All R8 and R9 findings of one compilation unit. *)
