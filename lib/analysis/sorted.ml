let keys_by ~cmp t =
  (* mklint: allow R3 — this is the sorted-keys helper itself; the
     fold's order is erased by the sort_uniq below. *)
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort_uniq cmp

let keys t = keys_by ~cmp:compare t

let bindings_by ~cmp t =
  (* [Hashtbl.find] returns the most recent binding, so duplicate
     [add]s cannot leak internal bucket order here. *)
  List.map (fun k -> (k, Hashtbl.find t k)) (keys_by ~cmp t)

let bindings t = bindings_by ~cmp:compare t
