(** The mklint syntactic analysis pass, plus report assembly for both
    stages.

    mklint runs in two stages.  This module is the *syntactic* fast
    path: it parses [.ml]/[.mli] files with the compiler's own parser
    (compiler-libs) and walks the parsetree for R1–R6.  The *typed*
    deep path ({!Typed_lint}, R7–R9) reads the [.cmt] files dune
    produces and re-joins this report through {!merge_typed}, so both
    stages share one suppression/baseline/severity pipeline.  The
    syntactic stage alone is name-based and does not see through
    [let open] or module aliases; the typed stage closes exactly that
    gap. *)

type zone = Lib | Bin | Bench | Tools | Test

val classify : string -> zone option
(** Zone of a root-relative path, by leading directory.  Rules are
    zone-scoped: wall clock (R1) is banned in [Lib]/[Bin] (warning in
    [Test], where harness timing is legal) but fine in [Bench]; stdout
    printing (R5) and global mutable state (R4) are [Lib]-only;
    ambient [Random] (R2) is banned everywhere (warning in [Test]). *)

val serialization_files : string list
(** Modules whose output bytes are compared or persisted; [R3] is an
    error here (and anywhere under [bench/]/[bin/]), a warning in the
    rest of [lib/]. *)

val report_layer_files : string list
(** The designated stdout owners, exempt from [R5]. *)

val prng_files : string list
(** The seeded-PRNG implementation, exempt from [R2]. *)

val test_fixture_writer_files : string list
(** Test files that write fixtures whose bytes are later compared;
    [R3] is an error here even though the zone is [Test]. *)

val ident_violation :
  file:string -> zone:zone -> string -> Location.t -> Rule.violation option
(** The shared R1/R2/R3/R5 identifier rule: does one fully-dotted name
    at one location violate a rule in this file/zone?  Used by the
    syntactic pass on written names and by the typed pass (R7) on
    alias-resolved names. *)

val lint_string : file:string -> string -> Rule.violation list
(** Syntactic findings for one file given as contents.  [file] must be
    the root-relative path (it decides zone and exemptions).
    Suppressions, baseline and R6 (which needs the tree) are not
    applied here. *)

type status = Active | Suppressed | Baselined

val status_to_string : status -> string

type report = {
  root : string;
  files : string list;  (** scanned files, sorted *)
  findings : (Rule.violation * status) list;  (** sorted by violation *)
}

val lint_files : root:string -> baseline:Baseline.t -> string list -> report
(** Lint the given root-relative files.  The report is identical for
    any permutation of the input list (tested by a qcheck property). *)

val default_dirs : string list

val lint_tree :
  ?dirs:string list -> root:string -> baseline:Baseline.t -> unit -> report
(** Discover and lint every [.ml]/[.mli] under [dirs] (default
    {!default_dirs}), skipping [_build]-style and hidden directories. *)

val merge_typed :
  report -> baseline:Baseline.t -> Rule.violation list -> report
(** Join typed-stage violations (R7/R8/R9, from {!Typed_lint}) into a
    syntactic report.  Each violation passes through the same inline
    suppression scan and baseline lookup as syntactic findings;
    violations pointing outside the report's scanned file set (stale
    or generated cmts) are dropped.  The result stays sorted and
    deduplicated, so merging is order-insensitive. *)

val source_line : root:string -> file:string -> int -> string
(** The text of one source line (1-based), or [""] when out of range —
    what hash-keyed baseline entries are computed from. *)

val active : report -> Rule.violation list
val errors : report -> Rule.violation list
(** Active (not suppressed, not baselined) error-severity findings —
    what fails [--ci]. *)

val warnings : report -> Rule.violation list

val to_json : report -> Mk_engine.Json.t
(** Machine-readable report ([mklint/1] schema), deterministic: files
    and findings are sorted, never in scan order. *)

val to_sarif : report -> Mk_engine.Json.t
(** The same report as SARIF 2.1.0, for diff-annotation tooling.
    Suppressed findings carry a SARIF suppression of kind [inSource],
    baselined ones kind [external]. *)

val render : report -> string
(** Human-readable listing plus a one-line summary. *)
