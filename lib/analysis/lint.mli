(** The mklint analysis pass.

    Parses [.ml]/[.mli] files with the compiler's own parser
    (compiler-libs) and walks the parsetree for the rule catalogue in
    {!Rule}.  Detection is syntactic and name-based: [Unix.gettimeofday]
    reached through [let open Unix] or a module alias is not seen —
    acceptable for a lint pass whose job is to keep the honest honest;
    the byte-identity smoke tests remain the runtime backstop. *)

type zone = Lib | Bin | Bench | Tools

val classify : string -> zone option
(** Zone of a root-relative path, by leading directory.  Rules are
    zone-scoped: wall clock (R1) is banned in [Lib]/[Bin] but fine in
    [Bench]; stdout printing (R5) and global mutable state (R4) are
    [Lib]-only; ambient [Random] (R2) is banned everywhere. *)

val serialization_files : string list
(** Modules whose output bytes are compared or persisted; [R3] is an
    error here (and anywhere under [bench/]/[bin/]), a warning in the
    rest of [lib/]. *)

val report_layer_files : string list
(** The designated stdout owners, exempt from [R5]. *)

val prng_files : string list
(** The seeded-PRNG implementation, exempt from [R2]. *)

val lint_string : file:string -> string -> Rule.violation list
(** Rule findings for one file given as contents.  [file] must be the
    root-relative path (it decides zone and exemptions).  Suppressions,
    baseline and R6 (which needs the tree) are not applied here. *)

type status = Active | Suppressed | Baselined

val status_to_string : status -> string

type report = {
  root : string;
  files : string list;  (** scanned files, sorted *)
  findings : (Rule.violation * status) list;  (** sorted by violation *)
}

val lint_files : root:string -> baseline:Baseline.t -> string list -> report
(** Lint the given root-relative files.  The report is identical for
    any permutation of the input list (tested by a qcheck property). *)

val default_dirs : string list

val lint_tree :
  ?dirs:string list -> root:string -> baseline:Baseline.t -> unit -> report
(** Discover and lint every [.ml]/[.mli] under [dirs] (default
    {!default_dirs}), skipping [_build]-style and hidden directories. *)

val active : report -> Rule.violation list
val errors : report -> Rule.violation list
(** Active (not suppressed, not baselined) error-severity findings —
    what fails [--ci]. *)

val warnings : report -> Rule.violation list

val to_json : report -> Mk_engine.Json.t
(** Machine-readable report ([mklint/1] schema), deterministic: files
    and findings are sorted, never in scan order. *)

val render : report -> string
(** Human-readable listing plus a one-line summary. *)
