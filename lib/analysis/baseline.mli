(** The checked-in violation baseline.

    A baseline lets the gate land strict on a tree with known debt:
    every entry names one existing violation that is tolerated until
    fixed, while anything *new* still fails CI.  The format is one
    entry per line, [#] comments and blank lines ignored:

    {v
    # rule  file:content-hash
    R3 lib/cluster/report.ml:6e0f1a2b3c4d
    v}

    Entries are keyed by the content hash of the flagged line (the
    first 12 hex chars of the MD5 of the trimmed line text), so edits
    elsewhere in the file — which shift line numbers — cannot silently
    resurface a tolerated finding.  Moving or rewriting the flagged
    line itself does surface it again, which is the point.  Legacy
    [RULE file:line] entries (all-digit key) still parse and match on
    the line number; [--update-baseline] rewrites them to hashes.

    The shipped baseline ([.mklint-baseline]) is empty: every finding
    on the current tree was fixed or inline-suppressed instead. *)

type t

val empty : t
val is_empty : t -> bool

val hash_of_line : string -> string
(** The content key of one source line (trimmed before hashing, so
    re-indentation does not invalidate an entry). *)

val load : string -> (t, string) result
(** Read a baseline file.  A missing file is [Ok empty]; a malformed
    line is an [Error] naming it, so a typo cannot silently tolerate
    everything. *)

val mem : t -> Rule.violation -> line_text:string -> bool
(** [line_text] is the source line the violation points at (used for
    hash-keyed entries; legacy entries compare the line number). *)

val render : (Rule.violation * string) list -> string
(** Serialise violations (each paired with its flagged line's text) as
    hash-keyed baseline entries, sorted and deduplicated — what
    [mklint --update-baseline] writes. *)
