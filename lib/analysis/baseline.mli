(** The checked-in violation baseline.

    A baseline lets the gate land strict on a tree with known debt:
    every entry names one existing violation that is tolerated until
    fixed, while anything *new* still fails CI.  The format is one
    entry per line, [#] comments and blank lines ignored:

    {v
    # rule  file:line
    R3 lib/cluster/report.ml:42
    v}

    Matching is exact on (rule, file, line), so moving or duplicating
    a flagged construct surfaces it again.  The shipped baseline
    ([.mklint-baseline]) is empty: every finding on the current tree
    was fixed or inline-suppressed instead. *)

type t

val empty : t
val is_empty : t -> bool

val load : string -> (t, string) result
(** Read a baseline file.  A missing file is [Ok empty]; a malformed
    line is an [Error] naming it, so a typo cannot silently tolerate
    everything. *)

val mem : t -> Rule.violation -> bool

val render : Rule.violation list -> string
(** Serialise violations as baseline entries (sorted, deduplicated) —
    what [mklint --update-baseline] writes. *)
