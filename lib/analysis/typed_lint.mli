(** The typed (.cmt) lint stage: R7, and the driver for {!Escape}'s
    R8/R9.

    Where the syntactic stage ({!Lint}) matches written names, this
    stage reads the typedtrees dune already produces under
    [_build/default] and matches fully-resolved [Path.t]s, so
    [let open Unix in gettimeofday ()] and [module U = Unix …
    U.gettimeofday] are seen.  R7 fires only when the written name
    differs from the resolved one — direct uses stay the syntactic
    stage's findings, so merging the stages never duplicates a
    report.

    Violations returned here carry no suppression/baseline status;
    feed them to {!Lint.merge_typed}. *)

val available : root:string -> bool
(** Whether [_build/default] exists — i.e. whether [dune build] has
    produced cmts to read.  The CLI refuses [--typed]/[--ci] without
    it rather than silently passing. *)

val lint_structure : file:string -> Typedtree.structure -> Rule.violation list
(** R7/R8/R9 findings of one typedtree.  [file] is the root-relative
    source path (decides zone and exemptions); files outside every
    zone yield []. *)

val lint_cmt : file:string -> string -> Rule.violation list
(** Read one [.cmt] (second argument: its path) and lint its
    implementation typedtree.  An unreadable cmt yields a [Parse]
    error finding rather than silence. *)

val lint_tree : root:string -> Rule.violation list
(** Discover every cmt under [_build/default/<default_dirs>]
    (descending into dune's dot-directories), map each back to its
    source file, and lint those that exist in the tree — one
    compilation unit at most once, in sorted cmt order. *)
