(** Inline suppression comments.

    A finding can be acknowledged in place when the flagged construct
    is deliberate and safe:

    {v
    (* mklint: allow R3 — order-independent fold (sums a counter) *)
    Hashtbl.fold (fun _ ch acc -> acc + ch.messages) t.channels 0
    v}

    [allow RULES...] covers the comment (however many lines it spans)
    plus the line after its terminator, so it can sit above the
    construct or share its line.  [allow-file
    RULES...] covers the whole file (for e.g. a module that *is* the
    designated PRNG or report layer).  Several rule ids may follow one
    [allow]; everything after the rule ids is the human justification
    and is ignored by the scanner — by convention it is mandatory. *)

type t

val scan : string -> t
(** Extract suppressions from a file's full contents.  The scan is
    line-based on the [mklint:] marker, so it also sees markers in
    nested or multi-line comments. *)

val allows : t -> rule:Rule.id -> line:int -> bool

val count : t -> int
(** Number of [allow]/[allow-file] markers found (for reporting). *)
