(** Alias-aware naming of typedtree [Path.t]s for the typed lint
    stage.

    The typer resolves [let open] at elaboration time, but a module
    alias ([module U = Unix], top-level or [let module]) survives as
    the path head.  {!collect} gathers the alias map of one structure;
    {!qualified} then prints any path with aliases substituted and
    compiler name mangling undone, so the result is comparable against
    the source-spelling name tables in {!Lint}. *)

type t

val collect : Typedtree.structure -> t
(** Alias map of one compilation unit ([module X = <path>] bindings at
    any depth, including [let module]); chains resolve to their final
    target in source order. *)

val path_name : t -> Path.t -> string
(** Dotted name of a path with aliases substituted (no mangling
    cleanup). *)

val normalize : string -> string
(** Undo compiler name mangling: ["Stdlib__Hashtbl.iter"] and
    ["Stdlib.Hashtbl.iter"] both become ["Hashtbl.iter"];
    ["Mk_engine__Pool.submit"] becomes ["Mk_engine.Pool.submit"]. *)

val qualified : t -> Path.t -> string
(** [normalize (path_name t p)] — the fully-resolved source-spelling
    name the R7/R8/R9 passes match on. *)
