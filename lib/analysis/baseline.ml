type key = Line of int | Hash of string
type entry = { rule : Rule.id; file : string; key : key }
type t = entry list

let empty = []
let is_empty t = t = []

(* 12 hex chars of the MD5 of the trimmed line: long enough that two
   different flagged lines in one file never collide in practice, short
   enough to stay readable in a diff. *)
let hash_of_line text =
  String.sub (Digest.to_hex (Digest.string (String.trim text))) 0 12

let is_digits s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let is_hash s =
  String.length s = 12
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

let parse_key s =
  if is_digits s then Option.map (fun l -> Line l) (int_of_string_opt s)
  else if is_hash s then Some (Hash s)
  else None

let parse_line ln s =
  let s = String.trim s in
  if s = "" || s.[0] = '#' then Ok None
  else
    match String.split_on_char ' ' s |> List.filter (fun w -> w <> "") with
    | [ rule; loc ] -> (
        match (Rule.id_of_string rule, String.rindex_opt loc ':') with
        | Some rule, Some i -> (
            let file = String.sub loc 0 i in
            let key = String.sub loc (i + 1) (String.length loc - i - 1) in
            match parse_key key with
            | Some key when file <> "" -> Ok (Some { rule; file; key })
            | _ ->
                Error
                  (Printf.sprintf "baseline line %d: bad location %S" ln loc))
        | _ -> Error (Printf.sprintf "baseline line %d: unparseable entry %S" ln s))
    | _ ->
        Error
          (Printf.sprintf
             "baseline line %d: expected 'RULE file:line-hash', got %S" ln s)

let load path =
  if not (Sys.file_exists path) then Ok empty
  else
    let ic = open_in_bin path in
    let contents =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    let lines = String.split_on_char '\n' contents in
    List.fold_left
      (fun acc (ln, s) ->
        match acc with
        | Error _ -> acc
        | Ok t -> (
            match parse_line ln s with
            | Ok None -> Ok t
            | Ok (Some e) -> Ok (e :: t)
            | Error e -> Error e))
      (Ok empty)
      (List.mapi (fun i s -> (i + 1, s)) lines)

let mem t (v : Rule.violation) ~line_text =
  let h = lazy (hash_of_line line_text) in
  List.exists
    (fun e ->
      e.rule = v.rule && e.file = v.file
      &&
      match e.key with
      | Line l -> l = v.line
      | Hash s -> s = Lazy.force h)
    t

let render entries =
  let lines =
    List.map
      (fun ((v : Rule.violation), text) ->
        Printf.sprintf "%s %s:%s" (Rule.id_to_string v.rule) v.file
          (hash_of_line text))
      entries
    |> List.sort_uniq String.compare
  in
  String.concat "\n"
    (("# mklint baseline: tolerated pre-existing findings, one entry per line."
     :: "# Keys are 'RULE file:hash' where hash is the content hash of the"
     :: "# flagged line, so edits elsewhere in the file cannot resurface an"
     :: "# entry; legacy 'RULE file:line' entries still parse."
     :: lines)
    @ [ "" ])
