type entry = { rule : Rule.id; file : string; line : int }
type t = entry list

let empty = []
let is_empty t = t = []

let parse_line ln s =
  let s = String.trim s in
  if s = "" || s.[0] = '#' then Ok None
  else
    match String.split_on_char ' ' s |> List.filter (fun w -> w <> "") with
    | [ rule; loc ] -> (
        match (Rule.id_of_string rule, String.rindex_opt loc ':') with
        | Some rule, Some i -> (
            let file = String.sub loc 0 i in
            let line = String.sub loc (i + 1) (String.length loc - i - 1) in
            match int_of_string_opt line with
            | Some line when file <> "" -> Ok (Some { rule; file; line })
            | _ -> Error (Printf.sprintf "baseline line %d: bad location %S" ln loc))
        | _ -> Error (Printf.sprintf "baseline line %d: unparseable entry %S" ln s))
    | _ ->
        Error
          (Printf.sprintf "baseline line %d: expected 'RULE file:line', got %S"
             ln s)

let load path =
  if not (Sys.file_exists path) then Ok empty
  else
    let ic = open_in_bin path in
    let contents =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    let lines = String.split_on_char '\n' contents in
    List.fold_left
      (fun acc (ln, s) ->
        match acc with
        | Error _ -> acc
        | Ok t -> (
            match parse_line ln s with
            | Ok None -> Ok t
            | Ok (Some e) -> Ok (e :: t)
            | Error e -> Error e))
      (Ok empty)
      (List.mapi (fun i s -> (i + 1, s)) lines)

let mem t (v : Rule.violation) =
  List.exists (fun e -> e.rule = v.rule && e.file = v.file && e.line = v.line) t

let render vs =
  let entries =
    List.map
      (fun (v : Rule.violation) ->
        Printf.sprintf "%s %s:%d" (Rule.id_to_string v.rule) v.file v.line)
      vs
    |> List.sort_uniq String.compare
  in
  String.concat "\n"
    (("# mklint baseline: tolerated pre-existing findings, one 'RULE file:line' per line."
     :: entries)
    @ [ "" ])
