(** Deterministic views of hash tables.

    [Hashtbl] iteration order is unspecified: it depends on the hash
    function, the insertion history and the internal resize schedule.
    Any code path whose bytes reach a report, a results file or a
    serialized snapshot must therefore never consume [Hashtbl.iter] or
    [Hashtbl.fold] directly — mklint rule R3 flags exactly that.  This
    module is the sanctioned escape hatch: it materialises a table as
    an association list sorted by key, so the same table contents
    always yield the same sequence regardless of how they were
    inserted. *)

val keys : ('k, _) Hashtbl.t -> 'k list
(** All distinct keys, sorted by polymorphic [compare]. *)

val bindings : ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** Key-sorted association list.  For keys bound several times (via
    [Hashtbl.add]) only the most recent binding is returned, matching
    what [Hashtbl.find] observes. *)

val bindings_by : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** [bindings] under a caller-supplied key order (e.g. a domain-aware
    comparison where polymorphic compare would be wrong). *)
