type zone = Lib | Bin | Bench | Tools | Test

let classify file =
  match String.split_on_char '/' file with
  | "lib" :: _ -> Some Lib
  | "bin" :: _ -> Some Bin
  | "bench" :: _ -> Some Bench
  | "tools" :: _ -> Some Tools
  | "test" :: _ -> Some Test
  | _ -> None

(* Output-byte-producing modules: Hashtbl iteration here is an error,
   not a warning, because bucket order becomes file/report bytes.
   Ltp is included for its verdict tables (failures_by_cause). *)
let serialization_files =
  [
    "lib/cluster/report.ml";
    "lib/compat/ltp.ml";
    "lib/engine/json.ml";
    "lib/engine/table.ml";
  ]

let report_layer_files = [ "lib/cluster/report.ml"; "lib/engine/table.ml" ]
let prng_files = [ "lib/engine/rng.ml" ]

(* Test files that write fixtures whose bytes later get compared:
   order-leaking iteration here is as bad as in the report layer. *)
let test_fixture_writer_files = [ "test/test_analysis.ml" ]

(* ------------------------------------------------------------------ *)
(* Name tables *)

let wall_clock_names =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.localtime"; "Unix.gmtime"; "Sys.time" ]

let hashtbl_iteration_names = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let stdout_printer_names =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "print_bytes";
    "Stdlib.print_string";
    "Stdlib.print_endline";
    "Stdlib.print_newline";
    "Printf.printf";
    "Format.printf";
    "Format.print_string";
    "Format.print_newline";
    "Format.print_flush";
  ]

let mutable_ctor = function
  | "ref" | "Stdlib.ref" -> Some "ref cell"
  | "Hashtbl.create" -> Some "Hashtbl"
  | "Buffer.create" -> Some "Buffer"
  | "Queue.create" -> Some "Queue"
  | "Stack.create" -> Some "Stack"
  | "Atomic.make" -> Some "Atomic"
  | "Bytes.create" | "Bytes.make" -> Some "Bytes buffer"
  | "Weak.create" -> Some "Weak array"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parsetree helpers *)

let longident_name lid =
  match Longident.flatten lid with
  | exception _ -> ""
  | parts -> String.concat "." parts

let loc_line_col (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* Per-expression identifier rules: R1, R2, R3, R5 *)

let ident_violation ~file ~zone name loc =
  let mk rule severity fmt =
    let line, col = loc_line_col loc in
    Printf.ksprintf
      (fun message -> Some { Rule.rule; severity; file; line; col; message })
      fmt
  in
  if List.mem name wall_clock_names && (zone = Lib || zone = Bin || zone = Test)
  then
    let severity : Rule.severity = if zone = Test then Warning else Error in
    mk R1 severity
      "wall-clock read %s in simulation code — results must depend only on \
       the DES clock and the seed; wall clock belongs in bench/"
      name
  else if has_prefix ~prefix:"Random." name && not (List.mem file prng_files)
  then
    let severity : Rule.severity = if zone = Test then Warning else Error in
    mk R2 severity
      "ambient randomness %s draws from process-global state — split the \
       run's seeded Engine.Rng instead"
      name
  else if List.mem name hashtbl_iteration_names then
    let severity : Rule.severity =
      if
        List.mem file serialization_files
        || zone = Bench || zone = Bin
        || (zone = Test && List.mem file test_fixture_writer_files)
      then Error
      else Warning
    in
    mk R3 severity
      "%s visits bindings in unspecified hash order — route through \
       Analysis.Sorted.bindings, or suppress with an order-independence \
       argument"
      name
  else if
    zone = Lib
    && (not (List.mem file report_layer_files))
    && List.mem name stdout_printer_names
  then
    mk R5 Error
      "%s writes directly to stdout from lib/ — return a string (or take a \
       Format formatter) and let the report layer print"
      name
  else None

let collect_ident_violations ~file ~zone structure =
  let acc = ref [] in
  let expr (self : Ast_iterator.iterator) e =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> (
        match ident_violation ~file ~zone (longident_name txt) loc with
        | Some v -> acc := v :: !acc
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let iter = { Ast_iterator.default_iterator with expr } in
  iter.structure iter structure;
  !acc

(* ------------------------------------------------------------------ *)
(* R4: top-level mutable state *)

(* The value a top-level binding ultimately holds: look through
   scaffolding (let/sequence/open/constraint) so construction-time
   scratch tables inside [let corpus = let tbl = ... in <pure list>]
   are not flagged — only bindings whose *result* is a mutable cell. *)
let rec binding_head (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_let (_, _, body)
  | Pexp_sequence (_, body)
  | Pexp_open (_, body)
  | Pexp_letmodule (_, _, body)
  | Pexp_letexception (_, body)
  | Pexp_constraint (body, _) ->
      binding_head body
  | _ -> e

let rec collect_global_mutables ~file structure =
  List.concat_map (global_mutables_of_item ~file) structure

and global_mutables_of_item ~file (it : Parsetree.structure_item) =
  match it.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.filter_map
        (fun (vb : Parsetree.value_binding) ->
          match (binding_head vb.pvb_expr).pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
              match mutable_ctor (longident_name txt) with
              | Some what ->
                  let line, col = loc_line_col vb.pvb_loc in
                  Some
                    {
                      Rule.rule = R4;
                      severity = Error;
                      file;
                      line;
                      col;
                      message =
                        Printf.sprintf
                          "top-level %s is shared mutable state reachable \
                           from every Pool worker domain — move it into \
                           Scratch / pass it explicitly, or suppress with a \
                           single-domain justification"
                          what;
                    }
              | None -> None)
          | _ -> None)
        vbs
  | Pstr_module { pmb_expr; _ } -> global_mutables_of_module ~file pmb_expr
  | Pstr_recmodule mbs ->
      List.concat_map
        (fun (mb : Parsetree.module_binding) ->
          global_mutables_of_module ~file mb.pmb_expr)
        mbs
  | Pstr_include { pincl_mod; _ } -> global_mutables_of_module ~file pincl_mod
  | _ -> []

and global_mutables_of_module ~file (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_structure str -> collect_global_mutables ~file str
  (* Functor bodies allocate per application; the applied module is
     checked at its own definition site when it is a structure. *)
  | Pmod_constraint (me, _) -> global_mutables_of_module ~file me
  | _ -> []

(* ------------------------------------------------------------------ *)
(* One file *)

let parse_violation ~file ~line message =
  { Rule.rule = Parse; severity = Error; file; line; col = 0; message }

let lint_string ~file contents =
  let lexbuf = Lexing.from_string contents in
  Location.init lexbuf file;
  if Filename.check_suffix file ".mli" then
    match Parse.interface lexbuf with
    | (_ : Parsetree.signature) -> []
    | exception exn ->
        [
          parse_violation ~file ~line:lexbuf.lex_curr_p.pos_lnum
            (Printf.sprintf "interface does not parse: %s"
               (Printexc.to_string exn));
        ]
  else
    match Parse.implementation lexbuf with
    | structure -> (
        match classify file with
        | None -> []
        | Some zone ->
            collect_ident_violations ~file ~zone structure
            @ (if zone = Lib then collect_global_mutables ~file structure
               else []))
    | exception exn ->
        [
          parse_violation ~file ~line:lexbuf.lex_curr_p.pos_lnum
            (Printf.sprintf "implementation does not parse: %s"
               (Printexc.to_string exn));
        ]

(* ------------------------------------------------------------------ *)
(* Reports over file sets *)

type status = Active | Suppressed | Baselined

let status_to_string = function
  | Active -> "active"
  | Suppressed -> "suppressed"
  | Baselined -> "baselined"

type report = {
  root : string;
  files : string list;
  findings : (Rule.violation * status) list;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let normalize file =
  if has_prefix ~prefix:"./" file then
    String.sub file 2 (String.length file - 2)
  else file

let missing_mli ~root file =
  Filename.check_suffix file ".ml"
  && classify file = Some Lib
  && not (Sys.file_exists (Filename.concat root (file ^ "i")))

let nth_line lines n =
  if n >= 1 && n <= Array.length lines then lines.(n - 1) else ""

let source_lines contents = Array.of_list (String.split_on_char '\n' contents)

let source_line ~root ~file n =
  match read_file (Filename.concat root file) with
  | exception _ -> ""
  | contents -> nth_line (source_lines contents) n

let statuses ~baseline contents vs =
  let sup = Suppress.scan contents in
  let lines = source_lines contents in
  List.map
    (fun (v : Rule.violation) ->
      let status =
        if Suppress.allows sup ~rule:v.rule ~line:v.line then Suppressed
        else if Baseline.mem baseline v ~line_text:(nth_line lines v.line) then
          Baselined
        else Active
      in
      (v, status))
    vs

let lint_one ~root ~baseline file =
  let contents = read_file (Filename.concat root file) in
  let vs = lint_string ~file contents in
  let vs =
    if missing_mli ~root file then
      {
        Rule.rule = R6;
        severity = Warning;
        file;
        line = 1;
        col = 0;
        message =
          "module has no .mli — its whole surface (including any mutable \
           state) is public; declare the interface";
      }
      :: vs
    else vs
  in
  statuses ~baseline contents vs

let lint_files ~root ~baseline files =
  let files = List.sort_uniq String.compare (List.map normalize files) in
  let findings = List.concat_map (lint_one ~root ~baseline) files in
  let findings =
    List.sort
      (fun (a, _) (b, _) -> Rule.compare_violation a b)
      findings
  in
  { root; files; findings }

let default_dirs = [ "bench"; "bin"; "lib"; "test"; "tools" ]

let source_file f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let rec walk ~root rel acc =
  let abs = Filename.concat root rel in
  List.fold_left
    (fun acc entry ->
      if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_' then acc
      else
        let rel = Filename.concat rel entry in
        let abs = Filename.concat abs entry in
        if Sys.is_directory abs then walk ~root rel acc
        else if source_file entry then rel :: acc
        else acc)
    acc
    (Array.to_list (Sys.readdir abs))

let lint_tree ?(dirs = default_dirs) ~root ~baseline () =
  let files =
    List.fold_left
      (fun acc d ->
        if Sys.file_exists (Filename.concat root d) then walk ~root d acc
        else acc)
      [] dirs
  in
  lint_files ~root ~baseline files

(* ------------------------------------------------------------------ *)
(* Merging the typed stage *)

(* Typed-stage violations (R7/R8/R9 from .cmt files) join the report
   through the same suppression and baseline machinery as syntactic
   findings; anything pointing at a file outside the scanned set
   (generated modules, stale cmts) is dropped. *)
let merge_typed r ~baseline typed_vs =
  let scanned = List.sort_uniq String.compare r.files in
  let in_scope (v : Rule.violation) = List.mem v.file scanned in
  let by_file = Hashtbl.create 16 in
  List.iter
    (fun (v : Rule.violation) ->
      if in_scope v then
        Hashtbl.replace by_file v.file
          (v :: Option.value ~default:[] (Hashtbl.find_opt by_file v.file)))
    typed_vs;
  let extra =
    List.concat_map
      (fun file ->
        match Hashtbl.find_opt by_file file with
        | None -> []
        | Some vs ->
            let contents = read_file (Filename.concat r.root file) in
            statuses ~baseline contents vs)
      scanned
  in
  let findings =
    List.sort_uniq
      (fun ((a : Rule.violation), sa) (b, sb) ->
        let c = Rule.compare_violation a b in
        if c <> 0 then c else compare sa sb)
      (r.findings @ extra)
  in
  { r with findings }

(* ------------------------------------------------------------------ *)
(* Output *)

let active r = List.filter_map (function v, Active -> Some v | _ -> None) r.findings

let errors r =
  List.filter (fun (v : Rule.violation) -> v.severity = Error) (active r)

let warnings r =
  List.filter (fun (v : Rule.violation) -> v.severity = Warning) (active r)

let count st r = List.length (List.filter (fun (_, s) -> s = st) r.findings)

let finding_json ((v : Rule.violation), status) =
  Mk_engine.Json.Obj
    [
      ("rule", Mk_engine.Json.String (Rule.id_to_string v.rule));
      ("severity", Mk_engine.Json.String (Rule.severity_to_string v.severity));
      ("file", Mk_engine.Json.String v.file);
      ("line", Mk_engine.Json.Int v.line);
      ("col", Mk_engine.Json.Int v.col);
      ("status", Mk_engine.Json.String (status_to_string status));
      ("message", Mk_engine.Json.String v.message);
    ]

let to_json r =
  Mk_engine.Json.Obj
    [
      ("schema", Mk_engine.Json.String "mklint/1");
      ("files", Mk_engine.Json.Int (List.length r.files));
      ("errors", Mk_engine.Json.Int (List.length (errors r)));
      ("warnings", Mk_engine.Json.Int (List.length (warnings r)));
      ("suppressed", Mk_engine.Json.Int (count Suppressed r));
      ("baselined", Mk_engine.Json.Int (count Baselined r));
      ("findings", Mk_engine.Json.List (List.map finding_json r.findings));
    ]

(* SARIF 2.1.0 — the interchange schema GitHub code scanning and most
   diff annotators consume.  Findings map 1:1; suppressed findings get
   a SARIF suppression of kind "inSource", baselined ones "external",
   so downstream tooling agrees with --ci about what is actionable. *)
let to_sarif r =
  let open Mk_engine.Json in
  let rule_descriptor id =
    Obj
      [
        ("id", String (Rule.id_to_string id));
        ("shortDescription", Obj [ ("text", String (Rule.title id)) ]);
        ("fullDescription", Obj [ ("text", String (Rule.hazard id)) ]);
      ]
  in
  let result ((v : Rule.violation), status) =
    let suppressions =
      match status with
      | Active -> []
      | Suppressed ->
          [ ("suppressions", List [ Obj [ ("kind", String "inSource") ] ]) ]
      | Baselined ->
          [ ("suppressions", List [ Obj [ ("kind", String "external") ] ]) ]
    in
    Obj
      ([
         ("ruleId", String (Rule.id_to_string v.rule));
         ("level", String (Rule.severity_to_string v.severity));
         ("message", Obj [ ("text", String v.message) ]);
         ( "locations",
           List
             [
               Obj
                 [
                   ( "physicalLocation",
                     Obj
                       [
                         ("artifactLocation", Obj [ ("uri", String v.file) ]);
                         ( "region",
                           Obj
                             [
                               ("startLine", Int v.line);
                               ("startColumn", Int (v.col + 1));
                             ] );
                       ] );
                 ];
             ] );
       ]
      @ suppressions)
  in
  Obj
    [
      ("$schema", String "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", String "2.1.0");
      ( "runs",
        List
          [
            Obj
              [
                ( "tool",
                  Obj
                    [
                      ( "driver",
                        Obj
                          [
                            ("name", String "mklint");
                            ("version", String "2.0.0");
                            ( "rules",
                              List
                                (List.map rule_descriptor
                                   (Rule.Parse :: Rule.all)) );
                          ] );
                    ] );
                ("results", List (List.map result r.findings));
              ];
          ] );
    ]

let render r =
  let b = Buffer.create 512 in
  List.iter
    (fun ((v : Rule.violation), status) ->
      Buffer.add_string b
        (Printf.sprintf "%s:%d:%d: [%s/%s] %s%s\n" v.file v.line v.col
           (Rule.id_to_string v.rule)
           (Rule.severity_to_string v.severity)
           v.message
           (match status with
           | Active -> ""
           | Suppressed -> " (suppressed)"
           | Baselined -> " (baselined)")))
    r.findings;
  Buffer.add_string b
    (Printf.sprintf
       "mklint: %d files scanned — %d errors, %d warnings (%d suppressed, %d \
        baselined)\n"
       (List.length r.files)
       (List.length (errors r))
       (List.length (warnings r))
       (count Suppressed r) (count Baselined r));
  Buffer.contents b
