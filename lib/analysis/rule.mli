(** Rule identities, severities and violations for mklint.

    Each rule targets a concrete hazard class for a deterministic
    multi-kernel simulation: wall-clock reads, ambient randomness,
    order-leaking hash iteration, cross-domain mutable globals and
    stray stdout writes.  The full catalogue with rationale lives in
    docs/STATIC_ANALYSIS.md. *)

type severity = Error | Warning

type id =
  | Parse  (** a file that does not parse cannot be vouched for *)
  | R1  (** wall-clock reads inside simulation code *)
  | R2  (** ambient [Random.*] instead of the seeded splittable PRNG *)
  | R3  (** [Hashtbl.iter]/[fold] where iteration order can leak *)
  | R4  (** top-level mutable state reachable from pool workers *)
  | R5  (** direct stdout printing outside the report layer *)
  | R6  (** [lib/] module without an [.mli] interface *)
  | R7  (** typed re-check of R1/R2/R3/R5 on alias-resolved [Path.t]s *)
  | R8  (** mutable state escaping into closures run on worker domains *)
  | R9  (** hashtable mutated from inside its own [iter]/[fold] *)

val all : id list
(** The lintable rules, [R1]..[R9] (excludes [Parse]).  [R1]..[R6]
    are syntactic (parsetree) rules; [R7]..[R9] belong to the typed
    ([.cmt]-based) stage — see {!Typed_lint}. *)

val id_to_string : id -> string
val id_of_string : string -> id option
(** Case-insensitive; accepts ["R3"], ["r3"], ["parse"]. *)

val severity_to_string : severity -> string

val title : id -> string
(** Short headline, e.g. ["no wall-clock reads in simulation code"]. *)

val hazard : id -> string
(** One-line statement of the bug class the rule prevents. *)

type violation = {
  rule : id;
  severity : severity;
  file : string;  (** root-relative, ['/']-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler locations *)
  message : string;
}

val compare_violation : violation -> violation -> int
(** Total order by (file, line, col, rule, message): the order every
    report is emitted in, so output never depends on scan order. *)
