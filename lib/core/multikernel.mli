(** Multikernel — lightweight multi-kernel operating systems,
    simulated.

    An OCaml reproduction of {e Performance and Scalability of
    Lightweight Multi-Kernel based Operating Systems} (IPDPS 2018):
    executable models of Linux, IHK/McKernel and mOS over shared
    hardware, memory, scheduling, noise, system-call and interconnect
    substrates, plus the paper's eight applications and its full
    experiment suite.

    {1 Quick start}

    {[
      (* Boot the three kernels, run HPCG on 64 nodes, compare. *)
      let app = Option.get (Multikernel.find_app "hpcg") in
      List.iter
        (fun scenario ->
          let r = Multikernel.run ~scenario ~app ~nodes:64 () in
          Format.printf "%-10s %.4g %s@."
            scenario.Multikernel.Cluster.Scenario.label
            r.Multikernel.Cluster.Driver.fom app.Multikernel.Apps.App.fom_unit)
        Multikernel.scenarios
    ]}

    {1 Layers}

    - {!Engine}: deterministic simulation core (PRNG, events, stats).
    - {!Hw}: KNL node model — cores, SNC-4 NUMA, MCDRAM/DDR4.
    - {!Mem}: buddy allocator, address spaces, page faults, policies.
    - {!Proc}, {!Sched}, {!Noise}, {!Syscall}, {!Ikc}: the kernel
      substrates.
    - {!Kernel}: the three OS models and the node workload DES.
    - {!Fabric}, {!Mpi}: Omni-Path-like interconnect and MPI runtime.
    - {!Apps}: the eight application models.
    - {!Cluster}: the 2,048-node experiment driver.
    - {!Compat}: the LTP-like compatibility corpus.
    - {!Fault}: deterministic fault injection (docs/FAULTS.md).
    - {!Analysis}: determinism helpers shared with the mklint static
      checker (docs/STATIC_ANALYSIS.md), e.g. sorted hash-table views.
    - {!Obs}: deterministic metrics and tracing with Perfetto export
      (docs/OBSERVABILITY.md). *)

module Engine = Mk_engine
module Hw = Mk_hw
module Mem = Mk_mem
module Proc = Mk_proc
module Sched = Mk_sched
module Noise = Mk_noise
module Syscall = Mk_syscall
module Ikc = Mk_ikc
module Kernel = Mk_kernel
module Fabric = Mk_fabric
module Mpi = Mk_mpi
module Apps = Mk_apps
module Cluster = Mk_cluster
module Compat = Mk_compat
module Fault = Mk_fault
module Analysis = Mk_analysis
module Obs = Mk_obs

val version : string

(** {1 Convenience} *)

val scenarios : Cluster.Scenario.t list
(** McKernel, mOS, Linux. *)

val find_app : string -> Apps.App.t option
val app_names : string list

val run :
  scenario:Cluster.Scenario.t ->
  app:Apps.App.t ->
  nodes:int ->
  ?seed:int ->
  unit ->
  Cluster.Driver.result
(** One run with the default seed. *)

val compare_at :
  app:Apps.App.t -> nodes:int -> ?seed:int -> unit ->
  (string * Cluster.Driver.result) list
(** All three kernels at one node count. *)
