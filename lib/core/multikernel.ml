module Engine = Mk_engine
module Hw = Mk_hw
module Mem = Mk_mem
module Proc = Mk_proc
module Sched = Mk_sched
module Noise = Mk_noise
module Syscall = Mk_syscall
module Ikc = Mk_ikc
module Kernel = Mk_kernel
module Fabric = Mk_fabric
module Mpi = Mk_mpi
module Apps = Mk_apps
module Cluster = Mk_cluster
module Compat = Mk_compat
module Fault = Mk_fault
module Analysis = Mk_analysis
module Obs = Mk_obs

let version = "1.0.0"

let scenarios = Mk_cluster.Scenario.trio

let find_app = Mk_apps.Registry.find
let app_names = Mk_apps.Registry.names

let run ~scenario ~app ~nodes ?(seed = 42) () =
  Mk_cluster.Driver.run ~scenario ~app ~nodes ~seed ()

let compare_at ~app ~nodes ?(seed = 42) () =
  List.map
    (fun scenario ->
      (scenario.Mk_cluster.Scenario.label, run ~scenario ~app ~nodes ~seed ()))
    scenarios
