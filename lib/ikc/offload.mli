(** The two system-call offloading mechanisms.

    {b Proxy} (IHK/McKernel): the LWK marshals the call into an IKC
    message; the Linux-side proxy process wakes, executes the call
    with full Linux context and replies.  Costs two IKC traversals, a
    proxy wake-up and the Linux-side execution.

    {b Thread migration} (mOS): "System call offloading is …
    implemented by migrating the issuer thread into Linux, executing
    the system call and migrating the thread back" (Section II-C).
    Costs two scheduler hand-offs plus a cache-refill penalty, but no
    message marshalling and no second process.

    Both add microseconds on top of a native call — harmless for the
    rare open/stat, and exactly the penalty LAMMPS exposes when the
    Omni-Path control path issues device-file system calls on every
    communication-heavy timestep (Section IV). *)

type mechanism =
  | Proxy of { wakeup : Mk_engine.Units.time }
  | Migration of {
      handoff : Mk_engine.Units.time;  (** one scheduler hand-off *)
      cache_penalty : Mk_engine.Units.time;
          (** cold caches after returning to the LWK core *)
    }

val default_proxy : mechanism
val default_migration : mechanism

type stats = {
  mutable offloads : int;
  mutable transport_time : Mk_engine.Units.time;
  mutable execution_time : Mk_engine.Units.time;
}

type t

val make : mechanism -> router:Router.t -> t
val stats : t -> stats
val mechanism : t -> mechanism

val cost :
  t ->
  lwk_core:Mk_hw.Topology.core ->
  sysno:Mk_syscall.Sysno.t ->
  ?payload:int ->
  unit ->
  Mk_engine.Units.time
(** Full latency of offloading [sysno] from [lwk_core]: transport +
    Linux-side execution ({!Mk_syscall.Cost.local}) + return. *)

val overhead :
  t -> lwk_core:Mk_hw.Topology.core -> ?payload:int -> unit -> Mk_engine.Units.time
(** Transport-only part: what the offload adds over a native call. *)

val respawn_cost : mechanism -> Mk_engine.Units.time
(** One-time cost of restoring the offload service after its
    Linux-side context dies: fork + attach of a fresh proxy process
    for {!Proxy} (milliseconds); one scheduler hand-off to re-arm the
    migration target for {!Migration}. *)

val failover_cost : mechanism -> Mk_engine.Units.time
(** Per-offload surcharge once the preferred Linux target core is
    lost and requests detour to the next NUMA-matched core: a
    rerouted IKC channel for {!Proxy}, an extra hand-off plus colder
    caches for {!Migration}. *)
