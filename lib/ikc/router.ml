type t = {
  topo : Mk_hw.Topology.t;
  linux_cores : Mk_hw.Topology.core list;
  channels : (Mk_hw.Topology.core, Channel.t) Hashtbl.t;
}

let make ~topo ~linux_cores =
  if linux_cores = [] then invalid_arg "Router.make: no Linux cores";
  { topo; linux_cores; channels = Hashtbl.create 64 }

let linux_target t ~lwk_core =
  let quadrant = Mk_hw.Topology.quadrant_of_core t.topo lwk_core in
  match
    List.find_opt
      (fun c -> Mk_hw.Topology.quadrant_of_core t.topo c = quadrant)
      t.linux_cores
  with
  | Some c -> c
  | None ->
      (* Round-robin by LWK core id keeps the load spread and the
         choice deterministic. *)
      List.nth t.linux_cores (lwk_core mod List.length t.linux_cores)

let channel t ~lwk_core =
  match Hashtbl.find_opt t.channels lwk_core with
  | Some ch -> ch
  | None ->
      let linux_core = linux_target t ~lwk_core in
      let ch = Channel.make ~topo:t.topo ~lwk_core ~linux_core in
      Hashtbl.replace t.channels lwk_core ch;
      ch

let total_messages t =
  (* mklint: allow R3 — integer sum, order-independent. *)
  Hashtbl.fold (fun _ ch acc -> acc + ch.Channel.messages) t.channels 0

let linux_cores t = t.linux_cores
