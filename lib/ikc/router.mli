(** Topology-aware routing from LWK cores to Linux cores.

    Both kernels route offloads NUMA-aware: "mOS follows a NUMA aware
    mapping from LWK to Linux cores when thread migration is
    performed" and IKC "understands the underlying topology"
    (Section II-D1).  The router picks, for each LWK core, the Linux
    core in the same quadrant when one exists, falling back to
    round-robin over all Linux cores. *)

type t

val make :
  topo:Mk_hw.Topology.t -> linux_cores:Mk_hw.Topology.core list -> t

val linux_target : t -> lwk_core:Mk_hw.Topology.core -> Mk_hw.Topology.core
(** Preferred Linux core for offloads issued from [lwk_core]. *)

val channel : t -> lwk_core:Mk_hw.Topology.core -> Channel.t
(** The (cached) channel for that route. *)

val total_messages : t -> int
val linux_cores : t -> Mk_hw.Topology.core list
