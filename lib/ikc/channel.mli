(** Inter-Kernel Communication message channels.

    IHK "provides an Inter-Kernel Communication (IKC) layer, upon
    which system call offloading is implemented" (Section II-B), and
    "IKC … understands the underlying topology to perform efficient
    message delivery between the two kernels" (Section II-D1).  A
    channel connects one LWK core to one Linux core; message latency
    depends on whether the two live in the same quadrant (shared L2
    mesh locality). *)

type t = {
  lwk_core : Mk_hw.Topology.core;
  linux_core : Mk_hw.Topology.core;
  same_quadrant : bool;
  mutable messages : int;
  mutable bytes : int;
}

val make :
  topo:Mk_hw.Topology.t ->
  lwk_core:Mk_hw.Topology.core ->
  linux_core:Mk_hw.Topology.core ->
  t

val latency : t -> payload:int -> Mk_engine.Units.time
(** One-way message latency: cache-line ping-pong across the mesh
    plus payload transfer.  Cross-quadrant routes pay extra hops. *)

val send : t -> payload:int -> Mk_engine.Units.time
(** [latency] plus accounting. *)
