type t = {
  lwk_core : Mk_hw.Topology.core;
  linux_core : Mk_hw.Topology.core;
  same_quadrant : bool;
  mutable messages : int;
  mutable bytes : int;
}

let make ~topo ~lwk_core ~linux_core =
  let same_quadrant =
    Mk_hw.Topology.quadrant_of_core topo lwk_core
    = Mk_hw.Topology.quadrant_of_core topo linux_core
  in
  { lwk_core; linux_core; same_quadrant; messages = 0; bytes = 0 }

(* Base one-way latency: a cache-line handoff across the KNL mesh is
   a few hundred nanoseconds; crossing quadrants adds mesh hops.
   Payload moves at roughly L2-to-L2 bandwidth. *)
let base_latency = 400
let cross_quadrant_extra = 250
let payload_bandwidth = 8.0 (* bytes/ns *)

let latency t ~payload =
  let base = base_latency + if t.same_quadrant then 0 else cross_quadrant_extra in
  base + Mk_engine.Units.transfer_time ~bytes:payload ~bw:payload_bandwidth

let send t ~payload =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + payload;
  latency t ~payload
