open Mk_engine

type mechanism =
  | Proxy of { wakeup : Units.time }
  | Migration of { handoff : Units.time; cache_penalty : Units.time }

(* A blocked proxy thread needs an IPI plus a wake-up through the
   Linux scheduler: a couple of microseconds on KNL. *)
let default_proxy = Proxy { wakeup = 2_200 }

(* mOS moves the caller itself: two run-queue hand-offs and a small
   cache refill when it comes back. *)
let default_migration = Migration { handoff = 1_100; cache_penalty = 600 }

type stats = {
  mutable offloads : int;
  mutable transport_time : Units.time;
  mutable execution_time : Units.time;
}

type t = { mechanism : mechanism; router : Router.t; stats : stats }

let make mechanism ~router =
  { mechanism; router; stats = { offloads = 0; transport_time = 0; execution_time = 0 } }

let stats t = t.stats
let mechanism t = t.mechanism

let transport t ~lwk_core ~payload =
  match t.mechanism with
  | Proxy { wakeup } ->
      (* Only the request descriptor crosses the channel: "the proxy
         process provides execution context on behalf of the
         application" (Section II-B) and maps the LWK memory
         directly, so buffers are accessed in place.  Large buffers
         still pay a remote-cache effect on the Linux side. *)
      let ch = Router.channel t.router ~lwk_core in
      let descriptor = min payload 256 in
      let cache_effect = payload / 50 in
      Channel.send ch ~payload:descriptor + wakeup
      + Channel.send ch ~payload:64 + cache_effect
  | Migration { handoff; cache_penalty } ->
      (* No marshalling at all: the thread itself moves and returns,
         operating on its own memory from the Linux core. *)
      handoff + handoff + cache_penalty

let overhead t ~lwk_core ?(payload = 128) () = transport t ~lwk_core ~payload

(* Recovery pricing, used by the fault layer.  A dead proxy needs a
   fork + address-space attach before any offload can complete again;
   mOS has no proxy, so recovery is just re-arming the migration
   target.  Losing the preferred Linux core costs every subsequent
   offload a detour: a longer hand-off chain on mOS, a rerouted IKC
   channel on McKernel. *)
let respawn_cost = function
  | Proxy _ -> 5_000_000
  | Migration { handoff; _ } -> handoff

let failover_cost = function
  | Proxy _ -> 300
  | Migration { handoff; cache_penalty } -> handoff + cache_penalty

let cost t ~lwk_core ~sysno ?(payload = 128) () =
  let tr = transport t ~lwk_core ~payload in
  let exec = Mk_syscall.Cost.local sysno in
  t.stats.offloads <- t.stats.offloads + 1;
  t.stats.transport_time <- t.stats.transport_time + tr;
  t.stats.execution_time <- t.stats.execution_time + exec;
  (* Proxy round-trips vs. thread migrations: the two offload
     mechanisms Section II-B distinguishes, counted apart so a
     McKernel-vs-mOS comparison can attribute control-path cost. *)
  (match t.mechanism with
  | Proxy _ -> Mk_obs.Hook.count ~subsystem:"ikc" ~name:"proxy_roundtrips" 1
  | Migration _ ->
      Mk_obs.Hook.count ~subsystem:"ikc" ~name:"thread_migrations" 1);
  Mk_obs.Hook.count ~subsystem:"ikc" ~name:"transport_ns" tr;
  tr + exec
