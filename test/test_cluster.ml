(* Integration tests for the cluster driver: the paper's headline
   behaviours must emerge from the mechanisms.  These run real
   (small) experiments, so a few are marked `Slow. *)

open Mk_cluster

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let app name = Option.get (Mk_apps.Registry.find name)

let run ?(nodes = 4) ?(seed = 42) scenario name =
  Driver.run ~scenario ~app:(app name) ~nodes ~seed ()

let test_scenarios () =
  check_int "three scenarios" 3 (List.length Scenario.trio);
  check_bool "find linux" true (Scenario.find "linux" <> None);
  check_bool "find mckernel" true (Scenario.find "McKernel" <> None);
  check_bool "unknown none" true (Scenario.find "hurd" = None)

let test_run_basics () =
  let r = run Scenario.mckernel "hpcg" in
  check_int "nodes recorded" 4 r.Driver.nodes;
  check_bool "positive fom" true (r.Driver.fom > 0.0);
  check_bool "time decomposition" true
    (r.Driver.total_time = r.Driver.setup_time + r.Driver.solve_time);
  check_int "no failures" 0 r.Driver.failures

let test_determinism () =
  let a = run ~seed:7 Scenario.linux "amg" in
  let b = run ~seed:7 Scenario.linux "amg" in
  check_bool "same seed same fom" true (a.Driver.fom = b.Driver.fom)

let test_seed_sensitivity () =
  let a = run ~seed:7 Scenario.linux "amg" in
  let b = run ~seed:8 Scenario.linux "amg" in
  check_bool "different seeds differ" true (a.Driver.fom <> b.Driver.fom)

let test_lwks_silent_deterministic_iterations () =
  (* On a noise-free kernel the steady iteration has no jitter. *)
  let r1 = run ~seed:1 Scenario.mckernel "geofem" in
  let r2 = run ~seed:99 Scenario.mckernel "geofem" in
  check_int "steady identical across seeds" r1.Driver.steady_iteration
    r2.Driver.steady_iteration

let test_ccs_qcd_ordering () =
  (* The Figure-5a story: McKernel > mOS > Linux. *)
  let mck = run Scenario.mckernel "ccs-qcd" in
  let mos = run Scenario.mos "ccs-qcd" in
  let linux = run Scenario.linux "ccs-qcd" in
  check_bool "mckernel beats mos" true (mck.Driver.fom > mos.Driver.fom);
  check_bool "mos beats linux" true (mos.Driver.fom > linux.Driver.fom);
  check_bool "linux stuck in ddr" true (linux.Driver.mcdram_fraction < 0.05);
  check_bool "lwk spill fraction ~16/22" true
    (mck.Driver.mcdram_fraction > 0.6 && mck.Driver.mcdram_fraction < 0.85)

let test_linux_faults_lwk_prefaults () =
  let linux = run Scenario.linux "hpcg" in
  check_bool "linux demand faults" true (linux.Driver.faults > 0);
  (* The LWK prefaults everything except the shared-memory windows
     (which are first-touch by nature); with --mpol-shm-premap even
     those are populated upfront, leaving nothing to fault. *)
  let premapped =
    Driver.run
      ~scenario:
        (Scenario.mckernel_with
           { Mk_kernel.Os.default_options with Mk_kernel.Os.mpol_shm_premap = true }
           ~label:"mck-premap")
      ~app:(app "hpcg") ~nodes:4 ~seed:42 ()
  in
  check_int "premapped lwk never faults" 0 premapped.Driver.faults

let test_lammps_offloads () =
  let mck = run ~nodes:16 Scenario.mckernel "lammps" in
  let linux = run ~nodes:16 Scenario.linux "lammps" in
  check_bool "lwk offloads nic control" true (mck.Driver.offloads_per_iteration > 0);
  check_int "linux has none" 0 linux.Driver.offloads_per_iteration;
  check_bool "linux wins at scale" true (linux.Driver.fom > mck.Driver.fom)

let test_minife_collapse_at_scale () =
  (* The Figure-5b knee, in miniature: the Linux-to-LWK gap widens
     by scale even between 64 and 512 nodes. *)
  let gap nodes =
    let mck = run ~nodes Scenario.mckernel "minife" in
    let linux = run ~nodes Scenario.linux "minife" in
    mck.Driver.fom /. linux.Driver.fom
  in
  let small = gap 64 and large = gap 512 in
  check_bool "gap grows with scale" true (large > small);
  check_bool "meaningful collapse" true (large > 2.0)

let test_lulesh_brk_mechanism () =
  let mos = run ~nodes:8 Scenario.mos "lulesh" in
  let heap_off =
    Driver.run
      ~scenario:
        (Scenario.mos_with
           { Mk_kernel.Os.default_options with Mk_kernel.Os.heap_management = false }
           ~label:"mos-heap-off")
      ~app:(app "lulesh") ~nodes:8 ~seed:42 ()
  in
  check_bool "heap optimisation pays" true (mos.Driver.fom > heap_off.Driver.fom)

let test_experiment_point_statistics () =
  let p =
    Experiment.point ~scenario:Scenario.linux ~app:(app "amg") ~nodes:8 ~runs:5 ()
  in
  check_bool "ordered statistics" true
    (p.Experiment.min_fom <= p.Experiment.median_fom
    && p.Experiment.median_fom <= p.Experiment.max_fom);
  check_int "nodes carried" 8 p.Experiment.nodes

let test_relative_to () =
  let a = app "amg" in
  let counts = [ 1; 4 ] in
  let lin = Experiment.sweep ~scenario:Scenario.linux ~app:a ~node_counts:counts ~runs:3 () in
  let mck = Experiment.sweep ~scenario:Scenario.mckernel ~app:a ~node_counts:counts ~runs:3 () in
  let rel = Experiment.relative_to ~baseline:lin mck in
  check_int "two points" 2 (List.length rel);
  List.iter (fun (_, r) -> check_bool "lwk at or above" true (r > 0.9)) rel

let test_median_improvement () =
  let data = [ [ (1, 1.0); (2, 1.2) ]; [ (1, 1.1) ] ] in
  Alcotest.(check (float 1e-9)) "median" 1.1 (Experiment.median_improvement data);
  Alcotest.(check (float 1e-9)) "best" 1.2 (Experiment.best_improvement data)


let test_calibration_relations () =
  (* The relationships the results rest on, without freezing every
     number: MCDRAM is 4-6x DDR4; LWK switches are cheaper than CFS;
     offload wake-ups are microseconds. *)
  let ratio = Calibration.mcdram_ddr_ratio () in
  check_bool "mcdram/ddr ratio in band" true (ratio > 4.0 && ratio < 6.5);
  check_bool "every constant positive" true
    (List.for_all (fun r -> r.Calibration.value >= 0.0) Calibration.all);
  check_bool "lookup works" true (Calibration.find "fault-trap" <> None);
  check_bool "unknown is none" true (Calibration.find "warp-drive" = None);
  check_bool "table renders" true (String.length (Calibration.table ()) > 200)

let test_table1_ordering () =
  (* Table I in miniature: everyone in DDR4, heap ablation ordering. *)
  let lulesh = app "lulesh" in
  let ddr (s : Scenario.t) =
    {
      s with
      Scenario.make =
        (fun () ->
          let os = s.Scenario.make () in
          {
            os with
            Mk_kernel.Os.default_policy =
              (fun ~home -> Mk_mem.Policy.Ddr_only { home });
          });
    }
  in
  let fom s app = (Driver.run ~scenario:s ~app ~nodes:1 ~seed:42 ()).Driver.fom in
  let linux = fom (ddr Scenario.linux) { lulesh with Mk_apps.App.linux_ddr_only = true } in
  let heap_off =
    fom
      (ddr
         (Scenario.mos_with
            { Mk_kernel.Os.default_options with Mk_kernel.Os.heap_management = false }
            ~label:"off"))
      lulesh
  in
  let mos = fom (ddr Scenario.mos) lulesh in
  check_bool "mos > heap-off" true (mos > heap_off);
  check_bool "heap-off > linux" true (heap_off > linux);
  check_bool "mos within paper band (110-135% of linux)" true
    (mos /. linux > 1.10 && mos /. linux < 1.35)

let test_quadrant_mode_rescues_linux () =
  (* The MODES ablation: Linux in quadrant mode spills to MCDRAM. *)
  let a = { (app "ccs-qcd") with Mk_apps.App.linux_ddr_only = false } in
  let quadrant =
    {
      Scenario.label = "Linux-quadrant";
      make = (fun () -> Mk_kernel.Linux_os.create ~mode:Mk_hw.Knl.Quadrant_flat ());
    }
  in
  let snc4 = Driver.run ~scenario:Scenario.linux ~app:(app "ccs-qcd") ~nodes:4 ~seed:42 () in
  let quad = Driver.run ~scenario:quadrant ~app:a ~nodes:4 ~seed:42 () in
  check_bool "quadrant linux uses mcdram" true (quad.Driver.mcdram_fraction > 0.5);
  check_bool "quadrant linux faster" true (quad.Driver.fom > snc4.Driver.fom)

let test_isolation_property () =
  (* LWKs do not feel a co-located tenant; Linux does. *)
  let a = app "geofem" in
  let noisy (s : Scenario.t) =
    {
      s with
      Scenario.make =
        (fun () ->
          let os = s.Scenario.make () in
          if Mk_kernel.Os.is_lwk os then os
          else { os with Mk_kernel.Os.app_noise = Mk_noise.Profile.linux_cotenant });
    }
  in
  let fom s = (Driver.run ~scenario:s ~app:a ~nodes:16 ~seed:42 ()).Driver.fom in
  let mck = fom Scenario.mckernel and mck_shared = fom (noisy Scenario.mckernel) in
  let linux = fom Scenario.linux and linux_shared = fom (noisy Scenario.linux) in
  check_bool "lwk unaffected" true (mck_shared = mck);
  check_bool "linux degraded" true (linux_shared < linux *. 0.9)


(* ------------------------------------------------------------------ *)
(* Cross-validation: event-driven vs analytic cluster tier *)

let des_params ~nodes ~profile ~seed =
  let fabric = Mk_fabric.Fabric.make ~nodes () in
  let des =
    Cluster_des.allreduce_loop ~nodes ~ranks_per_node:64 ~threads_per_rank:1
      ~window:(2 * Mk_engine.Units.ms) ~iterations:10 ~bytes:8 ~profile ~fabric
      ~seed
  in
  let analytic =
    Cluster_des.analytic_allreduce_loop ~nodes ~ranks_per_node:64
      ~threads_per_rank:1 ~window:(2 * Mk_engine.Units.ms) ~iterations:10 ~bytes:8
      ~profile ~fabric ~seed
  in
  (des, analytic)

let test_des_matches_analytic_silent () =
  (* Same trees, same edge costs, zero noise: the event-driven and the
     max-plus formulations must agree exactly. *)
  List.iter
    (fun nodes ->
      let des, analytic = des_params ~nodes ~profile:Mk_noise.Profile.silent ~seed:1 in
      check_int
        (Printf.sprintf "exact at %d nodes" nodes)
        analytic des.Cluster_des.completion)
    [ 1; 2; 7; 16; 64; 100 ]

let test_des_matches_analytic_noisy () =
  (* With noise the two draw identical per-node samples (same split
     streams), so they still agree exactly on the composed time. *)
  let des, analytic =
    des_params ~nodes:32 ~profile:Mk_noise.Profile.linux_nohz_full ~seed:42
  in
  check_int "noisy agreement" analytic des.Cluster_des.completion

let test_des_message_count () =
  let des, _ = des_params ~nodes:16 ~profile:Mk_noise.Profile.silent ~seed:1 in
  (* Binomial reduce + broadcast over 16 nodes: 2*15 messages per
     iteration, 10 iterations. *)
  check_int "messages" (2 * 15 * 10) des.Cluster_des.messages

(* ------------------------------------------------------------------ *)
(* Sharded parallel DES: byte-identity with the single-heap run *)

let des_window = 2 * Mk_engine.Units.ms

let des_serial ~nodes ~profile ~seed ~iterations =
  let fabric = Mk_fabric.Fabric.make ~nodes () in
  Cluster_des.allreduce_loop ~nodes ~ranks_per_node:64 ~threads_per_rank:1
    ~window:des_window ~iterations ~bytes:8 ~profile ~fabric ~seed

let des_sharded ?pool ?fast_forward ~shards ~nodes ~profile ~seed ~iterations
    () =
  let fabric = Mk_fabric.Fabric.make ~nodes () in
  Cluster_des.sharded_allreduce_loop ?pool ?fast_forward ~shards ~nodes
    ~ranks_per_node:64 ~threads_per_rank:1 ~window:des_window ~iterations
    ~bytes:8 ~profile ~fabric ~seed ()

let check_des_result name (a : Cluster_des.result) (b : Cluster_des.result) =
  check_int (name ^ ": completion") a.Cluster_des.completion
    b.Cluster_des.completion;
  check_int (name ^ ": messages") a.Cluster_des.messages b.Cluster_des.messages

let test_des_sharded_identity () =
  (* 100 nodes span 5 fabric regions (24-node edge switches), so 2, 4
     and 8 shards all see real cross-shard traffic. *)
  List.iter
    (fun profile ->
      List.iter
        (fun nodes ->
          let serial = des_serial ~nodes ~profile ~seed:3 ~iterations:4 in
          List.iter
            (fun shards ->
              let sharded, _ =
                des_sharded ~shards ~nodes ~profile ~seed:3 ~iterations:4 ()
              in
              check_des_result
                (Printf.sprintf "%d nodes, %d shards" nodes shards)
                serial sharded)
            [ 1; 2; 4; 8 ])
        [ 1; 16; 60; 100 ])
    [ Mk_noise.Profile.silent; Mk_noise.Profile.linux_nohz_full ]

let test_des_sharded_every_scenario () =
  (* The acceptance bar: for every OS scenario in the suite, the
     sharded DES reproduces the single-heap DES bit for bit. *)
  List.iter
    (fun (sc : Scenario.t) ->
      let os = sc.Scenario.make () in
      let profile = os.Mk_kernel.Os.app_noise in
      let serial = des_serial ~nodes:100 ~profile ~seed:11 ~iterations:5 in
      List.iter
        (fun shards ->
          let sharded, _ =
            des_sharded ~shards ~nodes:100 ~profile ~seed:11 ~iterations:5 ()
          in
          check_des_result
            (Printf.sprintf "%s with %d shards" sc.Scenario.label shards)
            serial sharded)
        [ 2; 5 ])
    Scenario.trio

let test_des_sharded_crossings () =
  (* Sanity that the identity above is not vacuous: multi-region runs
     must actually exchange cross-shard messages and null promises. *)
  let _, s =
    des_sharded ~shards:4 ~nodes:100 ~profile:Mk_noise.Profile.silent ~seed:3
      ~fast_forward:false ~iterations:3 ()
  in
  check_bool "cross traffic" true (s.Cluster_des.cross_messages > 0);
  check_bool "null messages" true (s.Cluster_des.null_messages > 0);
  check_bool "events" true (s.Cluster_des.shard_events > 0);
  check_bool "epochs" true (s.Cluster_des.epochs > 0)

let test_des_fast_forward_equivalence () =
  (* Closed-form advancement must be unobservable in the result, and
     must actually engage: a silent 40-iteration run simulates only
     the first two iterations event by event. *)
  List.iter
    (fun nodes ->
      let replay, rs =
        des_sharded ~shards:4 ~nodes ~profile:Mk_noise.Profile.silent ~seed:5
          ~fast_forward:false ~iterations:40 ()
      in
      let ff, fs =
        des_sharded ~shards:4 ~nodes ~profile:Mk_noise.Profile.silent ~seed:5
          ~iterations:40 ()
      in
      check_des_result (Printf.sprintf "ff at %d nodes" nodes) replay ff;
      check_int
        (Printf.sprintf "38 of 40 iterations skipped at %d nodes" nodes)
        38 fs.Cluster_des.fast_forwarded;
      check_bool "fewer events" true
        (fs.Cluster_des.shard_events < rs.Cluster_des.shard_events);
      (* serial reference too, for completeness *)
      check_des_result "ff vs serial"
        (des_serial ~nodes ~profile:Mk_noise.Profile.silent ~seed:5
           ~iterations:40)
        ff)
    [ 30; 100 ];
  (* noise defeats the periodicity test, so nothing may be skipped *)
  let _, ns =
    des_sharded ~shards:4 ~nodes:30 ~profile:Mk_noise.Profile.linux_nohz_full
      ~seed:5 ~iterations:6 ()
  in
  check_int "no skip under noise" 0 ns.Cluster_des.fast_forwarded

let test_des_sharded_pool_identity () =
  (* Real cross-domain execution: results and the deterministic stats
     must match the in-process sequential sharded run exactly. *)
  let profile = Mk_noise.Profile.linux_nohz_full in
  let seq, seq_s =
    des_sharded ~shards:4 ~nodes:100 ~profile ~seed:9 ~iterations:4 ()
  in
  let pool = Mk_engine.Pool.create ~oversubscribe:true ~num_domains:4 () in
  let par, par_s =
    des_sharded ~pool ~shards:4 ~nodes:100 ~profile ~seed:9 ~iterations:4 ()
  in
  Mk_engine.Pool.shutdown pool;
  check_des_result "pool vs sequential" seq par;
  check_bool "stats identical" true (seq_s = par_s)

let des_shard_invariance_q =
  QCheck.Test.make ~name:"sharded DES = single-heap DES, any shard count"
    ~count:25
    QCheck.(
      triple (int_range 1 120) (int_range 0 1000) (int_range 1 3))
    (fun (nodes, seed, iterations) ->
      let profile =
        (* alternate profiles with the seed so both paths are covered *)
        if seed mod 2 = 0 then Mk_noise.Profile.silent
        else Mk_noise.Profile.mos_lwk
      in
      let serial = des_serial ~nodes ~profile ~seed ~iterations in
      List.for_all
        (fun shards ->
          let sharded, _ =
            des_sharded ~shards ~nodes ~profile ~seed ~iterations ()
          in
          sharded = serial)
        [ 1; 2; 4; 8 ])

let test_parallel_matches_sequential () =
  (* The determinism contract of docs/PARALLELISM.md: fanning a sweep
     out across domains must not change one byte of any rendering. *)
  let a = app "amg" in
  let counts = [ 1; 2 ] in
  let sweep ?pool () =
    Experiment.compare_scenarios ?pool ~scenarios:Scenario.trio ~app:a
      ~node_counts:counts ~runs:3 ()
  in
  let seq = sweep () in
  let pool = Mk_engine.Pool.create ~oversubscribe:true ~num_domains:3 () in
  let par = sweep ~pool () in
  Mk_engine.Pool.shutdown pool;
  Alcotest.(check string)
    "csv byte-identical" (Report.csv ~app:a seq) (Report.csv ~app:a par);
  Alcotest.(check string)
    "json byte-identical"
    (Mk_engine.Json.to_string (Report.json ~app:a seq))
    (Mk_engine.Json.to_string (Report.json ~app:a par));
  Alcotest.(check string)
    "table byte-identical"
    (Report.fom_table ~app:a seq)
    (Report.fom_table ~app:a par)

let test_suite_views () =
  let a = app "amg" in
  let series =
    Experiment.compare_scenarios ~scenarios:Scenario.trio ~app:a
      ~node_counts:[ 1; 4 ] ~runs:3 ()
  in
  let suite = [ (a, series) ] in
  (match Report.suite_headline suite with
  | [ (l1, m1, b1); (l2, m2, b2) ] ->
      Alcotest.(check string) "first label" "McKernel" l1;
      Alcotest.(check string) "second label" "mOS" l2;
      check_bool "mck median sane" true (m1 > 0.5 && m1 < 3.0);
      check_bool "mos median sane" true (m2 > 0.5 && m2 < 3.0);
      check_bool "best >= median" true (b1 >= m1 && b2 >= m2)
  | _ -> Alcotest.fail "expected two LWK headline entries");
  let table = Report.suite_table suite in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "table renders headline" true
    (String.length table > 50 && contains table "median improvement");
  match Report.suite_json ~runs:3 ~seed:42 suite with
  | Mk_engine.Json.Obj fields ->
      check_bool "schema tagged" true
        (List.assoc "schema" fields = Mk_engine.Json.String "multikernel-suite/1");
      check_bool "headline present" true (List.mem_assoc "headline" fields);
      check_bool "apps present" true (List.mem_assoc "apps" fields)
  | _ -> Alcotest.fail "suite_json must be an object"

let test_report_renders () =
  let a = app "amg" in
  let series =
    Experiment.compare_scenarios ~scenarios:Scenario.trio ~app:a ~node_counts:[ 1; 2 ]
      ~runs:3 ()
  in
  let baseline =
    List.find
      (fun (s : Experiment.series) -> s.Experiment.scenario_label = "Linux")
      series
  in
  check_bool "fom table renders" true
    (String.length (Report.fom_table ~app:a series) > 50);
  check_bool "relative table renders" true
    (String.length (Report.relative_table ~app:a ~baseline series) > 50);
  check_bool "chart renders" true
    (String.length (Report.relative_chart ~app:a ~baseline series) > 50);
  check_bool "csv renders" true (String.length (Report.csv ~app:a series) > 50)

(* ------------------------------------------------------------------ *)
(* CLI argument validation (one-line errors, valid choices listed)     *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let err = function
  | Error m ->
      check_bool "single line" false (String.contains m '\n');
      m
  | Ok _ -> Alcotest.fail "expected a validation error"

let test_validate_app () =
  (match Validate.app "HPCG" with
  | Ok a -> Alcotest.(check string) "found" "HPCG" a.Mk_apps.App.name
  | Error m -> Alcotest.fail m);
  let m = err (Validate.app "doom") in
  check_bool "names the input" true (contains m "doom");
  check_bool "lists choices" true (contains m "MiniFE")

let test_validate_scenario () =
  check_bool "mckernel ok" true (Result.is_ok (Validate.scenario "mckernel"));
  let m = err (Validate.scenario "hurd") in
  check_bool "lists kernels" true
    (contains m "McKernel" && contains m "mOS" && contains m "Linux")

let test_validate_ranges () =
  check_bool "nodes ok" true (Validate.nodes 1024 = Ok 1024);
  check_bool "nodes zero" true (contains (err (Validate.nodes 0)) "node count");
  check_bool "nodes huge" true
    (Result.is_error (Validate.nodes (Validate.max_nodes + 1)));
  check_bool "jobs 0 means all cores" true (Validate.jobs 0 = Ok 0);
  check_bool "jobs negative" true (Result.is_error (Validate.jobs (-1)));
  check_bool "jobs huge" true
    (Result.is_error (Validate.jobs (Validate.max_jobs + 1)));
  check_bool "runs ok" true (Validate.runs 5 = Ok 5);
  check_bool "runs zero" true (Result.is_error (Validate.runs 0));
  check_bool "node_counts empty" true (Result.is_error (Validate.node_counts []));
  check_bool "node_counts bad member" true
    (Result.is_error (Validate.node_counts [ 4; 0 ]));
  check_bool "des_shards ok" true (Validate.des_shards 4 = Ok 4);
  check_bool "des_shards 0 means one per core" true
    (Validate.des_shards 0 = Ok 0);
  check_bool "des_shards negative" true
    (Result.is_error (Validate.des_shards (-1)));
  check_bool "des_shards huge" true
    (contains
       (err (Validate.des_shards (Validate.max_des_shards + 1)))
       "des-shards")

let test_validate_fault_args () =
  check_bool "preset ok" true (Validate.fault_preset "Mixed " = Ok "mixed");
  check_bool "preset bad" true
    (contains (err (Validate.fault_preset "gamma-ray")) "mixed");
  check_bool "rates ok" true (Validate.rates "0.5, 1,2" = Ok [ 0.5; 1.0; 2.0 ]);
  check_bool "rates junk" true (Result.is_error (Validate.rates "0.5,x"));
  check_bool "rates negative" true (Result.is_error (Validate.rates "-1"))

(* ------------------------------------------------------------------ *)
(* Supervised cells, run journal, chaos gate                           *)

let small_cells () =
  Experiment.compare_cells ~scenarios:Scenario.trio ~app:(app "hpcg")
    ~node_counts:[ 2 ] ~runs:2 ()

let with_temp_journal f =
  let path = Filename.temp_file "mk-test-journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_supervised_matches_points () =
  let cells = small_cells () in
  let s = Experiment.supervised_points cells in
  check_int "all computed" (List.length cells) s.Experiment.computed;
  check_int "none replayed" 0 s.Experiment.replayed;
  check_int "none quarantined" 0 s.Experiment.quarantined;
  List.iter2
    (fun p (_, o) ->
      match o with
      | Experiment.Completed q -> check_bool "point equals baseline" true (p = q)
      | Experiment.Quarantined _ -> Alcotest.fail "unexpected quarantine")
    (Experiment.points cells)
    s.Experiment.outcomes

let test_quarantine_keeps_siblings () =
  let cells = small_cells () in
  let bad = 1 in
  let chaos ~cell ~attempt:_ = if cell = bad then failwith "injected-permanent" in
  let s = Experiment.supervised_points ~chaos cells in
  check_int "one quarantined" 1 s.Experiment.quarantined;
  check_int "permanent failure never retried" 0 s.Experiment.retries;
  check_int "siblings computed" (List.length cells - 1) s.Experiment.computed;
  List.iteri
    (fun i ((_, o), p) ->
      match o with
      | Experiment.Quarantined { error; attempts } ->
          check_int "failing cell index" bad i;
          check_int "one attempt" 1 attempts;
          check_bool "error preserved" true (contains error "injected-permanent")
      | Experiment.Completed q ->
          check_bool "sibling equals unsupervised baseline" true (p = q))
    (List.combine s.Experiment.outcomes (Experiment.points cells))

let test_transient_recovers () =
  let cells = small_cells () in
  let chaos ~cell ~attempt =
    if cell = 0 && attempt <= 2 then raise (Supervise.Transient "flaky")
  in
  let s = Experiment.supervised_points ~chaos cells in
  check_int "recovered, none quarantined" 0 s.Experiment.quarantined;
  check_int "two retries" 2 s.Experiment.retries;
  let p = Supervise.default.Supervise.retry in
  check_int "backoff priced, never slept"
    (Mk_fault.Retry.backoff_delay p ~retry:1 + Mk_fault.Retry.backoff_delay p ~retry:2)
    s.Experiment.backoff_ns

let test_budget_quarantines () =
  let cells = small_cells () in
  let policy = { Supervise.default with Supervise.budget = Some 1 } in
  let s = Experiment.supervised_points ~policy cells in
  check_int "every cell over budget" (List.length cells) s.Experiment.quarantined;
  check_int "nothing computed" 0 s.Experiment.computed;
  List.iter
    (fun (_, o) ->
      match o with
      | Experiment.Quarantined { error; attempts } ->
          check_int "budget failure is permanent" 1 attempts;
          check_bool "error names the budget" true (contains error "budget")
      | Experiment.Completed _ -> Alcotest.fail "expected quarantine")
    s.Experiment.outcomes

let test_journal_resume_identity () =
  with_temp_journal (fun path ->
      let cells = small_cells () in
      let k = 1 in
      let prefix = List.filteri (fun i _ -> i < k) cells in
      let j = Mk_engine.Journal.open_ ~path () in
      let killed =
        Fun.protect
          ~finally:(fun () -> Mk_engine.Journal.close j)
          (fun () -> Experiment.supervised_points ~journal:j prefix)
      in
      check_int "prefix computed before the kill" k killed.Experiment.computed;
      let j = Mk_engine.Journal.open_ ~path () in
      let resumed =
        Fun.protect
          ~finally:(fun () -> Mk_engine.Journal.close j)
          (fun () -> Experiment.supervised_points ~journal:j cells)
      in
      check_int "prefix replayed" k resumed.Experiment.replayed;
      check_int "rest computed" (List.length cells - k) resumed.Experiment.computed;
      let fresh = Experiment.supervised_points cells in
      List.iter2
        (fun (_, a) (_, b) ->
          check_bool "replayed outcome bit-identical to fresh" true (a = b))
        fresh.Experiment.outcomes resumed.Experiment.outcomes)

let test_point_json_roundtrip () =
  let cells = small_cells () in
  List.iter
    (fun p ->
      match Experiment.point_of_json (Experiment.point_to_json p) with
      | Ok q -> check_bool "roundtrip exact" true (p = q)
      | Error m -> Alcotest.fail m)
    (Experiment.points cells);
  check_bool "malformed json is an Error" true
    (Result.is_error (Experiment.point_of_json Mk_engine.Json.Null))

let test_cell_key_stability () =
  let cells = small_cells () in
  let c = List.hd cells in
  let keys = List.map Experiment.cell_key cells in
  check_bool "keys distinct" true
    (List.length (List.sort_uniq compare keys) = List.length keys);
  check_bool "key deterministic" true
    (Experiment.cell_key c = Experiment.cell_key c);
  check_bool "seed changes the key" true
    (Experiment.cell_key { c with Experiment.seed = c.Experiment.seed + 1 }
    <> Experiment.cell_key c);
  check_bool "salt in fingerprint" true
    (contains (Experiment.cell_fingerprint c) Experiment.cell_salt)

let test_supervise_obs_counters () =
  let r = Mk_obs.Recorder.make ~label:"harness" ~nodes:1 ~seed:0 () in
  let cells = small_cells () in
  let chaos ~cell ~attempt =
    if cell = 0 && attempt = 1 then raise (Supervise.Transient "flaky")
    else if cell = 1 then failwith "perma"
  in
  let s =
    Mk_obs.Hook.with_recorder r (fun () ->
        Experiment.supervised_points ~chaos cells)
  in
  check_int "one retry" 1 s.Experiment.retries;
  check_int "one quarantine" 1 s.Experiment.quarantined;
  let counter name =
    Mk_obs.Metrics.counter
      (Mk_obs.Recorder.metrics r)
      (Mk_obs.Key.v ~kernel:"harness" ~subsystem:"supervise" ~name ())
  in
  check_int "retries counter" 1 (counter "retries");
  check_int "quarantines counter" 1 (counter "quarantines");
  check_int "no journal hits counted" 0 (counter "journal_hits")

let test_chaos_smoke () =
  let report = Chaos.run ~smoke:true () in
  if not (Chaos.passed report) then Alcotest.fail (Chaos.render report)

let test_validate_journal_mode () =
  let jm = Validate.journal_mode in
  check_bool "neither flag" true
    (jm ~journal:None ~resume:None ~obs_active:false = Ok None);
  check_bool "journal records" true
    (jm ~journal:(Some "j.jsonl") ~resume:None ~obs_active:false
    = Ok (Some ("j.jsonl", false)));
  check_bool "resume replays" true
    (jm ~journal:None ~resume:(Some "j.jsonl") ~obs_active:false
    = Ok (Some ("j.jsonl", true)));
  check_bool "mutually exclusive" true
    (Result.is_error
       (jm ~journal:(Some "a") ~resume:(Some "b") ~obs_active:false));
  check_bool "obs + journal refused" true
    (Result.is_error (jm ~journal:(Some "a") ~resume:None ~obs_active:true));
  check_bool "obs + resume refused" true
    (Result.is_error (jm ~journal:None ~resume:(Some "a") ~obs_active:true));
  check_bool "obs alone fine" true
    (jm ~journal:None ~resume:None ~obs_active:true = Ok None)

let () =
  Alcotest.run "mk_cluster"
    [
      ("scenario", [ Alcotest.test_case "trio" `Quick test_scenarios ]);
      ( "driver",
        [
          Alcotest.test_case "basics" `Quick test_run_basics;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "lwk steady determinism" `Quick
            test_lwks_silent_deterministic_iterations;
          Alcotest.test_case "ccs-qcd ordering" `Slow test_ccs_qcd_ordering;
          Alcotest.test_case "faults vs prefault" `Quick test_linux_faults_lwk_prefaults;
          Alcotest.test_case "lammps offloads" `Quick test_lammps_offloads;
          Alcotest.test_case "minife collapse" `Slow test_minife_collapse_at_scale;
          Alcotest.test_case "lulesh brk" `Slow test_lulesh_brk_mechanism;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "point statistics" `Quick test_experiment_point_statistics;
          Alcotest.test_case "relative_to" `Slow test_relative_to;
          Alcotest.test_case "median improvement" `Quick test_median_improvement;
          Alcotest.test_case "parallel matches sequential" `Slow
            test_parallel_matches_sequential;
          Alcotest.test_case "suite views" `Slow test_suite_views;
          Alcotest.test_case "report renders" `Slow test_report_renders;
        ] );
      ( "validation",
        [
          Alcotest.test_case "DES matches analytic (silent)" `Quick
            test_des_matches_analytic_silent;
          Alcotest.test_case "DES matches analytic (noisy)" `Quick
            test_des_matches_analytic_noisy;
          Alcotest.test_case "DES message count" `Quick test_des_message_count;
          Alcotest.test_case "DES sharded identity" `Quick
            test_des_sharded_identity;
          Alcotest.test_case "DES sharded every scenario" `Slow
            test_des_sharded_every_scenario;
          Alcotest.test_case "DES sharded crossings" `Quick
            test_des_sharded_crossings;
          Alcotest.test_case "DES fast-forward equivalence" `Quick
            test_des_fast_forward_equivalence;
          Alcotest.test_case "DES sharded pool identity" `Quick
            test_des_sharded_pool_identity;
          QCheck_alcotest.to_alcotest des_shard_invariance_q;
          Alcotest.test_case "calibration relations" `Quick test_calibration_relations;
          Alcotest.test_case "table1 ordering" `Slow test_table1_ordering;
          Alcotest.test_case "quadrant rescues linux" `Slow
            test_quadrant_mode_rescues_linux;
          Alcotest.test_case "isolation property" `Slow test_isolation_property;
        ] );
      ( "cli-validation",
        [
          Alcotest.test_case "app" `Quick test_validate_app;
          Alcotest.test_case "scenario" `Quick test_validate_scenario;
          Alcotest.test_case "ranges" `Quick test_validate_ranges;
          Alcotest.test_case "fault args" `Quick test_validate_fault_args;
          Alcotest.test_case "journal mode" `Quick test_validate_journal_mode;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "matches points" `Quick test_supervised_matches_points;
          Alcotest.test_case "quarantine keeps siblings" `Quick
            test_quarantine_keeps_siblings;
          Alcotest.test_case "transient recovers" `Quick test_transient_recovers;
          Alcotest.test_case "budget quarantines" `Quick test_budget_quarantines;
          Alcotest.test_case "journal resume identity" `Quick
            test_journal_resume_identity;
          Alcotest.test_case "point json roundtrip" `Quick test_point_json_roundtrip;
          Alcotest.test_case "cell key stability" `Quick test_cell_key_stability;
          Alcotest.test_case "obs counters" `Quick test_supervise_obs_counters;
          Alcotest.test_case "chaos smoke" `Slow test_chaos_smoke;
        ] );
    ]
