(* Tests for the LTP-like compatibility corpus: the exact counts of
   Section III-D must be reproduced, and the failure causes must be
   the ones the paper itemises. *)

open Mk_compat

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_corpus_size () = check_int "3,328 tests" 3_328 (List.length Ltp.corpus)

let test_corpus_names_unique () =
  let names = List.map (fun (t : Ltp.test) -> t.Ltp.name) Ltp.corpus in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_linux_passes_everything () =
  let s = Ltp.run_all Ltp.Linux_k in
  check_int "zero failures" 0 s.Ltp.failed;
  check_int "all pass" 3_328 s.Ltp.passed

let test_mckernel_failure_count () =
  let s = Ltp.run_all Ltp.Mckernel_k in
  check_int "McKernel passes all but 32" 32 s.Ltp.failed

let test_mos_failure_count () =
  let s = Ltp.run_all Ltp.Mos_k in
  check_int "111 tests out of 3,328 fail" 111 s.Ltp.failed

let failures_for kernel sysno =
  let s = Ltp.run_all kernel in
  List.filter (fun ((t : Ltp.test), _) -> t.Ltp.sysno = sysno) s.Ltp.failures

let test_eleven_move_pages () =
  (* "Eleven of the 32 failing experiments attempt to test various
     combinations of the move_pages() system call". *)
  check_int "mckernel" 11
    (List.length (failures_for Ltp.Mckernel_k Mk_syscall.Sysno.Move_pages));
  check_int "mos too" 11
    (List.length (failures_for Ltp.Mos_k Mk_syscall.Sysno.Move_pages))

let test_clone_esoteric_flag () =
  (* "Another representative experiment tests the error behavior of
     an unusual clone() flag combination". *)
  let fails = failures_for Ltp.Mckernel_k Mk_syscall.Sysno.Clone in
  check_int "exactly one clone failure" 1 (List.length fails)

let test_mos_ptrace_four_of_five () =
  (* "ptrace() is working in mOS.  However, four of the five ptrace()
     experiments fail." *)
  let all_ptrace =
    List.filter
      (fun (t : Ltp.test) -> t.Ltp.sysno = Mk_syscall.Sysno.Ptrace)
      Ltp.corpus
  in
  check_int "five ptrace tests" 5 (List.length all_ptrace);
  check_int "four fail on mos" 4
    (List.length (failures_for Ltp.Mos_k Mk_syscall.Sysno.Ptrace))

let test_brk_shrink_fails_on_both () =
  (* "tests that expect a page fault fail" after a heap shrink. *)
  List.iter
    (fun k ->
      check_int
        (Ltp.kernel_to_string k)
        1
        (List.length (failures_for k Mk_syscall.Sysno.Brk)))
    [ Ltp.Mckernel_k; Ltp.Mos_k ]

let test_mos_fork_cascade () =
  (* "Many of the LTP tests rely on fork() to set up the experiment
     … which results in many failures before the tests of the
     targeted system calls even begin." *)
  let s = Ltp.run_all Ltp.Mos_k in
  let fork_setup =
    List.filter (fun (_, reason) -> reason = "fork-setup") s.Ltp.failures
  in
  check_bool "the dominant cause" true (List.length fork_setup > 80);
  (* McKernel offloads fork to Linux: no cascade. *)
  let m = Ltp.run_all Ltp.Mckernel_k in
  check_int "no cascade on mckernel" 0
    (List.length (List.filter (fun (_, r) -> r = "fork-setup") m.Ltp.failures))

let test_offloaded_classes_pass () =
  (* An offloaded call executes on real Linux, so plain tests of
     file/network calls pass on both LWKs. *)
  List.iter
    (fun kernel ->
      List.iter
        (fun (t : Ltp.test) ->
          if
            (not t.Ltp.needs_fork_setup)
            && t.Ltp.corner = None
            && Mk_syscall.Sysno.cls t.Ltp.sysno = Mk_syscall.Sysno.Files
          then
            check_bool t.Ltp.name true (Ltp.run_test kernel t = Ltp.Pass))
        Ltp.corpus)
    [ Ltp.Mckernel_k; Ltp.Mos_k ]

let test_failures_by_cause () =
  let s = Ltp.run_all Ltp.Mos_k in
  let causes = Ltp.failures_by_cause s in
  check_bool "fork-setup leads" true
    (match causes with ("fork-setup", n) :: _ -> n = 93 | _ -> false);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 causes in
  check_int "causes account for every failure" s.Ltp.failed total

let test_plain_tests_pass_everywhere () =
  (* Partial dispositions pass their plain tests: McKernel supports
     normal brk/clone/ptrace usage. *)
  List.iter
    (fun kernel ->
      List.iter
        (fun (t : Ltp.test) ->
          if t.Ltp.corner = None && not t.Ltp.needs_fork_setup then
            check_bool t.Ltp.name true (Ltp.run_test kernel t = Ltp.Pass))
        Ltp.corpus)
    [ Ltp.Mckernel_k; Ltp.Mos_k ]

let corpus_deterministic =
  QCheck.Test.make ~name:"verdicts are deterministic" ~count:100
    QCheck.(oneofl Ltp.corpus)
    (fun t ->
      List.for_all
        (fun k -> Ltp.run_test k t = Ltp.run_test k t)
        [ Ltp.Linux_k; Ltp.Mckernel_k; Ltp.Mos_k ])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_compat"
    [
      ( "corpus",
        [
          Alcotest.test_case "size" `Quick test_corpus_size;
          Alcotest.test_case "unique names" `Quick test_corpus_names_unique;
        ] );
      ( "verdicts",
        Alcotest.test_case "linux passes all" `Quick test_linux_passes_everything
        :: Alcotest.test_case "mckernel fails 32" `Quick test_mckernel_failure_count
        :: Alcotest.test_case "mos fails 111" `Quick test_mos_failure_count
        :: Alcotest.test_case "eleven move_pages" `Quick test_eleven_move_pages
        :: Alcotest.test_case "clone esoteric flag" `Quick test_clone_esoteric_flag
        :: Alcotest.test_case "ptrace 4 of 5" `Quick test_mos_ptrace_four_of_five
        :: Alcotest.test_case "brk shrink" `Quick test_brk_shrink_fails_on_both
        :: Alcotest.test_case "fork cascade" `Quick test_mos_fork_cascade
        :: Alcotest.test_case "offloaded classes pass" `Quick
             test_offloaded_classes_pass
        :: Alcotest.test_case "failure causes" `Quick test_failures_by_cause
        :: Alcotest.test_case "plain tests pass" `Quick
             test_plain_tests_pass_everywhere
        :: qsuite [ corpus_deterministic ] );
    ]
