(* Tests for the public Multikernel facade. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_version () =
  check_bool "semver-ish" true (String.length Multikernel.version >= 5)

let test_scenarios () =
  Alcotest.(check (list string))
    "trio labels"
    [ "McKernel"; "mOS"; "Linux" ]
    (List.map
       (fun (s : Multikernel.Cluster.Scenario.t) -> s.Multikernel.Cluster.Scenario.label)
       Multikernel.scenarios)

let test_app_lookup () =
  check_int "eight apps" 8 (List.length Multikernel.app_names);
  check_bool "find works" true (Multikernel.find_app "hpcg" <> None);
  check_bool "unknown is none" true (Multikernel.find_app "doom" = None)

let test_run_and_compare () =
  let app = Option.get (Multikernel.find_app "geofem") in
  let r =
    Multikernel.run ~scenario:Multikernel.Cluster.Scenario.mckernel ~app ~nodes:2 ()
  in
  check_bool "fom positive" true (r.Multikernel.Cluster.Driver.fom > 0.0);
  let all = Multikernel.compare_at ~app ~nodes:2 () in
  check_int "three results" 3 (List.length all);
  check_bool "labels match scenarios" true
    (List.for_all (fun (l, _) -> List.mem l [ "McKernel"; "mOS"; "Linux" ]) all)

let test_module_reexports () =
  (* The facade exposes the full layer stack. *)
  check_int "knl cores" 68 Multikernel.Hw.Knl.cores;
  check_int "syscall count" 102 Multikernel.Syscall.Sysno.count;
  check_int "ltp corpus" 3328 (List.length Multikernel.Compat.Ltp.corpus);
  check_bool "engine units" true (Multikernel.Engine.Units.sec = 1_000_000_000)

let () =
  Alcotest.run "multikernel"
    [
      ( "facade",
        [
          Alcotest.test_case "version" `Quick test_version;
          Alcotest.test_case "scenarios" `Quick test_scenarios;
          Alcotest.test_case "app lookup" `Quick test_app_lookup;
          Alcotest.test_case "run and compare" `Quick test_run_and_compare;
          Alcotest.test_case "module re-exports" `Quick test_module_reexports;
        ] );
    ]
