(* Tests for the memory-management substrate: pages, the buddy
   allocator, physical memory, policies and address-space behaviour
   under the three kernels' strategies. *)

open Mk_engine
open Mk_mem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let kib = 1024
let mib = 1024 * kib
let gib = 1024 * mib

(* ------------------------------------------------------------------ *)
(* Page *)

let test_page_bytes () =
  check_int "4K" (4 * kib) (Page.bytes Page.Small);
  check_int "2M" (2 * mib) (Page.bytes Page.Large);
  check_int "1G" gib (Page.bytes Page.Huge)

let test_page_align () =
  check_int "align up" 8192 (Page.align_up 4097 4096);
  check_int "align up exact" 4096 (Page.align_up 4096 4096);
  check_int "align down" 4096 (Page.align_down 8191 4096);
  check_bool "is aligned" true (Page.is_aligned 8192 4096);
  check_bool "is not aligned" false (Page.is_aligned 8193 4096)

let test_page_count () =
  check_int "one page" 1 (Page.count ~bytes:1 Page.Small);
  check_int "exact" 2 (Page.count ~bytes:(8 * kib) Page.Small);
  check_int "round up" 3 (Page.count ~bytes:((8 * kib) + 1) Page.Small)

let test_page_best_fit () =
  check_bool "huge" true (Page.best_fit ~addr:0 ~bytes:(2 * gib) = Page.Huge);
  check_bool "large" true
    (Page.best_fit ~addr:(2 * mib) ~bytes:(4 * mib) = Page.Large);
  check_bool "misaligned falls to small" true
    (Page.best_fit ~addr:4096 ~bytes:(2 * gib) = Page.Small);
  check_bool "short falls to small" true
    (Page.best_fit ~addr:0 ~bytes:(1 * mib) = Page.Small)

let test_tlb_overhead_ordering () =
  check_bool "small worst" true
    (Page.tlb_overhead Page.Small > Page.tlb_overhead Page.Large);
  check_bool "huge best" true (Page.tlb_overhead Page.Huge = 1.0)

(* ------------------------------------------------------------------ *)
(* Buddy *)

let test_buddy_alloc_free_roundtrip () =
  let b = Buddy.create ~base:0 ~bytes:(16 * mib) in
  check_int "total" (16 * mib) (Buddy.total b);
  let a1 = Buddy.alloc b ~bytes:(1 * mib) in
  check_bool "allocated" true (a1 <> None);
  check_int "used" (1 * mib) (Buddy.used_bytes b);
  (match a1 with
  | Some addr -> Buddy.free b ~addr ~bytes:(1 * mib)
  | None -> ());
  check_int "all free again" (16 * mib) (Buddy.free_bytes b)

let test_buddy_alignment () =
  let b = Buddy.create ~base:0 ~bytes:(4 * gib) in
  match Buddy.alloc b ~bytes:gib with
  | Some addr -> check_bool "1G aligned" true (addr mod gib = 0)
  | None -> Alcotest.fail "1G alloc failed"

let test_buddy_coalescing () =
  let b = Buddy.create ~base:0 ~bytes:(8 * mib) in
  let blocks =
    List.init 8 (fun _ ->
        match Buddy.alloc b ~bytes:mib with
        | Some a -> a
        | None -> Alcotest.fail "alloc failed")
  in
  check_int "exhausted" 0 (Buddy.free_bytes b);
  List.iter (fun addr -> Buddy.free b ~addr ~bytes:mib) blocks;
  check_int "coalesced to full region" (8 * mib) (Buddy.largest_free b)

let test_buddy_fragmentation_metric () =
  let b = Buddy.create ~base:0 ~bytes:(8 * mib) in
  Alcotest.(check (float 1e-9)) "pristine" 0.0 (Buddy.fragmentation b);
  (* Allocate everything, free alternating blocks: free space exists
     but the largest block is 1 MiB. *)
  let blocks = List.init 8 (fun _ -> Option.get (Buddy.alloc b ~bytes:mib)) in
  List.iteri (fun i addr -> if i mod 2 = 0 then Buddy.free b ~addr ~bytes:mib) blocks;
  check_int "half free" (4 * mib) (Buddy.free_bytes b);
  check_int "largest stuck at 1M" mib (Buddy.largest_free b);
  check_bool "fragmented" true (Buddy.fragmentation b > 0.5)

let test_buddy_oversize_rejected () =
  let b = Buddy.create ~base:0 ~bytes:(4 * mib) in
  check_bool "oversize" true (Buddy.alloc b ~bytes:(8 * mib) = None)

let test_buddy_double_free_rejected () =
  let b = Buddy.create ~base:0 ~bytes:(4 * mib) in
  let addr = Option.get (Buddy.alloc b ~bytes:mib) in
  Buddy.free b ~addr ~bytes:mib;
  check_bool "double free raises" true
    (try
       Buddy.free b ~addr ~bytes:mib;
       false
     with Invalid_argument _ -> true)

let test_buddy_non_pow2_region () =
  (* 3 MiB region is fully usable. *)
  let b = Buddy.create ~base:0 ~bytes:(3 * mib) in
  check_int "full capacity" (3 * mib) (Buddy.free_bytes b);
  let a1 = Buddy.alloc b ~bytes:(2 * mib) in
  let a2 = Buddy.alloc b ~bytes:mib in
  check_bool "both served" true (a1 <> None && a2 <> None)

let buddy_conservation_qcheck =
  QCheck.Test.make ~name:"buddy conserves bytes across random ops" ~count:100
    QCheck.(list (int_range 0 9))
    (fun ops ->
      let b = Buddy.create ~base:0 ~bytes:(32 * mib) in
      let live = ref [] in
      List.iter
        (fun op ->
          if op < 6 then begin
            (* alloc of 2^op pages *)
            let bytes = 4096 * (1 lsl op) in
            match Buddy.alloc b ~bytes with
            | Some addr -> live := (addr, bytes) :: !live
            | None -> ()
          end
          else begin
            match !live with
            | (addr, bytes) :: rest ->
                Buddy.free b ~addr ~bytes;
                live := rest
            | [] -> ()
          end)
        ops;
      let live_bytes =
        List.fold_left
          (fun acc (_, bytes) ->
            (* buddy rounds to pow2 pages, all our sizes already are *)
            acc + bytes)
          0 !live
      in
      Buddy.free_bytes b + live_bytes = 32 * mib)

(* ------------------------------------------------------------------ *)
(* Phys *)

let numa = Mk_hw.Topology.numa (Mk_hw.Knl.topology Mk_hw.Knl.Snc4_flat)

let test_phys_capacity () =
  let p = Phys.create numa in
  check_int "ddr domain" (24 * gib) (Phys.free_bytes p ~domain:0);
  check_int "mcdram domain" (4 * gib) (Phys.free_bytes p ~domain:4)

let test_phys_alloc_free () =
  let p = Phys.create numa in
  match Phys.alloc p ~domain:4 ~bytes:gib with
  | Some block ->
      check_int "used" gib (Phys.used_bytes p ~domain:4);
      Phys.free p block;
      check_int "freed" 0 (Phys.used_bytes p ~domain:4)
  | None -> Alcotest.fail "alloc failed"

let test_phys_fragmented_caps_largest () =
  let p = Phys.create_fragmented numa ~max_block:(512 * mib) in
  check_bool "largest capped" true (Phys.largest_free p ~domain:4 <= 512 * mib);
  check_bool "1G contiguous impossible" true (Phys.alloc p ~domain:4 ~bytes:gib = None);
  (* But total capacity is intact. *)
  check_bool "capacity intact" true (Phys.free_bytes p ~domain:4 >= 4 * gib - 16 * mib)

let test_phys_reserve () =
  let p = Phys.create numa in
  Phys.reserve p ~domain:0 ~bytes:(4 * gib);
  check_int "reserved" (20 * gib) (Phys.free_bytes p ~domain:0)

let test_phys_kind_totals () =
  let p = Phys.create numa in
  check_int "mcdram total" (16 * gib)
    (Phys.free_bytes_of_kind p Mk_hw.Memory_kind.Mcdram);
  check_int "ddr total" (96 * gib) (Phys.free_bytes_of_kind p Mk_hw.Memory_kind.Ddr4)

(* ------------------------------------------------------------------ *)
(* Policy *)

let test_policy_mcdram_first_order () =
  let cands = Policy.candidates (Policy.Mcdram_first { home = 0 }) numa in
  (* All four MCDRAM domains come before any DDR domain; nearest
     MCDRAM (same quadrant: 4) first. *)
  (match cands with
  | first :: _ -> check_int "nearest mcdram first" 4 first
  | [] -> Alcotest.fail "no candidates");
  let mcdram_positions =
    List.filteri (fun _ id -> id >= 4) cands |> List.length
  in
  check_int "all eight domains" 8 (List.length cands);
  check_int "mcdram count" 4 mcdram_positions;
  let rec prefix_mcdram = function
    | [] -> 0
    | d :: rest -> if d >= 4 then 1 + prefix_mcdram rest else 0
  in
  check_int "mcdram strictly first" 4 (prefix_mcdram cands)

let test_policy_ddr_only () =
  let cands = Policy.candidates (Policy.Ddr_only { home = 0 }) numa in
  check_int "four candidates" 4 (List.length cands);
  check_bool "all ddr" true (List.for_all (fun d -> d < 4) cands)

let test_policy_strictness () =
  check_bool "bind strict" true (Policy.strict (Policy.Bind { domains = [ 0 ] }));
  check_bool "preferred not strict" false
    (Policy.strict (Policy.Preferred { domain = 0 }))

(* ------------------------------------------------------------------ *)
(* Fault cost model *)

let test_fault_costs_ordering () =
  let c = Fault.default in
  let demand =
    Fault.demand_fault_bytes c ~page:Page.Small ~bytes:(2 * mib) ~concurrency:1
  in
  let pre = Fault.prefault c ~page:Page.Large ~bytes:(2 * mib) ~zero_bytes:(4 * kib) in
  check_bool "prefault with 4K zeroing is much cheaper" true (pre * 10 < demand)

let test_fault_contention () =
  let c = Fault.default in
  let solo = Fault.demand_fault c ~page:Page.Small ~concurrency:1 in
  let crowd = Fault.demand_fault c ~page:Page.Small ~concurrency:64 in
  check_bool "contention inflates" true (crowd > solo);
  check_bool "inflation bounded" true (crowd < solo * 10)

(* ------------------------------------------------------------------ *)
(* Address space *)

let make_as strategy =
  let phys = Phys.create numa in
  ( phys,
    Address_space.create ~phys ~strategy
      ~default_policy:(Policy.Mcdram_first { home = 0 })
      () )

let make_linux_as () =
  let phys = Phys.create numa in
  ( phys,
    Address_space.create ~phys ~strategy:Address_space.linux_strategy
      ~default_policy:(Policy.Default { home = 0 })
      () )

let test_as_linux_demand_paging () =
  let _, asp = make_linux_as () in
  match Address_space.mmap asp ~bytes:(16 * mib) ~backing:Vma.Anonymous () with
  | Error `Enomem -> Alcotest.fail "linux mmap cannot fail"
  | Ok (addr, cost) ->
      check_bool "map cheap" true (cost < Units.us);
      check_int "nothing backed yet" 0 (Address_space.backed_bytes asp);
      let fault_cost = Address_space.touch asp ~addr ~bytes:(16 * mib) ~concurrency:1 in
      check_bool "faulting costs real time" true (fault_cost > 100 * Units.us);
      check_bool "backed after touch" true
        (Address_space.backed_bytes asp >= 16 * mib);
      (* Second touch is free. *)
      check_int "second touch free" 0
        (Address_space.touch asp ~addr ~bytes:(16 * mib) ~concurrency:1)

let test_as_lwk_prefault () =
  let _, asp = make_as Address_space.mckernel_strategy in
  match Address_space.mmap asp ~bytes:(16 * mib) ~backing:Vma.Anonymous () with
  | Error `Enomem -> Alcotest.fail "prefault mmap failed"
  | Ok (addr, cost) ->
      check_bool "population charged at map" true (cost > 0);
      check_bool "backed immediately" true
        (Address_space.backed_bytes asp >= 16 * mib);
      check_int "touch free" 0 (Address_space.touch asp ~addr ~bytes:(16 * mib) ~concurrency:1)

let test_as_lwk_uses_mcdram_first () =
  let _, asp = make_as Address_space.mckernel_strategy in
  (match Address_space.mmap asp ~bytes:(1 * gib) ~backing:Vma.Anonymous () with
  | Error `Enomem -> Alcotest.fail "mmap failed"
  | Ok _ -> ());
  Alcotest.(check (float 0.01)) "all in MCDRAM" 1.0 (Address_space.mcdram_fraction asp)

let test_as_lwk_spills_to_ddr () =
  (* Ask for more than the 16 GiB of MCDRAM: silent spill to DDR4. *)
  let _, asp = make_as Address_space.mckernel_strategy in
  (match Address_space.mmap asp ~bytes:(24 * gib) ~backing:Vma.Anonymous () with
  | Error `Enomem -> Alcotest.fail "spill must not fail"
  | Ok _ -> ());
  let f = Address_space.mcdram_fraction asp in
  check_bool "partial mcdram" true (f > 0.5 && f < 0.75)

let test_as_mos_quota () =
  (* A per-process MCDRAM quota (mOS upfront division) forces early
     spill even though MCDRAM is globally free. *)
  let phys = Phys.create numa in
  let strategy =
    { Address_space.mos_strategy with Address_space.mcdram_quota = Some (1 * gib) }
  in
  let asp =
    Address_space.create ~phys ~strategy
      ~default_policy:(Policy.Mcdram_first { home = 0 })
      ()
  in
  (match Address_space.mmap asp ~bytes:(4 * gib) ~backing:Vma.Anonymous () with
  | Error `Enomem -> Alcotest.fail "quota spill must not fail"
  | Ok _ -> ());
  check_bool "quota respected" true (Address_space.mcdram_bytes asp <= 1 * gib)

let test_as_mos_strict_enomem () =
  let phys = Phys.create numa in
  let asp =
    Address_space.create ~phys ~strategy:Address_space.mos_strategy
      ~default_policy:(Policy.Bind { domains = [ 4 ] })
      ()
  in
  (* Domain 4 holds 4 GiB; asking for 8 GiB bound to it must fail. *)
  match Address_space.mmap asp ~bytes:(8 * gib) ~backing:Vma.Anonymous () with
  | Error `Enomem -> ()
  | Ok _ -> Alcotest.fail "strict allocation must ENOMEM"

let test_as_mckernel_demand_fallback () =
  (* Fragment physical memory so no contiguous block exists; McKernel
     falls back to demand paging instead of failing. *)
  let phys = Phys.create_fragmented numa ~max_block:(64 * mib) in
  let asp =
    Address_space.create ~phys ~strategy:Address_space.mckernel_strategy
      ~default_policy:(Policy.Mcdram_first { home = 0 })
      ()
  in
  match Address_space.mmap asp ~bytes:(2 * gib) ~backing:Vma.Anonymous () with
  | Error `Enomem -> Alcotest.fail "fallback should succeed"
  | Ok (addr, _) ->
      (* Chunked allocation still backs what it can; the signature is
         that allocation succeeded and memory is usable. *)
      let _ = Address_space.touch asp ~addr ~bytes:(2 * gib) ~concurrency:1 in
      check_bool "fully usable" true (Address_space.backed_bytes asp >= 2 * gib)

let test_as_brk_grow_shrink_linux () =
  let _, asp = make_linux_as () in
  (match Address_space.brk asp ~delta:(10 * mib) with
  | Ok (brk1, _) ->
      check_bool "grew" true (brk1 > 0);
      let heap_cost = Address_space.touch asp ~addr:(brk1 - mib) ~bytes:mib ~concurrency:1 in
      check_bool "heap faults cost" true (heap_cost > 0)
  | Error `Enomem -> Alcotest.fail "linux brk grow failed");
  (* Shrink releases memory... *)
  (match Address_space.brk asp ~delta:(-10 * mib) with
  | Ok _ -> ()
  | Error `Enomem -> Alcotest.fail "shrink failed");
  let backed_after_shrink = Address_space.heap_mapped_bytes asp in
  check_int "heap released" 0 backed_after_shrink;
  (* ...so regrowing and touching faults again. *)
  (match Address_space.brk asp ~delta:(10 * mib) with
  | Ok (brk2, _) ->
      let refault =
        Address_space.touch asp ~addr:(brk2 - (10 * mib)) ~bytes:(10 * mib)
          ~concurrency:1
      in
      check_bool "linux refaults after shrink/grow" true (refault > 0)
  | Error `Enomem -> Alcotest.fail "regrow failed")

let test_as_brk_lwk_ignores_shrink () =
  let _, asp = make_as Address_space.mckernel_strategy in
  (match Address_space.brk asp ~delta:(10 * mib) with
  | Ok _ -> ()
  | Error `Enomem -> Alcotest.fail "grow failed");
  let mapped = Address_space.heap_mapped_bytes asp in
  check_bool "mapped at least 10M" true (mapped >= 10 * mib);
  (match Address_space.brk asp ~delta:(-10 * mib) with
  | Ok _ -> ()
  | Error `Enomem -> Alcotest.fail "shrink failed");
  check_int "still mapped" mapped (Address_space.heap_mapped_bytes asp);
  (* Regrow is the cheap fast path: no new physical allocation. *)
  match Address_space.brk asp ~delta:(10 * mib) with
  | Ok (_, cost) -> check_bool "fast regrow" true (cost < Units.us)
  | Error `Enomem -> Alcotest.fail "regrow failed"

let test_as_brk_lwk_2m_alignment () =
  let _, asp = make_as Address_space.mckernel_strategy in
  (match Address_space.brk asp ~delta:100 with
  | Ok _ -> ()
  | Error `Enomem -> Alcotest.fail "grow failed");
  (* Physical growth is in 2M increments even for a 100-byte request. *)
  check_int "2M growth granularity" (2 * mib) (Address_space.heap_mapped_bytes asp)

let test_as_brk_stats () =
  let _, asp = make_as Address_space.mckernel_strategy in
  ignore (Address_space.brk asp ~delta:0);
  ignore (Address_space.brk asp ~delta:0);
  ignore (Address_space.brk asp ~delta:(5 * mib));
  ignore (Address_space.brk asp ~delta:(-1 * mib));
  let stats = Address_space.stats asp in
  check_int "queries" 2 stats.Address_space.brk_queries;
  check_int "grows" 1 stats.Address_space.brk_grows;
  check_int "shrinks" 1 stats.Address_space.brk_shrinks;
  check_int "cumulative growth" (5 * mib) stats.Address_space.cumulative_heap_growth;
  check_int "peak" (5 * mib) stats.Address_space.heap_peak

let test_as_large_pages_lower_tlb_factor () =
  let _, lwk = make_as Address_space.mckernel_strategy in
  let _, lin = make_linux_as () in
  (match Address_space.mmap lwk ~bytes:(1 * gib) ~backing:Vma.Anonymous () with
  | Ok _ -> ()
  | Error `Enomem -> Alcotest.fail "lwk mmap");
  (match Address_space.mmap lin ~bytes:(1 * gib) ~backing:Vma.Anonymous () with
  | Ok (addr, _) -> ignore (Address_space.touch lin ~addr ~bytes:(1 * gib) ~concurrency:1)
  | Error `Enomem -> Alcotest.fail "linux mmap");
  check_bool "lwk tlb factor at or below linux" true
    (Address_space.tlb_factor lwk <= Address_space.tlb_factor lin)

let test_as_munmap_returns_memory () =
  let phys, asp = make_as Address_space.mckernel_strategy in
  let free_before = Phys.free_bytes_of_kind phys Mk_hw.Memory_kind.Mcdram in
  (match Address_space.mmap asp ~bytes:(1 * gib) ~backing:Vma.Anonymous () with
  | Ok (addr, _) ->
      check_bool "memory taken" true
        (Phys.free_bytes_of_kind phys Mk_hw.Memory_kind.Mcdram < free_before);
      ignore (Address_space.munmap asp ~addr);
      check_int "memory returned" free_before
        (Phys.free_bytes_of_kind phys Mk_hw.Memory_kind.Mcdram)
  | Error `Enomem -> Alcotest.fail "mmap failed")


(* ------------------------------------------------------------------ *)
(* Page tables *)

let test_pgtbl_walk_levels () =
  check_int "4K walks 4 levels" 4 (Page_table.walk_levels Page.Small);
  check_int "2M walks 3" 3 (Page_table.walk_levels Page.Large);
  check_int "1G walks 2" 2 (Page_table.walk_levels Page.Huge)

let test_pgtbl_leaf_counts () =
  let pt = Page_table.create () in
  Page_table.map pt ~vaddr:0 ~bytes:(8 * mib) ~page:Page.Small;
  check_int "2048 4K leaves" 2048 (Page_table.leaf_entries pt);
  Page_table.map pt ~vaddr:(1 * gib) ~bytes:(8 * mib) ~page:Page.Large;
  check_int "plus 4 2M leaves" 2052 (Page_table.leaf_entries pt)

let test_pgtbl_footprint_by_page_size () =
  (* Mapping 1 GiB: 4K pages need 512 page tables + 1 PD + 1 PDPT;
     2M pages need 1 PD + 1 PDPT; a 1G page needs just the PDPT. *)
  let footprint page =
    let pt = Page_table.create () in
    Page_table.map pt ~vaddr:0 ~bytes:gib ~page;
    Page_table.table_pages pt
  in
  check_int "4K structures" 514 (footprint Page.Small);
  check_int "2M structures" 2 (footprint Page.Large);
  check_int "1G structures" 1 (footprint Page.Huge)

let test_pgtbl_map_unmap_roundtrip () =
  let pt = Page_table.create () in
  Page_table.map pt ~vaddr:0 ~bytes:(16 * mib) ~page:Page.Small;
  Page_table.unmap pt ~vaddr:0 ~bytes:(16 * mib) ~page:Page.Small;
  check_int "no leaves" 0 (Page_table.leaf_entries pt);
  check_int "no tables" 0 (Page_table.table_pages pt)

let test_pgtbl_shared_intermediates () =
  (* Two small mappings inside the same 2M region share one PT. *)
  let pt = Page_table.create () in
  Page_table.map pt ~vaddr:0 ~bytes:(4 * kib) ~page:Page.Small;
  Page_table.map pt ~vaddr:(64 * kib) ~bytes:(4 * kib) ~page:Page.Small;
  check_int "one PT + PD + PDPT" 3 (Page_table.table_pages pt)

let test_pgtbl_address_space_integration () =
  (* An LWK space mapping 1 GiB needs one huge-page translation;
     Linux covers the same gigabyte with hundreds of THP entries (and
     its 4K heap with hundreds of thousands). *)
  let leaves strategy policy =
    let phys = Phys.create numa in
    let asp = Address_space.create ~phys ~strategy ~default_policy:policy () in
    (match Address_space.mmap asp ~bytes:gib ~backing:Vma.Anonymous () with
    | Ok (addr, _) -> ignore (Address_space.touch asp ~addr ~bytes:gib ~concurrency:1)
    | Error `Enomem -> Alcotest.fail "mmap");
    Page_table.leaf_entries (Address_space.page_table asp)
  in
  let lwk = leaves Address_space.mckernel_strategy (Policy.Mcdram_first { home = 0 }) in
  let lin = leaves Address_space.linux_strategy (Policy.Default { home = 0 }) in
  check_int "one 1G translation" 1 lwk;
  check_bool "linux needs hundreds" true (lin >= 512)

let test_pgtbl_closed_form_op_count () =
  (* The acceptance bound for the closed-form span arithmetic: a
     4 GiB 4K mapping is 1M pages but only 2048 leaf tables, and the
     work must scale with the tables, not the pages. *)
  let pt = Page_table.create () in
  Page_table.map pt ~vaddr:0 ~bytes:(4 * gib) ~page:Page.Small;
  check_int "a million leaves" (1024 * 1024) (Page_table.leaf_entries pt);
  check_bool "map cost is O(leaf tables), not O(pages)" true
    (Page_table.op_count pt < 5_000);
  Page_table.unmap pt ~vaddr:0 ~bytes:(4 * gib) ~page:Page.Small;
  check_int "clean" 0 (Page_table.table_pages pt);
  check_bool "unmap too" true (Page_table.op_count pt < 10_000)

(* The executable specification: random (overlapping, boundary-
   crossing) map/unmap sequences through the closed-form code and the
   per-page reference walk must agree on every accounting observable
   after every operation. *)
let pgtbl_closed_form_matches_reference =
  QCheck.Test.make ~name:"closed-form page table = per-page reference"
    ~count:60
    QCheck.(list_of_size (Gen.int_range 1 12)
        (triple (int_range 0 2) (int_range 0 99) (int_range 0 99)))
    (fun ops ->
      let opt = Page_table.create () in
      let spec = Page_table.create () in
      let mapped = ref [] in
      let agree () =
        Page_table.leaf_entries opt = Page_table.leaf_entries spec
        && Page_table.table_pages opt = Page_table.table_pages spec
        && Page_table.table_bytes opt = Page_table.table_bytes spec
      in
      List.for_all
        (fun (psel, a, b) ->
          (match (!mapped, b mod 3) with
          | (vaddr, bytes, page) :: rest, 0 ->
              Page_table.unmap opt ~vaddr ~bytes ~page;
              Page_table.unmap_reference spec ~vaddr ~bytes ~page;
              mapped := rest
          | _ ->
              let page =
                match psel with
                | 0 -> Page.Small
                | 1 -> Page.Large
                | _ -> Page.Huge
              in
              let unit_ = Page.bytes page in
              (* Offsets and lengths in units of the page size, spread
                 far enough to straddle 2M/1G/512G span boundaries and
                 to overlap earlier mappings. *)
              let vaddr = a * 61 * unit_ in
              let bytes = (1 + (b mod 40)) * 37 * unit_ in
              Page_table.map opt ~vaddr ~bytes ~page;
              Page_table.map_reference spec ~vaddr ~bytes ~page;
              mapped := (vaddr, bytes, page) :: !mapped);
          agree ())
        ops)

let pgtbl_conservation =
  QCheck.Test.make ~name:"page table map/unmap conserves" ~count:100
    QCheck.(pair (int_range 1 64) (int_range 0 2))
    (fun (chunks, psel) ->
      let page = match psel with 0 -> Page.Small | 1 -> Page.Large | _ -> Page.Huge in
      let pt = Page_table.create () in
      let size = Page.bytes page in
      for i = 0 to chunks - 1 do
        Page_table.map pt ~vaddr:(i * size) ~bytes:size ~page
      done;
      for i = 0 to chunks - 1 do
        Page_table.unmap pt ~vaddr:(i * size) ~bytes:size ~page
      done;
      Page_table.leaf_entries pt = 0 && Page_table.table_pages pt = 0)


(* Model-based property: random op sequences against a reference
   model, under each kernel strategy.  Invariants: physical memory is
   conserved, the break tracks brk deltas exactly, backed bytes never
   exceed physical usage, and MCDRAM never exceeds its quota. *)
let address_space_model_based =
  QCheck.Test.make ~name:"address space vs reference model" ~count:60
    QCheck.(pair (int_range 0 2) (list (int_range 0 5)))
    (fun (strat_i, ops) ->
      let strategy, policy =
        match strat_i with
        | 0 -> (Address_space.linux_strategy, Policy.Default { home = 0 })
        | 1 -> (Address_space.mckernel_strategy, Policy.Mcdram_first { home = 0 })
        | _ ->
            ( { Address_space.mos_strategy with
                Address_space.mcdram_quota = Some (256 * mib) },
              Policy.Mcdram_first { home = 0 } )
      in
      let phys = Phys.create numa in
      let total_phys =
        Phys.free_bytes_of_kind phys Mk_hw.Memory_kind.Mcdram
        + Phys.free_bytes_of_kind phys Mk_hw.Memory_kind.Ddr4
      in
      let asp = Address_space.create ~phys ~strategy ~default_policy:policy () in
      let model_brk = ref (Address_space.sbrk_query asp) in
      let mapped = ref [] in
      let ok = ref true in
      List.iteri
        (fun i op ->
          match op with
          | 0 | 1 -> (
              (* mmap of a pseudo-random size *)
              let bytes = (1 + ((i * 7) mod 64)) * mib in
              match Address_space.mmap asp ~bytes ~backing:Vma.Anonymous () with
              | Ok (addr, _) -> mapped := (addr, bytes) :: !mapped
              | Error `Enomem -> ())
          | 2 -> (
              (* munmap the newest mapping *)
              match !mapped with
              | (addr, _) :: rest ->
                  ignore (Address_space.munmap asp ~addr);
                  mapped := rest
              | [] -> ())
          | 3 -> (
              let delta = (1 + ((i * 3) mod 8)) * mib in
              match Address_space.brk asp ~delta with
              | Ok (b, _) ->
                  model_brk := !model_brk + delta;
                  ok := !ok && b = !model_brk
              | Error `Enomem -> ())
          | 4 -> (
              let delta = -((1 + (i mod 4)) * mib) in
              let expected =
                max (!model_brk + delta)
                  (Address_space.sbrk_query asp - (Address_space.sbrk_query asp - 16 * mib))
              in
              ignore expected;
              match Address_space.brk asp ~delta with
              | Ok (b, _) ->
                  (* clamped at the heap base *)
                  model_brk := max (16 * mib) (!model_brk + delta);
                  ok := !ok && b = !model_brk
              | Error `Enomem -> ())
          | _ ->
              ignore (Address_space.touch_heap asp ~concurrency:1);
              List.iter
                (fun (addr, bytes) ->
                  ignore (Address_space.touch asp ~addr ~bytes ~concurrency:1))
                !mapped)
        ops;
      (* Conservation: free + backed-by-this-space <= total (the heap
         keeps whole increments, so allow the rounding slack). *)
      let free =
        Phys.free_bytes_of_kind phys Mk_hw.Memory_kind.Mcdram
        + Phys.free_bytes_of_kind phys Mk_hw.Memory_kind.Ddr4
      in
      let used = total_phys - free in
      let backed = Address_space.backed_bytes asp in
      !ok
      && backed <= used
      && used <= backed + (2 * gib)
      && (match strategy.Address_space.mcdram_quota with
         | Some q -> Address_space.mcdram_bytes asp <= q
         | None -> true))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_mem"
    [
      ( "page",
        [
          Alcotest.test_case "bytes" `Quick test_page_bytes;
          Alcotest.test_case "alignment" `Quick test_page_align;
          Alcotest.test_case "count" `Quick test_page_count;
          Alcotest.test_case "best fit" `Quick test_page_best_fit;
          Alcotest.test_case "tlb ordering" `Quick test_tlb_overhead_ordering;
        ] );
      ( "buddy",
        Alcotest.test_case "alloc/free roundtrip" `Quick
          test_buddy_alloc_free_roundtrip
        :: Alcotest.test_case "alignment" `Quick test_buddy_alignment
        :: Alcotest.test_case "coalescing" `Quick test_buddy_coalescing
        :: Alcotest.test_case "fragmentation" `Quick test_buddy_fragmentation_metric
        :: Alcotest.test_case "oversize" `Quick test_buddy_oversize_rejected
        :: Alcotest.test_case "double free" `Quick test_buddy_double_free_rejected
        :: Alcotest.test_case "non-pow2 region" `Quick test_buddy_non_pow2_region
        :: qsuite [ buddy_conservation_qcheck ] );
      ( "phys",
        [
          Alcotest.test_case "capacity" `Quick test_phys_capacity;
          Alcotest.test_case "alloc/free" `Quick test_phys_alloc_free;
          Alcotest.test_case "fragmented" `Quick test_phys_fragmented_caps_largest;
          Alcotest.test_case "reserve" `Quick test_phys_reserve;
          Alcotest.test_case "kind totals" `Quick test_phys_kind_totals;
        ] );
      ( "policy",
        [
          Alcotest.test_case "mcdram first order" `Quick
            test_policy_mcdram_first_order;
          Alcotest.test_case "ddr only" `Quick test_policy_ddr_only;
          Alcotest.test_case "strictness" `Quick test_policy_strictness;
        ] );
      ( "fault",
        [
          Alcotest.test_case "cost ordering" `Quick test_fault_costs_ordering;
          Alcotest.test_case "contention" `Quick test_fault_contention;
        ] );
      ( "page_table",
        Alcotest.test_case "walk levels" `Quick test_pgtbl_walk_levels
        :: Alcotest.test_case "leaf counts" `Quick test_pgtbl_leaf_counts
        :: Alcotest.test_case "footprint by page size" `Quick
             test_pgtbl_footprint_by_page_size
        :: Alcotest.test_case "map/unmap roundtrip" `Quick
             test_pgtbl_map_unmap_roundtrip
        :: Alcotest.test_case "shared intermediates" `Quick
             test_pgtbl_shared_intermediates
        :: Alcotest.test_case "address space integration" `Quick
             test_pgtbl_address_space_integration
        :: Alcotest.test_case "closed-form op count" `Quick
             test_pgtbl_closed_form_op_count
        :: qsuite [ pgtbl_conservation; pgtbl_closed_form_matches_reference ] );
      ( "address_space",
        [
          Alcotest.test_case "linux demand paging" `Quick test_as_linux_demand_paging;
          Alcotest.test_case "lwk prefault" `Quick test_as_lwk_prefault;
          Alcotest.test_case "mcdram first" `Quick test_as_lwk_uses_mcdram_first;
          Alcotest.test_case "mcdram spill" `Quick test_as_lwk_spills_to_ddr;
          Alcotest.test_case "mos quota" `Quick test_as_mos_quota;
          Alcotest.test_case "mos strict enomem" `Quick test_as_mos_strict_enomem;
          Alcotest.test_case "mckernel demand fallback" `Quick
            test_as_mckernel_demand_fallback;
          Alcotest.test_case "linux brk shrink/regrow" `Quick
            test_as_brk_grow_shrink_linux;
          Alcotest.test_case "lwk ignores shrink" `Quick test_as_brk_lwk_ignores_shrink;
          Alcotest.test_case "lwk 2M heap granularity" `Quick
            test_as_brk_lwk_2m_alignment;
          Alcotest.test_case "brk stats" `Quick test_as_brk_stats;
          Alcotest.test_case "tlb factor" `Quick test_as_large_pages_lower_tlb_factor;
          Alcotest.test_case "munmap returns memory" `Quick
            test_as_munmap_returns_memory;
        ]
        @ qsuite [ address_space_model_based ] );
    ]
