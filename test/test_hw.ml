(* Tests for the hardware model: NUMA, topology, KNL configurations
   and the bandwidth model. *)

open Mk_hw

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float msg = Alcotest.(check (float 1e-9)) msg

(* ------------------------------------------------------------------ *)
(* Memory kinds *)

let test_kind_bandwidth_order () =
  check_bool "MCDRAM faster" true
    (Memory_kind.stream_bandwidth Memory_kind.Mcdram
    > Memory_kind.stream_bandwidth Memory_kind.Ddr4)

let test_kind_latency_order () =
  (* KNL quirk: MCDRAM has higher idle latency than DDR4. *)
  check_bool "MCDRAM latency higher" true
    (Memory_kind.load_latency Memory_kind.Mcdram
    > Memory_kind.load_latency Memory_kind.Ddr4)

(* ------------------------------------------------------------------ *)
(* NUMA *)

let snc4 = Knl.topology Knl.Snc4_flat
let numa = Topology.numa snc4

let test_snc4_domain_count () = check_int "eight domains" 8 (Numa.count numa)

let test_snc4_kinds () =
  List.iter
    (fun d -> check_bool "ddr" true (Numa.kind numa d = Memory_kind.Ddr4))
    (Knl.ddr4_domains Knl.Snc4_flat);
  List.iter
    (fun d -> check_bool "mcdram" true (Numa.kind numa d = Memory_kind.Mcdram))
    (Knl.mcdram_domains Knl.Snc4_flat)

let test_snc4_capacities () =
  let mcdram =
    List.fold_left
      (fun acc d -> acc + Numa.capacity numa d)
      0
      (Knl.mcdram_domains Knl.Snc4_flat)
  in
  let ddr =
    List.fold_left
      (fun acc d -> acc + Numa.capacity numa d)
      0
      (Knl.ddr4_domains Knl.Snc4_flat)
  in
  check_int "16G mcdram" Knl.mcdram_total mcdram;
  check_int "96G ddr" Knl.ddr4_total ddr

let test_distance_self () =
  for d = 0 to Numa.count numa - 1 do
    check_int "self distance" 10 (Numa.distance numa d d)
  done

let test_distance_symmetric () =
  for i = 0 to Numa.count numa - 1 do
    for j = 0 to Numa.count numa - 1 do
      check_int "symmetric" (Numa.distance numa i j) (Numa.distance numa j i)
    done
  done

let test_nearest_mcdram_is_same_quadrant () =
  (* Core domain 2's nearest MCDRAM domain is 6 (same quadrant). *)
  match Numa.nearest numa ~from:2 ~kind:Memory_kind.Mcdram with
  | Some d -> check_int "same quadrant" 6 d
  | None -> Alcotest.fail "no mcdram domain found"

let test_by_distance_starts_home () =
  match Numa.by_distance numa ~from:3 with
  | home :: _ -> check_int "home first" 3 home
  | [] -> Alcotest.fail "empty"

let test_domains_of_kind () =
  check_int "4 mcdram domains" 4
    (List.length (Numa.domains_of_kind numa Memory_kind.Mcdram))

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_knl_counts () =
  check_int "68 cores" 68 (Topology.cores snc4);
  check_int "4 threads" 4 (Topology.threads_per_core snc4);
  check_int "272 cpus" 272 (Topology.cpus snc4)

let test_cpu_numbering_roundtrip () =
  for core = 0 to 67 do
    for thread = 0 to 3 do
      let cpu = Topology.cpu_of snc4 ~core ~thread in
      check_int "core roundtrip" core (Topology.core_of_cpu snc4 cpu);
      check_int "thread roundtrip" thread (Topology.thread_of_cpu snc4 cpu)
    done
  done

let test_siblings () =
  let sibs = Topology.siblings snc4 0 in
  Alcotest.(check (list int)) "siblings of cpu0" [ 0; 68; 136; 204 ] sibs

let test_core_domains_partition () =
  (* 17 cores per quadrant domain. *)
  List.iter
    (fun d -> check_int "17 cores" 17 (List.length (Topology.cores_of_domain snc4 d)))
    [ 0; 1; 2; 3 ];
  (* MCDRAM domains own no cores. *)
  List.iter
    (fun d -> check_int "no cores" 0 (List.length (Topology.cores_of_domain snc4 d)))
    [ 4; 5; 6; 7 ]

let test_quadrant_mode () =
  let quad = Knl.topology Knl.Quadrant_flat in
  check_int "two domains" 2 (Numa.count (Topology.numa quad));
  check_int "all cores in domain 0" 68
    (List.length (Topology.cores_of_domain quad 0))

let test_bad_cpu_rejected () =
  Alcotest.check_raises "bad cpu" (Invalid_argument "Topology: bad cpu 272")
    (fun () -> ignore (Topology.core_of_cpu snc4 272))

(* ------------------------------------------------------------------ *)
(* Bandwidth *)

let test_bandwidth_extremes () =
  check_float "pure mcdram"
    (Memory_kind.stream_bandwidth Memory_kind.Mcdram)
    (Bandwidth.effective Bandwidth.all_mcdram);
  check_float "pure ddr"
    (Memory_kind.stream_bandwidth Memory_kind.Ddr4)
    (Bandwidth.effective Bandwidth.all_ddr4)

let test_bandwidth_monotonic () =
  let prev = ref 0.0 in
  for i = 0 to 10 do
    let f = float_of_int i /. 10.0 in
    let bw = Bandwidth.effective (Bandwidth.mixed ~mcdram_fraction:f) in
    check_bool "monotonic in mcdram fraction" true (bw > !prev);
    prev := bw
  done

let test_bandwidth_harmonic_not_linear () =
  (* Harmonic mixing penalises the DDR share: the 50/50 mix is far
     below the arithmetic mean. *)
  let mix = Bandwidth.effective (Bandwidth.mixed ~mcdram_fraction:0.5) in
  let arith =
    (Memory_kind.stream_bandwidth Memory_kind.Mcdram
    +. Memory_kind.stream_bandwidth Memory_kind.Ddr4)
    /. 2.0
  in
  check_bool "below arithmetic mean" true (mix < arith)

let test_per_rank_division () =
  let full = Bandwidth.effective Bandwidth.all_mcdram in
  check_float "64 ranks" (full /. 64.0) (Bandwidth.per_rank Bandwidth.all_mcdram ~ranks:64)

let test_stream_time_scales () =
  let t1 = Bandwidth.stream_time ~bytes:1_000_000 Bandwidth.all_mcdram ~ranks:1 in
  let t64 = Bandwidth.stream_time ~bytes:1_000_000 Bandwidth.all_mcdram ~ranks:64 in
  check_bool "contention slows" true (t64 > t1 * 32)

let bandwidth_fraction_qcheck =
  QCheck.Test.make ~name:"mixed bandwidth between DDR and MCDRAM" ~count:200
    QCheck.(float_bound_inclusive 1.0)
    (fun f ->
      let bw = Bandwidth.effective (Bandwidth.mixed ~mcdram_fraction:f) in
      bw >= Memory_kind.stream_bandwidth Memory_kind.Ddr4 -. 1e-9
      && bw <= Memory_kind.stream_bandwidth Memory_kind.Mcdram +. 1e-9)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_hw"
    [
      ( "memory_kind",
        [
          Alcotest.test_case "bandwidth order" `Quick test_kind_bandwidth_order;
          Alcotest.test_case "latency order" `Quick test_kind_latency_order;
        ] );
      ( "numa",
        [
          Alcotest.test_case "domain count" `Quick test_snc4_domain_count;
          Alcotest.test_case "kinds" `Quick test_snc4_kinds;
          Alcotest.test_case "capacities" `Quick test_snc4_capacities;
          Alcotest.test_case "self distance" `Quick test_distance_self;
          Alcotest.test_case "symmetric distance" `Quick test_distance_symmetric;
          Alcotest.test_case "nearest mcdram" `Quick
            test_nearest_mcdram_is_same_quadrant;
          Alcotest.test_case "by_distance home first" `Quick
            test_by_distance_starts_home;
          Alcotest.test_case "domains of kind" `Quick test_domains_of_kind;
        ] );
      ( "topology",
        [
          Alcotest.test_case "knl counts" `Quick test_knl_counts;
          Alcotest.test_case "cpu numbering" `Quick test_cpu_numbering_roundtrip;
          Alcotest.test_case "siblings" `Quick test_siblings;
          Alcotest.test_case "core domain partition" `Quick
            test_core_domains_partition;
          Alcotest.test_case "quadrant mode" `Quick test_quadrant_mode;
          Alcotest.test_case "bad cpu rejected" `Quick test_bad_cpu_rejected;
        ] );
      ( "bandwidth",
        Alcotest.test_case "extremes" `Quick test_bandwidth_extremes
        :: Alcotest.test_case "monotonic" `Quick test_bandwidth_monotonic
        :: Alcotest.test_case "harmonic" `Quick test_bandwidth_harmonic_not_linear
        :: Alcotest.test_case "per rank" `Quick test_per_rank_division
        :: Alcotest.test_case "stream time" `Quick test_stream_time_scales
        :: qsuite [ bandwidth_fraction_qcheck ] );
    ]
