(* Fault injection: retry policies, plan generation, unfolding state,
   resilient MPI, and the driver's per-kernel containment semantics. *)

open Mk_fault

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Retry *)

let test_backoff_delay () =
  let p = Retry.default_ikc in
  check_int "retry 1" 10_000 (Retry.backoff_delay p ~retry:1);
  check_int "retry 2" 20_000 (Retry.backoff_delay p ~retry:2);
  check_int "retry 3" 40_000 (Retry.backoff_delay p ~retry:3);
  check_int "capped" 200_000 (Retry.backoff_delay p ~retry:20);
  check_int "huge retry saturates, no overflow" 200_000
    (Retry.backoff_delay p ~retry:max_int);
  Alcotest.check_raises "retry 0 rejected"
    (Invalid_argument "Retry.backoff_delay: retry must be >= 1") (fun () ->
      ignore (Retry.backoff_delay p ~retry:0))

let test_retry_time () =
  let p = Retry.default_ikc in
  check_int "no failures, no cost" 0 (Retry.retry_time p ~failures:0);
  check_int "one failure = one timeout" 20_000 (Retry.retry_time p ~failures:1);
  check_int "two failures add a backoff" 50_000 (Retry.retry_time p ~failures:2);
  check_int "clamped at give-up" (Retry.give_up_time p)
    (Retry.retry_time p ~failures:99)

let test_give_up_time () =
  (* 4 timeouts + backoffs 10/20/40 us. *)
  check_int "ikc" 150_000 (Retry.give_up_time Retry.default_ikc);
  (* 4 timeouts + backoffs 200/400/800 us. *)
  check_int "mpi" 3_400_000 (Retry.give_up_time Retry.default_mpi)

(* The harness supervisor (Mk_cluster.Supervise) now reuses these
   policies, so their edge cases get property coverage too. *)
let policy_gen =
  QCheck.(
    map
      (fun (timeout, max_retries, backoff, cap_extra) ->
        {
          Retry.timeout;
          max_retries;
          backoff;
          backoff_cap = backoff + cap_extra;
        })
      (quad (int_range 0 1_000_000) (int_range 0 20) (int_range 1 500_000)
         (int_range 0 2_000_000)))

let backoff_qcheck =
  QCheck.Test.make
    ~name:"backoff_delay: rejects retry<1, monotone, capped" ~count:200
    QCheck.(pair policy_gen (int_range 1 62))
    (fun (p, retry) ->
      (match Retry.backoff_delay p ~retry:0 with
      | exception Invalid_argument _ -> ()
      | _ -> QCheck.Test.fail_report "retry=0 accepted");
      let d = Retry.backoff_delay p ~retry in
      let d' = Retry.backoff_delay p ~retry:(retry + 1) in
      d <= d' && d <= p.Retry.backoff_cap && d >= 0)

let retry_time_qcheck =
  QCheck.Test.make
    ~name:"retry_time: zero at 0, monotone, clamped at give_up_time"
    ~count:200
    QCheck.(pair policy_gen (int_range 0 40))
    (fun (p, failures) ->
      let t = Retry.retry_time p ~failures in
      let t' = Retry.retry_time p ~failures:(failures + 1) in
      Retry.retry_time p ~failures:0 = 0
      && t <= t'
      && t <= Retry.give_up_time p)

let give_up_qcheck =
  QCheck.Test.make
    ~name:"give_up_time = retry_time at max_retries+1 attempts" ~count:200
    policy_gen
    (fun p ->
      Retry.give_up_time p
      = Retry.retry_time p ~failures:(p.Retry.max_retries + 1)
      && Retry.give_up_time p >= (p.Retry.max_retries + 1) * p.Retry.timeout)

(* ------------------------------------------------------------------ *)
(* Plan *)

let test_plan_make_sorts () =
  let p =
    Plan.make ~label:"t"
      [
        { Plan.iteration = 3; node = 0; kind = Plan.Proxy_crash };
        { Plan.iteration = 1; node = 2; kind = Plan.Node_crash };
        { Plan.iteration = 1; node = 0; kind = Plan.Thread_loss };
      ]
  in
  Alcotest.(check (list (pair int int)))
    "sorted by (iteration, node)"
    [ (1, 0); (1, 2); (3, 0) ]
    (List.map (fun e -> (e.Plan.iteration, e.Plan.node)) p.Plan.events);
  check_bool "not empty" false (Plan.is_empty p);
  check_int "events_at 1" 2
    (List.length (Plan.events_at p ~iteration:1));
  check_int "events_at 2" 0 (List.length (Plan.events_at p ~iteration:2))

let test_plan_make_rejects_negative () =
  let bad = [ { Plan.iteration = -1; node = 0; kind = Plan.Node_crash } ] in
  match Plan.make ~label:"bad" bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative iteration accepted"

let test_plan_presets () =
  List.iter
    (fun name ->
      check_bool name true (Option.is_some (Plan.preset_spec name ~rate:1.0)))
    Plan.preset_names;
  check_bool "unknown preset" true
    (Option.is_none (Plan.preset_spec "bogus" ~rate:1.0));
  check_bool "empty at rate 0" true
    (Plan.is_empty
       (Plan.generate
          ~spec:(Option.get (Plan.preset_spec "mixed" ~rate:0.0))
          ~nodes:32 ~iterations:10 ~seed:1))

let test_demo_plans_in_range () =
  List.iter
    (fun (plan, nodes) ->
      check_bool "non-empty" false (Plan.is_empty plan);
      List.iter
        (fun e ->
          check_bool "node in range" true (e.Plan.node >= 0 && e.Plan.node < nodes))
        plan.Plan.events)
    [
      (Plan.daemon_hang_demo ~nodes:64, 64);
      (Plan.proxy_crash_demo ~nodes:16, 16);
      (Plan.daemon_hang_demo ~nodes:1, 1);
    ]

let plan_args =
  QCheck.(
    quad (int_range 1 24) (int_range 2 12) small_nat
      (float_bound_inclusive 4.0))

let plan_generation_deterministic =
  QCheck.Test.make ~name:"same (spec, nodes, iterations, seed), same plan"
    ~count:100 plan_args (fun (nodes, iterations, seed, rate) ->
      let spec = Option.get (Plan.preset_spec "mixed" ~rate) in
      let a = Plan.generate ~spec ~nodes ~iterations ~seed in
      let b = Plan.generate ~spec ~nodes ~iterations ~seed in
      a = b
      && List.for_all
           (fun e ->
             e.Plan.node >= 0 && e.Plan.node < nodes && e.Plan.iteration >= 0
             && e.Plan.iteration < iterations)
           a.Plan.events)

(* ------------------------------------------------------------------ *)
(* State *)

let test_state_transients_clear () =
  let plan =
    Plan.make ~label:"transients"
      [
        { Plan.iteration = 1; node = 0; kind = Plan.Nic_stall { extra = 7_000 } };
        { Plan.iteration = 1; node = 1; kind = Plan.Link_flap { failures = 2 } };
        { Plan.iteration = 1; node = 0; kind = Plan.Proxy_crash };
      ]
  in
  let st = State.make ~plan ~nodes:4 in
  State.begin_iteration st ~iteration:0;
  check_bool "quiet before" false (State.faulted st);
  State.begin_iteration st ~iteration:1;
  check_int "nic extra" 7_000 (State.nic_extra st 0);
  check_int "flap failures" 2 (State.flap_failures st 1);
  check_bool "proxy down" true (State.proxy_down st 0);
  check_bool "faulted" true (State.faulted st);
  check_int "events applied" 3 (State.events_applied st);
  State.begin_iteration st ~iteration:2;
  check_int "nic cleared" 0 (State.nic_extra st 0);
  check_int "flap cleared" 0 (State.flap_failures st 1);
  check_bool "proxy back" false (State.proxy_down st 0);
  check_bool "quiet again" false (State.faulted st)

let test_state_daemon_hang_ages () =
  let plan =
    Plan.make ~label:"hang"
      [ { Plan.iteration = 1; node = 0; kind = Plan.Daemon_hang { iterations = 2 } } ]
  in
  let st = State.make ~plan ~nodes:2 in
  State.begin_iteration st ~iteration:0;
  check_bool "not yet" false (State.daemon_hung st 0);
  State.begin_iteration st ~iteration:1;
  check_bool "hung" true (State.daemon_hung st 0);
  State.begin_iteration st ~iteration:2;
  check_bool "still hung" true (State.daemon_hung st 0);
  State.begin_iteration st ~iteration:3;
  check_bool "recovered" false (State.daemon_hung st 0)

let test_state_crash_permanent () =
  let plan =
    Plan.make ~label:"crash"
      [ { Plan.iteration = 2; node = 1; kind = Plan.Node_crash } ]
  in
  let st = State.make ~plan ~nodes:3 in
  State.begin_iteration st ~iteration:0;
  check_bool "alive before" true (State.is_alive st 1);
  check_int "no fresh crashes" 0 (List.length (State.take_newly_crashed st));
  State.begin_iteration st ~iteration:2;
  check_bool "dead" false (State.is_alive st 1);
  check_int "alive count" 2 (State.alive_count st);
  check_int "dead count" 1 (State.dead_count st);
  Alcotest.(check (list int)) "fresh crash" [ 1 ] (State.take_newly_crashed st);
  Alcotest.(check (list int)) "taken once" [] (State.take_newly_crashed st);
  State.begin_iteration st ~iteration:3;
  check_bool "stays dead" false (State.is_alive st 1);
  check_bool "permanent damage keeps faulted" true (State.faulted st)

let test_state_skipped_iterations_apply () =
  let plan =
    Plan.make ~label:"skip"
      [ { Plan.iteration = 1; node = 0; kind = Plan.Core_degrade { factor = 1.5 } } ]
  in
  let st = State.make ~plan ~nodes:1 in
  State.begin_iteration st ~iteration:0;
  State.begin_iteration st ~iteration:3;
  Alcotest.(check (float 1e-9)) "applied at later visit" 1.5
    (State.compute_factor st 0)

let test_state_ignores_out_of_range () =
  let plan =
    Plan.make ~label:"oob"
      [ { Plan.iteration = 0; node = 5; kind = Plan.Node_crash } ]
  in
  let st = State.make ~plan ~nodes:2 in
  State.begin_iteration st ~iteration:0;
  check_int "nothing applied" 0 (State.events_applied st);
  check_int "everyone alive" 2 (State.alive_count st)

(* ------------------------------------------------------------------ *)
(* Resilient MPI *)

let cost_env nodes =
  {
    Mk_mpi.Collective.fabric = Mk_fabric.Fabric.make ~nodes ();
    syscall_cost = (fun _ -> 100);
    intra_ranks = 4;
  }

let no_extra ~src:_ ~dst:_ = 0
let clocks_of nodes = Array.init nodes (fun i -> i * 1_000)

let test_resilient_matches_healthy () =
  let nodes = 16 in
  let base = cost_env nodes in
  let healthy = clocks_of nodes and faulty = clocks_of nodes in
  Mk_mpi.Collective.allreduce base ~clocks:healthy ~bytes:4096;
  let env =
    Mk_mpi.Resilient.make ~base ~alive:(Array.make nodes true)
      ~extra_edge:no_extra
  in
  Mk_mpi.Resilient.allreduce env ~clocks:faulty ~bytes:4096;
  Alcotest.(check (array int)) "allreduce bit-identical" healthy faulty;
  let healthy = clocks_of nodes and faulty = clocks_of nodes in
  Mk_mpi.P2p.halo base ~clocks:healthy ~bytes:65536 ~neighbors:6;
  Mk_mpi.Resilient.halo env ~clocks:faulty ~bytes:65536 ~neighbors:6;
  Alcotest.(check (array int)) "halo bit-identical" healthy faulty

let test_resilient_dead_node_frozen () =
  let nodes = 8 in
  let alive = Array.make nodes true in
  alive.(3) <- false;
  let env =
    Mk_mpi.Resilient.make ~base:(cost_env nodes) ~alive ~extra_edge:no_extra
  in
  let clocks = clocks_of nodes in
  Mk_mpi.Resilient.allreduce env ~clocks ~bytes:8;
  check_int "dead clock frozen" 3_000 clocks.(3);
  Array.iteri
    (fun i c -> if i <> 3 then check_bool "survivor advanced" true (c > i * 1_000))
    clocks;
  let clocks = clocks_of nodes in
  Mk_mpi.Resilient.halo env ~clocks ~bytes:65536 ~neighbors:6;
  check_int "dead clock frozen in halo" 3_000 clocks.(3)

let test_resilient_detection_charged_once () =
  let nodes = 8 in
  let alive = Array.make nodes true in
  alive.(5) <- false;
  let base = cost_env nodes in
  let without =
    Mk_mpi.Resilient.make ~base ~alive ~extra_edge:no_extra
  in
  let ref_clocks = clocks_of nodes in
  Mk_mpi.Resilient.allreduce without ~clocks:ref_clocks ~bytes:8;
  let env = Mk_mpi.Resilient.make ~base ~alive ~extra_edge:no_extra in
  Mk_mpi.Resilient.notify_crashes env ~policy:Retry.default_mpi ~count:1;
  let expected = Retry.give_up_time Retry.default_mpi in
  check_int "pending queued" expected (Mk_mpi.Resilient.pending_detection env);
  let clocks = clocks_of nodes in
  Mk_mpi.Resilient.allreduce env ~clocks ~bytes:8;
  check_int "pending flushed" 0 (Mk_mpi.Resilient.pending_detection env);
  (* A uniform pre-charge commutes with max-plus: every survivor ends
     exactly one give-up round later than without detection. *)
  Array.iteri
    (fun i c ->
      if alive.(i) then
        check_int "survivor shifted by give-up time" (ref_clocks.(i) + expected) c
      else check_int "dead untouched" ref_clocks.(i) c)
    clocks

let test_resilient_extra_edge_surcharge () =
  let nodes = 8 in
  let base = cost_env nodes in
  let healthy = clocks_of nodes in
  Mk_mpi.Collective.allreduce base ~clocks:healthy ~bytes:8;
  let env =
    Mk_mpi.Resilient.make ~base ~alive:(Array.make nodes true)
      ~extra_edge:(fun ~src:_ ~dst:_ -> 5_000)
  in
  let clocks = clocks_of nodes in
  Mk_mpi.Resilient.allreduce env ~clocks ~bytes:8;
  Array.iteri
    (fun i c -> check_bool "surcharged" true (c > healthy.(i)))
    clocks

(* ------------------------------------------------------------------ *)
(* Driver containment *)

let hpcg = Mk_apps.Hpcg.app
let scenarios = Mk_cluster.Scenario.trio

let test_empty_plan_is_zero_cost () =
  List.iter
    (fun (s : Mk_cluster.Scenario.t) ->
      let plain =
        Mk_cluster.Driver.run ~scenario:s ~app:hpcg ~nodes:8 ~seed:42 ()
      in
      let with_empty =
        Mk_cluster.Driver.run ~faults:Plan.empty ~scenario:s ~app:hpcg ~nodes:8
          ~seed:42 ()
      in
      Alcotest.(check bool)
        (s.Mk_cluster.Scenario.label ^ " identical") true (plain = with_empty))
    scenarios

let test_node_crash_degrades_everyone () =
  let plan =
    Plan.make ~label:"one crash"
      [ { Plan.iteration = 1; node = 1; kind = Plan.Node_crash } ]
  in
  List.iter
    (fun (s : Mk_cluster.Scenario.t) ->
      let healthy =
        Mk_cluster.Driver.run ~scenario:s ~app:hpcg ~nodes:8 ~seed:42 ()
      in
      let faulted =
        Mk_cluster.Driver.run ~faults:plan ~scenario:s ~app:hpcg ~nodes:8
          ~seed:42 ()
      in
      check_int "dead recorded" 1 faulted.Mk_cluster.Driver.dead_nodes;
      check_bool "detection priced" true
        (faulted.Mk_cluster.Driver.recoveries >= 1);
      check_bool
        (s.Mk_cluster.Scenario.label ^ " slower")
        true
        (faulted.Mk_cluster.Driver.fom < healthy.Mk_cluster.Driver.fom))
    scenarios

let test_proxy_crash_hits_only_mckernel () =
  (* HPCG@64 offloads control syscalls on the LWKs; a proxy crash is a
     McKernel (proxy-mechanism) fault: mOS and Linux must not move. *)
  let plan = Plan.proxy_crash_demo ~nodes:64 in
  let fom (s : Mk_cluster.Scenario.t) faults =
    (Mk_cluster.Driver.run ?faults ~scenario:s ~app:hpcg ~nodes:64 ~seed:42 ())
      .Mk_cluster.Driver.fom
  in
  List.iter
    (fun (s : Mk_cluster.Scenario.t) ->
      let h = fom s None and f = fom s (Some plan) in
      match s.Mk_cluster.Scenario.label with
      | "McKernel" -> check_bool "mckernel pays" true (f < h)
      | label -> Alcotest.(check (float 1e-9)) (label ^ " untouched") h f)
    scenarios

let test_thread_loss_hits_only_mos () =
  let plan =
    Plan.make ~label:"thread loss"
      [ { Plan.iteration = 1; node = 0; kind = Plan.Thread_loss } ]
  in
  let fom (s : Mk_cluster.Scenario.t) faults =
    (Mk_cluster.Driver.run ?faults ~scenario:s ~app:hpcg ~nodes:64 ~seed:42 ())
      .Mk_cluster.Driver.fom
  in
  List.iter
    (fun (s : Mk_cluster.Scenario.t) ->
      let h = fom s None and f = fom s (Some plan) in
      match s.Mk_cluster.Scenario.label with
      | "mOS" -> check_bool "mos pays" true (f < h)
      | label -> Alcotest.(check (float 1e-9)) (label ^ " untouched") h f)
    scenarios

(* ------------------------------------------------------------------ *)
(* Determinism: sequential and parallel replays byte-identical *)

let mixed rate = Option.get (Plan.preset_spec "mixed" ~rate)

let replay_deterministic =
  QCheck.Test.make ~name:"fault plan replay: parallel = sequential" ~count:6
    QCheck.(pair small_nat (float_bound_inclusive 2.0))
    (fun (seed, rate) ->
      let plan =
        Plan.generate ~spec:(mixed rate) ~nodes:8 ~iterations:6 ~seed
      in
      let point pool =
        Mk_cluster.Experiment.point ?pool ~faults:plan
          ~scenario:Mk_cluster.Scenario.mckernel ~app:hpcg ~nodes:8 ~runs:3
          ~seed ()
      in
      let pool = Mk_engine.Pool.create ~oversubscribe:true ~num_domains:3 () in
      Fun.protect ~finally:(fun () -> Mk_engine.Pool.shutdown pool) @@ fun () ->
      point None = point (Some pool))

let test_degradation_table_deterministic () =
  let table pool =
    Mk_cluster.Degradation.run ?pool ~app:hpcg ~nodes:16 ~preset:"mixed"
      ~rates:[ 1.0 ] ~runs:3 ~seed:42 ()
  in
  let pool = Mk_engine.Pool.create ~oversubscribe:true ~num_domains:4 () in
  Fun.protect ~finally:(fun () -> Mk_engine.Pool.shutdown pool) @@ fun () ->
  let seq = table None and par = table (Some pool) in
  check_bool "tables identical" true (seq = par);
  Alcotest.(check string)
    "rendered bytes identical"
    (Mk_cluster.Degradation.render seq)
    (Mk_cluster.Degradation.render par)

(* ------------------------------------------------------------------ *)
(* The acceptance demo: fault containment margins *)

let test_isolation_margins () =
  let d = Mk_cluster.Degradation.isolation_demo ~runs:3 () in
  List.iter
    (fun (r : Mk_cluster.Degradation.demo_row) ->
      match r.Mk_cluster.Degradation.label with
      | "Linux" ->
          check_bool "Linux visibly degraded" true
            (r.Mk_cluster.Degradation.delta_pct < -5.0)
      | label ->
          check_bool (label ^ " moves under 1%") true
            (abs_float r.Mk_cluster.Degradation.delta_pct < 1.0))
    d.Mk_cluster.Degradation.hpcg_daemon_hang;
  check_bool "LAMMPS proxy crash visible" true
    (d.Mk_cluster.Degradation.lammps_proxy.Mk_cluster.Degradation.delta_pct
    < -5.0);
  let minife = d.Mk_cluster.Degradation.minife_proxy in
  check_bool "MiniFE within noise" true
    (abs_float minife.Mk_cluster.Degradation.delta_pct
    <= Float.max 0.5 minife.Mk_cluster.Degradation.noise_pct)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_fault"
    [
      ( "retry",
        Alcotest.test_case "backoff delay" `Quick test_backoff_delay
        :: Alcotest.test_case "retry time" `Quick test_retry_time
        :: Alcotest.test_case "give-up time" `Quick test_give_up_time
        :: qsuite [ backoff_qcheck; retry_time_qcheck; give_up_qcheck ] );
      ( "plan",
        Alcotest.test_case "make sorts" `Quick test_plan_make_sorts
        :: Alcotest.test_case "rejects negatives" `Quick
             test_plan_make_rejects_negative
        :: Alcotest.test_case "presets" `Quick test_plan_presets
        :: Alcotest.test_case "demo plans in range" `Quick
             test_demo_plans_in_range
        :: qsuite [ plan_generation_deterministic ] );
      ( "state",
        [
          Alcotest.test_case "transients clear" `Quick test_state_transients_clear;
          Alcotest.test_case "daemon hang ages" `Quick test_state_daemon_hang_ages;
          Alcotest.test_case "crash permanent" `Quick test_state_crash_permanent;
          Alcotest.test_case "skipped iterations apply" `Quick
            test_state_skipped_iterations_apply;
          Alcotest.test_case "out of range ignored" `Quick
            test_state_ignores_out_of_range;
        ] );
      ( "resilient",
        [
          Alcotest.test_case "matches healthy when off" `Quick
            test_resilient_matches_healthy;
          Alcotest.test_case "dead node frozen" `Quick
            test_resilient_dead_node_frozen;
          Alcotest.test_case "detection charged once" `Quick
            test_resilient_detection_charged_once;
          Alcotest.test_case "extra edge surcharge" `Quick
            test_resilient_extra_edge_surcharge;
        ] );
      ( "driver",
        [
          Alcotest.test_case "empty plan is zero-cost" `Quick
            test_empty_plan_is_zero_cost;
          Alcotest.test_case "node crash degrades everyone" `Quick
            test_node_crash_degrades_everyone;
          Alcotest.test_case "proxy crash only hits McKernel" `Slow
            test_proxy_crash_hits_only_mckernel;
          Alcotest.test_case "thread loss only hits mOS" `Slow
            test_thread_loss_hits_only_mos;
        ] );
      ( "determinism",
        Alcotest.test_case "degradation table" `Slow
          test_degradation_table_deterministic
        :: qsuite [ replay_deterministic ] );
      ( "acceptance",
        [ Alcotest.test_case "isolation margins" `Slow test_isolation_margins ] );
    ]
