(* Tests for the mklint analysis library: the Sorted helper, each rule
   (positive, negative, suppressed, baseline-excluded fixtures), the
   typed .cmt stage (R7 alias resolution, R8 domain escape, R9 mutate
   during iteration — compiled fixture cmts), hash-keyed baselines,
   JSON/SARIF shape and stability under permutation, and a regression
   check that the live tree lints clean under both stages. *)

open Mk_lint

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let rules_of vs = List.map (fun (v : Rule.violation) -> v.rule) vs
let count_rule r vs = List.length (List.filter (fun v -> v = r) (rules_of vs))

(* ------------------------------------------------------------------ *)
(* Fixture trees on disk *)

let rec mkdirs path =
  if not (Sys.file_exists path) then begin
    mkdirs (Filename.dirname path);
    Sys.mkdir path 0o755
  end

let tmp_root () =
  let f = Filename.temp_file "mklint-fixture" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let write root rel contents =
  let path = Filename.concat root rel in
  mkdirs (Filename.dirname path);
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

(* ------------------------------------------------------------------ *)
(* Sorted *)

let test_sorted_bindings () =
  let t = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace t k v) [ (3, "c"); (1, "a"); (2, "b") ];
  Alcotest.(check (list (pair int string)))
    "key-sorted" [ (1, "a"); (2, "b"); (3, "c") ]
    (Mk_analysis.Sorted.bindings t);
  Hashtbl.add t 1 "shadow";
  check_str "most recent binding wins" "shadow"
    (List.assoc 1 (Mk_analysis.Sorted.bindings t));
  Alcotest.(check (list int)) "keys deduplicated" [ 1; 2; 3 ] (Mk_analysis.Sorted.keys t)

let sorted_model_qcheck =
  QCheck.Test.make ~name:"Sorted.bindings = sorted last-write assoc" ~count:200
    QCheck.(list (pair (int_range 0 20) small_int))
    (fun kvs ->
      let t = Hashtbl.create 16 in
      List.iter (fun (k, v) -> Hashtbl.replace t k v) kvs;
      let model =
        List.sort_uniq compare (List.map fst kvs)
        |> List.map (fun k ->
               (k, snd (List.find (fun (k', _) -> k' = k) (List.rev kvs))))
      in
      Mk_analysis.Sorted.bindings t = model)

(* ------------------------------------------------------------------ *)
(* Per-rule fixtures, via lint_string (no filesystem) *)

let test_r1_wall_clock () =
  let bad = "let now () = Unix.gettimeofday () +. Sys.time ()\n" in
  check_int "two reads flagged in lib/" 2
    (count_rule R1 (Lint.lint_string ~file:"lib/engine/simx.ml" bad));
  check_int "bin/ also flagged" 1
    (count_rule R1 (Lint.lint_string ~file:"bin/simos.ml" "let t = Unix.time ()\n"));
  check_int "bench/ may read the wall clock" 0
    (count_rule R1 (Lint.lint_string ~file:"bench/probe.ml" bad));
  check_int "DES clock is fine" 0
    (count_rule R1 (Lint.lint_string ~file:"lib/engine/simx.ml" "let now sim = Sim.now sim\n"))

let test_r2_ambient_random () =
  check_int "Random.self_init flagged" 1
    (count_rule R2
       (Lint.lint_string ~file:"lib/noise/jit.ml" "let () = Random.self_init ()\n"));
  check_int "Random.int flagged, even in bench/" 1
    (count_rule R2 (Lint.lint_string ~file:"bench/probe.ml" "let x = Random.int 5\n"));
  check_int "the PRNG home is exempt" 0
    (count_rule R2
       (Lint.lint_string ~file:"lib/engine/rng.ml" "let x = Random.State.make [| 3 |]\n"));
  check_int "seeded Engine.Rng is the sanctioned path" 0
    (count_rule R2
       (Lint.lint_string ~file:"lib/noise/jit.ml" "let x rng = Mk_engine.Rng.int rng 5\n"))

let test_r3_hash_iteration () =
  let bad = "let dump t = Hashtbl.iter (fun k _ -> ignore k) t\n" in
  let sev file =
    match
      List.filter
        (fun (v : Rule.violation) -> v.rule = R3)
        (Lint.lint_string ~file bad)
    with
    | [ v ] -> Rule.severity_to_string v.severity
    | vs -> Printf.sprintf "%d findings" (List.length vs)
  in
  check_str "error in the report layer" "error" (sev "lib/cluster/report.ml");
  check_str "error in bench writers" "error" (sev "bench/main.ml");
  check_str "warning elsewhere in lib/" "warning" (sev "lib/mem/somewhere.ml");
  check_int "Sorted.bindings is the sanctioned path" 0
    (count_rule R3
       (Lint.lint_string ~file:"lib/cluster/report.ml"
          "let dump t = Mk_analysis.Sorted.bindings t\n"))

let test_r4_global_mutable () =
  check_int "top-level Hashtbl flagged" 1
    (count_rule R4
       (Lint.lint_string ~file:"lib/kernel/glob.ml" "let cache = Hashtbl.create 16\n"));
  check_int "top-level ref flagged, also inside sub-modules" 2
    (count_rule R4
       (Lint.lint_string ~file:"lib/kernel/glob.ml"
          "let hits = ref 0\nmodule M = struct let misses = ref 0 end\n"));
  check_int "constructor under scaffolding still flagged" 1
    (count_rule R4
       (Lint.lint_string ~file:"lib/kernel/glob.ml"
          "let cell = let n = 16 in ref n\n"));
  check_int "function allocating per call is fine" 0
    (count_rule R4
       (Lint.lint_string ~file:"lib/kernel/glob.ml"
          "let make () = Hashtbl.create 16\n"));
  check_int "construction-time scratch table is fine" 0
    (count_rule R4
       (Lint.lint_string ~file:"lib/kernel/glob.ml"
          "let corpus = let t = Hashtbl.create 3 in Hashtbl.length t :: []\n"));
  check_int "bench/ executables may keep globals" 0
    (count_rule R4 (Lint.lint_string ~file:"bench/main.ml" "let best = Hashtbl.create 4\n"))

let test_r5_stdout () =
  check_int "print_endline flagged in lib/" 1
    (count_rule R5
       (Lint.lint_string ~file:"lib/apps/chatty.ml" "let f () = print_endline \"x\"\n"));
  check_int "Printf.printf flagged in lib/" 1
    (count_rule R5
       (Lint.lint_string ~file:"lib/apps/chatty.ml" "let f () = Printf.printf \"x\"\n"));
  check_int "the report layer owns stdout" 0
    (count_rule R5
       (Lint.lint_string ~file:"lib/engine/table.ml" "let f s = print_string s\n"));
  check_int "formatter-parameterised printing is fine" 0
    (count_rule R5
       (Lint.lint_string ~file:"lib/apps/chatty.ml"
          "let pp ppf = Format.pp_print_string ppf \"x\"\n"));
  check_int "bin/ prints freely" 0
    (count_rule R5 (Lint.lint_string ~file:"bin/simos.ml" "let f () = print_endline \"x\"\n"))

let test_parse_failure () =
  match Lint.lint_string ~file:"lib/zz/bad.ml" "let = in +++\n" with
  | [ v ] ->
      check_str "parse rule" "parse" (Rule.id_to_string v.rule);
      check_str "error severity" "error" (Rule.severity_to_string v.severity)
  | vs -> Alcotest.failf "expected one parse violation, got %d" (List.length vs)

let test_zone_test () =
  let sev rule file src =
    match
      List.filter (fun (v : Rule.violation) -> v.rule = rule)
        (Lint.lint_string ~file src)
    with
    | [ v ] -> Rule.severity_to_string v.severity
    | vs -> Printf.sprintf "%d findings" (List.length vs)
  in
  check_str "R1 is a warning in test/ (harness timing is legal)" "warning"
    (sev R1 "test/test_foo.ml" "let t = Unix.gettimeofday ()\n");
  check_str "R2 is a warning in test/" "warning"
    (sev R2 "test/test_foo.ml" "let x = Random.int 5\n");
  let iter = "let dump t = Hashtbl.iter (fun _ _ -> ()) t\n" in
  check_str "R3 is an error in fixture writers" "error"
    (sev R3 "test/test_analysis.ml" iter);
  check_str "R3 stays a warning in other tests" "warning"
    (sev R3 "test/test_foo.ml" iter)

(* ------------------------------------------------------------------ *)
(* Suppression, baseline, R6: need a tree on disk *)

let test_suppression () =
  let root = tmp_root () in
  write root "lib/a/one.ml"
    "(* mklint: allow R3 — order-independent sum. *)\n\
     let total t = Hashtbl.fold (fun _ v a -> a + v) t 0\n";
  write root "lib/a/one.mli" "val total : (int, int) Hashtbl.t -> int\n";
  write root "lib/a/two.ml"
    "(* mklint: allow R4 — single-domain CLI knob, set before\n\
    \   any worker domain exists. *)\n\
     let knob = ref 1\n";
  write root "lib/a/two.mli" "val knob : int ref\n";
  write root "lib/a/three.ml"
    "(* mklint: allow-file R5 — this module is a designated debug sink. *)\n\
     let f () = print_endline \"x\"\n\
     let g () = print_endline \"y\"\n";
  write root "lib/a/three.mli" "val f : unit -> unit\nval g : unit -> unit\n";
  write root "lib/a/four.ml"
    "(* mklint: allow R3 — wrong rule for the construct below. *)\n\
     let knob = ref 1\n";
  write root "lib/a/four.mli" "val knob : int ref\n";
  let r = Lint.lint_tree ~root ~baseline:Baseline.empty () in
  check_int "no active errors from one/two/three" 1 (List.length (Lint.errors r));
  check_str "the unmatched rule id does not suppress" "lib/a/four.ml"
    (match Lint.errors r with [ v ] -> v.file | _ -> "?");
  check_int "suppressed findings are still reported" 4
    (List.length
       (List.filter (fun (_, st) -> st = Lint.Suppressed) r.findings))

let test_baseline () =
  let root = tmp_root () in
  write root "lib/b/legacy.ml" "let cache = Hashtbl.create 16\n";
  write root "lib/b/legacy.mli" "val cache : (int, int) Hashtbl.t\n";
  write root ".mklint-baseline" "# tolerated\nR4 lib/b/legacy.ml:1\n";
  let baseline =
    match Baseline.load (Filename.concat root ".mklint-baseline") with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let r = Lint.lint_tree ~root ~baseline () in
  check_int "baselined finding does not gate" 0 (List.length (Lint.errors r));
  check_int "but is visible in the report" 1
    (List.length (List.filter (fun (_, st) -> st = Lint.Baselined) r.findings));
  (* A new instance in the same file is NOT covered. *)
  write root "lib/b/legacy.ml" "let pad = ()\nlet cache = Hashtbl.create 16\n";
  let r = Lint.lint_tree ~root ~baseline () in
  check_int "moved finding resurfaces" 1 (List.length (Lint.errors r));
  check_bool "missing baseline file loads empty" true
    (match Baseline.load (Filename.concat root "no-such-file") with
    | Ok b -> Baseline.is_empty b
    | Error _ -> false);
  check_bool "malformed baseline is an error, not 'allow all'" true
    (match
       write root "bad-baseline" "R9 nowhere:zz\n";
       Baseline.load (Filename.concat root "bad-baseline")
     with
    | Error _ -> true
    | Ok _ -> false)

let test_r6_missing_mli () =
  let root = tmp_root () in
  write root "lib/c/bare.ml" "let x = 1\n";
  write root "lib/c/dressed.ml" "let x = 1\n";
  write root "lib/c/dressed.mli" "val x : int\n";
  let r = Lint.lint_tree ~root ~baseline:Baseline.empty () in
  let r6 = List.filter (fun (v : Rule.violation) -> v.rule = R6) (Lint.active r) in
  check_int "exactly the bare module flagged" 1 (List.length r6);
  check_str "as a warning" "warning"
    (match r6 with [ v ] -> Rule.severity_to_string v.severity | _ -> "?");
  check_int "warnings do not gate --ci" 0 (List.length (Lint.errors r))

(* ------------------------------------------------------------------ *)
(* Hash-keyed baselines *)

let test_baseline_hash_keys () =
  let root = tmp_root () in
  let flagged = "let cache = Hashtbl.create 16" in
  let baselined r =
    List.length (List.filter (fun (_, st) -> st = Lint.Baselined) r.Lint.findings)
  in
  write root "lib/b/h.ml" (flagged ^ "\n");
  write root "lib/b/h.mli" "val cache : (int, int) Hashtbl.t\n";
  write root ".mklint-baseline"
    (Printf.sprintf "R4 lib/b/h.ml:%s\n" (Baseline.hash_of_line flagged));
  let baseline =
    match Baseline.load (Filename.concat root ".mklint-baseline") with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let r = Lint.lint_tree ~root ~baseline () in
  check_int "hash-keyed entry tolerates the finding" 0
    (List.length (Lint.errors r));
  (* Unrelated edits above the finding shift its line; the content
     hash still matches — the brittleness the key change fixes. *)
  write root "lib/b/h.ml" ("let pad = ()\nlet pad2 = ()\n" ^ flagged ^ "\n");
  let r = Lint.lint_tree ~root ~baseline () in
  check_int "line shift does not resurface it" 0 (List.length (Lint.errors r));
  check_int "still visible as baselined" 1 (baselined r);
  (* Rewriting the flagged line itself does resurface it. *)
  write root "lib/b/h.ml" "let cache2 = Hashtbl.create 16\n";
  let r = Lint.lint_tree ~root ~baseline () in
  check_int "changed line resurfaces" 1 (List.length (Lint.errors r));
  (* --update-baseline migration path: render emits hash entries that
     load and match again. *)
  let v = match Lint.errors r with [ v ] -> v | _ -> Alcotest.fail "one" in
  write root ".mb2"
    (Baseline.render [ (v, Lint.source_line ~root ~file:v.file v.line) ]);
  let migrated =
    match Baseline.load (Filename.concat root ".mb2") with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let r = Lint.lint_tree ~root ~baseline:migrated () in
  check_int "rendered baseline round-trips" 0 (List.length (Lint.errors r))

(* ------------------------------------------------------------------ *)
(* The typed stage, on compiled fixture cmts *)

let ocamlc_available =
  lazy (Sys.command "ocamlc -version > /dev/null 2>&1" = 0)

(* Compile one fixture with -bin-annot and return its cmt path.  The
   claimed root-relative [rel] decides the zone when linting; the cmt
   itself can live anywhere. *)
let compile_fixture root rel contents =
  write root rel contents;
  let dir = Filename.concat root (Filename.dirname rel) in
  let base = Filename.basename rel in
  let cmd =
    Printf.sprintf "cd %s && ocamlc -I +unix -bin-annot -c %s > /dev/null 2>&1"
      (Filename.quote dir) (Filename.quote base)
  in
  if Sys.command cmd <> 0 then Alcotest.failf "fixture %s does not compile" rel;
  Filename.concat dir (Filename.remove_extension base ^ ".cmt")

let typed_fixture rel contents =
  let root = tmp_root () in
  let cmt = compile_fixture root rel contents in
  Typed_lint.lint_cmt ~file:rel cmt

let r7_fixture =
  "module U = Unix\n\
   let a () = U.gettimeofday ()\n\
   let b () = let open Unix in gettimeofday ()\n\
   let c () = let open Random in int 5\n\
   let d () = Unix.gettimeofday ()\n"

let test_r7_alias_resolution () =
  if not (Lazy.force ocamlc_available) then ()
  else begin
    let vs = typed_fixture "lib/fix/case_r7.ml" r7_fixture in
    check_int "alias + two let-opens flagged, direct use left syntactic" 3
      (count_rule R7 vs);
    check_bool "messages name both spellings" true
      (List.exists
         (fun (v : Rule.violation) ->
           v.rule = R7
           && String.length v.message > 0
           && v.line = 2 (* U.gettimeofday *))
         vs);
    (* Zone severity plumbs through the typed stage: the same content
       in test/ downgrades R1/R2 re-checks to warnings. *)
    let vs = typed_fixture "test/fix/case_r7.ml" r7_fixture in
    check_bool "R7 findings are warnings in test/" true
      (List.for_all
         (fun (v : Rule.violation) -> v.severity = Rule.Warning)
         (List.filter (fun (v : Rule.violation) -> v.rule = R7) vs))
  end

let r8_fixture =
  "module Pool = struct let parallel_map f xs = List.map f xs end\n\
   module Scratch = struct\n\
  \  let int_array ~tag:_ ~len ~init = Array.make len init\n\
   end\n\
   let total = ref 0\n\
   let log = Buffer.create 16\n\
   let task x = Buffer.add_string log \"x\"; x\n\
   let m = Mutex.create ()\n\
   let last = ref 0\n\
   let p1 xs = Pool.parallel_map (fun x -> total := !total + x; x) xs\n\
   let p2 xs = Pool.parallel_map task xs\n\
   let n1 xs =\n\
  \  Pool.parallel_map\n\
  \    (fun x ->\n\
  \      let t = Hashtbl.create 4 in\n\
  \      Hashtbl.replace t x x;\n\
  \      Hashtbl.length t)\n\
  \    xs\n\
   let n2 xs =\n\
  \  Pool.parallel_map\n\
  \    (fun x ->\n\
  \      let buf = Scratch.int_array ~tag:\"w\" ~len:4 ~init:0 in\n\
  \      buf.(0) <- x;\n\
  \      buf.(0))\n\
  \    xs\n\
   let n3 xs =\n\
  \  Pool.parallel_map (fun x -> Mutex.protect m (fun () -> last := x); x) xs\n"

let test_r8_domain_escape () =
  if not (Lazy.force ocamlc_available) then ()
  else begin
    let vs = typed_fixture "lib/fix/case_r8.ml" r8_fixture in
    let r8 = List.filter (fun (v : Rule.violation) -> v.rule = R8) vs in
    check_int "exactly the two escaping captures flagged" 2 (List.length r8);
    check_bool "the planted ref capture is one of them" true
      (List.exists
         (fun (v : Rule.violation) ->
           v.line = 10
           && String.length v.message >= 8
           && String.sub v.message 0 8 = "ref cell")
         r8);
    check_bool "the let-bound task closure is resolved one level" true
      (List.exists
         (fun (v : Rule.violation) ->
           v.line = 7
           && String.length v.message >= 6
           && String.sub v.message 0 6 = "buffer")
         r8);
    (* The three negatives: closure-local table (n1), Scratch-routed
       per-domain state (n2), mutex-guarded Journal pattern (n3). *)
    check_bool "no finding past line 11" true
      (List.for_all (fun (v : Rule.violation) -> v.line <= 11) r8)
  end

let r9_fixture =
  "type t = { corners : (int, int) Hashtbl.t }\n\
   let prune t =\n\
  \  Hashtbl.iter\n\
  \    (fun k v -> if v = 0 then Hashtbl.remove t.corners k)\n\
  \    t.corners\n\
   let ok t =\n\
  \  let dead =\n\
  \    Hashtbl.fold (fun k v acc -> if v = 0 then k :: acc else acc) t.corners []\n\
  \  in\n\
  \  List.iter (Hashtbl.remove t.corners) dead\n"

let test_r9_mutate_during_iteration () =
  if not (Lazy.force ocamlc_available) then ()
  else begin
    let vs = typed_fixture "lib/fix/case_r9.ml" r9_fixture in
    check_int "the Ltp corner-map shape is flagged once" 1 (count_rule R9 vs);
    check_bool "at the mutation site inside the iter closure" true
      (match List.filter (fun (v : Rule.violation) -> v.rule = R9) vs with
      | [ v ] -> v.line = 4
      | _ -> false)
  end

(* ------------------------------------------------------------------ *)
(* JSON determinism *)

let permutation_root =
  lazy
    (let root = tmp_root () in
     write root "lib/p/alpha.ml" "let now () = Unix.gettimeofday ()\n";
     write root "lib/p/beta.ml" "let x = Random.int 5\n";
     write root "lib/p/gamma.ml"
       "let dump t = Hashtbl.iter (fun _ _ -> ()) t\nlet cell = ref 0\n";
     write root "bench/delta.ml" "let t = Unix.gettimeofday ()\n";
     root)

let permutation_files =
  [ "lib/p/alpha.ml"; "lib/p/beta.ml"; "lib/p/gamma.ml"; "bench/delta.ml" ]

let json_of files =
  let root = Lazy.force permutation_root in
  Mk_engine.Json.to_string_pretty
    (Lint.to_json (Lint.lint_files ~root ~baseline:Baseline.empty files))

let json_permutation_qcheck =
  QCheck.Test.make ~name:"JSON report is stable under file-order permutation"
    ~count:50
    (QCheck.make (QCheck.Gen.shuffle_l permutation_files))
    (fun files -> json_of files = json_of permutation_files)

let test_json_shape () =
  match Mk_engine.Json.of_string (json_of permutation_files) with
  | Error e -> Alcotest.fail e
  | Ok (Mk_engine.Json.Obj fields) ->
      check_str "schema" "mklint/1"
        (match List.assoc "schema" fields with
        | Mk_engine.Json.String s -> s
        | _ -> "?");
      check_bool "has findings array" true
        (match List.assoc "findings" fields with
        | Mk_engine.Json.List (_ :: _) -> true
        | _ -> false)
  | Ok _ -> Alcotest.fail "expected a JSON object"

(* Fabricated typed-stage findings over the permutation fixtures: the
   merged report must not depend on the order the cmt walk yields
   them in. *)
let fabricated_typed =
  let v rule file line col message : Rule.violation =
    { rule; severity = Error; file; line; col; message }
  in
  [
    v R7 "lib/p/alpha.ml" 1 13 "`W.gettimeofday` resolves to Unix.gettimeofday";
    v R8 "lib/p/beta.ml" 1 8 "ref cell `x` from the enclosing scope";
    v R9 "lib/p/gamma.ml" 1 13 "Hashtbl.remove mutates `t`";
    v R8 "lib/p/gamma.ml" 2 4 "buffer `b` from the enclosing scope";
  ]

let merged_json vs =
  let root = Lazy.force permutation_root in
  let base = Lint.lint_files ~root ~baseline:Baseline.empty permutation_files in
  Mk_engine.Json.to_string_pretty
    (Lint.to_json (Lint.merge_typed base ~baseline:Baseline.empty vs))

let merged_permutation_qcheck =
  QCheck.Test.make
    ~name:"merged report is stable under typed-finding permutation" ~count:50
    (QCheck.make (QCheck.Gen.shuffle_l fabricated_typed))
    (fun vs -> merged_json vs = merged_json fabricated_typed)

let test_sarif_shape () =
  let root = Lazy.force permutation_root in
  let r = Lint.lint_files ~root ~baseline:Baseline.empty permutation_files in
  match
    Mk_engine.Json.of_string
      (Mk_engine.Json.to_string_pretty (Lint.to_sarif r))
  with
  | Error e -> Alcotest.fail e
  | Ok (Mk_engine.Json.Obj fields) -> (
      check_str "SARIF version" "2.1.0"
        (match List.assoc "version" fields with
        | Mk_engine.Json.String s -> s
        | _ -> "?");
      match List.assoc "runs" fields with
      | Mk_engine.Json.List [ Mk_engine.Json.Obj run ] ->
          check_int "one result per finding"
            (List.length r.findings)
            (match List.assoc "results" run with
            | Mk_engine.Json.List l -> List.length l
            | _ -> -1);
          check_str "driver name" "mklint"
            (match List.assoc "tool" run with
            | Mk_engine.Json.Obj t -> (
                match List.assoc "driver" t with
                | Mk_engine.Json.Obj d -> (
                    match List.assoc "name" d with
                    | Mk_engine.Json.String s -> s
                    | _ -> "?")
                | _ -> "?")
            | _ -> "?")
      | _ -> Alcotest.fail "expected exactly one SARIF run")
  | Ok _ -> Alcotest.fail "expected a JSON object"

(* ------------------------------------------------------------------ *)
(* The live tree lints clean *)

let rec find_root dir =
  if
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lib")
  then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_root parent

let test_tree_clean () =
  match find_root (Sys.getcwd ()) with
  | None -> ()  (* not run from a build tree; ci.sh runs the gate anyway *)
  | Some root ->
      let r = Lint.lint_tree ~root ~baseline:Baseline.empty () in
      check_bool "tree scanned" true (List.length r.files > 100);
      Alcotest.(check (list string))
        "no active findings on the shipped tree" []
        (List.map
           (fun (v : Rule.violation) ->
             Printf.sprintf "%s:%d [%s]" v.file v.line (Rule.id_to_string v.rule))
           (Lint.active r))

(* The typed stage needs cmts, so it runs against the *source* root
   (the one that has _build/default), not dune's copied test tree. *)
let rec find_built_root dir =
  if
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lib")
    && Sys.file_exists
         (Filename.concat dir (Filename.concat "_build" "default"))
  then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_built_root parent

let test_typed_tree_clean () =
  match find_built_root (Sys.getcwd ()) with
  | None -> ()  (* no built tree in reach; ci.sh runs the full gate *)
  | Some root ->
      let base = Lint.lint_tree ~root ~baseline:Baseline.empty () in
      let typed = Typed_lint.lint_tree ~root in
      let r = Lint.merge_typed base ~baseline:Baseline.empty typed in
      check_bool "typed stage adjudicated the known R8 sites" true
        (List.exists
           (fun ((v : Rule.violation), st) ->
             v.rule = R8 && st = Lint.Suppressed)
           r.findings);
      Alcotest.(check (list string))
        "no active findings on the shipped tree under both stages" []
        (List.map
           (fun (v : Rule.violation) ->
             Printf.sprintf "%s:%d [%s]" v.file v.line (Rule.id_to_string v.rule))
           (Lint.active r))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_lint"
    [
      ( "sorted",
        Alcotest.test_case "bindings" `Quick test_sorted_bindings
        :: qsuite [ sorted_model_qcheck ] );
      ( "rules",
        [
          Alcotest.test_case "R1 wall clock" `Quick test_r1_wall_clock;
          Alcotest.test_case "R2 ambient random" `Quick test_r2_ambient_random;
          Alcotest.test_case "R3 hash iteration" `Quick test_r3_hash_iteration;
          Alcotest.test_case "R4 global mutable" `Quick test_r4_global_mutable;
          Alcotest.test_case "R5 stdout" `Quick test_r5_stdout;
          Alcotest.test_case "parse failure" `Quick test_parse_failure;
          Alcotest.test_case "test/ zone severities" `Quick test_zone_test;
        ] );
      ( "typed",
        [
          Alcotest.test_case "R7 alias resolution" `Quick
            test_r7_alias_resolution;
          Alcotest.test_case "R8 domain escape" `Quick test_r8_domain_escape;
          Alcotest.test_case "R9 mutate during iteration" `Quick
            test_r9_mutate_during_iteration;
        ] );
      ( "workflow",
        [
          Alcotest.test_case "suppression" `Quick test_suppression;
          Alcotest.test_case "baseline" `Quick test_baseline;
          Alcotest.test_case "baseline hash keys" `Quick
            test_baseline_hash_keys;
          Alcotest.test_case "R6 missing mli" `Quick test_r6_missing_mli;
        ] );
      ( "json",
        Alcotest.test_case "shape round-trips" `Quick test_json_shape
        :: Alcotest.test_case "SARIF shape" `Quick test_sarif_shape
        :: qsuite [ json_permutation_qcheck; merged_permutation_qcheck ] );
      ( "regression",
        [
          Alcotest.test_case "live tree lints clean" `Quick test_tree_clean;
          Alcotest.test_case "live tree lints clean (typed)" `Quick
            test_typed_tree_clean;
        ] );
    ]
